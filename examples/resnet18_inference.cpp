// ResNet-18 end to end: per-layer cycle/energy report on BPVeC vs the
// TPU-like baseline, showing where the composable design wins (wide-K
// convolutions) and where memory still rules (the classifier).
#include <cstdio>

#include "src/common/table.h"
#include "src/core/accelerator.h"
#include "src/dnn/model_zoo.h"

int main() {
  using namespace bpvec;

  const auto net = dnn::make_resnet18(dnn::BitwidthMode::kHomogeneous8b);
  const auto baseline =
      core::Accelerator::tpu_like(core::Memory::kDdr4).simulate(net);
  const auto bpvec =
      core::Accelerator::bpvec(core::Memory::kDdr4).simulate(net);

  Table t("ResNet-18, homogeneous 8-bit, DDR4 — per-layer");
  t.set_header({"Layer", "MACs (M)", "Base cycles (k)", "BPVeC cycles (k)",
                "Speedup", "BPVeC util", "Bound"});
  for (std::size_t i = 0; i < net.layers().size(); ++i) {
    const auto& lb = baseline.layers[i];
    const auto& lv = bpvec.layers[i];
    if (lb.macs == 0) continue;  // skip pools in the table
    t.add_row({lv.name, Table::num(static_cast<double>(lv.macs) / 1e6, 1),
               Table::num(static_cast<double>(lb.total_cycles) / 1e3, 0),
               Table::num(static_cast<double>(lv.total_cycles) / 1e3, 0),
               Table::ratio(static_cast<double>(lb.total_cycles) /
                            static_cast<double>(lv.total_cycles)),
               Table::num(lv.utilization, 2),
               lv.memory_bound ? "memory" : "compute"});
  }
  t.print();

  std::printf("\nTotals: baseline %.2f ms / %.2f mJ  |  BPVeC %.2f ms /"
              " %.2f mJ  ->  %.2fx speedup, %.2fx energy reduction\n",
              baseline.runtime_s * 1e3, baseline.energy_j * 1e3,
              bpvec.runtime_s * 1e3, bpvec.energy_j * 1e3,
              baseline.runtime_s / bpvec.runtime_s,
              baseline.energy_j / bpvec.energy_j);

  std::puts("\nNote how early wide-K 3x3 layers run compute-bound at ~2x,"
            " while the fc classifier (one pass over 0.5 MB of weights per"
            " image) stays memory-bound on both platforms.");
  return 0;
}
