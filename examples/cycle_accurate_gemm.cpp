// Cycle-accurate vs analytical: run the same GEMM through the
// register-accurate systolic array simulation and the closed-form tile
// model, and check both the numerics (exact) and the clock (within one
// pipeline skew). This is the ground-truth harness to reach for when
// modifying the dataflow.
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/dnn/gemm_lowering.h"
#include "src/sim/cycle_sim.h"
#include "src/sim/systolic.h"

int main() {
  using namespace bpvec;

  Rng rng(123);
  // A conv-like GEMM: 14x14 output pixels, 32 output channels, K = 288.
  const std::int64_t M = 196, N = 32, K = 288;
  dnn::Matrix a{M, K, rng.signed_vector(static_cast<std::size_t>(M * K), 8)};
  dnn::Matrix b{N, K, rng.signed_vector(static_cast<std::size_t>(N * K), 8)};
  const auto reference = dnn::gemm_reference(a, b);

  Table t("196 x 32 x 288 GEMM: simulated clock vs analytical model");
  t.set_header({"Array", "k/PE", "Simulated cycles", "Analytical cycles",
                "Delta", "Exact?"});

  const sim::CycleSimConfig configs[] = {
      {8, 8, 16}, {16, 32, 1}, {4, 8, 64}};
  for (const auto& [rows, cols, kpp] : configs) {
    sim::SystolicArraySim array({rows, cols, kpp});
    const auto measured = array.run_gemm(a, b);

    sim::AcceleratorConfig cfg = sim::bpvec_accelerator();
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.cvu.lanes = static_cast<int>(kpp);
    dnn::GemmShape g;
    g.m = M;
    g.n = N;
    g.k = K;
    const auto analytical = sim::estimate_compute(cfg, g, 8, 8);

    t.add_row({std::to_string(rows) + "x" + std::to_string(cols),
               std::to_string(kpp), std::to_string(measured.cycles),
               std::to_string(analytical.cycles),
               std::to_string(measured.cycles - analytical.cycles),
               measured.out == reference ? "yes" : "NO"});
  }
  t.print();

  std::puts("\nThe analytical model the evaluation figures rest on agrees"
            " with the register-accurate array to within one pipeline"
            " fill/drain — and both produce the exact integer GEMM.");
  return 0;
}
