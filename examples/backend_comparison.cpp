// Cost backends: price one network through every registered cost model
// — the cycle-level simulator, the bit-serial baselines, the GPU
// roofline — in a single mixed-backend SimEngine batch, then register a
// custom backend and watch it ride the same path.
//
// This is the "adding a new backend" recipe from the README, live:
//   1. subclass backend::CostBackend (price_layer + assemble + name +
//      fingerprint),
//   2. register a factory under a string key,
//   3. put that key in Scenario::backend — benches, caches, and report
//      tables pick it up with no engine changes.
#include <cstdio>

#include "src/core/bpvec.h"

namespace {

using namespace bpvec;

// A deliberately naive comparator: every MAC retires at the platform's
// peak rate, memory is free. Useful as an upper bound — the gap between
// "ideal" and "bpvec" is exactly the memory system and tiling losses the
// cycle simulator charges.
class IdealBackend : public backend::CostBackend {
 public:
  IdealBackend(sim::AcceleratorConfig platform, arch::DramModel memory)
      : platform_(std::move(platform)), memory_(std::move(memory)) {}

  const std::string& name() const override {
    static const std::string kName = "ideal";
    return kName;
  }

  std::uint64_t fingerprint() const override {
    common::ConfigHash f;
    f.str(name());
    backend::hash_platform(f, platform_);
    return f.h;
  }

  sim::LayerResult price_layer(const dnn::Layer& layer) const override {
    sim::LayerResult r;
    r.name = layer.name;
    r.kind = layer.kind;
    r.x_bits = layer.x_bits;
    r.w_bits = layer.w_bits;
    r.macs = layer.macs();
    const std::int64_t peak = platform_.equivalent_macs();
    r.compute_cycles = (layer.macs() + peak - 1) / peak;
    r.total_cycles = r.compute_cycles;
    r.utilization = layer.is_compute() ? 1.0 : 0.0;
    r.runtime_s =
        static_cast<double>(r.total_cycles) / platform_.frequency_hz;
    // Charge only raw MAC energy: the floor every real design sits above.
    r.energy.compute_pj = static_cast<double>(r.macs) *
                          arch::CvuCostModel().conventional_mac_energy_pj();
    return r;
  }

  sim::RunResult assemble(const dnn::Network& network,
                          std::vector<sim::LayerResult> layers)
      const override {
    return sim::assemble_run("Ideal-" + platform_.name, network.name(),
                             memory_.name, name(), std::move(layers),
                             platform_.frequency_hz);
  }

 private:
  sim::AcceleratorConfig platform_;
  arch::DramModel memory_;
};

}  // namespace

int main() {
  using namespace bpvec;

  // Step 2 of the recipe: one registration, process-wide.
  backend::BackendRegistry::instance().register_backend(
      "ideal", [](const sim::AcceleratorConfig& platform,
                  const arch::DramModel& memory) {
        return std::make_unique<IdealBackend>(platform, memory);
      });

  std::puts("Registered cost backends:");
  for (const auto& key : backend::BackendRegistry::instance().keys()) {
    std::printf("  %s\n", key.c_str());
  }

  // Step 3: a mixed-backend batch — every design style prices ResNet-18
  // through the same engine, caches, and result shape.
  const auto net = dnn::make_resnet18(dnn::BitwidthMode::kHeterogeneous);
  std::vector<engine::Scenario> batch{
      engine::make_scenario(engine::Platform::kTpuLike, core::Memory::kDdr4,
                            net),
      engine::make_scenario(engine::Platform::kBpvec, core::Memory::kDdr4,
                            net),
      engine::make_scenario("bit_serial", engine::Platform::kTpuLike,
                            core::Memory::kDdr4, net),
      engine::make_scenario("bit_serial_loom", engine::Platform::kTpuLike,
                            core::Memory::kDdr4, net),
      engine::make_gpu_scenario(net),
      engine::make_scenario("ideal", engine::Platform::kBpvec,
                            core::Memory::kDdr4, net),
  };

  engine::SimEngine eng;
  const auto results = eng.run_batch(batch);
  std::puts("");
  sim::comparison_table(results).print();

  const auto stats = eng.stats();
  std::printf(
      "\nEngine: %zu scenarios, %zu priced, %zu layer pricings "
      "(%zu served by the layer cache — ResNet's repeated blocks and the\n"
      "network shared across backends price each unique layer once per "
      "backend).\n",
      stats.scenarios_submitted, stats.simulations_run, stats.layers_priced,
      stats.layer_cache_hits);
  return 0;
}
