// Heterogeneous-bitwidth LSTM inference: the workload class the paper's
// intro motivates (bandwidth-starved recurrent models) across all four
// design points — {BitFusion, BPVeC} × {DDR4, HBM2} — plus a functional
// check that a quantized recurrent step through the CVU is bit-exact.
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/core/accelerator.h"
#include "src/core/gemm_executor.h"
#include "src/dnn/model_zoo.h"
#include "src/dnn/reference_ops.h"

int main() {
  using namespace bpvec;

  // ---- Functional: one 4-bit LSTM-gate GEMV through the CVU.
  Rng rng(2024);
  const int hidden = 64, input = 32;
  const auto weights = rng.signed_vector(
      static_cast<std::size_t>(hidden * (hidden + input)), 4);
  const auto x = rng.signed_vector(input, 4);
  const auto h = rng.signed_vector(hidden, 4);

  dnn::Matrix act{1, input + hidden, {}};
  act.data = x;
  act.data.insert(act.data.end(), h.begin(), h.end());
  dnn::Matrix wmat{hidden, input + hidden, weights};

  bitslice::Cvu cvu({2, 8, 16});
  const auto gate_acc = core::execute_gemm(cvu, act, wmat, 4, 4);
  const auto reference =
      dnn::rnn_step_reference(x, h, weights, hidden, /*shift=*/0,
                              /*out_bits=*/16);
  bool exact = true;
  for (int n = 0; n < hidden; ++n) {
    exact &= (gate_acc[static_cast<std::size_t>(n)] ==
              reference[static_cast<std::size_t>(n)]);
  }
  std::printf("4-bit recurrent gate through the CVU: %s\n",
              exact ? "bit-exact vs reference" : "MISMATCH");

  // ---- Performance: the Table-I LSTM across the four design points.
  const auto net = dnn::make_lstm(dnn::BitwidthMode::kHeterogeneous);
  const auto s = net.stats();
  std::printf("\n%s: %.1f MB weights, %.1f GOps, %s\n", net.name().c_str(),
              s.model_size_mb_int8, s.multiply_add_gops,
              net.bitwidth_note().c_str());

  Table t("512-step LSTM inference (heterogeneous 4-bit)");
  t.set_header({"Platform", "Memory", "Latency (ms)", "Energy (mJ)",
                "GOps/W", "Bound"});
  const struct {
    core::Accelerator acc;
  } rows[] = {
      {core::Accelerator::bitfusion(core::Memory::kDdr4)},
      {core::Accelerator::bitfusion(core::Memory::kHbm2)},
      {core::Accelerator::bpvec(core::Memory::kDdr4)},
      {core::Accelerator::bpvec(core::Memory::kHbm2)},
  };
  for (const auto& row : rows) {
    const auto r = row.acc.simulate(net);
    t.add_row({r.platform, r.memory, Table::num(r.runtime_s * 1e3, 2),
               Table::num(r.energy_j * 1e3, 2),
               Table::num(r.gops_per_w, 0),
               r.layers[0].memory_bound ? "memory" : "compute"});
  }
  t.print();

  std::puts("\nUnder DDR4 both accelerators drown streaming 12 MB of gate"
            " weights every 16 time steps; HBM2 frees BPVeC's 4x-composed"
            " CVUs to pull ahead (the paper's Fig. 8 LSTM column).");
  return 0;
}
