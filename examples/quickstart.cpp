// Quickstart: the three faces of the library in ~60 lines.
//
//  1. Functional — slice two integer vectors and compute an exact dot
//     product through a Composable Vector Unit.
//  2. Composition — see how the same silicon reconfigures for narrower
//     bitwidths and what throughput that buys.
//  3. Performance — simulate a real network on the Table-II platform.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/example_quickstart
#include <cstdio>

#include "src/core/accelerator.h"
#include "src/dnn/model_zoo.h"

int main() {
  using namespace bpvec;

  // ---- 1. Exact arithmetic through bit-parallel vector composability.
  const auto acc = core::Accelerator::bpvec(core::Memory::kDdr4);
  const std::vector<std::int32_t> x{12, -7, 33, 101, -128, 5, 90, -44};
  const std::vector<std::int32_t> w{3, 14, -9, 27, 127, -61, 8, 2};

  const auto result = acc.dot_product(x, w, /*x_bits=*/8, /*w_bits=*/8);
  std::int64_t expected = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    expected += static_cast<std::int64_t>(x[i]) * w[i];
  }
  std::printf("dot(x, w) via CVU = %lld (reference %lld) — %s\n",
              static_cast<long long>(result.value),
              static_cast<long long>(expected),
              result.value == expected ? "exact" : "MISMATCH");
  std::printf("  consumed %lld CVU cycle(s), %lld narrow multiplies\n",
              static_cast<long long>(result.cycles),
              static_cast<long long>(result.mult_ops));

  // ---- 2. Dynamic composition: same silicon, narrower operands.
  std::puts("\nComposition plans (16 NBVEs, 2-bit slices, L = 16):");
  for (auto [xb, wb] : {std::pair{8, 8}, {8, 2}, {4, 4}, {2, 2}}) {
    const auto plan = acc.plan(xb, wb);
    std::printf("  %db x %db : %2d cluster(s) -> %4d elements/cycle "
                "(%2.0fx vs 8-bit)\n",
                xb, wb, plan.clusters, plan.elements_per_cycle(),
                plan.speedup_vs_max_bitwidth());
  }

  // ---- 3. End-to-end simulation of a Table-I workload.
  const auto net = dnn::make_resnet18(dnn::BitwidthMode::kHeterogeneous);
  const auto run = acc.simulate(net);
  std::printf("\n%s on %s/%s: %.2f ms, %.2f mJ, %.0f GOps/s, %.0f GOps/W\n",
              net.name().c_str(), run.platform.c_str(), run.memory.c_str(),
              run.runtime_s * 1e3, run.energy_j * 1e3, run.gops_per_s,
              run.gops_per_w);
  return 0;
}
