// Architect's view of the DSE subsystem: search CVU geometry and
// platform knobs together, on the real end-to-end cost of *your*
// workload, and read the answer off a Pareto frontier instead of a
// single scalar score.
//
// Three passes, cheapest to richest:
//   1. the classic Fig. 4 geometry sweep (cost model only, parallel,
//      bit-identical to core::explore_design_space) + best_design;
//   2. a full-pipeline grid search over geometry × batch size, priced by
//      SimEngine::run_batch (so the scenario/layer caches apply), with a
//      cycles/energy/area frontier;
//   3. the same space under a seeded hill-climb — far fewer evaluations,
//      same winner, deterministic via Rng::fork.
#include <cstdio>

#include "src/arch/cvu_cost.h"
#include "src/common/table.h"
#include "src/core/design_space.h"
#include "src/dnn/model_zoo.h"
#include "src/dse/search.h"
#include "src/engine/sim_engine.h"
#include "src/sim/config.h"

int main() {
  using namespace bpvec;

  // Your workload's bitwidth mix: mostly 4-bit with 8-bit edges and some
  // aggressive 2-bit weight layers (PACT/WRPN-style quantization).
  const std::vector<core::BitwidthMixEntry> mix{
      {8, 8, 0.10}, {4, 4, 0.65}, {8, 2, 0.15}, {2, 2, 0.10}};

  // ---- pass 1: geometry-only sweep (the Fig. 4 cost model) ----------
  engine::SimEngine eng;
  const auto points =
      eng.explore_design_space({1, 2, 4}, {1, 2, 4, 8, 16, 32}, 8, mix);

  Table t("CVU design space (per 8bx8b MAC, normalized to conventional)");
  t.set_header({"Geometry", "Power/op", "Area/op"});
  for (const auto& p : points) {
    t.add_row({p.geometry.to_string(), Table::ratio(p.cost.power_total()),
               Table::ratio(p.cost.area_total())});
  }
  t.print();

  const auto best = core::best_design(points, mix, /*min_utilization=*/0.9);
  std::printf("\nBest geometry for the mix: %s (bit-efficiency %.2f)\n",
              best.geometry.to_string().c_str(), best.mix_utilization);

  // Size an accelerator from it under the paper's 250 mW core budget.
  const arch::CvuCostModel cost;
  const double cvu_mw = cost.cvu_power_mw(best.geometry);
  const int cvus = static_cast<int>(250.0 / cvu_mw);
  std::printf("One CVU: %.2f mW, %.0f um^2  ->  %d CVUs fit a 250 mW core"
              " = %d MAC-equivalents\n",
              cvu_mw, cost.cvu_area_um2(best.geometry), cvus,
              cvus * best.geometry.lanes);

  // Compare against the paper's shipped configuration.
  const auto paper = sim::bpvec_accelerator();
  std::printf("Paper configuration: %d CVUs of %s = %lld MAC-equivalents\n",
              paper.num_pes(), paper.cvu.to_string().c_str(),
              static_cast<long long>(paper.equivalent_macs()));

  // ---- pass 2: full-pipeline search over geometry × batch size ------
  // Candidates materialize into Scenarios and ride run_batch, so the
  // objectives are real end-to-end numbers (cycles include the memory
  // system), not per-MAC proxies.
  dse::ParamSpace space;
  space.add_axis(dse::Knob::kCvuSliceBits, {1, 2, 4});
  space.add_axis(dse::Knob::kCvuLanes, {4, 8, 16});
  space.add_axis(dse::Knob::kBatchSize, {1, 4});

  const std::vector<dse::Objective> objectives{
      dse::objective(dse::Metric::kCycles),
      dse::objective(dse::Metric::kEnergy),
      dse::objective(dse::Metric::kCoreArea)};
  const engine::Scenario base = engine::make_scenario(
      engine::Platform::kBpvec, core::Memory::kDdr4,
      dnn::make_resnet18(dnn::BitwidthMode::kHeterogeneous));

  dse::GridStrategy grid(space);
  dse::ScenarioEvaluator evaluator(eng, space, base, objectives, mix);
  const auto outcome = dse::run_search(grid, evaluator, objectives);

  Table f("Pareto frontier: cycles / energy / core area (grid search)");
  f.set_header({"Candidate", "Mcycles", "Energy (mJ)", "Core area (mm^2)"});
  for (const auto& e : outcome.frontier.sorted()) {
    f.add_row({space.label(e.candidate),
               Table::num(static_cast<double>(e.result->total_cycles) / 1e6, 2),
               Table::num(e.result->energy_j * 1e3, 2),
               Table::num(e.core_area_um2 / 1e6, 3)});
  }
  std::printf("\nGrid search: %zu candidates, frontier %zu\n",
              outcome.candidates, outcome.frontier.size());
  f.print();

  // ---- pass 3: hill-climb reaches the same region much cheaper ------
  dse::HillClimbStrategy climb(space, /*restarts=*/2, /*seed=*/7, objectives);
  dse::ScenarioEvaluator evaluator2(eng, space, base, objectives, mix);
  const auto climbed = dse::run_search(climb, evaluator2, objectives);
  const auto stats = eng.stats();
  std::printf("\nHill-climb: %zu evaluations (%zu unique) vs %zu for the "
              "grid; engine simulated %zu scenarios total (%zu memo hits "
              "— repeats are cache-served).\n",
              climbed.candidates, climbed.unique_candidates,
              outcome.candidates, stats.simulations_run, stats.cache_hits);
  return 0;
}
