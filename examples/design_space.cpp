// Architect's view: sweep the CVU design space (slice width × vector
// length) in parallel on the batch engine, print the power/area frontier,
// and let the library pick the best geometry for *your* bitwidth mix —
// then size a full accelerator from the winner under a power budget.
#include <cstdio>

#include "src/arch/cvu_cost.h"
#include "src/common/table.h"
#include "src/core/design_space.h"
#include "src/engine/sim_engine.h"
#include "src/sim/config.h"

int main() {
  using namespace bpvec;

  // Your workload's bitwidth mix: mostly 4-bit with 8-bit edges and some
  // aggressive 2-bit weight layers (PACT/WRPN-style quantization).
  const std::vector<core::BitwidthMixEntry> mix{
      {8, 8, 0.10}, {4, 4, 0.65}, {8, 2, 0.15}, {2, 2, 0.10}};

  // The engine prices every α×L point (cost model + mix utilization) on a
  // work-stealing pool — bit-identical to core::explore_design_space, just
  // parallel.
  engine::SimEngine eng;
  const auto points =
      eng.explore_design_space({1, 2, 4}, {1, 2, 4, 8, 16, 32}, 8, mix);

  Table t("CVU design space (per 8bx8b MAC, normalized to conventional)");
  t.set_header({"Geometry", "Power/op", "Area/op"});
  for (const auto& p : points) {
    t.add_row({p.geometry.to_string(), Table::ratio(p.cost.power_total()),
               Table::ratio(p.cost.area_total())});
  }
  t.print();

  const auto best = core::best_design(points, mix, /*min_utilization=*/0.9);
  std::printf("\nBest geometry for the mix: %s (bit-efficiency %.2f)\n",
              best.geometry.to_string().c_str(), best.mix_utilization);

  // Size an accelerator from it under the paper's 250 mW core budget.
  const arch::CvuCostModel cost;
  const double cvu_mw = cost.cvu_power_mw(best.geometry);
  const int cvus = static_cast<int>(250.0 / cvu_mw);
  std::printf("One CVU: %.2f mW, %.0f um^2  ->  %d CVUs fit a 250 mW core"
              " = %d MAC-equivalents\n",
              cvu_mw, cost.cvu_area_um2(best.geometry), cvus,
              cvus * best.geometry.lanes);

  // Compare against the paper's shipped configuration.
  const auto paper = sim::bpvec_accelerator();
  std::printf("Paper configuration: %d CVUs of %s = %lld MAC-equivalents\n",
              paper.num_pes(), paper.cvu.to_string().c_str(),
              static_cast<long long>(paper.equivalent_macs()));
  return 0;
}
