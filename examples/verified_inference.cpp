// Verified inference: run a complete quantized CNN twice — once through
// the integer reference operators, once with every dot product dispatched
// through a real Composable Vector Unit — and check the two are identical
// bit for bit, layer by layer. This is the library's answer to "does the
// composable datapath really compute the same network?"
#include <chrono>
#include <cstdio>

#include "src/common/rng.h"
#include "src/core/bpvec.h"

int main() {
  using namespace bpvec;

  // A CIFAR-scale mixed-precision CNN (8-bit edges, 4-bit body — the
  // Table-I heterogeneous pattern).
  dnn::Network net("cifar-cnn", dnn::NetworkType::kCnn);
  net.add(dnn::make_conv("conv1", {3, 32, 32, 16, 3, 3, 1, 1}));
  net.add(dnn::make_pool("pool1", {16, 32, 32, 2, 2}));
  net.add(dnn::make_conv("conv2", {16, 16, 16, 32, 3, 3, 1, 1}));
  net.add(dnn::make_pool("pool2", {32, 16, 16, 2, 2}));
  net.add(dnn::make_conv("conv3", {32, 8, 8, 64, 3, 3, 1, 1}));
  net.add(dnn::make_pool("pool3", {64, 8, 8, 2, 2, dnn::PoolKind::kAverage}));
  net.add(dnn::make_fc("fc", {64 * 4 * 4, 10}));
  auto& layers = net.layers();
  for (auto& l : layers) {
    l.x_bits = 4;
    l.w_bits = 4;
  }
  layers.front().x_bits = layers.front().w_bits = 8;
  layers.back().x_bits = layers.back().w_bits = 8;

  const auto stats = net.stats();
  std::printf("%s: %d compute layers, %.2f M MACs, %.0f KB weights\n",
              net.name().c_str(), stats.compute_layers,
              static_cast<double>(stats.total_macs) / 1e6,
              static_cast<double>(stats.total_weights) / 1024.0);

  // Synthetic image + weights (deterministic).
  Rng rng(7);
  dnn::Tensor image(3, 32, 32);
  for (auto& v : image.data()) v = rng.signed_value(8);
  const auto weights = dnn::random_weights(net, 99);

  const auto t0 = std::chrono::steady_clock::now();
  const auto reference = dnn::run_network(net, image, weights);
  const auto t1 = std::chrono::steady_clock::now();

  bitslice::Cvu cvu({2, 8, 16});
  const dnn::DotEngine engine = [&cvu](const std::vector<std::int32_t>& x,
                                       const std::vector<std::int32_t>& w,
                                       int xb, int wb) {
    return cvu.dot_product(x, w, xb, wb).value;
  };
  const auto through_cvu = dnn::run_network(net, image, weights, engine);
  const auto t2 = std::chrono::steady_clock::now();

  bool identical = true;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    if (reference[i].data() != through_cvu[i].data()) {
      identical = false;
      std::printf("  MISMATCH at layer %s\n", net.layers()[i].name.c_str());
    }
  }
  const auto ms = [](auto a, auto b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };
  std::printf("reference path: %.1f ms | CVU path: %.1f ms | %s\n",
              ms(t0, t1), ms(t1, t2),
              identical ? "BIT-IDENTICAL across all layers" : "MISMATCH");

  // And what the accelerator would do with it, per Table II.
  const auto run =
      core::Accelerator::bpvec(core::Memory::kDdr4).simulate(net);
  std::printf("simulated on BPVeC/DDR4: %.0f cycles (%.1f us), %.1f uJ\n",
              static_cast<double>(run.total_cycles), run.runtime_s * 1e6,
              run.energy_j * 1e6);
  return identical ? 0 : 1;
}
