// bpvec_run — price scenario manifests from the command line.
// All logic lives in src/cli/driver.cpp so tests can drive it in-process.
#include <iostream>

#include "src/cli/driver.h"

int main(int argc, char** argv) {
  return bpvec::cli::main_cli(argc, argv, std::cout, std::cerr);
}
