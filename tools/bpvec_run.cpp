// bpvec_run — price scenario manifests from the command line.
// Subcommands: (default) grid mode, `search` for the dse block, `list`
// for the canonical token vocabularies. `--network-file` registers
// custom workload-schema networks for the invocation.
// All logic lives in src/cli/driver.cpp so tests can drive it in-process.
#include <iostream>

#include "src/cli/driver.h"

int main(int argc, char** argv) {
  return bpvec::cli::main_cli(argc, argv, std::cout, std::cerr);
}
