// bpvec_serve — the resident pricing daemon, and its line client.
//
//   bpvec_serve --socket PATH [--cache-dir DIR] [--threads N]
//               [--grain N] [--network-file FILE]...
//       Serve forever over the Unix socket; SIGTERM/SIGINT drain
//       gracefully (in-flight requests finish, then the socket closes).
//
//   bpvec_serve request --socket PATH [--op OP] [--manifest FILE]
//               [--deterministic-report] [--search] [--chunk N]
//               [--report OUT] [--network-file FILE]...
//       Send one request envelope and print/write the response. With
//       --report, the served report document is written with the same
//       serialization the batch CLI uses — byte-identical output is the
//       determinism contract CI gates.
//
// Protocol reference: src/serve/server.h.
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/cli/report.h"
#include "src/common/error.h"
#include "src/common/json.h"
#include "src/serve/server.h"

namespace {

using bpvec::Error;
using bpvec::common::json::Value;

bpvec::serve::Server* g_server = nullptr;

extern "C" void handle_stop_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

void usage(std::ostream& out) {
  out << "usage: bpvec_serve --socket PATH [options]            daemon\n"
         "       bpvec_serve request --socket PATH [options]    client\n"
         "\n"
         "daemon options:\n"
         "  --socket PATH          Unix domain socket to listen on\n"
         "  --cache-dir DIR        persistent result cache (shared with "
         "bpvec_run)\n"
         "  --threads N            engine worker threads (default: "
         "hardware)\n"
         "  --grain N              engine parallel_for grain (default 0 = "
         "auto;\n"
         "                         results are grain-invariant)\n"
         "  --network-file FILE    register a workload-schema network at "
         "startup\n"
         "\n"
         "client options (request):\n"
         "  --socket PATH          daemon socket to connect to\n"
         "  --op OP                price|search|validate|list|stats|version|"
         "ping|shutdown\n"
         "                         (default: price)\n"
         "  --manifest FILE        manifest to embed in the envelope\n"
         "  --deterministic-report omit the run-dependent stats block\n"
         "  --search               validate the \"search\" block (with --op "
         "validate)\n"
         "  --chunk N              price cancellation granularity\n"
         "  --grain N              ask the daemon to use this engine grain\n"
         "                         (honored before its engine exists; must\n"
         "                         match afterwards)\n"
         "  --report OUT           write the served report document here\n"
         "  --network-file FILE    ask the daemon to register this file\n"
         "\n"
         "  --version              print build identity and exit\n"
         "  --help                 this text\n";
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
  out.flush();
  if (!out.good()) throw Error("cannot write file: " + path);
}

int connect_socket(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty()) throw Error("request mode needs --socket PATH");
  if (path.size() >= sizeof(addr.sun_path)) {
    throw Error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw Error(std::string("socket(): ") + std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    throw Error("connect(" + path + "): " + std::strerror(err));
  }
  return fd;
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("send(): ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

/// Reads whole lines until the final (non-heartbeat) response arrives.
Value read_final_response(int fd) {
  std::string buffer;
  char chunk[4096];
  while (true) {
    const std::size_t pos = buffer.find('\n');
    if (pos != std::string::npos) {
      const std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (line.empty()) continue;
      Value response = bpvec::common::json::parse(line);
      const Value* status = response.find("status");
      if (status != nullptr && status->is_string() &&
          status->as_string() == "running") {
        continue;  // heartbeat — the daemon is still working
      }
      return response;
    }
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("read(): ") + std::strerror(errno));
    }
    if (n == 0) throw Error("daemon closed the connection mid-response");
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

struct ClientOptions {
  std::string socket_path;
  std::string op = "price";
  std::string manifest_path;
  std::string report_path;
  std::vector<std::string> network_files;
  bool deterministic_report = false;
  bool search = false;
  std::int64_t chunk = 0;
  std::int64_t grain = -1;  // < 0: leave the envelope key out
};

int run_client(const ClientOptions& options) {
  Value envelope = Value::object();
  envelope.set("op", options.op);
  if (!options.manifest_path.empty()) {
    envelope.set("manifest",
                 bpvec::common::json::parse_file(options.manifest_path));
    // Same rule as load_manifest: relative workload "file" paths
    // resolve against the manifest's own directory.
    const std::size_t slash = options.manifest_path.find_last_of('/');
    if (slash != std::string::npos) {
      envelope.set("base_dir", options.manifest_path.substr(0, slash));
    }
  }
  if (options.deterministic_report) envelope.set("deterministic_report", true);
  if (options.search) envelope.set("search", true);
  if (options.chunk > 0) envelope.set("chunk", options.chunk);
  if (options.grain >= 0) envelope.set("grain", options.grain);
  if (!options.network_files.empty()) {
    Value files = Value::array();
    for (const std::string& f : options.network_files) files.push_back(f);
    envelope.set("network_files", std::move(files));
  }

  const int fd = connect_socket(options.socket_path);
  Value response;
  try {
    send_all(fd, envelope.dump() + "\n");
    response = read_final_response(fd);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);

  const Value* status = response.find("status");
  const std::string state =
      status != nullptr && status->is_string() ? status->as_string() : "";
  if (state == "error") {
    const Value* message = response.find("error");
    std::cerr << "bpvec_serve: error: "
              << (message != nullptr && message->is_string()
                      ? message->as_string()
                      : response.dump())
              << "\n";
    return 1;
  }
  if (state == "cancelled") {
    std::cerr << "bpvec_serve: request cancelled\n";
    return 1;
  }

  if (const Value* text = response.find("text")) {
    if (text->is_string()) std::cout << text->as_string();
  }
  if (const Value* report = response.find("report")) {
    if (options.report_path.empty()) {
      std::cout << report->dump(1) << "\n";
    } else {
      // dump(1) is exactly what bpvec_run writes — the round-trip
      // through the wire preserves every byte (deterministic writer,
      // %.17g doubles), so this file must cmp-equal the batch CLI's.
      write_file(options.report_path, report->dump(1));
      std::cout << "[bpvec_serve] wrote " << options.report_path << "\n";
    }
  }
  if (const Value* stats = response.find("stats")) {
    std::cout << stats->dump(1) << "\n";
  }
  if (const Value* version = response.find("version")) {
    std::cout << version->dump(1) << "\n";
  }
  if (options.op == "ping" || options.op == "shutdown") {
    std::cout << "ok\n";
  }
  return 0;
}

int main_serve(int argc, char** argv) {
  bool client_mode = false;
  ClientOptions client;
  bpvec::serve::ServerOptions server_options;

  std::vector<std::string> args(argv + 1, argv + argc);
  std::size_t i = 0;
  if (i < args.size() && args[i] == "request") {
    client_mode = true;
    ++i;
  }
  auto value_of = [&](const std::string& flag) -> const std::string& {
    if (i + 1 >= args.size()) throw Error(flag + " needs a value");
    return args[++i];
  };
  for (; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (arg == "--version") {
      std::cout << bpvec::cli::version_json().dump(1) << "\n";
      return 0;
    } else if (arg == "--socket") {
      const std::string& path = value_of(arg);
      server_options.socket_path = path;
      client.socket_path = path;
    } else if (arg == "--network-file") {
      const std::string& file = value_of(arg);
      server_options.network_files.push_back(file);
      client.network_files.push_back(file);
    } else if (!client_mode && arg == "--cache-dir") {
      server_options.session.cache_dir = value_of(arg);
    } else if (!client_mode && arg == "--threads") {
      server_options.session.threads = std::stoi(value_of(arg));
    } else if (!client_mode && arg == "--grain") {
      server_options.session.grain =
          static_cast<std::size_t>(std::stoull(value_of(arg)));
    } else if (client_mode && arg == "--op") {
      client.op = value_of(arg);
    } else if (client_mode && arg == "--manifest") {
      client.manifest_path = value_of(arg);
    } else if (client_mode && arg == "--report") {
      client.report_path = value_of(arg);
    } else if (client_mode && arg == "--deterministic-report") {
      client.deterministic_report = true;
    } else if (client_mode && arg == "--search") {
      client.search = true;
    } else if (client_mode && arg == "--chunk") {
      client.chunk = std::stoll(value_of(arg));
    } else if (client_mode && arg == "--grain") {
      client.grain = std::stoll(value_of(arg));
      if (client.grain < 0) throw Error("--grain must be >= 0");
    } else {
      throw Error("unknown flag: " + arg);
    }
  }

  if (client_mode) return run_client(client);

  if (server_options.socket_path.empty()) {
    usage(std::cerr);
    return 2;
  }
  bpvec::serve::Server server(server_options);
  g_server = &server;
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);
  std::cout << "[bpvec_serve] listening on " << server_options.socket_path
            << "\n"
            << std::flush;
  server.run();
  std::cout << "[bpvec_serve] drained\n";
  g_server = nullptr;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return main_serve(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "bpvec_serve: error: " << e.what() << "\n";
    return 1;
  }
}
