// bpvec_cache — disk-cache directory maintenance.
//
//   bpvec_cache inspect DIR
//       Walk the shard files and print a JSON summary: per-shard record
//       and byte counts, rejected (corrupt/foreign) records, live record
//       count after last-writer-wins, and any orphaned v2 .json entries.
//       Read-only; safe against a live cache.
//
//   bpvec_cache compact DIR
//       Rewrite every live record (checksum-valid, last writer wins)
//       into one fresh shard and delete the old shards. Record payloads
//       are copied verbatim, so compaction can never change what a later
//       load returns. Do not run against a directory another process is
//       actively writing.
//
//   bpvec_cache migrate-v2 DIR
//       Convert v2 one-JSON-file-per-entry caches (orphaned by the v3
//       format bump) into one v3 shard, deleting each migrated .json
//       file. Unreadable files are left in place and counted.
//
// All logic lives in src/engine/disk_cache.cpp so tests can drive it
// in-process.
#include <iostream>
#include <string>

#include "src/engine/disk_cache.h"

namespace {

void usage(std::ostream& out) {
  out << "usage: bpvec_cache inspect DIR      summarize shard files (JSON)\n"
         "       bpvec_cache compact DIR      merge shards, drop dead "
         "records\n"
         "       bpvec_cache migrate-v2 DIR   convert v2 .json entries to "
         "a v3 shard\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    usage(std::cerr);
    return 2;
  }
  const std::string cmd = argv[1];
  const std::string dir = argv[2];
  try {
    if (cmd == "inspect") {
      std::cout << bpvec::engine::to_json(bpvec::engine::inspect_cache_dir(dir))
                       .dump(1)
                << "\n";
      return 0;
    }
    if (cmd == "compact") {
      const bpvec::engine::CompactResult r =
          bpvec::engine::compact_cache_dir(dir);
      std::cout << "compacted " << dir << ": " << r.shards_before
                << " shards -> " << r.shards_after << ", " << r.records_kept
                << " records kept, " << r.records_dropped << " dropped\n";
      return 0;
    }
    if (cmd == "migrate-v2") {
      const bpvec::engine::MigrateResult r =
          bpvec::engine::migrate_v2_cache_dir(dir);
      std::cout << "migrated " << dir << ": " << r.migrated
                << " v2 entries converted, " << r.failed << " failed\n";
      return r.failed == 0 ? 0 : 1;
    }
  } catch (const std::exception& e) {
    std::cerr << "bpvec_cache: " << e.what() << "\n";
    return 1;
  }
  usage(std::cerr);
  return 2;
}
