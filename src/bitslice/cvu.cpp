#include "src/bitslice/cvu.h"

#include <algorithm>

#include "src/common/error.h"
#include "src/common/mathutil.h"

namespace bpvec::bitslice {

Cvu::Cvu(CvuGeometry geometry) : geometry_(geometry) {
  geometry_.validate();
  engines_.reserve(static_cast<std::size_t>(geometry_.num_nbves()));
  for (int i = 0; i < geometry_.num_nbves(); ++i) {
    engines_.emplace_back(geometry_.lanes, geometry_.slice_bits);
  }
}

CompositionPlan Cvu::plan_for(int x_bits, int w_bits) const {
  return plan_composition(geometry_, x_bits, w_bits);
}

CvuResult Cvu::dot_product(const std::vector<std::int32_t>& x,
                           const std::vector<std::int32_t>& w, int x_bits,
                           int w_bits, bool x_signed, bool w_signed) {
  BPVEC_CHECK_MSG(x.size() == w.size(), "operand vectors differ in length");
  const CompositionPlan plan = plan_composition(geometry_, x_bits, w_bits);

  const SlicedVector xs =
      x_signed ? slice_vector_signed(x, x_bits, geometry_.slice_bits)
               : slice_vector_unsigned(x, x_bits, geometry_.slice_bits);
  const SlicedVector ws =
      w_signed ? slice_vector_signed(w, w_bits, geometry_.slice_bits)
               : slice_vector_unsigned(w, w_bits, geometry_.slice_bits);
  BPVEC_CHECK(xs.slices() == plan.x_slices);
  BPVEC_CHECK(ws.slices() == plan.w_slices);

  CvuResult result;
  result.utilization = plan.utilization();

  const int lanes = geometry_.lanes;
  const std::size_t n = x.size();
  const std::size_t per_cycle =
      static_cast<std::size_t>(plan.elements_per_cycle());

  for (std::size_t base = 0; base < n; base += per_cycle) {
    // One CVU cycle: each cluster c covers elements
    // [base + c·L, base + (c+1)·L) of the vectors.
    std::int64_t cycle_sum = 0;
    for (const NbveAssignment& a : plan.assignments) {
      const std::size_t seg_begin = std::min(
          n, base + static_cast<std::size_t>(a.cluster) * lanes);
      const std::size_t seg_end =
          std::min(n, seg_begin + static_cast<std::size_t>(lanes));
      const std::size_t len = seg_end - seg_begin;
      if (len == 0) continue;

      Nbve& engine = engines_[static_cast<std::size_t>(a.nbve_index)];
      const std::int64_t partial = engine.dot_cycle(
          std::span<const std::int32_t>(&xs.sub[a.x_slice][seg_begin], len),
          std::span<const std::int32_t>(&ws.sub[a.w_slice][seg_begin], len));
      // Shift by the combined significance position (Eq. 3 factor 2^(j+k)α)
      // and aggregate. Cluster-private vs global aggregation is a hardware
      // cost distinction (see arch::CvuCostModel); the sum is associative,
      // so the functional model folds both levels together.
      cycle_sum += partial << a.shift;
      result.mult_ops += static_cast<std::int64_t>(len);
      result.add_ops += static_cast<std::int64_t>(len);
      result.shift_ops += 1;
    }
    result.value += cycle_sum;
    result.cycles += 1;
  }
  return result;
}

}  // namespace bpvec::bitslice
