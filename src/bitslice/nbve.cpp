#include "src/bitslice/nbve.h"

#include "src/common/error.h"

namespace bpvec::bitslice {

Nbve::Nbve(int lanes, int slice_bits)
    : lanes_(lanes), slice_bits_(slice_bits) {
  BPVEC_CHECK(lanes >= 1);
  BPVEC_CHECK(slice_bits >= 1 && slice_bits <= 8);
}

std::int64_t Nbve::dot_cycle(std::span<const std::int32_t> x,
                             std::span<const std::int32_t> w) {
  BPVEC_CHECK_MSG(x.size() == w.size(), "operand sub-vectors differ in size");
  BPVEC_CHECK_MSG(static_cast<int>(x.size()) <= lanes_,
                  "sub-vector longer than NBVE lane count");

  // Physical multiplier input range: a slice is either an unsigned α-bit
  // value or (top slice) a signed α-bit value, so any input lies in
  // [-2^(α-1), 2^α).
  const std::int32_t lo = -(std::int32_t{1} << (slice_bits_ - 1));
  const std::int32_t hi = (std::int32_t{1} << slice_bits_) - 1;

  std::int64_t acc = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    BPVEC_CHECK_MSG(x[i] >= lo && x[i] <= hi, "x slice exceeds datapath");
    BPVEC_CHECK_MSG(w[i] >= lo && w[i] <= hi, "w slice exceeds datapath");
    acc += static_cast<std::int64_t>(x[i]) * static_cast<std::int64_t>(w[i]);
  }
  mult_ops_ += static_cast<std::int64_t>(x.size());
  cycles_ += 1;
  return acc;
}

void Nbve::reset_stats() {
  mult_ops_ = 0;
  cycles_ = 0;
}

}  // namespace bpvec::bitslice
