// Composable Vector Unit (CVU): a dynamically composable collection of
// NBVEs (paper §III-A, Fig. 3).
//
// Functionally, a CVU evaluates exact integer vector dot-products by
// (1) bit-slicing both operand vectors,
// (2) dispatching each (x-slice, w-slice) significance pair to one NBVE,
// (3) shifting each NBVE's scalar output by α·(j+k), and
// (4) aggregating: first privately within a cluster (completing one
//     dot-product), then globally across clusters (extending the vector).
//
// The same object reports cycle counts under the paper's throughput model:
// per cycle the CVU consumes `clusters · L` elements of the operand
// vectors, where `clusters` grows as operand bitwidths shrink — the
// composability boost that fixed-bitwidth designs cannot reach.
#pragma once

#include <cstdint>
#include <vector>

#include "src/bitslice/bit_slicing.h"
#include "src/bitslice/composition.h"
#include "src/bitslice/nbve.h"

namespace bpvec::bitslice {

/// Outcome of executing one dot product on a CVU.
struct CvuResult {
  std::int64_t value = 0;      // exact dot-product value
  std::int64_t cycles = 0;     // cycles consumed under the throughput model
  std::int64_t mult_ops = 0;   // narrow multiplications actually issued
  std::int64_t shift_ops = 0;  // shift operations issued
  std::int64_t add_ops = 0;    // adder-tree input additions issued
  double utilization = 0.0;    // fraction of NBVEs engaged by the plan
};

class Cvu {
 public:
  explicit Cvu(CvuGeometry geometry);

  const CvuGeometry& geometry() const { return geometry_; }

  /// Exact dot product of x·w where x has `x_bits` and w has `w_bits`
  /// two's-complement bits (or unsigned when the flags say so). Vectors may
  /// be any equal length; the CVU iterates in chunks of
  /// plan.elements_per_cycle().
  CvuResult dot_product(const std::vector<std::int32_t>& x,
                        const std::vector<std::int32_t>& w, int x_bits,
                        int w_bits, bool x_signed = true,
                        bool w_signed = true);

  /// The plan the CVU would use for a bitwidth pair (for inspection).
  CompositionPlan plan_for(int x_bits, int w_bits) const;

 private:
  CvuGeometry geometry_;
  std::vector<Nbve> engines_;
};

}  // namespace bpvec::bitslice
