// Two's-complement bit-slicing: the arithmetic identity behind bit-parallel
// vector composability (paper §II, Eqs. 1–4).
//
// A signed `n`-bit value v is split into ceil(n/α) slices of α bits each.
// Slice j covers bit positions [α·j, α·(j+1)). Lower slices are interpreted
// as unsigned α-bit values; the most-significant slice is interpreted as a
// signed α-bit value (it carries the two's-complement sign weight). With
// that convention,
//
//   v = Σ_j 2^(α·j) · slice_j                                    (exact)
//
// and a product of two sliced values expands into the double sum of
// Eq. 2/Eq. 4, which the CVU evaluates with narrow multipliers + shift-add.
#pragma once

#include <cstdint>
#include <vector>

namespace bpvec::bitslice {

/// Number of α-bit slices needed to cover an `operand_bits`-wide value.
int num_slices(int operand_bits, int slice_bits);

/// Smallest multiple of `slice_bits` that covers `operand_bits`.
int padded_bits(int operand_bits, int slice_bits);

/// Splits a signed two's-complement value into α-bit slices, least
/// significant slice first. `value` must be representable in `operand_bits`
/// bits. Lower slices are returned zero-extended (in [0, 2^α)), the top
/// slice sign-extended (in [-2^(α-1), 2^(α-1))).
std::vector<std::int32_t> slice_signed(std::int32_t value, int operand_bits,
                                       int slice_bits);

/// Splits an unsigned value into α-bit slices; every slice zero-extended.
std::vector<std::int32_t> slice_unsigned(std::uint32_t value,
                                         int operand_bits, int slice_bits);

/// Inverse of slicing: Σ_j 2^(α·j)·slice_j.
std::int64_t recompose(const std::vector<std::int32_t>& slices,
                       int slice_bits);

/// True iff `value` is representable as a signed `bits`-wide integer.
bool fits_signed(std::int64_t value, int bits);

/// True iff `value` is representable as an unsigned `bits`-wide integer.
bool fits_unsigned(std::int64_t value, int bits);

/// A sliced vector: slice-major layout. sub[j][i] is slice j of element i.
/// Keeping sub-vectors contiguous mirrors how the hardware feeds one slice
/// index to one NBVE (each NBVE sees a full-length sub-vector of one
/// significance position).
struct SlicedVector {
  int operand_bits = 0;   // original (unpadded) bitwidth
  int slice_bits = 0;     // α
  bool is_signed = true;  // interpretation of the original values
  std::vector<std::vector<std::int32_t>> sub;  // [num_slices][n]

  int slices() const { return static_cast<int>(sub.size()); }
  std::size_t length() const { return sub.empty() ? 0 : sub[0].size(); }
};

/// Slices every element of `values` (signed interpretation).
SlicedVector slice_vector_signed(const std::vector<std::int32_t>& values,
                                 int operand_bits, int slice_bits);

/// Slices every element of `values` (unsigned interpretation). Values must
/// be non-negative and fit `operand_bits` unsigned bits.
SlicedVector slice_vector_unsigned(const std::vector<std::int32_t>& values,
                                   int operand_bits, int slice_bits);

/// Recomposes element `i` of a sliced vector.
std::int64_t recompose_element(const SlicedVector& sv, std::size_t i);

}  // namespace bpvec::bitslice
