#include "src/bitslice/bit_slicing.h"

#include "src/common/error.h"
#include "src/common/mathutil.h"

namespace bpvec::bitslice {

int num_slices(int operand_bits, int slice_bits) {
  BPVEC_CHECK(operand_bits >= 1 && slice_bits >= 1);
  return static_cast<int>(ceil_div(operand_bits, slice_bits));
}

int padded_bits(int operand_bits, int slice_bits) {
  return num_slices(operand_bits, slice_bits) * slice_bits;
}

bool fits_signed(std::int64_t value, int bits) {
  BPVEC_CHECK(bits >= 1 && bits <= 62);
  const std::int64_t lo = -(std::int64_t{1} << (bits - 1));
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  return value >= lo && value <= hi;
}

bool fits_unsigned(std::int64_t value, int bits) {
  BPVEC_CHECK(bits >= 1 && bits <= 62);
  return value >= 0 && value <= (std::int64_t{1} << bits) - 1;
}

std::vector<std::int32_t> slice_signed(std::int32_t value, int operand_bits,
                                       int slice_bits) {
  BPVEC_CHECK_MSG(fits_signed(value, operand_bits),
                  "value out of range for operand_bits");
  const int n = num_slices(operand_bits, slice_bits);
  const int width = n * slice_bits;
  // Two's-complement pattern of the value at the padded width.
  std::uint64_t pattern =
      static_cast<std::uint64_t>(value) & ((std::uint64_t{1} << width) - 1);

  std::vector<std::int32_t> slices(n);
  const std::uint64_t mask = (std::uint64_t{1} << slice_bits) - 1;
  for (int j = 0; j < n; ++j) {
    std::uint64_t raw = (pattern >> (j * slice_bits)) & mask;
    if (j == n - 1) {
      // Top slice: sign-extend from slice_bits.
      const std::uint64_t sign_bit = std::uint64_t{1} << (slice_bits - 1);
      if (raw & sign_bit) raw |= ~mask;
      slices[j] = static_cast<std::int32_t>(static_cast<std::int64_t>(raw));
    } else {
      slices[j] = static_cast<std::int32_t>(raw);
    }
  }
  return slices;
}

std::vector<std::int32_t> slice_unsigned(std::uint32_t value,
                                         int operand_bits, int slice_bits) {
  BPVEC_CHECK_MSG(fits_unsigned(static_cast<std::int64_t>(value), operand_bits),
                  "value out of range for operand_bits");
  const int n = num_slices(operand_bits, slice_bits);
  std::vector<std::int32_t> slices(n);
  const std::uint32_t mask = (slice_bits >= 32)
                                 ? ~std::uint32_t{0}
                                 : ((std::uint32_t{1} << slice_bits) - 1);
  for (int j = 0; j < n; ++j) {
    slices[j] = static_cast<std::int32_t>((value >> (j * slice_bits)) & mask);
  }
  return slices;
}

std::int64_t recompose(const std::vector<std::int32_t>& slices,
                       int slice_bits) {
  std::int64_t acc = 0;
  for (std::size_t j = 0; j < slices.size(); ++j) {
    acc += static_cast<std::int64_t>(slices[j])
           << (static_cast<int>(j) * slice_bits);
  }
  return acc;
}

namespace {
SlicedVector slice_vector_impl(const std::vector<std::int32_t>& values,
                               int operand_bits, int slice_bits,
                               bool is_signed) {
  SlicedVector sv;
  sv.operand_bits = operand_bits;
  sv.slice_bits = slice_bits;
  sv.is_signed = is_signed;
  const int n = num_slices(operand_bits, slice_bits);
  sv.sub.assign(n, std::vector<std::int32_t>(values.size()));
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto slices =
        is_signed ? slice_signed(values[i], operand_bits, slice_bits)
                  : slice_unsigned(static_cast<std::uint32_t>(values[i]),
                                   operand_bits, slice_bits);
    for (int j = 0; j < n; ++j) sv.sub[j][i] = slices[j];
  }
  return sv;
}
}  // namespace

SlicedVector slice_vector_signed(const std::vector<std::int32_t>& values,
                                 int operand_bits, int slice_bits) {
  return slice_vector_impl(values, operand_bits, slice_bits, /*signed=*/true);
}

SlicedVector slice_vector_unsigned(const std::vector<std::int32_t>& values,
                                   int operand_bits, int slice_bits) {
  return slice_vector_impl(values, operand_bits, slice_bits,
                           /*signed=*/false);
}

std::int64_t recompose_element(const SlicedVector& sv, std::size_t i) {
  BPVEC_CHECK(i < sv.length());
  std::int64_t acc = 0;
  for (int j = 0; j < sv.slices(); ++j) {
    acc += static_cast<std::int64_t>(sv.sub[j][i]) << (j * sv.slice_bits);
  }
  return acc;
}

}  // namespace bpvec::bitslice
