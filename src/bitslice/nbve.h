// Narrow-Bitwidth Vector Engine (NBVE): the building block of a CVU
// (paper §III-A, Fig. 3a).
//
// An NBVE is a spatial array of L narrow (α-bit × α-bit) multipliers whose
// products feed a private adder tree, producing one scalar per cycle: the
// dot product of two α-bit-sliced sub-vectors of length ≤ L. This class is
// the *functional* model (bit-exact behaviour); the area/power of the same
// structure is modelled in src/arch/cvu_cost.
#pragma once

#include <cstdint>
#include <span>

#include "src/bitslice/composition.h"

namespace bpvec::bitslice {

class Nbve {
 public:
  /// `lanes` = L, `slice_bits` = α. Both must be >= 1.
  Nbve(int lanes, int slice_bits);

  int lanes() const { return lanes_; }
  int slice_bits() const { return slice_bits_; }

  /// One cycle of the engine: multiplies x[i]·w[i] lane-wise and reduces
  /// through the adder tree. x and w must have equal size ≤ lanes(); unused
  /// lanes are gated off (contribute 0). Slice operands must fit in
  /// slice_bits as signed values when `signed_slice` or unsigned otherwise —
  /// the caller (the CVU) guarantees this by construction; the engine
  /// checks it to model the physical datapath width.
  std::int64_t dot_cycle(std::span<const std::int32_t> x,
                         std::span<const std::int32_t> w);

  /// Cumulative number of multiply operations issued (active lanes only).
  std::int64_t mult_ops() const { return mult_ops_; }
  /// Cumulative number of cycles executed.
  std::int64_t cycles() const { return cycles_; }
  void reset_stats();

 private:
  int lanes_;
  int slice_bits_;
  std::int64_t mult_ops_ = 0;
  std::int64_t cycles_ = 0;
};

}  // namespace bpvec::bitslice
