#include "src/bitslice/composition.h"

#include <sstream>

#include "src/bitslice/bit_slicing.h"
#include "src/common/error.h"
#include "src/common/mathutil.h"

namespace bpvec::bitslice {

int CvuGeometry::slices_per_operand() const { return max_bits / slice_bits; }

int CvuGeometry::num_nbves() const {
  const int s = slices_per_operand();
  return s * s;
}

int CvuGeometry::num_multipliers() const { return num_nbves() * lanes; }

void CvuGeometry::validate() const {
  BPVEC_CHECK_MSG(slice_bits >= 1 && slice_bits <= 8, "slice_bits in [1,8]");
  BPVEC_CHECK_MSG(max_bits >= slice_bits, "max_bits >= slice_bits");
  BPVEC_CHECK_MSG(max_bits % slice_bits == 0,
                  "max_bits must be a multiple of slice_bits");
  BPVEC_CHECK_MSG(lanes >= 1, "lanes >= 1");
}

std::string CvuGeometry::to_string() const {
  std::ostringstream os;
  os << "CVU(alpha=" << slice_bits << "b, B=" << max_bits << "b, L=" << lanes
     << ", NBVEs=" << num_nbves() << ")";
  return os.str();
}

int CompositionPlan::elements_per_cycle() const {
  return clusters * geometry.lanes;
}

double CompositionPlan::speedup_vs_max_bitwidth() const {
  return static_cast<double>(clusters);
}

double CompositionPlan::utilization() const {
  return static_cast<double>(clusters * pairs) /
         static_cast<double>(geometry.num_nbves());
}

double CompositionPlan::bit_efficiency() const {
  const double useful =
      static_cast<double>(x_bits) * w_bits * clusters;
  const double provisioned =
      static_cast<double>(geometry.num_nbves()) * geometry.slice_bits *
      geometry.slice_bits;
  return useful / provisioned;
}

std::string CompositionPlan::to_string() const {
  std::ostringstream os;
  os << geometry.to_string() << " executing " << x_bits << "b x " << w_bits
     << "b: " << x_slices << "x" << w_slices << " slice pairs, " << clusters
     << " cluster(s), " << elements_per_cycle() << " elements/cycle, "
     << "utilization " << utilization();
  return os.str();
}

CompositionPlan plan_composition(const CvuGeometry& geometry, int x_bits,
                                 int w_bits) {
  geometry.validate();
  BPVEC_CHECK_MSG(x_bits >= 1 && x_bits <= geometry.max_bits,
                  "x_bits out of range for CVU geometry");
  BPVEC_CHECK_MSG(w_bits >= 1 && w_bits <= geometry.max_bits,
                  "w_bits out of range for CVU geometry");

  CompositionPlan plan;
  plan.geometry = geometry;
  plan.x_bits = x_bits;
  plan.w_bits = w_bits;
  plan.x_slices = num_slices(x_bits, geometry.slice_bits);
  plan.w_slices = num_slices(w_bits, geometry.slice_bits);
  plan.pairs = plan.x_slices * plan.w_slices;

  const int total = geometry.num_nbves();
  BPVEC_CHECK_MSG(plan.pairs <= total,
                  "bitwidth pair needs more NBVEs than the CVU has");
  plan.clusters = total / plan.pairs;

  plan.assignments.reserve(
      static_cast<std::size_t>(plan.clusters * plan.pairs));
  int nbve = 0;
  for (int c = 0; c < plan.clusters; ++c) {
    for (int j = 0; j < plan.x_slices; ++j) {
      for (int k = 0; k < plan.w_slices; ++k) {
        NbveAssignment a;
        a.nbve_index = nbve++;
        a.cluster = c;
        a.x_slice = j;
        a.w_slice = k;
        a.shift = geometry.slice_bits * (j + k);
        plan.assignments.push_back(a);
      }
    }
  }
  return plan;
}

}  // namespace bpvec::bitslice
