// Composition planning: how a CVU's NBVEs are grouped at runtime to match
// the bitwidths of a layer (paper §III-A, Fig. 3b/3c).
//
// A CVU built for maximum bitwidth B with slice width α contains
// S = (B/α)² NBVEs. Executing a bw_x × bw_w dot product needs
// pairs = (bw_x/α)·(bw_w/α) significance positions. The planner groups the
// S NBVEs into `clusters = S / pairs` clusters; each cluster privately
// shift-adds its `pairs` NBVE outputs to finish one dot-product of length L,
// and the CVU globally aggregates the clusters — multiplying the effective
// vector length by `clusters` (the composability boost of Fig. 2b).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bpvec::bitslice {

/// Static geometry of a Composable Vector Unit.
struct CvuGeometry {
  int slice_bits = 2;   // α: bitwidth of the narrow multipliers
  int max_bits = 8;     // B: maximum supported operand bitwidth
  int lanes = 16;       // L: multipliers per NBVE (vector lanes)

  /// Slices per max-width operand: B/α.
  int slices_per_operand() const;
  /// NBVEs in the CVU: (B/α)².
  int num_nbves() const;
  /// Narrow multipliers in the whole CVU: num_nbves() · lanes.
  int num_multipliers() const;
  /// Validates the geometry (throws bpvec::Error when inconsistent).
  void validate() const;

  std::string to_string() const;
};

/// Assignment of one NBVE inside a composition plan.
struct NbveAssignment {
  int nbve_index = 0;   // which physical NBVE
  int cluster = 0;      // which cluster it belongs to
  int x_slice = 0;      // significance position of the input slice (j)
  int w_slice = 0;      // significance position of the weight slice (k)
  int shift = 0;        // α·(j + k): left-shift applied to its scalar output
};

/// A composition plan for executing bw_x × bw_w dot products on a CVU.
struct CompositionPlan {
  CvuGeometry geometry;
  int x_bits = 8;       // requested input bitwidth (possibly unpadded)
  int w_bits = 8;       // requested weight bitwidth
  int x_slices = 4;     // (padded x_bits)/α
  int w_slices = 4;     // (padded w_bits)/α
  int pairs = 16;       // x_slices · w_slices = NBVEs per cluster
  int clusters = 1;     // S / pairs
  std::vector<NbveAssignment> assignments;  // size == S when fully used

  /// Effective dot-product elements the CVU consumes per cycle:
  /// clusters · lanes.
  int elements_per_cycle() const;

  /// Throughput boost relative to the homogeneous max-bitwidth mode
  /// (== clusters).
  double speedup_vs_max_bitwidth() const;

  /// Fraction of the CVU's NBVEs doing useful work (1.0 when `pairs`
  /// divides S; < 1.0 when the bitwidth mix leaves engines idle).
  double utilization() const;

  /// Fraction of provisioned bit-level work that is useful:
  /// x_bits·w_bits·clusters / (S·α²). Unlike utilization(), this also
  /// charges *padding waste* — e.g. 2-bit operands on 4-bit slices keep
  /// every engine busy but throw away 3/4 of each product (the paper's
  /// argument for 2-bit over 4-bit slicing, §III-B).
  double bit_efficiency() const;

  std::string to_string() const;
};

/// Builds the composition plan for (x_bits, w_bits) on `geometry`.
/// Bitwidths are padded up to multiples of α; bitwidths above
/// geometry.max_bits are rejected.
CompositionPlan plan_composition(const CvuGeometry& geometry, int x_bits,
                                 int w_bits);

}  // namespace bpvec::bitslice
