#include "src/common/token.h"

#include <cctype>

namespace bpvec::common {

std::string normalize_token(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '-' || c == '_') continue;
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string quoted_token_list(const std::vector<std::string>& options) {
  std::string out;
  for (std::size_t i = 0; i < options.size(); ++i) {
    out += (i ? ", \"" : "\"");
    out += options[i];
    out += '"';
  }
  return out;
}

}  // namespace bpvec::common
