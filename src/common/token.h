// Token matching shared by the manifest schema and the dse knob/metric/
// strategy vocabularies: one normalization rule, one error-message list
// format — so "ResNet-18" == "resnet18" and "hill-climb" == "hill_climb"
// everywhere, and a future tweak to the rule cannot make the layers
// disagree.
#pragma once

#include <string>
#include <vector>

namespace bpvec::common {

/// Case-folds and strips '-' and '_'.
std::string normalize_token(const std::string& s);

/// `"a", "b", "c"` — the quoted comma list error messages print after
/// "expected one of".
std::string quoted_token_list(const std::vector<std::string>& options);

}  // namespace bpvec::common
