// Deterministic random number generation for tests, benchmarks, and
// synthetic workload data. All randomness in the repository flows through
// this class so experiments are reproducible bit-for-bit.
//
// There is deliberately no process-global generator: every consumer owns
// (or is handed) an Rng instance, and parallel work derives one
// independent stream per task via fork() — the stream depends only on
// (parent seed state, stream index), never on thread identity or
// scheduling, so batch results are bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <vector>

namespace bpvec {

/// xoshiro256** — small, fast, reproducible across platforms (unlike
/// std::mt19937 distributions, whose outputs are not pinned by the standard).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform01();

  /// Uniform signed value representable in `bits` two's-complement bits,
  /// i.e. in [-2^(bits-1), 2^(bits-1) - 1]. Requires 1 <= bits <= 32.
  std::int32_t signed_value(int bits);

  /// Uniform unsigned value in [0, 2^bits - 1]. Requires 1 <= bits <= 32.
  std::uint32_t unsigned_value(int bits);

  /// Vector of `n` signed `bits`-wide values.
  std::vector<std::int32_t> signed_vector(std::size_t n, int bits);

  /// Derives an independent child stream. Deterministic in (current
  /// state, stream): forking streams 0…n-1 off one parent gives the same
  /// n generators no matter which threads consume them or in what order.
  /// Does not advance this generator, so distinct `stream` values can be
  /// forked off one parent concurrently with a const reference.
  Rng fork(std::uint64_t stream) const;

 private:
  std::uint64_t s_[4];
};

}  // namespace bpvec
