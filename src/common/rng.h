// Deterministic random number generation for tests, benchmarks, and
// synthetic workload data. All randomness in the repository flows through
// this class so experiments are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

namespace bpvec {

/// xoshiro256** — small, fast, reproducible across platforms (unlike
/// std::mt19937 distributions, whose outputs are not pinned by the standard).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform01();

  /// Uniform signed value representable in `bits` two's-complement bits,
  /// i.e. in [-2^(bits-1), 2^(bits-1) - 1]. Requires 1 <= bits <= 32.
  std::int32_t signed_value(int bits);

  /// Uniform unsigned value in [0, 2^bits - 1]. Requires 1 <= bits <= 32.
  std::uint32_t unsigned_value(int bits);

  /// Vector of `n` signed `bits`-wide values.
  std::vector<std::int32_t> signed_vector(std::size_t n, int bits);

 private:
  std::uint64_t s_[4];
};

}  // namespace bpvec
