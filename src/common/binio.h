// Packed little-endian binary codec backing the disk cache's v3 shard
// format (src/engine/disk_cache.h).
//
// The JSON entry format it replaces round-tripped doubles through %.17g
// text — bit-exact, but a full parse per load. This codec writes
// fixed-width little-endian integers and raw IEEE-754 bit patterns, so a
// load is a bounds-checked memcpy walk: no number formatting, no parser,
// and the same bit-exactness guarantee by construction (f64 writes the
// 64 payload bits verbatim; every double — inf, nan payloads, -0.0,
// denormals — survives a round trip unchanged).
//
// Encoding is byte-wise little-endian regardless of host endianness, so
// shard files are portable across machines sharing a cache directory.
// Strings are u32-length-prefixed raw bytes (embedded NULs fine).
//
// Reader is strict: every read is bounds-checked and a truncated or
// overrun buffer throws bpvec::Error — the disk cache converts that into
// a rejected (re-priced) entry, never a crash or a wrong number.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "src/common/error.h"

namespace bpvec::common::binio {

/// Append-only encoder over a growable byte buffer.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    char b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    buf_.append(b, 4);
  }

  void u64(std::uint64_t v) {
    char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    buf_.append(b, 8);
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  /// Raw IEEE-754 bit pattern — the round trip is the identity for every
  /// double, including non-finite values and nan payloads.
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

  void str(const std::string& s) {
    BPVEC_CHECK_MSG(s.size() <= 0xFFFFFFFFull, "binio: string too long");
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s);
  }

  const std::string& bytes() const { return buf_; }
  std::size_t size() const { return buf_.size(); }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked decoder over a borrowed byte range (the caller keeps
/// the buffer alive). Throws bpvec::Error on any read past the end.
class Reader {
 public:
  Reader(const char* data, std::size_t size) : data_(data), size_(size) {}
  explicit Reader(std::string_view bytes)
      : Reader(bytes.data(), bytes.size()) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(data_ + pos_, n);
    pos_ += n;
    return s;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n) {
      throw Error("binio: truncated buffer (need " + std::to_string(n) +
                  " bytes, have " + std::to_string(size_ - pos_) + ")");
    }
  }

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// 64-bit content checksum over a byte range (word-at-a-time murmur-style
/// mix, same family as common::ConfigHash). Detects the torn/overwritten
/// records a length-prefixed scan alone cannot.
std::uint64_t checksum(const char* data, std::size_t size);

inline std::uint64_t checksum(std::string_view bytes) {
  return checksum(bytes.data(), bytes.size());
}

}  // namespace bpvec::common::binio
