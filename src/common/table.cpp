#include "src/common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/common/error.h"

namespace bpvec {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> header) {
  BPVEC_CHECK_MSG(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  BPVEC_CHECK_MSG(row.size() == header_.size(),
                  "row arity must match header");
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::ratio(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*fx", precision, v);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      os << std::string(width[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace bpvec
