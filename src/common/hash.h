// 64-bit configuration hashing shared by the scenario and backend
// fingerprints (engine result cache, layer-granular memo cache).
//
// Word-at-a-time mixer (murmur-style finalizer per word folded into an
// FNV-ish chain). Fingerprinting sits on the batch hot path —
// byte-at-a-time FNV costs as much as the simulation itself on the
// many-layer networks, word mixing is ~8x cheaper at equivalent quality.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace bpvec::common {

struct ConfigHash {
  std::uint64_t h = 0xCBF29CE484222325ull;

  void u64(std::uint64_t v) {
    v *= 0xFF51AFD7ED558CCDull;
    v ^= v >> 33;
    h = (h ^ v) * 0x100000001B3ull;
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void i32(int v) { i64(v); }
  void f64(double v) {
    // Hash the bit pattern: results are bit-identical iff inputs are.
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    std::size_t i = 0;
    for (; i + 8 <= s.size(); i += 8) {
      std::uint64_t w;
      std::memcpy(&w, s.data() + i, 8);
      u64(w);
    }
    std::uint64_t tail = 0;
    if (i < s.size()) {
      std::memcpy(&tail, s.data() + i, s.size() - i);
      u64(tail);
    }
  }
};

/// Order-sensitive combination of two 64-bit hashes (cache keys built
/// from independently computed fingerprints).
inline std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  ConfigHash f;
  f.u64(a);
  f.u64(b);
  return f.h;
}

}  // namespace bpvec::common
