#include "src/common/binio.h"

namespace bpvec::common::binio {
namespace {

constexpr std::uint64_t kSeed = 0x42505633434b5355ull;  // "BPV3CKSU"

std::uint64_t mix(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ull;
  h ^= h >> 33;
  return h;
}

}  // namespace

std::uint64_t checksum(const char* data, std::size_t size) {
  std::uint64_t h = kSeed ^ (0x100000001B3ull * size);
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t word;
    std::memcpy(&word, data + i, 8);
    h = mix(h ^ word) * 0x100000001B3ull;
  }
  std::uint64_t tail = 0;
  for (std::size_t j = 0; i + j < size; ++j) {
    tail |= static_cast<std::uint64_t>(static_cast<unsigned char>(data[i + j]))
            << (8 * j);
  }
  if (i < size) h = mix(h ^ tail) * 0x100000001B3ull;
  return mix(h);
}

}  // namespace bpvec::common::binio
