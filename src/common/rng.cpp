#include "src/common/rng.h"

#include "src/common/error.h"

namespace bpvec {

namespace {
std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the four lanes via splitmix64 as recommended by the xoshiro authors.
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  BPVEC_CHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int32_t Rng::signed_value(int bits) {
  BPVEC_CHECK(bits >= 1 && bits <= 32);
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  const std::int64_t lo = -(std::int64_t{1} << (bits - 1));
  return static_cast<std::int32_t>(uniform(lo, hi));
}

std::uint32_t Rng::unsigned_value(int bits) {
  BPVEC_CHECK(bits >= 1 && bits <= 32);
  const std::int64_t hi = (std::int64_t{1} << bits) - 1;
  return static_cast<std::uint32_t>(uniform(0, hi));
}

Rng Rng::fork(std::uint64_t stream) const {
  // Mix the parent's full 256-bit state with the stream index through
  // splitmix64; child lanes are decorrelated from the parent and from
  // sibling streams (same construction as seeding, applied per lane).
  Rng child(0);
  std::uint64_t sm = stream ^ 0xA0761D6478BD642Full;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t mixed = s_[i] ^ splitmix64(sm);
    child.s_[i] = splitmix64(mixed);
  }
  return child;
}

std::vector<std::int32_t> Rng::signed_vector(std::size_t n, int bits) {
  std::vector<std::int32_t> v(n);
  for (auto& x : v) x = signed_value(bits);
  return v;
}

}  // namespace bpvec
