// Console table and CSV emission used by benchmark binaries to print the
// rows/series corresponding to each table and figure of the paper.
#pragma once

#include <string>
#include <vector>

namespace bpvec {

/// A simple column-aligned text table with an optional title. Cells are
/// strings; numeric helpers format with fixed precision.
class Table {
 public:
  explicit Table(std::string title = "");

  /// Sets the header row. Must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Adds a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Formats a double as e.g. "1.43x" (ratio) or plain fixed decimal.
  static std::string num(double v, int precision = 2);
  static std::string ratio(double v, int precision = 2);

  /// Renders to an aligned ASCII table.
  std::string to_string() const;

  /// Renders as CSV (header + rows), suitable for plotting scripts.
  std::string to_csv() const;

  /// Prints to stdout (table form).
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bpvec
