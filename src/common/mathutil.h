// Small integer/real math helpers shared across the library.
#pragma once

#include <cstdint>
#include <vector>

namespace bpvec {

/// ceil(a / b) for positive integers.
std::int64_t ceil_div(std::int64_t a, std::int64_t b);

/// True iff v is a power of two (v > 0).
bool is_pow2(std::int64_t v);

/// floor(log2(v)) for v > 0.
int ilog2(std::int64_t v);

/// Geometric mean of a nonempty vector of positive values.
double geomean(const std::vector<double>& v);

/// Round `v` up to the next multiple of `m` (m > 0).
std::int64_t round_up(std::int64_t v, std::int64_t m);

}  // namespace bpvec
