// Minimal dependency-free JSON reader/writer.
//
// The CLI driver, the scenario manifests, the persistent disk cache, and
// the BENCH_*.json emitters all speak JSON; this is the one
// implementation they share so escaping and number formatting cannot
// drift between them.
//
// Design constraints (why not "just parse with a library"):
//   * No third-party dependencies — the container bakes in only the C++
//     toolchain.
//   * Integers and doubles stay distinct kinds: cycle counts are int64
//     and must round-trip exactly; doubles are written with %.17g so a
//     write→parse round trip reproduces the identical bit pattern (the
//     disk cache's bit-identity guarantee rests on this).
//   * Object members preserve insertion order and the writer is fully
//     deterministic, so two runs producing equal values produce
//     byte-identical files (the CI gate compares reports with cmp).
//   * Parse errors carry line/column and a message — manifests are
//     hand-written, so "unexpected token" alone is not acceptable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bpvec::common::json {

class Value;

/// Array elements in document order.
using Array = std::vector<Value>;
/// Object members in insertion order (deterministic output; duplicate
/// keys are a parse error).
using Member = std::pair<std::string, Value>;
using Object = std::vector<Member>;

class Value {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() = default;  // null
  Value(std::nullptr_t) {}
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(int v) : kind_(Kind::kInt), int_(v) {}
  Value(std::int64_t v) : kind_(Kind::kInt), int_(v) {}
  Value(std::uint64_t v);  // throws when it does not fit in int64
  Value(double v) : kind_(Kind::kDouble), double_(v) {}
  Value(const char* s) : kind_(Kind::kString), string_(s) {}
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  static Value array() { Value v; v.kind_ = Kind::kArray; return v; }
  static Value object() { Value v; v.kind_ = Kind::kObject; return v; }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_double() const { return kind_ == Kind::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Checked accessors — throw bpvec::Error naming the expected and
  // actual kinds on mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;  // kInt only (no silent truncation)
  double as_double() const;     // kInt or kDouble (int converts exactly)
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& members() const;

  // ----- object helpers -----

  /// Pointer to the member value, or nullptr when absent (or not an
  /// object).
  const Value* find(const std::string& key) const;
  /// Member value; throws bpvec::Error naming `key` when absent.
  const Value& at(const std::string& key) const;
  /// Appends (or overwrites) a member. Value must be an object.
  void set(std::string key, Value v);

  // ----- array helpers -----

  /// Appends an element. Value must be an array.
  void push_back(Value v);
  std::size_t size() const;  // array/object arity; throws otherwise

  /// Serializes the value. indent < 0: compact single line; indent >= 0:
  /// pretty-printed with `indent` spaces per level. Output is
  /// deterministic. Non-finite doubles serialize as null (JSON has no
  /// inf/nan) — values that must round-trip exactly must be finite.
  std::string dump(int indent = -1) const;

  /// Deep equality. Int and double never compare equal (1 != 1.0): the
  /// distinction is what makes cycle counts exact.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

 private:
  const char* kind_name() const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses a complete JSON document (trailing garbage is an error).
/// Throws bpvec::Error with "line L, column C" context on malformed
/// input, duplicate object keys, or nesting deeper than 200 levels.
Value parse(std::string_view text);

/// Reads and parses `path`; error messages include the path.
Value parse_file(const std::string& path);

/// Formats a finite double so that parsing the result reproduces the
/// identical bit pattern (%.17g, with ".0" appended to integral forms so
/// the value re-parses as a double, preserving e.g. the sign of -0.0).
/// Non-finite values format as "null".
std::string format_double(double v);

}  // namespace bpvec::common::json
