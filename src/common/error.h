// Error handling primitives for the bpvec library.
//
// The library throws `bpvec::Error` (a std::runtime_error subclass) for
// violated preconditions on public APIs. Internal invariants use
// BPVEC_CHECK, which always fires (it is not compiled out in release
// builds): a hardware model that silently produces wrong numbers is worse
// than one that stops.
#pragma once

#include <stdexcept>
#include <string>

namespace bpvec {

/// Exception type thrown by all bpvec components.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void fail_check(const char* expr, const char* file, int line,
                             const std::string& msg);
}  // namespace detail

/// Always-on invariant check. Throws bpvec::Error with location info.
#define BPVEC_CHECK(expr)                                                 \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::bpvec::detail::fail_check(#expr, __FILE__, __LINE__, "");         \
    }                                                                     \
  } while (false)

/// Invariant check with an explanatory message.
#define BPVEC_CHECK_MSG(expr, msg)                                        \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::bpvec::detail::fail_check(#expr, __FILE__, __LINE__, (msg));      \
    }                                                                     \
  } while (false)

}  // namespace bpvec
