#include "src/common/mathutil.h"

#include <cmath>

#include "src/common/error.h"

namespace bpvec {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  BPVEC_CHECK(a >= 0 && b > 0);
  return (a + b - 1) / b;
}

bool is_pow2(std::int64_t v) { return v > 0 && (v & (v - 1)) == 0; }

int ilog2(std::int64_t v) {
  BPVEC_CHECK(v > 0);
  int r = 0;
  while (v > 1) {
    v >>= 1;
    ++r;
  }
  return r;
}

double geomean(const std::vector<double>& v) {
  BPVEC_CHECK(!v.empty());
  double acc = 0.0;
  for (double x : v) {
    BPVEC_CHECK(x > 0.0);
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(v.size()));
}

std::int64_t round_up(std::int64_t v, std::int64_t m) {
  BPVEC_CHECK(v >= 0 && m > 0);
  return ceil_div(v, m) * m;
}

}  // namespace bpvec
