#include "src/common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "src/common/error.h"

namespace bpvec::common::json {

namespace {

[[noreturn]] void kind_error(const char* expected, const char* actual) {
  throw Error(std::string("json: expected ") + expected + ", got " + actual);
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

Value::Value(std::uint64_t v) : kind_(Kind::kInt) {
  BPVEC_CHECK_MSG(v <= static_cast<std::uint64_t>(
                           std::numeric_limits<std::int64_t>::max()),
                  "json: unsigned value does not fit in int64");
  int_ = static_cast<std::int64_t>(v);
}

const char* Value::kind_name() const {
  switch (kind_) {
    case Kind::kNull: return "null";
    case Kind::kBool: return "bool";
    case Kind::kInt: return "int";
    case Kind::kDouble: return "double";
    case Kind::kString: return "string";
    case Kind::kArray: return "array";
    case Kind::kObject: return "object";
  }
  return "?";
}

bool Value::as_bool() const {
  if (!is_bool()) kind_error("bool", kind_name());
  return bool_;
}

std::int64_t Value::as_int() const {
  if (!is_int()) kind_error("int", kind_name());
  return int_;
}

double Value::as_double() const {
  if (is_int()) return static_cast<double>(int_);
  if (!is_double()) kind_error("number", kind_name());
  return double_;
}

const std::string& Value::as_string() const {
  if (!is_string()) kind_error("string", kind_name());
  return string_;
}

const Array& Value::as_array() const {
  if (!is_array()) kind_error("array", kind_name());
  return array_;
}

Array& Value::as_array() {
  if (!is_array()) kind_error("array", kind_name());
  return array_;
}

const Object& Value::members() const {
  if (!is_object()) kind_error("object", kind_name());
  return object_;
}

const Value* Value::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const Member& m : object_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

const Value& Value::at(const std::string& key) const {
  if (!is_object()) kind_error("object", kind_name());
  const Value* v = find(key);
  if (v == nullptr) throw Error("json: missing key \"" + key + "\"");
  return *v;
}

void Value::set(std::string key, Value v) {
  if (!is_object()) kind_error("object", kind_name());
  for (Member& m : object_) {
    if (m.first == key) {
      m.second = std::move(v);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
}

void Value::push_back(Value v) {
  if (!is_array()) kind_error("array", kind_name());
  array_.push_back(std::move(v));
}

std::size_t Value::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  kind_error("array or object", kind_name());
}

bool Value::operator==(const Value& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull: return true;
    case Kind::kBool: return bool_ == other.bool_;
    case Kind::kInt: return int_ == other.int_;
    case Kind::kDouble:
      // Bit-pattern comparison would distinguish -0.0 from 0.0 but also
      // NaN from itself; value comparison matches what round-trip
      // guarantees promise (finite values).
      return double_ == other.double_;
    case Kind::kString: return string_ == other.string_;
    case Kind::kArray: return array_ == other.array_;
    case Kind::kObject: return object_ == other.object_;
  }
  return false;
}

std::string format_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  std::string s(buf);
  // Integral forms ("5", "-0", "1e+300") would re-parse as an int (or
  // lose -0.0); force a '.' so the kind and bit pattern survive.
  if (s.find_first_of(".eE") == std::string::npos) s += ".0";
  return s;
}

namespace {

struct Writer {
  std::string out;
  int indent;  // < 0: compact

  void newline(int depth) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) *
                   static_cast<std::size_t>(depth),
               ' ');
  }

  void write(const Value& v, int depth) {
    switch (v.kind()) {
      case Value::Kind::kNull: out += "null"; return;
      case Value::Kind::kBool: out += v.as_bool() ? "true" : "false"; return;
      case Value::Kind::kInt: out += std::to_string(v.as_int()); return;
      case Value::Kind::kDouble: out += format_double(v.as_double()); return;
      case Value::Kind::kString: append_escaped(out, v.as_string()); return;
      case Value::Kind::kArray: {
        const Array& a = v.as_array();
        if (a.empty()) {
          out += "[]";
          return;
        }
        out += '[';
        for (std::size_t i = 0; i < a.size(); ++i) {
          if (i) out += ',';
          newline(depth + 1);
          write(a[i], depth + 1);
        }
        newline(depth);
        out += ']';
        return;
      }
      case Value::Kind::kObject: {
        const Object& o = v.members();
        if (o.empty()) {
          out += "{}";
          return;
        }
        out += '{';
        for (std::size_t i = 0; i < o.size(); ++i) {
          if (i) out += ',';
          newline(depth + 1);
          append_escaped(out, o[i].first);
          out += indent < 0 ? ":" : ": ";
          write(o[i].second, depth + 1);
        }
        newline(depth);
        out += '}';
        return;
      }
    }
  }
};

}  // namespace

std::string Value::dump(int indent) const {
  Writer w{std::string(), indent};
  w.write(*this, 0);
  if (indent >= 0) w.out += '\n';
  return w.out;
}

// ----------------------------------------------------------------- parser

namespace {

constexpr int kMaxDepth = 200;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) {
    // Recompute line/column from the byte offset — errors are rare, the
    // hot path stays a bare offset increment.
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream os;
    os << "json parse error at line " << line << ", column " << col << ": "
       << message;
    throw Error(os.str());
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid token");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid token");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("invalid token");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  Value parse_object(int depth) {
    expect('{');
    Value obj = Value::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      if (obj.find(key) != nullptr) {
        fail("duplicate object key \"" + key + "\"");
      }
      skip_whitespace();
      expect(':');
      obj.set(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      fail("expected ',' or '}' in object");
    }
  }

  Value parse_array(int depth) {
    expect('[');
    Value arr = Value::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      fail("expected ',' or ']' in array");
    }
  }

  void append_utf8(std::string& out, unsigned code_point) {
    if (code_point < 0x80) {
      out += static_cast<char>(code_point);
    } else if (code_point < 0x800) {
      out += static_cast<char>(0xC0 | (code_point >> 6));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else if (code_point < 0x10000) {
      out += static_cast<char>(0xE0 | (code_point >> 12));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code_point >> 18));
      out += static_cast<char>(0x80 | ((code_point >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    }
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char e = peek();
      ++pos_;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // surrogate pair
            if (!consume_literal("\\u")) fail("unpaired surrogate");
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape sequence");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size()) fail("truncated number");
    // Integer part (leading zeros are invalid JSON).
    if (text_[pos_] == '0') {
      ++pos_;
    } else if (text_[pos_] >= '1' && text_[pos_] <= '9') {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    } else {
      fail("invalid number");
    }
    bool is_integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_integral = false;
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("digit required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("digit required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (is_integral) {
      std::int64_t iv = 0;
      const auto [p, ec] = std::from_chars(first, last, iv);
      if (ec == std::errc() && p == last) return Value(iv);
      // Falls through on int64 overflow: the value is still a valid JSON
      // number, represent it as a double.
    }
    double dv = 0.0;
    const auto [p, ec] = std::from_chars(first, last, dv);
    if (ec == std::errc::result_out_of_range) fail("number out of range");
    if (ec != std::errc() || p != last) fail("invalid number");
    return Value(dv);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

Value parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("json: cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw Error("json: error reading file: " + path);
  try {
    return parse(buffer.str());
  } catch (const Error& e) {
    throw Error(path + ": " + e.what());
  }
}

}  // namespace bpvec::common::json
