#include "src/common/error.h"

#include <sstream>

namespace bpvec::detail {

void fail_check(const char* expr, const char* file, int line,
                const std::string& msg) {
  std::ostringstream os;
  os << "BPVEC_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace bpvec::detail
