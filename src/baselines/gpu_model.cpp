#include "src/baselines/gpu_model.h"

#include <algorithm>

#include "src/common/error.h"

namespace bpvec::baselines {

GpuModel::GpuModel(GpuSpec spec) : spec_(spec) {}

double GpuSpec::peak_macs_per_s(int bits) const {
  BPVEC_CHECK(bits >= 1 && bits <= 8);
  const double int8_peak = tensor_cores * int8_macs_per_core_per_clock *
                           frequency_ghz * 1e9;
  return bits <= 4 ? 2.0 * int8_peak : int8_peak;
}

GpuLayerTime GpuModel::layer_time(const dnn::Layer& layer) const {
  GpuLayerTime t;
  if (!layer.is_compute()) {
    // Pooling fuses into the preceding kernel on TensorRT.
    return t;
  }
  const double overhead = spec_.kernel_overhead_us * 1e-6;
  const double bw =
      spec_.memory_bandwidth_gbps * 1e9 * spec_.gemv_bandwidth_fraction;
  // The GPU executes at the padded INT precision: INT4 when both operands
  // are ≤ 4 bits, INT8 otherwise.
  const int bits = std::max(layer.x_bits, layer.w_bits) <= 4 ? 4 : 8;

  switch (layer.kind) {
    case dnn::LayerKind::kConv: {
      const double compute =
          static_cast<double>(layer.macs()) /
          (spec_.peak_macs_per_s(bits) * spec_.conv_utilization);
      t.seconds = overhead + compute;
      break;
    }
    case dnn::LayerKind::kFullyConnected: {
      // Batch-1 FC is a GEMV: one pass over the weights, bandwidth-bound.
      const double bytes =
          static_cast<double>(layer.weights()) * bits / 8.0;
      t.seconds = overhead + bytes / bw;
      t.bandwidth_bound = true;
      break;
    }
    case dnn::LayerKind::kRecurrent: {
      // One fused GEMV kernel per time step, streaming the gate matrices.
      const auto& p = layer.recurrent();
      const double bytes_per_step =
          static_cast<double>(layer.weights()) * bits / 8.0;
      const double per_step = overhead + bytes_per_step / bw;
      t.seconds = per_step * p.time_steps;
      t.bandwidth_bound = true;
      break;
    }
    case dnn::LayerKind::kPool:
      break;
  }
  return t;
}

GpuRunResult GpuModel::run(const dnn::Network& network) const {
  GpuRunResult r;
  r.network = network.name();
  std::int64_t macs = 0;
  for (const dnn::Layer& layer : network.layers()) {
    r.runtime_s += layer_time(layer).seconds;
    macs += layer.macs();
  }
  BPVEC_CHECK(r.runtime_s > 0);
  r.gops_per_s = 2.0 * static_cast<double>(macs) / r.runtime_s / 1e9;
  r.gops_per_w = r.gops_per_s / spec_.board_power_w;
  return r;
}

}  // namespace bpvec::baselines
