#include "src/baselines/bit_serial.h"

#include "src/arch/units.h"
#include "src/common/error.h"

namespace bpvec::baselines {

std::int64_t BitSerialConfig::cycles_per_mac(int x_bits, int w_bits) const {
  BPVEC_CHECK(x_bits >= 1 && x_bits <= max_bits);
  BPVEC_CHECK(w_bits >= 1 && w_bits <= max_bits);
  switch (mode) {
    case SerialMode::kActivationSerial:
      return x_bits;
    case SerialMode::kFullySerial:
      return static_cast<std::int64_t>(x_bits) * w_bits;
  }
  return 1;
}

double BitSerialConfig::macs_per_cycle(int x_bits, int w_bits) const {
  return static_cast<double>(lanes) /
         static_cast<double>(cycles_per_mac(x_bits, w_bits));
}

BitSerialCost bit_serial_cost(const arch::Technology& tech,
                              const BitSerialConfig& config) {
  const auto conv = arch::conventional_mac_cost(tech, config.max_bits);
  const double conv_area = conv.total().area_um2;
  const double conv_energy = conv.total().energy_fj;

  // One lane:
  //  * activation-serial (Stripes): the serial bit ANDs a full-width
  //    parallel weight (max_bits AND gates), feeding a shift-accumulator
  //    of ~2·max_bits + log2(lanes) bits.
  //  * fully serial (Loom): a single AND gate plus the accumulator.
  const int acc_width = 2 * config.max_bits + 4;
  arch::Cost lane;
  if (config.mode == SerialMode::kActivationSerial) {
    lane += arch::multiplier_cost(tech, 1, config.max_bits);
  } else {
    lane += arch::multiplier_cost(tech, 1, 1);
  }
  lane += arch::adder_cost(tech, acc_width);
  lane += arch::register_cost(tech, acc_width);
  // Lanes share an adder tree for the vector reduction.
  const arch::Cost tree =
      arch::adder_tree_cost(tech, config.lanes, acc_width);
  const arch::Cost engine =
      static_cast<double>(config.lanes) * lane + tree;

  // Per 8-bit MAC at max bitwidth, the engine needs cycles_per_mac cycles
  // per lane: energy integrates over those cycles; area is shared but each
  // MAC monopolizes its lane for the full serial latency, so per-MAC area
  // is lane-area × cycles (area-time product, the standard comparison).
  const double serial_cycles = static_cast<double>(
      config.cycles_per_mac(config.max_bits, config.max_bits));
  const auto& pc = tech.power_cal;
  const auto& ac = tech.area_cal;

  BitSerialCost c;
  c.power_per_mac = engine.energy_fj * pc.add / config.lanes *
                    serial_cycles / conv_energy;
  c.area_per_mac = engine.area_um2 * ac.add / config.lanes * serial_cycles /
                   conv_area;
  return c;
}

}  // namespace bpvec::baselines
