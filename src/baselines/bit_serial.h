// Temporal (bit-serial) composability baseline — the Stripes/Loom design
// style from the paper's Fig. 1 taxonomy and §V ("Design with support for
// bit-level flexibility through bit-serial computation").
//
// A bit-serial engine processes one bit of one operand per cycle (Stripes:
// serial activations × parallel weights; Loom: serial × serial), trading
// latency for perfect bitwidth proportionality: a bw-bit operand takes bw
// cycles, so quantization buys exactly linear speedup with no composition
// logic at all. Data-level parallelism across wide vector lanes compensates
// the serial latency.
//
// This model lets the repository quantify the paper's positioning: spatial
// vector composability reaches the same bitwidth proportionality while
// keeping single-cycle MACs, at the cost of the shift/aggregation network
// that Fig. 4 prices.
#pragma once

#include <cstdint>

#include "src/arch/technology.h"

namespace bpvec::baselines {

enum class SerialMode {
  kActivationSerial,  // Stripes: x serial, w parallel
  kFullySerial,       // Loom: both operands serial
};

struct BitSerialConfig {
  SerialMode mode = SerialMode::kActivationSerial;
  int lanes = 16;     // vector lanes per engine (DLP compensating serialism)
  int max_bits = 8;

  /// Cycles to complete one bw_x × bw_w MAC (per lane).
  /// Activation-serial: bw_x cycles. Fully serial: bw_x · bw_w cycles.
  std::int64_t cycles_per_mac(int x_bits, int w_bits) const;

  /// Effective MACs per engine per cycle at the given bitwidths.
  double macs_per_cycle(int x_bits, int w_bits) const;
};

/// Area/power of one bit-serial engine, per 8-bit-MAC-equivalent at
/// maximum bitwidth, normalized to the conventional 8-bit MAC (the same
/// normalization as Fig. 4). A serial lane is a bw-wide AND array + a
/// shift-accumulator; its cost advantage per lane is paid back by needing
/// `bw` cycles per MAC.
struct BitSerialCost {
  double power_per_mac = 0.0;  // normalized, at 8-bit operands
  double area_per_mac = 0.0;
};

BitSerialCost bit_serial_cost(const arch::Technology& tech,
                              const BitSerialConfig& config);

}  // namespace bpvec::baselines
