// Analytical model of the Nvidia RTX 2080 Ti GPU baseline (paper Table II
// and Fig. 9).
//
// Substitution: the paper measures TensorRT 5.1 INT8/INT4 inference on the
// physical card. We model each layer with a tensor-core roofline:
//
//   t_layer = overhead + max( ops / (peak · util_kind),
//                             bytes / effective_bandwidth )
//
// where `overhead` is the per-kernel launch/framework cost that dominates
// small recurrent steps, `util_kind` is the achievable tensor-core
// utilization for the layer class at batch 1 (convolutions map well;
// GEMV-shaped FC/recurrent layers are bandwidth-bound), and bandwidth is
// GDDR6 at an achievable fraction of peak. Performance-per-Watt uses the
// board power — GPUs burn close to TDP during inference bursts.
//
// This preserves what drives Fig. 9: CNNs are utilization-limited, RNN and
// LSTM are launch/bandwidth-crippled at batch 1, and INT4 doubles peak
// throughput for the heterogeneous-bitwidth comparison.
#pragma once

#include "src/dnn/network.h"

namespace bpvec::baselines {

struct GpuSpec {
  const char* name = "RTX 2080 Ti";
  int tensor_cores = 544;        // Table II
  double frequency_ghz = 1.545;  // Table II
  // Each Turing tensor core sustains 64 INT8 MACs per clock.
  double int8_macs_per_core_per_clock = 64.0;
  double memory_bandwidth_gbps = 616.0;  // GDDR6
  double board_power_w = 250.0;          // TDP-class inference power

  // Achievable fractions (batch-1 inference, TensorRT-class stacks).
  double conv_utilization = 0.14;
  double gemv_bandwidth_fraction = 0.55;
  double kernel_overhead_us = 18.0;

  /// Peak MAC throughput (MACs/s) at the given operand precision;
  /// INT4 doubles the INT8 rate on Turing.
  double peak_macs_per_s(int bits) const;
};

struct GpuLayerTime {
  double seconds = 0.0;
  bool bandwidth_bound = false;
};

struct GpuRunResult {
  std::string network;
  double runtime_s = 0.0;
  double gops_per_s = 0.0;
  double gops_per_w = 0.0;  // the Fig. 9 metric
};

class GpuModel {
 public:
  explicit GpuModel(GpuSpec spec = GpuSpec{});

  const GpuSpec& spec() const { return spec_; }

  GpuLayerTime layer_time(const dnn::Layer& layer) const;
  GpuRunResult run(const dnn::Network& network) const;

 private:
  GpuSpec spec_;
};

}  // namespace bpvec::baselines
