#include "src/core/accelerator.h"

#include "src/common/error.h"

namespace bpvec::core {

arch::DramModel make_memory(Memory memory) {
  return memory == Memory::kDdr4 ? arch::ddr4() : arch::hbm2();
}

Accelerator Accelerator::bpvec(Memory memory) {
  return Accelerator(sim::bpvec_accelerator(), make_memory(memory));
}

Accelerator Accelerator::tpu_like(Memory memory) {
  return Accelerator(sim::tpu_like_baseline(), make_memory(memory));
}

Accelerator Accelerator::bitfusion(Memory memory) {
  return Accelerator(sim::bitfusion_accelerator(), make_memory(memory));
}

Accelerator::Accelerator(sim::AcceleratorConfig config, arch::DramModel dram)
    : config_(std::move(config)), dram_(std::move(dram)) {
  config_.validate();
}

sim::RunResult Accelerator::simulate(const dnn::Network& network) const {
  return sim::Simulator(config_, dram_).run(network);
}

bitslice::CvuResult Accelerator::dot_product(
    const std::vector<std::int32_t>& x, const std::vector<std::int32_t>& w,
    int x_bits, int w_bits) const {
  BPVEC_CHECK_MSG(config_.pe_kind != sim::PeKind::kConventional,
                  "conventional platform has no composable vector unit");
  bitslice::CvuGeometry g = config_.cvu;
  if (config_.pe_kind == sim::PeKind::kBitFusion) g.lanes = 1;
  bitslice::Cvu cvu(g);
  return cvu.dot_product(x, w, x_bits, w_bits);
}

bitslice::CompositionPlan Accelerator::plan(int x_bits, int w_bits) const {
  bitslice::CvuGeometry g = config_.cvu;
  if (config_.pe_kind == sim::PeKind::kBitFusion) g.lanes = 1;
  return bitslice::plan_composition(g, x_bits, w_bits);
}

arch::Fig4Point Accelerator::pe_cost_per_mac() const {
  switch (config_.pe_kind) {
    case sim::PeKind::kConventional: {
      // The conventional MAC is the Fig. 4 normalization baseline: 1.0,
      // split per its structural categories.
      const auto conv = arch::conventional_mac_cost(
          cost_.technology(), config_.cvu.max_bits);
      const double ta = conv.total().area_um2;
      const double te = conv.total().energy_fj;
      arch::Fig4Point p;
      p.area_mult = conv.multiply.area_um2 / ta;
      p.area_add = conv.accumulate.area_um2 / ta;
      p.area_reg = conv.registers.area_um2 / ta;
      p.power_mult = conv.multiply.energy_fj / te;
      p.power_add = conv.accumulate.energy_fj / te;
      p.power_reg = conv.registers.energy_fj / te;
      return p;
    }
    case sim::PeKind::kBitFusion: {
      bitslice::CvuGeometry g = config_.cvu;
      g.lanes = 1;
      return cost_.normalized_per_mac(g);
    }
    case sim::PeKind::kBpvec:
      return cost_.normalized_per_mac(config_.cvu);
  }
  return {};
}

double Accelerator::core_power_mw() const {
  return config_.pe_energy_per_cycle_pj(cost_) * config_.num_pes() *
         config_.frequency_hz * 1e-9;
}

}  // namespace bpvec::core
