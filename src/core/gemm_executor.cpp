#include "src/core/gemm_executor.h"

#include "src/common/error.h"

namespace bpvec::core {

std::vector<std::int64_t> execute_gemm(bitslice::Cvu& cvu,
                                       const dnn::Matrix& a,
                                       const dnn::Matrix& b, int x_bits,
                                       int w_bits,
                                       GemmExecutionStats* stats) {
  BPVEC_CHECK_MSG(a.cols == b.cols, "GEMM inner dimensions disagree");
  std::vector<std::int64_t> out(static_cast<std::size_t>(a.rows * b.rows));
  GemmExecutionStats s;

  std::vector<std::int32_t> x(static_cast<std::size_t>(a.cols));
  std::vector<std::int32_t> w(static_cast<std::size_t>(b.cols));
  for (std::int64_t m = 0; m < a.rows; ++m) {
    for (std::int64_t k = 0; k < a.cols; ++k) {
      x[static_cast<std::size_t>(k)] = a.at(m, k);
    }
    for (std::int64_t n = 0; n < b.rows; ++n) {
      for (std::int64_t k = 0; k < b.cols; ++k) {
        w[static_cast<std::size_t>(k)] = b.at(n, k);
      }
      const bitslice::CvuResult r =
          cvu.dot_product(x, w, x_bits, w_bits);
      out[static_cast<std::size_t>(m * b.rows + n)] = r.value;
      s.cvu_cycles += r.cycles;
      s.mult_ops += r.mult_ops;
      s.utilization = r.utilization;
    }
  }
  if (stats != nullptr) *stats = s;
  return out;
}

}  // namespace bpvec::core
