// Design-space exploration over CVU geometries (slice width α, vector
// length L) — the machinery behind the paper's Fig. 4 and §III-B analysis.
#pragma once

#include <vector>

#include "src/arch/cvu_cost.h"
#include "src/bitslice/composition.h"

namespace bpvec::core {

struct DesignPoint {
  bitslice::CvuGeometry geometry;
  arch::Fig4Point cost;  // per-MAC, normalized to conventional 8-bit MAC

  /// Average NBVE utilization over a bitwidth mix (pairs of x/w bits with
  /// weights); 1.0 when every mode keeps all NBVEs busy.
  double mix_utilization = 1.0;
};

struct BitwidthMixEntry {
  int x_bits = 8;
  int w_bits = 8;
  double weight = 1.0;  // fraction of MACs at this mode
};

/// The α×L grid of candidate geometries (row-major: slice widths outer,
/// lanes inner — the iteration order of Fig. 4). Empty axes give an empty
/// grid. Every geometry is validated.
std::vector<bitslice::CvuGeometry> design_grid(
    const std::vector<int>& slice_widths, const std::vector<int>& lanes,
    int max_bits = 8);

/// Prices one geometry. Pure and re-entrant: builds its own cost model,
/// touches no shared mutable state — safe to call from many threads at
/// once (SimEngine::explore_design_space fans the grid out this way).
DesignPoint price_design_point(const bitslice::CvuGeometry& geometry);

/// Variant that also fills `mix_utilization` over a bitwidth mix.
DesignPoint price_design_point(const bitslice::CvuGeometry& geometry,
                               const std::vector<BitwidthMixEntry>& mix);

/// Sweeps slice widths × lanes and prices every point (sequentially;
/// engine::SimEngine::explore_design_space is the parallel equivalent and
/// produces bit-identical points).
std::vector<DesignPoint> explore_design_space(
    const std::vector<int>& slice_widths, const std::vector<int>& lanes,
    int max_bits = 8);

/// Utilization of a geometry averaged over a bitwidth mix.
double mix_utilization(const bitslice::CvuGeometry& geometry,
                       const std::vector<BitwidthMixEntry>& mix);

/// Picks the point minimizing power·area among points whose utilization
/// over `mix` stays ≥ `min_utilization` — formalizing the paper's
/// conclusion that 2-bit slicing with L = 16 is the sweet spot (4-bit
/// slicing is cheaper per CVU but under-utilized below 4-bit operands).
///
/// Edge cases (both throw bpvec::Error, never return a garbage point):
///   * empty `points` — "best_design: empty point set";
///   * every point below the bar — "best_design: no design point meets
///     min_utilization=<floor>", including the best utilization seen so
///     the caller can tell how far the bar missed. Catch the error (or
///     pre-filter) to treat "no admissible design" as a search outcome
///     rather than a failure.
DesignPoint best_design(const std::vector<DesignPoint>& points,
                        const std::vector<BitwidthMixEntry>& mix,
                        double min_utilization = 0.99);

}  // namespace bpvec::core
