// Umbrella header: everything a downstream user of the BPVeC library
// needs. Include this and link against bpvec_core.
//
//   #include "src/core/bpvec.h"
//
//   auto acc = bpvec::core::Accelerator::bpvec(bpvec::core::Memory::kDdr4);
//   auto run = acc.simulate(bpvec::dnn::make_resnet18(
//       bpvec::dnn::BitwidthMode::kHeterogeneous));
#pragma once

// Public API facade.
#include "src/core/accelerator.h"
#include "src/core/design_space.h"
#include "src/core/gemm_executor.h"

// The paper's arithmetic: slicing, composition, functional CVU.
#include "src/bitslice/bit_slicing.h"
#include "src/bitslice/composition.h"
#include "src/bitslice/cvu.h"

// Hardware models.
#include "src/arch/cvu_cost.h"
#include "src/arch/dram.h"
#include "src/arch/scratchpad.h"

// Workloads and the functional verification path.
#include "src/dnn/model_zoo.h"
#include "src/dnn/quantize.h"
#include "src/dnn/reference_ops.h"
#include "src/dnn/runner.h"

// Cycle-level simulation and reporting.
#include "src/sim/cycle_sim.h"
#include "src/sim/report.h"
#include "src/sim/simulator.h"

// Unified cost backends (pluggable pricing models behind one interface).
#include "src/backend/backend_registry.h"
#include "src/backend/bit_serial_backend.h"
#include "src/backend/bpvec_backend.h"
#include "src/backend/cost_backend.h"
#include "src/backend/gpu_backend.h"

// Parallel batch simulation engine.
#include "src/engine/scenario.h"
#include "src/engine/sim_engine.h"
#include "src/engine/thread_pool.h"

// Comparison points (raw models; the backends above adapt them).
#include "src/baselines/bit_serial.h"
#include "src/baselines/gpu_model.h"
