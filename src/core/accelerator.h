// bpvec::core::Accelerator — the library's top-level facade.
//
// Wraps a platform configuration (CVU geometry + systolic array + memory
// system) and exposes:
//   * the functional path  — exact integer dot products / GEMMs executed
//     through composable vector units (for verification and numerics),
//   * the performance path — cycle-level simulation of whole networks,
//   * the cost path        — area/power of the configured design.
//
// Typical use (see examples/quickstart.cpp):
//   auto acc = core::Accelerator::bpvec(core::Memory::kDdr4);
//   auto result = acc.simulate(dnn::make_resnet18(
//       dnn::BitwidthMode::kHeterogeneous));
#pragma once

#include <cstdint>
#include <vector>

#include "src/arch/cvu_cost.h"
#include "src/arch/dram.h"
#include "src/baselines/gpu_model.h"
#include "src/bitslice/cvu.h"
#include "src/dnn/network.h"
#include "src/sim/simulator.h"

namespace bpvec::core {

enum class Memory { kDdr4, kHbm2 };

arch::DramModel make_memory(Memory memory);

class Accelerator {
 public:
  /// The paper's BPVeC design point (Table II).
  static Accelerator bpvec(Memory memory);
  /// The TPU-like conventional baseline (Table II).
  static Accelerator tpu_like(Memory memory);
  /// The BitFusion comparison point (Table II).
  static Accelerator bitfusion(Memory memory);
  /// Custom platform.
  Accelerator(sim::AcceleratorConfig config, arch::DramModel dram);

  const sim::AcceleratorConfig& config() const { return config_; }

  /// --- Performance path ---
  sim::RunResult simulate(const dnn::Network& network) const;

  /// --- Functional path ---
  /// Exact dot product through the platform's CVU (throws for the
  /// conventional platform, which has no CVU).
  bitslice::CvuResult dot_product(const std::vector<std::int32_t>& x,
                                  const std::vector<std::int32_t>& w,
                                  int x_bits, int w_bits) const;
  /// Composition plan the CVU would use at these bitwidths.
  bitslice::CompositionPlan plan(int x_bits, int w_bits) const;

  /// --- Cost path ---
  /// Per-MAC normalized area/power of the processing element (Fig. 4 axis).
  arch::Fig4Point pe_cost_per_mac() const;
  /// Core power in mW (PE array only).
  double core_power_mw() const;

 private:
  sim::AcceleratorConfig config_;
  arch::DramModel dram_;
  arch::CvuCostModel cost_;
};

}  // namespace bpvec::core
