// Functional GEMM execution on composable vector units.
//
// Runs an M×N×K integer GEMM through a CVU exactly as the hardware would —
// bit-slicing the operands, dispatching slice pairs to NBVEs, shift-adding
// — and aggregates cycle/op statistics. Used to verify that a *lowered,
// quantized layer* executed through the paper's datapath is bit-identical
// to the reference operators.
#pragma once

#include <cstdint>
#include <vector>

#include "src/bitslice/cvu.h"
#include "src/dnn/gemm_lowering.h"

namespace bpvec::core {

struct GemmExecutionStats {
  std::int64_t cvu_cycles = 0;   // serialized on one CVU
  std::int64_t mult_ops = 0;
  double utilization = 0.0;      // NBVE utilization of the plan
};

/// out[m][n] = Σ_k a[m][k] · b[n][k], every dot product executed through
/// `cvu` at the given operand bitwidths. Returns the exact 64-bit results.
std::vector<std::int64_t> execute_gemm(bitslice::Cvu& cvu,
                                       const dnn::Matrix& a,
                                       const dnn::Matrix& b, int x_bits,
                                       int w_bits,
                                       GemmExecutionStats* stats = nullptr);

}  // namespace bpvec::core
