#include "src/core/design_space.h"

#include <algorithm>
#include <limits>

#include "src/common/error.h"

namespace bpvec::core {

std::vector<bitslice::CvuGeometry> design_grid(
    const std::vector<int>& slice_widths, const std::vector<int>& lanes,
    int max_bits) {
  std::vector<bitslice::CvuGeometry> grid;
  grid.reserve(slice_widths.size() * lanes.size());
  for (int alpha : slice_widths) {
    for (int l : lanes) {
      bitslice::CvuGeometry g{alpha, max_bits, l};
      g.validate();
      grid.push_back(g);
    }
  }
  return grid;
}

DesignPoint price_design_point(const bitslice::CvuGeometry& geometry) {
  const arch::CvuCostModel cost;
  DesignPoint p;
  p.geometry = geometry;
  p.cost = cost.normalized_per_mac(geometry);
  return p;
}

DesignPoint price_design_point(const bitslice::CvuGeometry& geometry,
                               const std::vector<BitwidthMixEntry>& mix) {
  DesignPoint p = price_design_point(geometry);
  p.mix_utilization = mix_utilization(geometry, mix);
  return p;
}

std::vector<DesignPoint> explore_design_space(
    const std::vector<int>& slice_widths, const std::vector<int>& lanes,
    int max_bits) {
  std::vector<DesignPoint> points;
  for (const auto& g : design_grid(slice_widths, lanes, max_bits)) {
    points.push_back(price_design_point(g));
  }
  return points;
}

double mix_utilization(const bitslice::CvuGeometry& geometry,
                       const std::vector<BitwidthMixEntry>& mix) {
  BPVEC_CHECK(!mix.empty());
  double total_weight = 0.0;
  double acc = 0.0;
  for (const auto& e : mix) {
    const auto plan =
        bitslice::plan_composition(geometry, e.x_bits, e.w_bits);
    acc += plan.bit_efficiency() * e.weight;
    total_weight += e.weight;
  }
  BPVEC_CHECK(total_weight > 0.0);
  return acc / total_weight;
}

DesignPoint best_design(const std::vector<DesignPoint>& points,
                        const std::vector<BitwidthMixEntry>& mix,
                        double min_utilization) {
  if (points.empty()) throw Error("best_design: empty point set");
  const DesignPoint* best = nullptr;
  double best_score = std::numeric_limits<double>::infinity();
  double best_util_seen = 0.0;
  for (const auto& p : points) {
    const double util = mix_utilization(p.geometry, mix);
    best_util_seen = std::max(best_util_seen, util);
    if (util + 1e-12 < min_utilization) continue;
    // Power·area per effective MAC: divide by utilization so idle NBVEs
    // count against a design.
    const double score =
        p.cost.power_total() * p.cost.area_total() / (util * util);
    if (score < best_score) {
      best_score = score;
      best = &p;
    }
  }
  if (best == nullptr) {
    throw Error("best_design: no design point meets min_utilization=" +
                std::to_string(min_utilization) + " (best utilization over " +
                std::to_string(points.size()) +
                " points: " + std::to_string(best_util_seen) + ")");
  }
  DesignPoint result = *best;
  result.mix_utilization = mix_utilization(result.geometry, mix);
  return result;
}

}  // namespace bpvec::core
