// Lowering of convolution to GEMM (im2col) — the form the systolic array
// executes. Produces explicit matrices so the CVU-backed functional path
// can run a real layer and be compared against conv2d_reference.
#pragma once

#include <cstdint>
#include <vector>

#include "src/dnn/layer.h"
#include "src/dnn/tensor.h"

namespace bpvec::dnn {

/// Row-major M×K matrix of int32 values.
struct Matrix {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::vector<std::int32_t> data;

  std::int32_t& at(std::int64_t r, std::int64_t c) {
    return data[static_cast<std::size_t>(r * cols + c)];
  }
  std::int32_t at(std::int64_t r, std::int64_t c) const {
    return data[static_cast<std::size_t>(r * cols + c)];
  }
};

/// im2col: patches matrix of shape [out_h·out_w, in_c·kh·kw]. Row m holds
/// the receptive field of output pixel m (zero-padded at borders).
Matrix im2col(const Tensor& input, const ConvParams& p);

/// Reshapes [out_c][in_c][kh][kw] weights into [out_c, in_c·kh·kw].
Matrix weights_as_matrix(const std::vector<std::int32_t>& weights,
                         const ConvParams& p);

/// Plain GEMM on int matrices: out[m][n] = Σ_k a[m][k] · b[n][k]
/// (b in "weights-row per output" layout). 64-bit accumulation.
std::vector<std::int64_t> gemm_reference(const Matrix& a, const Matrix& b);

}  // namespace bpvec::dnn
