// Layer descriptors for the evaluated DNNs.
//
// A layer carries its shape parameters, its per-layer operand bitwidths
// (the algorithmic bitwidth heterogeneity of Table I), and knows how to
// describe itself as a GEMM — the form every accelerator in the paper
// consumes (systolic arrays execute convolutions via im2col-style
// lowering, recurrent cells via gate matrices).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace bpvec::dnn {

enum class LayerKind { kConv, kFullyConnected, kPool, kRecurrent };

const char* to_string(LayerKind kind);

struct ConvParams {
  int in_c = 0, in_h = 0, in_w = 0;
  int out_c = 0;
  int kh = 0, kw = 0;
  int stride = 1, pad = 0;

  int out_h() const;
  int out_w() const;
};

struct FcParams {
  int in_features = 0;
  int out_features = 0;
};

enum class PoolKind { kMax, kAverage };

struct PoolParams {
  int channels = 0, in_h = 0, in_w = 0;
  int k = 2, stride = 2;
  PoolKind kind = PoolKind::kMax;

  int out_h() const;
  int out_w() const;
};

enum class RecurrentCellKind { kVanillaRnn, kLstm };

struct RecurrentParams {
  RecurrentCellKind cell = RecurrentCellKind::kVanillaRnn;
  int input_size = 0;
  int hidden_size = 0;
  int time_steps = 1;

  /// Gate matrices per step: 1 for vanilla RNN, 4 for LSTM (i, f, g, o).
  int gates() const;
};

/// GEMM view of a layer: `repeats` independent M×N×K products. When
/// `weights_streamed_per_repeat` is set the N×K weight matrix must be
/// re-fetched from DRAM for every repeat (recurrent layers: the scratchpad
/// cannot hold the full matrices, and the recurrence limits how many time
/// steps can share one residency — modelled by M = time_chunk).
struct GemmShape {
  std::int64_t m = 0, n = 0, k = 0;
  std::int64_t repeats = 1;
  bool weights_streamed_per_repeat = false;

  std::int64_t macs() const { return m * n * k * repeats; }
};

struct Layer {
  std::string name;
  LayerKind kind = LayerKind::kConv;
  int x_bits = 8;  // activation bitwidth
  int w_bits = 8;  // weight bitwidth
  std::variant<ConvParams, FcParams, PoolParams, RecurrentParams> params;

  const ConvParams& conv() const;
  const FcParams& fc() const;
  const PoolParams& pool() const;
  const RecurrentParams& recurrent() const;

  /// Multiply-accumulate count (0 for pooling).
  std::int64_t macs() const;
  /// Weight parameter count (0 for pooling).
  std::int64_t weights() const;
  /// Input/output activation element counts (per full layer execution,
  /// i.e. across all time steps for recurrent layers).
  std::int64_t input_elems() const;
  std::int64_t output_elems() const;

  /// True for layers that perform MACs (conv/fc/recurrent).
  bool is_compute() const { return kind != LayerKind::kPool; }

  /// GEMM view. `time_chunk` bounds how many recurrent time steps share one
  /// weight residency (see GemmShape).
  GemmShape gemm(int time_chunk = 16) const;
};

/// Convenience factories.
Layer make_conv(std::string name, ConvParams p);
Layer make_fc(std::string name, FcParams p);
Layer make_pool(std::string name, PoolParams p);
Layer make_recurrent(std::string name, RecurrentParams p);

}  // namespace bpvec::dnn
