#include "src/dnn/tensor.h"

#include <sstream>

#include "src/common/error.h"

namespace bpvec::dnn {

Tensor::Tensor(int channels, int height, int width)
    : c_(channels), h_(height), w_(width) {
  BPVEC_CHECK(channels >= 1 && height >= 1 && width >= 1);
  data_.assign(static_cast<std::size_t>(size()), 0);
}

std::int32_t& Tensor::at(int c, int y, int x) {
  BPVEC_CHECK(c >= 0 && c < c_ && y >= 0 && y < h_ && x >= 0 && x < w_);
  return data_[(static_cast<std::size_t>(c) * h_ + y) * w_ + x];
}

std::int32_t Tensor::at(int c, int y, int x) const {
  BPVEC_CHECK(c >= 0 && c < c_ && y >= 0 && y < h_ && x >= 0 && x < w_);
  return data_[(static_cast<std::size_t>(c) * h_ + y) * w_ + x];
}

std::int32_t Tensor::at_padded(int c, int y, int x) const {
  BPVEC_CHECK(c >= 0 && c < c_);
  if (y < 0 || y >= h_ || x < 0 || x >= w_) return 0;
  return at(c, y, x);
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << c_ << "x" << h_ << "x" << w_;
  return os.str();
}

}  // namespace bpvec::dnn
