// Integer reference operators (direct, unlowered). These are the ground
// truth the CVU-backed execution path is verified against.
#pragma once

#include <cstdint>
#include <vector>

#include "src/dnn/layer.h"
#include "src/dnn/tensor.h"

namespace bpvec::dnn {

/// Direct convolution. `weights` is laid out [out_c][in_c][kh][kw].
/// Output element (oc, oy, ox) = Σ in(ic, oy·s − pad + ky, ox·s − pad + kx)
/// · w(oc, ic, ky, kx), 64-bit accumulation returned per element.
std::vector<std::int64_t> conv2d_reference(
    const Tensor& input, const std::vector<std::int32_t>& weights,
    const ConvParams& p);

/// Fully connected: out[n] = Σ_k in[k] · w[n][k] (row-major weights).
std::vector<std::int64_t> fc_reference(
    const std::vector<std::int32_t>& input,
    const std::vector<std::int32_t>& weights, const FcParams& p);

/// Max pooling on an integer tensor.
Tensor maxpool_reference(const Tensor& input, const PoolParams& p);

/// Average pooling (integer mean over the window's in-bounds elements,
/// round half up).
Tensor avgpool_reference(const Tensor& input, const PoolParams& p);

/// Dispatches on p.kind.
Tensor pool_reference(const Tensor& input, const PoolParams& p);

/// One vanilla-RNN step on integer state (tanh replaced by a hard clamp to
/// the activation bitwidth — standard for quantized recurrent inference):
/// h' = clamp(Wx·x + Wh·h >> shift). Weights: [hidden][input+hidden].
std::vector<std::int32_t> rnn_step_reference(
    const std::vector<std::int32_t>& x, const std::vector<std::int32_t>& h,
    const std::vector<std::int32_t>& weights, int hidden, int shift,
    int out_bits);

}  // namespace bpvec::dnn
