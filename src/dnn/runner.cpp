#include "src/dnn/runner.h"

#include <algorithm>

#include "src/common/error.h"
#include "src/common/mathutil.h"
#include "src/common/rng.h"
#include "src/dnn/gemm_lowering.h"
#include "src/dnn/quantize.h"
#include "src/dnn/reference_ops.h"

namespace bpvec::dnn {

int calibration_shift(const std::vector<std::int64_t>& accumulators,
                      int bits) {
  BPVEC_CHECK(bits >= 2 && bits <= 31);
  std::int64_t max_abs = 0;
  for (std::int64_t a : accumulators) {
    max_abs = std::max(max_abs, a >= 0 ? a : -a);
  }
  int shift = 0;
  const std::int64_t limit = (std::int64_t{1} << (bits - 1)) - 1;
  while ((max_abs >> shift) > limit) ++shift;
  return shift;
}

namespace {

/// Runs one GEMM either through the reference loop or the injected engine.
std::vector<std::int64_t> dispatch_gemm(const Matrix& a, const Matrix& b,
                                        int x_bits, int w_bits,
                                        const DotEngine& engine) {
  if (!engine) return gemm_reference(a, b);
  std::vector<std::int64_t> out(static_cast<std::size_t>(a.rows * b.rows));
  std::vector<std::int32_t> x(static_cast<std::size_t>(a.cols));
  std::vector<std::int32_t> w(static_cast<std::size_t>(b.cols));
  for (std::int64_t m = 0; m < a.rows; ++m) {
    for (std::int64_t k = 0; k < a.cols; ++k) {
      x[static_cast<std::size_t>(k)] = a.at(m, k);
    }
    for (std::int64_t n = 0; n < b.rows; ++n) {
      for (std::int64_t k = 0; k < b.cols; ++k) {
        w[static_cast<std::size_t>(k)] = b.at(n, k);
      }
      out[static_cast<std::size_t>(m * b.rows + n)] =
          engine(x, w, x_bits, w_bits);
    }
  }
  return out;
}

Tensor accumulators_to_tensor(const std::vector<std::int64_t>& acc,
                              int out_c, int out_h, int out_w,
                              bool gemm_layout, int shift, int out_bits) {
  Tensor t(out_c, out_h, out_w);
  for (int c = 0; c < out_c; ++c) {
    for (int y = 0; y < out_h; ++y) {
      for (int x = 0; x < out_w; ++x) {
        const std::int64_t m = static_cast<std::int64_t>(y) * out_w + x;
        const std::int64_t idx =
            gemm_layout ? m * out_c + c
                        : (static_cast<std::int64_t>(c) * out_h + y) * out_w +
                              x;
        t.at(c, y, x) = requantize(acc[static_cast<std::size_t>(idx)],
                                   shift, out_bits);
      }
    }
  }
  return t;
}

}  // namespace

namespace {

/// Re-scales activations down when the consuming layer runs at a narrower
/// precision than the producing one (the inter-layer requantization step
/// of every mixed-precision inference pipeline, e.g. the 8-bit → 4-bit
/// boundary after the first layer in Table I's heterogeneous CNNs).
void align_precision(Tensor& t, int& current_bits, int target_bits) {
  if (current_bits <= target_bits) {
    current_bits = std::max(current_bits, 0);
    return;
  }
  const int shift = current_bits - target_bits;
  for (auto& v : t.data()) {
    v = requantize(v, shift, target_bits);
  }
  current_bits = target_bits;
}

}  // namespace

std::vector<Tensor> run_network(const Network& net, const Tensor& input,
                                const std::vector<LayerWeights>& weights,
                                const DotEngine& engine) {
  std::vector<Tensor> activations;
  Tensor current = input;
  std::size_t w_index = 0;
  int current_bits =
      net.layers().empty() ? 8 : net.layers().front().x_bits;

  for (const Layer& layer : net.layers()) {
    switch (layer.kind) {
      case LayerKind::kConv: {
        BPVEC_CHECK(w_index < weights.size());
        align_precision(current, current_bits, layer.x_bits);
        const auto& p = layer.conv();
        const auto& w = weights[w_index++].values;
        const auto acc =
            dispatch_gemm(im2col(current, p), weights_as_matrix(w, p),
                          layer.x_bits, layer.w_bits, engine);
        const int shift = calibration_shift(acc, layer.x_bits);
        current = accumulators_to_tensor(acc, p.out_c, p.out_h(), p.out_w(),
                                         /*gemm_layout=*/true, shift,
                                         layer.x_bits);
        current_bits = layer.x_bits;
        break;
      }
      case LayerKind::kFullyConnected: {
        BPVEC_CHECK(w_index < weights.size());
        align_precision(current, current_bits, layer.x_bits);
        const auto& p = layer.fc();
        BPVEC_CHECK_MSG(current.size() == p.in_features,
                        "fc input size mismatch: " + layer.name);
        const auto& w = weights[w_index++].values;
        Matrix a{1, p.in_features, current.data()};
        Matrix b{p.out_features, p.in_features, w};
        const auto acc =
            dispatch_gemm(a, b, layer.x_bits, layer.w_bits, engine);
        const int shift = calibration_shift(acc, layer.x_bits);
        current = accumulators_to_tensor(acc, p.out_features, 1, 1,
                                         /*gemm_layout=*/true, shift,
                                         layer.x_bits);
        current_bits = layer.x_bits;
        break;
      }
      case LayerKind::kPool: {
        current = pool_reference(current, layer.pool());
        break;
      }
      case LayerKind::kRecurrent:
        throw Error("run_network does not execute recurrent layers; use "
                    "rnn_step_reference for cell-level verification");
    }
    activations.push_back(current);
  }
  return activations;
}

std::vector<std::vector<std::int32_t>> run_recurrent(
    const Layer& layer,
    const std::vector<std::vector<std::int32_t>>& inputs,
    const LayerWeights& weights, const DotEngine& engine) {
  const auto& p = layer.recurrent();
  BPVEC_CHECK_MSG(p.cell == RecurrentCellKind::kVanillaRnn,
                  "run_recurrent executes vanilla RNN cells only");
  BPVEC_CHECK(static_cast<int>(inputs.size()) == p.time_steps);
  BPVEC_CHECK(static_cast<std::int64_t>(weights.values.size()) ==
              layer.weights());
  const int k = p.input_size + p.hidden_size;

  std::vector<std::vector<std::int32_t>> trace;
  trace.reserve(inputs.size());
  std::vector<std::int32_t> hidden(
      static_cast<std::size_t>(p.hidden_size), 0);

  Matrix w{p.hidden_size, k, weights.values};
  for (const auto& x_t : inputs) {
    BPVEC_CHECK(static_cast<int>(x_t.size()) == p.input_size);
    Matrix a{1, k, {}};
    a.data = x_t;
    a.data.insert(a.data.end(), hidden.begin(), hidden.end());
    const auto acc =
        dispatch_gemm(a, w, layer.x_bits, layer.w_bits, engine);
    const int shift = calibration_shift(acc, layer.x_bits);
    for (int n = 0; n < p.hidden_size; ++n) {
      hidden[static_cast<std::size_t>(n)] = requantize(
          acc[static_cast<std::size_t>(n)], shift, layer.x_bits);
    }
    trace.push_back(hidden);
  }
  return trace;
}

std::vector<LayerWeights> random_weights(const Network& net,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<LayerWeights> weights;
  for (const Layer& layer : net.layers()) {
    if (layer.kind != LayerKind::kConv &&
        layer.kind != LayerKind::kFullyConnected) {
      continue;
    }
    LayerWeights w;
    w.values = rng.signed_vector(
        static_cast<std::size_t>(layer.weights()), layer.w_bits);
    weights.push_back(std::move(w));
  }
  return weights;
}

}  // namespace bpvec::dnn
