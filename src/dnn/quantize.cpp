#include "src/dnn/quantize.h"

#include <algorithm>
#include <cmath>

#include "src/common/error.h"

namespace bpvec::dnn {

QuantizedTensor quantize_symmetric(const std::vector<double>& reals,
                                   int bits) {
  BPVEC_CHECK(bits >= 2 && bits <= 31);
  QuantizedTensor q;
  q.bits = bits;
  double max_abs = 0.0;
  for (double r : reals) max_abs = std::max(max_abs, std::fabs(r));
  const double qmax = static_cast<double>((std::int64_t{1} << (bits - 1)) - 1);
  q.scale = (max_abs == 0.0) ? 1.0 : max_abs / qmax;
  q.values.reserve(reals.size());
  for (double r : reals) {
    const double v = std::round(r / q.scale);
    q.values.push_back(static_cast<std::int32_t>(
        std::clamp(v, -qmax - 1.0, qmax)));
  }
  return q;
}

std::vector<double> dequantize(const QuantizedTensor& q) {
  std::vector<double> out;
  out.reserve(q.values.size());
  for (std::int32_t v : q.values) out.push_back(v * q.scale);
  return out;
}

std::int32_t requantize(std::int64_t acc, int shift, int bits) {
  BPVEC_CHECK(shift >= 0 && bits >= 2 && bits <= 31);
  if (shift > 0) {
    // Round half up: add 2^(shift-1) then arithmetic-shift (floors).
    const std::int64_t rounding = std::int64_t{1} << (shift - 1);
    acc = (acc + rounding) >> shift;
  }
  const std::int64_t qmax = (std::int64_t{1} << (bits - 1)) - 1;
  const std::int64_t qmin = -(std::int64_t{1} << (bits - 1));
  return static_cast<std::int32_t>(std::clamp(acc, qmin, qmax));
}

}  // namespace bpvec::dnn
