#include "src/dnn/gemm_lowering.h"

#include "src/common/error.h"

namespace bpvec::dnn {

Matrix im2col(const Tensor& input, const ConvParams& p) {
  BPVEC_CHECK(input.channels() == p.in_c && input.height() == p.in_h &&
              input.width() == p.in_w);
  Matrix m;
  m.rows = static_cast<std::int64_t>(p.out_h()) * p.out_w();
  m.cols = static_cast<std::int64_t>(p.in_c) * p.kh * p.kw;
  m.data.assign(static_cast<std::size_t>(m.rows * m.cols), 0);
  std::int64_t row = 0;
  for (int oy = 0; oy < p.out_h(); ++oy) {
    for (int ox = 0; ox < p.out_w(); ++ox, ++row) {
      std::int64_t col = 0;
      for (int ic = 0; ic < p.in_c; ++ic) {
        for (int ky = 0; ky < p.kh; ++ky) {
          for (int kx = 0; kx < p.kw; ++kx, ++col) {
            const int iy = oy * p.stride - p.pad + ky;
            const int ix = ox * p.stride - p.pad + kx;
            m.at(row, col) = input.at_padded(ic, iy, ix);
          }
        }
      }
    }
  }
  return m;
}

Matrix weights_as_matrix(const std::vector<std::int32_t>& weights,
                         const ConvParams& p) {
  Matrix m;
  m.rows = p.out_c;
  m.cols = static_cast<std::int64_t>(p.in_c) * p.kh * p.kw;
  BPVEC_CHECK(static_cast<std::int64_t>(weights.size()) == m.rows * m.cols);
  m.data = weights;
  return m;
}

std::vector<std::int64_t> gemm_reference(const Matrix& a, const Matrix& b) {
  BPVEC_CHECK_MSG(a.cols == b.cols, "GEMM inner dimensions disagree");
  std::vector<std::int64_t> out(static_cast<std::size_t>(a.rows * b.rows), 0);
  for (std::int64_t m = 0; m < a.rows; ++m) {
    for (std::int64_t n = 0; n < b.rows; ++n) {
      std::int64_t acc = 0;
      for (std::int64_t k = 0; k < a.cols; ++k) {
        acc += static_cast<std::int64_t>(a.at(m, k)) * b.at(n, k);
      }
      out[static_cast<std::size_t>(m * b.rows + n)] = acc;
    }
  }
  return out;
}

}  // namespace bpvec::dnn
