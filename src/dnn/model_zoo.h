// The six evaluated networks (paper Table I): AlexNet, Inception-v1,
// ResNet-18, ResNet-50, a vanilla RNN, and an LSTM.
//
// These factories are the *builtins* of workload::NetworkRegistry
// (tokens "alexnet" … "lstm"); everything above the dnn layer resolves
// workloads through that registry, where user networks from JSON files,
// manifest blocks, and parametric generators sit next to the zoo. The
// registry guards against duplicate names and empty layer lists — see
// src/workload/network_registry.h.
//
// Shapes follow the canonical architectures (224/227-pixel ImageNet CNNs;
// recurrent models sized to match Table I's model sizes and op counts).
// The heterogeneous bitwidth assignment follows Table I:
//   AlexNet / Inception-v1 / ResNet-18 — first and last layer 8-bit,
//                                         everything else 4-bit,
//   ResNet-50 / RNN / LSTM             — all layers 4-bit.
#pragma once

#include <vector>

#include "src/dnn/network.h"

namespace bpvec::dnn {

Network make_alexnet(BitwidthMode mode);
Network make_inception_v1(BitwidthMode mode);
Network make_resnet18(BitwidthMode mode);
Network make_resnet50(BitwidthMode mode);
Network make_rnn(BitwidthMode mode);
Network make_lstm(BitwidthMode mode);

/// All six, in the paper's order.
std::vector<Network> all_models(BitwidthMode mode);

}  // namespace bpvec::dnn
