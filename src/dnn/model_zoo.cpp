#include "src/dnn/model_zoo.h"

#include "src/common/error.h"

namespace bpvec::dnn {

namespace {

/// Applies the "first and last layer 8-bit, rest 4-bit" rule (or leaves
/// everything at 8-bit for the homogeneous mode). Pool layers inherit their
/// neighbours' precision but carry no MACs, so their bitwidths are cosmetic.
void assign_bitwidths(Network& net, BitwidthMode mode,
                      bool all_layers_4bit) {
  if (mode == BitwidthMode::kHomogeneous8b) {
    for (Layer& l : net.layers()) {
      l.x_bits = 8;
      l.w_bits = 8;
    }
    net.set_bitwidth_note("All layers 8-bit");
    return;
  }
  // Heterogeneous: find first/last compute layers.
  int first = -1, last = -1;
  auto& layers = net.layers();
  for (int i = 0; i < static_cast<int>(layers.size()); ++i) {
    if (!layers[i].is_compute()) continue;
    if (first < 0) first = i;
    last = i;
  }
  BPVEC_CHECK(first >= 0);
  for (int i = 0; i < static_cast<int>(layers.size()); ++i) {
    const bool boundary = (i == first || i == last);
    const int bits = (!all_layers_4bit && boundary) ? 8 : 4;
    layers[i].x_bits = bits;
    layers[i].w_bits = bits;
  }
  net.set_bitwidth_note(all_layers_4bit
                            ? "All layers with 4-bit"
                            : "First and last layer 8-bit, the rest 4-bit");
}

}  // namespace

Network make_alexnet(BitwidthMode mode) {
  Network net("AlexNet", NetworkType::kCnn);
  net.add(make_conv("conv1", {3, 227, 227, 96, 11, 11, 4, 0}));
  net.add(make_pool("pool1", {96, 55, 55, 3, 2}));
  net.add(make_conv("conv2", {96, 27, 27, 256, 5, 5, 1, 2}));
  net.add(make_pool("pool2", {256, 27, 27, 3, 2}));
  net.add(make_conv("conv3", {256, 13, 13, 384, 3, 3, 1, 1}));
  net.add(make_conv("conv4", {384, 13, 13, 384, 3, 3, 1, 1}));
  net.add(make_conv("conv5", {384, 13, 13, 256, 3, 3, 1, 1}));
  net.add(make_pool("pool5", {256, 13, 13, 3, 2}));
  net.add(make_fc("fc6", {256 * 6 * 6, 4096}));
  net.add(make_fc("fc7", {4096, 4096}));
  net.add(make_fc("fc8", {4096, 1000}));
  assign_bitwidths(net, mode, /*all_layers_4bit=*/false);
  return net;
}

namespace {

/// Adds one GoogLeNet inception module: four parallel branches
/// (1×1; 1×1→3×3; 1×1→5×5; pool→1×1), all at the same spatial size.
void add_inception(Network& net, const std::string& name, int in_c, int hw,
                   int n1x1, int n3x3red, int n3x3, int n5x5red, int n5x5,
                   int pool_proj) {
  net.add(make_conv(name + "/1x1", {in_c, hw, hw, n1x1, 1, 1, 1, 0}));
  net.add(make_conv(name + "/3x3_reduce", {in_c, hw, hw, n3x3red, 1, 1, 1, 0}));
  net.add(make_conv(name + "/3x3", {n3x3red, hw, hw, n3x3, 3, 3, 1, 1}));
  net.add(make_conv(name + "/5x5_reduce", {in_c, hw, hw, n5x5red, 1, 1, 1, 0}));
  net.add(make_conv(name + "/5x5", {n5x5red, hw, hw, n5x5, 5, 5, 1, 2}));
  net.add(make_conv(name + "/pool_proj", {in_c, hw, hw, pool_proj, 1, 1, 1, 0}));
}

}  // namespace

Network make_inception_v1(BitwidthMode mode) {
  Network net("Inception-v1", NetworkType::kCnn);
  net.add(make_conv("conv1/7x7_s2", {3, 224, 224, 64, 7, 7, 2, 3}));
  net.add(make_pool("pool1", {64, 112, 112, 3, 2}));
  net.add(make_conv("conv2/3x3_reduce", {64, 56, 56, 64, 1, 1, 1, 0}));
  net.add(make_conv("conv2/3x3", {64, 56, 56, 192, 3, 3, 1, 1}));
  net.add(make_pool("pool2", {192, 56, 56, 3, 2}));
  add_inception(net, "inception_3a", 192, 28, 64, 96, 128, 16, 32, 32);
  add_inception(net, "inception_3b", 256, 28, 128, 128, 192, 32, 96, 64);
  net.add(make_pool("pool3", {480, 28, 28, 3, 2}));
  add_inception(net, "inception_4a", 480, 14, 192, 96, 208, 16, 48, 64);
  add_inception(net, "inception_4b", 512, 14, 160, 112, 224, 24, 64, 64);
  add_inception(net, "inception_4c", 512, 14, 128, 128, 256, 24, 64, 64);
  add_inception(net, "inception_4d", 512, 14, 112, 144, 288, 32, 64, 64);
  add_inception(net, "inception_4e", 528, 14, 256, 160, 320, 32, 128, 128);
  net.add(make_pool("pool4", {832, 14, 14, 3, 2}));
  add_inception(net, "inception_5a", 832, 7, 256, 160, 320, 32, 128, 128);
  add_inception(net, "inception_5b", 832, 7, 384, 192, 384, 48, 128, 128);
  net.add(make_pool("pool5/avg", {1024, 7, 7, 7, 1, PoolKind::kAverage}));
  net.add(make_fc("loss3/classifier", {1024, 1000}));
  assign_bitwidths(net, mode, /*all_layers_4bit=*/false);
  return net;
}

namespace {

/// Adds a ResNet basic block (two 3×3 convs); `downsample` adds the 1×1
/// stride-2 projection on the shortcut.
void add_basic_block(Network& net, const std::string& name, int in_c,
                     int out_c, int in_hw, int stride) {
  const int out_hw = in_hw / stride;
  net.add(make_conv(name + "/conv1",
                    {in_c, in_hw, in_hw, out_c, 3, 3, stride, 1}));
  net.add(make_conv(name + "/conv2",
                    {out_c, out_hw, out_hw, out_c, 3, 3, 1, 1}));
  if (stride != 1 || in_c != out_c) {
    net.add(make_conv(name + "/downsample",
                      {in_c, in_hw, in_hw, out_c, 1, 1, stride, 0}));
  }
}

/// Adds a ResNet bottleneck block (1×1 reduce, 3×3, 1×1 expand).
void add_bottleneck(Network& net, const std::string& name, int in_c,
                    int mid_c, int out_c, int in_hw, int stride) {
  const int out_hw = in_hw / stride;
  net.add(make_conv(name + "/conv1", {in_c, in_hw, in_hw, mid_c, 1, 1, 1, 0}));
  net.add(make_conv(name + "/conv2",
                    {mid_c, in_hw, in_hw, mid_c, 3, 3, stride, 1}));
  net.add(make_conv(name + "/conv3",
                    {mid_c, out_hw, out_hw, out_c, 1, 1, 1, 0}));
  if (stride != 1 || in_c != out_c) {
    net.add(make_conv(name + "/downsample",
                      {in_c, in_hw, in_hw, out_c, 1, 1, stride, 0}));
  }
}

}  // namespace

Network make_resnet18(BitwidthMode mode) {
  Network net("ResNet-18", NetworkType::kCnn);
  net.add(make_conv("conv1", {3, 224, 224, 64, 7, 7, 2, 3}));
  net.add(make_pool("pool1", {64, 112, 112, 3, 2}));
  add_basic_block(net, "layer1.0", 64, 64, 56, 1);
  add_basic_block(net, "layer1.1", 64, 64, 56, 1);
  add_basic_block(net, "layer2.0", 64, 128, 56, 2);
  add_basic_block(net, "layer2.1", 128, 128, 28, 1);
  add_basic_block(net, "layer3.0", 128, 256, 28, 2);
  add_basic_block(net, "layer3.1", 256, 256, 14, 1);
  add_basic_block(net, "layer4.0", 256, 512, 14, 2);
  add_basic_block(net, "layer4.1", 512, 512, 7, 1);
  net.add(make_pool("avgpool", {512, 7, 7, 7, 1, PoolKind::kAverage}));
  net.add(make_fc("fc", {512, 1000}));
  assign_bitwidths(net, mode, /*all_layers_4bit=*/false);
  return net;
}

Network make_resnet50(BitwidthMode mode) {
  Network net("ResNet-50", NetworkType::kCnn);
  net.add(make_conv("conv1", {3, 224, 224, 64, 7, 7, 2, 3}));
  net.add(make_pool("pool1", {64, 112, 112, 3, 2}));
  struct Stage {
    const char* name;
    int blocks, mid_c, out_c, in_hw, first_stride;
  };
  const Stage stages[] = {
      {"layer1", 3, 64, 256, 56, 1},
      {"layer2", 4, 128, 512, 56, 2},
      {"layer3", 6, 256, 1024, 28, 2},
      {"layer4", 3, 512, 2048, 14, 2},
  };
  int in_c = 64;
  for (const Stage& s : stages) {
    int hw = s.in_hw;
    for (int b = 0; b < s.blocks; ++b) {
      const int stride = (b == 0) ? s.first_stride : 1;
      add_bottleneck(net, std::string(s.name) + "." + std::to_string(b),
                     in_c, s.mid_c, s.out_c, hw, stride);
      in_c = s.out_c;
      hw /= stride;
    }
  }
  net.add(make_pool("avgpool", {2048, 7, 7, 7, 1, PoolKind::kAverage}));
  net.add(make_fc("fc", {2048, 1000}));
  assign_bitwidths(net, mode, /*all_layers_4bit=*/true);
  return net;
}

Network make_rnn(BitwidthMode mode) {
  // Sized to Table I: (2880 + 2880)·2880 ≈ 16.6 M weights → 15.8 MB INT8;
  // 512 steps → 2·8.5 G multiply-adds ≈ 17 GOps.
  Network net("RNN", NetworkType::kRnn);
  net.add(make_recurrent(
      "rnn", {RecurrentCellKind::kVanillaRnn, 2880, 2880, 512}));
  assign_bitwidths(net, mode, /*all_layers_4bit=*/true);
  return net;
}

Network make_lstm(BitwidthMode mode) {
  // Sized to Table I: 4·(2048 + 1024)·1024 ≈ 12.6 M weights → 12 MB INT8;
  // 512 steps → ≈ 13 GOps.
  Network net("LSTM", NetworkType::kRnn);
  net.add(
      make_recurrent("lstm", {RecurrentCellKind::kLstm, 2048, 1024, 512}));
  assign_bitwidths(net, mode, /*all_layers_4bit=*/true);
  return net;
}

std::vector<Network> all_models(BitwidthMode mode) {
  std::vector<Network> v;
  v.push_back(make_alexnet(mode));
  v.push_back(make_inception_v1(mode));
  v.push_back(make_resnet18(mode));
  v.push_back(make_resnet50(mode));
  v.push_back(make_rnn(mode));
  v.push_back(make_lstm(mode));
  return v;
}

}  // namespace bpvec::dnn
