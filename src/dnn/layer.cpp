#include "src/dnn/layer.h"

#include "src/common/error.h"
#include "src/common/mathutil.h"

namespace bpvec::dnn {

const char* to_string(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv: return "conv";
    case LayerKind::kFullyConnected: return "fc";
    case LayerKind::kPool: return "pool";
    case LayerKind::kRecurrent: return "recurrent";
  }
  return "?";
}

int ConvParams::out_h() const {
  BPVEC_CHECK(stride >= 1);
  return (in_h + 2 * pad - kh) / stride + 1;
}

int ConvParams::out_w() const { return (in_w + 2 * pad - kw) / stride + 1; }

int PoolParams::out_h() const { return (in_h - k) / stride + 1; }
int PoolParams::out_w() const { return (in_w - k) / stride + 1; }

int RecurrentParams::gates() const {
  return cell == RecurrentCellKind::kLstm ? 4 : 1;
}

const ConvParams& Layer::conv() const {
  BPVEC_CHECK(kind == LayerKind::kConv);
  return std::get<ConvParams>(params);
}
const FcParams& Layer::fc() const {
  BPVEC_CHECK(kind == LayerKind::kFullyConnected);
  return std::get<FcParams>(params);
}
const PoolParams& Layer::pool() const {
  BPVEC_CHECK(kind == LayerKind::kPool);
  return std::get<PoolParams>(params);
}
const RecurrentParams& Layer::recurrent() const {
  BPVEC_CHECK(kind == LayerKind::kRecurrent);
  return std::get<RecurrentParams>(params);
}

std::int64_t Layer::macs() const {
  switch (kind) {
    case LayerKind::kConv: {
      const auto& p = conv();
      return static_cast<std::int64_t>(p.out_h()) * p.out_w() * p.out_c *
             p.in_c * p.kh * p.kw;
    }
    case LayerKind::kFullyConnected: {
      const auto& p = fc();
      return static_cast<std::int64_t>(p.in_features) * p.out_features;
    }
    case LayerKind::kPool:
      return 0;
    case LayerKind::kRecurrent: {
      const auto& p = recurrent();
      return static_cast<std::int64_t>(p.gates()) * p.hidden_size *
             (p.input_size + p.hidden_size) * p.time_steps;
    }
  }
  return 0;
}

std::int64_t Layer::weights() const {
  switch (kind) {
    case LayerKind::kConv: {
      const auto& p = conv();
      return static_cast<std::int64_t>(p.out_c) * p.in_c * p.kh * p.kw;
    }
    case LayerKind::kFullyConnected: {
      const auto& p = fc();
      return static_cast<std::int64_t>(p.in_features) * p.out_features;
    }
    case LayerKind::kPool:
      return 0;
    case LayerKind::kRecurrent: {
      const auto& p = recurrent();
      return static_cast<std::int64_t>(p.gates()) * p.hidden_size *
             (p.input_size + p.hidden_size);
    }
  }
  return 0;
}

std::int64_t Layer::input_elems() const {
  switch (kind) {
    case LayerKind::kConv: {
      const auto& p = conv();
      return static_cast<std::int64_t>(p.in_c) * p.in_h * p.in_w;
    }
    case LayerKind::kFullyConnected:
      return fc().in_features;
    case LayerKind::kPool: {
      const auto& p = pool();
      return static_cast<std::int64_t>(p.channels) * p.in_h * p.in_w;
    }
    case LayerKind::kRecurrent: {
      const auto& p = recurrent();
      return static_cast<std::int64_t>(p.input_size) * p.time_steps;
    }
  }
  return 0;
}

std::int64_t Layer::output_elems() const {
  switch (kind) {
    case LayerKind::kConv: {
      const auto& p = conv();
      return static_cast<std::int64_t>(p.out_c) * p.out_h() * p.out_w();
    }
    case LayerKind::kFullyConnected:
      return fc().out_features;
    case LayerKind::kPool: {
      const auto& p = pool();
      return static_cast<std::int64_t>(p.channels) * p.out_h() * p.out_w();
    }
    case LayerKind::kRecurrent: {
      const auto& p = recurrent();
      return static_cast<std::int64_t>(p.hidden_size) * p.time_steps;
    }
  }
  return 0;
}

GemmShape Layer::gemm(int time_chunk) const {
  BPVEC_CHECK(time_chunk >= 1);
  GemmShape g;
  switch (kind) {
    case LayerKind::kConv: {
      const auto& p = conv();
      g.m = static_cast<std::int64_t>(p.out_h()) * p.out_w();
      g.n = p.out_c;
      g.k = static_cast<std::int64_t>(p.in_c) * p.kh * p.kw;
      break;
    }
    case LayerKind::kFullyConnected: {
      const auto& p = fc();
      g.m = 1;
      g.n = p.out_features;
      g.k = p.in_features;
      break;
    }
    case LayerKind::kPool:
      return g;  // no GEMM
    case LayerKind::kRecurrent: {
      const auto& p = recurrent();
      const int chunk = std::min(time_chunk, p.time_steps);
      g.m = chunk;
      g.n = static_cast<std::int64_t>(p.gates()) * p.hidden_size;
      g.k = p.input_size + p.hidden_size;
      g.repeats = ceil_div(p.time_steps, chunk);
      g.weights_streamed_per_repeat = true;
      break;
    }
  }
  return g;
}

Layer make_conv(std::string name, ConvParams p) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kConv;
  l.params = p;
  BPVEC_CHECK_MSG(p.out_h() >= 1 && p.out_w() >= 1,
                  "conv output collapsed: " + l.name);
  return l;
}

Layer make_fc(std::string name, FcParams p) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kFullyConnected;
  l.params = p;
  return l;
}

Layer make_pool(std::string name, PoolParams p) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kPool;
  l.params = p;
  BPVEC_CHECK_MSG(p.out_h() >= 1 && p.out_w() >= 1,
                  "pool output collapsed: " + l.name);
  return l;
}

Layer make_recurrent(std::string name, RecurrentParams p) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kRecurrent;
  l.params = p;
  return l;
}

}  // namespace bpvec::dnn
