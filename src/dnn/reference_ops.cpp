#include "src/dnn/reference_ops.h"

#include <algorithm>

#include "src/common/error.h"
#include "src/dnn/quantize.h"

namespace bpvec::dnn {

std::vector<std::int64_t> conv2d_reference(
    const Tensor& input, const std::vector<std::int32_t>& weights,
    const ConvParams& p) {
  BPVEC_CHECK(input.channels() == p.in_c && input.height() == p.in_h &&
              input.width() == p.in_w);
  BPVEC_CHECK(static_cast<std::int64_t>(weights.size()) ==
              static_cast<std::int64_t>(p.out_c) * p.in_c * p.kh * p.kw);

  const int oh = p.out_h(), ow = p.out_w();
  std::vector<std::int64_t> out(
      static_cast<std::size_t>(p.out_c) * oh * ow, 0);

  auto w_at = [&](int oc, int ic, int ky, int kx) {
    return weights[((static_cast<std::size_t>(oc) * p.in_c + ic) * p.kh +
                    ky) *
                       p.kw +
                   kx];
  };

  for (int oc = 0; oc < p.out_c; ++oc) {
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        std::int64_t acc = 0;
        for (int ic = 0; ic < p.in_c; ++ic) {
          for (int ky = 0; ky < p.kh; ++ky) {
            for (int kx = 0; kx < p.kw; ++kx) {
              const int iy = oy * p.stride - p.pad + ky;
              const int ix = ox * p.stride - p.pad + kx;
              acc += static_cast<std::int64_t>(
                         input.at_padded(ic, iy, ix)) *
                     w_at(oc, ic, ky, kx);
            }
          }
        }
        out[(static_cast<std::size_t>(oc) * oh + oy) * ow + ox] = acc;
      }
    }
  }
  return out;
}

std::vector<std::int64_t> fc_reference(
    const std::vector<std::int32_t>& input,
    const std::vector<std::int32_t>& weights, const FcParams& p) {
  BPVEC_CHECK(static_cast<int>(input.size()) == p.in_features);
  BPVEC_CHECK(static_cast<std::int64_t>(weights.size()) ==
              static_cast<std::int64_t>(p.in_features) * p.out_features);
  std::vector<std::int64_t> out(static_cast<std::size_t>(p.out_features), 0);
  for (int n = 0; n < p.out_features; ++n) {
    std::int64_t acc = 0;
    for (int k = 0; k < p.in_features; ++k) {
      acc += static_cast<std::int64_t>(input[static_cast<std::size_t>(k)]) *
             weights[static_cast<std::size_t>(n) * p.in_features + k];
    }
    out[static_cast<std::size_t>(n)] = acc;
  }
  return out;
}

Tensor maxpool_reference(const Tensor& input, const PoolParams& p) {
  BPVEC_CHECK(input.channels() == p.channels && input.height() == p.in_h &&
              input.width() == p.in_w);
  Tensor out(p.channels, p.out_h(), p.out_w());
  for (int c = 0; c < p.channels; ++c) {
    for (int oy = 0; oy < p.out_h(); ++oy) {
      for (int ox = 0; ox < p.out_w(); ++ox) {
        std::int32_t best = INT32_MIN;
        for (int ky = 0; ky < p.k; ++ky) {
          for (int kx = 0; kx < p.k; ++kx) {
            const int iy = oy * p.stride + ky;
            const int ix = ox * p.stride + kx;
            if (iy < p.in_h && ix < p.in_w) {
              best = std::max(best, input.at(c, iy, ix));
            }
          }
        }
        out.at(c, oy, ox) = best;
      }
    }
  }
  return out;
}

Tensor avgpool_reference(const Tensor& input, const PoolParams& p) {
  BPVEC_CHECK(input.channels() == p.channels && input.height() == p.in_h &&
              input.width() == p.in_w);
  Tensor out(p.channels, p.out_h(), p.out_w());
  for (int c = 0; c < p.channels; ++c) {
    for (int oy = 0; oy < p.out_h(); ++oy) {
      for (int ox = 0; ox < p.out_w(); ++ox) {
        std::int64_t sum = 0;
        int count = 0;
        for (int ky = 0; ky < p.k; ++ky) {
          for (int kx = 0; kx < p.k; ++kx) {
            const int iy = oy * p.stride + ky;
            const int ix = ox * p.stride + kx;
            if (iy < p.in_h && ix < p.in_w) {
              sum += input.at(c, iy, ix);
              ++count;
            }
          }
        }
        BPVEC_CHECK(count > 0);
        // Round half away from zero so the mean is unbiased for both
        // signs (matches common quantized-inference kernels).
        const std::int64_t half = count / 2;
        out.at(c, oy, ox) = static_cast<std::int32_t>(
            sum >= 0 ? (sum + half) / count : (sum - half) / count);
      }
    }
  }
  return out;
}

Tensor pool_reference(const Tensor& input, const PoolParams& p) {
  return p.kind == PoolKind::kMax ? maxpool_reference(input, p)
                                  : avgpool_reference(input, p);
}

std::vector<std::int32_t> rnn_step_reference(
    const std::vector<std::int32_t>& x, const std::vector<std::int32_t>& h,
    const std::vector<std::int32_t>& weights, int hidden, int shift,
    int out_bits) {
  const int k = static_cast<int>(x.size() + h.size());
  BPVEC_CHECK(static_cast<std::int64_t>(weights.size()) ==
              static_cast<std::int64_t>(hidden) * k);
  std::vector<std::int32_t> out(static_cast<std::size_t>(hidden));
  for (int n = 0; n < hidden; ++n) {
    std::int64_t acc = 0;
    const std::int32_t* row = &weights[static_cast<std::size_t>(n) * k];
    for (std::size_t i = 0; i < x.size(); ++i) acc += std::int64_t{x[i]} * row[i];
    for (std::size_t i = 0; i < h.size(); ++i) {
      acc += std::int64_t{h[i]} * row[x.size() + i];
    }
    out[static_cast<std::size_t>(n)] = requantize(acc, shift, out_bits);
  }
  return out;
}

}  // namespace bpvec::dnn
