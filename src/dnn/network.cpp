#include "src/dnn/network.h"

#include <utility>

#include "src/common/error.h"
#include "src/common/hash.h"

namespace bpvec::dnn {

namespace {
/// Binds a memoized fingerprint to the time_chunk it was computed for.
/// Never 0 in practice (0 is the empty-slot sentinel; a real checksum of
/// 0 merely turns the memo into a permanent miss, never a wrong hit).
std::uint64_t fp_checksum(int time_chunk, std::uint64_t fp) {
  return common::hash_combine(fp,
                              0x6e65746670ull ^  // "netfp"
                                  static_cast<std::uint64_t>(
                                      static_cast<std::uint32_t>(time_chunk)));
}
}  // namespace

const char* to_string(NetworkType type) {
  switch (type) {
    case NetworkType::kCnn: return "CNN";
    case NetworkType::kRnn: return "RNN";
  }
  return "?";
}

const char* to_string(BitwidthMode mode) {
  switch (mode) {
    case BitwidthMode::kHomogeneous8b: return "homogeneous-8b";
    case BitwidthMode::kHeterogeneous: return "heterogeneous";
  }
  return "?";
}

Network::Network(std::string name, NetworkType type)
    : name_(std::move(name)), type_(type) {}

Network::Network(const Network& other)
    : name_(other.name_),
      type_(other.type_),
      layers_(other.layers_),
      bitwidth_note_(other.bitwidth_note_) {
  // Copies share structural identity, so the memo rides along. Load the
  // checksum second (the release order of memoize_fingerprint): a torn
  // pair fails validation in cached_fingerprint rather than misleading.
  fp_memo_.store(other.fp_memo_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  fp_check_.store(other.fp_check_.load(std::memory_order_acquire),
                  std::memory_order_relaxed);
}

Network::Network(Network&& other) noexcept
    : name_(std::move(other.name_)),
      type_(other.type_),
      layers_(std::move(other.layers_)),
      bitwidth_note_(std::move(other.bitwidth_note_)) {
  fp_memo_.store(other.fp_memo_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  fp_check_.store(other.fp_check_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
}

Network& Network::operator=(const Network& other) {
  if (this == &other) return *this;
  name_ = other.name_;
  type_ = other.type_;
  layers_ = other.layers_;
  bitwidth_note_ = other.bitwidth_note_;
  fp_memo_.store(other.fp_memo_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  fp_check_.store(other.fp_check_.load(std::memory_order_acquire),
                  std::memory_order_relaxed);
  return *this;
}

Network& Network::operator=(Network&& other) noexcept {
  if (this == &other) return *this;
  name_ = std::move(other.name_);
  type_ = other.type_;
  layers_ = std::move(other.layers_);
  bitwidth_note_ = std::move(other.bitwidth_note_);
  fp_memo_.store(other.fp_memo_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  fp_check_.store(other.fp_check_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  return *this;
}

void Network::add(Layer layer) {
  invalidate_fingerprint();
  layers_.push_back(std::move(layer));
}

std::optional<std::uint64_t> Network::cached_fingerprint(
    int time_chunk) const {
  // Acquire the checksum first so a validated pair is the pair one
  // memoize_fingerprint call published together; any interleaving with a
  // concurrent writer fails the checksum and reads as a miss.
  const std::uint64_t check = fp_check_.load(std::memory_order_acquire);
  if (check == 0) return std::nullopt;
  const std::uint64_t fp = fp_memo_.load(std::memory_order_relaxed);
  if (check != fp_checksum(time_chunk, fp)) return std::nullopt;
  return fp;
}

void Network::memoize_fingerprint(int time_chunk, std::uint64_t fp) const {
  fp_memo_.store(fp, std::memory_order_relaxed);
  fp_check_.store(fp_checksum(time_chunk, fp), std::memory_order_release);
}

NetworkStats Network::stats() const {
  NetworkStats s;
  for (const Layer& l : layers_) {
    s.total_macs += l.macs();
    s.total_weights += l.weights();
    if (l.is_compute()) ++s.compute_layers;
  }
  s.model_size_mb_int8 =
      static_cast<double>(s.total_weights) / (1024.0 * 1024.0);
  s.multiply_add_gops = 2.0 * static_cast<double>(s.total_macs) / 1e9;
  return s;
}

}  // namespace bpvec::dnn
