#include "src/dnn/network.h"

#include "src/common/error.h"

namespace bpvec::dnn {

const char* to_string(NetworkType type) {
  switch (type) {
    case NetworkType::kCnn: return "CNN";
    case NetworkType::kRnn: return "RNN";
  }
  return "?";
}

const char* to_string(BitwidthMode mode) {
  switch (mode) {
    case BitwidthMode::kHomogeneous8b: return "homogeneous-8b";
    case BitwidthMode::kHeterogeneous: return "heterogeneous";
  }
  return "?";
}

Network::Network(std::string name, NetworkType type)
    : name_(std::move(name)), type_(type) {}

void Network::add(Layer layer) { layers_.push_back(std::move(layer)); }

NetworkStats Network::stats() const {
  NetworkStats s;
  for (const Layer& l : layers_) {
    s.total_macs += l.macs();
    s.total_weights += l.weights();
    if (l.is_compute()) ++s.compute_layers;
  }
  s.model_size_mb_int8 =
      static_cast<double>(s.total_weights) / (1024.0 * 1024.0);
  s.multiply_add_gops = 2.0 * static_cast<double>(s.total_macs) / 1e9;
  return s;
}

}  // namespace bpvec::dnn
