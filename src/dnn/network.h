// A network = an ordered list of layers plus bookkeeping for the paper's
// Table I statistics (model size at INT8, multiply-add GOps, bitwidth
// regime).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/dnn/layer.h"

namespace bpvec::dnn {

enum class NetworkType { kCnn, kRnn };

const char* to_string(NetworkType type);

/// Bitwidth regime of an experiment (paper §IV-B1 vs §IV-B2).
enum class BitwidthMode {
  kHomogeneous8b,   // all activations/weights 8-bit
  kHeterogeneous,   // Table I per-layer quantized bitwidths
};

const char* to_string(BitwidthMode mode);

struct NetworkStats {
  std::int64_t total_macs = 0;
  std::int64_t total_weights = 0;
  double model_size_mb_int8 = 0.0;  // weights at 1 byte each
  double multiply_add_gops = 0.0;   // 2·MACs / 1e9 (paper convention)
  int compute_layers = 0;
};

class Network {
 public:
  Network(std::string name, NetworkType type);

  Network(const Network& other);
  Network(Network&& other) noexcept;
  Network& operator=(const Network& other);
  Network& operator=(Network&& other) noexcept;

  const std::string& name() const { return name_; }
  NetworkType type() const { return type_; }

  void add(Layer layer);

  const std::vector<Layer>& layers() const { return layers_; }
  std::vector<Layer>& layers() {
    invalidate_fingerprint();
    return layers_;
  }

  NetworkStats stats() const;

  /// Text description of the heterogeneous bitwidth assignment, matching
  /// the wording in Table I (set by the model zoo).
  const std::string& bitwidth_note() const { return bitwidth_note_; }
  void set_bitwidth_note(std::string note) {
    bitwidth_note_ = std::move(note);
  }

  /// Memoized structural fingerprint (workload::network_fingerprint) for
  /// `time_chunk`, or nullopt when none is cached. The memo rides copies
  /// and is invalidated by add() and by every non-const layers() call, so
  /// a mutable layers() reference must not be written through after a
  /// later fingerprint computation (take the reference again instead).
  std::optional<std::uint64_t> cached_fingerprint(int time_chunk) const;

  /// Records the fingerprint for `time_chunk` (single slot — the last
  /// time_chunk wins). Const because fingerprinting is logically const;
  /// safe to call concurrently for distinct Network objects, and
  /// concurrent calls on one object resolve via the checksum protocol
  /// below (worst case: the memo reads as empty).
  void memoize_fingerprint(int time_chunk, std::uint64_t fp) const;

 private:
  void invalidate_fingerprint() {
    fp_check_.store(0, std::memory_order_relaxed);
  }

  std::string name_;
  NetworkType type_;
  std::vector<Layer> layers_;
  std::string bitwidth_note_;
  // Fingerprint memo: `fp_memo_` holds the hash, `fp_check_` a checksum
  // binding it to its time_chunk (0 = empty). Readers validate the
  // checksum, so a torn read against a concurrent memoize on the same
  // object degrades to a miss instead of serving a mismatched value.
  mutable std::atomic<std::uint64_t> fp_memo_{0};
  mutable std::atomic<std::uint64_t> fp_check_{0};
};

}  // namespace bpvec::dnn
