// A network = an ordered list of layers plus bookkeeping for the paper's
// Table I statistics (model size at INT8, multiply-add GOps, bitwidth
// regime).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/dnn/layer.h"

namespace bpvec::dnn {

enum class NetworkType { kCnn, kRnn };

const char* to_string(NetworkType type);

/// Bitwidth regime of an experiment (paper §IV-B1 vs §IV-B2).
enum class BitwidthMode {
  kHomogeneous8b,   // all activations/weights 8-bit
  kHeterogeneous,   // Table I per-layer quantized bitwidths
};

const char* to_string(BitwidthMode mode);

struct NetworkStats {
  std::int64_t total_macs = 0;
  std::int64_t total_weights = 0;
  double model_size_mb_int8 = 0.0;  // weights at 1 byte each
  double multiply_add_gops = 0.0;   // 2·MACs / 1e9 (paper convention)
  int compute_layers = 0;
};

class Network {
 public:
  Network(std::string name, NetworkType type);

  const std::string& name() const { return name_; }
  NetworkType type() const { return type_; }

  void add(Layer layer);

  const std::vector<Layer>& layers() const { return layers_; }
  std::vector<Layer>& layers() { return layers_; }

  NetworkStats stats() const;

  /// Text description of the heterogeneous bitwidth assignment, matching
  /// the wording in Table I (set by the model zoo).
  const std::string& bitwidth_note() const { return bitwidth_note_; }
  void set_bitwidth_note(std::string note) {
    bitwidth_note_ = std::move(note);
  }

 private:
  std::string name_;
  NetworkType type_;
  std::vector<Layer> layers_;
  std::string bitwidth_note_;
};

}  // namespace bpvec::dnn
