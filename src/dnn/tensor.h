// Minimal integer tensor (CHW layout, batch 1) used by the functional
// verification path: quantized reference operators and the CVU-backed GEMM
// execution are checked against each other on these.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bpvec::dnn {

class Tensor {
 public:
  Tensor() = default;
  /// CHW tensor, zero-initialized.
  Tensor(int channels, int height, int width);

  int channels() const { return c_; }
  int height() const { return h_; }
  int width() const { return w_; }
  std::int64_t size() const {
    return static_cast<std::int64_t>(c_) * h_ * w_;
  }

  std::int32_t& at(int c, int y, int x);
  std::int32_t at(int c, int y, int x) const;

  /// Value with zero padding outside bounds (used by convolution).
  std::int32_t at_padded(int c, int y, int x) const;

  std::vector<std::int32_t>& data() { return data_; }
  const std::vector<std::int32_t>& data() const { return data_; }

  std::string shape_string() const;

 private:
  int c_ = 0, h_ = 0, w_ = 0;
  std::vector<std::int32_t> data_;
};

}  // namespace bpvec::dnn
