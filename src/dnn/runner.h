// Functional network runner: executes a whole quantized network layer by
// layer, either through the reference integer operators or through a
// CVU-backed GEMM path, with symmetric requantization between layers.
//
// This is the end-to-end numerical verification substrate: the two paths
// must agree bit for bit on every layer of every network shape, proving
// that an accelerator built from composable vector units computes exactly
// what the model specifies (the paper's correctness premise, which it
// asserts but cannot demonstrate without RTL simulation).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/dnn/network.h"
#include "src/dnn/tensor.h"

namespace bpvec::dnn {

/// Weights for one compute layer, in the layer's canonical layout.
struct LayerWeights {
  std::vector<std::int32_t> values;
};

/// A dot-product engine the runner dispatches GEMMs through. Arguments:
/// (x, w, x_bits, w_bits) → exact 64-bit dot product.
using DotEngine = std::function<std::int64_t(
    const std::vector<std::int32_t>&, const std::vector<std::int32_t>&, int,
    int)>;

/// Executes `net` on `input` with the given per-layer weights.
/// `engine == nullptr` uses the reference operators directly; otherwise
/// every conv/FC GEMM is dispatched through `engine` (e.g. a CVU).
/// After every layer, accumulators are requantized to the layer's
/// activation bitwidth with a *calibrated* right-shift (chosen from the
/// observed accumulator magnitudes, as post-training quantization does) —
/// deterministic, so the reference and CVU paths stay bit-identical.
/// Activations are additionally down-shifted at precision boundaries
/// (e.g. the 8-bit → 4-bit seam in Table I's heterogeneous CNNs).
/// Recurrent layers are rejected (use rnn_step_reference for cells).
std::vector<Tensor> run_network(const Network& net, const Tensor& input,
                                const std::vector<LayerWeights>& weights,
                                const DotEngine& engine = nullptr);

/// Deterministic synthetic weights for every compute layer of `net`,
/// drawn at each layer's weight bitwidth.
std::vector<LayerWeights> random_weights(const Network& net,
                                         std::uint64_t seed);

/// The calibrated requantization shift for a set of layer accumulators:
/// the smallest shift that brings the largest magnitude into the signed
/// `bits` range (0 when everything already fits).
int calibration_shift(const std::vector<std::int64_t>& accumulators,
                      int bits);

/// Executes a vanilla-RNN layer step by step:
///   h_t = requantize(W · [x_t ; h_{t−1}])
/// with a per-step calibrated shift (identical across execution paths
/// because both paths produce identical accumulators). `inputs` is
/// [time_steps][input_size]; the initial hidden state is zero. Returns the
/// hidden state after every step. LSTM cells are rejected — their
/// element-wise gate nonlinearities are outside the dot-product datapath
/// this library models (verify their gate GEMVs via run_recurrent on an
/// equivalent vanilla cell or execute_gemm directly).
std::vector<std::vector<std::int32_t>> run_recurrent(
    const Layer& layer,
    const std::vector<std::vector<std::int32_t>>& inputs,
    const LayerWeights& weights, const DotEngine& engine = nullptr);

}  // namespace bpvec::dnn
