// Symmetric linear quantization utilities.
//
// The paper's heterogeneous-bitwidth mode assumes deep-quantized DNNs
// (PACT / WRPN / QNN-style). This module provides the numeric bridge:
// float ↔ signed n-bit integers with a per-tensor scale, so the functional
// path can run integer math on the CVU and compare against references.
#pragma once

#include <cstdint>
#include <vector>

namespace bpvec::dnn {

struct QuantizedTensor {
  std::vector<std::int32_t> values;  // each within [-2^(b-1), 2^(b-1)-1]
  double scale = 1.0;                // real = value · scale
  int bits = 8;
};

/// Largest-magnitude symmetric quantization of `reals` to `bits` bits.
/// An all-zero input quantizes with scale 1.
QuantizedTensor quantize_symmetric(const std::vector<double>& reals,
                                   int bits);

/// Inverse map.
std::vector<double> dequantize(const QuantizedTensor& q);

/// Clamps an accumulator back to `bits`-wide signed range after requantize
/// by `shift` (arithmetic right shift with round-to-nearest).
std::int32_t requantize(std::int64_t acc, int shift, int bits);

}  // namespace bpvec::dnn
