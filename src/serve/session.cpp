#include "src/serve/session.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>
#include <vector>

#include "src/backend/backend_registry.h"
#include "src/cli/report.h"
#include "src/common/error.h"
#include "src/dse/strategy.h"
#include "src/workload/generators.h"
#include "src/workload/network_registry.h"
#include "src/workload/schema.h"

namespace bpvec::serve {

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

}  // namespace

Session::Session(SessionOptions options) : options_(std::move(options)) {}

engine::SimEngine& Session::engine() {
  std::lock_guard<std::mutex> lock(mu_);
  if (engine_ == nullptr) {
    engine::EngineOptions engine_options;
    engine_options.num_threads = options_.threads;
    engine_options.disk_cache_dir = options_.cache_dir;
    engine_options.grain = options_.grain;
    engine_ = std::make_unique<engine::SimEngine>(engine_options);
  }
  return *engine_;
}

void Session::set_grain(std::size_t grain) {
  std::lock_guard<std::mutex> lock(mu_);
  if (engine_ != nullptr) {
    if (options_.grain != grain) {
      throw Error(
          "\"grain\" cannot change once the engine exists (current " +
          std::to_string(options_.grain) + ", requested " +
          std::to_string(grain) + "); restart the daemon to re-tune it");
    }
    return;
  }
  options_.grain = grain;
}

engine::EngineStats Session::fleet_stats() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (engine_ == nullptr) return {};
  }
  // The engine, once constructed, lives as long as the session; taking
  // its stats outside the session lock avoids holding two locks at once.
  return engine_->stats();
}

void Session::register_network_file(const std::string& path) {
  dnn::Network net = workload::load_network(path);
  std::string key = net.name();
  workload::NetworkRegistry::instance().register_network(std::move(key),
                                                         std::move(net));
}

std::future<Response> Session::submit(std::function<Response()> work) {
  auto task =
      std::make_shared<std::packaged_task<Response()>>(std::move(work));
  std::future<Response> future = task->get_future();
  engine().pool().submit([task] { (*task)(); });
  return future;
}

void Session::record(const char* op, const Response& response) {
  std::lock_guard<std::mutex> lock(mu_);
  OpCounters& c = history_[op];
  if (response.cancelled) {
    ++c.cancelled;
  } else {
    ++c.completed;
  }
  c.total_wall_s += response.wall_s;
  c.last_wall_s = response.wall_s;
  c.max_wall_s = std::max(c.max_wall_s, response.wall_s);
}

Response Session::price(const PriceRequest& request, CancelToken token) {
  const auto start = SteadyClock::now();
  const cli::Manifest& manifest = request.manifest;
  if (manifest.grids.empty()) {
    throw Error("manifest \"" + manifest.name +
                "\" has no grids (send a search request for its \"search\" "
                "block)");
  }
  // expand() registers the manifest's declared workloads (idempotently)
  // before any token resolves — same as the batch CLI always did.
  std::vector<engine::Scenario> scenarios = cli::expand(manifest);
  engine::SimEngine& eng = engine();
  const engine::EngineStats before = eng.stats();

  Response response;
  std::vector<sim::RunResult> results;
  results.reserve(scenarios.size());
  const std::size_t chunk =
      request.chunk > 0 ? request.chunk : options_.price_chunk;
  for (std::size_t i = 0; i < scenarios.size(); i += chunk) {
    if (token.cancelled()) {
      response.cancelled = true;
      break;
    }
    const std::size_t n = std::min(chunk, scenarios.size() - i);
    if (i == 0 && n == scenarios.size()) {
      // Whole batch in one engine call: the common case (and the batch
      // CLI's historical behavior) — no sub-range copies.
      results = eng.run_batch(scenarios);
      break;
    }
    const std::vector<engine::Scenario> part(scenarios.begin() + i,
                                             scenarios.begin() + i + n);
    std::vector<sim::RunResult> priced = eng.run_batch(part);
    for (sim::RunResult& r : priced) results.push_back(std::move(r));
  }

  response.fleet = eng.stats();
  response.delta = response.fleet - before;
  if (!response.cancelled) {
    response.report =
        cli::build_report(manifest.name, scenarios, results, response.delta,
                          !request.deterministic_report);
    response.scenarios = std::move(scenarios);
    response.results = std::move(results);
  }
  response.wall_s = seconds_since(start);
  record("price", response);
  return response;
}

Response Session::search(const SearchRequest& request, CancelToken token) {
  const auto start = SteadyClock::now();
  const cli::Manifest& manifest = request.manifest;
  if (!manifest.search.has_value()) {
    throw Error("manifest \"" + manifest.name + "\" has no \"search\" block");
  }
  // Declared workloads may be the search's base network.
  (void)cli::register_workloads(manifest);
  const cli::SearchSpec& spec = *manifest.search;
  const dse::ParamSpace space = cli::search_space(spec);
  engine::Scenario base = cli::search_base_scenario(spec);
  engine::SimEngine& eng = engine();
  const engine::EngineStats before = eng.stats();

  dse::StrategyOptions strategy_options;
  strategy_options.budget = spec.budget;
  strategy_options.restarts = spec.restarts;
  strategy_options.population = spec.population;
  strategy_options.seed = spec.seed;
  strategy_options.objectives = spec.objectives;
  auto strategy = dse::make_strategy(spec.strategy, space,
                                     std::move(strategy_options));
  dse::ScenarioEvaluator evaluator(eng, space, std::move(base),
                                   spec.objectives, spec.mix,
                                   spec.constraints, spec.workload);
  dse::SearchOptions search_options;
  search_options.budget = spec.budget;
  search_options.should_stop = [token] { return token.cancelled(); };
  dse::SearchOutcome outcome = dse::run_search(*strategy, evaluator,
                                               spec.objectives,
                                               search_options);

  Response response;
  response.fleet = eng.stats();
  response.delta = response.fleet - before;
  if (token.cancelled()) {
    response.cancelled = true;
  } else {
    response.report =
        cli::build_search_report(manifest.name, spec, space, outcome,
                                 response.delta,
                                 !request.deterministic_report);
    response.search = std::move(outcome);
  }
  response.wall_s = seconds_since(start);
  record("search", response);
  return response;
}

Response Session::validate(const ValidateRequest& request) {
  const auto start = SteadyClock::now();
  const cli::Manifest& manifest = request.manifest;
  Response response;
  std::ostringstream out;
  if (request.search) {
    if (!manifest.search.has_value()) {
      throw Error("manifest \"" + manifest.name +
                  "\" has no \"search\" block");
    }
    (void)cli::register_workloads(manifest);
    const cli::SearchSpec& spec = *manifest.search;
    const dse::ParamSpace space = cli::search_space(spec);
    const engine::Scenario base = cli::search_base_scenario(spec);
    out << "Manifest: " << manifest.name << " (search)\n"
        << "space: " << space.size() << " candidates over "
        << space.num_axes() << " axes\nstrategy: " << spec.strategy;
    if (spec.budget > 0) out << ", budget " << spec.budget;
    if (spec.strategy == "hill_climb" || spec.strategy == "annealing") {
      out << ", restarts " << spec.restarts;
    }
    if (spec.strategy == "genetic") {
      out << ", population " << spec.population;
    }
    out << "\nbase scenario: " << base.id << "\nmanifest OK\n";
  } else {
    if (manifest.grids.empty()) {
      throw Error("manifest \"" + manifest.name + "\" has no grids");
    }
    response.scenarios = cli::expand(manifest);
    out << "Manifest: " << manifest.name << "\n"
        << manifest.grids.size() << " grids, " << response.scenarios.size()
        << " scenarios\nmanifest OK\n";
  }
  response.text = out.str();
  response.wall_s = seconds_since(start);
  record("validate", response);
  return response;
}

Response Session::list() {
  const auto start = SteadyClock::now();
  std::ostringstream out;
  auto line = [&](const char* what, const std::vector<std::string>& tokens) {
    out << what;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      out << (i == 0 ? "" : ", ") << tokens[i];
    }
    out << "\n";
  };
  line("backends:            ", backend::BackendRegistry::instance().keys());
  line("platforms:           ", cli::platform_tokens());
  line("memories:            ", cli::memory_tokens());
  line("bitwidth_modes:      ", cli::bitwidth_mode_tokens());
  line("networks:            ",
       workload::NetworkRegistry::instance().tokens());
  line("workload_generators: ", workload::generator_tokens());
  line("search_knobs:        ", dse::knob_tokens());
  line("metrics:             ", dse::metric_tokens());
  line("strategies:          ", dse::strategy_tokens());
  out << "\nNetwork/platform/memory/mode tokens match case- and "
         "separator-insensitively;\nbackend keys are exact registry "
         "strings. A grid's \"networks\" axis also accepts\nthe meta "
         "tokens \"all\" (the six Table I models) and \"workloads\" "
         "(every network\nthe manifest's \"workloads\" block declares)."
         "\n";
  Response response;
  response.text = out.str();
  response.wall_s = seconds_since(start);
  record("list", response);
  return response;
}

common::json::Value Session::stats_json() {
  using common::json::Value;
  const engine::EngineStats fleet = fleet_stats();
  Value v = Value::object();
  Value requests = Value::object();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [op, c] : history_) {
      Value o = Value::object();
      o.set("completed", c.completed);
      o.set("cancelled", c.cancelled);
      o.set("total_wall_s", c.total_wall_s);
      o.set("last_wall_s", c.last_wall_s);
      o.set("max_wall_s", c.max_wall_s);
      requests.set(op, std::move(o));
    }
  }
  v.set("requests", std::move(requests));
  v.set("fleet", engine::to_json(fleet));
  auto rate = [](std::size_t hits, std::size_t total) {
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  };
  Value rates = Value::object();
  rates.set("scenario_memo",
            rate(fleet.cache_hits, fleet.scenarios_submitted));
  rates.set("layer_memo",
            rate(fleet.layer_cache_hits,
                 fleet.layer_cache_hits + fleet.layers_priced));
  rates.set("disk", rate(fleet.disk_hits, fleet.disk_hits + fleet.disk_misses));
  rates.set("weight_plane",
            rate(fleet.weight_cache_hits,
                 fleet.weight_cache_hits + fleet.weight_cache_misses));
  v.set("cache_hit_rates", std::move(rates));
  // Disk-cache shard/size gauges (operator visibility: how many shard
  // files the warm path rides, whether a compaction is due, whether
  // stores are failing). Present only once the engine has a disk cache.
  const engine::DiskCache* disk = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (engine_ != nullptr) disk = engine_->disk_cache();
  }
  if (disk != nullptr) {
    const engine::DiskCacheStats d = disk->stats();
    Value dc = Value::object();
    dc.set("shards", d.shards);
    dc.set("records", d.records);
    dc.set("file_opens", d.file_opens);
    dc.set("hits", d.hits);
    dc.set("misses", d.misses);
    dc.set("rejected", d.rejected);
    dc.set("stores", d.stores);
    dc.set("store_failures", d.store_failures);
    v.set("disk_cache", std::move(dc));
  }
  return v;
}

}  // namespace bpvec::serve
