// Typed request/response shapes for the serving layer.
//
// `bpvec_run` used to be the only way in: one process, one manifest,
// one run-to-completion pass through DriverOptions' boolean-mode soup
// (search_mode / list_mode / validate_only). These types factor that
// flow into first-class request objects a resident Session can accept
// over and over on one warm engine:
//
//   PriceRequest     the manifest's grids through SimEngine::run_batch
//   SearchRequest    the manifest's "search" block through src/dse
//   ValidateRequest  parse + expand, price nothing (either mode)
//   ListRequest      the canonical token vocabularies
//
// Every request carries a parsed cli::Manifest — the identical shape
// the batch CLI builds from a file — so a served request and a CLI run
// are the same computation by construction. The Response carries the
// exact report document (built by src/cli/report, the shared report
// contract) plus two EngineStats blocks:
//
//   delta   what THIS request did to the shared engine (snapshot
//           before/after, subtracted). A warm repeat request shows
//           simulations_run == 0 here even though the fleet has priced
//           thousands of scenarios. With concurrent requests in flight
//           the snapshots overlap (each delta sees every counter tick
//           between its two snapshots); serial requests are exact.
//   fleet   the engine's cumulative counters after the request — the
//           whole session's history, what a fleet operator monitors.
//
// Cancellation is cooperative: a CancelToken is a shared flag the
// Session checks between engine batches (price chunks, search rounds).
// Cancelling never poisons the engine — everything priced before the
// check landed in the caches normally and stays valid, so the engine
// is immediately reusable (tested).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/cli/manifest.h"
#include "src/common/json.h"
#include "src/dse/search.h"
#include "src/engine/scenario.h"
#include "src/engine/sim_engine.h"
#include "src/sim/simulator.h"

namespace bpvec::serve {

/// Shared cooperative-cancellation flag. Copies observe the same flag;
/// default-constructed tokens are live (not cancelled). Thread-safe:
/// any thread may cancel() while the request runs elsewhere.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() const { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Price the manifest's grids (the batch CLI's default mode).
struct PriceRequest {
  cli::Manifest manifest;
  /// Omit the run-dependent "stats" block from the report, so identical
  /// requests yield byte-identical documents (what the CI serve-mode
  /// gate cmp's against the batch CLI's golden).
  bool deterministic_report = false;
  /// Scenarios per engine batch — the cancellation granularity (the
  /// token is checked between batches). 0 = SessionOptions::price_chunk.
  /// Results and every report-visible counter are chunk-invariant (the
  /// memo caches dedupe across chunks exactly as within one batch).
  std::size_t chunk = 0;
};

/// Run the manifest's "search" block (the `search` subcommand).
struct SearchRequest {
  cli::Manifest manifest;
  bool deterministic_report = false;
};

/// Dry-run: parse + expand, price nothing, write nothing.
struct ValidateRequest {
  cli::Manifest manifest;
  /// Validate the "search" block instead of the grids.
  bool search = false;
};

/// The canonical token vocabularies (no manifest involved).
struct ListRequest {};

/// What every Session call returns. Fields are populated per operation;
/// unused ones stay default (report: JSON null, vectors empty).
struct Response {
  /// The exact report document the batch CLI would have written for the
  /// same manifest (price/search; null for validate/list/cancelled).
  /// Serialize with dump(1) to reproduce the CLI's report bytes.
  common::json::Value report;
  /// Human-readable output (validate summaries, list vocabularies) —
  /// exactly what the CLI prints for the same invocation.
  std::string text;
  /// This request's engine work (after - before snapshots).
  engine::EngineStats delta;
  /// The shared engine's cumulative counters after this request.
  engine::EngineStats fleet;
  /// Wall-clock seconds spent serving this request.
  double wall_s = 0.0;
  /// The request's CancelToken fired before completion. No report; the
  /// engine keeps everything priced so far and stays reusable.
  bool cancelled = false;
  // Price mode: the expanded scenarios and their results, input order
  // (the driver's table/CSV printers consume these; the daemon ignores
  // them — the report carries the same numbers).
  std::vector<engine::Scenario> scenarios;
  std::vector<sim::RunResult> results;
  /// Search mode: the full outcome (frontier + every evaluation).
  std::optional<dse::SearchOutcome> search;
};

}  // namespace bpvec::serve
