// bpvec_serve's wire layer: newline-delimited JSON over a Unix domain
// socket, multiplexing client requests onto one resident Session.
//
// Protocol (one JSON document per line, UTF-8, '\n' terminated):
//
//   request   {"op": <string>, ...} — the envelope. Ops and their
//             fields:
//               "price"     "manifest" (a manifest document, the same
//                           shape bpvec_run loads from a file),
//                           optional "base_dir" (resolves relative
//                           workload "file" paths), optional
//                           "deterministic_report" (bool), optional
//                           "chunk" (int, cancellation granularity),
//                           optional "network_files" (array of paths
//                           registered before the manifest parses),
//                           optional "grain" (int >= 0, engine
//                           parallel_for grain; 0 = auto. An engine
//                           construction parameter: honored before the
//                           first price/search builds the engine,
//                           afterwards it must match the live engine's
//                           value or the request errors. Results are
//                           grain-invariant)
//               "search"    same fields; runs the manifest's "search"
//                           block
//               "validate"  "manifest" (+"base_dir"/"network_files"),
//                           optional "search" (bool) — dry-run only
//               "list"      no fields; the token vocabularies
//               "stats"     no fields; per-request latency counters,
//                           fleet-wide engine totals, cache hit rates
//               "version"   no fields; build-identity document
//               "ping"      no fields; liveness probe
//               "shutdown"  acks, then begins graceful drain
//
//   response  zero or more {"status":"running","elapsed_s":<double>}
//             heartbeats (price/search only, one per heartbeat_s while
//             the request executes on the engine pool), then exactly one
//             final line:
//               {"status":"ok", ...}        op-specific payload:
//                 "report" (price/search — the exact document bpvec_run
//                 writes; re-serializing it with dump(1) reproduces the
//                 CLI's report bytes, the determinism contract CI
//                 gates), "text" (validate/list — the CLI's stdout),
//                 "delta"/"fleet" (engine counter snapshots),
//                 "wall_s", "stats", "version"
//               {"status":"cancelled", ...} the client vanished
//                 mid-request (heartbeat write failed → cooperative
//                 cancel); also logged, never sent (no reader)
//               {"status":"error","error":<message>} malformed
//                 envelopes, bad manifests, unknown ops. The connection
//                 stays open — errors are data, not disconnects.
//
// A connection serves its requests sequentially; concurrency comes from
// multiple connections, each on its own thread, all sharing the one
// Session (whose engine calls are concurrency-safe). Graceful drain:
// request_stop() (async-signal-safe — the SIGTERM handler calls it)
// stops the accept loop; in-flight connections finish their current
// request, then close. run() returns once every connection thread has
// joined.
#pragma once

#include <atomic>
#include <list>
#include <string>
#include <thread>
#include <vector>

#include "src/common/json.h"
#include "src/serve/session.h"

namespace bpvec::serve {

struct ServerOptions {
  /// Filesystem path for the AF_UNIX listening socket. Unlinked on
  /// bind (stale sockets from a killed daemon) and on shutdown.
  std::string socket_path;
  SessionOptions session;
  /// Workload-schema files registered at startup (the daemon-side
  /// equivalent of bpvec_run --network-file).
  std::vector<std::string> network_files;
  /// Seconds between {"status":"running"} heartbeats while a price or
  /// search request executes.
  double heartbeat_s = 0.5;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and serves until request_stop(), then drains:
  /// stops accepting, lets in-flight requests finish, joins connection
  /// threads. Throws bpvec::Error if the socket cannot be bound.
  void run();

  /// Begins graceful drain. Async-signal-safe (one relaxed atomic
  /// store) — safe to call from a SIGTERM/SIGINT handler or any thread.
  void request_stop() noexcept { stop_.store(true, std::memory_order_relaxed); }

  bool stopping() const noexcept {
    return stop_.load(std::memory_order_relaxed);
  }

  /// Executes one request envelope synchronously and returns the FINAL
  /// response document (no heartbeats — those are the socket loop's).
  /// Never throws on bad input: malformed envelopes and bpvec::Error
  /// from the session become {"status":"error"} responses. This is the
  /// whole protocol minus the transport, exposed for tests.
  common::json::Value handle(const common::json::Value& envelope);

  /// handle() after parsing `line` as JSON; parse failures become
  /// {"status":"error"} too (a garbage line must not kill the
  /// connection).
  common::json::Value handle_line(const std::string& line);

  Session& session() { return session_; }

 private:
  /// One live connection thread. `done` is the thread's own completion
  /// flag: the accept loop joins and erases finished entries as it
  /// iterates, so a long-lived daemon's connection list tracks the open
  /// connections instead of growing by one entry per connection ever
  /// accepted. std::list keeps each entry's address stable for the
  /// thread that flags it.
  struct Connection {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  /// One connection's request/response loop (own thread). Sets
  /// `conn->done` on exit.
  void serve_connection(int fd, Connection* conn);

  /// Joins and erases finished connection entries. Only the accept-loop
  /// thread (and run()'s drain, after the loop exits) touches the list.
  void reap_connections();

  /// The dispatch core behind handle(): envelope -> final response,
  /// throwing bpvec::Error on anything malformed. The token reaches the
  /// session's price/search loops.
  common::json::Value dispatch(const common::json::Value& envelope,
                               const CancelToken& token);

  /// Applies the envelope's engine-tuning fields ("grain") to the
  /// session. Called from dispatch AND — crucially — from the
  /// connection loop before run_streaming submits onto the engine's
  /// pool, because that submission is what builds the lazy engine:
  /// tuning carried by the daemon-warming request itself must land
  /// first. Idempotent for a matching value; throws bpvec::Error on a
  /// conflict or a negative grain.
  void apply_engine_tuning(const common::json::Value& envelope);

  /// Runs a price/search dispatch on the session pool, streaming
  /// heartbeats to `fd` while it executes; returns the final response.
  /// A failed heartbeat write cancels the token (the client is gone)
  /// and the cancelled response is returned for the log, never sent.
  common::json::Value run_streaming(int fd, const CancelToken& token,
                                    std::function<common::json::Value()> work);

  ServerOptions options_;
  Session session_;
  std::atomic<bool> stop_{false};
  int listen_fd_ = -1;
  std::list<Connection> connections_;
};

}  // namespace bpvec::serve
