#include "src/serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <utility>

#include "src/cli/report.h"
#include "src/common/error.h"

namespace bpvec::serve {

using common::json::Value;

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

Value error_response(const std::string& message) {
  Value v = Value::object();
  v.set("status", "error");
  v.set("error", message);
  return v;
}

/// Optional boolean envelope field; wrong-typed values are structured
/// errors (thrown, caught at the dispatch boundary), not surprises.
bool get_bool(const Value& envelope, const char* key) {
  const Value* v = envelope.find(key);
  if (v == nullptr) return false;
  if (!v->is_bool()) {
    throw Error(std::string("request field \"") + key + "\" must be a bool");
  }
  return v->as_bool();
}

/// Writes `line` + '\n' to the socket; false when the peer is gone.
bool write_line(int fd, std::string line) {
  line.push_back('\n');
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n =
        ::send(fd, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// The manifest document embedded in a price/search/validate envelope.
cli::Manifest parse_envelope_manifest(const Value& envelope) {
  const Value* doc = envelope.find("manifest");
  if (doc == nullptr) {
    throw Error("request has no \"manifest\" document");
  }
  const Value* base = envelope.find("base_dir");
  std::string base_dir;
  if (base != nullptr) {
    if (!base->is_string()) throw Error("\"base_dir\" must be a string");
    base_dir = base->as_string();
  }
  return cli::parse_manifest(*doc, base_dir);
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), session_(options_.session) {
  for (const std::string& file : options_.network_files) {
    session_.register_network_file(file);
  }
}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (Connection& c : connections_) {
    if (c.thread.joinable()) c.thread.join();
  }
}

void Server::reap_connections() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->done.load(std::memory_order_acquire)) {
      if (it->thread.joinable()) it->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

Value Server::handle(const Value& envelope) {
  try {
    return dispatch(envelope, CancelToken{});
  } catch (const std::exception& e) {
    return error_response(e.what());
  }
}

Value Server::handle_line(const std::string& line) {
  Value envelope;
  try {
    envelope = common::json::parse(line);
  } catch (const std::exception& e) {
    return error_response(std::string("request is not valid JSON: ") +
                          e.what());
  }
  return handle(envelope);
}

void Server::apply_engine_tuning(const Value& envelope) {
  if (const Value* grain = envelope.find("grain")) {
    const std::int64_t g = grain->as_int();
    if (g < 0) throw Error("\"grain\" must be >= 0");
    session_.set_grain(static_cast<std::size_t>(g));
  }
}

Value Server::dispatch(const Value& envelope, const CancelToken& token) {
  if (!envelope.is_object()) {
    throw Error("request must be a JSON object envelope");
  }
  const Value* op_field = envelope.find("op");
  if (op_field == nullptr || !op_field->is_string()) {
    throw Error("request envelope has no \"op\" string");
  }
  const std::string& op = op_field->as_string();

  if (const Value* files = envelope.find("network_files")) {
    if (!files->is_array()) throw Error("\"network_files\" must be an array");
    for (const Value& f : files->as_array()) {
      session_.register_network_file(f.as_string());
    }
  }

  apply_engine_tuning(envelope);

  // Engine-touching ops return the Response's report + both counter
  // blocks; administrative ops return their own payloads.
  auto finalize = [](Response&& r) {
    Value v = Value::object();
    v.set("status", r.cancelled ? "cancelled" : "ok");
    if (!r.report.is_null()) v.set("report", std::move(r.report));
    if (!r.text.empty()) v.set("text", r.text);
    v.set("delta", engine::to_json(r.delta));
    v.set("fleet", engine::to_json(r.fleet));
    v.set("wall_s", r.wall_s);
    return v;
  };

  if (op == "price") {
    PriceRequest request;
    request.manifest = parse_envelope_manifest(envelope);
    request.deterministic_report = get_bool(envelope, "deterministic_report");
    if (const Value* chunk = envelope.find("chunk")) {
      const std::int64_t n = chunk->as_int();
      if (n < 0) throw Error("\"chunk\" must be >= 0");
      request.chunk = static_cast<std::size_t>(n);
    }
    return finalize(session_.price(request, token));
  }
  if (op == "search") {
    SearchRequest request;
    request.manifest = parse_envelope_manifest(envelope);
    request.deterministic_report = get_bool(envelope, "deterministic_report");
    return finalize(session_.search(request, token));
  }
  if (op == "validate") {
    ValidateRequest request;
    request.manifest = parse_envelope_manifest(envelope);
    request.search = get_bool(envelope, "search");
    return finalize(session_.validate(request));
  }
  if (op == "list") {
    return finalize(session_.list());
  }
  if (op == "stats") {
    Value v = Value::object();
    v.set("status", "ok");
    v.set("stats", session_.stats_json());
    return v;
  }
  if (op == "version") {
    Value v = Value::object();
    v.set("status", "ok");
    v.set("version", cli::version_json());
    return v;
  }
  if (op == "ping") {
    Value v = Value::object();
    v.set("status", "ok");
    return v;
  }
  if (op == "shutdown") {
    request_stop();
    Value v = Value::object();
    v.set("status", "ok");
    v.set("draining", true);
    return v;
  }
  throw Error("unknown op: \"" + op + "\"");
}

Value Server::run_streaming(int fd, const CancelToken& token,
                            std::function<Value()> work) {
  auto task = std::make_shared<std::packaged_task<Value()>>(std::move(work));
  std::future<Value> future = task->get_future();
  session_.engine().pool().submit([task] { (*task)(); });

  const auto start = SteadyClock::now();
  const auto beat = std::chrono::duration<double>(
      options_.heartbeat_s > 0 ? options_.heartbeat_s : 0.5);
  bool client_gone = false;
  while (future.wait_for(beat) != std::future_status::ready) {
    Value hb = Value::object();
    hb.set("status", "running");
    hb.set("elapsed_s", seconds_since(start));
    if (!client_gone && !write_line(fd, hb.dump())) {
      // The client vanished; nobody will read the result. Cancel
      // cooperatively and keep waiting — the engine finishes its
      // current batch, the session stays reusable.
      token.cancel();
      client_gone = true;
    }
  }
  try {
    return future.get();
  } catch (const std::exception& e) {
    return error_response(e.what());
  }
}

void Server::serve_connection(int fd, Connection* conn) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !stopping()) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));

    std::size_t pos;
    while (open && (pos = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (line.empty()) continue;

      Value envelope;
      std::string op;
      Value final_response;
      try {
        envelope = common::json::parse(line);
        if (envelope.is_object()) {
          if (const Value* f = envelope.find("op")) {
            if (f->is_string()) op = f->as_string();
          }
        }
      } catch (const std::exception& e) {
        final_response = error_response(
            std::string("request is not valid JSON: ") + e.what());
      }
      if (final_response.is_null()) {
        if (op == "price" || op == "search") {
          // Engine tuning must land BEFORE run_streaming touches
          // session_.engine() to submit the task — that call builds the
          // lazy engine, and a "grain" arriving with the very request
          // that warms the daemon would otherwise be rejected as a
          // post-construction conflict. dispatch() re-applies the same
          // value on the pool thread, which set_grain accepts.
          try {
            apply_engine_tuning(envelope);
          } catch (const std::exception& e) {
            final_response = error_response(e.what());
          }
        } else {
          final_response = handle(envelope);
        }
      }
      if (final_response.is_null()) {
        CancelToken token;
        final_response = run_streaming(
            fd, token,
            [this, envelope, token] { return dispatch(envelope, token); });
      }
      if (!write_line(fd, final_response.dump())) open = false;
      if (op == "shutdown") open = false;  // dispatch began the drain
    }
  }
  ::close(fd);
  // Last: after this store the accept loop may join and erase the entry.
  conn->done.store(true, std::memory_order_release);
}

void Server::run() {
  if (options_.socket_path.empty()) {
    throw Error("bpvec_serve needs a socket path");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw Error("socket path too long: " + options_.socket_path);
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw Error(std::string("socket(): ") + std::strerror(errno));
  }
  ::unlink(options_.socket_path.c_str());  // a killed daemon's stale socket
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("bind(" + options_.socket_path + "): " + std::strerror(err));
  }
  if (::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("listen(" + options_.socket_path +
                "): " + std::strerror(err));
  }

  while (!stopping()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 200);
    // Reap closed connections every loop turn (each poll timeout or
    // accept) so a long-lived daemon under heavy traffic holds entries
    // only for connections that are actually open.
    reap_connections();
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    Connection& conn = connections_.emplace_back();
    conn.thread = std::thread(&Server::serve_connection, this, fd, &conn);
  }

  // Drain: no new connections; in-flight requests run to completion.
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());
  for (Connection& c : connections_) {
    if (c.thread.joinable()) c.thread.join();
  }
  connections_.clear();
}

}  // namespace bpvec::serve
