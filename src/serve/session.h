// Session — one warm engine serving many requests.
//
// The batch CLI pays engine construction, registry setup, and cold memo
// caches on every invocation — throwing away exactly the state the
// layer/delta-pricing caches (PR 6) and the persistent disk cache (PR 3)
// were built to exploit. A Session keeps that state resident: it owns
// one SimEngine (thread pool + scenario/layer memo caches + optional
// disk cache) and the process-wide Network/Backend registries' warm
// contents, and serves typed Request objects against them for the
// process's lifetime.
//
// Two front ends share it — this is the enforced single code path:
//   * cli::run_manifest constructs a fresh Session per invocation (batch
//     semantics: cold memo caches, the disk cache still persists), so
//     `bpvec_run` output is byte-identical to what it was before this
//     layer existed;
//   * serve::Server keeps one Session for the daemon's lifetime and
//     multiplexes socket requests onto it — repeat manifests are served
//     from the warm caches (a warm repeat's delta shows
//     simulations_run == 0).
//
// Accounting: every Response carries the per-request EngineStats delta
// (engine snapshot before/after, subtracted — see the operator- contract
// in sim_engine.h for concurrency caveats) and the fleet-wide cumulative
// counters. The report's optional "stats" block is the DELTA, which for
// a fresh Session equals the engine totals — preserving the batch CLI's
// historical report bytes exactly.
//
// Concurrency: price/search/validate/list are safe to call from any
// thread concurrently (SimEngine::run_batch is concurrency-safe; the
// registries and the session's own history are mutex-guarded). submit()
// queues a request closure onto the engine's work-stealing ThreadPool —
// the same pool that prices the batches; nested parallel_for calls
// caller-participate, so queued requests cannot deadlock the pool.
//
// Cancellation: cooperative, between engine batches. price() runs its
// scenario list in chunks (SessionOptions::price_chunk) and checks the
// token before each; search() threads the token into
// dse::SearchOptions::should_stop, checked before each propose/evaluate
// round. A cancelled request returns Response::cancelled with no report;
// everything priced before the check stays in the caches (it was priced
// normally), so the engine is immediately reusable.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/common/json.h"
#include "src/engine/sim_engine.h"
#include "src/serve/request.h"

namespace bpvec::serve {

struct SessionOptions {
  int threads = 0;  // engine worker threads; <= 0: hardware concurrency
  /// Persistent result-cache directory (engine disk cache); empty = off.
  std::string cache_dir;
  /// Default scenarios per engine batch for price requests — the
  /// cancellation granularity. Counters and results are chunk-invariant.
  std::size_t price_chunk = 256;
  /// Engine parallel_for grain (EngineOptions::grain); 0 = auto.
  std::size_t grain = 0;
};

class Session {
 public:
  explicit Session(SessionOptions options = {});

  // Request execution. All throw bpvec::Error on invalid input (bad
  // manifest contents, missing search block, unknown tokens) — the
  // server maps those to structured error envelopes, the CLI prints
  // them. A thrown request does not appear in the latency history.
  Response price(const PriceRequest& request, CancelToken token = {});
  Response search(const SearchRequest& request, CancelToken token = {});
  Response validate(const ValidateRequest& request);
  Response list();

  /// Registers a workload-schema network file into the process-wide
  /// NetworkRegistry (the CLI's --network-file / the envelope's
  /// "network_files"). Idempotent for identical content.
  void register_network_file(const std::string& path);

  /// Queues `work` onto the engine's ThreadPool and returns its future.
  /// Exceptions thrown by `work` surface through the future. This is how
  /// the server runs requests while its connection thread streams
  /// heartbeats.
  std::future<Response> submit(std::function<Response()> work);

  /// The shared engine (constructed lazily on first use, so validate/
  /// list-only sessions never spin up a thread pool).
  engine::SimEngine& engine();

  /// Sets the engine parallel_for grain (the envelope's "grain" key).
  /// The grain is an engine-construction parameter, so this must happen
  /// before the engine exists (before the first price/search request);
  /// afterwards it is accepted only when it matches the live engine's
  /// value and throws bpvec::Error otherwise. Results are
  /// grain-invariant either way — this only tunes task granularity.
  void set_grain(std::size_t grain);

  /// Cumulative engine counters; all-zero before the engine exists.
  engine::EngineStats fleet_stats();

  /// The {"op":"stats"} document: per-op request counters and latency
  /// (completed/cancelled counts, total/last/max wall seconds), the
  /// fleet-wide cumulative engine counters, and derived cache hit rates
  /// (scenario memo, layer memo, disk). Run-dependent by nature.
  common::json::Value stats_json();

 private:
  struct OpCounters {
    std::size_t completed = 0;
    std::size_t cancelled = 0;
    double total_wall_s = 0.0;
    double last_wall_s = 0.0;
    double max_wall_s = 0.0;
  };

  /// Appends one served request to the latency history.
  void record(const char* op, const Response& response);

  SessionOptions options_;
  mutable std::mutex mu_;  // guards engine_ creation and history_
  std::unique_ptr<engine::SimEngine> engine_;
  std::map<std::string, OpCounters> history_;
};

}  // namespace bpvec::serve
