#include "src/backend/bit_serial_backend.h"

#include <utility>

#include "src/common/error.h"
#include "src/common/mathutil.h"
#include "src/sim/memory_system.h"

namespace bpvec::backend {

BitSerialBackend::BitSerialBackend(baselines::BitSerialConfig serial,
                                   sim::AcceleratorConfig platform,
                                   arch::DramModel memory)
    : serial_(serial),
      platform_(std::move(platform)),
      dram_(std::move(memory)),
      cost_(),
      energy_(platform_, dram_, cost_) {
  platform_.validate();
  BPVEC_CHECK(serial_.lanes >= 1 && serial_.max_bits >= 1);
  display_name_ = serial_.mode == baselines::SerialMode::kActivationSerial
                      ? "BitSerial-Stripes"
                      : "BitSerial-Loom";
  // Anchor the serial lane's per-cycle energy to the conventional-MAC
  // scale: bit_serial_cost integrates one MAC's energy over its full
  // serial latency at max bitwidth, normalized to the conventional MAC.
  const auto bsc = baselines::bit_serial_cost(cost_.technology(), serial_);
  const double serial_cycles_at_max = static_cast<double>(
      serial_.cycles_per_mac(serial_.max_bits, serial_.max_bits));
  lane_cycle_energy_pj_ = bsc.power_per_mac *
                          cost_.conventional_mac_energy_pj() /
                          serial_cycles_at_max;
}

const std::string& BitSerialBackend::name() const {
  static const std::string kStripes = "bit_serial";
  static const std::string kLoom = "bit_serial_loom";
  return serial_.mode == baselines::SerialMode::kActivationSerial ? kStripes
                                                                  : kLoom;
}

std::uint64_t BitSerialBackend::fingerprint() const {
  common::ConfigHash f;
  f.str(name());
  f.i32(static_cast<int>(serial_.mode));
  f.i32(serial_.lanes);
  f.i32(serial_.max_bits);
  hash_platform(f, platform_);
  hash_memory(f, dram_);
  return f.h;
}

sim::LayerResult BitSerialBackend::price_layer(const dnn::Layer& layer) const {
  const std::int64_t batch =
      layer.kind == dnn::LayerKind::kRecurrent ? 1 : platform_.batch_size;
  if (!layer.is_compute()) {
    // Pooling runs on the on-chip post-processing unit, exactly as in the
    // cycle simulator — the serial engines are not involved.
    return sim::price_pool_layer(platform_, energy_, layer, batch);
  }

  sim::LayerResult r;
  r.name = layer.name;
  r.kind = layer.kind;
  r.x_bits = layer.x_bits;
  r.w_bits = layer.w_bits;
  r.macs = layer.macs() * batch;

  dnn::GemmShape gemm = layer.gemm(platform_.time_chunk);
  if (layer.kind != dnn::LayerKind::kRecurrent) {
    gemm.m *= platform_.batch_size;
  }

  // Serial compute: K spreads across the rows (each engine consuming
  // `lanes` dot-product elements per cycles_per_mac serial pass), N
  // across the cols; M streams through. A bw-bit MAC monopolizes its
  // lane for cycles_per_mac(x, w) cycles — the temporal composability
  // trade: linear bitwidth proportionality at serial latency.
  const std::int64_t cpm = serial_.cycles_per_mac(r.x_bits, r.w_bits);
  const std::int64_t k_tile =
      static_cast<std::int64_t>(platform_.rows) * serial_.lanes;
  const std::int64_t k_passes = ceil_div(gemm.k, k_tile);
  const std::int64_t n_passes = ceil_div(gemm.n, platform_.cols);
  const std::int64_t fill_drain = platform_.rows + platform_.cols;
  const std::int64_t compute_cycles =
      k_passes * n_passes * gemm.m * cpm + fill_drain;
  const std::int64_t macs_per_repeat = gemm.m * gemm.n * gemm.k;
  const double peak_macs_per_cycle =
      static_cast<double>(platform_.num_pes()) *
      static_cast<double>(serial_.lanes) / static_cast<double>(cpm);
  r.utilization = static_cast<double>(macs_per_repeat) /
                  (static_cast<double>(compute_cycles) * peak_macs_per_cycle);
  BPVEC_CHECK(r.utilization <= 1.0 + 1e-9);

  // Memory side: identical traffic model and double-buffered overlap as
  // the cycle simulator — the serial engines change compute, not DRAM.
  const sim::TrafficEstimate traffic = sim::estimate_traffic(
      platform_, gemm, r.x_bits, r.w_bits, r.x_bits, n_passes);
  sim::fold_repeat_overlap(r, gemm, compute_cycles, traffic, platform_,
                           dram_);

  // SRAM/DRAM/static energy from the shared model; compute energy charges
  // each useful MAC its serial-lane energy over cpm cycles.
  r.energy = energy_.layer_energy(/*active_cycles=*/0, 0.0, r.total_cycles,
                                  r.sram_bytes, r.dram_bytes);
  r.energy.compute_pj = static_cast<double>(r.macs) * lane_cycle_energy_pj_ *
                        static_cast<double>(cpm);
  return r;
}

sim::RunResult BitSerialBackend::assemble(
    const dnn::Network& network, std::vector<sim::LayerResult> layers) const {
  return sim::assemble_run(display_name_, network.name(), dram_.name, name(),
                           std::move(layers), platform_.frequency_hz);
}

}  // namespace bpvec::backend
