#include "src/backend/cost_backend.h"

#include <type_traits>
#include <variant>

namespace bpvec::backend {

void hash_platform(common::ConfigHash& f, const sim::AcceleratorConfig& c) {
  f.str(c.name);
  f.i32(static_cast<int>(c.pe_kind));
  f.i32(c.rows);
  f.i32(c.cols);
  f.i32(c.cvu.slice_bits);
  f.i32(c.cvu.max_bits);
  f.i32(c.cvu.lanes);
  f.i64(c.scratchpad_bytes);
  f.f64(c.frequency_hz);
  f.i32(c.time_chunk);
  f.i32(c.batch_size);
  f.f64(c.static_core_mw);
}

void hash_memory(common::ConfigHash& f, const arch::DramModel& m) {
  f.str(m.name);
  f.f64(m.bandwidth_gbps);
  f.f64(m.energy_pj_per_bit);
  f.f64(m.startup_latency_ns);
  f.f64(m.background_power_w);
}

std::uint64_t layer_fingerprint(const dnn::Layer& layer, int time_chunk) {
  // Deliberately excludes layer.name: two layers with identical shapes
  // and bitwidths price identically (ResNet's repeated blocks share one
  // cache entry; the consumer patches LayerResult::name back in).
  //
  // Hashes the raw shape parameters rather than derived quantities
  // (macs/gemm/...): cheaper — this sits on the batch hot path, where
  // hashing competes with the analytic pricing itself — and immune to
  // two distinct shapes colliding on equal derived counts.
  common::ConfigHash f;
  f.i32(static_cast<int>(layer.kind));
  f.i32(layer.x_bits);
  f.i32(layer.w_bits);
  f.i32(time_chunk);  // shapes the recurrent GEMM view
  f.u64(layer.params.index());
  std::visit(
      [&f](const auto& p) {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, dnn::ConvParams>) {
          f.i32(p.in_c);
          f.i32(p.in_h);
          f.i32(p.in_w);
          f.i32(p.out_c);
          f.i32(p.kh);
          f.i32(p.kw);
          f.i32(p.stride);
          f.i32(p.pad);
        } else if constexpr (std::is_same_v<T, dnn::FcParams>) {
          f.i32(p.in_features);
          f.i32(p.out_features);
        } else if constexpr (std::is_same_v<T, dnn::PoolParams>) {
          f.i32(p.channels);
          f.i32(p.in_h);
          f.i32(p.in_w);
          f.i32(p.k);
          f.i32(p.stride);
          f.i32(static_cast<int>(p.kind));
        } else {
          static_assert(std::is_same_v<T, dnn::RecurrentParams>);
          f.i32(static_cast<int>(p.cell));
          f.i32(p.input_size);
          f.i32(p.hidden_size);
          f.i32(p.time_steps);
        }
      },
      layer.params);
  return f.h;
}

sim::RunResult CostBackend::run(const dnn::Network& network) const {
  std::vector<sim::LayerResult> layers;
  layers.reserve(network.layers().size());
  for (const dnn::Layer& layer : network.layers()) {
    layers.push_back(price_layer(layer));
  }
  return assemble(network, std::move(layers));
}

}  // namespace bpvec::backend
