#include "src/backend/bpvec_backend.h"

#include <utility>

namespace bpvec::backend {

BpvecBackend::BpvecBackend(sim::AcceleratorConfig config,
                           arch::DramModel memory)
    : sim_(std::move(config), std::move(memory)) {}

const std::string& BpvecBackend::name() const {
  static const std::string kName = "bpvec";
  return kName;
}

std::uint64_t BpvecBackend::fingerprint() const {
  common::ConfigHash f;
  f.str(name());
  hash_platform(f, sim_.config());
  hash_memory(f, sim_.dram());
  return f.h;
}

sim::LayerResult BpvecBackend::price_layer(const dnn::Layer& layer) const {
  return sim_.run_layer(layer);
}

sim::RunResult BpvecBackend::assemble(
    const dnn::Network& network, std::vector<sim::LayerResult> layers) const {
  // The exact fold Simulator::run performs — the shared helper guarantees
  // reassembled (layer-cached) runs are bit-identical to direct runs.
  return sim::assemble_run(sim_.config().name, network.name(),
                           sim_.dram().name, name(), std::move(layers),
                           sim_.config().frequency_hz);
}

}  // namespace bpvec::backend
