// BpvecBackend — the cycle-level Simulator behind the CostBackend
// interface, bit-identical to sim::Simulator::run. "bpvec" here names
// the cost model (the paper's cycle simulator), not the platform: the
// same backend prices the TPU-like, BitFusion, and BPVeC platforms of
// Table II — the platform config decides which.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/backend/cost_backend.h"
#include "src/sim/simulator.h"

namespace bpvec::backend {

class BpvecBackend : public CostBackend {
 public:
  BpvecBackend(sim::AcceleratorConfig config, arch::DramModel memory);

  const std::string& name() const override;
  std::uint64_t fingerprint() const override;
  sim::LayerResult price_layer(const dnn::Layer& layer) const override;
  sim::RunResult assemble(const dnn::Network& network,
                          std::vector<sim::LayerResult> layers) const override;

  const sim::Simulator& simulator() const { return sim_; }

 protected:
  int hash_time_chunk() const override {
    return sim_.config().time_chunk;
  }

 private:
  sim::Simulator sim_;
};

}  // namespace bpvec::backend
