// BitSerialBackend — the temporal (bit-serial) composability baseline
// promoted to a full end-to-end cost model.
//
// The seed baselines::BitSerialConfig only answered cycles-per-MAC;
// this backend prices whole networks into the common sim::RunResult
// shape: the same memory system (estimate_traffic + double-buffered
// overlap), scratchpad, and energy accounting as the cycle simulator,
// with the compute model swapped for serial MACs.
//
// Organization: the platform's rows×cols PE array is re-populated with
// bit-serial vector engines of `lanes` lanes each (Stripes: serial
// activations × parallel weights; Loom: both serial). The K dimension
// spreads across rows — each engine consuming `lanes` dot-product
// elements per cycles_per_mac(x, w) cycles — and N across cols, so at
// max bitwidth the default geometry (512 engines × 16 lanes / 8
// cycles) sustains 1024 MACs/cycle, comparable to BPVeC's Table II
// array. Quantization buys exactly linear cycle reduction (the paper's
// Fig. 1 "temporal" column), where BPVeC keeps single-cycle MACs.
//
// Compute energy charges each MAC the serial engine's lane-cycle energy
// integrated over its serial latency (bit_serial_cost anchored to the
// conventional-MAC scale); SRAM/DRAM/static energy reuse
// sim::EnergyModel unchanged.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/backend/cost_backend.h"
#include "src/baselines/bit_serial.h"
#include "src/sim/energy.h"

namespace bpvec::backend {

class BitSerialBackend : public CostBackend {
 public:
  BitSerialBackend(baselines::BitSerialConfig serial,
                   sim::AcceleratorConfig platform, arch::DramModel memory);

  const std::string& name() const override;
  std::uint64_t fingerprint() const override;
  sim::LayerResult price_layer(const dnn::Layer& layer) const override;
  sim::RunResult assemble(const dnn::Network& network,
                          std::vector<sim::LayerResult> layers) const override;

  const baselines::BitSerialConfig& serial() const { return serial_; }
  /// Design-style label used as RunResult::platform ("BitSerial-Stripes"
  /// or "BitSerial-Loom").
  const std::string& display_name() const { return display_name_; }

 protected:
  int hash_time_chunk() const override { return platform_.time_chunk; }

 private:
  baselines::BitSerialConfig serial_;
  sim::AcceleratorConfig platform_;
  arch::DramModel dram_;
  arch::CvuCostModel cost_;
  sim::EnergyModel energy_;
  std::string display_name_;
  /// Energy one lane burns per serial cycle of one MAC (pJ); per-MAC
  /// energy at (x, w) is this times cycles_per_mac(x, w).
  double lane_cycle_energy_pj_ = 0.0;
};

}  // namespace bpvec::backend
