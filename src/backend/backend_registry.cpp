#include "src/backend/backend_registry.h"

#include <utility>

#include "src/backend/bit_serial_backend.h"
#include "src/backend/bpvec_backend.h"
#include "src/backend/functional_backend.h"
#include "src/backend/gpu_backend.h"
#include "src/common/error.h"

namespace bpvec::backend {

BackendRegistry::BackendRegistry() {
  register_backend("bpvec", [](const sim::AcceleratorConfig& platform,
                               const arch::DramModel& memory) {
    return std::make_unique<BpvecBackend>(platform, memory);
  });
  register_backend("bit_serial", [](const sim::AcceleratorConfig& platform,
                                    const arch::DramModel& memory) {
    return std::make_unique<BitSerialBackend>(
        baselines::BitSerialConfig{baselines::SerialMode::kActivationSerial,
                                   16, 8},
        platform, memory);
  });
  register_backend("bit_serial_loom",
                   [](const sim::AcceleratorConfig& platform,
                      const arch::DramModel& memory) {
                     return std::make_unique<BitSerialBackend>(
                         baselines::BitSerialConfig{
                             baselines::SerialMode::kFullySerial, 16, 8},
                         platform, memory);
                   });
  register_backend("functional", [](const sim::AcceleratorConfig& platform,
                                    const arch::DramModel& memory) {
    return std::make_unique<FunctionalBackend>(FunctionalConfig{}, platform,
                                               memory);
  });
  register_backend("gpu", [](const sim::AcceleratorConfig&,
                             const arch::DramModel&) {
    return std::make_unique<GpuBackend>();
  });
}

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry registry;
  return registry;
}

void BackendRegistry::register_backend(std::string key,
                                       BackendFactory factory) {
  BPVEC_CHECK_MSG(!key.empty(), "backend key must be non-empty");
  BPVEC_CHECK_MSG(static_cast<bool>(factory), "backend factory must be set");
  std::lock_guard<std::mutex> lock(mu_);
  factories_[std::move(key)] =
      Resolved{std::move(factory), next_generation_++};
}

std::unique_ptr<CostBackend> BackendRegistry::create(
    const std::string& key, const sim::AcceleratorConfig& platform,
    const arch::DramModel& memory) const {
  auto backend = resolve(key).factory(platform, memory);
  BPVEC_CHECK_MSG(backend != nullptr,
                  "backend factory returned null for: " + key);
  return backend;
}

bool BackendRegistry::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.count(key) != 0;
}

BackendRegistry::Resolved BackendRegistry::resolve(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = factories_.find(key);
  BPVEC_CHECK_MSG(it != factories_.end(), "unknown cost backend: " + key);
  return it->second;  // copy: callers construct outside the lock
}

std::vector<std::string> BackendRegistry::keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [key, entry] : factories_) out.push_back(key);
  return out;
}

}  // namespace bpvec::backend
