// String-keyed registry of cost-backend factories (the pass/op-model
// registry idiom): SimEngine resolves Scenario::backend through it, so
// registering a new CostBackend makes it reachable from every bench,
// table, and BENCH json without touching the engine.
//
// Builtins registered at construction:
//   "bpvec"           cycle-level Simulator (Table II ASIC platforms)
//   "bit_serial"      Stripes-like activation-serial baseline
//   "bit_serial_loom" Loom-like fully-serial baseline
//   "functional"      bpvec cycle model + bit-packed probe execution
//                     (measured wall-clock, three-way verification)
//   "gpu"             RTX 2080 Ti roofline (ignores platform/memory)
//
// A factory receives the scenario's resolved platform + memory configs;
// backends that don't consume them (the GPU roofline) simply ignore
// them. Re-registering a key overwrites it — cache correctness is
// preserved because the engine folds each backend instance's
// fingerprint() into its cache keys.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/backend/cost_backend.h"

namespace bpvec::backend {

using BackendFactory = std::function<std::unique_ptr<CostBackend>(
    const sim::AcceleratorConfig& platform, const arch::DramModel& memory)>;

class BackendRegistry {
 public:
  /// Process-wide registry (thread-safe).
  static BackendRegistry& instance();

  /// Registers (or overwrites) a factory under `key`.
  void register_backend(std::string key, BackendFactory factory);

  /// Instantiates the backend registered under `key` for the given
  /// pricing context. Fails loudly on unknown keys.
  std::unique_ptr<CostBackend> create(const std::string& key,
                                      const sim::AcceleratorConfig& platform,
                                      const arch::DramModel& memory) const;

  bool contains(const std::string& key) const;

  /// A consistent (factory, registration-stamp) snapshot of one key.
  /// `generation` is bumped every time the key is (re-)registered; the
  /// engine folds it into scenario-cache keys so re-registering a key
  /// with different knobs abandons stale entries — and constructs
  /// backends from the snapshotted factory, so a batch can never cache
  /// one registration's numbers under another's stamp, even if a
  /// re-registration races the batch. Snapshotting also spares the
  /// engine constructing a backend (and hashing its fingerprint) for
  /// scenarios a cache will serve anyway.
  struct Resolved {
    BackendFactory factory;
    std::uint64_t generation = 0;
  };

  /// Atomic lookup of `key`. Fails loudly on unknown keys.
  Resolved resolve(const std::string& key) const;

  /// Registered keys, sorted — benches iterate this to grow a backend
  /// column automatically.
  std::vector<std::string> keys() const;

 private:
  BackendRegistry();  // registers the builtins

  mutable std::mutex mu_;
  std::map<std::string, Resolved> factories_;
  std::uint64_t next_generation_ = 1;
};

}  // namespace bpvec::backend
