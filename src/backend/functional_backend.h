// FunctionalBackend — the cost backend that *executes* what the others
// model.
//
// price_layer prices the layer through the cycle-level Simulator exactly
// like "bpvec", then actually runs a deterministic bounded probe of the
// layer through the bit-packed SIMD kernels (src/kernels) and
// cross-checks the results bit-for-bit, three ways:
//
//   packed kernels  ==  dnn reference operators  ==  scalar CVU datapath
//
// Agreement is the paper's Eq. 1–4 exactness property, enforced on every
// priced layer (a mismatch throws — pricing fails loudly rather than
// emit unverified numbers). On top of the modeled cycles the result
// carries measured_wall_s / measured_macs from the packed probe, giving
// reports a measured-vs-modeled column.
//
// Determinism contract: probe operands come from
// Rng(seed).fork(layer_fingerprint(layer)), split into two independent
// child streams — fork(0) for activations, fork(1) for weights — so the
// data, and every output except wall-clock, depends only on the layer's
// shape and bitwidths, never on its name, thread count, or invocation
// order. The weight stream feeds the process-wide WeightPlaneCache
// (kernels/weight_cache.h): the first probe of a layer draws and packs
// its weight planes, every later probe of the same (probe config, layer)
// key — zoo sweeps, DSE candidates, warm serve requests — reuses them
// without re-drawing or re-packing; the separate input stream is what
// makes skipping the draw safe. Because assemble is the same pure fold
// the other cycle backends use, functional runs ride the engine's
// scenario/layer/disk caches unchanged: a warm run replays the measured
// numbers verbatim and executes zero layers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/backend/cost_backend.h"
#include "src/sim/simulator.h"

namespace bpvec::backend {

/// Probe bounds. Full-size zoo layers are too slow to execute end to end
/// (the scalar CVU cross-check especially), so each layer is downscaled
/// deterministically: output pixels / channels / features / time steps
/// are capped, but the accumulation depth K (in_c·kh·kw, in_features,
/// input+hidden) is always kept FULL — the dimension where packing,
/// sign-plane weighting, and carry behaviour can actually go wrong.
struct FunctionalConfig {
  std::uint64_t seed = 0x5EEDF00Dull;
  int max_side = 4;        // conv/pool probe output side (≤ 16 pixels)
  int max_channels = 64;   // output channels / features / hidden units
  int max_time_steps = 4;  // recurrent probe steps
  int check_rows = 2;      // CVU cross-check sub-block: GEMM rows (M)
  int check_cols = 8;      // CVU cross-check sub-block: GEMM cols (N)
};

class FunctionalBackend : public CostBackend {
 public:
  FunctionalBackend(FunctionalConfig functional, sim::AcceleratorConfig config,
                    arch::DramModel memory);

  const std::string& name() const override;
  std::uint64_t fingerprint() const override;
  sim::LayerResult price_layer(const dnn::Layer& layer) const override;
  sim::RunResult assemble(const dnn::Network& network,
                          std::vector<sim::LayerResult> layers) const override;

  const FunctionalConfig& functional_config() const { return functional_; }

  /// The deterministically downscaled layer price_layer actually
  /// executes (exposed so tests can pin the probe shapes).
  dnn::Layer probe_layer(const dnn::Layer& layer) const;

  /// WeightPlaneCache key for `layer`'s probe weights: folds the
  /// functional seed, the probe bounds, and the layer fingerprint —
  /// everything the deterministic weight draw depends on. The SIMD
  /// variant is deliberately absent (packing is variant-independent).
  /// Exposed so tests can assert cache keying directly.
  std::uint64_t weight_key(const dnn::Layer& layer) const;

 protected:
  int hash_time_chunk() const override { return sim_.config().time_chunk; }

 private:
  FunctionalConfig functional_;
  sim::Simulator sim_;
};

}  // namespace bpvec::backend
