// GpuBackend — the RTX 2080 Ti roofline model (baselines::GpuModel)
// adapted to the common sim::RunResult shape, so the Fig. 9 GPU column
// rides the same SimEngine batch path and report tables as the ASIC
// platforms.
//
// The adaptation is faithful to the seed model: per-layer seconds come
// from GpuModel::layer_time, run totals from the identical fold
// GpuModel::run performs, so runtime_s / gops_per_s / gops_per_w are
// bit-identical to calling GpuModel directly. Cycles are reported at
// the GPU clock; energy charges board power over the run (GPUs burn
// close to TDP during inference bursts — the Fig. 9 perf/W basis).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/backend/cost_backend.h"
#include "src/baselines/gpu_model.h"

namespace bpvec::backend {

class GpuBackend : public CostBackend {
 public:
  explicit GpuBackend(baselines::GpuSpec spec = baselines::GpuSpec{});

  const std::string& name() const override;
  std::uint64_t fingerprint() const override;
  sim::LayerResult price_layer(const dnn::Layer& layer) const override;
  sim::RunResult assemble(const dnn::Network& network,
                          std::vector<sim::LayerResult> layers) const override;

  const baselines::GpuModel& model() const { return model_; }

 private:
  baselines::GpuModel model_;
};

}  // namespace bpvec::backend
