// CostBackend — the unified cost-model interface.
//
// The paper's headline claims are comparative: spatial bit-parallel
// composability (the cycle-level Simulator) vs temporal bit-serial
// designs (Stripes/Loom, Fig. 1) vs a TensorRT-class GPU baseline
// (Fig. 9). A CostBackend prices a network into the common
// sim::RunResult shape so all comparators ride the same SimEngine batch
// path, the same result cache, and the same report tables.
//
// The interface is layer-granular on purpose: the engine memoizes
// price_layer results keyed by (backend fingerprint × layer
// fingerprint), so ResNet's repeated blocks and cross-scenario shared
// networks price each unique layer once. The contract that makes the
// cache safe:
//
//   run(network)  ==  assemble(network, [price_layer(l) for l in layers])
//
// bit for bit — assemble must be a pure fold over the per-layer results
// (cached entries are exact copies, so reassembled runs are
// bit-identical to direct runs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/arch/dram.h"
#include "src/common/hash.h"
#include "src/dnn/layer.h"
#include "src/dnn/network.h"
#include "src/sim/config.h"
#include "src/sim/simulator.h"

namespace bpvec::backend {

/// Folds every simulation-relevant platform knob into `f` (everything
/// sim::Simulator reads). Shared by Scenario::fingerprint and the
/// backend fingerprints.
void hash_platform(common::ConfigHash& f, const sim::AcceleratorConfig& c);

/// Folds every memory-system knob into `f`.
void hash_memory(common::ConfigHash& f, const arch::DramModel& m);

/// Shape/bits identity of one layer — the layer half of the engine's
/// layer-cache key. `time_chunk` is the recurrent time-batching bound of
/// the pricing platform (it shapes the GEMM view).
std::uint64_t layer_fingerprint(const dnn::Layer& layer, int time_chunk);

class CostBackend {
 public:
  virtual ~CostBackend() = default;

  /// Registry key and report/JSON label ("bpvec", "bit_serial", "gpu").
  virtual const std::string& name() const = 0;

  /// 64-bit hash over every knob that can change this backend's pricing
  /// (its own config plus whatever platform/memory state it uses). The
  /// engine folds it into the scenario hash — two different cost models
  /// of the same scenario must not collide — and into layer-cache keys.
  virtual std::uint64_t fingerprint() const = 0;

  /// Prices one layer in isolation. Must be pure and re-entrant: the
  /// engine calls it from many threads and memoizes the result.
  virtual sim::LayerResult price_layer(const dnn::Layer& layer) const = 0;

  /// Folds per-layer results (in network layer order) into the common
  /// RunResult shape: totals plus the derived run metrics.
  virtual sim::RunResult assemble(const dnn::Network& network,
                                  std::vector<sim::LayerResult> layers)
      const = 0;

  /// Cache key for one layer under this backend:
  /// backend_fingerprint × layer_fingerprint(layer, hash_time_chunk()).
  /// Callers hash many layers per scenario, so they compute fingerprint()
  /// once and pass it back in.
  std::uint64_t layer_key(std::uint64_t backend_fingerprint,
                          const dnn::Layer& layer) const {
    return common::hash_combine(backend_fingerprint,
                                layer_fingerprint(layer, hash_time_chunk()));
  }

  /// Prices the whole network: price_layer over every layer, then
  /// assemble. This is the reference ("direct") path the engine's cached
  /// path must reproduce bit for bit.
  sim::RunResult run(const dnn::Network& network) const;

 protected:
  /// time_chunk used when hashing layers (cycle backends return their
  /// platform's; time-based backends keep the default — it only needs to
  /// be consistent per backend instance and covered by fingerprint()).
  virtual int hash_time_chunk() const { return 16; }
};

}  // namespace bpvec::backend
