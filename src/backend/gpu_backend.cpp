#include "src/backend/gpu_backend.h"

#include <cmath>
#include <utility>

#include "src/common/error.h"

namespace bpvec::backend {

GpuBackend::GpuBackend(baselines::GpuSpec spec) : model_(spec) {}

const std::string& GpuBackend::name() const {
  static const std::string kName = "gpu";
  return kName;
}

std::uint64_t GpuBackend::fingerprint() const {
  const baselines::GpuSpec& s = model_.spec();
  common::ConfigHash f;
  f.str(name());
  f.str(s.name);
  f.i32(s.tensor_cores);
  f.f64(s.frequency_ghz);
  f.f64(s.int8_macs_per_core_per_clock);
  f.f64(s.memory_bandwidth_gbps);
  f.f64(s.board_power_w);
  f.f64(s.conv_utilization);
  f.f64(s.gemv_bandwidth_fraction);
  f.f64(s.kernel_overhead_us);
  return f.h;
}

sim::LayerResult GpuBackend::price_layer(const dnn::Layer& layer) const {
  const baselines::GpuSpec& spec = model_.spec();
  sim::LayerResult r;
  r.name = layer.name;
  r.kind = layer.kind;
  r.x_bits = layer.x_bits;
  r.w_bits = layer.w_bits;
  r.macs = layer.macs();

  const baselines::GpuLayerTime t = model_.layer_time(layer);
  r.runtime_s = t.seconds;
  r.memory_bound = t.bandwidth_bound;
  r.total_cycles = static_cast<std::int64_t>(
      std::llround(t.seconds * spec.frequency_ghz * 1e9));
  // Board power over the layer's wall clock; the breakdown has no
  // compute/SRAM/DRAM split for the GPU, so it all lands in static_pj.
  r.energy.static_pj = t.seconds * spec.board_power_w * 1e12;
  return r;
}

sim::RunResult GpuBackend::assemble(
    const dnn::Network& network, std::vector<sim::LayerResult> layers) const {
  const baselines::GpuSpec& spec = model_.spec();
  sim::RunResult result;
  result.platform = spec.name;
  result.network = network.name();
  result.memory = "GDDR6";
  result.backend = name();
  result.layers = std::move(layers);

  // The exact fold GpuModel::run performs (seconds and MACs accumulated
  // in layer order), so the shared metrics are bit-identical to the
  // direct model.
  for (const sim::LayerResult& lr : result.layers) {
    result.runtime_s += lr.runtime_s;
    result.total_macs += lr.macs;
    result.total_cycles += lr.total_cycles;
    result.energy += lr.energy;
  }
  BPVEC_CHECK(result.runtime_s > 0);
  result.energy_j = result.energy.total_pj() * 1e-12;
  result.average_power_w = spec.board_power_w;
  result.gops_per_s =
      2.0 * static_cast<double>(result.total_macs) / result.runtime_s / 1e9;
  result.gops_per_w = result.gops_per_s / spec.board_power_w;
  return result;
}

}  // namespace bpvec::backend
