#include "src/backend/functional_backend.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/bitslice/cvu.h"
#include "src/common/error.h"
#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/core/gemm_executor.h"
#include "src/dnn/gemm_lowering.h"
#include "src/dnn/quantize.h"
#include "src/dnn/reference_ops.h"
#include "src/kernels/packed_kernels.h"
#include "src/kernels/simd.h"
#include "src/kernels/weight_cache.h"

namespace bpvec::backend {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

int ceil_log2(std::int64_t v) {
  int b = 0;
  while ((std::int64_t{1} << b) < v) ++b;
  return b;
}

/// First min(n, m.rows) rows of `m` — the CVU cross-check sub-block.
dnn::Matrix head_rows(const dnn::Matrix& m, std::int64_t n) {
  dnn::Matrix out;
  out.rows = std::min(n, m.rows);
  out.cols = m.cols;
  out.data.assign(m.data.begin(),
                  m.data.begin() + static_cast<std::size_t>(out.rows * m.cols));
  return out;
}

/// Small CVU instance for the scalar datapath cross-check. B = 16 covers
/// every bitwidth the packer accepts, not just the workload schema's
/// [1, 8] range.
bitslice::Cvu make_check_cvu() { return bitslice::Cvu({2, 16, 16}); }

kernels::WeightPlaneCache& weight_cache() {
  return kernels::WeightPlaneCache::instance();
}

void probe_conv(const dnn::Layer& probe, const FunctionalConfig& fc,
                Rng& input_rng, Rng& weight_rng, std::uint64_t weight_key,
                kernels::KernelStats* stats, double* wall_s) {
  const dnn::ConvParams& p = probe.conv();
  const std::int64_t k = static_cast<std::int64_t>(p.in_c) * p.kh * p.kw;
  dnn::Tensor input(p.in_c, p.in_h, p.in_w);
  for (auto& v : input.data()) v = input_rng.signed_value(probe.x_bits);
  // Weight draw + pack, once per (probe config, layer) key — repeat
  // probes hit the cache and skip both. The draw rides its own Rng
  // stream, so skipping it never perturbs the input stream above.
  const auto entry = weight_cache().get_or_pack(weight_key, [&] {
    kernels::PackedWeights pw;
    pw.values = weight_rng.signed_vector(
        static_cast<std::size_t>(p.out_c) * p.in_c * p.kh * p.kw,
        probe.w_bits);
    pw.planes.push_back(
        kernels::pack_values(pw.values.data(), p.out_c, k, probe.w_bits));
    return pw;
  });
  const std::vector<std::int32_t>& weights = entry->values;

  const auto t0 = Clock::now();
  const auto packed = kernels::packed_conv(input, entry->planes[0], p,
                                           probe.x_bits,
                                           /*pool=*/nullptr, stats);
  *wall_s += seconds_since(t0);

  const auto reference = dnn::conv2d_reference(input, weights, p);
  BPVEC_CHECK_MSG(packed == reference,
                  "functional probe: packed conv deviates from reference: " +
                      probe.name);

  // Scalar CVU datapath on a sub-block of the same lowered GEMM.
  const dnn::Matrix a = head_rows(dnn::im2col(input, p), fc.check_rows);
  const dnn::Matrix b =
      head_rows(dnn::weights_as_matrix(weights, p), fc.check_cols);
  bitslice::Cvu cvu = make_check_cvu();
  const auto cvu_out = core::execute_gemm(cvu, a, b, probe.x_bits,
                                          probe.w_bits);
  const std::int64_t pixels =
      static_cast<std::int64_t>(p.out_h()) * p.out_w();
  for (std::int64_t m = 0; m < a.rows; ++m) {
    for (std::int64_t n = 0; n < b.rows; ++n) {
      BPVEC_CHECK_MSG(
          cvu_out[static_cast<std::size_t>(m * b.rows + n)] ==
              reference[static_cast<std::size_t>(n * pixels + m)],
          "functional probe: CVU datapath deviates on conv: " + probe.name);
    }
  }
}

void probe_fc(const dnn::Layer& probe, const FunctionalConfig& fc,
              Rng& input_rng, Rng& weight_rng, std::uint64_t weight_key,
              kernels::KernelStats* stats, double* wall_s) {
  const dnn::FcParams& p = probe.fc();
  const auto input = input_rng.signed_vector(
      static_cast<std::size_t>(p.in_features), probe.x_bits);
  const auto entry = weight_cache().get_or_pack(weight_key, [&] {
    kernels::PackedWeights pw;
    pw.values = weight_rng.signed_vector(
        static_cast<std::size_t>(p.in_features) * p.out_features,
        probe.w_bits);
    pw.planes.push_back(kernels::pack_values(pw.values.data(), p.out_features,
                                             p.in_features, probe.w_bits));
    return pw;
  });
  const std::vector<std::int32_t>& weights = entry->values;

  const auto t0 = Clock::now();
  const auto packed = kernels::packed_fc(input, entry->planes[0], p,
                                         probe.x_bits, /*pool=*/nullptr,
                                         stats);
  *wall_s += seconds_since(t0);

  const auto reference = dnn::fc_reference(input, weights, p);
  BPVEC_CHECK_MSG(packed == reference,
                  "functional probe: packed fc deviates from reference: " +
                      probe.name);

  dnn::Matrix a{1, p.in_features, input};
  dnn::Matrix wm{p.out_features, p.in_features, weights};
  const dnn::Matrix b = head_rows(wm, fc.check_cols);
  bitslice::Cvu cvu = make_check_cvu();
  const auto cvu_out = core::execute_gemm(cvu, a, b, probe.x_bits,
                                          probe.w_bits);
  for (std::int64_t n = 0; n < b.rows; ++n) {
    BPVEC_CHECK_MSG(
        cvu_out[static_cast<std::size_t>(n)] ==
            reference[static_cast<std::size_t>(n)],
        "functional probe: CVU datapath deviates on fc: " + probe.name);
  }
}

void probe_pool(const dnn::Layer& probe, Rng& input_rng,
                kernels::KernelStats* stats, double* wall_s) {
  const dnn::PoolParams& p = probe.pool();
  dnn::Tensor input(p.channels, p.in_h, p.in_w);
  for (auto& v : input.data()) v = input_rng.signed_value(probe.x_bits);

  const auto t0 = Clock::now();
  const dnn::Tensor packed =
      kernels::packed_pool(input, p, /*pool=*/nullptr, stats);
  *wall_s += seconds_since(t0);

  const dnn::Tensor reference = dnn::pool_reference(input, p);
  // No MACs, no GEMM — the pool probe is a two-way check (the CVU never
  // sees pooling; it runs on the post-processing unit in the model too).
  BPVEC_CHECK_MSG(packed.data() == reference.data(),
                  "functional probe: packed pool deviates from reference: " +
                      probe.name);
}

void probe_recurrent(const dnn::Layer& probe, const FunctionalConfig& fc,
                     Rng& input_rng, Rng& weight_rng,
                     std::uint64_t weight_key, kernels::KernelStats* stats,
                     double* wall_s) {
  const dnn::RecurrentParams& p = probe.recurrent();
  const std::int64_t k = p.input_size + p.hidden_size;
  const int out_bits = probe.x_bits;
  // Shift sized to the worst-case accumulator so requantized state lands
  // back in the activation range without saturating everything to the
  // clamp rails (saturated state would verify trivially).
  const int shift = std::max(
      0, ceil_log2(k) + probe.x_bits + probe.w_bits - 1 - out_bits);

  auto h = input_rng.signed_vector(static_cast<std::size_t>(p.hidden_size),
                                   probe.x_bits);
  // One weight matrix per gate; LSTM probes cycle through all four (step
  // t uses gate t mod gates), so every gate matrix meets a real
  // reference recurrence. The cache entry carries one packed BitPlanes
  // per gate.
  const int gates = p.gates();
  const std::size_t gate_size =
      static_cast<std::size_t>(p.hidden_size) * static_cast<std::size_t>(k);
  const auto entry = weight_cache().get_or_pack(weight_key, [&] {
    kernels::PackedWeights pw;
    pw.values = weight_rng.signed_vector(gates * gate_size, probe.w_bits);
    for (int g = 0; g < gates; ++g) {
      pw.planes.push_back(kernels::pack_values(
          pw.values.data() + static_cast<std::size_t>(g) * gate_size,
          p.hidden_size, k, probe.w_bits));
    }
    return pw;
  });

  for (int t = 0; t < p.time_steps; ++t) {
    const auto x = input_rng.signed_vector(
        static_cast<std::size_t>(p.input_size), probe.x_bits);
    const int gate = t % gates;
    const std::size_t off = static_cast<std::size_t>(gate) * gate_size;
    const std::vector<std::int32_t> weights(
        entry->values.begin() + static_cast<std::ptrdiff_t>(off),
        entry->values.begin() + static_cast<std::ptrdiff_t>(off + gate_size));

    const auto t0 = Clock::now();
    const auto packed = kernels::packed_rnn_step(
        x, h, entry->planes[static_cast<std::size_t>(gate)], p.hidden_size,
        shift, out_bits, probe.x_bits, /*pool=*/nullptr, stats);
    *wall_s += seconds_since(t0);

    const auto reference = dnn::rnn_step_reference(x, h, weights,
                                                   p.hidden_size, shift,
                                                   out_bits);
    BPVEC_CHECK_MSG(
        packed == reference,
        "functional probe: packed recurrent step deviates from reference: " +
            probe.name);

    if (t == p.time_steps - 1) {
      // CVU datapath on this step's pre-activation accumulators.
      std::vector<std::int32_t> xh = x;
      xh.insert(xh.end(), h.begin(), h.end());
      dnn::Matrix a{1, k, std::move(xh)};
      dnn::Matrix wm{p.hidden_size, k, weights};
      const dnn::Matrix b = head_rows(wm, fc.check_cols);
      bitslice::Cvu cvu = make_check_cvu();
      const auto cvu_out = core::execute_gemm(cvu, a, b, probe.x_bits,
                                              probe.w_bits);
      for (std::int64_t n = 0; n < b.rows; ++n) {
        BPVEC_CHECK_MSG(
            dnn::requantize(cvu_out[static_cast<std::size_t>(n)], shift,
                            out_bits) == packed[static_cast<std::size_t>(n)],
            "functional probe: CVU datapath deviates on recurrent step: " +
                probe.name);
      }
    }
    h = packed;
  }
}

}  // namespace

FunctionalBackend::FunctionalBackend(FunctionalConfig functional,
                                     sim::AcceleratorConfig config,
                                     arch::DramModel memory)
    : functional_(functional), sim_(std::move(config), std::move(memory)) {
  BPVEC_CHECK_MSG(functional_.max_side >= 1 && functional_.max_channels >= 1 &&
                      functional_.max_time_steps >= 1 &&
                      functional_.check_rows >= 1 && functional_.check_cols >= 1,
                  "functional probe bounds must be positive");
}

const std::string& FunctionalBackend::name() const {
  static const std::string kName = "functional";
  return kName;
}

std::uint64_t FunctionalBackend::fingerprint() const {
  common::ConfigHash f;
  f.str(name());
  // The kernel variant cannot change results (integer math is exact in
  // every variant) but does change measured_wall_s; folding the
  // runtime-SELECTED variant in keeps cache entries from one dispatch
  // out of another's runs (and re-keys the caches if a test forces a
  // different variant mid-process).
  f.str(kernels::simd_variant());
  f.u64(functional_.seed);
  f.i32(functional_.max_side);
  f.i32(functional_.max_channels);
  f.i32(functional_.max_time_steps);
  f.i32(functional_.check_rows);
  f.i32(functional_.check_cols);
  hash_platform(f, sim_.config());
  hash_memory(f, sim_.dram());
  return f.h;
}

std::uint64_t FunctionalBackend::weight_key(const dnn::Layer& layer) const {
  common::ConfigHash f;
  f.str("functional-weight-planes");
  f.u64(functional_.seed);
  f.i32(functional_.max_side);
  f.i32(functional_.max_channels);
  f.i32(functional_.max_time_steps);
  f.u64(layer_fingerprint(layer, hash_time_chunk()));
  return f.h;
}

dnn::Layer FunctionalBackend::probe_layer(const dnn::Layer& layer) const {
  dnn::Layer probe = layer;
  switch (layer.kind) {
    case dnn::LayerKind::kConv: {
      dnn::ConvParams p = layer.conv();
      p.out_c = std::min(p.out_c, functional_.max_channels);
      // Shrink the input so the output is exactly max_side wide: the
      // formula inverts out_h() = (in_h + 2·pad − kh)/stride + 1. A
      // result outside [1, in_h] means the layer is already small (or
      // pad-dominated) — keep the original extent.
      const int oh = std::min(p.out_h(), functional_.max_side);
      const int in_h = (oh - 1) * p.stride + p.kh - 2 * p.pad;
      if (in_h >= 1 && in_h <= p.in_h) p.in_h = in_h;
      const int ow = std::min(p.out_w(), functional_.max_side);
      const int in_w = (ow - 1) * p.stride + p.kw - 2 * p.pad;
      if (in_w >= 1 && in_w <= p.in_w) p.in_w = in_w;
      probe.params = p;
      break;
    }
    case dnn::LayerKind::kFullyConnected: {
      dnn::FcParams p = layer.fc();
      p.out_features = std::min(p.out_features, functional_.max_channels);
      probe.params = p;
      break;
    }
    case dnn::LayerKind::kPool: {
      dnn::PoolParams p = layer.pool();
      p.channels = std::min(p.channels, functional_.max_channels);
      const int oh = std::min(p.out_h(), functional_.max_side);
      p.in_h = std::min(p.in_h, (oh - 1) * p.stride + p.k);
      const int ow = std::min(p.out_w(), functional_.max_side);
      p.in_w = std::min(p.in_w, (ow - 1) * p.stride + p.k);
      probe.params = p;
      break;
    }
    case dnn::LayerKind::kRecurrent: {
      dnn::RecurrentParams p = layer.recurrent();
      p.input_size = std::min(p.input_size, functional_.max_channels);
      p.hidden_size = std::min(p.hidden_size, functional_.max_channels);
      p.time_steps = std::min(p.time_steps, functional_.max_time_steps);
      probe.params = p;
      break;
    }
  }
  return probe;
}

sim::LayerResult FunctionalBackend::price_layer(const dnn::Layer& layer) const {
  // Modeled half: the same cycle-level pricing as "bpvec".
  sim::LayerResult result = sim_.run_layer(layer);

  // Measured half: execute the bounded probe. The Rng stream is forked
  // off the layer fingerprint and split into independent activation
  // (fork 0) and weight (fork 1) streams: probe data — and every output
  // but wall-clock — is a pure function of (seed, layer shape,
  // bitwidths), and a weight-cache hit can skip the weight draw without
  // disturbing the activations.
  const dnn::Layer probe = probe_layer(layer);
  const Rng base = Rng(functional_.seed)
                       .fork(layer_fingerprint(layer, hash_time_chunk()));
  Rng input_rng = base.fork(0);
  Rng weight_rng = base.fork(1);
  const std::uint64_t wkey = weight_key(layer);
  kernels::KernelStats stats;
  double wall_s = 0.0;
  switch (probe.kind) {
    case dnn::LayerKind::kConv:
      probe_conv(probe, functional_, input_rng, weight_rng, wkey, &stats,
                 &wall_s);
      break;
    case dnn::LayerKind::kFullyConnected:
      probe_fc(probe, functional_, input_rng, weight_rng, wkey, &stats,
               &wall_s);
      break;
    case dnn::LayerKind::kPool:
      probe_pool(probe, input_rng, &stats, &wall_s);
      break;
    case dnn::LayerKind::kRecurrent:
      probe_recurrent(probe, functional_, input_rng, weight_rng, wkey, &stats,
                      &wall_s);
      break;
  }
  result.measured_wall_s = wall_s;
  result.measured_macs = stats.macs;
  return result;
}

sim::RunResult FunctionalBackend::assemble(
    const dnn::Network& network, std::vector<sim::LayerResult> layers) const {
  return sim::assemble_run(sim_.config().name, network.name(),
                           sim_.dram().name, name(), std::move(layers),
                           sim_.config().frequency_hz);
}

}  // namespace bpvec::backend
