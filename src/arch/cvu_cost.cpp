#include "src/arch/cvu_cost.h"

#include "src/common/error.h"

namespace bpvec::arch {

namespace {
constexpr int kAccumulatorWidth = 32;
}

CvuCostModel::CvuCostModel(const Technology& tech) : tech_(tech) {}

CvuStructuralCost CvuCostModel::structural_cost(
    const bitslice::CvuGeometry& g) const {
  g.validate();
  const int s = g.num_nbves();
  const int alpha = g.slice_bits;
  const int lanes = g.lanes;

  CvuStructuralCost c;

  // --- Multiplication: S·L narrow multipliers.
  c.multiply =
      static_cast<double>(s) * lanes * multiplier_cost(tech_, alpha, alpha);

  // --- Addition.
  // Private per-NBVE adder trees: L products of 2α bits each.
  const Cost private_tree = adder_tree_cost(tech_, lanes, 2 * alpha);
  const int nbve_out_width = adder_tree_output_width(lanes, 2 * alpha);
  // Global tree aggregates the S shifted NBVE scalars. Maximum shift is
  // 2·(B − α), i.e. both operands' top significance positions.
  const int max_shift = 2 * (g.max_bits - alpha);
  const int shifted_width = nbve_out_width + max_shift;
  const Cost global_tree = adder_tree_cost(tech_, s, shifted_width);
  const Cost accumulator = adder_cost(tech_, kAccumulatorWidth);
  c.addition = static_cast<double>(s) * private_tree + global_tree +
               accumulator;

  // --- Shifting: one logarithmic shifter per NBVE. Distinct shift amounts
  // are the distinct (j + k) significance sums: 2·(B/α − 1) + 1.
  const int positions = 2 * (g.slices_per_operand() - 1) + 1;
  c.shifting = static_cast<double>(s) *
               shifter_cost(tech_, nbve_out_width, positions);

  // --- Registering: NBVE output registers plus the 32-bit accumulator.
  c.registering =
      static_cast<double>(s) * register_cost(tech_, nbve_out_width) +
      register_cost(tech_, kAccumulatorWidth);

  return c;
}

Fig4Point CvuCostModel::normalized_per_mac(
    const bitslice::CvuGeometry& g) const {
  const CvuStructuralCost c = structural_cost(g);
  const ConvMacCost conv = conventional_mac_cost(tech_, g.max_bits);
  const double conv_area = conv.total().area_um2;
  const double conv_energy = conv.total().energy_fj;
  const double lanes = static_cast<double>(g.lanes);

  const auto& ac = tech_.area_cal;
  const auto& pc = tech_.power_cal;

  Fig4Point p;
  p.area_mult = c.multiply.area_um2 * ac.mult / lanes / conv_area;
  p.area_add = c.addition.area_um2 * ac.add / lanes / conv_area;
  p.area_shift = c.shifting.area_um2 * ac.shift / lanes / conv_area;
  p.area_reg = c.registering.area_um2 * ac.reg / lanes / conv_area;

  p.power_mult = c.multiply.energy_fj * pc.mult / lanes / conv_energy;
  p.power_add = c.addition.energy_fj * pc.add / lanes / conv_energy;
  p.power_shift = c.shifting.energy_fj * pc.shift / lanes / conv_energy;
  p.power_reg = c.registering.energy_fj * pc.reg / lanes / conv_energy;
  return p;
}

double CvuCostModel::conventional_mac_power_mw() const {
  return tech_.conv_mac_power_mw;
}

double CvuCostModel::conventional_mac_energy_pj() const {
  // P = E·f  ⇒  E[pJ] = P[mW] / f[GHz] · 1e... : mW / Hz = mJ·s / 1e3 —
  // work in SI: watts / hertz = joules; convert to pJ.
  return tech_.conv_mac_power_mw * 1e-3 / tech_.frequency_hz * 1e12;
}

double CvuCostModel::conventional_mac_area_um2() const {
  return tech_.conv_mac_area_um2;
}

double CvuCostModel::cvu_power_mw(const bitslice::CvuGeometry& g) const {
  const Fig4Point p = normalized_per_mac(g);
  return p.power_total() * conventional_mac_power_mw() * g.lanes;
}

double CvuCostModel::cvu_energy_per_cycle_pj(
    const bitslice::CvuGeometry& g) const {
  return cvu_power_mw(g) * 1e-3 / tech_.frequency_hz * 1e12;
}

double CvuCostModel::cvu_area_um2(const bitslice::CvuGeometry& g) const {
  const Fig4Point p = normalized_per_mac(g);
  return p.area_total() * conventional_mac_area_um2() * g.lanes;
}

double CvuCostModel::mac_energy_pj(const bitslice::CvuGeometry& g, int x_bits,
                                   int w_bits) const {
  const auto plan = bitslice::plan_composition(g, x_bits, w_bits);
  const double macs_per_cycle =
      static_cast<double>(plan.clusters) * g.lanes;
  BPVEC_CHECK(macs_per_cycle > 0);
  return cvu_energy_per_cycle_pj(g) / macs_per_cycle;
}

}  // namespace bpvec::arch
