// Analytical area/energy models of the datapath primitives a CVU (and a
// conventional MAC) is built from. Uncalibrated — raw structural costs in
// primitive-cell units; the per-category calibration lives in CvuCostModel.
#pragma once

#include "src/arch/technology.h"

namespace bpvec::arch {

/// n-bit × m-bit array multiplier: n·m partial-product AND gates plus a
/// carry-save reduction of (n·m − n − m + 1) full adders. Degenerates to a
/// single AND gate for 1×1 (the paper's 1-bit slicing case).
Cost multiplier_cost(const Technology& t, int n_bits, int m_bits);

/// Ripple/carry adder of the given width (full adders, one per bit).
Cost adder_cost(const Technology& t, int width_bits);

/// Balanced binary adder tree reducing `inputs` operands of
/// `input_width_bits` each; operand width grows by one bit per level.
/// Cost is zero for a single input.
Cost adder_tree_cost(const Technology& t, int inputs, int input_width_bits);

/// Output width of that adder tree.
int adder_tree_output_width(int inputs, int input_width_bits);

/// Logarithmic (mux-stage) shifter of the given datapath width supporting
/// `num_positions` distinct shift amounts (stages = ceil(log2(positions))).
Cost shifter_cost(const Technology& t, int width_bits, int num_positions);

/// Register (flops) of the given width.
Cost register_cost(const Technology& t, int width_bits);

/// Structural cost of a conventional 8-bit (or `bits`-wide) MAC unit:
/// bits×bits multiplier + accumulator adder + accumulator and operand
/// pipeline registers. This is the normalization denominator of Fig. 4.
struct ConvMacCost {
  Cost multiply;
  Cost accumulate;
  Cost registers;
  Cost total() const { return multiply + accumulate + registers; }
};
ConvMacCost conventional_mac_cost(const Technology& t, int bits);

}  // namespace bpvec::arch
