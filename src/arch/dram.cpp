#include "src/arch/dram.h"

#include "src/common/error.h"

namespace bpvec::arch {

double DramModel::bytes_per_cycle(double frequency_hz) const {
  BPVEC_CHECK(frequency_hz > 0);
  return bandwidth_gbps * 1e9 / frequency_hz;
}

double DramModel::transfer_cycles(std::int64_t bytes,
                                  double frequency_hz) const {
  BPVEC_CHECK(bytes >= 0);
  return static_cast<double>(bytes) / bytes_per_cycle(frequency_hz);
}

double DramModel::transfer_energy_pj(std::int64_t bytes) const {
  BPVEC_CHECK(bytes >= 0);
  return static_cast<double>(bytes) * 8.0 * energy_pj_per_bit;
}

DramModel ddr4() {
  return DramModel{"DDR4", 16.0, 15.0, 100.0, 0.75};
}

DramModel hbm2() {
  return DramModel{"HBM2", 256.0, 1.2, 100.0, 1.40};
}

}  // namespace bpvec::arch
