// Area/power model of a Composable Vector Unit — the model behind the
// paper's Fig. 4 design-space exploration and behind the energy accounting
// of the end-to-end simulator.
//
// Structure priced (matches src/bitslice/cvu.h):
//   multiply   S·L narrow α×α multipliers            (S = (B/α)² NBVEs)
//   addition   S private adder trees (L inputs of 2α bits)
//              + 1 global adder tree (S shifted inputs)
//              + 1 accumulator adder (32 b)
//   shifting   S logarithmic shifters (one per NBVE output)
//   register   S NBVE output registers + accumulator register
//
// Per-MAC normalization: in homogeneous max-bitwidth mode the CVU performs
// L B-bit MACs per cycle, so per-MAC cost is CVU cost / L — this is what
// amortizes composability overhead across the vector and is the paper's
// central claim.
#pragma once

#include "src/arch/technology.h"
#include "src/arch/units.h"
#include "src/bitslice/composition.h"

namespace bpvec::arch {

/// One point of Fig. 4: per-MAC area and power, normalized to a
/// conventional B-bit MAC unit (1.0 == conventional), broken down by logic
/// category.
struct Fig4Point {
  double area_mult = 0, area_add = 0, area_shift = 0, area_reg = 0;
  double power_mult = 0, power_add = 0, power_shift = 0, power_reg = 0;

  double area_total() const {
    return area_mult + area_add + area_shift + area_reg;
  }
  double power_total() const {
    return power_mult + power_add + power_shift + power_reg;
  }
};

/// Raw (uncalibrated, absolute-unit) per-CVU structural costs by category.
struct CvuStructuralCost {
  Cost multiply;
  Cost addition;
  Cost shifting;
  Cost registering;
  Cost total() const {
    return multiply + addition + shifting + registering;
  }
};

class CvuCostModel {
 public:
  explicit CvuCostModel(const Technology& tech = tech_45nm());

  /// Raw structural cost of one CVU (before calibration).
  CvuStructuralCost structural_cost(const bitslice::CvuGeometry& g) const;

  /// Normalized per-MAC breakdown (the Fig. 4 Y axis) for a geometry.
  Fig4Point normalized_per_mac(const bitslice::CvuGeometry& g) const;

  /// Absolute numbers, anchored to the conventional-MAC scale of the
  /// Technology (so 512 conventional MACs ≈ 250 mW).
  double conventional_mac_power_mw() const;
  double conventional_mac_energy_pj() const;
  double conventional_mac_area_um2() const;

  double cvu_power_mw(const bitslice::CvuGeometry& g) const;
  double cvu_energy_per_cycle_pj(const bitslice::CvuGeometry& g) const;
  double cvu_area_um2(const bitslice::CvuGeometry& g) const;

  /// Per-effective-MAC energy when the CVU is composed for a
  /// (x_bits, w_bits) layer: CVU cycle energy divided by the MACs the
  /// composition completes per cycle (clusters · L).
  double mac_energy_pj(const bitslice::CvuGeometry& g, int x_bits,
                       int w_bits) const;

  const Technology& technology() const { return tech_; }

 private:
  const Technology& tech_;
};

}  // namespace bpvec::arch
