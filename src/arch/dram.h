// Off-chip memory models (paper §IV-A):
//   DDR4 — 16 GB/s, 15 pJ/bit
//   HBM2 — 256 GB/s, 1.2 pJ/bit  (per O'Connor et al., MICRO'17)
#pragma once

#include <cstdint>
#include <string>

namespace bpvec::arch {

struct DramModel {
  std::string name;
  double bandwidth_gbps = 0.0;   // GB/s (sustained)
  double energy_pj_per_bit = 0.0;
  double startup_latency_ns = 0.0;  // per-burst/stream startup
  /// Device + PHY background power (W), charged over the whole run. DRAM
  /// devices burn roughly constant power while clocked regardless of
  /// traffic; this is what keeps system energy roughly proportional to
  /// runtime in the paper's Figs. 5–8.
  double background_power_w = 0.0;

  /// Bytes transferable per accelerator cycle at `frequency_hz`.
  double bytes_per_cycle(double frequency_hz) const;

  /// Cycles to transfer `bytes` at `frequency_hz` (excluding startup).
  double transfer_cycles(std::int64_t bytes, double frequency_hz) const;

  /// Energy (pJ) to transfer `bytes`.
  double transfer_energy_pj(std::int64_t bytes) const;
};

/// The paper's moderate-bandwidth memory system.
DramModel ddr4();

/// The paper's high-bandwidth memory system.
DramModel hbm2();

}  // namespace bpvec::arch
