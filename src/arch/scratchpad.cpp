#include "src/arch/scratchpad.h"

#include <cmath>

#include "src/common/error.h"

namespace bpvec::arch {

ScratchpadModel::ScratchpadModel(std::int64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {
  BPVEC_CHECK(capacity_bytes > 0);
}

double ScratchpadModel::energy_per_byte_pj() const {
  const double kb = static_cast<double>(capacity_bytes_) / 1024.0;
  // 0.2 pJ/byte fixed (sense amps, drivers) + sqrt term for array wires.
  return 0.2 + 0.12 * std::sqrt(kb);
}

double ScratchpadModel::leakage_mw() const {
  // ~0.05 mW per KB at 45 nm with leakage-reduction techniques (CACTI-P's
  // power-gated figures are far below naive HP-process leakage).
  const double kb = static_cast<double>(capacity_bytes_) / 1024.0;
  return 0.05 * kb;
}

double ScratchpadModel::area_mm2() const {
  // ~0.8 mm² per MB of dense 45 nm SRAM.
  const double mb = static_cast<double>(capacity_bytes_) / (1024.0 * 1024.0);
  return 0.8 * mb;
}

}  // namespace bpvec::arch
