#include "src/arch/units.h"

#include "src/common/error.h"
#include "src/common/mathutil.h"

namespace bpvec::arch {

Cost multiplier_cost(const Technology& t, int n_bits, int m_bits) {
  BPVEC_CHECK(n_bits >= 1 && m_bits >= 1);
  const double pp = static_cast<double>(n_bits) * m_bits;
  const double fas = pp - n_bits - m_bits + 1;  // 0 for 1×1
  return {pp * t.and_area + fas * t.fa_area,
          pp * t.and_energy + fas * t.fa_energy};
}

Cost adder_cost(const Technology& t, int width_bits) {
  BPVEC_CHECK(width_bits >= 1);
  return {width_bits * t.fa_area, width_bits * t.fa_energy};
}

Cost adder_tree_cost(const Technology& t, int inputs, int input_width_bits) {
  BPVEC_CHECK(inputs >= 1 && input_width_bits >= 1);
  Cost c;
  if (inputs == 1) return c;
  // Level i (1-based) has ceil(inputs / 2^i) adders of width (w + i).
  int remaining = inputs;
  int level = 0;
  while (remaining > 1) {
    ++level;
    const int adders = remaining / 2;
    c += static_cast<double>(adders) *
         adder_cost(t, input_width_bits + level);
    remaining = adders + (remaining % 2);
  }
  return c;
}

int adder_tree_output_width(int inputs, int input_width_bits) {
  BPVEC_CHECK(inputs >= 1 && input_width_bits >= 1);
  int width = input_width_bits;
  int remaining = inputs;
  while (remaining > 1) {
    ++width;
    remaining = (remaining + 1) / 2;
  }
  return width;
}

Cost shifter_cost(const Technology& t, int width_bits, int num_positions) {
  BPVEC_CHECK(width_bits >= 1 && num_positions >= 1);
  if (num_positions == 1) return {};  // fixed wiring, free
  int stages = 0;
  int span = 1;
  while (span < num_positions) {
    span <<= 1;
    ++stages;
  }
  const double muxes = static_cast<double>(width_bits) * stages;
  return {muxes * t.mux_area, muxes * t.mux_energy};
}

Cost register_cost(const Technology& t, int width_bits) {
  BPVEC_CHECK(width_bits >= 1);
  return {width_bits * t.ff_area, width_bits * t.ff_energy};
}

ConvMacCost conventional_mac_cost(const Technology& t, int bits) {
  BPVEC_CHECK(bits >= 1);
  ConvMacCost c;
  c.multiply = multiplier_cost(t, bits, bits);
  const int acc_width = 3 * bits;  // standard accumulator headroom
  c.accumulate = adder_cost(t, acc_width);
  // Accumulator register plus the two operand pipeline registers a systolic
  // PE carries.
  c.registers = register_cost(t, acc_width) + register_cost(t, 2 * bits);
  return c;
}

}  // namespace bpvec::arch
