// Technology parameters for the analytical hardware cost model.
//
// The paper synthesizes Verilog RTL with Synopsys DC at 45 nm / 500 MHz.
// We substitute an analytical gate-level model: primitive cell costs plus
// per-category calibration factors fit once against the paper's published
// anchors (Fig. 4 labels and §III-B: 2-bit/L=16 CVU → 2.0× power and 1.7×
// area better than a conventional 8-bit MAC; 2-bit/L=1 ≈ BitFusion fusion
// unit → ~1.4× area overhead). Everything else in the design space is
// *predicted* by the model, not fit.
#pragma once

namespace bpvec::arch {

/// Area/energy pair. Area in µm² (45 nm, synthesized-cell scale), energy in
/// fJ per operation at nominal voltage.
struct Cost {
  double area_um2 = 0.0;
  double energy_fj = 0.0;

  Cost& operator+=(const Cost& o) {
    area_um2 += o.area_um2;
    energy_fj += o.energy_fj;
    return *this;
  }
  friend Cost operator+(Cost a, const Cost& b) { return a += b; }
  friend Cost operator*(Cost a, double s) {
    a.area_um2 *= s;
    a.energy_fj *= s;
    return a;
  }
  friend Cost operator*(double s, Cost a) { return a * s; }
};

/// Primitive cell costs and calibration for a technology node.
struct Technology {
  const char* name = "45nm";
  double frequency_hz = 500e6;

  // Primitive cells (area µm², energy fJ/op). Relative magnitudes follow
  // standard-cell intuition: FA ≈ 4 NAND-equivalents, flop ≈ 5–6, mux ≈ 2.
  double and_area = 1.0, and_energy = 1.0;
  double fa_area = 4.0, fa_energy = 3.0;
  double mux_area = 2.0, mux_energy = 1.2;
  double ff_area = 5.0, ff_energy = 7.0;  // flops pay the clock tree

  // Per-category calibration factors (see file comment). Separate area and
  // power factors because synthesis trades them differently per structure
  // (e.g. shifters are area-heavy but activity-light).
  struct Calibration {
    double mult = 1.0;
    double add = 1.0;
    double shift = 1.0;
    double reg = 1.0;
  };
  Calibration area_cal{1.00, 0.42, 0.25, 0.08};
  Calibration power_cal{0.45, 0.55, 0.15, 0.12};

  /// Absolute scale anchors: a conventional 8-bit MAC unit (multiplier +
  /// accumulator + pipeline registers) at 45 nm / 500 MHz. Chosen so that
  /// 512 such MACs ≈ the paper's 250 mW core budget (Table II).
  double conv_mac_power_mw = 0.4883;  // 250 mW / 512
  double conv_mac_area_um2 = 1800.0;
};

/// The default technology used throughout the paper's evaluation.
const Technology& tech_45nm();

}  // namespace bpvec::arch
