#include "src/arch/technology.h"

namespace bpvec::arch {

const Technology& tech_45nm() {
  static const Technology t{};
  return t;
}

}  // namespace bpvec::arch
