// CACTI-like analytical on-chip SRAM (scratchpad) model.
//
// The paper models its 112 KB scratchpads with CACTI-P at 45 nm. We
// substitute a standard analytical fit: per-access energy grows with the
// square root of capacity (bitline/wordline length), plus a constant
// per-byte component. Constants chosen to land in the range CACTI-P
// reports for tens-of-KB 45 nm SRAMs (~0.5–2 pJ/byte).
#pragma once

#include <cstdint>

namespace bpvec::arch {

class ScratchpadModel {
 public:
  /// `capacity_bytes` > 0.
  explicit ScratchpadModel(std::int64_t capacity_bytes);

  std::int64_t capacity_bytes() const { return capacity_bytes_; }

  /// Energy of reading or writing one byte (pJ).
  double energy_per_byte_pj() const;

  /// Leakage power (mW) — small but nonzero; scales with capacity.
  double leakage_mw() const;

  /// Area (mm²) at 45 nm.
  double area_mm2() const;

 private:
  std::int64_t capacity_bytes_;
};

}  // namespace bpvec::arch
