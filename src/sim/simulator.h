// End-to-end cycle-level simulator: runs a network on an accelerator
// platform + memory system, producing per-layer and total cycles/energy.
//
// Per compute layer: lower to GEMM, estimate compute cycles and DRAM
// traffic per repeat, overlap them (double buffering ⇒ the slower of the
// two wins each repeat), sum across repeats, account energy. Pool layers
// contribute output traffic only (they run on the on-chip vector unit).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/arch/cvu_cost.h"
#include "src/arch/dram.h"
#include "src/dnn/network.h"
#include "src/sim/config.h"
#include "src/sim/energy.h"
#include "src/sim/memory_system.h"
#include "src/sim/systolic.h"

namespace bpvec::sim {

struct LayerResult {
  std::string name;
  dnn::LayerKind kind = dnn::LayerKind::kConv;
  int x_bits = 8, w_bits = 8;
  std::int64_t macs = 0;
  std::int64_t compute_cycles = 0;  // across all repeats
  std::int64_t memory_cycles = 0;   // across all repeats
  std::int64_t total_cycles = 0;    // max-overlapped, plus DRAM startup
  double utilization = 0.0;
  std::int64_t dram_bytes = 0;
  std::int64_t sram_bytes = 0;
  EnergyBreakdown energy;
  bool memory_bound = false;
  /// Wall-clock seconds of this layer. Cycle-based cost models derive it
  /// from total_cycles; time-based models (the GPU roofline) set it
  /// directly and round total_cycles for reporting.
  double runtime_s = 0.0;

  /// Measured execution, filled only by backends that actually run the
  /// layer (the functional backend's bit-packed probe). measured_macs is
  /// a pure function of the layer (deterministic — the probe's MAC
  /// count); measured_wall_s is host wall clock of the packed kernels —
  /// the one field that varies run to run. Cached copies replay both
  /// verbatim, so reassembled runs stay bit-identical to the run that
  /// produced them. Zero measured_macs ⇒ modeled-only (every other
  /// backend), and reports omit the measured columns.
  double measured_wall_s = 0.0;
  std::int64_t measured_macs = 0;
};

struct RunResult {
  std::string platform;
  std::string network;
  std::string memory;
  /// Cost-backend id that priced the run ("bpvec", "bit_serial", "gpu",
  /// …) — the backend column of reports and BENCH json rows.
  std::string backend;
  std::vector<LayerResult> layers;

  std::int64_t total_cycles = 0;
  std::int64_t total_macs = 0;
  EnergyBreakdown energy;

  double runtime_s = 0.0;
  double energy_j = 0.0;
  /// Average power (W) over the run, including DRAM access energy.
  double average_power_w = 0.0;
  /// Throughput in multiply-add GOps/s (2 ops per MAC, paper convention).
  double gops_per_s = 0.0;
  /// GOps per watt — the Fig. 9 metric.
  double gops_per_w = 0.0;

  /// Sums of the per-layer measured fields (zero for modeled-only runs).
  double measured_wall_s = 0.0;
  std::int64_t measured_macs = 0;
};

/// Assembles per-layer results into a RunResult for a cycle-based cost
/// model: sums cycles/MACs/energy in layer order and derives the run
/// metrics (runtime from total cycles at `frequency_hz`, power,
/// GOps/s, GOps/W). Simulator::run and the cycle-based CostBackends
/// share this so a run reassembled from cached per-layer results is
/// bit-identical to a direct run.
RunResult assemble_run(std::string platform, std::string network,
                       std::string memory, std::string backend,
                       std::vector<LayerResult> layers, double frequency_hz);

/// Prices a pooling layer: it runs on the on-chip post-processing unit,
/// touching only scratchpad-resident activations — no PE-array compute,
/// no DRAM. Shared by Simulator and every cycle-based CostBackend that
/// swaps the compute model but keeps the platform's memory system.
LayerResult price_pool_layer(const AcceleratorConfig& config,
                             const EnergyModel& energy,
                             const dnn::Layer& layer, std::int64_t batch);

/// Folds one repeat's compute cycles and traffic into the layer totals:
/// double buffering overlaps each repeat's DRAM streaming with compute
/// (the slower side paces the repeat), DRAM startup is paid once, and
/// weight re-streaming across repeats follows gemm's residency flag.
/// Fills compute/memory/total cycles, dram/sram bytes, memory_bound,
/// and runtime_s; the caller supplies macs/utilization/energy.
void fold_repeat_overlap(LayerResult& r, const dnn::GemmShape& gemm,
                         std::int64_t compute_cycles_per_repeat,
                         const TrafficEstimate& traffic,
                         const AcceleratorConfig& config,
                         const arch::DramModel& dram);

class Simulator {
 public:
  Simulator(AcceleratorConfig config, arch::DramModel dram);

  const AcceleratorConfig& config() const { return config_; }
  const arch::DramModel& dram() const { return dram_; }

  RunResult run(const dnn::Network& network) const;

  /// Prices one layer in isolation — the unit the engine's layer cache
  /// memoizes. `run` is exactly run_layer over every layer followed by
  /// assemble_run.
  LayerResult run_layer(const dnn::Layer& layer) const;

 private:
  AcceleratorConfig config_;
  arch::DramModel dram_;
  arch::CvuCostModel cost_;
  EnergyModel energy_;
};

}  // namespace bpvec::sim
