// End-to-end cycle-level simulator: runs a network on an accelerator
// platform + memory system, producing per-layer and total cycles/energy.
//
// Per compute layer: lower to GEMM, estimate compute cycles and DRAM
// traffic per repeat, overlap them (double buffering ⇒ the slower of the
// two wins each repeat), sum across repeats, account energy. Pool layers
// contribute output traffic only (they run on the on-chip vector unit).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/arch/cvu_cost.h"
#include "src/arch/dram.h"
#include "src/dnn/network.h"
#include "src/sim/config.h"
#include "src/sim/energy.h"
#include "src/sim/memory_system.h"
#include "src/sim/systolic.h"

namespace bpvec::sim {

struct LayerResult {
  std::string name;
  dnn::LayerKind kind = dnn::LayerKind::kConv;
  int x_bits = 8, w_bits = 8;
  std::int64_t macs = 0;
  std::int64_t compute_cycles = 0;  // across all repeats
  std::int64_t memory_cycles = 0;   // across all repeats
  std::int64_t total_cycles = 0;    // max-overlapped, plus DRAM startup
  double utilization = 0.0;
  std::int64_t dram_bytes = 0;
  std::int64_t sram_bytes = 0;
  EnergyBreakdown energy;
  bool memory_bound = false;
};

struct RunResult {
  std::string platform;
  std::string network;
  std::string memory;
  std::vector<LayerResult> layers;

  std::int64_t total_cycles = 0;
  std::int64_t total_macs = 0;
  EnergyBreakdown energy;

  double runtime_s = 0.0;
  double energy_j = 0.0;
  /// Average power (W) over the run, including DRAM access energy.
  double average_power_w = 0.0;
  /// Throughput in multiply-add GOps/s (2 ops per MAC, paper convention).
  double gops_per_s = 0.0;
  /// GOps per watt — the Fig. 9 metric.
  double gops_per_w = 0.0;
};

class Simulator {
 public:
  Simulator(AcceleratorConfig config, arch::DramModel dram);

  const AcceleratorConfig& config() const { return config_; }
  const arch::DramModel& dram() const { return dram_; }

  RunResult run(const dnn::Network& network) const;

 private:
  LayerResult run_layer(const dnn::Layer& layer) const;

  AcceleratorConfig config_;
  arch::DramModel dram_;
  arch::CvuCostModel cost_;
  EnergyModel energy_;
};

}  // namespace bpvec::sim
