#include "src/sim/report.h"

#include <sstream>

namespace bpvec::sim {

Table layer_table(const RunResult& run, bool include_pools) {
  // Measured columns appear only when the pricing backend executed the
  // layers (the functional backend's packed probes); modeled-only runs
  // keep the historical table shape.
  const bool measured = run.measured_macs > 0;
  Table t(run.network + " on " + run.platform + "/" + run.memory);
  std::vector<std::string> header{"Layer",     "Bits",        "MACs (M)",
                                  "Cycles (k)", "Util",       "DRAM (KB)",
                                  "Energy (uJ)", "Bound"};
  if (measured) {
    header.push_back("Meas (us)");
    header.push_back("Meas MACs (k)");
  }
  t.set_header(header);
  for (const auto& l : run.layers) {
    if (!include_pools && l.macs == 0) continue;
    std::vector<std::string> row{
        l.name,
        std::to_string(l.x_bits) + "/" + std::to_string(l.w_bits),
        Table::num(static_cast<double>(l.macs) / 1e6, 1),
        Table::num(static_cast<double>(l.total_cycles) / 1e3, 1),
        Table::num(l.utilization, 2),
        Table::num(static_cast<double>(l.dram_bytes) / 1024.0, 0),
        Table::num(l.energy.total_pj() / 1e6, 1),
        l.macs == 0 ? "-" : (l.memory_bound ? "memory" : "compute")};
    if (measured) {
      row.push_back(l.measured_macs > 0
                        ? Table::num(l.measured_wall_s * 1e6, 1)
                        : "-");
      row.push_back(
          l.measured_macs > 0
              ? Table::num(static_cast<double>(l.measured_macs) / 1e3, 1)
              : "-");
    }
    t.add_row(row);
  }
  return t;
}

std::string summary_line(const RunResult& run) {
  std::ostringstream os;
  os << run.network << " on " << run.platform << "/" << run.memory << ": "
     << Table::num(run.runtime_s * 1e3, 3) << " ms, "
     << Table::num(run.energy_j * 1e3, 3) << " mJ, "
     << Table::num(run.gops_per_s, 0) << " GOps/s, "
     << Table::num(run.gops_per_w, 0) << " GOps/W";
  return os.str();
}

Table comparison_table(const std::vector<RunResult>& runs) {
  bool any_measured = false;
  for (const auto& r : runs) {
    if (r.measured_macs > 0) any_measured = true;
  }
  Table t(runs.empty() ? "comparison" : runs.front().network);
  std::vector<std::string> header{"Platform",    "Memory", "Backend",
                                  "Latency (ms)", "Energy (mJ)", "GOps/s",
                                  "GOps/W"};
  if (any_measured) header.push_back("Measured (ms)");
  t.set_header(header);
  for (const auto& r : runs) {
    std::vector<std::string> row{
        r.platform, r.memory, r.backend.empty() ? "-" : r.backend,
        Table::num(r.runtime_s * 1e3, 3), Table::num(r.energy_j * 1e3, 3),
        Table::num(r.gops_per_s, 0), Table::num(r.gops_per_w, 0)};
    if (any_measured) {
      row.push_back(r.measured_macs > 0
                        ? Table::num(r.measured_wall_s * 1e3, 3)
                        : "-");
    }
    t.add_row(row);
  }
  return t;
}

std::string to_csv(const RunResult& run) {
  Table t;
  t.set_header({"layer", "kind", "x_bits", "w_bits", "macs",
                "compute_cycles", "memory_cycles", "total_cycles",
                "utilization", "dram_bytes", "sram_bytes", "compute_pj",
                "sram_pj", "dram_pj", "static_pj", "memory_bound",
                "backend", "measured_wall_s", "measured_macs"});
  for (const auto& l : run.layers) {
    t.add_row({l.name, dnn::to_string(l.kind), std::to_string(l.x_bits),
               std::to_string(l.w_bits), std::to_string(l.macs),
               std::to_string(l.compute_cycles),
               std::to_string(l.memory_cycles),
               std::to_string(l.total_cycles), Table::num(l.utilization, 4),
               std::to_string(l.dram_bytes), std::to_string(l.sram_bytes),
               Table::num(l.energy.compute_pj, 1),
               Table::num(l.energy.sram_pj, 1),
               Table::num(l.energy.dram_pj, 1),
               Table::num(l.energy.static_pj, 1),
               l.memory_bound ? "1" : "0",
               run.backend.empty() ? "-" : run.backend,
               Table::num(l.measured_wall_s, 9),
               std::to_string(l.measured_macs)});
  }
  return t.to_csv();
}

}  // namespace bpvec::sim
