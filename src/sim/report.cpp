#include "src/sim/report.h"

#include <sstream>

namespace bpvec::sim {

Table layer_table(const RunResult& run, bool include_pools) {
  Table t(run.network + " on " + run.platform + "/" + run.memory);
  t.set_header({"Layer", "Bits", "MACs (M)", "Cycles (k)", "Util",
                "DRAM (KB)", "Energy (uJ)", "Bound"});
  for (const auto& l : run.layers) {
    if (!include_pools && l.macs == 0) continue;
    t.add_row({l.name,
               std::to_string(l.x_bits) + "/" + std::to_string(l.w_bits),
               Table::num(static_cast<double>(l.macs) / 1e6, 1),
               Table::num(static_cast<double>(l.total_cycles) / 1e3, 1),
               Table::num(l.utilization, 2),
               Table::num(static_cast<double>(l.dram_bytes) / 1024.0, 0),
               Table::num(l.energy.total_pj() / 1e6, 1),
               l.macs == 0 ? "-" : (l.memory_bound ? "memory" : "compute")});
  }
  return t;
}

std::string summary_line(const RunResult& run) {
  std::ostringstream os;
  os << run.network << " on " << run.platform << "/" << run.memory << ": "
     << Table::num(run.runtime_s * 1e3, 3) << " ms, "
     << Table::num(run.energy_j * 1e3, 3) << " mJ, "
     << Table::num(run.gops_per_s, 0) << " GOps/s, "
     << Table::num(run.gops_per_w, 0) << " GOps/W";
  return os.str();
}

Table comparison_table(const std::vector<RunResult>& runs) {
  Table t(runs.empty() ? "comparison" : runs.front().network);
  t.set_header({"Platform", "Memory", "Backend", "Latency (ms)",
                "Energy (mJ)", "GOps/s", "GOps/W"});
  for (const auto& r : runs) {
    t.add_row({r.platform, r.memory, r.backend.empty() ? "-" : r.backend,
               Table::num(r.runtime_s * 1e3, 3),
               Table::num(r.energy_j * 1e3, 3), Table::num(r.gops_per_s, 0),
               Table::num(r.gops_per_w, 0)});
  }
  return t;
}

std::string to_csv(const RunResult& run) {
  Table t;
  t.set_header({"layer", "kind", "x_bits", "w_bits", "macs",
                "compute_cycles", "memory_cycles", "total_cycles",
                "utilization", "dram_bytes", "sram_bytes", "compute_pj",
                "sram_pj", "dram_pj", "static_pj", "memory_bound",
                "backend"});
  for (const auto& l : run.layers) {
    t.add_row({l.name, dnn::to_string(l.kind), std::to_string(l.x_bits),
               std::to_string(l.w_bits), std::to_string(l.macs),
               std::to_string(l.compute_cycles),
               std::to_string(l.memory_cycles),
               std::to_string(l.total_cycles), Table::num(l.utilization, 4),
               std::to_string(l.dram_bytes), std::to_string(l.sram_bytes),
               Table::num(l.energy.compute_pj, 1),
               Table::num(l.energy.sram_pj, 1),
               Table::num(l.energy.dram_pj, 1),
               Table::num(l.energy.static_pj, 1),
               l.memory_bound ? "1" : "0",
               run.backend.empty() ? "-" : run.backend});
  }
  return t.to_csv();
}

}  // namespace bpvec::sim
