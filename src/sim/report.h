// Rendering of simulation results: per-layer tables, run summaries, and
// CSV export for plotting — shared by the examples and bench binaries.
#pragma once

#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/sim/simulator.h"

namespace bpvec::sim {

/// Per-layer table for one run (compute layers only by default).
Table layer_table(const RunResult& run, bool include_pools = false);

/// One-line run summary: platform/memory, latency, energy, throughput.
std::string summary_line(const RunResult& run);

/// Side-by-side comparison of several runs of the same network.
Table comparison_table(const std::vector<RunResult>& runs);

/// CSV of the per-layer results (all layers).
std::string to_csv(const RunResult& run);

}  // namespace bpvec::sim
