// Accelerator platform configuration (paper Table II).
//
// All three ASIC platforms share the systolic organization, the 112 KB
// scratchpad, 500 MHz, and the 250 mW core budget; they differ in the
// processing element:
//   TPU-like baseline — conventional 8-bit MACs (512 of them),
//   BitFusion        — scalar spatially-composable fusion units (448),
//   BPVeC            — CVUs: vector-composable NBVE collections
//                       (64 CVUs × 16 lanes = 1024 MAC-equivalents).
#pragma once

#include <cstdint>
#include <string>

#include "src/arch/cvu_cost.h"
#include "src/arch/dram.h"
#include "src/arch/scratchpad.h"
#include "src/bitslice/composition.h"

namespace bpvec::sim {

enum class PeKind {
  kConventional,  // fixed-bitwidth MAC; no composability boost
  kBitFusion,     // scalar spatial composability (per-operand boost)
  kBpvec,         // bit-parallel vector composability (this paper)
};

const char* to_string(PeKind kind);

struct AcceleratorConfig {
  std::string name;
  PeKind pe_kind = PeKind::kConventional;

  int rows = 16;  // PEs along the dot-product (K) dimension
  int cols = 32;  // PEs along the output-channel (N) dimension

  /// CVU geometry (kBpvec); also prices a BitFusion fusion unit as the
  /// L = 1 degenerate CVU (the paper's observation in §III-B).
  bitslice::CvuGeometry cvu{2, 8, 16};

  std::int64_t scratchpad_bytes = 112 * 1024;
  double frequency_hz = 500e6;

  /// Recurrent-layer time-batching bound (see dnn::GemmShape).
  int time_chunk = 16;

  /// Inference batch size for conv/FC layers (the paper evaluates
  /// latency-style batch 1; raising this multiplies the GEMM M dimension
  /// and amortizes weight traffic for throughput-mode studies).
  int batch_size = 1;

  /// Fixed core leakage/clock overhead charged per active cycle, mW.
  double static_core_mw = 20.0;

  // ----- Derived quantities -----

  /// Number of PEs in the array.
  int num_pes() const { return rows * cols; }

  /// Max-bitwidth (8b×8b) MAC throughput of the array per cycle — the
  /// "# of MACs" row of Table II.
  std::int64_t equivalent_macs() const;

  /// Composability boost at (x_bits, w_bits): how many bw×bw MACs one PE
  /// completes per cycle relative to its max-bitwidth rate. 1 for the
  /// conventional PE regardless of bitwidth.
  double composability_boost(int x_bits, int w_bits) const;

  /// Dot-product (K) elements one PE consumes per cycle at the given mode.
  std::int64_t k_per_pe(int x_bits, int w_bits) const;

  /// Dynamic energy one PE burns per active cycle (pJ).
  double pe_energy_per_cycle_pj(const arch::CvuCostModel& cost) const;

  /// Core area (µm²).
  double core_area_um2(const arch::CvuCostModel& cost) const;

  void validate() const;
};

/// Table II platform factories.
AcceleratorConfig tpu_like_baseline();
AcceleratorConfig bitfusion_accelerator();
AcceleratorConfig bpvec_accelerator();

}  // namespace bpvec::sim
