// Compute-cycle model of the 2D systolic array (paper §III-C).
//
// Mapping (shared by all three ASIC platforms, matching the TPU-like and
// BitFusion organizations): the K (dot-product) dimension is spread across
// the `rows` PEs of a column — each PE consuming k_per_pe(bitwidths)
// elements per cycle — and the N (output-channel) dimension across `cols`.
// The M dimension streams through the array; weights are double-buffered
// inside the PEs so tile reloads overlap compute, leaving one pipeline
// fill/drain per GEMM repeat.
#pragma once

#include <cstdint>

#include "src/dnn/layer.h"
#include "src/sim/config.h"

namespace bpvec::sim {

struct ComputeEstimate {
  std::int64_t cycles = 0;          // per single GEMM repeat
  std::int64_t macs = 0;            // useful MACs per repeat
  std::int64_t k_passes = 0;        // tiles along K
  std::int64_t n_passes = 0;        // tiles along N
  double utilization = 0.0;         // useful MACs / peak MAC slots
};

/// Cycle estimate for one repeat of `gemm` on `config` at the given
/// operand bitwidths.
ComputeEstimate estimate_compute(const AcceleratorConfig& config,
                                 const dnn::GemmShape& gemm, int x_bits,
                                 int w_bits);

}  // namespace bpvec::sim
