// Register-accurate systolic-array simulation.
//
// The analytical model in src/sim/systolic.h estimates cycle counts with a
// closed-form tile formula. This module *executes* the array: explicit
// input/weight/psum registers, skewed operand injection, one simulated
// clock at a time — and produces both the exact GEMM results and the exact
// cycle count. It exists to (a) validate the analytical model (tests assert
// the closed form matches the simulated clock) and (b) give downstream
// users a ground-truth reference when they modify the dataflow.
//
// Dataflow (TPU-style weight-stationary, matching §III-C):
//   * PE(r, c) holds the weights for K-slice r of output column c; each PE
//     consumes `k_per_pe` dot-product elements per cycle (1 for the
//     conventional MAC, clusters·L for a composed CVU).
//   * Input bundles enter at the left edge, skewed one cycle per row, and
//     travel rightward one PE per cycle.
//   * Partial sums travel down the column one PE per cycle and exit at the
//     bottom, one output per column per cycle.
//   * Weights for the next tile shift in on a shadow plane while the
//     current tile streams (double buffering), so only one pipeline
//     fill/drain is paid per GEMM.
#pragma once

#include <cstdint>
#include <vector>

#include "src/dnn/gemm_lowering.h"

namespace bpvec::sim {

struct CycleSimConfig {
  int rows = 8;
  int cols = 8;
  std::int64_t k_per_pe = 16;  // elements per PE per cycle

  void validate() const;
};

struct CycleSimResult {
  std::vector<std::int64_t> out;  // [M × N], row-major
  std::int64_t cycles = 0;        // simulated clock at last output
  std::int64_t macs = 0;          // useful MACs performed
  std::int64_t pe_active_cycles = 0;  // Σ over PEs of busy cycles
};

class SystolicArraySim {
 public:
  explicit SystolicArraySim(CycleSimConfig config);

  const CycleSimConfig& config() const { return config_; }

  /// Executes out[m][n] = Σ_k a[m][k]·b[n][k] on the simulated array,
  /// tiling K across rows (k_per_pe elements per PE) and N across columns,
  /// with psum accumulation across K passes.
  CycleSimResult run_gemm(const dnn::Matrix& a, const dnn::Matrix& b) const;

 private:
  CycleSimConfig config_;
};

}  // namespace bpvec::sim
