#include "src/sim/memory_system.h"

#include "src/common/error.h"
#include <algorithm>

#include "src/common/mathutil.h"

namespace bpvec::sim {

namespace {
constexpr int kPsumBytesPerElement = 4;  // 32-bit partial accumulators
}

double TrafficEstimate::memory_cycles(const arch::DramModel& dram,
                                      double frequency_hz) const {
  return dram.transfer_cycles(dram_bytes(), frequency_hz);
}

TrafficEstimate estimate_traffic(const AcceleratorConfig& config,
                                 const dnn::GemmShape& gemm, int x_bits,
                                 int w_bits, int out_bits,
                                 std::int64_t n_passes) {
  config.validate();
  BPVEC_CHECK(x_bits >= 1 && w_bits >= 1 && out_bits >= 1);
  BPVEC_CHECK(n_passes >= 1);

  TrafficEstimate t;
  const std::int64_t w_total = ceil_div(gemm.n * gemm.k * w_bits, 8);
  const std::int64_t i_total = ceil_div(gemm.m * gemm.k * x_bits, 8);
  const std::int64_t o_total = ceil_div(gemm.m * gemm.n * out_bits, 8);

  // Half the scratchpad buffers one stationary operand, half buffers the
  // streaming side (double-buffered halves; this coarse split matches the
  // BitFusion simulator's model).
  const std::int64_t buf = config.scratchpad_bytes / 2;

  t.weight_bytes = w_total;
  t.input_bytes = i_total;
  t.output_bytes = o_total;

  if (i_total > buf && w_total > buf) {
    // Neither side resident. The mapper picks the cheapest loop order:
    //  (a) weight-stationary groups: re-stream inputs per resident weight
    //      group — extra input traffic,
    //  (b) input-stationary groups: re-stream weights per resident input
    //      group — extra weight traffic,
    //  (c) K-split: both stream once but partial sums spill to DRAM at
    //      accumulator precision between K groups.
    const std::int64_t extra_a = i_total * (ceil_div(w_total, buf) - 1);
    const std::int64_t extra_b = w_total * (ceil_div(i_total, buf) - 1);
    const std::int64_t kg = ceil_div(i_total, buf);
    const std::int64_t extra_c =
        2 * (kg - 1) * gemm.m * gemm.n * kPsumBytesPerElement;
    const std::int64_t best = std::min({extra_a, extra_b, extra_c});
    if (best == extra_c) {
      t.k_groups = kg;
      t.psum_bytes = extra_c;
    } else if (best == extra_a) {
      t.input_bytes += extra_a;
    } else {
      t.weight_bytes += extra_b;
    }
  }

  // Scratchpad accesses: every DRAM byte passes through the scratchpad
  // (write + read), inputs are re-read once per N pass (each output-column
  // group consumes the whole input tile), outputs written once.
  t.sram_bytes = 2 * t.dram_bytes() + i_total * n_passes + o_total;
  return t;
}

}  // namespace bpvec::sim
