#include "src/sim/cycle_sim.h"

#include <algorithm>

#include "src/common/error.h"
#include "src/common/mathutil.h"

namespace bpvec::sim {

void CycleSimConfig::validate() const {
  BPVEC_CHECK(rows >= 1 && cols >= 1 && k_per_pe >= 1);
}

SystolicArraySim::SystolicArraySim(CycleSimConfig config) : config_(config) {
  config_.validate();
}

namespace {

/// One in-flight operand bundle: the k_per_pe input elements of GEMM row
/// `m` destined for one PE row, moving rightward.
struct Bundle {
  bool valid = false;
  std::int32_t m = -1;
  std::vector<std::int32_t> x;
};

/// A partial sum moving down a column.
struct Psum {
  bool valid = false;
  std::int32_t m = -1;
  std::int64_t value = 0;
};

}  // namespace

CycleSimResult SystolicArraySim::run_gemm(const dnn::Matrix& a,
                                          const dnn::Matrix& b) const {
  BPVEC_CHECK_MSG(a.cols == b.cols, "GEMM inner dimensions disagree");
  const std::int64_t m_dim = a.rows, n_dim = b.rows, k_dim = a.cols;
  BPVEC_CHECK(m_dim >= 1 && n_dim >= 1 && k_dim >= 1);

  const int rows = config_.rows, cols = config_.cols;
  const std::int64_t kpp = config_.k_per_pe;
  const std::int64_t k_tile = rows * kpp;
  const std::int64_t k_passes = ceil_div(k_dim, k_tile);
  const std::int64_t n_passes = ceil_div(n_dim, cols);

  CycleSimResult result;
  result.out.assign(static_cast<std::size_t>(m_dim * n_dim), 0);

  std::int64_t tile_cycles = 0;  // measured per-tile latency (all equal)
  std::int64_t tiles = 0;

  for (std::int64_t np = 0; np < n_passes; ++np) {
    const std::int64_t n0 = np * cols;
    const int cols_used =
        static_cast<int>(std::min<std::int64_t>(cols, n_dim - n0));

    for (std::int64_t kp = 0; kp < k_passes; ++kp) {
      const std::int64_t k0 = kp * k_tile;
      ++tiles;

      // Stationary weights for this tile: W[r][c] covers K range
      // [k0 + r·kpp, k0 + (r+1)·kpp) of output column n0 + c.
      // (Loaded on the shadow plane during the previous tile; no cycles.)
      std::vector<std::vector<Bundle>> x_reg(
          static_cast<std::size_t>(rows),
          std::vector<Bundle>(static_cast<std::size_t>(cols)));
      std::vector<std::vector<Psum>> p_reg(
          static_cast<std::size_t>(rows),
          std::vector<Psum>(static_cast<std::size_t>(cols)));

      std::int64_t outputs_collected = 0;
      const std::int64_t expected_outputs = m_dim * cols_used;
      std::int64_t t = 0;
      const std::int64_t t_limit = m_dim + rows + cols + 4;

      for (; outputs_collected < expected_outputs; ++t) {
        BPVEC_CHECK_MSG(t < t_limit, "systolic pipeline wedged");
        // Snapshot of the previous cycle's registers (all PEs update
        // simultaneously on the clock edge).
        const auto x_prev = x_reg;
        const auto p_prev = p_reg;

        for (int r = 0; r < rows; ++r) {
          for (int c = 0; c < cols; ++c) {
            // Input register: from the left neighbour, or the edge feeder.
            Bundle in;
            if (c == 0) {
              const std::int64_t m = t - r;
              if (m >= 0 && m < m_dim) {
                in.valid = true;
                in.m = static_cast<std::int32_t>(m);
                const std::int64_t k_begin =
                    std::min(k_dim, k0 + static_cast<std::int64_t>(r) * kpp);
                const std::int64_t k_end =
                    std::min(k_dim, k_begin + kpp);
                in.x.reserve(static_cast<std::size_t>(k_end - k_begin));
                for (std::int64_t k = k_begin; k < k_end; ++k) {
                  in.x.push_back(a.at(m, k));
                }
              }
            } else {
              in = x_prev[static_cast<std::size_t>(r)]
                         [static_cast<std::size_t>(c - 1)];
            }
            x_reg[static_cast<std::size_t>(r)]
                 [static_cast<std::size_t>(c)] = in;

            // Partial sum from above (row 0 starts fresh).
            Psum up;
            if (r > 0) {
              up = p_prev[static_cast<std::size_t>(r - 1)]
                         [static_cast<std::size_t>(c)];
            } else if (in.valid) {
              up.valid = true;
              up.m = in.m;
              up.value = 0;
            }

            Psum out_p;
            if (in.valid && c < cols_used) {
              BPVEC_CHECK_MSG(up.valid && up.m == in.m,
                              "psum/input skew misaligned");
              std::int64_t dot = 0;
              const std::int64_t n = n0 + c;
              const std::int64_t k_begin =
                  std::min(k_dim, k0 + static_cast<std::int64_t>(r) * kpp);
              for (std::size_t i = 0; i < in.x.size(); ++i) {
                dot += static_cast<std::int64_t>(in.x[i]) *
                       b.at(n, k_begin + static_cast<std::int64_t>(i));
              }
              out_p.valid = true;
              out_p.m = in.m;
              out_p.value = up.value + dot;
              result.macs += static_cast<std::int64_t>(in.x.size());
              result.pe_active_cycles += 1;
            } else if (r > 0 && up.valid) {
              // Bubble in the input stream: pass the psum through
              // unchanged (keeps drain behaviour honest).
              out_p = up;
            }
            p_reg[static_cast<std::size_t>(r)]
                 [static_cast<std::size_t>(c)] = out_p;

            // Bottom of the column: collect finished outputs.
            if (r == rows - 1 && out_p.valid) {
              result.out[static_cast<std::size_t>(out_p.m) * n_dim + n0 +
                         c] += out_p.value;
              ++outputs_collected;
              p_reg[static_cast<std::size_t>(r)]
                   [static_cast<std::size_t>(c)].valid = false;
            }
          }
        }
      }
      tile_cycles = t;
    }
  }

  // Tiles stream back to back (shadow-plane weight reload): each extra
  // tile adds M feed slots; the pipeline skew is paid once.
  result.cycles = (tiles - 1) * m_dim + tile_cycles;
  return result;
}

}  // namespace bpvec::sim
