#include "src/sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/error.h"
#include "src/common/mathutil.h"

namespace bpvec::sim {

Simulator::Simulator(AcceleratorConfig config, arch::DramModel dram)
    : config_(std::move(config)),
      dram_(std::move(dram)),
      cost_(),
      energy_(config_, dram_, cost_) {
  config_.validate();
}

LayerResult price_pool_layer(const AcceleratorConfig& config,
                             const EnergyModel& energy,
                             const dnn::Layer& layer, std::int64_t batch) {
  // Pooling runs on the on-chip post-processing unit; it only touches
  // activations already resident in the scratchpad and writes its
  // (smaller) output. Cost: SRAM traffic + a few cycles per output.
  LayerResult r;
  r.name = layer.name;
  r.kind = layer.kind;
  r.x_bits = layer.x_bits;
  r.w_bits = layer.w_bits;
  r.macs = layer.macs() * batch;
  const std::int64_t out_bytes =
      ceil_div(layer.output_elems() * batch * layer.x_bits, 8);
  const std::int64_t in_bytes =
      ceil_div(layer.input_elems() * batch * layer.x_bits, 8);
  r.total_cycles = ceil_div(layer.output_elems() * batch, config.cols);
  r.sram_bytes = in_bytes + out_bytes;
  r.energy = energy.layer_energy(/*active_cycles=*/0, 0.0, r.total_cycles,
                                 r.sram_bytes, /*dram_bytes=*/0);
  r.runtime_s = static_cast<double>(r.total_cycles) / config.frequency_hz;
  return r;
}

void fold_repeat_overlap(LayerResult& r, const dnn::GemmShape& gemm,
                         std::int64_t compute_cycles_per_repeat,
                         const TrafficEstimate& traffic,
                         const AcceleratorConfig& config,
                         const arch::DramModel& dram) {
  const double mem_cycles_per_repeat =
      traffic.memory_cycles(dram, config.frequency_hz);

  // Double buffering overlaps each repeat's DRAM streaming with compute;
  // whichever is slower paces the repeat.
  std::int64_t weight_traffic_per_repeat = traffic.dram_bytes();
  if (!gemm.weights_streamed_per_repeat && gemm.repeats > 1) {
    // Weights resident across repeats (not the case for any Table-I layer,
    // but keep the model honest).
    weight_traffic_per_repeat = traffic.input_bytes + traffic.output_bytes;
  }

  const double per_repeat = std::max(
      static_cast<double>(compute_cycles_per_repeat), mem_cycles_per_repeat);
  const double startup =
      dram.startup_latency_ns * 1e-9 * config.frequency_hz;

  r.compute_cycles = compute_cycles_per_repeat * gemm.repeats;
  r.memory_cycles = static_cast<std::int64_t>(
      std::ceil(mem_cycles_per_repeat * static_cast<double>(gemm.repeats)));
  r.total_cycles = static_cast<std::int64_t>(
      std::ceil(per_repeat * static_cast<double>(gemm.repeats) + startup));
  r.memory_bound =
      mem_cycles_per_repeat > static_cast<double>(compute_cycles_per_repeat);

  const std::int64_t dram_first = traffic.dram_bytes();
  r.dram_bytes = dram_first + weight_traffic_per_repeat * (gemm.repeats - 1);
  r.sram_bytes = traffic.sram_bytes * gemm.repeats;
  r.runtime_s = static_cast<double>(r.total_cycles) / config.frequency_hz;
}

LayerResult Simulator::run_layer(const dnn::Layer& layer) const {
  const std::int64_t batch =
      layer.kind == dnn::LayerKind::kRecurrent ? 1 : config_.batch_size;
  if (!layer.is_compute()) {
    return price_pool_layer(config_, energy_, layer, batch);
  }

  LayerResult r;
  r.name = layer.name;
  r.kind = layer.kind;
  r.x_bits = layer.x_bits;
  r.w_bits = layer.w_bits;
  r.macs = layer.macs() * batch;

  dnn::GemmShape gemm = layer.gemm(config_.time_chunk);
  if (layer.kind != dnn::LayerKind::kRecurrent) {
    // Batched inference multiplies the streamed dimension; weights are
    // shared across the batch (recurrent layers batch over time instead).
    gemm.m *= config_.batch_size;
  }
  const ComputeEstimate compute =
      estimate_compute(config_, gemm, layer.x_bits, layer.w_bits);
  const TrafficEstimate traffic = estimate_traffic(
      config_, gemm, layer.x_bits, layer.w_bits, layer.x_bits,
      compute.n_passes);

  fold_repeat_overlap(r, gemm, compute.cycles, traffic, config_, dram_);
  r.utilization = compute.utilization;
  r.energy = energy_.layer_energy(r.compute_cycles, r.utilization,
                                  r.total_cycles, r.sram_bytes, r.dram_bytes);
  return r;
}

RunResult assemble_run(std::string platform, std::string network,
                       std::string memory, std::string backend,
                       std::vector<LayerResult> layers, double frequency_hz) {
  RunResult result;
  result.platform = std::move(platform);
  result.network = std::move(network);
  result.memory = std::move(memory);
  result.backend = std::move(backend);
  result.layers = std::move(layers);

  for (const LayerResult& lr : result.layers) {
    result.total_cycles += lr.total_cycles;
    result.total_macs += lr.macs;
    result.energy += lr.energy;
    result.measured_wall_s += lr.measured_wall_s;
    result.measured_macs += lr.measured_macs;
  }

  result.runtime_s = static_cast<double>(result.total_cycles) / frequency_hz;
  result.energy_j = result.energy.total_pj() * 1e-12;
  BPVEC_CHECK(result.runtime_s > 0);
  result.average_power_w = result.energy_j / result.runtime_s;
  result.gops_per_s =
      2.0 * static_cast<double>(result.total_macs) / result.runtime_s / 1e9;
  result.gops_per_w = result.gops_per_s / result.average_power_w;
  return result;
}

RunResult Simulator::run(const dnn::Network& network) const {
  std::vector<LayerResult> layers;
  layers.reserve(network.layers().size());
  for (const dnn::Layer& layer : network.layers()) {
    layers.push_back(run_layer(layer));
  }
  return assemble_run(config_.name, network.name(), dram_.name, "bpvec",
                      std::move(layers), config_.frequency_hz);
}

}  // namespace bpvec::sim
