#include "src/sim/simulator.h"

#include <algorithm>
#include <cmath>

#include "src/common/error.h"
#include "src/common/mathutil.h"

namespace bpvec::sim {

Simulator::Simulator(AcceleratorConfig config, arch::DramModel dram)
    : config_(std::move(config)),
      dram_(std::move(dram)),
      cost_(),
      energy_(config_, dram_, cost_) {
  config_.validate();
}

LayerResult Simulator::run_layer(const dnn::Layer& layer) const {
  LayerResult r;
  r.name = layer.name;
  r.kind = layer.kind;
  r.x_bits = layer.x_bits;
  r.w_bits = layer.w_bits;
  const std::int64_t batch =
      layer.kind == dnn::LayerKind::kRecurrent ? 1 : config_.batch_size;
  r.macs = layer.macs() * batch;

  if (!layer.is_compute()) {
    // Pooling runs on the on-chip post-processing unit; it only touches
    // activations already resident in the scratchpad and writes its
    // (smaller) output. Cost: SRAM traffic + a few cycles per output.
    const std::int64_t out_bytes =
        ceil_div(layer.output_elems() * batch * layer.x_bits, 8);
    const std::int64_t in_bytes =
        ceil_div(layer.input_elems() * batch * layer.x_bits, 8);
    r.total_cycles = ceil_div(layer.output_elems() * batch, config_.cols);
    r.sram_bytes = in_bytes + out_bytes;
    r.energy = energy_.layer_energy(/*active_cycles=*/0, 0.0,
                                    r.total_cycles, r.sram_bytes,
                                    /*dram_bytes=*/0);
    return r;
  }

  dnn::GemmShape gemm = layer.gemm(config_.time_chunk);
  if (layer.kind != dnn::LayerKind::kRecurrent) {
    // Batched inference multiplies the streamed dimension; weights are
    // shared across the batch (recurrent layers batch over time instead).
    gemm.m *= config_.batch_size;
  }
  const ComputeEstimate compute =
      estimate_compute(config_, gemm, layer.x_bits, layer.w_bits);
  const TrafficEstimate traffic = estimate_traffic(
      config_, gemm, layer.x_bits, layer.w_bits, layer.x_bits,
      compute.n_passes);

  const double mem_cycles_per_repeat =
      traffic.memory_cycles(dram_, config_.frequency_hz);

  // Double buffering overlaps each repeat's DRAM streaming with compute;
  // whichever is slower paces the repeat.
  std::int64_t weight_traffic_per_repeat = traffic.dram_bytes();
  if (!gemm.weights_streamed_per_repeat && gemm.repeats > 1) {
    // Weights resident across repeats (not the case for any Table-I layer,
    // but keep the model honest).
    weight_traffic_per_repeat = traffic.input_bytes + traffic.output_bytes;
  }

  const double per_repeat =
      std::max(static_cast<double>(compute.cycles), mem_cycles_per_repeat);
  const double startup =
      dram_.startup_latency_ns * 1e-9 * config_.frequency_hz;

  r.compute_cycles = compute.cycles * gemm.repeats;
  r.memory_cycles = static_cast<std::int64_t>(
      std::ceil(mem_cycles_per_repeat * static_cast<double>(gemm.repeats)));
  r.total_cycles = static_cast<std::int64_t>(
      std::ceil(per_repeat * static_cast<double>(gemm.repeats) + startup));
  r.utilization = compute.utilization;
  r.memory_bound = mem_cycles_per_repeat > static_cast<double>(compute.cycles);

  const std::int64_t dram_first = traffic.dram_bytes();
  r.dram_bytes = dram_first + weight_traffic_per_repeat * (gemm.repeats - 1);
  r.sram_bytes = traffic.sram_bytes * gemm.repeats;

  r.energy = energy_.layer_energy(r.compute_cycles, r.utilization,
                                  r.total_cycles, r.sram_bytes, r.dram_bytes);
  return r;
}

RunResult Simulator::run(const dnn::Network& network) const {
  RunResult result;
  result.platform = config_.name;
  result.network = network.name();
  result.memory = dram_.name;

  for (const dnn::Layer& layer : network.layers()) {
    LayerResult lr = run_layer(layer);
    result.total_cycles += lr.total_cycles;
    result.total_macs += lr.macs;
    result.energy += lr.energy;
    result.layers.push_back(std::move(lr));
  }

  result.runtime_s =
      static_cast<double>(result.total_cycles) / config_.frequency_hz;
  result.energy_j = result.energy.total_pj() * 1e-12;
  BPVEC_CHECK(result.runtime_s > 0);
  result.average_power_w = result.energy_j / result.runtime_s;
  result.gops_per_s =
      2.0 * static_cast<double>(result.total_macs) / result.runtime_s / 1e9;
  result.gops_per_w = result.gops_per_s / result.average_power_w;
  return result;
}

}  // namespace bpvec::sim
