// Off-chip traffic and scratchpad-access model with double buffering.
//
// Per GEMM repeat, the mapper picks the loop order that minimizes DRAM
// traffic (weights N·K·w_bits, inputs M·K·x_bits, outputs M·N·out_bits):
//
//  * inputs fit their scratchpad half   — everything streams once
//    (input-stationary; weights stream through).
//  * weights fit their scratchpad half  — everything streams once
//    (weight-stationary; inputs stream through).
//  * neither fits                        — split the K dimension into
//    groups whose input slice fits on-chip; weights still stream once
//    (each K-slice of every output column), and the partial sums make
//    (k_groups − 1) round trips through DRAM at accumulator precision.
//
// Recurrent layers set weights_streamed_per_repeat: the weight matrix
// re-streams on every time chunk — the paper's "limited data reuse" that
// starves RNNs under DDR4.
#pragma once

#include <cstdint>

#include "src/arch/dram.h"
#include "src/dnn/layer.h"
#include "src/sim/config.h"

namespace bpvec::sim {

struct TrafficEstimate {
  // Per single repeat:
  std::int64_t weight_bytes = 0;
  std::int64_t input_bytes = 0;
  std::int64_t output_bytes = 0;
  std::int64_t psum_bytes = 0;   // partial-sum spill round trips
  std::int64_t k_groups = 1;     // K splits chosen by the mapper

  // Scratchpad traffic per repeat (fills from DRAM + operand re-reads for
  // each N pass + output writes).
  std::int64_t sram_bytes = 0;

  std::int64_t dram_bytes() const {
    return weight_bytes + input_bytes + output_bytes + psum_bytes;
  }

  /// DRAM-limited cycles for one repeat.
  double memory_cycles(const arch::DramModel& dram,
                       double frequency_hz) const;
};

/// Traffic for one repeat of `gemm` (layer bitwidths given; outputs are
/// written at activation precision `out_bits`).
TrafficEstimate estimate_traffic(const AcceleratorConfig& config,
                                 const dnn::GemmShape& gemm, int x_bits,
                                 int w_bits, int out_bits,
                                 std::int64_t n_passes);

}  // namespace bpvec::sim
