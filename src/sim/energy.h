// Energy accounting: E = compute + scratchpad + DRAM + static.
#pragma once

#include <cstdint>

#include "src/arch/cvu_cost.h"
#include "src/arch/dram.h"
#include "src/arch/scratchpad.h"
#include "src/sim/config.h"

namespace bpvec::sim {

struct EnergyBreakdown {
  double compute_pj = 0.0;
  double sram_pj = 0.0;
  double dram_pj = 0.0;
  double static_pj = 0.0;

  double total_pj() const {
    return compute_pj + sram_pj + dram_pj + static_pj;
  }
  EnergyBreakdown& operator+=(const EnergyBreakdown& o) {
    compute_pj += o.compute_pj;
    sram_pj += o.sram_pj;
    dram_pj += o.dram_pj;
    static_pj += o.static_pj;
    return *this;
  }
};

class EnergyModel {
 public:
  EnergyModel(const AcceleratorConfig& config, const arch::DramModel& dram,
              const arch::CvuCostModel& cost);

  /// Energy of one layer execution.
  /// `active_cycles` — cycles the PE array is busy (charged PE dynamic
  /// energy scaled by utilization); `total_cycles` — wall-clock cycles
  /// (charged static power); `sram_bytes`/`dram_bytes` — traffic.
  EnergyBreakdown layer_energy(std::int64_t active_cycles,
                               double utilization, std::int64_t total_cycles,
                               std::int64_t sram_bytes,
                               std::int64_t dram_bytes) const;

 private:
  const AcceleratorConfig& config_;
  arch::DramModel dram_;
  arch::ScratchpadModel spad_;
  double pe_cycle_energy_pj_;
};

}  // namespace bpvec::sim
