#include "src/sim/systolic.h"

#include "src/common/error.h"
#include "src/common/mathutil.h"

namespace bpvec::sim {

ComputeEstimate estimate_compute(const AcceleratorConfig& config,
                                 const dnn::GemmShape& gemm, int x_bits,
                                 int w_bits) {
  config.validate();
  BPVEC_CHECK(gemm.m >= 1 && gemm.n >= 1 && gemm.k >= 1);

  ComputeEstimate e;
  const std::int64_t k_tile =
      static_cast<std::int64_t>(config.rows) * config.k_per_pe(x_bits, w_bits);
  e.k_passes = ceil_div(gemm.k, k_tile);
  e.n_passes = ceil_div(gemm.n, config.cols);

  // Each (K, N) tile streams M rows through the array; weight reloads are
  // double-buffered behind compute, so fill/drain is paid once per repeat.
  const std::int64_t fill_drain = config.rows + config.cols;
  e.cycles = e.k_passes * e.n_passes * gemm.m + fill_drain;
  e.macs = gemm.m * gemm.n * gemm.k;

  // Peak MAC slots: each PE retires k_per_pe MACs (at these bitwidths)
  // per cycle, one output column per PE column.
  const double peak_macs_per_cycle =
      static_cast<double>(config.num_pes()) *
      static_cast<double>(config.k_per_pe(x_bits, w_bits));
  e.utilization =
      static_cast<double>(e.macs) /
      (static_cast<double>(e.cycles) * peak_macs_per_cycle);
  BPVEC_CHECK(e.utilization <= 1.0 + 1e-9);
  return e;
}

}  // namespace bpvec::sim
