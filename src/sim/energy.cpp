#include "src/sim/energy.h"

#include "src/common/error.h"

namespace bpvec::sim {

EnergyModel::EnergyModel(const AcceleratorConfig& config,
                         const arch::DramModel& dram,
                         const arch::CvuCostModel& cost)
    : config_(config),
      dram_(dram),
      spad_(config.scratchpad_bytes),
      pe_cycle_energy_pj_(config.pe_energy_per_cycle_pj(cost)) {}

EnergyBreakdown EnergyModel::layer_energy(std::int64_t active_cycles,
                                          double utilization,
                                          std::int64_t total_cycles,
                                          std::int64_t sram_bytes,
                                          std::int64_t dram_bytes) const {
  BPVEC_CHECK(active_cycles >= 0 && total_cycles >= 0);
  BPVEC_CHECK(utilization >= 0.0 && utilization <= 1.0 + 1e-9);

  EnergyBreakdown e;
  // Dynamic PE energy: engaged lanes switch; idle lanes are clock-gated
  // but still pay a 10% residual (clock network).
  const double activity = 0.1 + 0.9 * utilization;
  e.compute_pj = pe_cycle_energy_pj_ * config_.num_pes() *
                 static_cast<double>(active_cycles) * activity;

  e.sram_pj = spad_.energy_per_byte_pj() * static_cast<double>(sram_bytes);
  e.dram_pj = dram_.transfer_energy_pj(dram_bytes);

  const double static_mw = config_.static_core_mw + spad_.leakage_mw() +
                           dram_.background_power_w * 1e3;
  e.static_pj = static_mw * 1e-3 /* W */ *
                (static_cast<double>(total_cycles) / config_.frequency_hz) *
                1e12;
  return e;
}

}  // namespace bpvec::sim
