#include "src/sim/config.h"

#include "src/common/error.h"
#include "src/common/mathutil.h"

namespace bpvec::sim {

namespace {

/// BitFusion pads operand bitwidths to the next power of two ≥ 2 (its
/// bit-bricks fuse in power-of-two groups).
int pad_pow2(int bits) {
  BPVEC_CHECK(bits >= 1);
  int p = 2;
  while (p < bits) p <<= 1;
  return p;
}

}  // namespace

const char* to_string(PeKind kind) {
  switch (kind) {
    case PeKind::kConventional: return "conventional";
    case PeKind::kBitFusion: return "bitfusion";
    case PeKind::kBpvec: return "bpvec";
  }
  return "?";
}

std::int64_t AcceleratorConfig::equivalent_macs() const {
  switch (pe_kind) {
    case PeKind::kConventional:
    case PeKind::kBitFusion:
      return num_pes();
    case PeKind::kBpvec:
      return static_cast<std::int64_t>(num_pes()) * cvu.lanes;
  }
  return 0;
}

double AcceleratorConfig::composability_boost(int x_bits, int w_bits) const {
  BPVEC_CHECK(x_bits >= 1 && x_bits <= cvu.max_bits);
  BPVEC_CHECK(w_bits >= 1 && w_bits <= cvu.max_bits);
  switch (pe_kind) {
    case PeKind::kConventional:
      return 1.0;  // fixed bitwidth: no benefit below 8 bits
    case PeKind::kBitFusion: {
      const int px = pad_pow2(x_bits);
      const int pw = pad_pow2(w_bits);
      return (static_cast<double>(cvu.max_bits) / px) *
             (static_cast<double>(cvu.max_bits) / pw);
    }
    case PeKind::kBpvec: {
      const auto plan = bitslice::plan_composition(cvu, x_bits, w_bits);
      return plan.speedup_vs_max_bitwidth();
    }
  }
  return 1.0;
}

std::int64_t AcceleratorConfig::k_per_pe(int x_bits, int w_bits) const {
  const double boost = composability_boost(x_bits, w_bits);
  switch (pe_kind) {
    case PeKind::kConventional:
      return 1;
    case PeKind::kBitFusion:
      // A fusion unit composed below 8 bits performs `boost` MACs per
      // cycle; mapped along the dot-product dimension.
      return static_cast<std::int64_t>(boost);
    case PeKind::kBpvec:
      return static_cast<std::int64_t>(boost) * cvu.lanes;
  }
  return 1;
}

double AcceleratorConfig::pe_energy_per_cycle_pj(
    const arch::CvuCostModel& cost) const {
  switch (pe_kind) {
    case PeKind::kConventional:
      return cost.conventional_mac_energy_pj();
    case PeKind::kBitFusion: {
      bitslice::CvuGeometry fu = cvu;
      fu.lanes = 1;  // a fusion unit is the L = 1 degenerate CVU
      return cost.cvu_energy_per_cycle_pj(fu);
    }
    case PeKind::kBpvec:
      return cost.cvu_energy_per_cycle_pj(cvu);
  }
  return 0.0;
}

double AcceleratorConfig::core_area_um2(const arch::CvuCostModel& cost) const {
  switch (pe_kind) {
    case PeKind::kConventional:
      return num_pes() * cost.conventional_mac_area_um2();
    case PeKind::kBitFusion: {
      bitslice::CvuGeometry fu = cvu;
      fu.lanes = 1;
      return num_pes() * cost.cvu_area_um2(fu);
    }
    case PeKind::kBpvec:
      return num_pes() * cost.cvu_area_um2(cvu);
  }
  return 0.0;
}

void AcceleratorConfig::validate() const {
  BPVEC_CHECK(rows >= 1 && cols >= 1);
  BPVEC_CHECK(scratchpad_bytes > 0);
  BPVEC_CHECK(frequency_hz > 0);
  BPVEC_CHECK(time_chunk >= 1);
  BPVEC_CHECK(batch_size >= 1);
  cvu.validate();
}

AcceleratorConfig tpu_like_baseline() {
  AcceleratorConfig c;
  c.name = "TPU-like";
  c.pe_kind = PeKind::kConventional;
  c.rows = 16;
  c.cols = 32;  // 512 MACs (Table II)
  return c;
}

AcceleratorConfig bitfusion_accelerator() {
  AcceleratorConfig c;
  c.name = "BitFusion";
  c.pe_kind = PeKind::kBitFusion;
  c.rows = 16;
  c.cols = 28;  // 448 fusion units (Table II)
  return c;
}

AcceleratorConfig bpvec_accelerator() {
  AcceleratorConfig c;
  c.name = "BPVeC";
  c.pe_kind = PeKind::kBpvec;
  c.rows = 8;
  c.cols = 8;  // 64 CVUs × 16 lanes = 1024 MACs (Table II)
  c.cvu = bitslice::CvuGeometry{2, 8, 16};
  return c;
}

}  // namespace bpvec::sim
