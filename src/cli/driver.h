// The bpvec_run driver: manifest in, priced scenarios + reports out.
//
// Since the serve layer landed, the driver is a thin front end over
// serve::Session — the same Request/Session code path the resident
// daemon (bpvec_serve) multiplexes. A batch invocation constructs a
// fresh Session (cold memo caches; the disk cache still persists),
// runs exactly one typed request, and prints: human-readable comparison
// table / CSV on stdout + a machine-readable JSON report on disk. That
// shared path is what makes the serve determinism contract enforceable:
// a served request and a CLI run are the same computation, so their
// report bytes must match.
//
// The JSON report is what CI diffs and gates on, so its contract
// matters (builders live in src/cli/report.h):
//   * The "scenarios" array is a pure function of the manifest — same
//     manifest, same build ⇒ byte-identical bytes, whatever the thread
//     count or cache state (the engine's bit-identity guarantee plus
//     the deterministic JSON writer).
//   * The "stats" block (engine + disk-cache counters) is run-dependent
//     by nature (cold vs warm). --deterministic-report omits it so two
//     runs can be compared with cmp(1); --stats-out writes it to its
//     own file so the CI gate can still assert warm-run disk hits.
//
// All functions throw bpvec::Error on bad input; main_cli catches and
// prints it, so tools/bpvec_run.cpp stays a two-liner.
// The `search` subcommand (`bpvec_run search <manifest>`) runs the
// manifest's "search" block through the dse subsystem instead: candidates
// materialize from the typed ParamSpace, ride the same engine (and disk
// cache), and the report carries the Pareto frontier in its canonical
// order — also a pure function of the manifest under
// --deterministic-report, so the CI dse-regression gate cmp's it cold vs
// warm vs the committed golden.
//
// `--validate` dry-runs either mode: parse + expand, print the scenario
// count (or search-space size), price nothing.
//
// `bpvec_run list` prints the canonical token vocabularies (backends,
// platforms, memories, bitwidth modes, networks, workload generators,
// search knobs, metrics, strategies) so manifest authors never guess;
// `--network-file FILE` (repeatable, both modes) registers extra
// workload-schema networks for the invocation.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "src/cli/manifest.h"
#include "src/cli/report.h"
#include "src/common/json.h"
#include "src/dse/search.h"
#include "src/engine/sim_engine.h"
#include "src/sim/simulator.h"

namespace bpvec::cli {

/// What one bpvec_run invocation does — resolved from the subcommand
/// and --validate at parse time (main_cli), replacing the old
/// search_mode/list_mode/validate_only boolean soup. Exactly one per
/// invocation; flag behavior and usage text are unchanged.
enum class Command {
  kPrice,           // default: price the manifest's grids
  kSearch,          // `search`: run the manifest's "search" block
  kList,            // `list`: print the token vocabularies
  kValidate,        // --validate: dry-run the grids
  kValidateSearch,  // `search --validate`: dry-run the search block
};

struct DriverOptions {
  std::string manifest_path;
  /// What to do (see Command). main_cli resolves the `search`/`list`
  /// subcommands and --validate into this single field.
  Command command = Command::kPrice;
  /// Workload-schema files registered into the NetworkRegistry before
  /// anything runs (--network-file, repeatable) — their names become
  /// valid manifest network tokens for this invocation.
  std::vector<std::string> network_files;
  /// Persistent result-cache directory (engine disk cache); empty = off.
  std::string cache_dir;
  /// Report output path; empty = "REPORT_<manifest name>.json" in the
  /// working directory.
  std::string report_path;
  /// When non-empty, the stats block is also written here as its own
  /// JSON document (useful with --deterministic-report).
  std::string stats_path;
  int threads = 0;               // <= 0: hardware concurrency
  /// Engine parallel_for grain (EngineOptions::grain); 0 = auto.
  /// Results are grain-invariant — this only tunes task granularity.
  std::size_t grain = 0;
  bool print_table = true;       // scenario comparison table on stdout
  bool print_csv = false;        // scenario CSV on stdout
  bool write_report = true;
  bool deterministic_report = false;  // omit run-dependent "stats" block
};

struct DriverResult {
  Manifest manifest;
  std::vector<engine::Scenario> scenarios;
  std::vector<sim::RunResult> results;
  engine::EngineStats stats;
  common::json::Value report;  // what was (or would be) written
  /// Search-mode outcome (frontier + every evaluation); absent in grid
  /// mode and under --validate.
  std::optional<dse::SearchOutcome> search;
};

/// Runs a manifest end to end (per DriverOptions::command) through a
/// fresh serve::Session. `out` receives the table/CSV output.
DriverResult run_manifest(const DriverOptions& options, std::ostream& out);

/// Parses bpvec_run's argv (argv[0] is skipped) and runs. Usage errors
/// and bpvec::Errors print to `err` and return a nonzero exit code.
int main_cli(int argc, const char* const* argv, std::ostream& out,
             std::ostream& err);

/// The usage text (also printed on --help / bad flags).
std::string usage();

}  // namespace bpvec::cli
