// The bpvec_run driver: manifest in, priced scenarios + reports out.
//
// Pipeline: load_manifest → expand → SimEngine::run_batch (optionally
// with the persistent disk cache) → human-readable comparison table /
// CSV on stdout + a machine-readable JSON report on disk.
//
// The JSON report is what CI diffs and gates on, so its contract
// matters:
//   * The "scenarios" array is a pure function of the manifest — same
//     manifest, same build ⇒ byte-identical bytes, whatever the thread
//     count or cache state (the engine's bit-identity guarantee plus
//     the deterministic JSON writer).
//   * The "stats" block (engine + disk-cache counters) is run-dependent
//     by nature (cold vs warm). --deterministic-report omits it so two
//     runs can be compared with cmp(1); --stats-out writes it to its
//     own file so the CI gate can still assert warm-run disk hits.
//
// All functions throw bpvec::Error on bad input; main_cli catches and
// prints it, so tools/bpvec_run.cpp stays a two-liner.
// The `search` subcommand (`bpvec_run search <manifest>`) runs the
// manifest's "search" block through the dse subsystem instead: candidates
// materialize from the typed ParamSpace, ride the same engine (and disk
// cache), and the report carries the Pareto frontier in its canonical
// order — also a pure function of the manifest under
// --deterministic-report, so the CI dse-regression gate cmp's it cold vs
// warm vs the committed golden.
//
// `--validate` dry-runs either mode: parse + expand, print the scenario
// count (or search-space size), price nothing.
//
// `bpvec_run list` prints the canonical token vocabularies (backends,
// platforms, memories, bitwidth modes, networks, workload generators,
// search knobs, metrics, strategies) so manifest authors never guess;
// `--network-file FILE` (repeatable, both modes) registers extra
// workload-schema networks for the invocation.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "src/cli/manifest.h"
#include "src/common/json.h"
#include "src/dse/search.h"
#include "src/engine/sim_engine.h"
#include "src/sim/simulator.h"

namespace bpvec::cli {

struct DriverOptions {
  std::string manifest_path;
  /// Run the manifest's "search" block (the `search` subcommand).
  bool search_mode = false;
  /// Print the canonical token vocabularies and exit (the `list`
  /// subcommand — no manifest involved).
  bool list_mode = false;
  /// Workload-schema files registered into the NetworkRegistry before
  /// anything runs (--network-file, repeatable) — their names become
  /// valid manifest network tokens for this invocation.
  std::vector<std::string> network_files;
  /// Parse and expand only: print counts, price nothing, write nothing.
  bool validate_only = false;
  /// Persistent result-cache directory (engine disk cache); empty = off.
  std::string cache_dir;
  /// Report output path; empty = "REPORT_<manifest name>.json" in the
  /// working directory.
  std::string report_path;
  /// When non-empty, the stats block is also written here as its own
  /// JSON document (useful with --deterministic-report).
  std::string stats_path;
  int threads = 0;               // <= 0: hardware concurrency
  bool print_table = true;       // scenario comparison table on stdout
  bool print_csv = false;        // scenario CSV on stdout
  bool write_report = true;
  bool deterministic_report = false;  // omit run-dependent "stats" block
};

struct DriverResult {
  Manifest manifest;
  std::vector<engine::Scenario> scenarios;
  std::vector<sim::RunResult> results;
  engine::EngineStats stats;
  common::json::Value report;  // what was (or would be) written
  /// Search-mode outcome (frontier + every evaluation); absent in grid
  /// mode and under --validate.
  std::optional<dse::SearchOutcome> search;
};

/// Builds the report document for a priced batch. Scenario rows carry
/// id/backend/platform/network/memory plus the exact cycles, MACs,
/// runtime, energy, and throughput numbers (doubles %.17g — values
/// round-trip bit-exactly through any JSON parser).
common::json::Value build_report(const std::string& manifest_name,
                                 const std::vector<engine::Scenario>& batch,
                                 const std::vector<sim::RunResult>& results,
                                 const engine::EngineStats& stats,
                                 bool include_stats);

/// Search-mode report: strategy/space echo, candidate counters, and the
/// Pareto frontier in canonical order with full-precision knob, objective
/// and metric values. Deterministic except the optional "stats" block.
common::json::Value build_search_report(const std::string& manifest_name,
                                        const SearchSpec& spec,
                                        const dse::ParamSpace& space,
                                        const dse::SearchOutcome& outcome,
                                        const engine::EngineStats& stats,
                                        bool include_stats);

/// Runs a manifest end to end (grid or search mode per
/// DriverOptions::search_mode). `out` receives the table/CSV output.
DriverResult run_manifest(const DriverOptions& options, std::ostream& out);

/// Parses bpvec_run's argv (argv[0] is skipped) and runs. Usage errors
/// and bpvec::Errors print to `err` and return a nonzero exit code.
int main_cli(int argc, const char* const* argv, std::ostream& out,
             std::ostream& err);

/// The usage text (also printed on --help / bad flags).
std::string usage();

}  // namespace bpvec::cli
