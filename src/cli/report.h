// The report contract — the one TU that turns priced batches and search
// outcomes into the machine-readable JSON documents CI diffs and gates
// on. Both front ends share it:
//
//   * the batch CLI (src/cli/driver.cpp, `bpvec_run`) writes
//     build_report/build_search_report output to REPORT_*.json;
//   * the serving daemon (src/serve/, `bpvec_serve`) embeds the same
//     documents in its response envelopes.
//
// Keeping the builders here (not in the driver) is what makes the
// determinism contract enforceable: a served request's report is built
// by the identical code from the identical inputs, so under
// deterministic-report semantics its bytes must equal the batch CLI's —
// the CI serve-mode replay gate cmp's them against one committed golden.
//
// Contract details (unchanged from the driver era):
//   * Scenario rows carry id/backend/platform/network/memory plus the
//     exact cycles, MACs, runtime, energy, and throughput numbers
//     (doubles %.17g — values round-trip bit-exactly through any JSON
//     parser). Measured fields appear only when a backend executed.
//   * The "stats" block is run-dependent (cold vs warm) and is omitted
//     under deterministic-report semantics. In a serving session the
//     stats passed here are the *per-request delta* (snapshot
//     before/after on the shared engine), which for the batch CLI's
//     fresh engine equals the engine's totals — so CLI reports are
//     byte-identical to what they were before the serve layer existed.
#pragma once

#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/dse/param_space.h"
#include "src/dse/search.h"
#include "src/engine/scenario.h"
#include "src/engine/sim_engine.h"
#include "src/sim/simulator.h"

namespace bpvec::cli {

struct SearchSpec;  // src/cli/manifest.h

/// Builds the report document for a priced batch. Scenario rows carry
/// id/backend/platform/network/memory plus the exact cycles, MACs,
/// runtime, energy, and throughput numbers (doubles %.17g — values
/// round-trip bit-exactly through any JSON parser).
common::json::Value build_report(const std::string& manifest_name,
                                 const std::vector<engine::Scenario>& batch,
                                 const std::vector<sim::RunResult>& results,
                                 const engine::EngineStats& stats,
                                 bool include_stats);

/// Search-mode report: strategy/space echo, candidate counters, and the
/// Pareto frontier in canonical order with full-precision knob, objective
/// and metric values. Deterministic except the optional "stats" block.
common::json::Value build_search_report(const std::string& manifest_name,
                                        const SearchSpec& spec,
                                        const dse::ParamSpace& space,
                                        const dse::SearchOutcome& outcome,
                                        const engine::EngineStats& stats,
                                        bool include_stats);

/// Build-identity document — what `bpvec_run --version` prints and the
/// daemon's {"op":"version"} returns, so fleet operators can tell
/// heterogeneous binaries apart before trusting cross-machine cache
/// dirs or comparing reports:
///   * "simd_variant": the bit-kernel ISA variant this binary executes
///     (kernels::simd_variant() — folded into functional fingerprints);
///   * "disk_cache_format_version": entries this binary reads/writes
///     (engine::DiskCache::kFormatVersion — older entries are rejected);
///   * "compiler" / "build": toolchain + NDEBUG state. Reports are
///     bit-identical across compilers (-ffp-contract=off), but knowing
///     who built a binary is the first question when they are not.
common::json::Value version_json();

}  // namespace bpvec::cli
