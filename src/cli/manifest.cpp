#include "src/cli/manifest.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>
#include <utility>

#include "src/backend/backend_registry.h"
#include "src/common/error.h"
#include "src/common/token.h"
#include "src/dnn/model_zoo.h"

namespace bpvec::cli {

using common::json::Value;

namespace {

/// Token matching ignores case, '-' and '_' so manifests can say
/// "ResNet-18" or "resnet18", "tpu_like" or "TPU-like" (the shared rule
/// in common::normalize_token — the dse vocabularies use the same one).
using common::normalize_token;
using common::quoted_token_list;

[[noreturn]] void fail(const std::string& context,
                       const std::string& message) {
  throw Error("manifest: " + (context.empty() ? message
                                              : context + ": " + message));
}

/// Resolves `value` against the canonical `options` (normalized match);
/// the error names the offending value and every valid choice.
std::size_t match_token(const std::string& context, const char* what,
                        const std::string& value,
                        const std::vector<std::string>& options) {
  const std::string norm = normalize_token(value);
  for (std::size_t i = 0; i < options.size(); ++i) {
    if (normalize_token(options[i]) == norm) return i;
  }
  fail(context, std::string("unknown ") + what + " \"" + value +
                    "\"; expected one of " + quoted_token_list(options));
}

/// Errors on any member key outside `allowed` — unknown keys are silent
/// typos otherwise ("platform_override" quietly doing nothing).
void check_keys(const std::string& context, const Value& obj,
                const std::vector<std::string>& allowed) {
  for (const auto& [key, value] : obj.members()) {
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      fail(context, "unknown key \"" + key + "\"; allowed keys: " +
                        quoted_token_list(allowed));
    }
  }
}

const Value& require(const std::string& context, const Value& obj,
                     const std::string& key) {
  const Value* v = obj.find(key);
  if (v == nullptr) fail(context, "missing required key \"" + key + "\"");
  return *v;
}

std::string parse_string(const std::string& context, const Value& v,
                         const std::string& key) {
  if (!v.is_string()) fail(context, "\"" + key + "\" must be a string");
  return v.as_string();
}

std::vector<std::string> parse_string_list(const std::string& context,
                                           const Value& v,
                                           const std::string& key) {
  if (!v.is_array() || v.as_array().empty()) {
    fail(context, "\"" + key + "\" must be a non-empty array of strings");
  }
  std::vector<std::string> out;
  for (const Value& e : v.as_array()) {
    if (!e.is_string()) {
      fail(context, "\"" + key + "\" must contain only strings");
    }
    out.push_back(e.as_string());
  }
  return out;
}

int parse_int(const std::string& context, const Value& v,
              const std::string& key) {
  if (!v.is_int()) fail(context, "\"" + key + "\" must be an integer");
  const std::int64_t i = v.as_int();
  if (i < std::numeric_limits<int>::min() ||
      i > std::numeric_limits<int>::max()) {
    fail(context, "\"" + key + "\" out of range");
  }
  return static_cast<int>(i);
}

double parse_double(const std::string& context, const Value& v,
                    const std::string& key) {
  if (!v.is_number()) fail(context, "\"" + key + "\" must be a number");
  return v.as_double();
}

// ----- token tables --------------------------------------------------

const std::vector<std::string>& platform_tokens() {
  static const std::vector<std::string> tokens{"tpu_like", "bitfusion",
                                               "bpvec"};
  return tokens;
}

engine::Platform platform_from_index(std::size_t i) {
  switch (i) {
    case 0: return engine::Platform::kTpuLike;
    case 1: return engine::Platform::kBitFusion;
    default: return engine::Platform::kBpvec;
  }
}

// Token-index → config resolution, shared by grid expansion and the
// search block's base scenario so the two modes can never resolve the
// same token to different configs.

sim::AcceleratorConfig platform_config_from_index(std::size_t i) {
  switch (platform_from_index(i)) {
    case engine::Platform::kTpuLike: return sim::tpu_like_baseline();
    case engine::Platform::kBitFusion: return sim::bitfusion_accelerator();
    case engine::Platform::kBpvec: break;
  }
  return sim::bpvec_accelerator();
}

arch::DramModel memory_from_index(std::size_t i) {
  return i == 0 ? arch::ddr4() : arch::hbm2();
}

dnn::BitwidthMode mode_from_index(std::size_t i) {
  return i == 0 ? dnn::BitwidthMode::kHomogeneous8b
                : dnn::BitwidthMode::kHeterogeneous;
}

void apply_bitwidth_override(dnn::Network& net, const BitwidthOverride& o) {
  for (dnn::Layer& layer : net.layers()) {
    if (!layer.is_compute()) continue;
    layer.x_bits = o.x_bits;
    layer.w_bits = o.w_bits;
  }
}

const std::vector<std::string>& memory_tokens() {
  static const std::vector<std::string> tokens{"ddr4", "hbm2"};
  return tokens;
}

const std::vector<std::string>& mode_tokens() {
  static const std::vector<std::string> tokens{"homogeneous8b",
                                               "heterogeneous"};
  return tokens;
}

dnn::Network make_network(std::size_t token_index, dnn::BitwidthMode mode) {
  switch (token_index) {
    case 0: return dnn::make_alexnet(mode);
    case 1: return dnn::make_inception_v1(mode);
    case 2: return dnn::make_resnet18(mode);
    case 3: return dnn::make_resnet50(mode);
    case 4: return dnn::make_rnn(mode);
    default: return dnn::make_lstm(mode);
  }
}

/// Resolves a networks axis to canonical token indices ("all" → the
/// whole zoo; it must then be the sole entry).
std::vector<std::size_t> resolve_networks(
    const std::string& context, const std::vector<std::string>& names) {
  std::vector<std::size_t> out;
  for (const std::string& name : names) {
    if (normalize_token(name) == "all") {
      if (names.size() != 1) {
        fail(context, "\"all\" must be the only entry in \"networks\"");
      }
      for (std::size_t i = 0; i < network_tokens().size(); ++i) {
        out.push_back(i);
      }
      return out;
    }
    out.push_back(
        match_token(context, "network", name, network_tokens()));
  }
  return out;
}

// ----- overrides ------------------------------------------------------

PlatformOverrides parse_platform_overrides(const std::string& context,
                                           const Value& v) {
  if (!v.is_object()) fail(context, "\"platform_overrides\" must be an object");
  check_keys(context, v,
             {"rows", "cols", "scratchpad_bytes", "frequency_hz",
              "time_chunk", "batch_size", "static_core_mw",
              "cvu_slice_bits", "cvu_max_bits", "cvu_lanes"});
  PlatformOverrides o;
  if (const Value* f = v.find("rows")) o.rows = parse_int(context, *f, "rows");
  if (const Value* f = v.find("cols")) o.cols = parse_int(context, *f, "cols");
  if (const Value* f = v.find("scratchpad_bytes")) {
    if (!f->is_int()) fail(context, "\"scratchpad_bytes\" must be an integer");
    o.scratchpad_bytes = f->as_int();
  }
  if (const Value* f = v.find("frequency_hz")) {
    o.frequency_hz = parse_double(context, *f, "frequency_hz");
  }
  if (const Value* f = v.find("time_chunk")) {
    o.time_chunk = parse_int(context, *f, "time_chunk");
  }
  if (const Value* f = v.find("batch_size")) {
    o.batch_size = parse_int(context, *f, "batch_size");
  }
  if (const Value* f = v.find("static_core_mw")) {
    o.static_core_mw = parse_double(context, *f, "static_core_mw");
  }
  if (const Value* f = v.find("cvu_slice_bits")) {
    o.cvu_slice_bits = parse_int(context, *f, "cvu_slice_bits");
  }
  if (const Value* f = v.find("cvu_max_bits")) {
    o.cvu_max_bits = parse_int(context, *f, "cvu_max_bits");
  }
  if (const Value* f = v.find("cvu_lanes")) {
    o.cvu_lanes = parse_int(context, *f, "cvu_lanes");
  }
  return o;
}

MemoryOverrides parse_memory_overrides(const std::string& context,
                                       const Value& v) {
  if (!v.is_object()) fail(context, "\"memory_overrides\" must be an object");
  check_keys(context, v,
             {"bandwidth_gbps", "energy_pj_per_bit", "startup_latency_ns",
              "background_power_w"});
  MemoryOverrides o;
  if (const Value* f = v.find("bandwidth_gbps")) {
    o.bandwidth_gbps = parse_double(context, *f, "bandwidth_gbps");
  }
  if (const Value* f = v.find("energy_pj_per_bit")) {
    o.energy_pj_per_bit = parse_double(context, *f, "energy_pj_per_bit");
  }
  if (const Value* f = v.find("startup_latency_ns")) {
    o.startup_latency_ns = parse_double(context, *f, "startup_latency_ns");
  }
  if (const Value* f = v.find("background_power_w")) {
    o.background_power_w = parse_double(context, *f, "background_power_w");
  }
  return o;
}

BitwidthOverride parse_bitwidth_override(const std::string& context,
                                         const Value& v) {
  if (!v.is_object()) fail(context, "\"bitwidth_override\" must be an object");
  check_keys(context, v, {"x_bits", "w_bits"});
  BitwidthOverride o;
  o.x_bits = parse_int(context, require(context, v, "x_bits"), "x_bits");
  o.w_bits = parse_int(context, require(context, v, "w_bits"), "w_bits");
  if (o.x_bits < 1 || o.x_bits > 8 || o.w_bits < 1 || o.w_bits > 8) {
    fail(context, "bitwidth_override bits must be in [1, 8]");
  }
  return o;
}

sim::AcceleratorConfig apply_overrides(const std::string& context,
                                       sim::AcceleratorConfig config,
                                       const PlatformOverrides& o) {
  if (o.rows) config.rows = *o.rows;
  if (o.cols) config.cols = *o.cols;
  if (o.scratchpad_bytes) config.scratchpad_bytes = *o.scratchpad_bytes;
  if (o.frequency_hz) config.frequency_hz = *o.frequency_hz;
  if (o.time_chunk) config.time_chunk = *o.time_chunk;
  if (o.batch_size) config.batch_size = *o.batch_size;
  if (o.static_core_mw) config.static_core_mw = *o.static_core_mw;
  if (o.cvu_slice_bits) config.cvu.slice_bits = *o.cvu_slice_bits;
  if (o.cvu_max_bits) config.cvu.max_bits = *o.cvu_max_bits;
  if (o.cvu_lanes) config.cvu.lanes = *o.cvu_lanes;
  try {
    config.validate();
  } catch (const Error& e) {
    fail(context,
         std::string("platform_overrides produce an invalid platform: ") +
             e.what());
  }
  return config;
}

arch::DramModel apply_overrides(const std::string& context,
                                arch::DramModel memory,
                                const MemoryOverrides& o) {
  if (o.bandwidth_gbps) memory.bandwidth_gbps = *o.bandwidth_gbps;
  if (o.energy_pj_per_bit) memory.energy_pj_per_bit = *o.energy_pj_per_bit;
  if (o.startup_latency_ns) memory.startup_latency_ns = *o.startup_latency_ns;
  if (o.background_power_w) {
    memory.background_power_w = *o.background_power_w;
  }
  if (memory.bandwidth_gbps <= 0 || memory.energy_pj_per_bit < 0 ||
      memory.startup_latency_ns < 0 || memory.background_power_w < 0) {
    fail(context, "memory_overrides produce an invalid memory system");
  }
  return memory;
}

GridSpec parse_grid(const std::string& context, const Value& v) {
  if (!v.is_object()) fail(context, "grid must be an object");
  check_keys(context, v,
             {"backends", "platforms", "memories", "networks",
              "bitwidth_modes", "platform_overrides", "memory_overrides",
              "bitwidth_override", "id_suffix"});
  GridSpec g;
  if (const Value* f = v.find("backends")) {
    g.backends = parse_string_list(context, *f, "backends");
  }
  g.platforms =
      parse_string_list(context, require(context, v, "platforms"),
                        "platforms");
  g.memories = parse_string_list(context, require(context, v, "memories"),
                                 "memories");
  g.networks = parse_string_list(context, require(context, v, "networks"),
                                 "networks");
  if (const Value* f = v.find("bitwidth_modes")) {
    g.bitwidth_modes = parse_string_list(context, *f, "bitwidth_modes");
  }
  if (const Value* f = v.find("platform_overrides")) {
    g.platform_overrides = parse_platform_overrides(context, *f);
  }
  if (const Value* f = v.find("memory_overrides")) {
    g.memory_overrides = parse_memory_overrides(context, *f);
  }
  if (const Value* f = v.find("bitwidth_override")) {
    g.bitwidth_override = parse_bitwidth_override(context, *f);
  }
  if (const Value* f = v.find("id_suffix")) {
    g.id_suffix = parse_string(context, *f, "id_suffix");
  }

  // Validate every axis token now — expansion errors should name the
  // manifest problem, not surface later as an engine failure. Backends
  // are checked against the registry at expand() time instead (custom
  // backends may be registered between parse and expand).
  for (const std::string& p : g.platforms) {
    (void)match_token(context, "platform", p, platform_tokens());
  }
  for (const std::string& m : g.memories) {
    (void)match_token(context, "memory", m, memory_tokens());
  }
  (void)resolve_networks(context, g.networks);
  for (const std::string& m : g.bitwidth_modes) {
    (void)match_token(context, "bitwidth mode", m, mode_tokens());
  }
  for (const std::string& b : g.backends) {
    if (b.empty()) fail(context, "backend keys must be non-empty");
  }
  return g;
}

std::string grid_context(std::size_t index) {
  return "grids[" + std::to_string(index) + "]";
}

// ----- search block ---------------------------------------------------

std::vector<dse::Axis> parse_search_space(const std::string& context,
                                          const Value& v) {
  if (!v.is_object() || v.members().empty()) {
    fail(context,
         "\"space\" must be a non-empty object mapping knob names to "
         "value arrays");
  }
  std::vector<dse::Axis> axes;
  for (const auto& [key, values] : v.members()) {
    const auto knob = dse::knob_from_token(key);
    if (!knob) {
      fail(context, "unknown knob \"" + key + "\"; valid knobs: " +
                        quoted_token_list(dse::knob_tokens()));
    }
    if (!values.is_array() || values.as_array().empty()) {
      fail(context, "knob \"" + key + "\" must map to a non-empty array "
                        "of numbers");
    }
    dse::Axis axis;
    axis.knob = *knob;
    for (const Value& e : values.as_array()) {
      if (!e.is_number()) {
        fail(context, "knob \"" + key + "\" has a non-numeric value");
      }
      axis.values.push_back(e.as_double());
    }
    axes.push_back(std::move(axis));
  }
  // Re-validate through ParamSpace now so the error carries manifest
  // context (duplicate knobs, integral knobs with fractional values…).
  try {
    dse::ParamSpace space;
    for (const dse::Axis& a : axes) space.add_axis(a.knob, a.values);
  } catch (const Error& e) {
    fail(context, e.what());
  }
  return axes;
}

std::vector<dse::Objective> parse_objectives(const std::string& context,
                                             const Value& v) {
  if (!v.is_array() || v.as_array().empty()) {
    fail(context, "\"objectives\" must be a non-empty array");
  }
  std::vector<dse::Objective> objectives;
  for (const Value& e : v.as_array()) {
    dse::Objective o;
    std::string token;
    if (e.is_string()) {
      token = e.as_string();
    } else if (e.is_object()) {
      check_keys(context, e, {"metric", "maximize"});
      token = parse_string(context, require(context, e, "metric"), "metric");
    } else {
      fail(context, "objectives must be metric names or "
                        "{\"metric\", \"maximize\"} objects");
    }
    const auto metric = dse::metric_from_token(token);
    if (!metric) {
      fail(context, "unknown metric \"" + token + "\"; valid metrics: " +
                        quoted_token_list(dse::metric_tokens()));
    }
    o.metric = *metric;
    o.maximize = dse::default_maximize(*metric);
    if (e.is_object()) {
      if (const Value* m = e.find("maximize")) {
        if (!m->is_bool()) fail(context, "\"maximize\" must be a boolean");
        o.maximize = m->as_bool();
      }
    }
    for (const dse::Objective& seen : objectives) {
      if (seen.metric == o.metric) {
        fail(context, "duplicate objective \"" + token + "\"");
      }
    }
    objectives.push_back(o);
  }
  return objectives;
}

dse::Constraints parse_constraints(const std::string& context,
                                   const Value& v) {
  if (!v.is_object()) fail(context, "\"constraints\" must be an object");
  check_keys(context, v,
             {"min_utilization", "max_power_w", "max_energy_j",
              "max_runtime_s", "max_cycles"});
  dse::Constraints c;
  if (const Value* f = v.find("min_utilization")) {
    c.min_utilization = parse_double(context, *f, "min_utilization");
    if (*c.min_utilization < 0.0 || *c.min_utilization > 1.0) {
      fail(context, "\"min_utilization\" must be in [0, 1]");
    }
  }
  // The max_* caps must be positive: a zero or negative cap marks every
  // candidate infeasible, which can only be a typo.
  if (const Value* f = v.find("max_power_w")) {
    c.max_power_w = parse_double(context, *f, "max_power_w");
    if (*c.max_power_w <= 0.0) fail(context, "\"max_power_w\" must be positive");
  }
  if (const Value* f = v.find("max_energy_j")) {
    c.max_energy_j = parse_double(context, *f, "max_energy_j");
    if (*c.max_energy_j <= 0.0) {
      fail(context, "\"max_energy_j\" must be positive");
    }
  }
  if (const Value* f = v.find("max_runtime_s")) {
    c.max_runtime_s = parse_double(context, *f, "max_runtime_s");
    if (*c.max_runtime_s <= 0.0) {
      fail(context, "\"max_runtime_s\" must be positive");
    }
  }
  if (const Value* f = v.find("max_cycles")) {
    if (!f->is_int()) fail(context, "\"max_cycles\" must be an integer");
    if (f->as_int() <= 0) fail(context, "\"max_cycles\" must be positive");
    c.max_cycles = f->as_int();
  }
  return c;
}

std::vector<core::BitwidthMixEntry> parse_mix(const std::string& context,
                                              const Value& v) {
  if (!v.is_array() || v.as_array().empty()) {
    fail(context, "\"mix\" must be a non-empty array");
  }
  std::vector<core::BitwidthMixEntry> mix;
  for (const Value& e : v.as_array()) {
    if (!e.is_object()) fail(context, "mix entries must be objects");
    check_keys(context, e, {"x_bits", "w_bits", "weight"});
    core::BitwidthMixEntry m;
    m.x_bits = parse_int(context, require(context, e, "x_bits"), "x_bits");
    m.w_bits = parse_int(context, require(context, e, "w_bits"), "w_bits");
    if (m.x_bits < 1 || m.x_bits > 8 || m.w_bits < 1 || m.w_bits > 8) {
      fail(context, "mix bitwidths must be in [1, 8]");
    }
    if (const Value* w = e.find("weight")) {
      m.weight = parse_double(context, *w, "weight");
      if (m.weight <= 0.0) fail(context, "mix weights must be positive");
    }
    mix.push_back(m);
  }
  return mix;
}

SearchSpec parse_search(const Value& v) {
  const std::string context = "search";
  if (!v.is_object()) fail("", "\"search\" must be an object");
  check_keys(context, v,
             {"backend", "platform", "memory", "network", "bitwidth_mode",
              "bitwidth_override", "space", "strategy", "budget", "seed",
              "restarts", "objectives", "constraints", "mix"});
  SearchSpec s;
  if (const Value* f = v.find("backend")) {
    s.backend = parse_string(context, *f, "backend");
    if (s.backend.empty()) fail(context, "backend key must be non-empty");
  }
  if (const Value* f = v.find("platform")) {
    const std::string p = parse_string(context, *f, "platform");
    s.platform = platform_tokens()[match_token(context, "platform", p,
                                               platform_tokens())];
  }
  if (const Value* f = v.find("memory")) {
    const std::string m = parse_string(context, *f, "memory");
    s.memory =
        memory_tokens()[match_token(context, "memory", m, memory_tokens())];
  }
  {
    const std::string n =
        parse_string(context, require(context, v, "network"), "network");
    s.network =
        network_tokens()[match_token(context, "network", n, network_tokens())];
  }
  if (const Value* f = v.find("bitwidth_mode")) {
    const std::string m = parse_string(context, *f, "bitwidth_mode");
    s.bitwidth_mode =
        mode_tokens()[match_token(context, "bitwidth mode", m, mode_tokens())];
  }
  if (const Value* f = v.find("bitwidth_override")) {
    s.bitwidth_override = parse_bitwidth_override(context, *f);
  }
  s.space = parse_search_space(context, require(context, v, "space"));
  if (const Value* f = v.find("strategy")) {
    const std::string t = parse_string(context, *f, "strategy");
    s.strategy = dse::strategy_tokens()[match_token(
        context, "strategy", t, dse::strategy_tokens())];
  }
  if (const Value* f = v.find("budget")) {
    const int b = parse_int(context, *f, "budget");
    if (b <= 0) fail(context, "\"budget\" must be positive");
    s.budget = static_cast<std::size_t>(b);
  }
  if (s.strategy == "random" && s.budget == 0) {
    fail(context, "strategy \"random\" requires a \"budget\" (its sample "
                      "count)");
  }
  if (const Value* f = v.find("seed")) {
    if (!f->is_int() || f->as_int() < 0) {
      fail(context, "\"seed\" must be a non-negative integer");
    }
    s.seed = static_cast<std::uint64_t>(f->as_int());
  }
  if (const Value* f = v.find("restarts")) {
    const int r = parse_int(context, *f, "restarts");
    if (r <= 0) fail(context, "\"restarts\" must be positive");
    s.restarts = static_cast<std::size_t>(r);
  }
  if (const Value* f = v.find("objectives")) {
    s.objectives = parse_objectives(context, *f);
  }
  if (const Value* f = v.find("constraints")) {
    s.constraints = parse_constraints(context, *f);
  }
  if (const Value* f = v.find("mix")) {
    s.mix = parse_mix(context, *f);
  }
  return s;
}

}  // namespace

bool PlatformOverrides::any() const {
  return rows || cols || scratchpad_bytes || frequency_hz || time_chunk ||
         batch_size || static_core_mw || cvu_slice_bits || cvu_max_bits ||
         cvu_lanes;
}

bool MemoryOverrides::any() const {
  return bandwidth_gbps || energy_pj_per_bit || startup_latency_ns ||
         background_power_w;
}

const std::vector<std::string>& network_tokens() {
  static const std::vector<std::string> tokens{
      "alexnet", "inception_v1", "resnet18", "resnet50", "rnn", "lstm"};
  return tokens;
}

Manifest parse_manifest(const Value& root) {
  if (!root.is_object()) fail("", "document must be an object");
  check_keys("", root, {"name", "description", "grids", "search"});
  Manifest m;
  m.name = parse_string("", require("", root, "name"), "name");
  if (m.name.empty()) fail("", "\"name\" must be non-empty");
  if (const Value* d = root.find("description")) {
    m.description = parse_string("", *d, "description");
  }
  if (const Value* grids = root.find("grids")) {
    if (!grids->is_array() || grids->as_array().empty()) {
      fail("", "\"grids\" must be a non-empty array");
    }
    for (std::size_t i = 0; i < grids->as_array().size(); ++i) {
      m.grids.push_back(parse_grid(grid_context(i), grids->as_array()[i]));
    }
  }
  if (const Value* search = root.find("search")) {
    m.search = parse_search(*search);
  }
  if (m.grids.empty() && !m.search) {
    fail("", "manifest needs \"grids\", a \"search\" block, or both");
  }
  return m;
}

Manifest load_manifest(const std::string& path) {
  try {
    return parse_manifest(common::json::parse_file(path));
  } catch (const Error& e) {
    const std::string what = e.what();
    if (what.find(path) != std::string::npos) throw;  // parse error: has path
    throw Error(path + ": " + what);
  }
}

common::json::Value to_json(const SearchSpec& s) {
  Value sv = Value::object();
  sv.set("backend", s.backend);
  sv.set("platform", s.platform);
  sv.set("memory", s.memory);
  sv.set("network", s.network);
  sv.set("bitwidth_mode", s.bitwidth_mode);
  if (s.bitwidth_override) {
    Value o = Value::object();
    o.set("x_bits", s.bitwidth_override->x_bits);
    o.set("w_bits", s.bitwidth_override->w_bits);
    sv.set("bitwidth_override", std::move(o));
  }
  Value space = Value::object();
  for (const dse::Axis& axis : s.space) {
    Value values = Value::array();
    for (double v : axis.values) {
      if (dse::knob_is_integer(axis.knob)) {
        values.push_back(static_cast<std::int64_t>(std::llround(v)));
      } else {
        values.push_back(v);
      }
    }
    space.set(dse::to_string(axis.knob), std::move(values));
  }
  sv.set("space", std::move(space));
  sv.set("strategy", s.strategy);
  if (s.budget > 0) sv.set("budget", static_cast<std::int64_t>(s.budget));
  sv.set("seed", static_cast<std::int64_t>(s.seed));
  sv.set("restarts", static_cast<std::int64_t>(s.restarts));
  Value objectives = Value::array();
  for (const dse::Objective& o : s.objectives) {
    Value ov = Value::object();
    ov.set("metric", dse::to_string(o.metric));
    ov.set("maximize", o.maximize);
    objectives.push_back(std::move(ov));
  }
  sv.set("objectives", std::move(objectives));
  if (s.constraints.any()) {
    Value cv = Value::object();
    const dse::Constraints& c = s.constraints;
    if (c.min_utilization) cv.set("min_utilization", *c.min_utilization);
    if (c.max_power_w) cv.set("max_power_w", *c.max_power_w);
    if (c.max_energy_j) cv.set("max_energy_j", *c.max_energy_j);
    if (c.max_runtime_s) cv.set("max_runtime_s", *c.max_runtime_s);
    if (c.max_cycles) cv.set("max_cycles", *c.max_cycles);
    sv.set("constraints", std::move(cv));
  }
  if (!s.mix.empty()) {
    Value mix = Value::array();
    for (const core::BitwidthMixEntry& m : s.mix) {
      Value mv = Value::object();
      mv.set("x_bits", m.x_bits);
      mv.set("w_bits", m.w_bits);
      mv.set("weight", m.weight);
      mix.push_back(std::move(mv));
    }
    sv.set("mix", std::move(mix));
  }
  return sv;
}

common::json::Value to_json(const Manifest& manifest) {
  Value root = Value::object();
  root.set("name", manifest.name);
  if (!manifest.description.empty()) {
    root.set("description", manifest.description);
  }
  Value grids = Value::array();
  for (const GridSpec& g : manifest.grids) {
    Value grid = Value::object();
    auto string_list = [](const std::vector<std::string>& v) {
      Value a = Value::array();
      for (const std::string& s : v) a.push_back(s);
      return a;
    };
    grid.set("backends", string_list(g.backends));
    grid.set("platforms", string_list(g.platforms));
    grid.set("memories", string_list(g.memories));
    grid.set("networks", string_list(g.networks));
    grid.set("bitwidth_modes", string_list(g.bitwidth_modes));
    if (g.platform_overrides.any()) {
      Value o = Value::object();
      const PlatformOverrides& p = g.platform_overrides;
      if (p.rows) o.set("rows", *p.rows);
      if (p.cols) o.set("cols", *p.cols);
      if (p.scratchpad_bytes) o.set("scratchpad_bytes", *p.scratchpad_bytes);
      if (p.frequency_hz) o.set("frequency_hz", *p.frequency_hz);
      if (p.time_chunk) o.set("time_chunk", *p.time_chunk);
      if (p.batch_size) o.set("batch_size", *p.batch_size);
      if (p.static_core_mw) o.set("static_core_mw", *p.static_core_mw);
      if (p.cvu_slice_bits) o.set("cvu_slice_bits", *p.cvu_slice_bits);
      if (p.cvu_max_bits) o.set("cvu_max_bits", *p.cvu_max_bits);
      if (p.cvu_lanes) o.set("cvu_lanes", *p.cvu_lanes);
      grid.set("platform_overrides", std::move(o));
    }
    if (g.memory_overrides.any()) {
      Value o = Value::object();
      const MemoryOverrides& m = g.memory_overrides;
      if (m.bandwidth_gbps) o.set("bandwidth_gbps", *m.bandwidth_gbps);
      if (m.energy_pj_per_bit) {
        o.set("energy_pj_per_bit", *m.energy_pj_per_bit);
      }
      if (m.startup_latency_ns) {
        o.set("startup_latency_ns", *m.startup_latency_ns);
      }
      if (m.background_power_w) {
        o.set("background_power_w", *m.background_power_w);
      }
      grid.set("memory_overrides", std::move(o));
    }
    if (g.bitwidth_override) {
      Value o = Value::object();
      o.set("x_bits", g.bitwidth_override->x_bits);
      o.set("w_bits", g.bitwidth_override->w_bits);
      grid.set("bitwidth_override", std::move(o));
    }
    if (!g.id_suffix.empty()) grid.set("id_suffix", g.id_suffix);
    grids.push_back(std::move(grid));
  }
  if (!manifest.grids.empty()) root.set("grids", std::move(grids));
  if (manifest.search) root.set("search", to_json(*manifest.search));
  return root;
}

std::vector<engine::Scenario> expand(const Manifest& manifest) {
  auto& registry = backend::BackendRegistry::instance();
  std::vector<engine::Scenario> scenarios;
  for (std::size_t gi = 0; gi < manifest.grids.size(); ++gi) {
    const GridSpec& g = manifest.grids[gi];
    const std::string context = grid_context(gi);

    for (const std::string& b : g.backends) {
      if (!registry.contains(b)) {
        fail(context, "unknown backend \"" + b + "\"; registered backends: " +
                          quoted_token_list(registry.keys()));
      }
    }

    // Resolve each axis once; the loops below only combine.
    std::vector<sim::AcceleratorConfig> platforms;
    for (const std::string& p : g.platforms) {
      platforms.push_back(apply_overrides(
          context,
          platform_config_from_index(
              match_token(context, "platform", p, platform_tokens())),
          g.platform_overrides));
    }
    std::vector<arch::DramModel> memories;
    for (const std::string& m : g.memories) {
      memories.push_back(apply_overrides(
          context,
          memory_from_index(match_token(context, "memory", m, memory_tokens())),
          g.memory_overrides));
    }
    const std::vector<std::size_t> net_indices =
        resolve_networks(context, g.networks);

    for (const std::string& mode_name : g.bitwidth_modes) {
      const dnn::BitwidthMode mode = mode_from_index(
          match_token(context, "bitwidth mode", mode_name, mode_tokens()));
      for (const std::size_t net_index : net_indices) {
        dnn::Network net = make_network(net_index, mode);
        if (g.bitwidth_override) {
          apply_bitwidth_override(net, *g.bitwidth_override);
        }
        for (const sim::AcceleratorConfig& platform : platforms) {
          for (const arch::DramModel& memory : memories) {
            for (const std::string& backend : g.backends) {
              engine::Scenario s = engine::make_scenario(
                  backend, platform, memory, net, /*id=*/"");
              s.id += g.id_suffix;
              scenarios.push_back(std::move(s));
            }
          }
        }
      }
    }
  }
  return scenarios;
}

std::size_t scenario_count(const Manifest& manifest) {
  std::size_t total = 0;
  for (std::size_t gi = 0; gi < manifest.grids.size(); ++gi) {
    const GridSpec& g = manifest.grids[gi];
    const std::size_t nets =
        resolve_networks(grid_context(gi), g.networks).size();
    total += g.bitwidth_modes.size() * nets * g.platforms.size() *
             g.memories.size() * g.backends.size();
  }
  return total;
}

dse::ParamSpace search_space(const SearchSpec& spec) {
  dse::ParamSpace space;
  try {
    for (const dse::Axis& a : spec.space) space.add_axis(a.knob, a.values);
  } catch (const Error& e) {
    fail("search", e.what());
  }
  return space;
}

engine::Scenario search_base_scenario(const SearchSpec& spec) {
  const std::string context = "search";
  auto& registry = backend::BackendRegistry::instance();
  if (!registry.contains(spec.backend)) {
    fail(context, "unknown backend \"" + spec.backend +
                      "\"; registered backends: " +
                      quoted_token_list(registry.keys()));
  }
  sim::AcceleratorConfig config = platform_config_from_index(
      match_token(context, "platform", spec.platform, platform_tokens()));
  arch::DramModel memory = memory_from_index(
      match_token(context, "memory", spec.memory, memory_tokens()));
  const dnn::BitwidthMode mode = mode_from_index(match_token(
      context, "bitwidth mode", spec.bitwidth_mode, mode_tokens()));
  dnn::Network net = make_network(
      match_token(context, "network", spec.network, network_tokens()), mode);
  if (spec.bitwidth_override) {
    apply_bitwidth_override(net, *spec.bitwidth_override);
  }
  return engine::make_scenario(spec.backend, std::move(config),
                               std::move(memory), std::move(net), /*id=*/"");
}

}  // namespace bpvec::cli
