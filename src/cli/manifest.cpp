#include "src/cli/manifest.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>
#include <utility>

#include "src/backend/backend_registry.h"
#include "src/common/error.h"
#include "src/common/token.h"
#include "src/workload/network_registry.h"
#include "src/workload/schema.h"

namespace bpvec::cli {

using common::json::Value;

namespace {

/// Token matching ignores case, '-' and '_' so manifests can say
/// "ResNet-18" or "resnet18", "tpu_like" or "TPU-like" (the shared rule
/// in common::normalize_token — the dse vocabularies use the same one).
using common::normalize_token;
using common::quoted_token_list;

[[noreturn]] void fail(const std::string& context,
                       const std::string& message) {
  throw Error("manifest: " + (context.empty() ? message
                                              : context + ": " + message));
}

/// Resolves `value` against the canonical `options` (normalized match);
/// the error names the offending value and every valid choice.
std::size_t match_token(const std::string& context, const char* what,
                        const std::string& value,
                        const std::vector<std::string>& options) {
  const std::string norm = normalize_token(value);
  for (std::size_t i = 0; i < options.size(); ++i) {
    if (normalize_token(options[i]) == norm) return i;
  }
  fail(context, std::string("unknown ") + what + " \"" + value +
                    "\"; expected one of " + quoted_token_list(options));
}

/// Errors on any member key outside `allowed` — unknown keys are silent
/// typos otherwise ("platform_override" quietly doing nothing).
void check_keys(const std::string& context, const Value& obj,
                const std::vector<std::string>& allowed) {
  for (const auto& [key, value] : obj.members()) {
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      fail(context, "unknown key \"" + key + "\"; allowed keys: " +
                        quoted_token_list(allowed));
    }
  }
}

const Value& require(const std::string& context, const Value& obj,
                     const std::string& key) {
  const Value* v = obj.find(key);
  if (v == nullptr) fail(context, "missing required key \"" + key + "\"");
  return *v;
}

std::string parse_string(const std::string& context, const Value& v,
                         const std::string& key) {
  if (!v.is_string()) fail(context, "\"" + key + "\" must be a string");
  return v.as_string();
}

std::vector<std::string> parse_string_list(const std::string& context,
                                           const Value& v,
                                           const std::string& key) {
  if (!v.is_array() || v.as_array().empty()) {
    fail(context, "\"" + key + "\" must be a non-empty array of strings");
  }
  std::vector<std::string> out;
  for (const Value& e : v.as_array()) {
    if (!e.is_string()) {
      fail(context, "\"" + key + "\" must contain only strings");
    }
    out.push_back(e.as_string());
  }
  return out;
}

int parse_int(const std::string& context, const Value& v,
              const std::string& key) {
  if (!v.is_int()) fail(context, "\"" + key + "\" must be an integer");
  const std::int64_t i = v.as_int();
  if (i < std::numeric_limits<int>::min() ||
      i > std::numeric_limits<int>::max()) {
    fail(context, "\"" + key + "\" out of range");
  }
  return static_cast<int>(i);
}

double parse_double(const std::string& context, const Value& v,
                    const std::string& key) {
  if (!v.is_number()) fail(context, "\"" + key + "\" must be a number");
  return v.as_double();
}

// ----- token tables --------------------------------------------------

engine::Platform platform_from_index(std::size_t i) {
  switch (i) {
    case 0: return engine::Platform::kTpuLike;
    case 1: return engine::Platform::kBitFusion;
    default: return engine::Platform::kBpvec;
  }
}

// Token-index → config resolution, shared by grid expansion and the
// search block's base scenario so the two modes can never resolve the
// same token to different configs.

sim::AcceleratorConfig platform_config_from_index(std::size_t i) {
  switch (platform_from_index(i)) {
    case engine::Platform::kTpuLike: return sim::tpu_like_baseline();
    case engine::Platform::kBitFusion: return sim::bitfusion_accelerator();
    case engine::Platform::kBpvec: break;
  }
  return sim::bpvec_accelerator();
}

arch::DramModel memory_from_index(std::size_t i) {
  return i == 0 ? arch::ddr4() : arch::hbm2();
}

dnn::BitwidthMode mode_from_index(std::size_t i) {
  return i == 0 ? dnn::BitwidthMode::kHomogeneous8b
                : dnn::BitwidthMode::kHeterogeneous;
}

void apply_bitwidth_override(dnn::Network& net, const BitwidthOverride& o) {
  for (dnn::Layer& layer : net.layers()) {
    if (!layer.is_compute()) continue;
    layer.x_bits = o.x_bits;
    layer.w_bits = o.w_bits;
  }
}

/// The full network vocabulary for error messages: meta tokens, every
/// registered network, and the manifest's own (possibly not yet
/// registered) workload names.
std::vector<std::string> network_vocabulary(
    const std::vector<std::string>& workload_names) {
  std::vector<std::string> vocab{"all", "workloads"};
  for (const std::string& t : workload::NetworkRegistry::instance().tokens()) {
    vocab.push_back(t);
  }
  for (const std::string& n : workload_names) {
    if (!workload::NetworkRegistry::instance().contains(n)) {
      vocab.push_back(n);
    }
  }
  return vocab;
}

/// Resolves a networks axis to canonical registry tokens. Meta tokens:
/// "all" → the six zoo builtins, "workloads" → every network the
/// manifest's workloads block declares (each must be the sole entry).
/// `workload_names` are valid even before registration, so parse-time
/// validation and scenario_count need no registry side effects.
std::vector<std::string> resolve_networks(
    const std::string& context, const std::vector<std::string>& names,
    const std::vector<std::string>& workload_names) {
  const auto& registry = workload::NetworkRegistry::instance();
  std::vector<std::string> out;
  for (const std::string& name : names) {
    const std::string norm = normalize_token(name);
    if (norm == "all") {
      if (names.size() != 1) {
        fail(context, "\"all\" must be the only entry in \"networks\"");
      }
      return workload::NetworkRegistry::builtin_tokens();
    }
    if (norm == "workloads") {
      if (names.size() != 1) {
        fail(context,
             "\"workloads\" must be the only entry in \"networks\"");
      }
      if (workload_names.empty()) {
        fail(context, "\"workloads\" needs a non-empty manifest "
                      "\"workloads\" block");
      }
      return workload_names;
    }
    if (auto key = registry.canonical_key(name)) {
      out.push_back(*key);
      continue;
    }
    const auto it = std::find_if(
        workload_names.begin(), workload_names.end(),
        [&](const std::string& w) { return normalize_token(w) == norm; });
    if (it != workload_names.end()) {
      out.push_back(*it);
      continue;
    }
    fail(context, "unknown network \"" + name + "\"; expected one of " +
                      quoted_token_list(network_vocabulary(workload_names)));
  }
  return out;
}

// ----- overrides ------------------------------------------------------

PlatformOverrides parse_platform_overrides(const std::string& context,
                                           const Value& v) {
  if (!v.is_object()) fail(context, "\"platform_overrides\" must be an object");
  check_keys(context, v,
             {"rows", "cols", "scratchpad_bytes", "frequency_hz",
              "time_chunk", "batch_size", "static_core_mw",
              "cvu_slice_bits", "cvu_max_bits", "cvu_lanes"});
  PlatformOverrides o;
  if (const Value* f = v.find("rows")) o.rows = parse_int(context, *f, "rows");
  if (const Value* f = v.find("cols")) o.cols = parse_int(context, *f, "cols");
  if (const Value* f = v.find("scratchpad_bytes")) {
    if (!f->is_int()) fail(context, "\"scratchpad_bytes\" must be an integer");
    o.scratchpad_bytes = f->as_int();
  }
  if (const Value* f = v.find("frequency_hz")) {
    o.frequency_hz = parse_double(context, *f, "frequency_hz");
  }
  if (const Value* f = v.find("time_chunk")) {
    o.time_chunk = parse_int(context, *f, "time_chunk");
  }
  if (const Value* f = v.find("batch_size")) {
    o.batch_size = parse_int(context, *f, "batch_size");
  }
  if (const Value* f = v.find("static_core_mw")) {
    o.static_core_mw = parse_double(context, *f, "static_core_mw");
  }
  if (const Value* f = v.find("cvu_slice_bits")) {
    o.cvu_slice_bits = parse_int(context, *f, "cvu_slice_bits");
  }
  if (const Value* f = v.find("cvu_max_bits")) {
    o.cvu_max_bits = parse_int(context, *f, "cvu_max_bits");
  }
  if (const Value* f = v.find("cvu_lanes")) {
    o.cvu_lanes = parse_int(context, *f, "cvu_lanes");
  }
  return o;
}

MemoryOverrides parse_memory_overrides(const std::string& context,
                                       const Value& v) {
  if (!v.is_object()) fail(context, "\"memory_overrides\" must be an object");
  check_keys(context, v,
             {"bandwidth_gbps", "energy_pj_per_bit", "startup_latency_ns",
              "background_power_w"});
  MemoryOverrides o;
  if (const Value* f = v.find("bandwidth_gbps")) {
    o.bandwidth_gbps = parse_double(context, *f, "bandwidth_gbps");
  }
  if (const Value* f = v.find("energy_pj_per_bit")) {
    o.energy_pj_per_bit = parse_double(context, *f, "energy_pj_per_bit");
  }
  if (const Value* f = v.find("startup_latency_ns")) {
    o.startup_latency_ns = parse_double(context, *f, "startup_latency_ns");
  }
  if (const Value* f = v.find("background_power_w")) {
    o.background_power_w = parse_double(context, *f, "background_power_w");
  }
  return o;
}

BitwidthOverride parse_bitwidth_override(const std::string& context,
                                         const Value& v) {
  if (!v.is_object()) fail(context, "\"bitwidth_override\" must be an object");
  check_keys(context, v, {"x_bits", "w_bits"});
  BitwidthOverride o;
  o.x_bits = parse_int(context, require(context, v, "x_bits"), "x_bits");
  o.w_bits = parse_int(context, require(context, v, "w_bits"), "w_bits");
  if (o.x_bits < 1 || o.x_bits > 8 || o.w_bits < 1 || o.w_bits > 8) {
    fail(context, "bitwidth_override bits must be in [1, 8]");
  }
  return o;
}

sim::AcceleratorConfig apply_overrides(const std::string& context,
                                       sim::AcceleratorConfig config,
                                       const PlatformOverrides& o) {
  if (o.rows) config.rows = *o.rows;
  if (o.cols) config.cols = *o.cols;
  if (o.scratchpad_bytes) config.scratchpad_bytes = *o.scratchpad_bytes;
  if (o.frequency_hz) config.frequency_hz = *o.frequency_hz;
  if (o.time_chunk) config.time_chunk = *o.time_chunk;
  if (o.batch_size) config.batch_size = *o.batch_size;
  if (o.static_core_mw) config.static_core_mw = *o.static_core_mw;
  if (o.cvu_slice_bits) config.cvu.slice_bits = *o.cvu_slice_bits;
  if (o.cvu_max_bits) config.cvu.max_bits = *o.cvu_max_bits;
  if (o.cvu_lanes) config.cvu.lanes = *o.cvu_lanes;
  try {
    config.validate();
  } catch (const Error& e) {
    fail(context,
         std::string("platform_overrides produce an invalid platform: ") +
             e.what());
  }
  return config;
}

arch::DramModel apply_overrides(const std::string& context,
                                arch::DramModel memory,
                                const MemoryOverrides& o) {
  if (o.bandwidth_gbps) memory.bandwidth_gbps = *o.bandwidth_gbps;
  if (o.energy_pj_per_bit) memory.energy_pj_per_bit = *o.energy_pj_per_bit;
  if (o.startup_latency_ns) memory.startup_latency_ns = *o.startup_latency_ns;
  if (o.background_power_w) {
    memory.background_power_w = *o.background_power_w;
  }
  if (memory.bandwidth_gbps <= 0 || memory.energy_pj_per_bit < 0 ||
      memory.startup_latency_ns < 0 || memory.background_power_w < 0) {
    fail(context, "memory_overrides produce an invalid memory system");
  }
  return memory;
}

GridSpec parse_grid(const std::string& context, const Value& v,
                    const std::vector<std::string>& workload_names) {
  if (!v.is_object()) fail(context, "grid must be an object");
  check_keys(context, v,
             {"backends", "platforms", "memories", "networks",
              "bitwidth_modes", "platform_overrides", "memory_overrides",
              "bitwidth_override", "id_suffix"});
  GridSpec g;
  if (const Value* f = v.find("backends")) {
    g.backends = parse_string_list(context, *f, "backends");
  }
  g.platforms =
      parse_string_list(context, require(context, v, "platforms"),
                        "platforms");
  g.memories = parse_string_list(context, require(context, v, "memories"),
                                 "memories");
  g.networks = parse_string_list(context, require(context, v, "networks"),
                                 "networks");
  if (const Value* f = v.find("bitwidth_modes")) {
    g.bitwidth_modes = parse_string_list(context, *f, "bitwidth_modes");
  }
  if (const Value* f = v.find("platform_overrides")) {
    g.platform_overrides = parse_platform_overrides(context, *f);
  }
  if (const Value* f = v.find("memory_overrides")) {
    g.memory_overrides = parse_memory_overrides(context, *f);
  }
  if (const Value* f = v.find("bitwidth_override")) {
    g.bitwidth_override = parse_bitwidth_override(context, *f);
  }
  if (const Value* f = v.find("id_suffix")) {
    g.id_suffix = parse_string(context, *f, "id_suffix");
  }

  // Validate every axis token now — expansion errors should name the
  // manifest problem, not surface later as an engine failure. Backends
  // are checked against the registry at expand() time instead (custom
  // backends may be registered between parse and expand).
  for (const std::string& p : g.platforms) {
    (void)match_token(context, "platform", p, platform_tokens());
  }
  for (const std::string& m : g.memories) {
    (void)match_token(context, "memory", m, memory_tokens());
  }
  const std::vector<std::string> net_tokens =
      resolve_networks(context, g.networks, workload_names);
  if (v.find("bitwidth_modes") == nullptr) {
    // The default mode (homogeneous8b) rewrites every layer to 8/8 —
    // correct for the zoo's Table I regimes, but it would silently
    // discard a custom workload's declared bitwidths (flattening e.g. a
    // generator bitwidth_policy sweep into identical scenarios). Make
    // the author choose.
    const auto& builtins = workload::NetworkRegistry::builtin_tokens();
    for (const std::string& token : net_tokens) {
      const std::string norm = normalize_token(token);
      const bool builtin = std::any_of(
          builtins.begin(), builtins.end(), [&](const std::string& b) {
            return normalize_token(b) == norm;
          });
      if (!builtin) {
        fail(context,
             "network \"" + token + "\" has declared bitwidths, but the "
             "grid omits \"bitwidth_modes\" and the default "
             "(homogeneous8b) would rewrite every layer to 8-bit; set "
             "\"bitwidth_modes\" to [\"heterogeneous\"] to keep the "
             "declared bits (or [\"homogeneous8b\"] to mean it)");
      }
    }
  }
  for (const std::string& m : g.bitwidth_modes) {
    (void)match_token(context, "bitwidth mode", m, bitwidth_mode_tokens());
  }
  for (const std::string& b : g.backends) {
    if (b.empty()) fail(context, "backend keys must be non-empty");
  }
  return g;
}

std::string grid_context(std::size_t index) {
  return "grids[" + std::to_string(index) + "]";
}

// ----- workloads block ------------------------------------------------

std::string workload_context(std::size_t index) {
  return "workloads[" + std::to_string(index) + "]";
}

/// `file` against the manifest's directory (absolute paths and an empty
/// base_dir pass through).
std::string resolve_workload_path(const std::string& base_dir,
                                  const std::string& file) {
  if (base_dir.empty() || file.empty() || file.front() == '/') return file;
  return base_dir + "/" + file;
}

/// Generator knob lists: a positive integer, or a non-empty array of
/// positive integers.
std::vector<int> parse_knob_list(const std::string& context, const Value& v,
                                 const std::string& key) {
  std::vector<int> out;
  if (v.is_int()) {
    out.push_back(parse_int(context, v, key));
  } else if (v.is_array() && !v.as_array().empty()) {
    for (const Value& e : v.as_array()) {
      out.push_back(parse_int(context, e, key));
    }
  } else {
    fail(context, "\"" + key + "\" must be a positive integer or a "
                      "non-empty array of positive integers");
  }
  for (int i : out) {
    if (i < 1) {
      fail(context, "\"" + key + "\" values must be positive, got " +
                        std::to_string(i));
    }
  }
  return out;
}

WorkloadSpec parse_workload(const std::string& context, const Value& v,
                            const std::string& base_dir) {
  if (!v.is_object()) fail(context, "workload must be an object");
  WorkloadSpec w;
  const bool has_file = v.find("file") != nullptr;
  const bool has_inline = v.find("network") != nullptr;
  const bool has_generator = v.find("generator") != nullptr;
  if (has_file + has_inline + has_generator != 1) {
    fail(context, "workload needs exactly one of \"file\", \"network\", "
                  "or \"generator\"");
  }
  if (has_file) {
    check_keys(context, v, {"file"});
    w.kind = WorkloadSpec::Kind::kFile;
    w.file = parse_string(context, v.at("file"), "file");
    if (w.file.empty()) fail(context, "\"file\" must be non-empty");
    try {
      w.prototypes.push_back(
          workload::load_network(resolve_workload_path(base_dir, w.file)));
    } catch (const Error& e) {
      fail(context, e.what());
    }
    w.names.push_back(w.prototypes.back().name());
    return w;
  }
  if (has_inline) {
    check_keys(context, v, {"network"});
    w.kind = WorkloadSpec::Kind::kInline;
    try {
      w.prototypes.push_back(workload::parse_network(v.at("network")));
    } catch (const Error& e) {
      fail(context, e.what());
    }
    w.names.push_back(w.prototypes.back().name());
    return w;
  }
  check_keys(context, v, {"generator", "depth", "width", "bitwidth_policy"});
  w.kind = WorkloadSpec::Kind::kGenerator;
  const std::string family =
      parse_string(context, v.at("generator"), "generator");
  w.generator = workload::generator_tokens()[match_token(
      context, "workload generator", family, workload::generator_tokens())];
  if (const Value* f = v.find("depth")) {
    w.depths = parse_knob_list(context, *f, "depth");
  }
  if (const Value* f = v.find("width")) {
    w.widths = parse_knob_list(context, *f, "width");
  }
  if (const Value* f = v.find("bitwidth_policy")) {
    if (f->is_string()) {
      w.policies.push_back(parse_string(context, *f, "bitwidth_policy"));
    } else {
      w.policies =
          parse_string_list(context, *f, "bitwidth_policy");
    }
    for (const std::string& p : w.policies) {
      if (!workload::is_bitwidth_policy(p)) {
        fail(context, "unknown bitwidth_policy \"" + p +
                          "\"; expected \"uniform:<1..8>\" or "
                          "\"first_last_8\"");
      }
    }
  }
  // Cross product, depth-outermost (manifest knob order) — 0 means the
  // family default, resolved inside the generator.
  const std::vector<int> depths = w.depths.empty() ? std::vector<int>{0}
                                                   : w.depths;
  const std::vector<int> widths = w.widths.empty() ? std::vector<int>{0}
                                                   : w.widths;
  const std::vector<std::string> policies =
      w.policies.empty() ? std::vector<std::string>{""} : w.policies;
  for (int depth : depths) {
    for (int width : widths) {
      for (const std::string& policy : policies) {
        workload::GeneratorSpec spec{w.generator, depth, width, policy, ""};
        try {
          w.prototypes.push_back(workload::generate(spec));
        } catch (const Error& e) {
          fail(context, e.what());
        }
        w.names.push_back(w.prototypes.back().name());
      }
    }
  }
  return w;
}

/// Every name the manifest's workloads block declares, declaration
/// order (what the "workloads" meta token expands to).
std::vector<std::string> workload_names_of(const Manifest& manifest) {
  std::vector<std::string> names;
  for (const WorkloadSpec& w : manifest.workloads) {
    names.insert(names.end(), w.names.begin(), w.names.end());
  }
  return names;
}

std::vector<WorkloadSpec> parse_workloads(const Value& v,
                                          const std::string& base_dir) {
  if (!v.is_array() || v.as_array().empty()) {
    fail("", "\"workloads\" must be a non-empty array of workload objects");
  }
  std::vector<WorkloadSpec> out;
  std::vector<std::string> seen;  // normalized names, across entries
  for (std::size_t i = 0; i < v.as_array().size(); ++i) {
    const std::string context = workload_context(i);
    WorkloadSpec w = parse_workload(context, v.as_array()[i], base_dir);
    for (const std::string& name : w.names) {
      const std::string norm = normalize_token(name);
      if (std::find(seen.begin(), seen.end(), norm) != seen.end()) {
        fail(context, "duplicate workload name \"" + name + "\"");
      }
      // Colliding with a zoo builtin would shadow every manifest that
      // names the token; registration would throw later, but the error
      // is clearer with the workload entry named.
      for (const std::string& b :
           workload::NetworkRegistry::builtin_tokens()) {
        if (normalize_token(b) == norm) {
          fail(context, "workload name \"" + name +
                            "\" collides with the builtin network \"" + b +
                            "\"");
        }
      }
      seen.push_back(norm);
    }
    out.push_back(std::move(w));
  }
  return out;
}

// ----- search block ---------------------------------------------------

std::vector<dse::Axis> parse_search_space(const std::string& context,
                                          const Value& v) {
  if (!v.is_object() || v.members().empty()) {
    fail(context,
         "\"space\" must be a non-empty object mapping knob names to "
         "value arrays");
  }
  std::vector<dse::Axis> axes;
  for (const auto& [key, values] : v.members()) {
    const auto knob = dse::knob_from_token(key);
    if (!knob) {
      fail(context, "unknown knob \"" + key + "\"; valid knobs: " +
                        quoted_token_list(dse::knob_tokens()));
    }
    if (!values.is_array() || values.as_array().empty()) {
      fail(context, "knob \"" + key + "\" must map to a non-empty array "
                        "of numbers");
    }
    dse::Axis axis;
    axis.knob = *knob;
    for (const Value& e : values.as_array()) {
      if (!e.is_number()) {
        fail(context, "knob \"" + key + "\" has a non-numeric value");
      }
      axis.values.push_back(e.as_double());
    }
    axes.push_back(std::move(axis));
  }
  // Re-validate through ParamSpace now so the error carries manifest
  // context (duplicate knobs, integral knobs with fractional values…).
  try {
    dse::ParamSpace space;
    for (const dse::Axis& a : axes) space.add_axis(a.knob, a.values);
  } catch (const Error& e) {
    fail(context, e.what());
  }
  return axes;
}

std::vector<dse::Objective> parse_objectives(const std::string& context,
                                             const Value& v) {
  if (!v.is_array() || v.as_array().empty()) {
    fail(context, "\"objectives\" must be a non-empty array");
  }
  std::vector<dse::Objective> objectives;
  for (const Value& e : v.as_array()) {
    dse::Objective o;
    std::string token;
    if (e.is_string()) {
      token = e.as_string();
    } else if (e.is_object()) {
      check_keys(context, e, {"metric", "maximize"});
      token = parse_string(context, require(context, e, "metric"), "metric");
    } else {
      fail(context, "objectives must be metric names or "
                        "{\"metric\", \"maximize\"} objects");
    }
    const auto metric = dse::metric_from_token(token);
    if (!metric) {
      fail(context, "unknown metric \"" + token + "\"; valid metrics: " +
                        quoted_token_list(dse::metric_tokens()));
    }
    o.metric = *metric;
    o.maximize = dse::default_maximize(*metric);
    if (e.is_object()) {
      if (const Value* m = e.find("maximize")) {
        if (!m->is_bool()) fail(context, "\"maximize\" must be a boolean");
        o.maximize = m->as_bool();
      }
    }
    for (const dse::Objective& seen : objectives) {
      if (seen.metric == o.metric) {
        fail(context, "duplicate objective \"" + token + "\"");
      }
    }
    objectives.push_back(o);
  }
  return objectives;
}

dse::Constraints parse_constraints(const std::string& context,
                                   const Value& v) {
  if (!v.is_object()) fail(context, "\"constraints\" must be an object");
  check_keys(context, v,
             {"min_utilization", "max_power_w", "max_energy_j",
              "max_runtime_s", "max_cycles"});
  dse::Constraints c;
  if (const Value* f = v.find("min_utilization")) {
    c.min_utilization = parse_double(context, *f, "min_utilization");
    if (*c.min_utilization < 0.0 || *c.min_utilization > 1.0) {
      fail(context, "\"min_utilization\" must be in [0, 1]");
    }
  }
  // The max_* caps must be positive: a zero or negative cap marks every
  // candidate infeasible, which can only be a typo.
  if (const Value* f = v.find("max_power_w")) {
    c.max_power_w = parse_double(context, *f, "max_power_w");
    if (*c.max_power_w <= 0.0) fail(context, "\"max_power_w\" must be positive");
  }
  if (const Value* f = v.find("max_energy_j")) {
    c.max_energy_j = parse_double(context, *f, "max_energy_j");
    if (*c.max_energy_j <= 0.0) {
      fail(context, "\"max_energy_j\" must be positive");
    }
  }
  if (const Value* f = v.find("max_runtime_s")) {
    c.max_runtime_s = parse_double(context, *f, "max_runtime_s");
    if (*c.max_runtime_s <= 0.0) {
      fail(context, "\"max_runtime_s\" must be positive");
    }
  }
  if (const Value* f = v.find("max_cycles")) {
    if (!f->is_int()) fail(context, "\"max_cycles\" must be an integer");
    if (f->as_int() <= 0) fail(context, "\"max_cycles\" must be positive");
    c.max_cycles = f->as_int();
  }
  return c;
}

std::vector<core::BitwidthMixEntry> parse_mix(const std::string& context,
                                              const Value& v) {
  if (!v.is_array() || v.as_array().empty()) {
    fail(context, "\"mix\" must be a non-empty array");
  }
  std::vector<core::BitwidthMixEntry> mix;
  for (const Value& e : v.as_array()) {
    if (!e.is_object()) fail(context, "mix entries must be objects");
    check_keys(context, e, {"x_bits", "w_bits", "weight"});
    core::BitwidthMixEntry m;
    m.x_bits = parse_int(context, require(context, e, "x_bits"), "x_bits");
    m.w_bits = parse_int(context, require(context, e, "w_bits"), "w_bits");
    if (m.x_bits < 1 || m.x_bits > 8 || m.w_bits < 1 || m.w_bits > 8) {
      fail(context, "mix bitwidths must be in [1, 8]");
    }
    if (const Value* w = e.find("weight")) {
      m.weight = parse_double(context, *w, "weight");
      if (m.weight <= 0.0) fail(context, "mix weights must be positive");
    }
    mix.push_back(m);
  }
  return mix;
}

workload::GeneratorSpec parse_search_workload(const std::string& context,
                                              const Value& v) {
  if (!v.is_object()) fail(context, "\"workload\" must be an object");
  check_keys(context, v, {"generator", "depth", "width", "bitwidth_policy"});
  workload::GeneratorSpec spec;
  const std::string family = parse_string(
      context, require(context, v, "generator"), "generator");
  spec.family = workload::generator_tokens()[match_token(
      context, "workload generator", family, workload::generator_tokens())];
  if (const Value* f = v.find("depth")) {
    spec.depth = parse_int(context, *f, "depth");
    if (spec.depth < 1) fail(context, "\"depth\" must be positive");
  }
  if (const Value* f = v.find("width")) {
    spec.width = parse_int(context, *f, "width");
    if (spec.width < 1) fail(context, "\"width\" must be positive");
  }
  if (const Value* f = v.find("bitwidth_policy")) {
    spec.bitwidth_policy = parse_string(context, *f, "bitwidth_policy");
    if (!workload::is_bitwidth_policy(spec.bitwidth_policy)) {
      fail(context, "unknown bitwidth_policy \"" + spec.bitwidth_policy +
                        "\"; expected \"uniform:<1..8>\" or "
                        "\"first_last_8\"");
    }
  }
  // Validate the resolved knobs now (range errors carry search context).
  try {
    (void)workload::generated_name(spec);
  } catch (const Error& e) {
    fail(context, e.what());
  }
  return spec;
}

SearchSpec parse_search(const Value& v,
                        const std::vector<std::string>& workload_names) {
  const std::string context = "search";
  if (!v.is_object()) fail("", "\"search\" must be an object");
  check_keys(context, v,
             {"backend", "platform", "memory", "network", "workload",
              "bitwidth_mode", "bitwidth_override", "space", "strategy",
              "budget", "seed", "restarts", "population", "objectives",
              "constraints", "mix"});
  SearchSpec s;
  if (const Value* f = v.find("backend")) {
    s.backend = parse_string(context, *f, "backend");
    if (s.backend.empty()) fail(context, "backend key must be non-empty");
  }
  if (const Value* f = v.find("platform")) {
    const std::string p = parse_string(context, *f, "platform");
    s.platform = platform_tokens()[match_token(context, "platform", p,
                                               platform_tokens())];
  }
  if (const Value* f = v.find("memory")) {
    const std::string m = parse_string(context, *f, "memory");
    s.memory =
        memory_tokens()[match_token(context, "memory", m, memory_tokens())];
  }
  if (const Value* f = v.find("workload")) {
    if (v.find("network") != nullptr) {
      fail(context, "\"network\" and \"workload\" are mutually exclusive "
                    "(the workload generator is the network)");
    }
    if (v.find("bitwidth_mode") != nullptr) {
      fail(context, "\"bitwidth_mode\" does not apply to a \"workload\" "
                    "generator (its bitwidth_policy owns the bits)");
    }
    if (v.find("bitwidth_override") != nullptr) {
      // net_* axes regenerate the network per candidate, which would
      // silently drop a post-hoc override; the generator's
      // bitwidth_policy (and the net_bits axis) own the bits instead.
      fail(context, "\"bitwidth_override\" does not apply to a "
                    "\"workload\" generator (set its bitwidth_policy, or "
                    "sweep \"net_bits\")");
    }
    s.workload = parse_search_workload(context, *f);
  } else {
    const std::string n =
        parse_string(context, require(context, v, "network"), "network");
    const std::vector<std::string> resolved =
        resolve_networks(context, {n}, workload_names);
    if (resolved.size() != 1) {
      fail(context, "\"network\" must name a single network (not \"" + n +
                        "\")");
    }
    s.network = resolved.front();
    // Same trap the grid path rejects: the omitted-key default mode
    // (homogeneous8b) would rewrite a custom workload's declared
    // bitwidths to 8/8 — make the author choose.
    if (v.find("bitwidth_mode") == nullptr) {
      const std::string norm = normalize_token(s.network);
      const auto& builtins = workload::NetworkRegistry::builtin_tokens();
      const bool builtin = std::any_of(
          builtins.begin(), builtins.end(), [&](const std::string& b) {
            return normalize_token(b) == norm;
          });
      if (!builtin) {
        fail(context,
             "network \"" + s.network + "\" has declared bitwidths, but "
             "the search omits \"bitwidth_mode\" and the default "
             "(homogeneous8b) would rewrite every layer to 8-bit; set "
             "\"bitwidth_mode\" to \"heterogeneous\" to keep the "
             "declared bits (or \"homogeneous8b\" to mean it)");
      }
    }
  }
  if (const Value* f = v.find("bitwidth_mode")) {
    const std::string m = parse_string(context, *f, "bitwidth_mode");
    s.bitwidth_mode =
        bitwidth_mode_tokens()[match_token(context, "bitwidth mode", m, bitwidth_mode_tokens())];
  }
  if (const Value* f = v.find("bitwidth_override")) {
    s.bitwidth_override = parse_bitwidth_override(context, *f);
  }
  s.space = parse_search_space(context, require(context, v, "space"));
  for (const dse::Axis& a : s.space) {
    const bool net_axis =
        a.knob == dse::Knob::kNetDepth || a.knob == dse::Knob::kNetWidth ||
        a.knob == dse::Knob::kNetBits;
    if (!net_axis) continue;
    if (!s.workload) {
      fail(context, std::string("knob \"") + dse::to_string(a.knob) +
                        "\" needs a \"workload\" generator block");
    }
    // Range-check every axis value against the family's own caps now —
    // a bad value must fail --validate, not abort the search mid-run
    // after budget was spent. generated_name runs the generator's full
    // knob validation without building a network.
    for (double value : a.values) {
      workload::GeneratorSpec probe = *s.workload;
      const int i = static_cast<int>(std::llround(value));
      if (i < 1) {
        fail(context, std::string("knob \"") + dse::to_string(a.knob) +
                          "\" values must be positive, got " +
                          std::to_string(i));
      }
      switch (a.knob) {
        case dse::Knob::kNetDepth: probe.depth = i; break;
        case dse::Knob::kNetWidth: probe.width = i; break;
        default: probe.bitwidth_policy = "uniform:" + std::to_string(i);
      }
      try {
        (void)workload::generated_name(probe);
      } catch (const Error& e) {
        fail(context, std::string("knob \"") + dse::to_string(a.knob) +
                          "\" value " + std::to_string(i) + ": " + e.what());
      }
    }
  }
  if (const Value* f = v.find("strategy")) {
    const std::string t = parse_string(context, *f, "strategy");
    s.strategy = dse::strategy_tokens()[match_token(
        context, "strategy", t, dse::strategy_tokens())];
  }
  if (const Value* f = v.find("budget")) {
    const int b = parse_int(context, *f, "budget");
    if (b <= 0) fail(context, "\"budget\" must be positive");
    s.budget = static_cast<std::size_t>(b);
  }
  if (s.budget == 0 && (s.strategy == "random" || s.strategy == "annealing" ||
                        s.strategy == "genetic")) {
    fail(context, "strategy \"" + s.strategy +
                      "\" requires a \"budget\" (its proposal count)");
  }
  if (const Value* f = v.find("seed")) {
    if (!f->is_int() || f->as_int() < 0) {
      fail(context, "\"seed\" must be a non-negative integer");
    }
    s.seed = static_cast<std::uint64_t>(f->as_int());
  }
  if (const Value* f = v.find("restarts")) {
    const int r = parse_int(context, *f, "restarts");
    if (r <= 0) fail(context, "\"restarts\" must be positive");
    s.restarts = static_cast<std::size_t>(r);
  }
  if (const Value* f = v.find("population")) {
    const int p = parse_int(context, *f, "population");
    if (p < 2) fail(context, "\"population\" must be at least 2");
    s.population = static_cast<std::size_t>(p);
  }
  if (const Value* f = v.find("objectives")) {
    s.objectives = parse_objectives(context, *f);
  }
  if (const Value* f = v.find("constraints")) {
    s.constraints = parse_constraints(context, *f);
  }
  if (const Value* f = v.find("mix")) {
    s.mix = parse_mix(context, *f);
  }
  return s;
}

}  // namespace

bool PlatformOverrides::any() const {
  return rows || cols || scratchpad_bytes || frequency_hz || time_chunk ||
         batch_size || static_core_mw || cvu_slice_bits || cvu_max_bits ||
         cvu_lanes;
}

bool MemoryOverrides::any() const {
  return bandwidth_gbps || energy_pj_per_bit || startup_latency_ns ||
         background_power_w;
}

const std::vector<std::string>& network_tokens() {
  return workload::NetworkRegistry::builtin_tokens();
}

const std::vector<std::string>& platform_tokens() {
  static const std::vector<std::string> tokens{"tpu_like", "bitfusion",
                                               "bpvec"};
  return tokens;
}

const std::vector<std::string>& memory_tokens() {
  static const std::vector<std::string> tokens{"ddr4", "hbm2"};
  return tokens;
}

const std::vector<std::string>& bitwidth_mode_tokens() {
  static const std::vector<std::string> tokens{"homogeneous8b",
                                               "heterogeneous"};
  return tokens;
}

Manifest parse_manifest(const Value& root, const std::string& base_dir) {
  if (!root.is_object()) fail("", "document must be an object");
  check_keys("", root, {"name", "description", "workloads", "grids",
                        "search"});
  Manifest m;
  m.name = parse_string("", require("", root, "name"), "name");
  if (m.name.empty()) fail("", "\"name\" must be non-empty");
  if (const Value* d = root.find("description")) {
    m.description = parse_string("", *d, "description");
  }
  // Workloads first: grid/search network tokens may name them.
  if (const Value* workloads = root.find("workloads")) {
    m.workloads = parse_workloads(*workloads, base_dir);
  }
  const std::vector<std::string> workload_names = workload_names_of(m);
  if (const Value* grids = root.find("grids")) {
    if (!grids->is_array() || grids->as_array().empty()) {
      fail("", "\"grids\" must be a non-empty array");
    }
    for (std::size_t i = 0; i < grids->as_array().size(); ++i) {
      m.grids.push_back(parse_grid(grid_context(i), grids->as_array()[i],
                                   workload_names));
    }
  }
  if (const Value* search = root.find("search")) {
    m.search = parse_search(*search, workload_names);
  }
  if (m.grids.empty() && !m.search) {
    fail("", "manifest needs \"grids\", a \"search\" block, or both");
  }
  return m;
}

Manifest load_manifest(const std::string& path) {
  // Relative workload "file" paths resolve against the manifest's own
  // directory, so a manifest is runnable from any working directory.
  const std::size_t slash = path.find_last_of('/');
  const std::string base_dir =
      slash == std::string::npos ? "" : path.substr(0, slash);
  try {
    return parse_manifest(common::json::parse_file(path), base_dir);
  } catch (const Error& e) {
    const std::string what = e.what();
    if (what.find(path) != std::string::npos) throw;  // parse error: has path
    throw Error(path + ": " + what);
  }
}

common::json::Value to_json(const SearchSpec& s) {
  Value sv = Value::object();
  sv.set("backend", s.backend);
  sv.set("platform", s.platform);
  sv.set("memory", s.memory);
  if (s.workload) {
    Value wv = Value::object();
    wv.set("generator", s.workload->family);
    if (s.workload->depth > 0) wv.set("depth", s.workload->depth);
    if (s.workload->width > 0) wv.set("width", s.workload->width);
    if (!s.workload->bitwidth_policy.empty()) {
      wv.set("bitwidth_policy", s.workload->bitwidth_policy);
    }
    sv.set("workload", std::move(wv));
  } else {
    sv.set("network", s.network);
    sv.set("bitwidth_mode", s.bitwidth_mode);
  }
  if (s.bitwidth_override) {
    Value o = Value::object();
    o.set("x_bits", s.bitwidth_override->x_bits);
    o.set("w_bits", s.bitwidth_override->w_bits);
    sv.set("bitwidth_override", std::move(o));
  }
  Value space = Value::object();
  for (const dse::Axis& axis : s.space) {
    Value values = Value::array();
    for (double v : axis.values) {
      if (dse::knob_is_integer(axis.knob)) {
        values.push_back(static_cast<std::int64_t>(std::llround(v)));
      } else {
        values.push_back(v);
      }
    }
    space.set(dse::to_string(axis.knob), std::move(values));
  }
  sv.set("space", std::move(space));
  sv.set("strategy", s.strategy);
  if (s.budget > 0) sv.set("budget", static_cast<std::int64_t>(s.budget));
  sv.set("seed", static_cast<std::int64_t>(s.seed));
  sv.set("restarts", static_cast<std::int64_t>(s.restarts));
  // Only genetic reads "population" — emitting it unconditionally would
  // churn the echoed spec in every non-genetic search report.
  if (s.strategy == "genetic") {
    sv.set("population", static_cast<std::int64_t>(s.population));
  }
  Value objectives = Value::array();
  for (const dse::Objective& o : s.objectives) {
    Value ov = Value::object();
    ov.set("metric", dse::to_string(o.metric));
    ov.set("maximize", o.maximize);
    objectives.push_back(std::move(ov));
  }
  sv.set("objectives", std::move(objectives));
  if (s.constraints.any()) {
    Value cv = Value::object();
    const dse::Constraints& c = s.constraints;
    if (c.min_utilization) cv.set("min_utilization", *c.min_utilization);
    if (c.max_power_w) cv.set("max_power_w", *c.max_power_w);
    if (c.max_energy_j) cv.set("max_energy_j", *c.max_energy_j);
    if (c.max_runtime_s) cv.set("max_runtime_s", *c.max_runtime_s);
    if (c.max_cycles) cv.set("max_cycles", *c.max_cycles);
    sv.set("constraints", std::move(cv));
  }
  if (!s.mix.empty()) {
    Value mix = Value::array();
    for (const core::BitwidthMixEntry& m : s.mix) {
      Value mv = Value::object();
      mv.set("x_bits", m.x_bits);
      mv.set("w_bits", m.w_bits);
      mv.set("weight", m.weight);
      mix.push_back(std::move(mv));
    }
    sv.set("mix", std::move(mix));
  }
  return sv;
}

common::json::Value to_json(const Manifest& manifest) {
  Value root = Value::object();
  root.set("name", manifest.name);
  if (!manifest.description.empty()) {
    root.set("description", manifest.description);
  }
  if (!manifest.workloads.empty()) {
    Value workloads = Value::array();
    for (const WorkloadSpec& w : manifest.workloads) {
      Value wv = Value::object();
      switch (w.kind) {
        case WorkloadSpec::Kind::kFile:
          wv.set("file", w.file);
          break;
        case WorkloadSpec::Kind::kInline:
          wv.set("network", workload::to_json(w.prototypes.front()));
          break;
        case WorkloadSpec::Kind::kGenerator: {
          wv.set("generator", w.generator);
          auto int_list = [](const std::vector<int>& v) {
            Value a = Value::array();
            for (int i : v) a.push_back(i);
            return a;
          };
          if (!w.depths.empty()) wv.set("depth", int_list(w.depths));
          if (!w.widths.empty()) wv.set("width", int_list(w.widths));
          if (!w.policies.empty()) {
            Value a = Value::array();
            for (const std::string& p : w.policies) a.push_back(p);
            wv.set("bitwidth_policy", std::move(a));
          }
          break;
        }
      }
      workloads.push_back(std::move(wv));
    }
    root.set("workloads", std::move(workloads));
  }
  Value grids = Value::array();
  for (const GridSpec& g : manifest.grids) {
    Value grid = Value::object();
    auto string_list = [](const std::vector<std::string>& v) {
      Value a = Value::array();
      for (const std::string& s : v) a.push_back(s);
      return a;
    };
    grid.set("backends", string_list(g.backends));
    grid.set("platforms", string_list(g.platforms));
    grid.set("memories", string_list(g.memories));
    grid.set("networks", string_list(g.networks));
    grid.set("bitwidth_modes", string_list(g.bitwidth_modes));
    if (g.platform_overrides.any()) {
      Value o = Value::object();
      const PlatformOverrides& p = g.platform_overrides;
      if (p.rows) o.set("rows", *p.rows);
      if (p.cols) o.set("cols", *p.cols);
      if (p.scratchpad_bytes) o.set("scratchpad_bytes", *p.scratchpad_bytes);
      if (p.frequency_hz) o.set("frequency_hz", *p.frequency_hz);
      if (p.time_chunk) o.set("time_chunk", *p.time_chunk);
      if (p.batch_size) o.set("batch_size", *p.batch_size);
      if (p.static_core_mw) o.set("static_core_mw", *p.static_core_mw);
      if (p.cvu_slice_bits) o.set("cvu_slice_bits", *p.cvu_slice_bits);
      if (p.cvu_max_bits) o.set("cvu_max_bits", *p.cvu_max_bits);
      if (p.cvu_lanes) o.set("cvu_lanes", *p.cvu_lanes);
      grid.set("platform_overrides", std::move(o));
    }
    if (g.memory_overrides.any()) {
      Value o = Value::object();
      const MemoryOverrides& m = g.memory_overrides;
      if (m.bandwidth_gbps) o.set("bandwidth_gbps", *m.bandwidth_gbps);
      if (m.energy_pj_per_bit) {
        o.set("energy_pj_per_bit", *m.energy_pj_per_bit);
      }
      if (m.startup_latency_ns) {
        o.set("startup_latency_ns", *m.startup_latency_ns);
      }
      if (m.background_power_w) {
        o.set("background_power_w", *m.background_power_w);
      }
      grid.set("memory_overrides", std::move(o));
    }
    if (g.bitwidth_override) {
      Value o = Value::object();
      o.set("x_bits", g.bitwidth_override->x_bits);
      o.set("w_bits", g.bitwidth_override->w_bits);
      grid.set("bitwidth_override", std::move(o));
    }
    if (!g.id_suffix.empty()) grid.set("id_suffix", g.id_suffix);
    grids.push_back(std::move(grid));
  }
  if (!manifest.grids.empty()) root.set("grids", std::move(grids));
  if (manifest.search) root.set("search", to_json(*manifest.search));
  return root;
}

std::vector<std::string> register_workloads(const Manifest& manifest) {
  auto& registry = workload::NetworkRegistry::instance();
  std::vector<std::string> names;
  for (std::size_t wi = 0; wi < manifest.workloads.size(); ++wi) {
    const WorkloadSpec& w = manifest.workloads[wi];
    for (std::size_t i = 0; i < w.prototypes.size(); ++i) {
      try {
        registry.register_network(w.names[i], w.prototypes[i]);
      } catch (const Error& e) {
        fail(workload_context(wi), e.what());
      }
      names.push_back(w.names[i]);
    }
  }
  return names;
}

std::vector<engine::Scenario> expand(const Manifest& manifest) {
  const std::vector<std::string> workload_names =
      register_workloads(manifest);
  auto& registry = backend::BackendRegistry::instance();
  auto& networks = workload::NetworkRegistry::instance();
  std::vector<engine::Scenario> scenarios;
  for (std::size_t gi = 0; gi < manifest.grids.size(); ++gi) {
    const GridSpec& g = manifest.grids[gi];
    const std::string context = grid_context(gi);

    for (const std::string& b : g.backends) {
      if (!registry.contains(b)) {
        fail(context, "unknown backend \"" + b + "\"; registered backends: " +
                          quoted_token_list(registry.keys()));
      }
    }

    // Resolve each axis once; the loops below only combine.
    std::vector<sim::AcceleratorConfig> platforms;
    for (const std::string& p : g.platforms) {
      platforms.push_back(apply_overrides(
          context,
          platform_config_from_index(
              match_token(context, "platform", p, platform_tokens())),
          g.platform_overrides));
    }
    std::vector<arch::DramModel> memories;
    for (const std::string& m : g.memories) {
      memories.push_back(apply_overrides(
          context,
          memory_from_index(match_token(context, "memory", m, memory_tokens())),
          g.memory_overrides));
    }
    const std::vector<std::string> net_tokens =
        resolve_networks(context, g.networks, workload_names);

    for (const std::string& mode_name : g.bitwidth_modes) {
      const dnn::BitwidthMode mode = mode_from_index(
          match_token(context, "bitwidth mode", mode_name, bitwidth_mode_tokens()));
      for (const std::string& net_token : net_tokens) {
        dnn::Network net = networks.create(net_token, mode);
        if (g.bitwidth_override) {
          apply_bitwidth_override(net, *g.bitwidth_override);
        }
        for (const sim::AcceleratorConfig& platform : platforms) {
          for (const arch::DramModel& memory : memories) {
            for (const std::string& backend : g.backends) {
              engine::Scenario s = engine::make_scenario(
                  backend, platform, memory, net, /*id=*/"");
              s.id += g.id_suffix;
              scenarios.push_back(std::move(s));
            }
          }
        }
      }
    }
  }
  return scenarios;
}

std::size_t scenario_count(const Manifest& manifest) {
  std::size_t total = 0;
  const std::vector<std::string> workload_names = workload_names_of(manifest);
  for (std::size_t gi = 0; gi < manifest.grids.size(); ++gi) {
    const GridSpec& g = manifest.grids[gi];
    const std::size_t nets =
        resolve_networks(grid_context(gi), g.networks, workload_names).size();
    total += g.bitwidth_modes.size() * nets * g.platforms.size() *
             g.memories.size() * g.backends.size();
  }
  return total;
}

dse::ParamSpace search_space(const SearchSpec& spec) {
  dse::ParamSpace space;
  try {
    for (const dse::Axis& a : spec.space) space.add_axis(a.knob, a.values);
  } catch (const Error& e) {
    fail("search", e.what());
  }
  return space;
}

engine::Scenario search_base_scenario(const SearchSpec& spec) {
  const std::string context = "search";
  auto& registry = backend::BackendRegistry::instance();
  if (!registry.contains(spec.backend)) {
    fail(context, "unknown backend \"" + spec.backend +
                      "\"; registered backends: " +
                      quoted_token_list(registry.keys()));
  }
  sim::AcceleratorConfig config = platform_config_from_index(
      match_token(context, "platform", spec.platform, platform_tokens()));
  arch::DramModel memory = memory_from_index(
      match_token(context, "memory", spec.memory, memory_tokens()));
  dnn::Network net = [&] {
    if (spec.workload) {
      // The generator's bitwidth_policy owns the bits; no mode applies.
      try {
        return workload::generate(*spec.workload);
      } catch (const Error& e) {
        fail(context, e.what());
      }
    }
    const dnn::BitwidthMode mode = mode_from_index(match_token(
        context, "bitwidth mode", spec.bitwidth_mode,
        bitwidth_mode_tokens()));
    try {
      return workload::NetworkRegistry::instance().create(spec.network,
                                                          mode);
    } catch (const Error& e) {
      fail(context, e.what());
    }
  }();
  if (spec.bitwidth_override) {
    apply_bitwidth_override(net, *spec.bitwidth_override);
  }
  return engine::make_scenario(spec.backend, std::move(config),
                               std::move(memory), std::move(net), /*id=*/"");
}

}  // namespace bpvec::cli
