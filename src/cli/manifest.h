// Scenario manifests — the declarative grid format behind `bpvec_run`.
//
// The paper's evaluation is a pile of platform × network × memory ×
// backend grids (Figs. 5–9); before this existed, every grid was
// hand-written C++ in bench/. A manifest describes such a grid as data:
//
//   {
//     "name": "fig5",
//     "description": "BPVeC vs TPU-like, DDR4, homogeneous 8-bit",
//     "workloads": [                              // optional, see below
//       {"file": "nets/my_net.json"},
//       {"network": { ...workload schema... }},
//       {"generator": "mlp_family", "depth": [4, 8], "width": [1024]}
//     ],
//     "grids": [
//       {
//         "backends": ["bpvec"],                  // optional, default
//         "platforms": ["tpu_like", "bpvec"],
//         "memories": ["ddr4"],
//         "networks": ["all"],                    // see the three kinds below
//         "bitwidth_modes": ["homogeneous8b"],    // optional, default
//         "platform_overrides": {"batch_size": 4},      // optional
//         "memory_overrides": {"bandwidth_gbps": 32.0}, // optional
//         "bitwidth_override": {"x_bits": 4, "w_bits": 4},  // optional
//         "id_suffix": " @bw32"                   // optional
//       }
//     ]
//   }
//
// expand() turns each grid into its cross product of engine::Scenarios
// (loop order: bitwidth modes → networks → platforms → memories →
// backends — networks outermost matches the bench binaries' batch
// layout, so a manifest reproducing a figure yields the identical batch)
// and concatenates the grids in manifest order. Non-cross-product
// figures (Fig. 6's three platform×memory columns) are several grids.
//
// Validation is strict and failure messages name the offending key or
// value and what was expected — manifests are hand-written and the CLI
// is the first thing a new user touches. Unknown object keys are errors
// (they are silent typos otherwise). Backend keys are validated against
// the live BackendRegistry at expansion time, so custom registered
// backends work without touching this file.
//
// The "workloads" block declares networks the manifest brings along,
// in three source kinds (see src/workload/):
//   * file       {"file": "nets/my_net.json"} — a workload-schema
//                document, resolved relative to the manifest's
//                directory; registered under the document's "name".
//   * inline     {"network": { ...workload schema... }} — the same
//                schema embedded in the manifest.
//   * generator  {"generator": "mlp_family", "depth": [4, 8],
//                 "width": [1024], "bitwidth_policy": ["uniform:4"]} —
//                the cross product of the knob lists (scalars allowed),
//                one registered network per combination, named by
//                workload::generated_name ("mlp_family-d4-w1024-u4").
// Declared workloads register into the NetworkRegistry when the
// manifest expands (idempotently — re-expanding is a no-op; a name
// collision with different content is an error). A grid's "networks"
// axis then accepts any registered token, plus two meta tokens: "all"
// (the six Table I zoo models) and "workloads" (every network this
// manifest's workloads block declares, in declaration order).
// A manifest may also (or instead) carry a "search" block — a declarative
// design-space search the `bpvec_run search` subcommand executes through
// the dse subsystem:
//
//   {
//     "name": "dse_smoke",
//     "search": {
//       "backend": "bpvec",                    // optional, default
//       "platform": "bpvec",                   // optional, default
//       "memory": "ddr4",                      // optional, default
//       "network": "alexnet",                  // required unless "workload"
//       "workload": {"generator": "mlp_family", // generated base network;
//                    "depth": 4, "width": 1024, // excludes "network" and
//                    "bitwidth_policy": "uniform:4"}, // "bitwidth_mode"
//       "bitwidth_mode": "heterogeneous",      // optional
//       "space": {                             // required: knob → values
//         "cvu_slice_bits": [1, 2, 4],
//         "cvu_lanes": [4, 16],
//         "batch_size": [1, 4]
//       },
//       "strategy": "grid",        // grid | random | hill_climb |
//                                  //   annealing | genetic
//       "budget": 64,              // eval cap (random/annealing/genetic:
//                                  //   required)
//       "seed": 42,                            // optional
//       "restarts": 4,                         // hill_climb/annealing starts
//       "population": 16,                      // genetic generation size
//       "objectives": ["cycles", "energy"],    // or {"metric","maximize"}
//       "constraints": {"min_utilization": 0.5},
//       "mix": [{"x_bits": 4, "w_bits": 4, "weight": 0.6}]  // optional
//     }
//   }
//
// Knob tokens are the dse::Knob tokens (they match the grid override
// keys); axis order in the manifest is the space's canonical axis order.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/dse/search.h"
#include "src/engine/scenario.h"
#include "src/workload/generators.h"

namespace bpvec::cli {

/// Platform-knob overrides applied to every platform cell of one grid
/// (after the named platform's Table II factory runs). Unset fields keep
/// the platform's value. The overridden config is re-validated.
struct PlatformOverrides {
  std::optional<int> rows;
  std::optional<int> cols;
  std::optional<std::int64_t> scratchpad_bytes;
  std::optional<double> frequency_hz;
  std::optional<int> time_chunk;
  std::optional<int> batch_size;
  std::optional<double> static_core_mw;
  std::optional<int> cvu_slice_bits;
  std::optional<int> cvu_max_bits;
  std::optional<int> cvu_lanes;

  bool any() const;
};

/// Memory-knob overrides, same contract as PlatformOverrides.
struct MemoryOverrides {
  std::optional<double> bandwidth_gbps;
  std::optional<double> energy_pj_per_bit;
  std::optional<double> startup_latency_ns;
  std::optional<double> background_power_w;

  bool any() const;
};

/// Forces every compute layer of every network in the grid to these
/// operand bitwidths (pool layers are untouched). Sits on top of the
/// grid's bitwidth_modes — useful for "what if everything were 2-bit"
/// sweeps the Table I assignments don't cover.
struct BitwidthOverride {
  int x_bits = 8;
  int w_bits = 8;
};

/// One entry of the manifest's "workloads" block, parsed eagerly: the
/// network prototypes (declared bitwidths) and the names they register
/// under are resolved at parse time, so grid validation can see them
/// and scenario_count stays cheap.
struct WorkloadSpec {
  enum class Kind { kFile, kInline, kGenerator };
  Kind kind = Kind::kFile;
  std::string file;                  // kFile: the path as written
  std::string generator;             // kGenerator: canonical family token
  // kGenerator knob lists as written (empty = family default); the
  // entry's networks are their cross product, depth-outermost.
  std::vector<int> depths, widths;
  std::vector<std::string> policies;
  // Resolved at parse, 1:1: names[i] registers prototypes[i].
  std::vector<std::string> names;
  std::vector<dnn::Network> prototypes;
};

struct GridSpec {
  std::vector<std::string> backends{"bpvec"};
  std::vector<std::string> platforms;       // tpu_like | bitfusion | bpvec
  std::vector<std::string> memories;        // ddr4 | hbm2
  /// NetworkRegistry tokens (zoo builtins, user registrations, this
  /// manifest's workloads), or the meta tokens "all" (the Table I zoo)
  /// / "workloads" (every network the manifest's workloads block
  /// declares).
  std::vector<std::string> networks;
  std::vector<std::string> bitwidth_modes{"homogeneous8b"};
  PlatformOverrides platform_overrides;
  MemoryOverrides memory_overrides;
  std::optional<BitwidthOverride> bitwidth_override;
  /// Appended to every generated scenario id (default ids are
  /// <backend>:<platform>/<network>/<memory>, which collide between two
  /// grids that differ only in overrides).
  std::string id_suffix;
};

/// The "search" block: one base scenario plus a typed knob space and the
/// strategy/budget/objectives/constraints that drive the dse subsystem.
struct SearchSpec {
  std::string backend{"bpvec"};
  std::string platform{"bpvec"};           // canonical platform token
  std::string memory{"ddr4"};              // canonical memory token
  std::string network;                     // canonical network token
  /// Workload generator ("workload" block): the base network comes from
  /// workload::generate and the space may sweep net_depth / net_width /
  /// net_bits axes through it. Mutually exclusive with "network",
  /// "bitwidth_mode", and "bitwidth_override" (the generator's
  /// bitwidth_policy — and the net_bits axis — own the bits).
  std::optional<workload::GeneratorSpec> workload;
  std::string bitwidth_mode{"homogeneous8b"};
  std::optional<BitwidthOverride> bitwidth_override;
  std::vector<dse::Axis> space;            // manifest order == axis order
  std::string strategy{"grid"};            // dse::strategy_tokens()
  std::size_t budget = 0;                  // 0 = strategy decides
  std::size_t restarts = 4;                // hill_climb starts / annealing chains
  std::size_t population = 16;             // genetic generation size
  std::uint64_t seed = 42;
  std::vector<dse::Objective> objectives{  // default: cycles + energy
      {dse::Metric::kCycles, false},
      {dse::Metric::kEnergy, false}};
  dse::Constraints constraints;
  std::vector<core::BitwidthMixEntry> mix;  // empty = derive from network
};

struct Manifest {
  std::string name;         // report label; required, non-empty
  std::string description;  // optional free text
  std::vector<WorkloadSpec> workloads;      // optional declared networks
  std::vector<GridSpec> grids;              // may be empty when search is set
  std::optional<SearchSpec> search;
};

/// Parses and validates a manifest document. Throws bpvec::Error with
/// the grid index and offending key/value on any schema violation.
/// `base_dir` resolves relative workload "file" paths (load_manifest
/// passes the manifest's directory; empty = the working directory).
Manifest parse_manifest(const common::json::Value& root,
                        const std::string& base_dir = "");

/// parse_manifest of a file (errors include the path).
Manifest load_manifest(const std::string& path);

/// Inverse of parse_manifest: a JSON document that parses back to an
/// equivalent manifest (defaulted fields are emitted explicitly;
/// omitted overrides are omitted). Lets tools generate manifests
/// programmatically.
common::json::Value to_json(const Manifest& manifest);

/// The search block alone, same round-trip contract (also the "search"
/// echo inside search-mode reports).
common::json::Value to_json(const SearchSpec& spec);

/// Registers the manifest's declared workloads into the process-wide
/// NetworkRegistry (idempotent for identical content — expand() calls
/// this on every run) and returns the registered names in declaration
/// order. Throws bpvec::Error on a name collision with different
/// content.
std::vector<std::string> register_workloads(const Manifest& manifest);

/// Expands every grid into scenarios, in the documented deterministic
/// order (registering declared workloads first). Validates backend keys
/// against the BackendRegistry and the overridden configs; throws
/// bpvec::Error naming the grid on failure.
std::vector<engine::Scenario> expand(const Manifest& manifest);

/// Number of scenarios expand() would produce (cheap — no networks are
/// instantiated or registered).
std::size_t scenario_count(const Manifest& manifest);

/// The canonical zoo tokens ("alexnet", …, in Table I order) that "all"
/// expands to. Network/platform/memory tokens are matched
/// case-insensitively, ignoring '-' and '_' (so "ResNet-18" == "resnet18").
const std::vector<std::string>& network_tokens();

/// Canonical vocabularies for the other grid axes (what `bpvec_run
/// list` prints and error messages cite).
const std::vector<std::string>& platform_tokens();
const std::vector<std::string>& memory_tokens();
const std::vector<std::string>& bitwidth_mode_tokens();

/// The search block's ParamSpace (axes in manifest order, re-validated).
dse::ParamSpace search_space(const SearchSpec& spec);

/// The search block's base scenario: platform/memory/network resolved
/// exactly like grid expansion (bitwidth_override applied), backend
/// validated against the live BackendRegistry. A "workload" block
/// generates the base network instead of resolving a registry token
/// (declared manifest workloads must be registered first — the driver
/// calls register_workloads). Throws bpvec::Error.
engine::Scenario search_base_scenario(const SearchSpec& spec);

}  // namespace bpvec::cli
