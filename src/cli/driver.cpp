#include "src/cli/driver.h"

#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "src/common/error.h"
#include "src/common/table.h"

namespace bpvec::cli {

using common::json::Value;

namespace {

Value scenario_row(const engine::Scenario& scenario,
                   const sim::RunResult& r) {
  Value row = Value::object();
  row.set("id", scenario.id);
  row.set("backend", r.backend);
  row.set("platform", r.platform);
  row.set("network", r.network);
  row.set("memory", r.memory);
  row.set("total_cycles", r.total_cycles);
  row.set("total_macs", r.total_macs);
  row.set("runtime_s", r.runtime_s);
  row.set("energy_j", r.energy_j);
  row.set("average_power_w", r.average_power_w);
  row.set("gops_per_s", r.gops_per_s);
  row.set("gops_per_w", r.gops_per_w);
  return row;
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
  out.flush();
  if (!out.good()) throw Error("cannot write file: " + path);
}

void print_table(std::ostream& out,
                 const std::vector<engine::Scenario>& batch,
                 const std::vector<sim::RunResult>& results) {
  Table t;
  t.set_header({"Scenario", "Cycles", "Latency (ms)", "Energy (mJ)",
                "GOps/s", "GOps/W"});
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const sim::RunResult& r = results[i];
    t.add_row({batch[i].id, std::to_string(r.total_cycles),
               Table::num(r.runtime_s * 1e3, 3),
               Table::num(r.energy_j * 1e3, 3), Table::num(r.gops_per_s, 0),
               Table::num(r.gops_per_w, 0)});
  }
  out << t.to_string();
}

void print_csv(std::ostream& out,
               const std::vector<engine::Scenario>& batch,
               const std::vector<sim::RunResult>& results) {
  // Full-precision CSV (the table rounds for humans; this is for
  // plotting scripts).
  out << "id,backend,platform,network,memory,total_cycles,total_macs,"
         "runtime_s,energy_j,average_power_w,gops_per_s,gops_per_w\n";
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const sim::RunResult& r = results[i];
    std::string id = batch[i].id;
    for (char& c : id) {
      if (c == ',') c = ';';  // ids are free text; keep the CSV parsable
    }
    out << id << ',' << r.backend << ',' << r.platform << ',' << r.network
        << ',' << r.memory << ',' << r.total_cycles << ',' << r.total_macs
        << ',' << common::json::format_double(r.runtime_s) << ','
        << common::json::format_double(r.energy_j) << ','
        << common::json::format_double(r.average_power_w) << ','
        << common::json::format_double(r.gops_per_s) << ','
        << common::json::format_double(r.gops_per_w) << '\n';
  }
}

}  // namespace

Value build_report(const std::string& manifest_name,
                   const std::vector<engine::Scenario>& batch,
                   const std::vector<sim::RunResult>& results,
                   const engine::EngineStats& stats, bool include_stats) {
  BPVEC_CHECK(batch.size() == results.size());
  Value report = Value::object();
  report.set("manifest", manifest_name);
  report.set("scenario_count", batch.size());
  Value scenarios = Value::array();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    scenarios.push_back(scenario_row(batch[i], results[i]));
  }
  report.set("scenarios", std::move(scenarios));
  if (include_stats) report.set("stats", engine::to_json(stats));
  return report;
}

DriverResult run_manifest(const DriverOptions& options, std::ostream& out) {
  DriverResult result;
  result.manifest = load_manifest(options.manifest_path);
  result.scenarios = expand(result.manifest);

  engine::EngineOptions engine_options;
  engine_options.num_threads = options.threads;
  engine_options.disk_cache_dir = options.cache_dir;
  engine::SimEngine engine(engine_options);

  result.results = engine.run_batch(result.scenarios);
  result.stats = engine.stats();

  if (options.print_table) {
    out << "Manifest: " << result.manifest.name;
    if (!result.manifest.description.empty()) {
      out << " — " << result.manifest.description;
    }
    out << "\n" << result.scenarios.size() << " scenarios ("
        << result.stats.simulations_run << " simulated, "
        << result.stats.cache_hits << " memo hits, "
        << result.stats.disk_hits << " disk hits)\n\n";
    print_table(out, result.scenarios, result.results);
  }
  if (options.print_csv) {
    print_csv(out, result.scenarios, result.results);
  }

  result.report =
      build_report(result.manifest.name, result.scenarios, result.results,
                   result.stats, !options.deterministic_report);
  if (options.write_report) {
    const std::string path =
        options.report_path.empty()
            ? "REPORT_" + result.manifest.name + ".json"
            : options.report_path;
    write_file(path, result.report.dump(1));
    if (options.print_table) out << "\n[bpvec_run] wrote " << path << "\n";
  }
  if (!options.stats_path.empty()) {
    write_file(options.stats_path, engine::to_json(result.stats).dump(1));
    if (options.print_table) {
      out << "[bpvec_run] wrote " << options.stats_path << "\n";
    }
  }
  return result;
}

std::string usage() {
  return
      "usage: bpvec_run <manifest.json> [options]\n"
      "\n"
      "Prices every scenario in the manifest through the batch engine and\n"
      "writes a machine-readable JSON report.\n"
      "\n"
      "options:\n"
      "  --cache-dir DIR    persistent result cache: scenarios priced in any\n"
      "                     earlier run (same build, same configs) are served\n"
      "                     from disk, bit-identically\n"
      "  --report FILE      report path (default REPORT_<name>.json)\n"
      "  --no-report        skip the JSON report\n"
      "  --stats-out FILE   write engine/disk-cache counters to FILE\n"
      "  --deterministic-report\n"
      "                     omit the run-dependent stats block from the\n"
      "                     report so identical configs yield byte-identical\n"
      "                     files (what the CI gate cmp's)\n"
      "  --threads N        worker threads (default: hardware concurrency)\n"
      "  --csv              print a full-precision scenario CSV to stdout\n"
      "  --no-table         skip the human-readable table\n"
      "  --help             this text\n";
}

int main_cli(int argc, const char* const* argv, std::ostream& out,
             std::ostream& err) {
  DriverOptions options;
  auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      throw Error(std::string(flag) + " requires a value");
    }
    return argv[++i];
  };
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        out << usage();
        return 0;
      } else if (arg == "--cache-dir") {
        options.cache_dir = need_value(i, "--cache-dir");
      } else if (arg == "--report") {
        options.report_path = need_value(i, "--report");
      } else if (arg == "--no-report") {
        options.write_report = false;
      } else if (arg == "--stats-out") {
        options.stats_path = need_value(i, "--stats-out");
      } else if (arg == "--deterministic-report") {
        options.deterministic_report = true;
      } else if (arg == "--threads") {
        options.threads = std::stoi(need_value(i, "--threads"));
      } else if (arg == "--csv") {
        options.print_csv = true;
      } else if (arg == "--no-table") {
        options.print_table = false;
      } else if (!arg.empty() && arg[0] == '-') {
        throw Error("unknown flag: " + arg);
      } else if (options.manifest_path.empty()) {
        options.manifest_path = arg;
      } else {
        throw Error("more than one manifest given: " + arg);
      }
    }
    if (options.manifest_path.empty()) {
      err << usage();
      return 2;
    }
    (void)run_manifest(options, out);
    return 0;
  } catch (const std::exception& e) {
    err << "bpvec_run: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace bpvec::cli
