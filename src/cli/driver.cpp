#include "src/cli/driver.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "src/backend/backend_registry.h"
#include "src/common/error.h"
#include "src/common/table.h"
#include "src/workload/generators.h"
#include "src/workload/network_registry.h"
#include "src/workload/schema.h"

namespace bpvec::cli {

using common::json::Value;

namespace {

Value scenario_row(const engine::Scenario& scenario,
                   const sim::RunResult& r) {
  Value row = Value::object();
  row.set("id", scenario.id);
  row.set("backend", r.backend);
  row.set("platform", r.platform);
  row.set("network", r.network);
  row.set("memory", r.memory);
  row.set("total_cycles", r.total_cycles);
  row.set("total_macs", r.total_macs);
  row.set("runtime_s", r.runtime_s);
  row.set("energy_j", r.energy_j);
  row.set("average_power_w", r.average_power_w);
  row.set("gops_per_s", r.gops_per_s);
  row.set("gops_per_w", r.gops_per_w);
  // Measured fields exist only for backends that execute (the functional
  // backend's packed probes); modeled-only rows keep the historical
  // shape, so reports from manifests without functional scenarios stay
  // byte-identical across this change (the CI golden gate relies on it).
  if (r.measured_macs > 0) {
    row.set("measured_wall_s", r.measured_wall_s);
    row.set("measured_macs", r.measured_macs);
  }
  return row;
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
  out.flush();
  if (!out.good()) throw Error("cannot write file: " + path);
}

void print_table(std::ostream& out,
                 const std::vector<engine::Scenario>& batch,
                 const std::vector<sim::RunResult>& results) {
  // The measured column appears only when some backend in the batch
  // actually executed layers (functional scenarios); modeled-only
  // batches keep the historical table shape.
  bool any_measured = false;
  for (const sim::RunResult& r : results) {
    if (r.measured_macs > 0) any_measured = true;
  }
  Table t;
  std::vector<std::string> header{"Scenario",    "Cycles", "Latency (ms)",
                                  "Energy (mJ)", "GOps/s", "GOps/W"};
  if (any_measured) header.push_back("Measured (ms)");
  t.set_header(header);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const sim::RunResult& r = results[i];
    std::vector<std::string> row{
        batch[i].id,                       std::to_string(r.total_cycles),
        Table::num(r.runtime_s * 1e3, 3),  Table::num(r.energy_j * 1e3, 3),
        Table::num(r.gops_per_s, 0),       Table::num(r.gops_per_w, 0)};
    if (any_measured) {
      row.push_back(r.measured_macs > 0
                        ? Table::num(r.measured_wall_s * 1e3, 3)
                        : "-");
    }
    t.add_row(row);
  }
  out << t.to_string();
}

void print_csv(std::ostream& out,
               const std::vector<engine::Scenario>& batch,
               const std::vector<sim::RunResult>& results) {
  // Full-precision CSV (the table rounds for humans; this is for
  // plotting scripts).
  out << "id,backend,platform,network,memory,total_cycles,total_macs,"
         "runtime_s,energy_j,average_power_w,gops_per_s,gops_per_w,"
         "measured_wall_s,measured_macs\n";
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const sim::RunResult& r = results[i];
    std::string id = batch[i].id;
    for (char& c : id) {
      if (c == ',') c = ';';  // ids are free text; keep the CSV parsable
    }
    out << id << ',' << r.backend << ',' << r.platform << ',' << r.network
        << ',' << r.memory << ',' << r.total_cycles << ',' << r.total_macs
        << ',' << common::json::format_double(r.runtime_s) << ','
        << common::json::format_double(r.energy_j) << ','
        << common::json::format_double(r.average_power_w) << ','
        << common::json::format_double(r.gops_per_s) << ','
        << common::json::format_double(r.gops_per_w) << ','
        << common::json::format_double(r.measured_wall_s) << ','
        << r.measured_macs << '\n';
  }
}

// ----- search mode ----------------------------------------------------

std::string metric_cell(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

/// Typed knob map for one candidate (integer knobs as JSON ints).
Value knobs_json(const dse::ParamSpace& space, const dse::Candidate& c) {
  Value knobs = Value::object();
  for (std::size_t a = 0; a < space.num_axes(); ++a) {
    const dse::Knob knob = space.axes()[a].knob;
    const double v = space.value(c, a);
    if (dse::knob_is_integer(knob)) {
      knobs.set(dse::to_string(knob),
                static_cast<std::int64_t>(std::llround(v)));
    } else {
      knobs.set(dse::to_string(knob), v);
    }
  }
  return knobs;
}

Value metrics_json(const dse::Evaluation& e) {
  BPVEC_CHECK(e.result != nullptr);
  const sim::RunResult& r = *e.result;
  Value m = Value::object();
  m.set("total_cycles", r.total_cycles);
  m.set("total_macs", r.total_macs);
  m.set("runtime_s", r.runtime_s);
  m.set("energy_j", r.energy_j);
  m.set("average_power_w", r.average_power_w);
  m.set("gops_per_s", r.gops_per_s);
  m.set("gops_per_w", r.gops_per_w);
  m.set("mac_power", e.design.cost.power_total());
  m.set("mac_area", e.design.cost.area_total());
  m.set("utilization", e.design.mix_utilization);
  m.set("core_area_um2", e.core_area_um2);
  return m;
}

void print_frontier_table(std::ostream& out, const dse::ParamSpace& space,
                          const dse::SearchOutcome& outcome) {
  Table t;
  std::vector<std::string> header{"#", "Candidate"};
  for (const dse::Objective& o : outcome.objectives) {
    header.push_back(std::string(dse::to_string(o.metric)) +
                     (o.maximize ? " (max)" : " (min)"));
  }
  t.set_header(header);
  const std::vector<dse::Evaluation> frontier = outcome.frontier.sorted();
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    std::vector<std::string> row{std::to_string(i + 1),
                                 space.label(frontier[i].candidate)};
    for (double v : frontier[i].objectives) row.push_back(metric_cell(v));
    t.add_row(row);
  }
  out << t.to_string();
}

void print_search_csv(std::ostream& out, const dse::ParamSpace& space,
                      const dse::SearchOutcome& outcome) {
  // Every evaluation (not just the frontier), full precision, proposal
  // order — the plotting-script view of the whole search.
  out << "id";
  for (const dse::Axis& a : space.axes()) out << ',' << dse::to_string(a.knob);
  out << ",feasible,total_cycles,total_macs,runtime_s,energy_j,"
         "average_power_w,gops_per_s,gops_per_w,mac_power,mac_area,"
         "utilization,core_area_um2\n";
  for (const dse::Evaluation& e : outcome.evaluations) {
    BPVEC_CHECK(e.result != nullptr);
    const sim::RunResult& r = *e.result;
    std::string id = e.id;
    for (char& c : id) {
      if (c == ',') c = ';';
    }
    out << id;
    for (std::size_t a = 0; a < space.num_axes(); ++a) {
      out << ','
          << dse::knob_value_string(space.axes()[a].knob,
                                    space.value(e.candidate, a));
    }
    out << ',' << (e.feasible ? 1 : 0) << ',' << r.total_cycles << ','
        << r.total_macs << ',' << common::json::format_double(r.runtime_s)
        << ',' << common::json::format_double(r.energy_j) << ','
        << common::json::format_double(r.average_power_w) << ','
        << common::json::format_double(r.gops_per_s) << ','
        << common::json::format_double(r.gops_per_w) << ','
        << common::json::format_double(e.design.cost.power_total()) << ','
        << common::json::format_double(e.design.cost.area_total()) << ','
        << common::json::format_double(e.design.mix_utilization) << ','
        << common::json::format_double(e.core_area_um2) << '\n';
  }
}

}  // namespace

Value build_report(const std::string& manifest_name,
                   const std::vector<engine::Scenario>& batch,
                   const std::vector<sim::RunResult>& results,
                   const engine::EngineStats& stats, bool include_stats) {
  BPVEC_CHECK(batch.size() == results.size());
  Value report = Value::object();
  report.set("manifest", manifest_name);
  report.set("scenario_count", batch.size());
  Value scenarios = Value::array();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    scenarios.push_back(scenario_row(batch[i], results[i]));
  }
  report.set("scenarios", std::move(scenarios));
  if (include_stats) report.set("stats", engine::to_json(stats));
  return report;
}

Value build_search_report(const std::string& manifest_name,
                          const SearchSpec& spec,
                          const dse::ParamSpace& space,
                          const dse::SearchOutcome& outcome,
                          const engine::EngineStats& stats,
                          bool include_stats) {
  Value report = Value::object();
  report.set("manifest", manifest_name);
  report.set("mode", "search");
  report.set("search", to_json(spec));
  report.set("space_size", space.size());
  report.set("candidates", outcome.candidates);
  report.set("unique_candidates", outcome.unique_candidates);
  report.set("infeasible", outcome.infeasible);
  report.set("frontier_size", outcome.frontier.size());
  Value frontier = Value::array();
  for (const dse::Evaluation& e : outcome.frontier.sorted()) {
    Value entry = Value::object();
    entry.set("id", e.id);
    entry.set("knobs", knobs_json(space, e.candidate));
    Value objectives = Value::object();
    for (std::size_t i = 0; i < outcome.objectives.size(); ++i) {
      objectives.set(dse::to_string(outcome.objectives[i].metric),
                     e.objectives[i]);
    }
    entry.set("objectives", std::move(objectives));
    entry.set("metrics", metrics_json(e));
    frontier.push_back(std::move(entry));
  }
  report.set("frontier", std::move(frontier));
  // Per-strategy provenance: how the non-exhaustive strategies were
  // driven, so a report is reproducible without the manifest file. Grid
  // has none (the space itself is the full provenance), which also keeps
  // pre-existing grid-search reports byte-stable.
  if (spec.strategy != "grid") {
    Value sb = Value::object();
    sb.set("name", spec.strategy);
    sb.set("seed", static_cast<std::int64_t>(spec.seed));
    if (spec.budget > 0) {
      sb.set("budget", static_cast<std::int64_t>(spec.budget));
    }
    sb.set("budget_consumed", outcome.candidates);
    if (spec.strategy == "hill_climb" || spec.strategy == "annealing") {
      sb.set("restarts", static_cast<std::int64_t>(spec.restarts));
    }
    if (spec.strategy == "genetic") {
      sb.set("population", static_cast<std::int64_t>(spec.population));
    }
    report.set("strategy", std::move(sb));
  }
  if (include_stats) report.set("stats", engine::to_json(stats));
  return report;
}

namespace {

/// The search subcommand's pipeline, after the manifest is loaded.
void run_search_mode(const DriverOptions& options, std::ostream& out,
                     DriverResult& result) {
  BPVEC_CHECK(result.manifest.search.has_value());
  // Declared workloads may be the search's base network.
  (void)register_workloads(result.manifest);
  const SearchSpec& spec = *result.manifest.search;
  const dse::ParamSpace space = search_space(spec);
  engine::Scenario base = search_base_scenario(spec);

  if (options.validate_only) {
    out << "Manifest: " << result.manifest.name << " (search)\n"
        << "space: " << space.size() << " candidates over "
        << space.num_axes() << " axes\nstrategy: " << spec.strategy;
    if (spec.budget > 0) out << ", budget " << spec.budget;
    if (spec.strategy == "hill_climb" || spec.strategy == "annealing") {
      out << ", restarts " << spec.restarts;
    }
    if (spec.strategy == "genetic") {
      out << ", population " << spec.population;
    }
    out << "\nbase scenario: " << base.id << "\nmanifest OK\n";
    return;
  }

  engine::EngineOptions engine_options;
  engine_options.num_threads = options.threads;
  engine_options.disk_cache_dir = options.cache_dir;
  engine::SimEngine engine(engine_options);

  dse::StrategyOptions strategy_options;
  strategy_options.budget = spec.budget;
  strategy_options.restarts = spec.restarts;
  strategy_options.population = spec.population;
  strategy_options.seed = spec.seed;
  strategy_options.objectives = spec.objectives;
  auto strategy = dse::make_strategy(spec.strategy, space,
                                     std::move(strategy_options));
  dse::ScenarioEvaluator evaluator(engine, space, std::move(base),
                                   spec.objectives, spec.mix,
                                   spec.constraints, spec.workload);
  dse::SearchOptions search_options;
  search_options.budget = spec.budget;
  result.search = dse::run_search(*strategy, evaluator, spec.objectives,
                                  search_options);
  result.stats = engine.stats();
  const dse::SearchOutcome& outcome = *result.search;

  if (options.print_table) {
    out << "Manifest: " << result.manifest.name;
    if (!result.manifest.description.empty()) {
      out << " — " << result.manifest.description;
    }
    out << "\nsearch: " << spec.strategy << " over " << space.size()
        << " candidates — " << outcome.candidates << " evaluated ("
        << outcome.unique_candidates << " unique, " << outcome.infeasible
        << " infeasible, " << result.stats.simulations_run << " simulated, "
        << result.stats.cache_hits << " memo hits, "
        << result.stats.disk_hits << " disk hits)\n"
        << "Pareto frontier: " << outcome.frontier.size()
        << " non-dominated candidates\n\n";
    print_frontier_table(out, space, outcome);
  }
  if (options.print_csv) print_search_csv(out, space, outcome);

  result.report =
      build_search_report(result.manifest.name, spec, space, outcome,
                          result.stats, !options.deterministic_report);
  if (options.write_report) {
    const std::string path =
        options.report_path.empty()
            ? "REPORT_" + result.manifest.name + ".json"
            : options.report_path;
    write_file(path, result.report.dump(1));
    if (options.print_table) out << "\n[bpvec_run] wrote " << path << "\n";
  }
  if (!options.stats_path.empty()) {
    write_file(options.stats_path, engine::to_json(result.stats).dump(1));
    if (options.print_table) {
      out << "[bpvec_run] wrote " << options.stats_path << "\n";
    }
  }
}

/// The `list` subcommand: every canonical token vocabulary, one line
/// per axis — what manifests, overrides, and search blocks accept.
void run_list(std::ostream& out) {
  auto line = [&](const char* what, const std::vector<std::string>& tokens) {
    out << what;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      out << (i == 0 ? "" : ", ") << tokens[i];
    }
    out << "\n";
  };
  line("backends:            ", backend::BackendRegistry::instance().keys());
  line("platforms:           ", platform_tokens());
  line("memories:            ", memory_tokens());
  line("bitwidth_modes:      ", bitwidth_mode_tokens());
  line("networks:            ",
       workload::NetworkRegistry::instance().tokens());
  line("workload_generators: ", workload::generator_tokens());
  line("search_knobs:        ", dse::knob_tokens());
  line("metrics:             ", dse::metric_tokens());
  line("strategies:          ", dse::strategy_tokens());
  out << "\nNetwork/platform/memory/mode tokens match case- and "
         "separator-insensitively;\nbackend keys are exact registry "
         "strings. A grid's \"networks\" axis also accepts\nthe meta "
         "tokens \"all\" (the six Table I models) and \"workloads\" "
         "(every network\nthe manifest's \"workloads\" block declares).\n";
}

}  // namespace

DriverResult run_manifest(const DriverOptions& options, std::ostream& out) {
  DriverResult result;
  // Extra networks first: their tokens must be valid when the manifest
  // parses. Registration is idempotent for identical files.
  for (const std::string& file : options.network_files) {
    dnn::Network net = workload::load_network(file);
    std::string key = net.name();
    workload::NetworkRegistry::instance().register_network(std::move(key),
                                                           std::move(net));
  }
  if (options.list_mode) {
    run_list(out);
    return result;
  }
  result.manifest = load_manifest(options.manifest_path);

  if (options.search_mode) {
    if (!result.manifest.search) {
      throw Error(options.manifest_path +
                  ": manifest has no \"search\" block (omit the search "
                  "subcommand to run its grids)");
    }
    run_search_mode(options, out, result);
    return result;
  }

  if (result.manifest.grids.empty()) {
    throw Error(options.manifest_path +
                ": manifest has no grids (use `bpvec_run search` for its "
                "\"search\" block)");
  }
  result.scenarios = expand(result.manifest);

  if (options.validate_only) {
    out << "Manifest: " << result.manifest.name << "\n"
        << result.manifest.grids.size() << " grids, "
        << result.scenarios.size() << " scenarios\nmanifest OK\n";
    return result;
  }

  engine::EngineOptions engine_options;
  engine_options.num_threads = options.threads;
  engine_options.disk_cache_dir = options.cache_dir;
  engine::SimEngine engine(engine_options);

  result.results = engine.run_batch(result.scenarios);
  result.stats = engine.stats();

  if (options.print_table) {
    out << "Manifest: " << result.manifest.name;
    if (!result.manifest.description.empty()) {
      out << " — " << result.manifest.description;
    }
    out << "\n" << result.scenarios.size() << " scenarios ("
        << result.stats.simulations_run << " simulated, "
        << result.stats.cache_hits << " memo hits, "
        << result.stats.disk_hits << " disk hits)\n\n";
    print_table(out, result.scenarios, result.results);
  }
  if (options.print_csv) {
    print_csv(out, result.scenarios, result.results);
  }

  result.report =
      build_report(result.manifest.name, result.scenarios, result.results,
                   result.stats, !options.deterministic_report);
  if (options.write_report) {
    const std::string path =
        options.report_path.empty()
            ? "REPORT_" + result.manifest.name + ".json"
            : options.report_path;
    write_file(path, result.report.dump(1));
    if (options.print_table) out << "\n[bpvec_run] wrote " << path << "\n";
  }
  if (!options.stats_path.empty()) {
    write_file(options.stats_path, engine::to_json(result.stats).dump(1));
    if (options.print_table) {
      out << "[bpvec_run] wrote " << options.stats_path << "\n";
    }
  }
  return result;
}

std::string usage() {
  return
      "usage: bpvec_run [search | list] <manifest.json> [options]\n"
      "\n"
      "Prices every scenario in the manifest through the batch engine and\n"
      "writes a machine-readable JSON report.\n"
      "\n"
      "subcommands:\n"
      "  search             run the manifest's \"search\" block: explore its\n"
      "                     knob space with the configured strategy\n"
      "                     (grid | random | hill_climb | annealing |\n"
      "                     genetic) and report the Pareto frontier over\n"
      "                     its objectives\n"
      "  list               print the canonical token vocabularies\n"
      "                     (backends, platforms, memories, bitwidth modes,\n"
      "                     networks, workload generators, search knobs,\n"
      "                     metrics, strategies) — no manifest needed\n"
      "\n"
      "options:\n"
      "  --network-file FILE\n"
      "                     register a workload-schema network (repeatable);\n"
      "                     its name becomes a valid manifest network token\n"
      "                     and shows up in `list`\n"
      "  --validate         dry run: parse + expand, print the scenario\n"
      "                     count (or search-space size), price nothing\n"
      "  --cache-dir DIR    persistent result cache: scenarios priced in any\n"
      "                     earlier run (same build, same configs) are served\n"
      "                     from disk, bit-identically\n"
      "  --report FILE      report path (default REPORT_<name>.json)\n"
      "  --no-report        skip the JSON report\n"
      "  --stats-out FILE   write engine/disk-cache counters to FILE\n"
      "  --deterministic-report\n"
      "                     omit the run-dependent stats block from the\n"
      "                     report so identical configs yield byte-identical\n"
      "                     files (what the CI gate cmp's)\n"
      "  --threads N        worker threads (default: hardware concurrency)\n"
      "  --csv              print a full-precision scenario CSV to stdout\n"
      "  --no-table         skip the human-readable table\n"
      "  --help             this text\n";
}

int main_cli(int argc, const char* const* argv, std::ostream& out,
             std::ostream& err) {
  DriverOptions options;
  auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      throw Error(std::string(flag) + " requires a value");
    }
    return argv[++i];
  };
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        out << usage();
        return 0;
      } else if (arg == "search" && options.manifest_path.empty() &&
                 !options.search_mode) {
        if (options.list_mode) {
          throw Error("`list` and `search` are mutually exclusive "
                      "subcommands");
        }
        options.search_mode = true;
      } else if (arg == "list" && options.manifest_path.empty() &&
                 !options.list_mode) {
        if (options.search_mode) {
          throw Error("`list` and `search` are mutually exclusive "
                      "subcommands");
        }
        options.list_mode = true;
      } else if (arg == "--network-file") {
        options.network_files.push_back(need_value(i, "--network-file"));
      } else if (arg == "--validate") {
        options.validate_only = true;
      } else if (arg == "--cache-dir") {
        options.cache_dir = need_value(i, "--cache-dir");
      } else if (arg == "--report") {
        options.report_path = need_value(i, "--report");
      } else if (arg == "--no-report") {
        options.write_report = false;
      } else if (arg == "--stats-out") {
        options.stats_path = need_value(i, "--stats-out");
      } else if (arg == "--deterministic-report") {
        options.deterministic_report = true;
      } else if (arg == "--threads") {
        options.threads = std::stoi(need_value(i, "--threads"));
      } else if (arg == "--csv") {
        options.print_csv = true;
      } else if (arg == "--no-table") {
        options.print_table = false;
      } else if (!arg.empty() && arg[0] == '-') {
        throw Error("unknown flag: " + arg);
      } else if (options.manifest_path.empty()) {
        options.manifest_path = arg;
      } else {
        throw Error("more than one manifest given: " + arg);
      }
    }
    if (options.manifest_path.empty() && !options.list_mode) {
      err << usage();
      return 2;
    }
    if (options.list_mode && !options.manifest_path.empty()) {
      throw Error("`list` takes no manifest");
    }
    (void)run_manifest(options, out);
    return 0;
  } catch (const std::exception& e) {
    err << "bpvec_run: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace bpvec::cli
