#include "src/cli/driver.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <utility>

#include "src/common/error.h"
#include "src/common/table.h"
#include "src/serve/session.h"

namespace bpvec::cli {

using common::json::Value;

namespace {

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
  out.flush();
  if (!out.good()) throw Error("cannot write file: " + path);
}

/// Disk-cache trouble counters for the summary line. Empty in the normal
/// case — rejected entries (corrupt/stale cache contents re-priced) and
/// store failures (results that could not be persisted) only ever appear
/// when there is something for an operator to look at.
std::string disk_trouble_summary(const engine::EngineStats& stats) {
  std::string out;
  if (stats.disk_rejected > 0) {
    out += ", " + std::to_string(stats.disk_rejected) + " disk rejects";
  }
  if (stats.disk_store_failures > 0) {
    out += ", " + std::to_string(stats.disk_store_failures) +
           " store failures";
  }
  return out;
}

void print_table(std::ostream& out,
                 const std::vector<engine::Scenario>& batch,
                 const std::vector<sim::RunResult>& results) {
  // The measured column appears only when some backend in the batch
  // actually executed layers (functional scenarios); modeled-only
  // batches keep the historical table shape.
  bool any_measured = false;
  for (const sim::RunResult& r : results) {
    if (r.measured_macs > 0) any_measured = true;
  }
  Table t;
  std::vector<std::string> header{"Scenario",    "Cycles", "Latency (ms)",
                                  "Energy (mJ)", "GOps/s", "GOps/W"};
  if (any_measured) header.push_back("Measured (ms)");
  t.set_header(header);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const sim::RunResult& r = results[i];
    std::vector<std::string> row{
        batch[i].id,                       std::to_string(r.total_cycles),
        Table::num(r.runtime_s * 1e3, 3),  Table::num(r.energy_j * 1e3, 3),
        Table::num(r.gops_per_s, 0),       Table::num(r.gops_per_w, 0)};
    if (any_measured) {
      row.push_back(r.measured_macs > 0
                        ? Table::num(r.measured_wall_s * 1e3, 3)
                        : "-");
    }
    t.add_row(row);
  }
  out << t.to_string();
}

void print_csv(std::ostream& out,
               const std::vector<engine::Scenario>& batch,
               const std::vector<sim::RunResult>& results) {
  // Full-precision CSV (the table rounds for humans; this is for
  // plotting scripts).
  out << "id,backend,platform,network,memory,total_cycles,total_macs,"
         "runtime_s,energy_j,average_power_w,gops_per_s,gops_per_w,"
         "measured_wall_s,measured_macs\n";
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const sim::RunResult& r = results[i];
    std::string id = batch[i].id;
    for (char& c : id) {
      if (c == ',') c = ';';  // ids are free text; keep the CSV parsable
    }
    out << id << ',' << r.backend << ',' << r.platform << ',' << r.network
        << ',' << r.memory << ',' << r.total_cycles << ',' << r.total_macs
        << ',' << common::json::format_double(r.runtime_s) << ','
        << common::json::format_double(r.energy_j) << ','
        << common::json::format_double(r.average_power_w) << ','
        << common::json::format_double(r.gops_per_s) << ','
        << common::json::format_double(r.gops_per_w) << ','
        << common::json::format_double(r.measured_wall_s) << ','
        << r.measured_macs << '\n';
  }
}

// ----- search mode ----------------------------------------------------

std::string metric_cell(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

void print_frontier_table(std::ostream& out, const dse::ParamSpace& space,
                          const dse::SearchOutcome& outcome) {
  Table t;
  std::vector<std::string> header{"#", "Candidate"};
  for (const dse::Objective& o : outcome.objectives) {
    header.push_back(std::string(dse::to_string(o.metric)) +
                     (o.maximize ? " (max)" : " (min)"));
  }
  t.set_header(header);
  const std::vector<dse::Evaluation> frontier = outcome.frontier.sorted();
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    std::vector<std::string> row{std::to_string(i + 1),
                                 space.label(frontier[i].candidate)};
    for (double v : frontier[i].objectives) row.push_back(metric_cell(v));
    t.add_row(row);
  }
  out << t.to_string();
}

void print_search_csv(std::ostream& out, const dse::ParamSpace& space,
                      const dse::SearchOutcome& outcome) {
  // Every evaluation (not just the frontier), full precision, proposal
  // order — the plotting-script view of the whole search.
  out << "id";
  for (const dse::Axis& a : space.axes()) out << ',' << dse::to_string(a.knob);
  out << ",feasible,total_cycles,total_macs,runtime_s,energy_j,"
         "average_power_w,gops_per_s,gops_per_w,mac_power,mac_area,"
         "utilization,core_area_um2\n";
  for (const dse::Evaluation& e : outcome.evaluations) {
    BPVEC_CHECK(e.result != nullptr);
    const sim::RunResult& r = *e.result;
    std::string id = e.id;
    for (char& c : id) {
      if (c == ',') c = ';';
    }
    out << id;
    for (std::size_t a = 0; a < space.num_axes(); ++a) {
      out << ','
          << dse::knob_value_string(space.axes()[a].knob,
                                    space.value(e.candidate, a));
    }
    out << ',' << (e.feasible ? 1 : 0) << ',' << r.total_cycles << ','
        << r.total_macs << ',' << common::json::format_double(r.runtime_s)
        << ',' << common::json::format_double(r.energy_j) << ','
        << common::json::format_double(r.average_power_w) << ','
        << common::json::format_double(r.gops_per_s) << ','
        << common::json::format_double(r.gops_per_w) << ','
        << common::json::format_double(e.design.cost.power_total()) << ','
        << common::json::format_double(e.design.cost.area_total()) << ','
        << common::json::format_double(e.design.mix_utilization) << ','
        << common::json::format_double(e.core_area_um2) << '\n';
  }
}

/// The search subcommand's pipeline, after the manifest is loaded.
void run_search_mode(const DriverOptions& options, serve::Session& session,
                     std::ostream& out, DriverResult& result) {
  BPVEC_CHECK(result.manifest.search.has_value());

  if (options.command == Command::kValidateSearch) {
    serve::ValidateRequest request;
    request.manifest = result.manifest;
    request.search = true;
    out << session.validate(request).text;
    return;
  }

  serve::SearchRequest request;
  request.manifest = result.manifest;
  request.deterministic_report = options.deterministic_report;
  serve::Response response = session.search(request);
  // The session is fresh, so the per-request delta equals the engine's
  // totals — the numbers this driver always reported.
  result.stats = response.delta;
  result.search = std::move(response.search);
  result.report = std::move(response.report);
  const SearchSpec& spec = *result.manifest.search;
  const dse::ParamSpace space = search_space(spec);
  const dse::SearchOutcome& outcome = *result.search;

  if (options.print_table) {
    out << "Manifest: " << result.manifest.name;
    if (!result.manifest.description.empty()) {
      out << " — " << result.manifest.description;
    }
    out << "\nsearch: " << spec.strategy << " over " << space.size()
        << " candidates — " << outcome.candidates << " evaluated ("
        << outcome.unique_candidates << " unique, " << outcome.infeasible
        << " infeasible, " << result.stats.simulations_run << " simulated, "
        << result.stats.cache_hits << " memo hits, "
        << result.stats.disk_hits << " disk hits"
        << disk_trouble_summary(result.stats) << ")\n"
        << "Pareto frontier: " << outcome.frontier.size()
        << " non-dominated candidates\n\n";
    print_frontier_table(out, space, outcome);
  }
  if (options.print_csv) print_search_csv(out, space, outcome);

  if (options.write_report) {
    const std::string path =
        options.report_path.empty()
            ? "REPORT_" + result.manifest.name + ".json"
            : options.report_path;
    write_file(path, result.report.dump(1));
    if (options.print_table) out << "\n[bpvec_run] wrote " << path << "\n";
  }
  if (!options.stats_path.empty()) {
    write_file(options.stats_path, engine::to_json(result.stats).dump(1));
    if (options.print_table) {
      out << "[bpvec_run] wrote " << options.stats_path << "\n";
    }
  }
}

}  // namespace

DriverResult run_manifest(const DriverOptions& options, std::ostream& out) {
  DriverResult result;
  // One fresh Session per invocation — batch semantics (cold memo
  // caches; the disk cache still persists across runs). The daemon
  // keeps a Session alive instead; both run the same request path.
  serve::SessionOptions session_options;
  session_options.threads = options.threads;
  session_options.cache_dir = options.cache_dir;
  session_options.grain = options.grain;
  serve::Session session(session_options);
  // Extra networks first: their tokens must be valid when the manifest
  // parses. Registration is idempotent for identical files.
  for (const std::string& file : options.network_files) {
    session.register_network_file(file);
  }
  if (options.command == Command::kList) {
    out << session.list().text;
    return result;
  }
  result.manifest = load_manifest(options.manifest_path);

  if (options.command == Command::kSearch ||
      options.command == Command::kValidateSearch) {
    if (!result.manifest.search) {
      throw Error(options.manifest_path +
                  ": manifest has no \"search\" block (omit the search "
                  "subcommand to run its grids)");
    }
    run_search_mode(options, session, out, result);
    return result;
  }

  if (result.manifest.grids.empty()) {
    throw Error(options.manifest_path +
                ": manifest has no grids (use `bpvec_run search` for its "
                "\"search\" block)");
  }

  if (options.command == Command::kValidate) {
    serve::ValidateRequest request;
    request.manifest = result.manifest;
    serve::Response response = session.validate(request);
    result.scenarios = std::move(response.scenarios);
    out << response.text;
    return result;
  }

  serve::PriceRequest request;
  request.manifest = result.manifest;
  request.deterministic_report = options.deterministic_report;
  serve::Response response = session.price(request);
  result.scenarios = std::move(response.scenarios);
  result.results = std::move(response.results);
  // Fresh session: the per-request delta equals the engine's totals.
  result.stats = response.delta;
  result.report = std::move(response.report);

  if (options.print_table) {
    out << "Manifest: " << result.manifest.name;
    if (!result.manifest.description.empty()) {
      out << " — " << result.manifest.description;
    }
    out << "\n" << result.scenarios.size() << " scenarios ("
        << result.stats.simulations_run << " simulated, "
        << result.stats.cache_hits << " memo hits, "
        << result.stats.disk_hits << " disk hits"
        << disk_trouble_summary(result.stats) << ")\n\n";
    print_table(out, result.scenarios, result.results);
  }
  if (options.print_csv) {
    print_csv(out, result.scenarios, result.results);
  }

  if (options.write_report) {
    const std::string path =
        options.report_path.empty()
            ? "REPORT_" + result.manifest.name + ".json"
            : options.report_path;
    write_file(path, result.report.dump(1));
    if (options.print_table) out << "\n[bpvec_run] wrote " << path << "\n";
  }
  if (!options.stats_path.empty()) {
    write_file(options.stats_path, engine::to_json(result.stats).dump(1));
    if (options.print_table) {
      out << "[bpvec_run] wrote " << options.stats_path << "\n";
    }
  }
  return result;
}

std::string usage() {
  return
      "usage: bpvec_run [search | list] <manifest.json> [options]\n"
      "\n"
      "Prices every scenario in the manifest through the batch engine and\n"
      "writes a machine-readable JSON report.\n"
      "\n"
      "subcommands:\n"
      "  search             run the manifest's \"search\" block: explore its\n"
      "                     knob space with the configured strategy\n"
      "                     (grid | random | hill_climb | annealing |\n"
      "                     genetic) and report the Pareto frontier over\n"
      "                     its objectives\n"
      "  list               print the canonical token vocabularies\n"
      "                     (backends, platforms, memories, bitwidth modes,\n"
      "                     networks, workload generators, search knobs,\n"
      "                     metrics, strategies) — no manifest needed\n"
      "\n"
      "options:\n"
      "  --network-file FILE\n"
      "                     register a workload-schema network (repeatable);\n"
      "                     its name becomes a valid manifest network token\n"
      "                     and shows up in `list`\n"
      "  --validate         dry run: parse + expand, print the scenario\n"
      "                     count (or search-space size), price nothing\n"
      "  --cache-dir DIR    persistent result cache: scenarios priced in any\n"
      "                     earlier run (same build, same configs) are served\n"
      "                     from disk, bit-identically\n"
      "  --report FILE      report path (default REPORT_<name>.json)\n"
      "  --no-report        skip the JSON report\n"
      "  --stats-out FILE   write engine/disk-cache counters to FILE\n"
      "  --deterministic-report\n"
      "                     omit the run-dependent stats block from the\n"
      "                     report so identical configs yield byte-identical\n"
      "                     files (what the CI gate cmp's)\n"
      "  --threads N        worker threads (default: hardware concurrency)\n"
      "  --grain N          engine parallel_for grain: indices per pool\n"
      "                     task in the batch phases (default 0 = auto;\n"
      "                     results are grain-invariant)\n"
      "  --csv              print a full-precision scenario CSV to stdout\n"
      "  --no-table         skip the human-readable table\n"
      "  --version          print build identity (SIMD variant, disk-cache\n"
      "                     format, compiler) as JSON and exit\n"
      "  --help             this text\n";
}

int main_cli(int argc, const char* const* argv, std::ostream& out,
             std::ostream& err) {
  DriverOptions options;
  // Parse-time subcommand state, resolved into the one Command below.
  bool search_sub = false;
  bool list_sub = false;
  bool validate = false;
  auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      throw Error(std::string(flag) + " requires a value");
    }
    return argv[++i];
  };
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        out << usage();
        return 0;
      } else if (arg == "--version") {
        out << version_json().dump(1) << "\n";
        return 0;
      } else if (arg == "search" && options.manifest_path.empty() &&
                 !search_sub) {
        if (list_sub) {
          throw Error("`list` and `search` are mutually exclusive "
                      "subcommands");
        }
        search_sub = true;
      } else if (arg == "list" && options.manifest_path.empty() &&
                 !list_sub) {
        if (search_sub) {
          throw Error("`list` and `search` are mutually exclusive "
                      "subcommands");
        }
        list_sub = true;
      } else if (arg == "--network-file") {
        options.network_files.push_back(need_value(i, "--network-file"));
      } else if (arg == "--validate") {
        validate = true;
      } else if (arg == "--cache-dir") {
        options.cache_dir = need_value(i, "--cache-dir");
      } else if (arg == "--report") {
        options.report_path = need_value(i, "--report");
      } else if (arg == "--no-report") {
        options.write_report = false;
      } else if (arg == "--stats-out") {
        options.stats_path = need_value(i, "--stats-out");
      } else if (arg == "--deterministic-report") {
        options.deterministic_report = true;
      } else if (arg == "--threads") {
        options.threads = std::stoi(need_value(i, "--threads"));
      } else if (arg == "--grain") {
        const long long g = std::stoll(need_value(i, "--grain"));
        if (g < 0) throw Error("--grain must be >= 0");
        options.grain = static_cast<std::size_t>(g);
      } else if (arg == "--csv") {
        options.print_csv = true;
      } else if (arg == "--no-table") {
        options.print_table = false;
      } else if (!arg.empty() && arg[0] == '-') {
        throw Error("unknown flag: " + arg);
      } else if (options.manifest_path.empty()) {
        options.manifest_path = arg;
      } else {
        throw Error("more than one manifest given: " + arg);
      }
    }
    if (options.manifest_path.empty() && !list_sub) {
      err << usage();
      return 2;
    }
    if (list_sub && !options.manifest_path.empty()) {
      throw Error("`list` takes no manifest");
    }
    // Resolve subcommand + --validate into the single typed Command
    // (`list --validate` stays a plain list, as it always was).
    if (list_sub) {
      options.command = Command::kList;
    } else if (search_sub) {
      options.command =
          validate ? Command::kValidateSearch : Command::kSearch;
    } else {
      options.command = validate ? Command::kValidate : Command::kPrice;
    }
    (void)run_manifest(options, out);
    return 0;
  } catch (const std::exception& e) {
    err << "bpvec_run: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace bpvec::cli
