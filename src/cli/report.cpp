#include "src/cli/report.h"

#include <cmath>
#include <utility>

#include "src/cli/manifest.h"
#include "src/common/error.h"
#include "src/engine/disk_cache.h"
#include "src/kernels/simd.h"

namespace bpvec::cli {

using common::json::Value;

namespace {

Value scenario_row(const engine::Scenario& scenario,
                   const sim::RunResult& r) {
  Value row = Value::object();
  row.set("id", scenario.id);
  row.set("backend", r.backend);
  row.set("platform", r.platform);
  row.set("network", r.network);
  row.set("memory", r.memory);
  row.set("total_cycles", r.total_cycles);
  row.set("total_macs", r.total_macs);
  row.set("runtime_s", r.runtime_s);
  row.set("energy_j", r.energy_j);
  row.set("average_power_w", r.average_power_w);
  row.set("gops_per_s", r.gops_per_s);
  row.set("gops_per_w", r.gops_per_w);
  // Measured fields exist only for backends that execute (the functional
  // backend's packed probes); modeled-only rows keep the historical
  // shape, so reports from manifests without functional scenarios stay
  // byte-identical across this change (the CI golden gate relies on it).
  if (r.measured_macs > 0) {
    row.set("measured_wall_s", r.measured_wall_s);
    row.set("measured_macs", r.measured_macs);
  }
  return row;
}

/// Typed knob map for one candidate (integer knobs as JSON ints).
Value knobs_json(const dse::ParamSpace& space, const dse::Candidate& c) {
  Value knobs = Value::object();
  for (std::size_t a = 0; a < space.num_axes(); ++a) {
    const dse::Knob knob = space.axes()[a].knob;
    const double v = space.value(c, a);
    if (dse::knob_is_integer(knob)) {
      knobs.set(dse::to_string(knob),
                static_cast<std::int64_t>(std::llround(v)));
    } else {
      knobs.set(dse::to_string(knob), v);
    }
  }
  return knobs;
}

Value metrics_json(const dse::Evaluation& e) {
  BPVEC_CHECK(e.result != nullptr);
  const sim::RunResult& r = *e.result;
  Value m = Value::object();
  m.set("total_cycles", r.total_cycles);
  m.set("total_macs", r.total_macs);
  m.set("runtime_s", r.runtime_s);
  m.set("energy_j", r.energy_j);
  m.set("average_power_w", r.average_power_w);
  m.set("gops_per_s", r.gops_per_s);
  m.set("gops_per_w", r.gops_per_w);
  m.set("mac_power", e.design.cost.power_total());
  m.set("mac_area", e.design.cost.area_total());
  m.set("utilization", e.design.mix_utilization);
  m.set("core_area_um2", e.core_area_um2);
  return m;
}

}  // namespace

Value build_report(const std::string& manifest_name,
                   const std::vector<engine::Scenario>& batch,
                   const std::vector<sim::RunResult>& results,
                   const engine::EngineStats& stats, bool include_stats) {
  BPVEC_CHECK(batch.size() == results.size());
  Value report = Value::object();
  report.set("manifest", manifest_name);
  report.set("scenario_count", batch.size());
  Value scenarios = Value::array();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    scenarios.push_back(scenario_row(batch[i], results[i]));
  }
  report.set("scenarios", std::move(scenarios));
  if (include_stats) report.set("stats", engine::to_json(stats));
  return report;
}

Value build_search_report(const std::string& manifest_name,
                          const SearchSpec& spec,
                          const dse::ParamSpace& space,
                          const dse::SearchOutcome& outcome,
                          const engine::EngineStats& stats,
                          bool include_stats) {
  Value report = Value::object();
  report.set("manifest", manifest_name);
  report.set("mode", "search");
  report.set("search", to_json(spec));
  report.set("space_size", space.size());
  report.set("candidates", outcome.candidates);
  report.set("unique_candidates", outcome.unique_candidates);
  report.set("infeasible", outcome.infeasible);
  report.set("frontier_size", outcome.frontier.size());
  Value frontier = Value::array();
  for (const dse::Evaluation& e : outcome.frontier.sorted()) {
    Value entry = Value::object();
    entry.set("id", e.id);
    entry.set("knobs", knobs_json(space, e.candidate));
    Value objectives = Value::object();
    for (std::size_t i = 0; i < outcome.objectives.size(); ++i) {
      objectives.set(dse::to_string(outcome.objectives[i].metric),
                     e.objectives[i]);
    }
    entry.set("objectives", std::move(objectives));
    entry.set("metrics", metrics_json(e));
    frontier.push_back(std::move(entry));
  }
  report.set("frontier", std::move(frontier));
  // Per-strategy provenance: how the non-exhaustive strategies were
  // driven, so a report is reproducible without the manifest file. Grid
  // has none (the space itself is the full provenance), which also keeps
  // pre-existing grid-search reports byte-stable.
  if (spec.strategy != "grid") {
    Value sb = Value::object();
    sb.set("name", spec.strategy);
    sb.set("seed", static_cast<std::int64_t>(spec.seed));
    if (spec.budget > 0) {
      sb.set("budget", static_cast<std::int64_t>(spec.budget));
    }
    sb.set("budget_consumed", outcome.candidates);
    if (spec.strategy == "hill_climb" || spec.strategy == "annealing") {
      sb.set("restarts", static_cast<std::int64_t>(spec.restarts));
    }
    if (spec.strategy == "genetic") {
      sb.set("population", static_cast<std::int64_t>(spec.population));
    }
    report.set("strategy", std::move(sb));
  }
  if (include_stats) report.set("stats", engine::to_json(stats));
  return report;
}

Value version_json() {
  Value v = Value::object();
  v.set("name", "bpvec");
  v.set("simd_variant", kernels::simd_variant());
  v.set("disk_cache_format_version", engine::DiskCache::kFormatVersion);
#if defined(__VERSION__)
  v.set("compiler", __VERSION__);
#else
  v.set("compiler", "unknown");
#endif
#if defined(NDEBUG)
  v.set("build", "release");
#else
  v.set("build", "debug");
#endif
  v.set("cxx_standard", static_cast<std::int64_t>(__cplusplus));
  return v;
}

}  // namespace bpvec::cli
