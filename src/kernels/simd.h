// The one SIMD-variant-specific primitive behind the bit-packed kernels:
// AND two bit-plane words streams and count the surviving ones.
//
// Everything above this call site is portable C++; the variant (AVX2 on
// x86-64, NEON on aarch64, plain 64-bit scalar otherwise) is chosen at
// configure time (see the BPVEC_SIMD option in CMakeLists.txt) and
// compiled into exactly one translation unit, simd_popcount.cpp — the
// only file built with ISA-specific flags. `simd_variant()` names the
// compiled-in variant; backend fingerprints fold it in so cache entries
// produced by one kernel build are never served to another (results are
// bit-identical across variants, but measured wall-clock is not).
#pragma once

#include <cstddef>
#include <cstdint>

namespace bpvec::kernels {

/// Σ_i popcount(a[i] & b[i]) over `words` 64-bit words. The inner loop of
/// every packed kernel: one call scores one (activation-plane,
/// weight-plane) significance pair over 64·words lanes.
std::int64_t and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t words);

/// Compiled-in kernel variant: "avx2", "neon", or "scalar".
const char* simd_variant();

}  // namespace bpvec::kernels
