// The one SIMD-variant-specific primitive behind the bit-packed kernels:
// AND two bit-plane word streams and count the surviving ones.
//
// Everything above this call site is portable C++; the variant is chosen
// at RUNTIME, on the first and_popcount call, by cpuid — not at configure
// time. On x86-64 three implementations are compiled side by side via
// function target attributes (scalar baseline, AVX2+POPCNT, AVX-512
// VPOPCNTDQ) and the best one the host supports wins; on aarch64 NEON is
// part of the baseline ISA so it is simply the default. The environment
// variable BPVEC_SIMD forces a variant ("scalar", "avx2", "avx512",
// "neon", or "auto"); an unsupported or unknown force falls back to
// auto-detection rather than crashing on an illegal instruction.
//
// `simd_variant()` names the SELECTED variant; backend fingerprints fold
// it in so cache entries produced under one variant are never served to
// another (results are bit-identical across variants, but measured
// wall-clock is not).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bpvec::kernels {

/// Σ_i popcount(a[i] & b[i]) over `words` 64-bit words. The inner loop of
/// every packed kernel: one call scores one (activation-plane,
/// weight-plane) significance pair over 64·words lanes.
std::int64_t and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t words);

/// The resolved and_popcount implementation as a raw function pointer.
/// Hot kernels (the blocked GEMM tile loop) fetch this once per call and
/// invoke it directly, hoisting the per-call dispatch lookup out of
/// plane-pair loops that run bits² × K-chunks times. The pointer stays
/// valid for the process lifetime; it reflects the variant selected at
/// the moment of the call (re-fetch after simd_set_variant to follow a
/// switch).
using PopcountFn = std::int64_t (*)(const std::uint64_t*,
                                    const std::uint64_t*, std::size_t);
PopcountFn simd_popcount_fn();

/// Fused plane-pair dot: Σ_p Σ_q products[p·b_bits + q] ·
/// Σ_i popcount(a[p·a_stride + i] & b[q·b_stride + i]) over `words`
/// words. One call scores one (A-row, B-row) pair over ALL bits²
/// significance-plane combinations — the wide variants keep each loaded
/// A-vector live across several B-planes and amortize call/reduce
/// overhead bits² ways, which is where the blocked GEMM's throughput
/// edge over the per-pair baseline comes from. `a` points at the row's
/// plane 0 (consecutive planes `a_stride` words apart — BitPlanes
/// layout), likewise `b`; `products` is the precomputed
/// plane_weight(p)·plane_weight(q) table. Exact int64; bit-identical
/// across variants.
using PlanesDotFn = std::int64_t (*)(const std::uint64_t* a,
                                     std::size_t a_stride, int a_bits,
                                     const std::uint64_t* b,
                                     std::size_t b_stride, int b_bits,
                                     std::size_t words,
                                     const std::int64_t* products);
std::int64_t planes_dot(const std::uint64_t* a, std::size_t a_stride,
                        int a_bits, const std::uint64_t* b,
                        std::size_t b_stride, int b_bits, std::size_t words,
                        const std::int64_t* products);

/// The resolved planes_dot implementation; same hoisting contract as
/// simd_popcount_fn.
PlanesDotFn simd_planes_dot_fn();

/// Name of the variant and_popcount currently dispatches to: "avx512",
/// "avx2", "neon", or "scalar". Resolves the dispatch (cpuid +
/// BPVEC_SIMD override) if no call has done so yet.
const char* simd_variant();

/// Forces the dispatch to `name` ("scalar", "avx2", "avx512", "neon"),
/// or back to cpuid/BPVEC_SIMD resolution with "auto". Returns false —
/// and leaves the dispatch unchanged — when the host cannot execute the
/// requested variant (or the name is unknown). Tests and benches use
/// this to cover every reachable variant in one process; note that the
/// functional backend folds simd_variant() into its fingerprint, so
/// switching variants mid-run re-keys its caches as intended.
bool simd_set_variant(const std::string& name);

/// Every variant the host can execute, best first (always ends with
/// "scalar"). Each entry is accepted by simd_set_variant.
std::vector<std::string> simd_available_variants();

}  // namespace bpvec::kernels
