#include "src/kernels/weight_cache.h"

#include <mutex>
#include <utility>

namespace bpvec::kernels {

WeightPlaneCache& WeightPlaneCache::instance() {
  static WeightPlaneCache cache;
  return cache;
}

std::shared_ptr<const PackedWeights> WeightPlaneCache::get_or_pack(
    std::uint64_t key, const Factory& make) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  // Build outside the lock: packing can be milliseconds, and concurrent
  // probes of OTHER layers must not serialize behind it. A concurrent
  // miss on the same key builds a bit-identical duplicate; first insert
  // wins.
  auto built = std::make_shared<const PackedWeights>(make());
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (entries_.size() >= kMaxEntries) entries_.clear();
  auto [it, inserted] = entries_.emplace(key, std::move(built));
  (void)inserted;  // lost the race: serve the winner's entry
  return it->second;
}

std::size_t WeightPlaneCache::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entries_.size();
}

void WeightPlaneCache::clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  entries_.clear();
}

}  // namespace bpvec::kernels
