#include "src/kernels/bitplane.h"

#include "src/bitslice/bit_slicing.h"
#include "src/common/error.h"
#include "src/kernels/simd.h"

namespace bpvec::kernels {

std::int64_t plane_weight(int p, int bits, bool is_signed) {
  BPVEC_CHECK(p >= 0 && p < bits);
  const std::int64_t magnitude = std::int64_t{1} << p;
  return (is_signed && p == bits - 1) ? -magnitude : magnitude;
}

BitPlanes pack_values(const std::int32_t* values, std::int64_t rows,
                      std::int64_t cols, int bits, bool is_signed) {
  BPVEC_CHECK_MSG(bits >= 1 && bits <= 16,
                  "bit-plane packing supports 1..16-bit operands");
  BPVEC_CHECK(rows >= 0 && cols >= 0);
  BitPlanes planes;
  planes.rows = rows;
  planes.cols = cols;
  planes.bits = bits;
  planes.is_signed = is_signed;
  planes.words = static_cast<std::size_t>((cols + 63) / 64);
  planes.data.assign(
      static_cast<std::size_t>(rows) * bits * planes.words, 0);

  const std::uint32_t mask =
      bits == 32 ? ~0u : ((std::uint32_t{1} << bits) - 1);
  for (std::int64_t r = 0; r < rows; ++r) {
    std::uint64_t* row_base =
        planes.data.data() + static_cast<std::size_t>(r) * bits * planes.words;
    for (std::int64_t k = 0; k < cols; ++k) {
      const std::int32_t v = values[r * cols + k];
      if (is_signed) {
        BPVEC_CHECK_MSG(bitslice::fits_signed(v, bits),
                        "value does not fit signed operand bitwidth");
      } else {
        BPVEC_CHECK_MSG(bitslice::fits_unsigned(v, bits),
                        "value does not fit unsigned operand bitwidth");
      }
      // Two's-complement low `bits` bits; plane_weight() restores the
      // sign weight at recomposition time.
      std::uint32_t u = static_cast<std::uint32_t>(v) & mask;
      const std::size_t word = static_cast<std::size_t>(k >> 6);
      const std::uint64_t lane = std::uint64_t{1} << (k & 63);
      for (int p = 0; u != 0; ++p, u >>= 1) {
        if (u & 1u) row_base[static_cast<std::size_t>(p) * planes.words + word] |= lane;
      }
    }
  }
  return planes;
}

BitPlanes pack_rows(const dnn::Matrix& m, int bits, bool is_signed) {
  BPVEC_CHECK(static_cast<std::int64_t>(m.data.size()) == m.rows * m.cols);
  return pack_values(m.data.data(), m.rows, m.cols, bits, is_signed);
}

BitPlanes pack_vector(const std::vector<std::int32_t>& values, int bits,
                      bool is_signed) {
  return pack_values(values.data(), 1,
                     static_cast<std::int64_t>(values.size()), bits,
                     is_signed);
}

std::int64_t unpack_element(const BitPlanes& planes, std::int64_t row,
                            std::int64_t i) {
  BPVEC_CHECK(row >= 0 && row < planes.rows && i >= 0 && i < planes.cols);
  const std::size_t word = static_cast<std::size_t>(i >> 6);
  const int lane = static_cast<int>(i & 63);
  std::int64_t value = 0;
  for (int p = 0; p < planes.bits; ++p) {
    const std::uint64_t bit = (planes.plane(row, p)[word] >> lane) & 1u;
    if (bit) value += plane_weight(p, planes.bits, planes.is_signed);
  }
  return value;
}

std::int64_t packed_dot(const BitPlanes& a, std::int64_t a_row,
                        const BitPlanes& b, std::int64_t b_row) {
  BPVEC_CHECK_MSG(a.cols == b.cols, "packed dot: lane counts disagree");
  std::int64_t acc = 0;
  for (int p = 0; p < a.bits; ++p) {
    const std::uint64_t* ap = a.plane(a_row, p);
    const std::int64_t wa = plane_weight(p, a.bits, a.is_signed);
    for (int q = 0; q < b.bits; ++q) {
      const std::int64_t count =
          and_popcount(ap, b.plane(b_row, q), a.words);
      acc += wa * plane_weight(q, b.bits, b.is_signed) * count;
    }
  }
  return acc;
}

}  // namespace bpvec::kernels
