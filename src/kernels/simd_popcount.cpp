// All ISA-specific code lives in this translation unit, compiled with
// the baseline flags. The wide variants are per-function, via
// __attribute__((target(...))) — the compiler emits AVX2/AVX-512 code
// only inside those bodies, and they stay out-of-line so no wide
// instruction can leak into baseline code paths. Which body runs is
// decided once at runtime (cpuid, overridable with BPVEC_SIMD) and
// cached in an atomic dispatch pointer.

#include "src/kernels/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__)
#include <immintrin.h>
#elif defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace bpvec::kernels {

namespace {

using PopcountFn = std::int64_t (*)(const std::uint64_t*,
                                    const std::uint64_t*, std::size_t);

inline std::int64_t scalar_fold(const std::uint64_t* a,
                                const std::uint64_t* b, std::size_t words) {
  std::int64_t count = 0;
  for (std::size_t i = 0; i < words; ++i) {
    count += __builtin_popcountll(a[i] & b[i]);
  }
  return count;
}

std::int64_t and_popcount_scalar(const std::uint64_t* a,
                                 const std::uint64_t* b, std::size_t words) {
  return scalar_fold(a, b, words);
}

/// Fused plane-pair dot, scalar flavor. The wide variants below pair
/// B-planes so each loaded A-vector is reused twice; here the win is
/// purely amortization — one call (no per-pair dispatch) with the
/// compiler free to unroll the simple fold it already schedules best.
std::int64_t planes_dot_scalar(const std::uint64_t* a, std::size_t a_stride,
                               int a_bits, const std::uint64_t* b,
                               std::size_t b_stride, int b_bits,
                               std::size_t words,
                               const std::int64_t* products) {
  std::int64_t total = 0;
  for (int p = 0; p < a_bits; ++p) {
    const std::uint64_t* ap = a + static_cast<std::size_t>(p) * a_stride;
    const std::int64_t* row = products + static_cast<std::size_t>(p) * b_bits;
    for (int q = 0; q < b_bits; ++q) {
      total += row[q] *
               scalar_fold(ap, b + static_cast<std::size_t>(q) * b_stride,
                           words);
    }
  }
  return total;
}

#if defined(__x86_64__)

__attribute__((target("avx2,popcnt"))) std::int64_t and_popcount_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t words) {
  std::int64_t count = 0;
  std::size_t i = 0;
  // 4 words per vector AND; hardware POPCNT on the extracted lanes.
  // Unaligned loads: planes are packed back-to-back per
  // (row, significance), not over-aligned.
  for (; i + 4 <= words; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i v = _mm256_and_si256(va, vb);
    count += __builtin_popcountll(
        static_cast<std::uint64_t>(_mm256_extract_epi64(v, 0)));
    count += __builtin_popcountll(
        static_cast<std::uint64_t>(_mm256_extract_epi64(v, 1)));
    count += __builtin_popcountll(
        static_cast<std::uint64_t>(_mm256_extract_epi64(v, 2)));
    count += __builtin_popcountll(
        static_cast<std::uint64_t>(_mm256_extract_epi64(v, 3)));
  }
  return count + scalar_fold(a + i, b + i, words - i);
}

__attribute__((target("avx512f,avx512vpopcntdq"))) std::int64_t
and_popcount_avx512(const std::uint64_t* a, const std::uint64_t* b,
                    std::size_t words) {
  // VPOPCNTDQ counts all 8 lanes of the AND in one instruction; the
  // per-lane counts accumulate vertically in int64 lanes (a plane word
  // contributes at most 64, so 2^57 iterations would be needed to wrap —
  // unreachable) and reduce once at the end.
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= words; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_and_si512(va, vb)));
  }
  // Reduce via a store rather than _mm512_reduce_add_epi64: the
  // intrinsic's expansion goes through _mm256_undefined_si256, which
  // GCC 12 flags as used-uninitialized under -Werror.
  alignas(64) std::int64_t lanes[8];
  _mm512_store_si512(reinterpret_cast<__m512i*>(lanes), acc);
  const std::int64_t count = lanes[0] + lanes[1] + lanes[2] + lanes[3] +
                             lanes[4] + lanes[5] + lanes[6] + lanes[7];
  return count + scalar_fold(a + i, b + i, words - i);
}

__attribute__((target("avx2,popcnt"))) std::int64_t planes_dot_avx2(
    const std::uint64_t* a, std::size_t a_stride, int a_bits,
    const std::uint64_t* b, std::size_t b_stride, int b_bits,
    std::size_t words, const std::int64_t* products) {
  std::int64_t total = 0;
  for (int p = 0; p < a_bits; ++p) {
    const std::uint64_t* ap = a + static_cast<std::size_t>(p) * a_stride;
    const std::int64_t* row = products + static_cast<std::size_t>(p) * b_bits;
    int q = 0;
    for (; q + 2 <= b_bits; q += 2) {
      const std::uint64_t* b0 = b + static_cast<std::size_t>(q) * b_stride;
      const std::uint64_t* b1 = b0 + b_stride;
      std::int64_t c0 = 0;
      std::int64_t c1 = 0;
      std::size_t i = 0;
      for (; i + 4 <= words; i += 4) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ap + i));
        const __m256i v0 = _mm256_and_si256(
            va, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b0 + i)));
        const __m256i v1 = _mm256_and_si256(
            va, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b1 + i)));
        c0 += __builtin_popcountll(
            static_cast<std::uint64_t>(_mm256_extract_epi64(v0, 0)));
        c0 += __builtin_popcountll(
            static_cast<std::uint64_t>(_mm256_extract_epi64(v0, 1)));
        c0 += __builtin_popcountll(
            static_cast<std::uint64_t>(_mm256_extract_epi64(v0, 2)));
        c0 += __builtin_popcountll(
            static_cast<std::uint64_t>(_mm256_extract_epi64(v0, 3)));
        c1 += __builtin_popcountll(
            static_cast<std::uint64_t>(_mm256_extract_epi64(v1, 0)));
        c1 += __builtin_popcountll(
            static_cast<std::uint64_t>(_mm256_extract_epi64(v1, 1)));
        c1 += __builtin_popcountll(
            static_cast<std::uint64_t>(_mm256_extract_epi64(v1, 2)));
        c1 += __builtin_popcountll(
            static_cast<std::uint64_t>(_mm256_extract_epi64(v1, 3)));
      }
      c0 += scalar_fold(ap + i, b0 + i, words - i);
      c1 += scalar_fold(ap + i, b1 + i, words - i);
      total += row[q] * c0 + row[q + 1] * c1;
    }
    if (q < b_bits) {
      total += row[q] * and_popcount_avx2(
                            ap, b + static_cast<std::size_t>(q) * b_stride,
                            words);
    }
  }
  return total;
}

__attribute__((target("avx512f,avx512vpopcntdq"))) std::int64_t
planes_dot_avx512(const std::uint64_t* a, std::size_t a_stride, int a_bits,
                  const std::uint64_t* b, std::size_t b_stride, int b_bits,
                  std::size_t words, const std::int64_t* products) {
  std::int64_t total = 0;
  for (int p = 0; p < a_bits; ++p) {
    const std::uint64_t* ap = a + static_cast<std::size_t>(p) * a_stride;
    const std::int64_t* row = products + static_cast<std::size_t>(p) * b_bits;
    int q = 0;
    for (; q + 2 <= b_bits; q += 2) {
      const std::uint64_t* b0 = b + static_cast<std::size_t>(q) * b_stride;
      const std::uint64_t* b1 = b0 + b_stride;
      __m512i acc0 = _mm512_setzero_si512();
      __m512i acc1 = _mm512_setzero_si512();
      std::size_t i = 0;
      for (; i + 8 <= words; i += 8) {
        const __m512i va = _mm512_loadu_si512(ap + i);
        acc0 = _mm512_add_epi64(
            acc0, _mm512_popcnt_epi64(
                      _mm512_and_si512(va, _mm512_loadu_si512(b0 + i))));
        acc1 = _mm512_add_epi64(
            acc1, _mm512_popcnt_epi64(
                      _mm512_and_si512(va, _mm512_loadu_si512(b1 + i))));
      }
      alignas(64) std::int64_t lanes[16];
      _mm512_store_si512(reinterpret_cast<__m512i*>(lanes), acc0);
      _mm512_store_si512(reinterpret_cast<__m512i*>(lanes + 8), acc1);
      std::int64_t c0 = lanes[0] + lanes[1] + lanes[2] + lanes[3] + lanes[4] +
                        lanes[5] + lanes[6] + lanes[7];
      std::int64_t c1 = lanes[8] + lanes[9] + lanes[10] + lanes[11] +
                        lanes[12] + lanes[13] + lanes[14] + lanes[15];
      c0 += scalar_fold(ap + i, b0 + i, words - i);
      c1 += scalar_fold(ap + i, b1 + i, words - i);
      total += row[q] * c0 + row[q + 1] * c1;
    }
    if (q < b_bits) {
      total += row[q] * and_popcount_avx512(
                            ap, b + static_cast<std::size_t>(q) * b_stride,
                            words);
    }
  }
  return total;
}

#elif defined(__aarch64__)

// NEON is baseline on aarch64 — no target attribute, no cpuid needed.
std::int64_t and_popcount_neon(const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t words) {
  std::int64_t count = 0;
  std::size_t i = 0;
  for (; i + 2 <= words; i += 2) {
    const uint64x2_t va = vld1q_u64(a + i);
    const uint64x2_t vb = vld1q_u64(b + i);
    const uint8x16_t bits = vcntq_u8(vreinterpretq_u8_u64(vandq_u64(va, vb)));
    count += vaddvq_u8(bits);
  }
  return count + scalar_fold(a + i, b + i, words - i);
}

std::int64_t planes_dot_neon(const std::uint64_t* a, std::size_t a_stride,
                             int a_bits, const std::uint64_t* b,
                             std::size_t b_stride, int b_bits,
                             std::size_t words, const std::int64_t* products) {
  std::int64_t total = 0;
  for (int p = 0; p < a_bits; ++p) {
    const std::uint64_t* ap = a + static_cast<std::size_t>(p) * a_stride;
    const std::int64_t* row = products + static_cast<std::size_t>(p) * b_bits;
    int q = 0;
    for (; q + 2 <= b_bits; q += 2) {
      const std::uint64_t* b0 = b + static_cast<std::size_t>(q) * b_stride;
      const std::uint64_t* b1 = b0 + b_stride;
      std::int64_t c0 = 0;
      std::int64_t c1 = 0;
      std::size_t i = 0;
      for (; i + 2 <= words; i += 2) {
        const uint64x2_t va = vld1q_u64(ap + i);
        c0 += vaddvq_u8(
            vcntq_u8(vreinterpretq_u8_u64(vandq_u64(va, vld1q_u64(b0 + i)))));
        c1 += vaddvq_u8(
            vcntq_u8(vreinterpretq_u8_u64(vandq_u64(va, vld1q_u64(b1 + i)))));
      }
      c0 += scalar_fold(ap + i, b0 + i, words - i);
      c1 += scalar_fold(ap + i, b1 + i, words - i);
      total += row[q] * c0 + row[q + 1] * c1;
    }
    if (q < b_bits) {
      total += row[q] * and_popcount_neon(
                            ap, b + static_cast<std::size_t>(q) * b_stride,
                            words);
    }
  }
  return total;
}

#endif

struct Dispatch {
  const char* name;
  PopcountFn fn;
  PlanesDotFn dot;
};

constexpr Dispatch kScalar{"scalar", &and_popcount_scalar,
                           &planes_dot_scalar};
#if defined(__x86_64__)
constexpr Dispatch kAvx2{"avx2", &and_popcount_avx2, &planes_dot_avx2};
constexpr Dispatch kAvx512{"avx512", &and_popcount_avx512,
                           &planes_dot_avx512};
#elif defined(__aarch64__)
constexpr Dispatch kNeon{"neon", &and_popcount_neon, &planes_dot_neon};
#endif

bool host_supports(const Dispatch& d) {
  if (std::strcmp(d.name, "scalar") == 0) return true;
#if defined(__x86_64__)
  __builtin_cpu_init();
  if (std::strcmp(d.name, "avx2") == 0) {
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("popcnt");
  }
  if (std::strcmp(d.name, "avx512") == 0) {
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512vpopcntdq");
  }
#elif defined(__aarch64__)
  if (std::strcmp(d.name, "neon") == 0) return true;
#endif
  return false;
}

/// Host-supported dispatches, best first. Scalar is always last.
std::vector<const Dispatch*> supported_dispatches() {
  std::vector<const Dispatch*> out;
#if defined(__x86_64__)
  if (host_supports(kAvx512)) out.push_back(&kAvx512);
  if (host_supports(kAvx2)) out.push_back(&kAvx2);
#elif defined(__aarch64__)
  out.push_back(&kNeon);
#endif
  out.push_back(&kScalar);
  return out;
}

const Dispatch* find_supported(const char* name) {
  for (const Dispatch* d : supported_dispatches()) {
    if (std::strcmp(d->name, name) == 0) return d;
  }
  return nullptr;
}

/// cpuid pick, after honoring a BPVEC_SIMD force. Unsupported or unknown
/// forces fall through to detection: a wrong env var must degrade, not
/// trap on an illegal instruction.
const Dispatch* resolve() {
  const char* env = std::getenv("BPVEC_SIMD");
  if (env != nullptr && *env != '\0' && std::strcmp(env, "auto") != 0) {
    if (const Dispatch* forced = find_supported(env)) return forced;
  }
  return supported_dispatches().front();
}

std::atomic<const Dispatch*> g_dispatch{nullptr};

const Dispatch& active() {
  const Dispatch* d = g_dispatch.load(std::memory_order_acquire);
  if (d == nullptr) {
    // Benign race: concurrent first calls resolve to the same answer
    // (resolve() is deterministic in the host + environment).
    d = resolve();
    g_dispatch.store(d, std::memory_order_release);
  }
  return *d;
}

}  // namespace

std::int64_t and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t words) {
  return active().fn(a, b, words);
}

const char* simd_variant() { return active().name; }

PopcountFn simd_popcount_fn() { return active().fn; }

std::int64_t planes_dot(const std::uint64_t* a, std::size_t a_stride,
                        int a_bits, const std::uint64_t* b,
                        std::size_t b_stride, int b_bits, std::size_t words,
                        const std::int64_t* products) {
  return active().dot(a, a_stride, a_bits, b, b_stride, b_bits, words,
                      products);
}

PlanesDotFn simd_planes_dot_fn() { return active().dot; }

bool simd_set_variant(const std::string& name) {
  if (name == "auto") {
    g_dispatch.store(resolve(), std::memory_order_release);
    return true;
  }
  const Dispatch* d = find_supported(name.c_str());
  if (d == nullptr) return false;
  g_dispatch.store(d, std::memory_order_release);
  return true;
}

std::vector<std::string> simd_available_variants() {
  std::vector<std::string> out;
  for (const Dispatch* d : supported_dispatches()) out.emplace_back(d->name);
  return out;
}

}  // namespace bpvec::kernels
