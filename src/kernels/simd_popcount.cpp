// The only translation unit compiled with ISA-specific flags (CMake adds
// -mavx2 -mpopcnt here when the configure-time probe succeeds). Keep the
// variant implementations out-of-line so no AVX2 code can leak into TUs
// compiled for the baseline ISA.

#include "src/kernels/simd.h"

#if defined(BPVEC_SIMD_AVX2)
#include <immintrin.h>
#elif defined(BPVEC_SIMD_NEON)
#include <arm_neon.h>
#endif

namespace bpvec::kernels {

namespace {

inline std::int64_t scalar_tail(const std::uint64_t* a,
                                const std::uint64_t* b, std::size_t words) {
  std::int64_t count = 0;
  for (std::size_t i = 0; i < words; ++i) {
    count += __builtin_popcountll(a[i] & b[i]);
  }
  return count;
}

}  // namespace

#if defined(BPVEC_SIMD_AVX2)

const char* simd_variant() { return "avx2"; }

std::int64_t and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t words) {
  std::int64_t count = 0;
  std::size_t i = 0;
  // 4 words per vector AND; hardware POPCNT on the extracted lanes (the
  // -mpopcnt half of the flag pair). Unaligned loads: planes are packed
  // back-to-back per (row, significance), not over-aligned.
  for (; i + 4 <= words; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i v = _mm256_and_si256(va, vb);
    count += __builtin_popcountll(
        static_cast<std::uint64_t>(_mm256_extract_epi64(v, 0)));
    count += __builtin_popcountll(
        static_cast<std::uint64_t>(_mm256_extract_epi64(v, 1)));
    count += __builtin_popcountll(
        static_cast<std::uint64_t>(_mm256_extract_epi64(v, 2)));
    count += __builtin_popcountll(
        static_cast<std::uint64_t>(_mm256_extract_epi64(v, 3)));
  }
  return count + scalar_tail(a + i, b + i, words - i);
}

#elif defined(BPVEC_SIMD_NEON)

const char* simd_variant() { return "neon"; }

std::int64_t and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t words) {
  std::int64_t count = 0;
  std::size_t i = 0;
  for (; i + 2 <= words; i += 2) {
    const uint64x2_t va = vld1q_u64(a + i);
    const uint64x2_t vb = vld1q_u64(b + i);
    const uint8x16_t bits = vcntq_u8(vreinterpretq_u8_u64(vandq_u64(va, vb)));
    count += vaddvq_u8(bits);
  }
  return count + scalar_tail(a + i, b + i, words - i);
}

#else

const char* simd_variant() { return "scalar"; }

std::int64_t and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t words) {
  return scalar_tail(a, b, words);
}

#endif

}  // namespace bpvec::kernels
