#include "src/kernels/packed_kernels.h"

#include <algorithm>
#include <cstddef>

#include "src/common/error.h"
#include "src/dnn/quantize.h"
#include "src/kernels/simd.h"

namespace bpvec::kernels {

namespace {

/// Runs fn(0..n-1) over the pool (or inline when pool is null), choosing
/// a grain that amortizes queue overhead when each output is cheap.
/// Outputs are independent, so any schedule yields identical results.
void for_each_output(engine::ThreadPool* pool, std::size_t n,
                     std::int64_t word_ops_per_output,
                     const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t grain = static_cast<std::size_t>(
      std::max<std::int64_t>(1, 4096 / std::max<std::int64_t>(
                                    1, word_ops_per_output)));
  pool->parallel_for(n, fn, grain);
}

/// Concurrent lanes a kernel's transient allocations can occupy:
/// parallel_for is caller-participating, so a k-thread pool runs k+1
/// tasks at once. Part of the analytic peak_bytes model — a pure
/// function of the pool, never a sampled high-water mark.
std::int64_t workers(engine::ThreadPool* pool) {
  return pool == nullptr ? 1 : pool->num_threads() + 1;
}

/// Storage footprint of a BitPlanes over rows×cols values at `bits`.
std::int64_t planes_bytes(std::int64_t rows, std::int64_t cols, int bits) {
  return rows * bits * ((cols + 63) / 64) * 8;
}

void note_peak(KernelStats* stats, std::int64_t bytes) {
  if (stats != nullptr) stats->peak_bytes = std::max(stats->peak_bytes, bytes);
}

void add_gemm_work(KernelStats* stats, const BitPlanes& a,
                   const BitPlanes& b) {
  if (stats == nullptr) return;
  // Work accounting is a pure function of the shapes — never touched
  // inside the parallel region, so it cannot race or drift.
  stats->macs += a.rows * b.rows * a.cols;
  stats->word_ops += a.rows * b.rows * static_cast<std::int64_t>(a.bits) *
                     b.bits * static_cast<std::int64_t>(a.words);
}

}  // namespace

std::vector<std::int64_t> packed_gemm(const BitPlanes& a, const BitPlanes& b,
                                      engine::ThreadPool* pool,
                                      KernelStats* stats,
                                      const GemmBlocking& blocking) {
  BPVEC_CHECK_MSG(a.cols == b.cols, "packed gemm: K dimensions disagree");
  BPVEC_CHECK_MSG(
      blocking.m_rows >= 1 && blocking.n_rows >= 1 && blocking.words >= 1,
      "packed gemm: block sizes must be positive");
  const std::int64_t m_blocks =
      (a.rows + blocking.m_rows - 1) / blocking.m_rows;
  const std::int64_t n_blocks =
      (b.rows + blocking.n_rows - 1) / blocking.n_rows;
  const std::size_t tiles = static_cast<std::size_t>(m_blocks * n_blocks);
  std::vector<std::int64_t> out(static_cast<std::size_t>(a.rows * b.rows), 0);
  const std::int64_t per_tile_words = blocking.m_rows * blocking.n_rows *
                                      a.bits * b.bits *
                                      static_cast<std::int64_t>(a.words);
  // Hoisted out of the tile loops: the resolved fused plane-pair dot —
  // ONE indirect call per (m, n, chunk) covers all bits² significance
  // pairs, reusing each loaded A-vector across B-planes inside the SIMD
  // kernel — and the per-(p, q) significance products it consumes.
  const PlanesDotFn dot = simd_planes_dot_fn();
  std::vector<std::int64_t> plane_products(
      static_cast<std::size_t>(a.bits) * b.bits);
  for (int p = 0; p < a.bits; ++p) {
    for (int q = 0; q < b.bits; ++q) {
      plane_products[static_cast<std::size_t>(p) * b.bits + q] =
          plane_weight(p, a.bits, a.is_signed) *
          plane_weight(q, b.bits, b.is_signed);
    }
  }
  // One task per (m-block, n-block) output tile: disjoint writes, shared
  // immutable operands. Inside a tile, K is consumed in chunks of
  // blocking.words so the tile's plane segments stay cache-resident
  // across its bits² plane-pair passes; per (m, n) the chunk/plane sums
  // are int64 additions, so every order — and every block geometry —
  // yields bit-identical results.
  for_each_output(pool, tiles, per_tile_words, [&](std::size_t ti) {
    const std::int64_t m0 =
        (static_cast<std::int64_t>(ti) / n_blocks) * blocking.m_rows;
    const std::int64_t n0 =
        (static_cast<std::int64_t>(ti) % n_blocks) * blocking.n_rows;
    const std::int64_t m1 = std::min(a.rows, m0 + blocking.m_rows);
    const std::int64_t n1 = std::min(b.rows, n0 + blocking.n_rows);
    const std::int64_t tn = n1 - n0;
    std::vector<std::int64_t> acc(static_cast<std::size_t>((m1 - m0) * tn), 0);
    for (std::size_t w0 = 0; w0 < a.words; w0 += blocking.words) {
      const std::size_t chunk = std::min(blocking.words, a.words - w0);
      for (std::int64_t m = m0; m < m1; ++m) {
        std::int64_t* acc_row =
            acc.data() + static_cast<std::size_t>(m - m0) * tn;
        for (std::int64_t n = n0; n < n1; ++n) {
          // All bits² plane pairs of this (m, n, chunk) in one fused
          // call; acc is touched once per (m, n, chunk), not once per
          // plane pair.
          acc_row[n - n0] +=
              dot(a.plane(m, 0) + w0, a.words, a.bits, b.plane(n, 0) + w0,
                  b.words, b.bits, chunk, plane_products.data());
        }
      }
    }
    for (std::int64_t m = m0; m < m1; ++m) {
      for (std::int64_t n = n0; n < n1; ++n) {
        out[static_cast<std::size_t>(m * b.rows + n)] =
            acc[static_cast<std::size_t>((m - m0) * tn + (n - n0))];
      }
    }
  });
  add_gemm_work(stats, a, b);
  // Transients: one tile accumulator per concurrent task.
  note_peak(stats,
            workers(pool) * blocking.m_rows * blocking.n_rows *
                static_cast<std::int64_t>(sizeof(std::int64_t)));
  return out;
}

std::vector<std::int64_t> packed_gemm_unblocked(const BitPlanes& a,
                                                const BitPlanes& b,
                                                engine::ThreadPool* pool,
                                                KernelStats* stats) {
  BPVEC_CHECK_MSG(a.cols == b.cols, "packed gemm: K dimensions disagree");
  const std::size_t total = static_cast<std::size_t>(a.rows * b.rows);
  std::vector<std::int64_t> out(total, 0);
  const std::int64_t per_output_words =
      static_cast<std::int64_t>(a.bits) * b.bits *
      static_cast<std::int64_t>(a.words);
  // Flattened (m, n) output index: every index writes one disjoint
  // element, each consuming its full-length planes in one pass.
  for_each_output(pool, total, per_output_words, [&](std::size_t i) {
    const std::int64_t m = static_cast<std::int64_t>(i) / b.rows;
    const std::int64_t n = static_cast<std::int64_t>(i) % b.rows;
    out[i] = packed_dot(a, m, b, n);
  });
  add_gemm_work(stats, a, b);
  return out;
}

std::vector<std::int64_t> packed_conv(const dnn::Tensor& input,
                                      const BitPlanes& w,
                                      const dnn::ConvParams& p, int x_bits,
                                      engine::ThreadPool* pool,
                                      KernelStats* stats) {
  const std::int64_t k = static_cast<std::int64_t>(p.in_c) * p.kh * p.kw;
  BPVEC_CHECK_MSG(w.rows == p.out_c && w.cols == k,
                  "packed conv: filter planes do not match the conv shape");
  BPVEC_CHECK(input.channels() == p.in_c && input.height() == p.in_h &&
              input.width() == p.in_w);
  const std::int64_t pixels =
      static_cast<std::int64_t>(p.out_h()) * p.out_w();
  std::vector<std::int64_t> out(
      static_cast<std::size_t>(p.out_c) * pixels, 0);
  const std::int64_t tile_rows = std::min(kConvPixelTile, std::max<std::int64_t>(pixels, 1));
  const std::size_t tiles =
      static_cast<std::size_t>((pixels + kConvPixelTile - 1) / kConvPixelTile);
  const std::int64_t per_tile_words = tile_rows * p.out_c * x_bits * w.bits *
                                      static_cast<std::int64_t>(w.words);
  // Each task gathers ≤ kConvPixelTile windows straight from the input
  // tensor (at_padded supplies the zero padding), packs them, and dots
  // them against the shared filter planes, writing its disjoint pixel
  // range of every output channel in reference order. The gathered tile
  // is the ONLY activation transient — the full im2col matrix never
  // exists.
  for_each_output(pool, tiles, per_tile_words, [&](std::size_t ti) {
    const std::int64_t m0 = static_cast<std::int64_t>(ti) * kConvPixelTile;
    const std::int64_t m1 = std::min(pixels, m0 + kConvPixelTile);
    std::vector<std::int32_t> window(static_cast<std::size_t>((m1 - m0) * k));
    for (std::int64_t m = m0; m < m1; ++m) {
      const int oy = static_cast<int>(m / p.out_w());
      const int ox = static_cast<int>(m % p.out_w());
      std::int32_t* dst =
          window.data() + static_cast<std::size_t>(m - m0) * k;
      std::int64_t col = 0;
      // Same (ic, ky, kx) tap order as dnn::im2col — the filter planes
      // were packed over exactly this K layout.
      for (int ic = 0; ic < p.in_c; ++ic) {
        for (int ky = 0; ky < p.kh; ++ky) {
          const int iy = oy * p.stride - p.pad + ky;
          for (int kx = 0; kx < p.kw; ++kx, ++col) {
            const int ix = ox * p.stride - p.pad + kx;
            dst[col] = input.at_padded(ic, iy, ix);
          }
        }
      }
    }
    const BitPlanes x = pack_values(window.data(), m1 - m0, k, x_bits);
    for (std::int64_t m = m0; m < m1; ++m) {
      for (int oc = 0; oc < p.out_c; ++oc) {
        out[static_cast<std::size_t>(oc) * pixels + m] =
            packed_dot(x, m - m0, w, oc);
      }
    }
  });
  if (stats != nullptr) {
    stats->macs += pixels * p.out_c * k;
    stats->word_ops += pixels * p.out_c * static_cast<std::int64_t>(x_bits) *
                       w.bits * static_cast<std::int64_t>(w.words);
  }
  // Transients: the shared filter planes plus, per concurrent task, one
  // gathered int32 window tile and its packed planes.
  note_peak(stats,
            planes_bytes(p.out_c, k, w.bits) +
                workers(pool) *
                    (tile_rows * k *
                         static_cast<std::int64_t>(sizeof(std::int32_t)) +
                     planes_bytes(tile_rows, k, x_bits)));
  return out;
}

std::vector<std::int64_t> packed_conv(const dnn::Tensor& input,
                                      const std::vector<std::int32_t>& weights,
                                      const dnn::ConvParams& p, int x_bits,
                                      int w_bits, engine::ThreadPool* pool,
                                      KernelStats* stats) {
  const std::int64_t k = static_cast<std::int64_t>(p.in_c) * p.kh * p.kw;
  BPVEC_CHECK(static_cast<std::int64_t>(weights.size()) == p.out_c * k);
  // The weight vector is already row-major [out_c][in_c·kh·kw] — pack it
  // in place, no weights_as_matrix copy.
  const BitPlanes w = pack_values(weights.data(), p.out_c, k, w_bits);
  return packed_conv(input, w, p, x_bits, pool, stats);
}

std::vector<std::int64_t> packed_conv_im2col(
    const dnn::Tensor& input, const std::vector<std::int32_t>& weights,
    const dnn::ConvParams& p, int x_bits, int w_bits,
    engine::ThreadPool* pool, KernelStats* stats) {
  // The systolic model's lowering, executed literally: materialize the
  // full patch matrix, pack both operands, GEMM, transpose.
  const dnn::Matrix patches = dnn::im2col(input, p);
  const dnn::Matrix wm = dnn::weights_as_matrix(weights, p);
  const BitPlanes x = pack_rows(patches, x_bits);
  const BitPlanes w = pack_rows(wm, w_bits);
  const std::vector<std::int64_t> gemm = packed_gemm(x, w, pool, stats);

  // gemm[m·out_c + oc] with m = oy·out_w + ox  →  reference order
  // out[(oc·out_h + oy)·out_w + ox] = out[oc·(out_h·out_w) + m].
  const std::int64_t pixels =
      static_cast<std::int64_t>(p.out_h()) * p.out_w();
  std::vector<std::int64_t> out(gemm.size());
  for (std::int64_t m = 0; m < pixels; ++m) {
    for (int oc = 0; oc < p.out_c; ++oc) {
      out[static_cast<std::size_t>(oc) * pixels + m] =
          gemm[static_cast<std::size_t>(m) * p.out_c + oc];
    }
  }
  // Transients: patch matrix + weight matrix copy + both packed operand
  // plane sets + the pre-transpose GEMM buffer, all live at once. This
  // is the number direct conv exists to beat.
  note_peak(stats,
            patches.rows * patches.cols *
                    static_cast<std::int64_t>(sizeof(std::int32_t)) +
                wm.rows * wm.cols *
                    static_cast<std::int64_t>(sizeof(std::int32_t)) +
                planes_bytes(patches.rows, patches.cols, x_bits) +
                planes_bytes(wm.rows, wm.cols, w_bits) +
                static_cast<std::int64_t>(gemm.size()) *
                    static_cast<std::int64_t>(sizeof(std::int64_t)));
  return out;
}

std::vector<std::int64_t> packed_fc(const std::vector<std::int32_t>& input,
                                    const BitPlanes& w, const dnn::FcParams& p,
                                    int x_bits, engine::ThreadPool* pool,
                                    KernelStats* stats) {
  BPVEC_CHECK(static_cast<int>(input.size()) == p.in_features);
  BPVEC_CHECK_MSG(w.rows == p.out_features && w.cols == p.in_features,
                  "packed fc: weight planes do not match the fc shape");
  const BitPlanes x = pack_vector(input, x_bits);
  // Single-row GEMM: out[n] = Σ_k in[k]·w[n][k], already fc_reference
  // order.
  auto out = packed_gemm(x, w, pool, stats);
  note_peak(stats, planes_bytes(1, p.in_features, x_bits));
  return out;
}

std::vector<std::int64_t> packed_fc(const std::vector<std::int32_t>& input,
                                    const std::vector<std::int32_t>& weights,
                                    const dnn::FcParams& p, int x_bits,
                                    int w_bits, engine::ThreadPool* pool,
                                    KernelStats* stats) {
  BPVEC_CHECK(static_cast<std::int64_t>(weights.size()) ==
              static_cast<std::int64_t>(p.in_features) * p.out_features);
  const BitPlanes w =
      pack_values(weights.data(), p.out_features, p.in_features, w_bits);
  auto out = packed_fc(input, w, p, x_bits, pool, stats);
  note_peak(stats, planes_bytes(p.out_features, p.in_features, w_bits) +
                       planes_bytes(1, p.in_features, x_bits));
  return out;
}

std::vector<std::int32_t> packed_rnn_step(const std::vector<std::int32_t>& x,
                                          const std::vector<std::int32_t>& h,
                                          const BitPlanes& w, int hidden,
                                          int shift, int out_bits, int x_bits,
                                          engine::ThreadPool* pool,
                                          KernelStats* stats) {
  const std::int64_t k = static_cast<std::int64_t>(x.size() + h.size());
  BPVEC_CHECK_MSG(w.rows == hidden && w.cols == k,
                  "packed rnn step: gate planes do not match [x; h]");
  std::vector<std::int32_t> xh;
  xh.reserve(static_cast<std::size_t>(k));
  xh.insert(xh.end(), x.begin(), x.end());
  xh.insert(xh.end(), h.begin(), h.end());
  const BitPlanes xp = pack_vector(xh, x_bits);
  const std::vector<std::int64_t> acc = packed_gemm(xp, w, pool, stats);
  std::vector<std::int32_t> out(static_cast<std::size_t>(hidden));
  for (int n = 0; n < hidden; ++n) {
    out[static_cast<std::size_t>(n)] =
        dnn::requantize(acc[static_cast<std::size_t>(n)], shift, out_bits);
  }
  note_peak(stats,
            k * static_cast<std::int64_t>(sizeof(std::int32_t)) +
                planes_bytes(1, k, x_bits) +
                static_cast<std::int64_t>(acc.size()) *
                    static_cast<std::int64_t>(sizeof(std::int64_t)));
  return out;
}

std::vector<std::int32_t> packed_rnn_step(
    const std::vector<std::int32_t>& x, const std::vector<std::int32_t>& h,
    const std::vector<std::int32_t>& weights, int hidden, int shift,
    int out_bits, int x_bits, int w_bits, engine::ThreadPool* pool,
    KernelStats* stats) {
  const std::int64_t k = static_cast<std::int64_t>(x.size() + h.size());
  BPVEC_CHECK(static_cast<std::int64_t>(weights.size()) ==
              static_cast<std::int64_t>(hidden) * k);
  const BitPlanes w = pack_values(weights.data(), hidden, k, w_bits);
  auto out = packed_rnn_step(x, h, w, hidden, shift, out_bits, x_bits, pool,
                             stats);
  note_peak(stats, planes_bytes(hidden, k, w_bits));
  return out;
}

dnn::Tensor packed_pool(const dnn::Tensor& input, const dnn::PoolParams& p,
                        engine::ThreadPool* pool, KernelStats* stats) {
  BPVEC_CHECK(input.channels() == p.channels && input.height() == p.in_h &&
              input.width() == p.in_w);
  const int oh = p.out_h(), ow = p.out_w();
  dnn::Tensor out(p.channels, oh, ow);
  // Clamped window bounds instead of per-element bounds checks — a
  // structurally different loop from pool_reference that must still
  // agree bit-for-bit on every element.
  const std::int64_t per_channel_work =
      static_cast<std::int64_t>(oh) * ow * p.k * p.k;
  for_each_output(
      pool, static_cast<std::size_t>(p.channels), per_channel_work,
      [&](std::size_t ci) {
        const int c = static_cast<int>(ci);
        for (int oy = 0; oy < oh; ++oy) {
          const int iy0 = oy * p.stride;
          const int iy1 = std::min(iy0 + p.k, p.in_h);
          for (int ox = 0; ox < ow; ++ox) {
            const int ix0 = ox * p.stride;
            const int ix1 = std::min(ix0 + p.k, p.in_w);
            const int count = (iy1 - iy0) * (ix1 - ix0);
            BPVEC_CHECK(count > 0);
            if (p.kind == dnn::PoolKind::kMax) {
              std::int32_t best = INT32_MIN;
              for (int iy = iy0; iy < iy1; ++iy) {
                for (int ix = ix0; ix < ix1; ++ix) {
                  best = std::max(best, input.at(c, iy, ix));
                }
              }
              out.at(c, oy, ox) = best;
            } else {
              std::int64_t sum = 0;
              for (int iy = iy0; iy < iy1; ++iy) {
                for (int ix = ix0; ix < ix1; ++ix) {
                  sum += input.at(c, iy, ix);
                }
              }
              const std::int64_t half = count / 2;
              out.at(c, oy, ox) = static_cast<std::int32_t>(
                  sum >= 0 ? (sum + half) / count : (sum - half) / count);
            }
          }
        }
      });
  if (stats != nullptr) {
    stats->word_ops +=
        static_cast<std::int64_t>(p.channels) * per_channel_work;
  }
  return out;
}

}  // namespace bpvec::kernels
