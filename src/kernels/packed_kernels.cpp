#include "src/kernels/packed_kernels.h"

#include <algorithm>
#include <cstddef>

#include "src/common/error.h"
#include "src/dnn/quantize.h"

namespace bpvec::kernels {

namespace {

/// Runs fn(0..n-1) over the pool (or inline when pool is null), choosing
/// a grain that amortizes queue overhead when each output is cheap.
/// Outputs are independent, so any schedule yields identical results.
void for_each_output(engine::ThreadPool* pool, std::size_t n,
                     std::int64_t word_ops_per_output,
                     const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t grain = static_cast<std::size_t>(
      std::max<std::int64_t>(1, 4096 / std::max<std::int64_t>(
                                    1, word_ops_per_output)));
  pool->parallel_for(n, fn, grain);
}

}  // namespace

std::vector<std::int64_t> packed_gemm(const BitPlanes& a, const BitPlanes& b,
                                      engine::ThreadPool* pool,
                                      KernelStats* stats) {
  BPVEC_CHECK_MSG(a.cols == b.cols, "packed gemm: K dimensions disagree");
  const std::size_t total = static_cast<std::size_t>(a.rows * b.rows);
  std::vector<std::int64_t> out(total, 0);
  const std::int64_t per_output_words =
      static_cast<std::int64_t>(a.bits) * b.bits *
      static_cast<std::int64_t>(a.words);
  // Flattened (m, n) output index: works for tall GEMMs (conv patches)
  // and single-row ones (fc / recurrent) alike; every index writes one
  // disjoint element.
  for_each_output(pool, total, per_output_words, [&](std::size_t i) {
    const std::int64_t m = static_cast<std::int64_t>(i) / b.rows;
    const std::int64_t n = static_cast<std::int64_t>(i) % b.rows;
    out[i] = packed_dot(a, m, b, n);
  });
  if (stats != nullptr) {
    // Work accounting is a pure function of the shapes — never touched
    // inside the parallel region, so it cannot race or drift.
    stats->macs += a.rows * b.rows * a.cols;
    stats->word_ops += static_cast<std::int64_t>(total) * per_output_words;
  }
  return out;
}

std::vector<std::int64_t> packed_conv(const dnn::Tensor& input,
                                      const std::vector<std::int32_t>& weights,
                                      const dnn::ConvParams& p, int x_bits,
                                      int w_bits, engine::ThreadPool* pool,
                                      KernelStats* stats) {
  // Same lowering the systolic model prices: the packed path executes the
  // exact GEMM view the analytical backends cost.
  const dnn::Matrix patches = dnn::im2col(input, p);
  const dnn::Matrix wm = dnn::weights_as_matrix(weights, p);
  const BitPlanes x = pack_rows(patches, x_bits);
  const BitPlanes w = pack_rows(wm, w_bits);
  const std::vector<std::int64_t> gemm = packed_gemm(x, w, pool, stats);

  // gemm[m·out_c + oc] with m = oy·out_w + ox  →  reference order
  // out[(oc·out_h + oy)·out_w + ox] = out[oc·(out_h·out_w) + m].
  const std::int64_t pixels =
      static_cast<std::int64_t>(p.out_h()) * p.out_w();
  std::vector<std::int64_t> out(gemm.size());
  for (std::int64_t m = 0; m < pixels; ++m) {
    for (int oc = 0; oc < p.out_c; ++oc) {
      out[static_cast<std::size_t>(oc) * pixels + m] =
          gemm[static_cast<std::size_t>(m) * p.out_c + oc];
    }
  }
  return out;
}

std::vector<std::int64_t> packed_fc(const std::vector<std::int32_t>& input,
                                    const std::vector<std::int32_t>& weights,
                                    const dnn::FcParams& p, int x_bits,
                                    int w_bits, engine::ThreadPool* pool,
                                    KernelStats* stats) {
  BPVEC_CHECK(static_cast<int>(input.size()) == p.in_features);
  BPVEC_CHECK(static_cast<std::int64_t>(weights.size()) ==
              static_cast<std::int64_t>(p.in_features) * p.out_features);
  const BitPlanes x = pack_vector(input, x_bits);
  dnn::Matrix wm;
  wm.rows = p.out_features;
  wm.cols = p.in_features;
  wm.data = weights;
  const BitPlanes w = pack_rows(wm, w_bits);
  // Single-row GEMM: out[n] = Σ_k in[k]·w[n][k], already fc_reference
  // order.
  return packed_gemm(x, w, pool, stats);
}

std::vector<std::int32_t> packed_rnn_step(
    const std::vector<std::int32_t>& x, const std::vector<std::int32_t>& h,
    const std::vector<std::int32_t>& weights, int hidden, int shift,
    int out_bits, int x_bits, int w_bits, engine::ThreadPool* pool,
    KernelStats* stats) {
  const std::int64_t k = static_cast<std::int64_t>(x.size() + h.size());
  BPVEC_CHECK(static_cast<std::int64_t>(weights.size()) ==
              static_cast<std::int64_t>(hidden) * k);
  std::vector<std::int32_t> xh;
  xh.reserve(static_cast<std::size_t>(k));
  xh.insert(xh.end(), x.begin(), x.end());
  xh.insert(xh.end(), h.begin(), h.end());
  const BitPlanes xp = pack_vector(xh, x_bits);
  dnn::Matrix wm;
  wm.rows = hidden;
  wm.cols = k;
  wm.data = weights;
  const BitPlanes wp = pack_rows(wm, w_bits);
  const std::vector<std::int64_t> acc = packed_gemm(xp, wp, pool, stats);
  std::vector<std::int32_t> out(static_cast<std::size_t>(hidden));
  for (int n = 0; n < hidden; ++n) {
    out[static_cast<std::size_t>(n)] =
        dnn::requantize(acc[static_cast<std::size_t>(n)], shift, out_bits);
  }
  return out;
}

dnn::Tensor packed_pool(const dnn::Tensor& input, const dnn::PoolParams& p,
                        engine::ThreadPool* pool, KernelStats* stats) {
  BPVEC_CHECK(input.channels() == p.channels && input.height() == p.in_h &&
              input.width() == p.in_w);
  const int oh = p.out_h(), ow = p.out_w();
  dnn::Tensor out(p.channels, oh, ow);
  // Clamped window bounds instead of per-element bounds checks — a
  // structurally different loop from pool_reference that must still
  // agree bit-for-bit on every element.
  const std::int64_t per_channel_work =
      static_cast<std::int64_t>(oh) * ow * p.k * p.k;
  for_each_output(
      pool, static_cast<std::size_t>(p.channels), per_channel_work,
      [&](std::size_t ci) {
        const int c = static_cast<int>(ci);
        for (int oy = 0; oy < oh; ++oy) {
          const int iy0 = oy * p.stride;
          const int iy1 = std::min(iy0 + p.k, p.in_h);
          for (int ox = 0; ox < ow; ++ox) {
            const int ix0 = ox * p.stride;
            const int ix1 = std::min(ix0 + p.k, p.in_w);
            const int count = (iy1 - iy0) * (ix1 - ix0);
            BPVEC_CHECK(count > 0);
            if (p.kind == dnn::PoolKind::kMax) {
              std::int32_t best = INT32_MIN;
              for (int iy = iy0; iy < iy1; ++iy) {
                for (int ix = ix0; ix < ix1; ++ix) {
                  best = std::max(best, input.at(c, iy, ix));
                }
              }
              out.at(c, oy, ox) = best;
            } else {
              std::int64_t sum = 0;
              for (int iy = iy0; iy < iy1; ++iy) {
                for (int ix = ix0; ix < ix1; ++ix) {
                  sum += input.at(c, iy, ix);
                }
              }
              const std::int64_t half = count / 2;
              out.at(c, oy, ox) = static_cast<std::int32_t>(
                  sum >= 0 ? (sum + half) / count : (sum - half) / count);
            }
          }
        }
      });
  if (stats != nullptr) {
    stats->word_ops +=
        static_cast<std::int64_t>(p.channels) * per_channel_work;
  }
  return out;
}

}  // namespace bpvec::kernels
