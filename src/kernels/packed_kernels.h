// Bit-packed layer kernels — the fast functional execution path.
//
// Each kernel computes a layer's integer arithmetic exactly, via the
// bit-plane popcount GEMM (see bitplane.h), and is verified bit-for-bit
// against dnn/reference_ops (and, through the functional backend,
// against the scalar CVU executor in core/gemm_executor). Convolutions
// go through the same im2col lowering the systolic model prices
// (dnn/gemm_lowering), so the packed path executes precisely the GEMM
// view the analytical backends cost.
//
// Parallelism: kernels take an optional engine::ThreadPool and split the
// output-row dimension into tiles. Tiles write disjoint output ranges
// and read shared immutable packed operands, so results are
// bit-identical at any thread count (integer arithmetic, no reduction
// reordering across tiles).
#pragma once

#include <cstdint>
#include <vector>

#include "src/dnn/gemm_lowering.h"
#include "src/dnn/layer.h"
#include "src/dnn/tensor.h"
#include "src/engine/thread_pool.h"
#include "src/kernels/bitplane.h"

namespace bpvec::kernels {

/// Work accounting for one kernel invocation (fills the measured half of
/// the measured-vs-modeled comparison).
struct KernelStats {
  std::int64_t macs = 0;      // multiply-accumulates computed
  std::int64_t word_ops = 0;  // 64-bit AND+popcount words consumed
};

/// out[m·b.rows + n] = Σ_k a[m][k]·b[n][k], exact in int64. Output rows
/// (the M dimension) are tiled over `pool` when given; pass nullptr for
/// the serial loop.
std::vector<std::int64_t> packed_gemm(const BitPlanes& a, const BitPlanes& b,
                                      engine::ThreadPool* pool = nullptr,
                                      KernelStats* stats = nullptr);

/// Packed convolution: im2col → pack → popcount GEMM. Returns results in
/// conv2d_reference order (out[(oc·out_h + oy)·out_w + ox]) so the two
/// are directly comparable.
std::vector<std::int64_t> packed_conv(const dnn::Tensor& input,
                                      const std::vector<std::int32_t>& weights,
                                      const dnn::ConvParams& p, int x_bits,
                                      int w_bits,
                                      engine::ThreadPool* pool = nullptr,
                                      KernelStats* stats = nullptr);

/// Packed fully-connected layer, fc_reference order.
std::vector<std::int64_t> packed_fc(const std::vector<std::int32_t>& input,
                                    const std::vector<std::int32_t>& weights,
                                    const dnn::FcParams& p, int x_bits,
                                    int w_bits,
                                    engine::ThreadPool* pool = nullptr,
                                    KernelStats* stats = nullptr);

/// One packed recurrent step, bit-identical to rnn_step_reference:
/// h' = requantize(W·[x; h], shift, out_bits). `weights` is
/// [hidden][x.size() + h.size()] row-major; x and h values must fit
/// `x_bits` signed.
std::vector<std::int32_t> packed_rnn_step(
    const std::vector<std::int32_t>& x, const std::vector<std::int32_t>& h,
    const std::vector<std::int32_t>& weights, int hidden, int shift,
    int out_bits, int x_bits, int w_bits,
    engine::ThreadPool* pool = nullptr, KernelStats* stats = nullptr);

/// Pooling on integer tensors, bit-identical to pool_reference but
/// structured as an independent window-streaming implementation (the
/// cross-check would be vacuous if both sides shared one loop). Channels
/// are tiled over `pool` when given.
dnn::Tensor packed_pool(const dnn::Tensor& input, const dnn::PoolParams& p,
                        engine::ThreadPool* pool = nullptr,
                        KernelStats* stats = nullptr);

}  // namespace bpvec::kernels
