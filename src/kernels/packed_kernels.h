// Bit-packed layer kernels — the fast functional execution path.
//
// Each kernel computes a layer's integer arithmetic exactly, via the
// bit-plane popcount GEMM (see bitplane.h), and is verified bit-for-bit
// against dnn/reference_ops (and, through the functional backend,
// against the scalar CVU executor in core/gemm_executor).
//
// Throughput design (this is the hot path of every functional probe):
//   * packed_gemm is cache-blocked: output tiles of kGemmBlockM ×
//     kGemmBlockN rows are computed over K-word chunks of kGemmBlockWords
//     so the operand planes a tile touches stay L1-resident instead of
//     being streamed bits-squared times. Blocking only reorders int64
//     additions, so results are bit-identical to the unblocked fold at
//     any block size (packed_gemm_unblocked remains as the in-run
//     baseline the perf gate measures against).
//   * packed_conv is DIRECT (im2col-free): each filter is packed once,
//     and output pixels stream through per-task scratch tiles packed
//     straight from the input tensor — the O(out_h·out_w·k²·C) im2col
//     materialization never exists. packed_conv_im2col keeps the old
//     lowering alive as the exactness/peak-memory baseline;
//     KernelStats::peak_bytes quantifies the difference.
//   * conv/fc/rnn kernels take pre-packed weight planes (BitPlanes)
//     overloads so a persistent weight cache (weight_cache.h) can
//     amortize packing across probes; the value-vector overloads pack
//     once and delegate.
//
// Parallelism: kernels take an optional engine::ThreadPool and split
// output tiles across it. Tiles write disjoint output ranges and read
// shared immutable packed operands, so results are bit-identical at any
// thread count (integer arithmetic, no reduction reordering across
// tiles).
#pragma once

#include <cstdint>
#include <vector>

#include "src/dnn/gemm_lowering.h"
#include "src/dnn/layer.h"
#include "src/dnn/tensor.h"
#include "src/engine/thread_pool.h"
#include "src/kernels/bitplane.h"

namespace bpvec::kernels {

/// Work accounting for one kernel invocation (fills the measured half of
/// the measured-vs-modeled comparison).
struct KernelStats {
  std::int64_t macs = 0;      // multiply-accumulates computed
  std::int64_t word_ops = 0;  // 64-bit AND+popcount words consumed
  /// Peak transient working-set bytes the kernel allocated beyond its
  /// inputs and final output (im2col buffers, packed operand planes,
  /// scratch window tiles, per-task accumulators). Computed analytically
  /// from the shapes and the worker count — deterministic, never sampled
  /// — and folded with max() across calls, so one KernelStats can track
  /// a whole probe. This is the number that proves direct conv beats the
  /// im2col lowering on memory.
  std::int64_t peak_bytes = 0;
};

// Default GEMM block sizes (see the sweep in bench/functional_kernels,
// which reports these against neighboring geometries in-run, on the
// machine being measured). Two regimes drove the choices:
//   * kGemmBlockWords = 256 (16 Ki lanes per chunk). Below ~256 words a
//     per-(m,n) pass's operand planes (2 · bits · words · 8 B ≈ 18 KiB
//     for 8-bit fc6) are ALREADY L1-resident, so finer K-chunks only add
//     per-chunk call overhead — the sweep shows words = 32 losing ~30%
//     to words = 256. The chunk exists to bound the working set for
//     pathological K (beyond ~16 Ki lanes a chunk of one tile touches
//     (8+8)·8·256·8 B = 256 KiB, held L2-resident across the tile's
//     bits² plane-pair passes instead of streaming from L3/DRAM).
//   * kGemmBlockM = kGemmBlockN = 8: an 8×8 output tile reuses each
//     loaded B-plane segment across 8 A-rows (and vice versa) while the
//     64-entry int64 accumulator tile stays register/L1-trivial; the
//     sweep shows the m/n choice is flat within noise at these probe
//     sizes, so the smallest geometry with full reuse wins.
inline constexpr std::int64_t kGemmBlockM = 8;
inline constexpr std::int64_t kGemmBlockN = 8;
inline constexpr std::size_t kGemmBlockWords = 256;

/// Cache-blocking geometry for packed_gemm. Any positive values are
/// valid (tails are handled); results are bit-identical across
/// geometries because blocking only reorders exact int64 additions.
struct GemmBlocking {
  std::int64_t m_rows = kGemmBlockM;  // A-rows (outputs) per tile
  std::int64_t n_rows = kGemmBlockN;  // B-rows (outputs) per tile
  std::size_t words = kGemmBlockWords;  // K-words per resident chunk
};

/// out[m·b.rows + n] = Σ_k a[m][k]·b[n][k], exact in int64, cache-blocked
/// per `blocking`. Output tiles are distributed over `pool` when given;
/// pass nullptr for the serial loop.
std::vector<std::int64_t> packed_gemm(const BitPlanes& a, const BitPlanes& b,
                                      engine::ThreadPool* pool = nullptr,
                                      KernelStats* stats = nullptr,
                                      const GemmBlocking& blocking = {});

/// The pre-blocking baseline: flat (m, n) outputs, each consuming its
/// full-length planes in one pass. Bit-identical to packed_gemm; kept so
/// the bench/CI perf gate can assert blocked ≥ unblocked in the same
/// run, on the same machine.
std::vector<std::int64_t> packed_gemm_unblocked(
    const BitPlanes& a, const BitPlanes& b,
    engine::ThreadPool* pool = nullptr, KernelStats* stats = nullptr);

/// Output pixels per direct-convolution scratch tile: bounds the only
/// transient the direct path allocates (one tile of gathered windows per
/// worker) while keeping enough rows per pack/dot pass to amortize
/// per-tile overhead.
inline constexpr std::int64_t kConvPixelTile = 64;

/// Direct packed convolution over pre-packed filter planes (`w` is
/// pack_values over the [out_c][in_c·kh·kw] weight vector): output
/// pixels stream through per-task scratch tiles of ≤ kConvPixelTile
/// gathered windows — no im2col matrix is ever materialized. Returns
/// results in conv2d_reference order (out[(oc·out_h + oy)·out_w + ox]).
std::vector<std::int64_t> packed_conv(const dnn::Tensor& input,
                                      const BitPlanes& w,
                                      const dnn::ConvParams& p, int x_bits,
                                      engine::ThreadPool* pool = nullptr,
                                      KernelStats* stats = nullptr);

/// Direct packed convolution from raw weights: packs the filters once
/// (straight from the vector — [out_c][in_c·kh·kw] is already the GEMM
/// row layout) and delegates to the pre-packed overload.
std::vector<std::int64_t> packed_conv(const dnn::Tensor& input,
                                      const std::vector<std::int32_t>& weights,
                                      const dnn::ConvParams& p, int x_bits,
                                      int w_bits,
                                      engine::ThreadPool* pool = nullptr,
                                      KernelStats* stats = nullptr);

/// The former lowering, kept as the direct path's baseline: im2col →
/// pack → popcount GEMM → transpose. Bit-identical to packed_conv;
/// reports a much larger KernelStats::peak_bytes (the bench/CI gate
/// asserts direct < im2col on every measured shape).
std::vector<std::int64_t> packed_conv_im2col(
    const dnn::Tensor& input, const std::vector<std::int32_t>& weights,
    const dnn::ConvParams& p, int x_bits, int w_bits,
    engine::ThreadPool* pool = nullptr, KernelStats* stats = nullptr);

/// Packed fully-connected layer over pre-packed weight planes (`w` is
/// pack_values over the [out_features][in_features] vector),
/// fc_reference order.
std::vector<std::int64_t> packed_fc(const std::vector<std::int32_t>& input,
                                    const BitPlanes& w,
                                    const dnn::FcParams& p, int x_bits,
                                    engine::ThreadPool* pool = nullptr,
                                    KernelStats* stats = nullptr);

/// Packed fully-connected layer from raw weights (packs once, no matrix
/// copy, then delegates).
std::vector<std::int64_t> packed_fc(const std::vector<std::int32_t>& input,
                                    const std::vector<std::int32_t>& weights,
                                    const dnn::FcParams& p, int x_bits,
                                    int w_bits,
                                    engine::ThreadPool* pool = nullptr,
                                    KernelStats* stats = nullptr);

/// One packed recurrent step over pre-packed gate planes (`w` is
/// pack_values over the [hidden][x.size() + h.size()] gate matrix),
/// bit-identical to rnn_step_reference:
/// h' = requantize(W·[x; h], shift, out_bits).
std::vector<std::int32_t> packed_rnn_step(
    const std::vector<std::int32_t>& x, const std::vector<std::int32_t>& h,
    const BitPlanes& w, int hidden, int shift, int out_bits, int x_bits,
    engine::ThreadPool* pool = nullptr, KernelStats* stats = nullptr);

/// One packed recurrent step from raw weights ([hidden][x.size() +
/// h.size()] row-major; packs once, then delegates).
std::vector<std::int32_t> packed_rnn_step(
    const std::vector<std::int32_t>& x, const std::vector<std::int32_t>& h,
    const std::vector<std::int32_t>& weights, int hidden, int shift,
    int out_bits, int x_bits, int w_bits,
    engine::ThreadPool* pool = nullptr, KernelStats* stats = nullptr);

/// Pooling on integer tensors, bit-identical to pool_reference but
/// structured as an independent window-streaming implementation (the
/// cross-check would be vacuous if both sides shared one loop). Channels
/// are tiled over `pool` when given.
dnn::Tensor packed_pool(const dnn::Tensor& input, const dnn::PoolParams& p,
                        engine::ThreadPool* pool = nullptr,
                        KernelStats* stats = nullptr);

}  // namespace bpvec::kernels
