// WeightPlaneCache — process-wide memo of packed probe weights.
//
// Every functional probe of a given layer draws the SAME deterministic
// weights (Rng seeded from the layer fingerprint) and packs them into
// the same bit-planes. Zoo sweeps, DSE candidate storms, and warm serve
// requests therefore re-pack identical planes thousands of times; this
// cache pays the draw + pack once per (probe config, layer) key and
// hands every later probe a shared immutable entry.
//
// The cache is process-wide (like the Network/Backend registries)
// because probe weights are a pure function of the key: the key folds
// the functional seed, the probe bounds, and the layer fingerprint —
// everything the draw depends on — so two backends that agree on the key
// want byte-identical entries by construction. Packing is
// variant-independent (bit layout only), so the SIMD dispatch variant is
// deliberately NOT in the key: switching variants mid-process keeps the
// planes valid.
//
// Concurrency: lookups take a shared lock; inserts take an exclusive
// lock. Concurrent misses on one key may both build — the first insert
// wins and the duplicate (bit-identical by determinism) is dropped, so
// results never depend on the race. Hit/miss counters are monotone
// atomics surfaced through EngineStats (engine::SimEngine::stats reads
// them), which keeps the serve layer's before/after delta semantics
// valid; clear() drops entries but never rewinds counters.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "src/kernels/bitplane.h"

namespace bpvec::kernels {

/// One cached probe weight draw: the raw values (the reference operators
/// verify against them) plus their packed planes — one BitPlanes per
/// recurrent gate; conv/fc entries use planes[0].
struct PackedWeights {
  std::vector<std::int32_t> values;
  std::vector<BitPlanes> planes;
};

class WeightPlaneCache {
 public:
  /// Entry-count cap. Far above any real probe working set (the zoo has
  /// ~10² unique layers); on overflow the map is cleared wholesale —
  /// entries are recomputable, so eviction policy is not worth state.
  static constexpr std::size_t kMaxEntries = 4096;

  static WeightPlaneCache& instance();

  using Factory = std::function<PackedWeights()>;

  /// Returns the entry for `key`, invoking `make` (outside any lock) to
  /// build it on a miss. The returned pointer is immutable and safe to
  /// hold across clear().
  std::shared_ptr<const PackedWeights> get_or_pack(std::uint64_t key,
                                                   const Factory& make);

  std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::size_t size() const;

  /// Drops every entry (counters keep counting — they are monotone by
  /// contract). Outstanding shared_ptrs stay valid.
  void clear();

 private:
  WeightPlaneCache() = default;

  mutable std::shared_mutex mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const PackedWeights>>
      entries_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace bpvec::kernels
