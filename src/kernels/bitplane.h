// Bit-plane packing: the memory layout that turns the paper's slice-major
// NBVE feed (bitslice/bit_slicing.h) into word-level CPU parallelism.
//
// A row of b-bit operands becomes b bit-planes; plane p of a row is a
// contiguous run of 64-bit words where bit i of word w holds bit p of
// element 64·w + i. One word therefore covers 64 lanes of one
// significance position — exactly the α = 1 degenerate case of the NBVE
// slice-major layout (each NBVE sees a full-length sub-vector of one
// significance position; here each popcount sees 64 lanes of one bit).
//
// With two's-complement weights per plane (2^p for the low planes,
// −2^(b−1) for the sign plane), a dot product expands into the same
// double sum as paper Eq. 2/Eq. 4:
//
//   Σ_k x_k·w_k = Σ_p Σ_q 2^(p+q)·σ_p·σ_q · popcount(X_p & W_q)
//
// where σ is ±1 sign-plane weighting — evaluated exactly in int64, so
// packed kernels are bit-identical to the integer reference operators.
#pragma once

#include <cstdint>
#include <vector>

#include "src/dnn/gemm_lowering.h"

namespace bpvec::kernels {

/// A matrix of `rows` operand vectors (length `cols`, `bits` wide each)
/// packed into bit-planes. Storage is row-major, then plane-major, then
/// word-major: plane p of row r starts at data[(r·bits + p)·words].
/// Tail lanes beyond `cols` are zero in every plane, so they never
/// survive the AND in a dot product.
struct BitPlanes {
  std::int64_t rows = 0;
  std::int64_t cols = 0;       // logical lanes per row
  int bits = 0;                // operand bitwidth b
  bool is_signed = true;       // sign plane carries −2^(b−1) weight
  std::size_t words = 0;       // ceil(cols / 64)
  std::vector<std::uint64_t> data;  // [rows · bits · words]

  const std::uint64_t* plane(std::int64_t row, int p) const {
    return data.data() +
           (static_cast<std::size_t>(row) * bits + static_cast<std::size_t>(p)) *
               words;
  }
};

/// Weight of significance plane `p` in the recomposition sum: 2^p for the
/// low planes; for signed operands the top plane carries −2^(bits−1)
/// (the two's-complement sign weight, mirroring bitslice::slice_signed's
/// signed top-slice convention at α = 1).
std::int64_t plane_weight(int p, int bits, bool is_signed);

/// Packs a row-major span of `rows`×`cols` values into bit-planes —
/// the primitive behind every other packer, exported so callers with
/// contiguous data (a raw weight vector, a gate slice, a scratch window
/// tile) can pack WITHOUT first copying into a dnn::Matrix. Each value
/// must be representable in `bits` (signed two's-complement or unsigned,
/// matching `is_signed`); out-of-range values throw.
BitPlanes pack_values(const std::int32_t* values, std::int64_t rows,
                      std::int64_t cols, int bits, bool is_signed = true);

/// Packs every row of `m` into bit-planes (pack_values over m.data).
BitPlanes pack_rows(const dnn::Matrix& m, int bits, bool is_signed = true);

/// Packs a single vector (one-row convenience).
BitPlanes pack_vector(const std::vector<std::int32_t>& values, int bits,
                      bool is_signed = true);

/// Recomposes element `i` of row `row` — the packing inverse, used by
/// tests to prove pack ∘ unpack is the identity.
std::int64_t unpack_element(const BitPlanes& planes, std::int64_t row,
                            std::int64_t i);

/// Exact dot product of row `a_row` of `a` with row `b_row` of `b` via
/// the popcount double sum. Requires equal `cols`.
std::int64_t packed_dot(const BitPlanes& a, std::int64_t a_row,
                        const BitPlanes& b, std::int64_t b_row);

}  // namespace bpvec::kernels
