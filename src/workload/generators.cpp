#include "src/workload/generators.h"

#include <algorithm>
#include <string>

#include "src/common/error.h"
#include "src/common/token.h"
#include "src/workload/schema.h"

namespace bpvec::workload {

namespace {

enum class Family { kCnn, kMlp, kTransformer };

struct FamilyInfo {
  Family family;
  const char* token;
  int default_depth, default_width;
  int max_depth, max_width;
};

const FamilyInfo kFamilies[] = {
    {Family::kCnn, "cnn_family", 3, 32, 5, 512},
    {Family::kMlp, "mlp_family", 3, 1024, 64, 16384},
    {Family::kTransformer, "transformer_block", 2, 256, 64, 8192},
};

const FamilyInfo& resolve_family(const std::string& token) {
  const std::string norm = common::normalize_token(token);
  for (const FamilyInfo& f : kFamilies) {
    if (common::normalize_token(f.token) == norm) return f;
  }
  throw Error("workload generator: unknown family \"" + token +
              "\"; expected one of " +
              common::quoted_token_list(generator_tokens()));
}

/// Knobs with defaults resolved and ranges enforced.
struct Resolved {
  const FamilyInfo* info;
  int depth, width;
  std::string policy;
  std::string name;
};

Resolved resolve(const GeneratorSpec& spec) {
  Resolved r;
  r.info = &resolve_family(spec.family);
  r.depth = spec.depth == 0 ? r.info->default_depth : spec.depth;
  r.width = spec.width == 0 ? r.info->default_width : spec.width;
  if (r.depth < 1 || r.depth > r.info->max_depth) {
    throw Error(std::string("workload generator: ") + r.info->token +
                " depth must be in [1, " + std::to_string(r.info->max_depth) +
                "], got " + std::to_string(r.depth));
  }
  if (r.width < 1 || r.width > r.info->max_width) {
    throw Error(std::string("workload generator: ") + r.info->token +
                " width must be in [1, " + std::to_string(r.info->max_width) +
                "], got " + std::to_string(r.width));
  }
  r.policy = spec.bitwidth_policy.empty() ? "uniform:8" : spec.bitwidth_policy;
  if (!is_bitwidth_policy(r.policy)) {
    throw Error(std::string("workload generator: ") + r.info->token +
                ": unknown bitwidth_policy \"" + r.policy +
                "\"; expected \"uniform:<1..8>\" or \"first_last_8\"");
  }
  // Canonicalize ("Uniform:4" → "uniform:4") so derived names are
  // spelling-independent.
  const std::string norm = common::normalize_token(r.policy);
  r.policy = norm == "firstlast8" ? "first_last_8" : norm;
  r.name = spec.name;
  return r;
}

std::string policy_slug(const std::string& policy) {
  if (policy.rfind("uniform:", 0) == 0) return "u" + policy.substr(8);
  return "fl8";  // first_last_8 — the only other valid policy
}

/// The one derived-name rule (generated_name's injectivity contract —
/// manifests resolve generated tokens by recomputing exactly this).
std::string derived_name(const Resolved& r) {
  return std::string(r.info->token) + "-d" + std::to_string(r.depth) + "-w" +
         std::to_string(r.width) + "-" + policy_slug(r.policy);
}

dnn::Network make_cnn(const Resolved& r) {
  dnn::Network net(r.name, dnn::NetworkType::kCnn);
  int hw = 64, in_c = 3;
  for (int s = 0; s < r.depth; ++s) {
    const std::string stage = "stage" + std::to_string(s);
    const int out_c = r.width * (1 << std::min(s, 3));  // double, ×8 cap
    net.add(dnn::make_conv(stage + "/conv_a",
                           {in_c, hw, hw, out_c, 3, 3, 1, 1}));
    net.add(dnn::make_conv(stage + "/conv_b",
                           {out_c, hw, hw, out_c, 3, 3, 1, 1}));
    net.add(dnn::make_pool(stage + "/pool", {out_c, hw, hw, 2, 2}));
    in_c = out_c;
    hw /= 2;
  }
  if (hw > 1) {
    net.add(dnn::make_pool(
        "avgpool", {in_c, hw, hw, hw, 1, dnn::PoolKind::kAverage}));
  }
  net.add(dnn::make_fc("fc", {in_c, 1000}));
  return net;
}

dnn::Network make_mlp(const Resolved& r) {
  dnn::Network net(r.name, dnn::NetworkType::kCnn);
  const int input = 784, classes = 10;
  if (r.depth == 1) {
    net.add(dnn::make_fc("fc0", {input, classes}));
    return net;
  }
  net.add(dnn::make_fc("fc0", {input, r.width}));
  for (int i = 1; i < r.depth - 1; ++i) {
    net.add(dnn::make_fc("fc" + std::to_string(i), {r.width, r.width}));
  }
  net.add(dnn::make_fc("fc" + std::to_string(r.depth - 1),
                       {r.width, classes}));
  return net;
}

dnn::Network make_transformer(const Resolved& r) {
  dnn::Network net(r.name, dnn::NetworkType::kCnn);
  const int w = r.width;
  for (int b = 0; b < r.depth; ++b) {
    const std::string blk = "blk" + std::to_string(b);
    net.add(dnn::make_fc(blk + "/qkv", {w, 3 * w}));
    net.add(dnn::make_fc(blk + "/attn_out", {w, w}));
    net.add(dnn::make_fc(blk + "/ffn_up", {w, 4 * w}));
    net.add(dnn::make_fc(blk + "/ffn_down", {4 * w, w}));
  }
  return net;
}

}  // namespace

const std::vector<std::string>& generator_tokens() {
  static const std::vector<std::string> tokens = [] {
    std::vector<std::string> t;
    for (const FamilyInfo& f : kFamilies) t.emplace_back(f.token);
    return t;
  }();
  return tokens;
}

std::string generated_name(const GeneratorSpec& spec) {
  return derived_name(resolve(spec));
}

dnn::Network generate(const GeneratorSpec& spec) {
  Resolved r = resolve(spec);
  if (r.name.empty()) r.name = derived_name(r);
  dnn::Network net = [&] {
    switch (r.info->family) {
      case Family::kCnn: return make_cnn(r);
      case Family::kMlp: return make_mlp(r);
      case Family::kTransformer: break;
    }
    return make_transformer(r);
  }();
  apply_bitwidth_policy(net, r.policy);
  return net;
}

}  // namespace bpvec::workload
