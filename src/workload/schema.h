// The declarative network schema — workloads as data, not code.
//
// Every layer of the stack can vary platforms, memories, knobs, and cost
// backends, but before this subsystem the workload axis was frozen to the
// six Table I networks hard-coded in src/dnn/model_zoo.cpp. The schema
// lets users describe any layer stack the simulator can price as a JSON
// document:
//
//   {
//     "name": "TinyConv",
//     "type": "cnn",                       // cnn | rnn (optional, cnn)
//     "bitwidth_policy": "first_last_8",   // optional, see below
//     "layers": [
//       {"kind": "conv", "name": "conv1", "in_c": 3, "in_h": 32,
//        "in_w": 32, "out_c": 16, "kh": 3, "kw": 3,
//        "stride": 1, "pad": 1},                       // stride/pad optional
//       {"kind": "pool", "name": "pool1", "channels": 16, "in_h": 32,
//        "in_w": 32, "k": 2, "stride": 2, "pool": "max"},
//       {"kind": "fc", "name": "fc", "in_features": 4096,
//        "out_features": 10, "x_bits": 4, "w_bits": 4},
//       {"kind": "recurrent", "name": "r", "cell": "lstm",
//        "input_size": 64, "hidden_size": 64, "time_steps": 16}
//     ]
//   }
//
// Bitwidths resolve in three stages: every layer starts at 8/8; a named
// `bitwidth_policy` (applied to the whole net) may reassign them; an
// explicit per-layer `x_bits`/`w_bits` overrides the policy for that
// layer. Policies:
//
//   "uniform:<b>"    every layer b-bit (b in [1, 8]) — `uniform:8` is
//                    exactly the model zoo's homogeneous regime
//   "first_last_8"   first and last *compute* layer 8-bit, everything
//                    else (pools included, cosmetically) 4-bit — exactly
//                    the zoo's Table I heterogeneous CNN rule
//
// Validation is strict, manifest-style: unknown keys/kinds, empty layer
// lists, duplicate layer names, non-positive dimensions, and bitwidths
// outside [1, 8] are bpvec::Error with the offending layer named.
//
// to_json emits the fully explicit form (per-layer resolved bitwidths,
// no policy) and is byte-stable: to_json(parse_network(to_json(n)))
// serializes to the identical bytes as to_json(n). The zoo builtins
// round-trip bit-identically (guarded by tests/test_workload.cpp).
#pragma once

#include <cstdint>
#include <string>

#include "src/common/json.h"
#include "src/dnn/network.h"

namespace bpvec::workload {

/// Parses a network document. Throws bpvec::Error naming the offending
/// key, layer, or value on any schema violation.
dnn::Network parse_network(const common::json::Value& root);

/// parse_network of a file (errors include the path).
dnn::Network load_network(const std::string& path);

/// Inverse of parse_network: the fully explicit form (resolved per-layer
/// bitwidths, every shape field present). Deterministic and byte-stable
/// under round trips.
common::json::Value to_json(const dnn::Network& net);

/// True iff `policy` is a recognized bitwidth-policy token.
bool is_bitwidth_policy(const std::string& policy);

/// Applies a named policy to every layer (see the schema comment above
/// for the vocabulary). Throws bpvec::Error on an unknown policy or a
/// network with no compute layers. Sets the network's bitwidth_note to
/// the zoo's Table I wording for the matching regimes.
void apply_bitwidth_policy(dnn::Network& net, const std::string& policy);

/// Structural 64-bit fingerprint: layer kinds, shapes, and bitwidths in
/// order — names (network and layer) deliberately excluded, so two nets
/// that price identically share a fingerprint and a renamed copy of a
/// network dedupes against the original in every engine cache. Built on
/// backend::layer_fingerprint, the same per-layer hash the engine's
/// layer cache keys on. `time_chunk` is the recurrent time-batching
/// bound of the pricing platform (it shapes the GEMM view).
std::uint64_t network_fingerprint(const dnn::Network& net,
                                  int time_chunk = 16);

}  // namespace bpvec::workload
