#include "src/workload/schema.h"

#include <algorithm>
#include <limits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/backend/cost_backend.h"
#include "src/common/error.h"
#include "src/common/token.h"

namespace bpvec::workload {

using common::json::Value;

namespace {

[[noreturn]] void fail(const std::string& context,
                       const std::string& message) {
  throw Error("network schema: " +
              (context.empty() ? message : context + ": " + message));
}

void check_keys(const std::string& context, const Value& obj,
                const std::vector<std::string>& allowed) {
  for (const auto& [key, value] : obj.members()) {
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      fail(context, "unknown key \"" + key + "\"; allowed keys: " +
                        common::quoted_token_list(allowed));
    }
  }
}

const Value& require(const std::string& context, const Value& obj,
                     const std::string& key) {
  const Value* v = obj.find(key);
  if (v == nullptr) fail(context, "missing required key \"" + key + "\"");
  return *v;
}

std::string parse_string(const std::string& context, const Value& v,
                         const std::string& key) {
  if (!v.is_string()) fail(context, "\"" + key + "\" must be a string");
  return v.as_string();
}

int parse_int(const std::string& context, const Value& v,
              const std::string& key) {
  if (!v.is_int()) fail(context, "\"" + key + "\" must be an integer");
  const std::int64_t i = v.as_int();
  if (i < std::numeric_limits<int>::min() ||
      i > std::numeric_limits<int>::max()) {
    fail(context, "\"" + key + "\" out of range");
  }
  return static_cast<int>(i);
}

/// Every shape field is capped well below INT_MAX so downstream
/// arithmetic (padded-input checks, out_h/out_w) cannot overflow int —
/// the validator must produce errors, never UB. 2^24 dwarfs any real
/// layer dimension.
constexpr int kMaxDim = 1 << 24;

/// Required dimension: a strictly positive integer within kMaxDim.
int parse_dim(const std::string& context, const Value& obj,
              const std::string& key) {
  const int v = parse_int(context, require(context, obj, key), key);
  if (v < 1 || v > kMaxDim) {
    fail(context, "\"" + key + "\" must be a positive integer <= " +
                      std::to_string(kMaxDim) + ", got " +
                      std::to_string(v));
  }
  return v;
}

/// Optional dimension with a default; must be in [floor, kMaxDim] when
/// present.
int parse_opt_int(const std::string& context, const Value& obj,
                  const std::string& key, int fallback, int floor) {
  const Value* f = obj.find(key);
  if (f == nullptr) return fallback;
  const int v = parse_int(context, *f, key);
  if (v < floor || v > kMaxDim) {
    fail(context, "\"" + key + "\" must be in [" + std::to_string(floor) +
                      ", " + std::to_string(kMaxDim) + "], got " +
                      std::to_string(v));
  }
  return v;
}

int parse_bits(const std::string& context, const Value& v,
               const std::string& key) {
  const int bits = parse_int(context, v, key);
  if (bits < 1 || bits > 8) {
    fail(context, "\"" + key + "\" must be in [1, 8], got " +
                      std::to_string(bits));
  }
  return bits;
}

const std::vector<std::string>& kind_tokens() {
  static const std::vector<std::string> tokens{"conv", "fc", "pool",
                                               "recurrent"};
  return tokens;
}

/// Per-layer scale ceiling. kMaxDim bounds each dimension, but products
/// of six capped dims can still overflow the int64 MAC/element counts
/// the pricing path computes — so bound the *products* too, computed in
/// double (no overflow). 1e15 MACs per layer is ~500× the whole of
/// ResNet-50; anything beyond it is a typo, not a workload.
constexpr double kMaxLayerScale = 1e15;

void check_layer_scale(const std::string& context, const dnn::Layer& layer) {
  double macs = 0, in_elems = 0, out_elems = 0;
  switch (layer.kind) {
    case dnn::LayerKind::kConv: {
      const dnn::ConvParams& p = layer.conv();
      const double out_hw =
          static_cast<double>(p.out_h()) * p.out_w();  // ints: dims capped
      macs = out_hw * p.out_c * p.in_c * p.kh * p.kw;
      in_elems = static_cast<double>(p.in_c) * p.in_h * p.in_w;
      out_elems = out_hw * p.out_c;
      break;
    }
    case dnn::LayerKind::kFullyConnected: {
      const dnn::FcParams& p = layer.fc();
      macs = static_cast<double>(p.in_features) * p.out_features;
      break;
    }
    case dnn::LayerKind::kPool: {
      const dnn::PoolParams& p = layer.pool();
      in_elems = static_cast<double>(p.channels) * p.in_h * p.in_w;
      break;
    }
    case dnn::LayerKind::kRecurrent: {
      const dnn::RecurrentParams& p = layer.recurrent();
      macs = static_cast<double>(p.gates()) * p.hidden_size *
             (static_cast<double>(p.input_size) + p.hidden_size) *
             p.time_steps;
      break;
    }
  }
  if (macs > kMaxLayerScale || in_elems > kMaxLayerScale ||
      out_elems > kMaxLayerScale) {
    fail(context, "layer exceeds the supported scale (more than 1e15 "
                  "MACs or elements)");
  }
}

dnn::Layer parse_layer(const std::string& context, const Value& v) {
  if (!v.is_object()) fail(context, "layer must be an object");
  const std::string kind = common::normalize_token(
      parse_string(context, require(context, v, "kind"), "kind"));
  const std::string name =
      parse_string(context, require(context, v, "name"), "name");
  if (name.empty()) fail(context, "\"name\" must be non-empty");
  const std::string ctx = context + " (\"" + name + "\")";

  dnn::Layer layer;
  if (kind == "conv") {
    check_keys(ctx, v,
               {"kind", "name", "in_c", "in_h", "in_w", "out_c", "kh", "kw",
                "stride", "pad", "x_bits", "w_bits"});
    dnn::ConvParams p;
    p.in_c = parse_dim(ctx, v, "in_c");
    p.in_h = parse_dim(ctx, v, "in_h");
    p.in_w = parse_dim(ctx, v, "in_w");
    p.out_c = parse_dim(ctx, v, "out_c");
    p.kh = parse_dim(ctx, v, "kh");
    p.kw = parse_dim(ctx, v, "kw");
    p.stride = parse_opt_int(ctx, v, "stride", 1, 1);
    p.pad = parse_opt_int(ctx, v, "pad", 0, 0);
    if (p.in_h + 2 * p.pad < p.kh || p.in_w + 2 * p.pad < p.kw) {
      fail(ctx, "kernel larger than the padded input");
    }
    layer = dnn::make_conv(name, p);
  } else if (kind == "fc") {
    check_keys(ctx, v,
               {"kind", "name", "in_features", "out_features", "x_bits",
                "w_bits"});
    dnn::FcParams p;
    p.in_features = parse_dim(ctx, v, "in_features");
    p.out_features = parse_dim(ctx, v, "out_features");
    layer = dnn::make_fc(name, p);
  } else if (kind == "pool") {
    check_keys(ctx, v,
               {"kind", "name", "channels", "in_h", "in_w", "k", "stride",
                "pool", "x_bits", "w_bits"});
    dnn::PoolParams p;
    p.channels = parse_dim(ctx, v, "channels");
    p.in_h = parse_dim(ctx, v, "in_h");
    p.in_w = parse_dim(ctx, v, "in_w");
    p.k = parse_opt_int(ctx, v, "k", 2, 1);
    p.stride = parse_opt_int(ctx, v, "stride", 2, 1);
    if (const Value* f = v.find("pool")) {
      const std::string t =
          common::normalize_token(parse_string(ctx, *f, "pool"));
      if (t == "max") {
        p.kind = dnn::PoolKind::kMax;
      } else if (t == "average") {
        p.kind = dnn::PoolKind::kAverage;
      } else {
        fail(ctx, "unknown pool \"" + f->as_string() +
                      "\"; expected one of \"max\", \"average\"");
      }
    }
    if (p.in_h < p.k || p.in_w < p.k) {
      fail(ctx, "pool window larger than the input");
    }
    layer = dnn::make_pool(name, p);
  } else if (kind == "recurrent") {
    check_keys(ctx, v,
               {"kind", "name", "cell", "input_size", "hidden_size",
                "time_steps", "x_bits", "w_bits"});
    dnn::RecurrentParams p;
    const std::string cell = common::normalize_token(
        parse_string(ctx, require(ctx, v, "cell"), "cell"));
    if (cell == "rnn" || cell == "vanillarnn") {
      p.cell = dnn::RecurrentCellKind::kVanillaRnn;
    } else if (cell == "lstm") {
      p.cell = dnn::RecurrentCellKind::kLstm;
    } else {
      fail(ctx, "unknown cell \"" + v.at("cell").as_string() +
                    "\"; expected one of \"rnn\", \"lstm\"");
    }
    p.input_size = parse_dim(ctx, v, "input_size");
    p.hidden_size = parse_dim(ctx, v, "hidden_size");
    p.time_steps = parse_opt_int(ctx, v, "time_steps", 1, 1);
    layer = dnn::make_recurrent(name, p);
  } else {
    fail(ctx, "unknown kind \"" + v.at("kind").as_string() +
                  "\"; expected one of " +
                  common::quoted_token_list(kind_tokens()));
  }
  if (const Value* f = v.find("x_bits")) {
    layer.x_bits = parse_bits(ctx, *f, "x_bits");
  }
  if (const Value* f = v.find("w_bits")) {
    layer.w_bits = parse_bits(ctx, *f, "w_bits");
  }
  check_layer_scale(ctx, layer);
  return layer;
}

}  // namespace

bool is_bitwidth_policy(const std::string& policy) {
  // The codebase-wide token rule: case-insensitive, '-'/'_' ignored
  // (':' and digits pass through normalize_token untouched).
  const std::string norm = common::normalize_token(policy);
  if (norm == "firstlast8") return true;
  if (norm.rfind("uniform:", 0) == 0) {
    const std::string suffix = norm.substr(8);
    return suffix.size() == 1 && suffix[0] >= '1' && suffix[0] <= '8';
  }
  return false;
}

void apply_bitwidth_policy(dnn::Network& net, const std::string& policy) {
  if (!is_bitwidth_policy(policy)) {
    throw Error("network schema: unknown bitwidth_policy \"" + policy +
                "\"; expected \"uniform:<1..8>\" or \"first_last_8\"");
  }
  const std::string norm = common::normalize_token(policy);
  auto& layers = net.layers();
  if (norm.rfind("uniform:", 0) == 0) {
    const int bits = norm[8] - '0';
    for (dnn::Layer& l : layers) {
      l.x_bits = bits;
      l.w_bits = bits;
    }
    // Match the zoo's Table I wording for the regimes it names.
    net.set_bitwidth_note(bits == 8 ? "All layers 8-bit"
                                    : "All layers with " +
                                          std::to_string(bits) + "-bit");
    return;
  }
  // first_last_8: the zoo's heterogeneous CNN rule — boundary *compute*
  // layers 8-bit, everything else (pools included) 4-bit.
  int first = -1, last = -1;
  for (int i = 0; i < static_cast<int>(layers.size()); ++i) {
    if (!layers[i].is_compute()) continue;
    if (first < 0) first = i;
    last = i;
  }
  if (first < 0) {
    throw Error("network schema: bitwidth_policy \"first_last_8\" needs at "
                "least one compute layer in \"" +
                net.name() + "\"");
  }
  for (int i = 0; i < static_cast<int>(layers.size()); ++i) {
    const int bits = (i == first || i == last) ? 8 : 4;
    layers[i].x_bits = bits;
    layers[i].w_bits = bits;
  }
  net.set_bitwidth_note("First and last layer 8-bit, the rest 4-bit");
}

dnn::Network parse_network(const Value& root) {
  if (!root.is_object()) fail("", "document must be an object");
  check_keys("", root,
             {"name", "type", "bitwidth_policy", "bitwidth_note", "layers"});
  const std::string name =
      parse_string("", require("", root, "name"), "name");
  if (name.empty()) fail("", "\"name\" must be non-empty");

  dnn::NetworkType type = dnn::NetworkType::kCnn;
  if (const Value* f = root.find("type")) {
    const std::string t =
        common::normalize_token(parse_string("", *f, "type"));
    if (t == "cnn") {
      type = dnn::NetworkType::kCnn;
    } else if (t == "rnn") {
      type = dnn::NetworkType::kRnn;
    } else {
      fail("", "unknown type \"" + f->as_string() +
                   "\"; expected one of \"cnn\", \"rnn\"");
    }
  }

  const Value& layers = require("", root, "layers");
  if (!layers.is_array() || layers.as_array().empty()) {
    fail("\"" + name + "\"",
         "\"layers\" must be a non-empty array of layer objects");
  }

  dnn::Network net(name, type);
  // Per-layer explicit bits override the policy, so remember which
  // layers declared them before the policy pass rewrites everything.
  std::vector<std::pair<int, int>> explicit_bits;  // (x, w); -1 = unset
  std::unordered_set<std::string> seen_names;
  for (std::size_t i = 0; i < layers.as_array().size(); ++i) {
    const Value& lv = layers.as_array()[i];
    const std::string context = "layers[" + std::to_string(i) + "]";
    dnn::Layer layer = parse_layer(context, lv);
    if (!seen_names.insert(layer.name).second) {
      fail("\"" + name + "\"",
           context + ": duplicate layer name \"" + layer.name + "\"");
    }
    explicit_bits.emplace_back(
        lv.find("x_bits") != nullptr ? layer.x_bits : -1,
        lv.find("w_bits") != nullptr ? layer.w_bits : -1);
    net.add(std::move(layer));
  }

  if (const Value* f = root.find("bitwidth_policy")) {
    const std::string policy = parse_string("", *f, "bitwidth_policy");
    if (!is_bitwidth_policy(policy)) {
      fail("\"" + name + "\"",
           "unknown bitwidth_policy \"" + policy +
               "\"; expected \"uniform:<1..8>\" or \"first_last_8\"");
    }
    apply_bitwidth_policy(net, policy);
    for (std::size_t i = 0; i < explicit_bits.size(); ++i) {
      if (explicit_bits[i].first >= 0) {
        net.layers()[i].x_bits = explicit_bits[i].first;
      }
      if (explicit_bits[i].second >= 0) {
        net.layers()[i].w_bits = explicit_bits[i].second;
      }
    }
  }
  if (const Value* f = root.find("bitwidth_note")) {
    net.set_bitwidth_note(parse_string("", *f, "bitwidth_note"));
  }
  return net;
}

dnn::Network load_network(const std::string& path) {
  try {
    return parse_network(common::json::parse_file(path));
  } catch (const Error& e) {
    const std::string what = e.what();
    if (what.find(path) != std::string::npos) throw;  // parse error: has path
    throw Error(path + ": " + what);
  }
}

common::json::Value to_json(const dnn::Network& net) {
  Value root = Value::object();
  root.set("name", net.name());
  root.set("type", net.type() == dnn::NetworkType::kRnn ? "rnn" : "cnn");
  if (!net.bitwidth_note().empty()) {
    root.set("bitwidth_note", net.bitwidth_note());
  }
  Value layers = Value::array();
  for (const dnn::Layer& l : net.layers()) {
    Value lv = Value::object();
    lv.set("kind", dnn::to_string(l.kind));
    lv.set("name", l.name);
    switch (l.kind) {
      case dnn::LayerKind::kConv: {
        const dnn::ConvParams& p = l.conv();
        lv.set("in_c", p.in_c);
        lv.set("in_h", p.in_h);
        lv.set("in_w", p.in_w);
        lv.set("out_c", p.out_c);
        lv.set("kh", p.kh);
        lv.set("kw", p.kw);
        lv.set("stride", p.stride);
        lv.set("pad", p.pad);
        break;
      }
      case dnn::LayerKind::kFullyConnected: {
        const dnn::FcParams& p = l.fc();
        lv.set("in_features", p.in_features);
        lv.set("out_features", p.out_features);
        break;
      }
      case dnn::LayerKind::kPool: {
        const dnn::PoolParams& p = l.pool();
        lv.set("channels", p.channels);
        lv.set("in_h", p.in_h);
        lv.set("in_w", p.in_w);
        lv.set("k", p.k);
        lv.set("stride", p.stride);
        lv.set("pool", p.kind == dnn::PoolKind::kAverage ? "average" : "max");
        break;
      }
      case dnn::LayerKind::kRecurrent: {
        const dnn::RecurrentParams& p = l.recurrent();
        lv.set("cell",
               p.cell == dnn::RecurrentCellKind::kLstm ? "lstm" : "rnn");
        lv.set("input_size", p.input_size);
        lv.set("hidden_size", p.hidden_size);
        lv.set("time_steps", p.time_steps);
        break;
      }
    }
    lv.set("x_bits", l.x_bits);
    lv.set("w_bits", l.w_bits);
    layers.push_back(std::move(lv));
  }
  root.set("layers", std::move(layers));
  return root;
}

std::uint64_t network_fingerprint(const dnn::Network& net, int time_chunk) {
  // Names (network and layer) are deliberately excluded: they label
  // results but never change pricing, so structural twins share every
  // engine cache entry (the engine restores per-scenario labels on
  // cached results).
  //
  // Memoized on the Network itself: a DSE sweep fingerprints the same
  // workload once per candidate, and candidates copy the base scenario,
  // so the memo turns O(layers) hashing per lookup into O(1) for every
  // candidate that doesn't regenerate the network (see Network's
  // invalidation contract).
  if (const auto memo = net.cached_fingerprint(time_chunk)) return *memo;
  common::ConfigHash f;
  f.u64(net.layers().size());
  for (const dnn::Layer& layer : net.layers()) {
    f.u64(backend::layer_fingerprint(layer, time_chunk));
  }
  net.memoize_fingerprint(time_chunk, f.h);
  return f.h;
}

}  // namespace bpvec::workload
