// String-keyed registry of workloads — the network analogue of
// backend::BackendRegistry. Everything above the dnn layer (manifests,
// the CLI, DSE base scenarios, benches) resolves network tokens through
// it, so registering a network makes it reachable from every grid,
// search, and report without touching any other layer.
//
// Builtins registered at construction (the Table I zoo, in paper order):
//   "alexnet" "inception_v1" "resnet18" "resnet50" "rnn" "lstm"
//
// Two registration shapes:
//   * a Factory(BitwidthMode) — how the zoo registers (the mode picks
//     the Table I homogeneous/heterogeneous regime);
//   * a fixed prototype Network (how JSON files, inline manifest blocks,
//     and generators register). The mode still applies:
//     kHomogeneous8b forces every layer to 8/8 (exactly the zoo's
//     homogeneous regime), kHeterogeneous keeps the declared per-layer
//     bitwidths.
//
// Unlike BackendRegistry, registration is *not* last-wins — a silently
// replaced network would repoint every manifest that names the token.
// The documented error contract (see tests/test_workload.cpp):
//   * registering a key whose normalized token is already taken throws
//       `network "<key>" is already registered`
//     …unless both registrations are prototypes with identical content
//     (same name, same structural fingerprint, same declared bitwidths),
//     which is a no-op — so re-expanding one manifest is idempotent;
//   * registering (or creating) a network with no layers throws
//       `network "<key>" has no layers`.
//
// Token lookup uses common::normalize_token (case-insensitive, '-'/'_'
// ignored), the same rule as every manifest vocabulary.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/dnn/network.h"

namespace bpvec::workload {

using NetworkFactory = std::function<dnn::Network(dnn::BitwidthMode)>;

class NetworkRegistry {
 public:
  /// Process-wide registry (thread-safe).
  static NetworkRegistry& instance();

  /// Registers a mode-aware factory under `key`. Throws bpvec::Error on
  /// an empty key/factory or a duplicate (normalized) key.
  void register_factory(std::string key, NetworkFactory factory);

  /// Registers a fixed prototype (declared bitwidths = its heterogeneous
  /// regime). Re-registering the identical prototype under the same key
  /// is a no-op; a different network under a taken key throws. Throws on
  /// an empty layer list.
  void register_network(std::string key, dnn::Network prototype);

  /// Instantiates the network registered under `token` at `mode`.
  /// Throws bpvec::Error listing the registered tokens on an unknown
  /// token, and validates the produced network (non-empty layers).
  dnn::Network create(const std::string& token,
                      dnn::BitwidthMode mode) const;

  /// True when `token` (normalized) resolves to a registered network.
  bool contains(const std::string& token) const;

  /// The canonical key for `token`, or nullopt when unknown.
  std::optional<std::string> canonical_key(const std::string& token) const;

  /// Every registered key, in registration order (builtins first, in
  /// Table I order) — the canonical network-token vocabulary error
  /// messages and `bpvec_run list` print.
  std::vector<std::string> tokens() const;

  /// The six zoo tokens, in Table I order (what a manifest's "all"
  /// expands to — user registrations deliberately excluded so "all"
  /// keeps meaning the paper's evaluation set).
  static const std::vector<std::string>& builtin_tokens();

 private:
  NetworkRegistry();  // registers the zoo builtins

  struct Entry {
    NetworkFactory factory;
    /// Content stamp for prototype registrations (name + structure +
    /// declared bits); factories have none — they are never idempotent.
    std::optional<std::uint64_t> prototype_stamp;
  };

  void insert(std::string key, Entry entry);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // by normalized token
  std::vector<std::string> order_;        // canonical keys, insertion order
};

}  // namespace bpvec::workload
