// Parametric workload generators — whole network *families* from a small
// knob set, so grids and DSE searches can sweep the workload axis
// (depth, width, bitwidth policy) the same way they sweep platform and
// memory knobs.
//
// Three families:
//
//   cnn_family         a VGG-style conv stack on a 3×64×64 input:
//                      `depth` stages of two 3×3 convs + 2×2 max pool,
//                      channels starting at `width` and doubling per
//                      stage (×8 cap), global average pool, 1000-way FC.
//                      depth in [1, 5] (the input halves per stage),
//                      width in [1, 512].
//   mlp_family         `depth` fully connected layers 784 → width →
//                      … → 10. depth in [1, 64], width in [1, 16384].
//   transformer_block  `depth` transformer blocks as repeated FC-gate
//                      GEMMs on d_model = `width`: per block QKV
//                      (w → 3w), attention output (w → w), FFN up
//                      (w → 4w) and down (4w → w) — per-token cost, the
//                      form every accelerator in the paper consumes.
//                      depth in [1, 64], width in [1, 8192].
//
// Every generated network is valid by construction (positive dims,
// non-empty layers, unique layer names) and carries the spec's
// bitwidth_policy (default "uniform:8"). Generation is deterministic:
// equal specs produce bit-identical networks, and the derived name
// (generated_name) encodes every knob — "mlp_family-d4-w1024-u4" — so
// two distinct family members can never collide in the NetworkRegistry.
#pragma once

#include <string>
#include <vector>

#include "src/dnn/network.h"

namespace bpvec::workload {

struct GeneratorSpec {
  /// Family token: "cnn_family" | "mlp_family" | "transformer_block"
  /// (matched case- and separator-insensitively).
  std::string family;
  int depth = 0;  // 0 = family default (cnn 3, mlp 3, transformer 2)
  int width = 0;  // 0 = family default (cnn 32, mlp 1024, transformer 256)
  /// schema.h policy token; empty = "uniform:8".
  std::string bitwidth_policy;
  /// Network name / registry key; empty = generated_name(*this).
  std::string name;
};

/// The family vocabulary, in declaration order (for error messages and
/// `bpvec_run list`).
const std::vector<std::string>& generator_tokens();

/// The derived default name, e.g. "cnn_family-d3-w32-u8" (policy slug:
/// "uniform:<b>" → "u<b>", "first_last_8" → "fl8"). Deterministic and
/// injective over the knob set — computable without generating, which
/// is how manifests resolve generated-network tokens cheaply.
std::string generated_name(const GeneratorSpec& spec);

/// Emits the network for `spec` (defaults resolved, policy applied).
/// Throws bpvec::Error naming the offending knob on an unknown family,
/// an out-of-range depth/width, or an invalid bitwidth_policy.
dnn::Network generate(const GeneratorSpec& spec);

}  // namespace bpvec::workload
