#include "src/workload/network_registry.h"

#include <utility>

#include "src/common/error.h"
#include "src/common/hash.h"
#include "src/common/token.h"
#include "src/dnn/model_zoo.h"
#include "src/workload/schema.h"

namespace bpvec::workload {

namespace {

/// Content stamp of a prototype: name, labels, and structural
/// fingerprint — equal stamps mean registering it again changes nothing
/// observable, so the duplicate is tolerated (idempotent manifests).
std::uint64_t prototype_stamp(const dnn::Network& net) {
  common::ConfigHash f;
  f.str(net.name());
  f.str(net.bitwidth_note());
  f.i32(static_cast<int>(net.type()));
  for (const dnn::Layer& layer : net.layers()) f.str(layer.name);
  f.u64(network_fingerprint(net));
  return f.h;
}

void check_has_layers(const std::string& key, const dnn::Network& net) {
  if (net.layers().empty()) {
    throw Error("NetworkRegistry: network \"" + key + "\" has no layers");
  }
}

}  // namespace

NetworkRegistry::NetworkRegistry() {
  register_factory("alexnet", dnn::make_alexnet);
  register_factory("inception_v1", dnn::make_inception_v1);
  register_factory("resnet18", dnn::make_resnet18);
  register_factory("resnet50", dnn::make_resnet50);
  register_factory("rnn", dnn::make_rnn);
  register_factory("lstm", dnn::make_lstm);
}

NetworkRegistry& NetworkRegistry::instance() {
  static NetworkRegistry registry;
  return registry;
}

const std::vector<std::string>& NetworkRegistry::builtin_tokens() {
  static const std::vector<std::string> tokens{
      "alexnet", "inception_v1", "resnet18", "resnet50", "rnn", "lstm"};
  return tokens;
}

void NetworkRegistry::insert(std::string key, Entry entry) {
  BPVEC_CHECK_MSG(!key.empty(), "network key must be non-empty");
  const std::string norm = common::normalize_token(key);
  BPVEC_CHECK_MSG(!norm.empty(), "network key must contain a token "
                                 "character: " + key);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(norm);
  if (it != entries_.end()) {
    // Identical prototype content: a manifest re-registering its own
    // workloads (every expand() call) must be a no-op, not an error.
    if (entry.prototype_stamp && it->second.prototype_stamp &&
        *entry.prototype_stamp == *it->second.prototype_stamp) {
      return;
    }
    throw Error("NetworkRegistry: network \"" + key +
                "\" is already registered (tokens match case- and "
                "separator-insensitively)");
  }
  entries_.emplace(norm, std::move(entry));
  order_.push_back(std::move(key));
}

void NetworkRegistry::register_factory(std::string key,
                                       NetworkFactory factory) {
  BPVEC_CHECK_MSG(static_cast<bool>(factory),
                  "network factory must be set: " + key);
  insert(std::move(key), Entry{std::move(factory), std::nullopt});
}

void NetworkRegistry::register_network(std::string key,
                                       dnn::Network prototype) {
  check_has_layers(key, prototype);
  const std::uint64_t stamp = prototype_stamp(prototype);
  auto factory = [proto = std::move(prototype)](dnn::BitwidthMode mode) {
    dnn::Network net = proto;
    if (mode == dnn::BitwidthMode::kHomogeneous8b) {
      // The zoo's homogeneous regime, applied uniformly to user
      // networks: declared bitwidths are the heterogeneous regime.
      apply_bitwidth_policy(net, "uniform:8");
    }
    return net;
  };
  insert(std::move(key), Entry{std::move(factory), stamp});
}

dnn::Network NetworkRegistry::create(const std::string& token,
                                     dnn::BitwidthMode mode) const {
  NetworkFactory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(common::normalize_token(token));
    if (it == entries_.end()) {
      throw Error("NetworkRegistry: unknown network \"" + token +
                  "\"; registered networks: " +
                  common::quoted_token_list(order_));
    }
    factory = it->second.factory;  // copy: run outside the lock
  }
  dnn::Network net = factory(mode);
  check_has_layers(token, net);
  return net;
}

bool NetworkRegistry::contains(const std::string& token) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(common::normalize_token(token)) != 0;
}

std::optional<std::string> NetworkRegistry::canonical_key(
    const std::string& token) const {
  const std::string norm = common::normalize_token(token);
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.count(norm) == 0) return std::nullopt;
  for (const std::string& key : order_) {
    if (common::normalize_token(key) == norm) return key;
  }
  return std::nullopt;  // unreachable: order_ mirrors entries_
}

std::vector<std::string> NetworkRegistry::tokens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return order_;
}

}  // namespace bpvec::workload
