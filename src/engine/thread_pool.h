// Work-stealing thread pool backing bpvec::engine::SimEngine.
//
// Each worker owns a deque: it pushes/pops its own work LIFO (cache-warm)
// and steals FIFO from the back of other workers' deques when it runs dry
// (the classic Blumofe–Leiserson discipline; deques are mutex-guarded —
// scenario jobs are milliseconds of simulation, so queue-op contention is
// negligible next to the work itself).
//
// Determinism contract: the pool schedules *when* a task runs, never what
// it computes. Tasks must not share mutable state; anything stochastic
// derives from an injected per-task bpvec::Rng stream (see Rng::fork), so
// batch results are bit-identical regardless of thread count or
// interleaving.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bpvec::engine {

class ThreadPool {
 public:
  /// `num_threads <= 0` uses std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);
  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` on a worker deque (round-robin placement). Detached
  /// tasks own their error handling: an exception escaping `fn` is
  /// swallowed by the executing thread (use parallel_for when failures
  /// must propagate to a caller).
  void submit(std::function<void()> fn);

  /// Runs fn(0) … fn(n-1) and blocks until every call has returned.
  /// `grain` consecutive indices share one pool task (grain > 1 amortizes
  /// queue overhead when the per-index work is micro-scale — simulation
  /// jobs are a few to a few dozen microseconds). Exceptions are
  /// captured; the one thrown by the lowest index is rethrown in the
  /// caller. The calling thread also executes tasks while it waits, so a
  /// 1-thread pool cannot deadlock and a k-thread pool effectively uses
  /// k+1 lanes during the call.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);

 private:
  struct Worker {
    std::deque<std::function<void()>> tasks;  // guarded by `mu`
    std::mutex mu;
  };

  void worker_loop(std::size_t self);
  /// Pops from own deque (LIFO) or steals from a victim (FIFO).
  bool try_acquire(std::size_t self, std::function<void()>& out);

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::size_t next_queue_ = 0;  // round-robin submit cursor, guarded by wake_mu_
  bool shutdown_ = false;       // guarded by wake_mu_
};

}  // namespace bpvec::engine
