// SimEngine — the parallel batch simulation engine.
//
// The paper's evaluation is a pile of embarrassingly parallel scenario
// matrices (Fig. 4's α×L sweep, Figs. 5–9's platform×network×memory
// grids — now × cost backend: the Fig. 9 GPU roofline and the Fig. 1
// bit-serial baselines ride the same batch as the cycle simulator).
// SimEngine prices whole batches at once on a work-stealing thread pool
// and memoizes at two granularities:
//
//   * scenario cache — keyed by Scenario::fingerprint × the backend
//     key's registry generation (re-registering a backend abandons its
//     stale entries); repeated design points price once.
//   * layer cache — keyed by backend fingerprint × layer shape/bits
//     fingerprint; ResNet's repeated blocks and networks shared across
//     scenarios price each unique layer once (a wall-clock win on the
//     Fig. 5–9 grids even single-threaded).
//
// Guarantees:
//   * run_batch results are bit-identical to resolving each scenario's
//     CostBackend and calling run() directly (for "bpvec" scenarios,
//     that is bit-identical to a sequential sim::Simulator loop), for
//     any thread count and any cache configuration. Each job is a pure
//     function of its Scenario; cached layer results are exact copies
//     and assemble() is a pure fold, so reassembly cannot drift.
//   * Results come back in input order, one per input scenario, even
//     when the caches deduplicate the actual pricing work.
//   * explore_design_space is bit-identical to
//     core::explore_design_space (it parallelizes the identical
//     per-point pricing function over the identical grid).
//
// Thread safety: concurrent run_batch/stats/clear_cache calls on one
// engine are safe (see tests/test_sim_engine.cpp racing test). The
// scenario cache and its counters live under one mutex, so a stats()
// snapshot of the scenario counters is internally consistent; the
// layer cache uses a shared_mutex (the warm path — probe + copy — runs
// under a reader lock so pool threads don't serialize) with relaxed
// atomic counters.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "src/backend/cost_backend.h"
#include "src/core/design_space.h"
#include "src/engine/scenario.h"
#include "src/engine/thread_pool.h"
#include "src/sim/simulator.h"

namespace bpvec::engine {

struct EngineStats {
  std::size_t scenarios_submitted = 0;
  std::size_t simulations_run = 0;  // actual backend run invocations
  std::size_t cache_hits = 0;       // served from the scenario cache
  std::size_t layers_priced = 0;    // actual price_layer invocations
  std::size_t layer_cache_hits = 0; // layers served from the layer cache
};

struct EngineOptions {
  int num_threads = 0;              // <= 0: hardware concurrency
  bool cache_enabled = true;        // scenario-level result memoization
  bool layer_cache_enabled = true;  // layer-granular memoization
};

class SimEngine {
 public:
  explicit SimEngine(EngineOptions options = {});

  /// Prices every scenario through its cost backend, in parallel, and
  /// returns results in input order. Duplicate fingerprints within the
  /// batch (and across batches, while the cache lives) price once and
  /// fan back out.
  std::vector<sim::RunResult> run_batch(const std::vector<Scenario>& batch);

  /// Single-scenario convenience (still consults/feeds the caches).
  sim::RunResult run(const Scenario& scenario);

  /// Parallel Fig. 4 sweep: prices the α×L grid on the pool. Bit-identical
  /// to core::explore_design_space over the same axes.
  std::vector<core::DesignPoint> explore_design_space(
      const std::vector<int>& slice_widths, const std::vector<int>& lanes,
      int max_bits = 8);

  /// Variant that also evaluates `mix_utilization` per point (the
  /// expensive half of a best_design query) in parallel.
  std::vector<core::DesignPoint> explore_design_space(
      const std::vector<int>& slice_widths, const std::vector<int>& lanes,
      int max_bits, const std::vector<core::BitwidthMixEntry>& mix);

  /// Consistent snapshot of the counters (single lock; safe to call
  /// concurrently with run_batch).
  EngineStats stats() const;

  /// Drops both the scenario cache and the layer cache. Counters are
  /// preserved (they describe work done, not cache contents).
  void clear_cache();

  int num_threads() const { return pool_.num_threads(); }
  ThreadPool& pool() { return pool_; }

 private:
  /// Indices per pool task for a batch of `jobs` parallel units.
  std::size_t batch_grain(std::size_t jobs) const;

  /// Prices one scenario through `be`, consulting/feeding the layer
  /// cache. Bit-identical to be.run(network) for any cache state.
  sim::RunResult run_with_layer_cache(const backend::CostBackend& be,
                                      const dnn::Network& network);

  ThreadPool pool_;
  bool cache_enabled_;
  bool layer_cache_enabled_;

  mutable std::mutex mu_;  // guards cache_ and the scenario counters
  std::unordered_map<std::uint64_t, std::shared_ptr<const sim::RunResult>>
      cache_;
  EngineStats stats_;  // scenario counters only; layer counters below

  // Layer cache: reader-writer locked (hits only probe + copy), stored
  // by value — LayerResults are small (a RunResult is bulky and stays
  // behind a shared_ptr above), and the hot path is copy-on-hit.
  mutable std::shared_mutex layer_mu_;
  std::unordered_map<std::uint64_t, sim::LayerResult> layer_cache_;
  std::atomic<std::size_t> layers_priced_{0};
  std::atomic<std::size_t> layer_cache_hits_{0};
};

}  // namespace bpvec::engine
