// SimEngine — the parallel batch simulation engine.
//
// The paper's evaluation is a pile of embarrassingly parallel scenario
// matrices (Fig. 4's α×L sweep, Figs. 5–9's platform×network×memory
// grids — now × cost backend: the Fig. 9 GPU roofline and the Fig. 1
// bit-serial baselines ride the same batch as the cycle simulator).
// SimEngine prices whole batches at once on a work-stealing thread pool
// and memoizes at three granularities:
//
//   * scenario cache — keyed by Scenario::fingerprint × the backend
//     key's registry generation (re-registering a backend abandons its
//     stale entries); repeated design points price once. Fingerprints
//     are structural on the workload axis (names excluded), so a JSON
//     copy of a zoo network dedupes against the builtin; run_batch
//     restores each scenario's own network/layer labels on the way out.
//   * layer cache — keyed by backend fingerprint × layer shape/bits
//     fingerprint; ResNet's repeated blocks and networks shared across
//     scenarios price each unique layer once (a wall-clock win on the
//     Fig. 5–9 grids even single-threaded). run_batch prices at this
//     granularity: each batch collects the unique missing layer keys
//     across all of its scenarios, prices each exactly once, and
//     assembles every scenario from the shared results — so a candidate
//     that differs from an already-priced neighbor in one axis re-prices
//     only the layers that axis actually changed (delta pricing; see
//     EngineStats::delta_scenarios).
//   * disk cache (optional, EngineOptions::disk_cache_dir) — persistent
//     scenario-level results keyed by Scenario::fingerprint × the
//     resolved backend instance's fingerprint, below the memo caches:
//     probed only for scenarios the in-memory caches miss, and fed back
//     into the scenario cache on hit. Survives the process — warm
//     `bpvec_run --cache-dir` replays serve whole grids without
//     simulating (see src/engine/disk_cache.h for the staleness and
//     atomicity story).
//
// Guarantees:
//   * run_batch results are bit-identical to resolving each scenario's
//     CostBackend and calling run() directly (for "bpvec" scenarios,
//     that is bit-identical to a sequential sim::Simulator loop), for
//     any thread count and any cache configuration. Each job is a pure
//     function of its Scenario; cached layer results are exact copies
//     and assemble() is a pure fold, so reassembly cannot drift.
//   * Results come back in input order, one per input scenario, even
//     when the caches deduplicate the actual pricing work.
//   * explore_design_space is bit-identical to
//     core::explore_design_space (it parallelizes the identical
//     per-point pricing function over the identical grid).
//
// Thread safety: concurrent run_batch/stats/clear_cache calls on one
// engine are safe (see tests/test_sim_engine.cpp racing test and
// tests/test_cache_shards.cpp stress test). Both memo caches are
// lock-striped into kCacheShards shards keyed by fingerprint bits
// (src/engine/cache_shards.h), so concurrent sessions and the parallel
// probe phases stop contending on global locks. The scenario counters
// are tallied per shard under the same shard locks and summed by
// stats(); each scenario's ticks land on one shard, so the summed
// snapshot still satisfies the engine invariant (see cache_shards.h for
// the counter contract). Layer counters stay relaxed atomics.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "src/backend/cost_backend.h"
#include "src/common/json.h"
#include "src/core/design_space.h"
#include "src/engine/cache_shards.h"
#include "src/engine/disk_cache.h"
#include "src/engine/scenario.h"
#include "src/engine/thread_pool.h"
#include "src/sim/simulator.h"

namespace bpvec::engine {

struct EngineStats {
  std::size_t scenarios_submitted = 0;
  std::size_t simulations_run = 0;  // actual backend run invocations
  std::size_t cache_hits = 0;       // served from the scenario cache
  std::size_t layers_priced = 0;    // actual price_layer invocations
  std::size_t layer_cache_hits = 0; // layers served from the layer cache
  /// Simulations assembled as a delta: at least one layer came from the
  /// layer cache (or from another scenario in the same batch) instead of
  /// being re-priced. delta_scenarios <= simulations_run.
  std::size_t delta_scenarios = 0;
  // Disk-cache counters (all zero when no disk cache is configured).
  // Per engine: simulations_run + cache_hits + disk_hits ==
  // scenarios_submitted once every run_batch has returned.
  std::size_t disk_hits = 0;        // scenarios served from disk
  std::size_t disk_misses = 0;      // probed but absent
  std::size_t disk_rejected = 0;    // corrupt or stale entries skipped
  std::size_t disk_stores = 0;      // fresh results persisted
  std::size_t disk_store_failures = 0;  // refused/failed persists
  std::size_t disk_file_opens = 0;  // shard files opened (scan + seals)
  // Packed weight-plane cache counters (kernels::WeightPlaneCache — the
  // functional backend's persistent probe-weight memo). The cache is
  // process-wide, so these are process totals snapshotted per engine;
  // they are monotone like every other counter, which keeps the serve
  // layer's before/after delta semantics exact. Zero unless functional
  // scenarios have been priced.
  std::size_t weight_cache_hits = 0;
  std::size_t weight_cache_misses = 0;
  // Phase timers (seconds of wall clock, accumulated per batch): where a
  // search actually spends its time. construct_s is fed by callers that
  // build Scenarios for the engine (ScenarioEvaluator's materialize
  // pass, via record_construct_seconds); the rest are run_batch's own
  // phases: fingerprint hashing, serial cache planning, backend pricing
  // (disk probes + layer pricing), and per-scenario reassembly.
  double construct_s = 0.0;
  double hash_s = 0.0;
  double plan_s = 0.0;
  double price_s = 0.0;
  double assemble_s = 0.0;
};

/// Counters as a JSON object (the BENCH_*.json "engine_stats" block and
/// the CLI report's "stats" block share this shape).
common::json::Value to_json(const EngineStats& stats);

/// Field-wise difference of two snapshots of one engine: the work done
/// between them. This is how a serving Session attributes engine work to
/// a single request on a shared warm engine (snapshot before, snapshot
/// after, subtract). All counters are monotone, so with serial requests
/// the delta is exact; concurrent requests' deltas overlap (each request
/// sees every counter tick that landed between its two snapshots). The
/// phase timers subtract too — exact when `before` is the zero state
/// (the batch CLI's fresh-engine case), approximate otherwise (floating
/// accumulation).
EngineStats operator-(const EngineStats& after, const EngineStats& before);

struct EngineOptions {
  int num_threads = 0;              // <= 0: hardware concurrency
  bool cache_enabled = true;        // scenario-level result memoization
  bool layer_cache_enabled = true;  // layer-granular memoization
  /// Non-empty: persist scenario results under this directory and serve
  /// repeats from it across processes (created on demand).
  std::string disk_cache_dir{};
  /// Indices per ThreadPool::parallel_for task in the batch phases.
  /// 0 = auto: jobs / (threads × 4) — ~4 stealable tasks per worker,
  /// the setting bench/warm_path.cpp's grain micro-measurement picks on
  /// every machine we've measured (queue overhead amortized, stealing
  /// slack kept). Set explicitly to trade steal balance against task
  /// overhead for unusual batch shapes.
  std::size_t grain = 0;
};

class SimEngine {
 public:
  explicit SimEngine(EngineOptions options = {});

  /// Prices every scenario through its cost backend, in parallel, and
  /// returns results in input order. Duplicate fingerprints within the
  /// batch (and across batches, while the cache lives) price once and
  /// fan back out.
  std::vector<sim::RunResult> run_batch(const std::vector<Scenario>& batch);

  /// Single-scenario convenience (still consults/feeds the caches).
  sim::RunResult run(const Scenario& scenario);

  /// Parallel Fig. 4 sweep: a dse::GridStrategy over dse::geometry_space
  /// priced by dse::GeometryEvaluator on the pool. Bit-identical to
  /// core::explore_design_space over the same axes (identical grid order,
  /// identical per-point pricing function).
  std::vector<core::DesignPoint> explore_design_space(
      const std::vector<int>& slice_widths, const std::vector<int>& lanes,
      int max_bits = 8);

  /// Variant that also evaluates `mix_utilization` per point (the
  /// expensive half of a best_design query) in parallel.
  std::vector<core::DesignPoint> explore_design_space(
      const std::vector<int>& slice_widths, const std::vector<int>& lanes,
      int max_bits, const std::vector<core::BitwidthMixEntry>& mix);

  /// Counter snapshot, safe to call concurrently with run_batch. Shard
  /// tallies are read one shard lock at a time; every scenario's ticks
  /// live on a single shard, so the summed counters still satisfy the
  /// engine invariant (see cache_shards.h).
  EngineStats stats() const;

  /// Per-shard scenario-counter snapshot (exposed for the shard stress
  /// test, which asserts the counter invariant per shard, not just in
  /// aggregate).
  std::array<ScenarioShardCounters, kCacheShards> scenario_shard_counters()
      const;

  /// Drops both in-memory caches (scenario and layer). The disk cache is
  /// untouched — it belongs to the directory, not the engine; delete the
  /// directory to invalidate it. Counters are preserved (they describe
  /// work done, not cache contents).
  void clear_cache();

  int num_threads() const { return pool_.num_threads(); }
  ThreadPool& pool() { return pool_; }

  /// The persistent cache layer, or nullptr when not configured.
  const DiskCache* disk_cache() const { return disk_.get(); }

  /// Adds caller-side Scenario construction time to the construct_s
  /// phase timer (ScenarioEvaluator reports its materialize pass here so
  /// one EngineStats block carries the whole dispatch-cost split).
  void record_construct_seconds(double seconds);

 private:
  /// Indices per pool task for a batch of `jobs` parallel units.
  std::size_t batch_grain(std::size_t jobs) const;

  /// parallel_for that skips the pool for a single unit of work (the
  /// run() fast path: no queue round-trip for one job).
  void for_each(std::size_t n, const std::function<void(std::size_t)>& fn);

  ThreadPool pool_;
  bool cache_enabled_;
  bool layer_cache_enabled_;
  std::size_t grain_;                // 0 = auto (see EngineOptions::grain)
  std::unique_ptr<DiskCache> disk_;  // null when not configured

  // Striped scenario cache + per-shard counter tallies (cache_shards.h).
  // When the scenario cache is disabled no fingerprints exist, so all
  // counter ticks land on shard 0.
  ScenarioCacheShards scenario_cache_;

  // Phase timers accumulate under their own lock — they are batch-scoped
  // wall-clock sums, not per-scenario ticks, so they never belonged to a
  // fingerprint shard.
  struct PhaseTimers {
    double construct_s = 0.0;
    double hash_s = 0.0;
    double plan_s = 0.0;
    double price_s = 0.0;
    double assemble_s = 0.0;
  };
  mutable std::mutex timer_mu_;
  PhaseTimers timers_;

  // Striped layer cache: reader-writer locked per shard (hits only probe
  // + copy), stored by value — LayerResults are small (a RunResult is
  // bulky and stays behind a shared_ptr above).
  LayerCacheShards layer_cache_;
  std::atomic<std::size_t> layers_priced_{0};
  std::atomic<std::size_t> layer_cache_hits_{0};
};

}  // namespace bpvec::engine
