// SimEngine — the parallel batch simulation engine.
//
// The paper's evaluation is a pile of embarrassingly parallel scenario
// matrices (Fig. 4's α×L sweep, Figs. 5–9's platform×network×memory
// grids). SimEngine prices whole batches at once on a work-stealing
// thread pool and memoizes results in a config-hash cache so repeated
// design points are simulated exactly once.
//
// Guarantees:
//   * run_batch results are bit-identical to a sequential
//     `sim::Simulator(...).run(...)` loop over the same scenarios, for
//     any thread count (each job is a pure function of its Scenario).
//   * Results come back in input order, one per input scenario, even
//     when the cache deduplicates the actual simulation work.
//   * explore_design_space is bit-identical to
//     core::explore_design_space (it parallelizes the identical
//     per-point pricing function over the identical grid).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/design_space.h"
#include "src/engine/scenario.h"
#include "src/engine/thread_pool.h"
#include "src/sim/simulator.h"

namespace bpvec::engine {

struct EngineStats {
  std::size_t scenarios_submitted = 0;
  std::size_t simulations_run = 0;  // actual Simulator::run invocations
  std::size_t cache_hits = 0;       // served from the result cache
};

struct EngineOptions {
  int num_threads = 0;        // <= 0: hardware concurrency
  bool cache_enabled = true;  // config-hash result memoization
};

class SimEngine {
 public:
  explicit SimEngine(EngineOptions options = {});

  /// Simulates every scenario, in parallel, and returns results in input
  /// order. Duplicate fingerprints within the batch (and across batches,
  /// while the cache lives) are simulated once and fanned back out.
  std::vector<sim::RunResult> run_batch(const std::vector<Scenario>& batch);

  /// Single-scenario convenience (still consults/feeds the cache).
  sim::RunResult run(const Scenario& scenario);

  /// Parallel Fig. 4 sweep: prices the α×L grid on the pool. Bit-identical
  /// to core::explore_design_space over the same axes.
  std::vector<core::DesignPoint> explore_design_space(
      const std::vector<int>& slice_widths, const std::vector<int>& lanes,
      int max_bits = 8);

  /// Variant that also evaluates `mix_utilization` per point (the
  /// expensive half of a best_design query) in parallel.
  std::vector<core::DesignPoint> explore_design_space(
      const std::vector<int>& slice_widths, const std::vector<int>& lanes,
      int max_bits, const std::vector<core::BitwidthMixEntry>& mix);

  EngineStats stats() const;
  void clear_cache();

  int num_threads() const { return pool_.num_threads(); }
  ThreadPool& pool() { return pool_; }

 private:
  /// Indices per pool task for a batch of `jobs` parallel units.
  std::size_t batch_grain(std::size_t jobs) const;

  ThreadPool pool_;
  bool cache_enabled_;

  mutable std::mutex mu_;  // guards cache_ and stats_
  std::unordered_map<std::uint64_t, std::shared_ptr<const sim::RunResult>>
      cache_;
  EngineStats stats_;
};

}  // namespace bpvec::engine
