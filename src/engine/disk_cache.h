// DiskCache — the persistent on-disk result cache below SimEngine's
// in-memory memo caches.
//
// The in-memory caches die with the process; the paper-grid workloads
// (Figs. 5–9, CI regression replays, sweep scripts) re-price the same
// scenarios run after run. DiskCache persists whole sim::RunResults keyed
// by the exact fingerprints the memo caches already compute, so a warm
// `bpvec_run --cache-dir` serves every repeated scenario without
// simulating at all.
//
// Format v3: append-only packed binary shard files instead of one JSON
// file per entry. A shard (`shard-NNNN.bpc`) is
//
//   header:  magic "BPC3" + u32 format version
//   records: u32 payload_len
//            payload  = u64 key, u64 generation, packed RunResult
//                       (common::binio: fixed-width LE ints, bit-exact
//                       doubles)
//            u64 checksum(payload)
//
// At construction one directory scan reads every shard, verifies each
// record's length and checksum, and builds an in-memory
// key → (shard, offset) index; the shard file descriptors stay open so a
// warm load is one positional pread + a memcpy walk — no per-entry open,
// no JSON parse. Writes are batched: SimEngine::run_batch collects every
// freshly priced result and seals them into ONE new shard per batch
// (written to a temp file, published atomically via link(2), never
// appended in place), so a warm replay of an M-scenario grid does
// O(shards) file opens instead of O(M).
//
// Entry key: hash_combine(Scenario::fingerprint(), backend->fingerprint())
// — both stable across processes (pure functions of the configs), and the
// backend instance fingerprint covers every pricing knob, so two
// registrations of one backend key with different knobs can never share
// an entry. Each record additionally carries:
//   * the shard header's format version — bumping kFormatVersion orphans
//     every old shard (rejected on scan, never misread; v2 JSON entries
//     can be recovered with `bpvec_cache migrate-v2`), and
//   * the backend key's registry generation — records written under one
//     registration are ignored after a re-registration, mirroring the
//     in-memory scenario cache's staleness rule. Generations are a
//     process-local counter: builtin backends register in a fixed order,
//     so their stamps agree across processes and records round-trip; a
//     process whose *custom* registration history differs sees foreign
//     stamps and conservatively re-prices (counted `rejected` — a
//     performance caveat, never a correctness one; records are rewritten
//     with the local stamp).
//
// Guarantees:
//   * Bit-identity: a loaded RunResult equals the stored one bit for bit
//     (integers verbatim, doubles as raw IEEE-754 bit patterns) —
//     run_batch output is byte-identical with the disk cache cold, warm,
//     or off.
//   * Crash/concurrency safety: shards are sealed before publication and
//     published with link(2) (fails instead of clobbering), so concurrent
//     runs sharing a cache dir (CI shards, parallel sweeps) can never
//     observe a torn record; duplicate keys across shards resolve
//     last-shard-wins with identical payloads. A cache opened mid-run by
//     another process simply doesn't see shards published after its scan
//     (misses, re-prices — never wrong numbers).
//   * Corruption tolerance: truncated shards, checksum-mismatched or
//     stale records are counted `rejected` and treated as misses — the
//     cache can only ever cost a re-simulation, never wrong numbers or a
//     crash.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/binio.h"
#include "src/common/json.h"
#include "src/sim/simulator.h"

namespace bpvec::engine {

struct DiskCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;    // absent entries
  std::size_t rejected = 0;  // corrupt, version-stale, or generation-stale
  std::size_t stores = 0;
  std::size_t store_failures = 0;  // I/O errors (cache stays best-effort)
  std::size_t file_opens = 0;      // shard files opened (scan + seals)
  std::size_t shards = 0;          // gauge: shard files resident
  std::size_t records = 0;         // gauge: live index entries
};

class DiskCache {
 public:
  /// Bump when the record schema changes; all older shards/entries are
  /// rejected.
  static constexpr std::int64_t kFormatVersion = 3;  // v3: packed shards
  /// The one-JSON-file-per-entry format this replaced (still readable by
  /// `bpvec_cache migrate-v2`).
  static constexpr std::int64_t kV2FormatVersion = 2;

  /// A store_batch work item. `result` is borrowed — it must stay alive
  /// for the duration of the call.
  struct PendingStore {
    std::uint64_t key = 0;
    std::uint64_t generation = 0;
    const sim::RunResult* result = nullptr;
  };

  /// Creates `dir` (and parents) if needed, then scans existing shards
  /// into the index; throws bpvec::Error when the directory cannot be
  /// created. Unreadable or foreign-version shards count `rejected` and
  /// are skipped (and are never written to).
  explicit DiskCache(std::string dir);
  ~DiskCache();

  DiskCache(const DiskCache&) = delete;
  DiskCache& operator=(const DiskCache&) = delete;

  /// Returns the cached RunResult for `key`, or nullptr on miss.
  /// `generation` must match the record's stamped registry generation.
  /// Never throws on bad cache contents — those count as `rejected`.
  std::shared_ptr<const sim::RunResult> load(std::uint64_t key,
                                             std::uint64_t generation) const;

  /// Seals every entry into one new shard (temp file + atomic link
  /// publish) and indexes them. Entries with non-finite doubles are
  /// refused up front (counted store_failures: such results can poison a
  /// comparison downstream, and refusing keeps store/load symmetric with
  /// the JSON-era contract). Returns the number of records stored; on an
  /// I/O failure nothing is published and every finite entry counts a
  /// store_failure.
  std::size_t store_batch(const std::vector<PendingStore>& pending) const;

  /// Single-entry convenience wrapper over store_batch: one record, one
  /// shard. Returns true when the record was stored.
  bool store(std::uint64_t key, std::uint64_t generation,
             const sim::RunResult& result) const;

  /// Consistent-enough snapshot of the counters (safe to call while pool
  /// threads probe/store).
  DiskCacheStats stats() const;

  const std::string& dir() const { return dir_; }

  /// Paths of the resident shard files, in scan/seal order (exposed for
  /// tests and tools that corrupt or inspect shards).
  std::vector<std::string> shard_paths() const;

 private:
  struct Loc {
    std::uint32_t shard = 0;  // index into shards_
    std::uint64_t offset = 0;  // payload start within the shard file
    std::uint32_t len = 0;     // payload length (checksum follows)
  };
  struct Shard {
    std::string path;
    int fd = -1;
  };

  void scan_dir();
  bool index_shard(std::uint32_t shard_idx, const std::string& bytes);

  std::string dir_;

  mutable std::shared_mutex index_mu_;  // guards shards_ + index_
  mutable std::vector<Shard> shards_;
  mutable std::unordered_map<std::uint64_t, Loc> index_;
  mutable std::uint64_t next_shard_ = 0;

  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> misses_{0};
  mutable std::atomic<std::size_t> rejected_{0};
  mutable std::atomic<std::size_t> stores_{0};
  mutable std::atomic<std::size_t> store_failures_{0};
  mutable std::atomic<std::size_t> file_opens_{0};
  mutable std::atomic<std::uint64_t> tmp_seq_{0};
};

/// Full-fidelity JSON serialization of a RunResult (every field,
/// including per-layer results and energy breakdowns). Doubles are
/// written so they round-trip bit-exactly; from_json of to_json is the
/// identity. Used by the v2 on-disk format (kept for `bpvec_cache
/// migrate-v2` and benchmarks) and by report builders.
common::json::Value run_result_to_json(const sim::RunResult& result);

/// Strict inverse of run_result_to_json: throws bpvec::Error on missing
/// or mistyped fields.
sim::RunResult run_result_from_json(const common::json::Value& v);

/// Packed binary serialization of a RunResult (common::binio; the v3
/// record body). decode is the strict inverse and throws bpvec::Error on
/// truncation.
void run_result_encode(common::binio::Writer& w, const sim::RunResult& r);
sim::RunResult run_result_decode(common::binio::Reader& r);

// ---------------------------------------------------------------------------
// Cache-directory maintenance (the `bpvec_cache` tool is a thin CLI over
// these; exposed as library functions so tests can drive them directly).

struct CacheShardInfo {
  std::string path;
  std::size_t records = 0;   // checksum-valid records
  std::size_t rejected = 0;  // corrupt/truncated records or a bad header
  std::uint64_t bytes = 0;
};

struct CacheDirInfo {
  std::vector<CacheShardInfo> shards;
  std::size_t records_total = 0;  // valid records across shards
  std::size_t live_records = 0;   // distinct keys (last writer wins)
  std::size_t rejected_total = 0;
  std::size_t v2_files = 0;  // orphaned v2 *.json entries present
  std::uint64_t bytes_total = 0;
};

/// Read-only walk of a cache directory (no DiskCache instance needed).
CacheDirInfo inspect_cache_dir(const std::string& dir);
common::json::Value to_json(const CacheDirInfo& info);

struct CompactResult {
  std::size_t shards_before = 0;
  std::size_t shards_after = 0;  // 0 when the dir held no live records
  std::size_t records_kept = 0;
  std::size_t records_dropped = 0;  // superseded duplicates + corrupt
};

/// Rewrites every live record (checksum-valid, last writer wins) into one
/// fresh shard, then removes the old shards. Record payloads are copied
/// verbatim — compaction can never change what a later load returns.
/// Must not race concurrent writers to the same dir.
CompactResult compact_cache_dir(const std::string& dir);

struct MigrateResult {
  std::size_t migrated = 0;
  std::size_t failed = 0;  // unreadable/foreign v2 files, left in place
};

/// Converts v2 one-file-per-entry JSON caches into one v3 shard, deleting
/// each successfully migrated .json file.
MigrateResult migrate_v2_cache_dir(const std::string& dir);

/// Writes one v2-format JSON entry (exposed for migration tests and the
/// v2-vs-v3 benchmark baseline). Returns the entry path.
std::string write_v2_entry(const std::string& dir, std::uint64_t key,
                           std::uint64_t generation,
                           const sim::RunResult& result);

/// Parses a v2 entry file; throws bpvec::Error on anything unexpected.
struct V2Entry {
  std::uint64_t key = 0;
  std::uint64_t generation = 0;
  sim::RunResult result;
};
V2Entry load_v2_entry(const std::string& path);

}  // namespace bpvec::engine
