// DiskCache — the persistent on-disk result cache below SimEngine's
// in-memory memo caches.
//
// The in-memory caches die with the process; the paper-grid workloads
// (Figs. 5–9, CI regression replays, sweep scripts) re-price the same
// scenarios run after run. DiskCache serializes whole sim::RunResults as
// JSON files keyed by the exact fingerprints the memo caches already
// compute, so a warm `bpvec_run --cache-dir` serves every repeated
// scenario without simulating at all.
//
// Entry key: hash_combine(Scenario::fingerprint(), backend->fingerprint())
// — both stable across processes (pure functions of the configs), and the
// backend instance fingerprint covers every pricing knob, so two
// registrations of one backend key with different knobs can never share
// an entry. Each entry additionally records:
//   * a format version — bumping kFormatVersion orphans every old file
//     (they are rejected on load, never misread), and
//   * the backend key's registry generation — entries written under one
//     registration are ignored after a re-registration, mirroring the
//     in-memory scenario cache's staleness rule. Generations are a
//     process-local counter: builtin backends register in a fixed order,
//     so their stamps agree across processes and entries round-trip; a
//     process whose *custom* registration history differs sees foreign
//     stamps and conservatively re-prices (counted `rejected` — a
//     performance caveat, never a correctness one; entries are rewritten
//     with the local stamp).
//
// Guarantees:
//   * Bit-identity: a loaded RunResult equals the stored one bit for bit
//     (int64 fields verbatim, doubles via %.17g round trip) — run_batch
//     output is byte-identical with the disk cache cold, warm, or off.
//   * Crash/concurrency safety: entries are written to a unique temp
//     file and atomically renamed into place, so concurrent runs sharing
//     a cache dir (CI shards, parallel sweeps) can never observe a torn
//     entry; last writer wins with an identical payload.
//   * Corruption tolerance: unreadable, truncated, or stale entries are
//     counted and treated as misses — the cache can only ever cost a
//     re-simulation, never wrong numbers or a crash.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "src/common/json.h"
#include "src/sim/simulator.h"

namespace bpvec::engine {

struct DiskCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;    // absent entries
  std::size_t rejected = 0;  // corrupt, version-stale, or generation-stale
  std::size_t stores = 0;
  std::size_t store_failures = 0;  // I/O errors (cache stays best-effort)
};

class DiskCache {
 public:
  /// Bump when the entry schema changes; all older entries are rejected.
  static constexpr std::int64_t kFormatVersion = 2;  // v2: measured fields

  /// Creates `dir` (and parents) if needed; throws bpvec::Error when the
  /// directory cannot be created.
  explicit DiskCache(std::string dir);

  /// Returns the cached RunResult for `key`, or nullptr on miss.
  /// `generation` must match the entry's recorded registry generation.
  /// Never throws on bad cache contents — those count as `rejected`.
  std::shared_ptr<const sim::RunResult> load(std::uint64_t key,
                                             std::uint64_t generation) const;

  /// Persists `result` under `key` (temp file + atomic rename). Returns
  /// false and counts a store_failure on I/O errors — or when `result`
  /// contains a non-finite double (not representable in JSON
  /// bit-exactly; storing it would make the key a permanent
  /// reject-and-reprice loop).
  bool store(std::uint64_t key, std::uint64_t generation,
             const sim::RunResult& result) const;

  /// Consistent-enough snapshot of the counters (each counter is atomic;
  /// safe to call while pool threads probe/store).
  DiskCacheStats stats() const;

  const std::string& dir() const { return dir_; }

  /// Path of the entry file for `key` (exposed for tests that corrupt or
  /// inspect entries).
  std::string entry_path(std::uint64_t key) const;

 private:
  std::string dir_;
  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> misses_{0};
  mutable std::atomic<std::size_t> rejected_{0};
  mutable std::atomic<std::size_t> stores_{0};
  mutable std::atomic<std::size_t> store_failures_{0};
  mutable std::atomic<std::uint64_t> tmp_seq_{0};
};

/// Full-fidelity JSON serialization of a RunResult (every field,
/// including per-layer results and energy breakdowns). Doubles are
/// written so they round-trip bit-exactly; from_json of to_json is the
/// identity.
common::json::Value run_result_to_json(const sim::RunResult& result);

/// Strict inverse of run_result_to_json: throws bpvec::Error on missing
/// or mistyped fields (DiskCache::load converts that into `rejected`).
sim::RunResult run_result_from_json(const common::json::Value& v);

}  // namespace bpvec::engine
