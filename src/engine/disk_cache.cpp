#include "src/engine/disk_cache.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <system_error>
#include <unordered_set>
#include <utility>

#include "src/common/error.h"

namespace bpvec::engine {

namespace fs = std::filesystem;
using common::json::Value;
namespace binio = common::binio;

namespace {

// --------------------------------------------------------------------------
// JSON codec — the v2 entry body, kept for migrate-v2, benchmarks, and
// report builders.

Value energy_to_json(const sim::EnergyBreakdown& e) {
  Value v = Value::object();
  v.set("compute_pj", e.compute_pj);
  v.set("sram_pj", e.sram_pj);
  v.set("dram_pj", e.dram_pj);
  v.set("static_pj", e.static_pj);
  return v;
}

sim::EnergyBreakdown energy_from_json(const Value& v) {
  sim::EnergyBreakdown e;
  e.compute_pj = v.at("compute_pj").as_double();
  e.sram_pj = v.at("sram_pj").as_double();
  e.dram_pj = v.at("dram_pj").as_double();
  e.static_pj = v.at("static_pj").as_double();
  return e;
}

dnn::LayerKind layer_kind_from_string(const std::string& s) {
  if (s == "conv") return dnn::LayerKind::kConv;
  if (s == "fc") return dnn::LayerKind::kFullyConnected;
  if (s == "pool") return dnn::LayerKind::kPool;
  if (s == "recurrent") return dnn::LayerKind::kRecurrent;
  throw Error("unknown layer kind: " + s);
}

Value layer_to_json(const sim::LayerResult& l) {
  Value v = Value::object();
  v.set("name", l.name);
  v.set("kind", dnn::to_string(l.kind));
  v.set("x_bits", l.x_bits);
  v.set("w_bits", l.w_bits);
  v.set("macs", l.macs);
  v.set("compute_cycles", l.compute_cycles);
  v.set("memory_cycles", l.memory_cycles);
  v.set("total_cycles", l.total_cycles);
  v.set("utilization", l.utilization);
  v.set("dram_bytes", l.dram_bytes);
  v.set("sram_bytes", l.sram_bytes);
  v.set("energy", energy_to_json(l.energy));
  v.set("memory_bound", l.memory_bound);
  v.set("runtime_s", l.runtime_s);
  v.set("measured_wall_s", l.measured_wall_s);
  v.set("measured_macs", l.measured_macs);
  return v;
}

sim::LayerResult layer_from_json(const Value& v) {
  sim::LayerResult l;
  l.name = v.at("name").as_string();
  l.kind = layer_kind_from_string(v.at("kind").as_string());
  l.x_bits = static_cast<int>(v.at("x_bits").as_int());
  l.w_bits = static_cast<int>(v.at("w_bits").as_int());
  l.macs = v.at("macs").as_int();
  l.compute_cycles = v.at("compute_cycles").as_int();
  l.memory_cycles = v.at("memory_cycles").as_int();
  l.total_cycles = v.at("total_cycles").as_int();
  l.utilization = v.at("utilization").as_double();
  l.dram_bytes = v.at("dram_bytes").as_int();
  l.sram_bytes = v.at("sram_bytes").as_int();
  l.energy = energy_from_json(v.at("energy"));
  l.memory_bound = v.at("memory_bound").as_bool();
  l.runtime_s = v.at("runtime_s").as_double();
  l.measured_wall_s = v.at("measured_wall_s").as_double();
  l.measured_macs = v.at("measured_macs").as_int();
  return l;
}

// --------------------------------------------------------------------------
// Binary codec — the v3 record body.

std::uint8_t kind_to_u8(dnn::LayerKind k) {
  switch (k) {
    case dnn::LayerKind::kConv:
      return 0;
    case dnn::LayerKind::kFullyConnected:
      return 1;
    case dnn::LayerKind::kPool:
      return 2;
    case dnn::LayerKind::kRecurrent:
      return 3;
  }
  throw Error("unknown layer kind enum value");
}

dnn::LayerKind kind_from_u8(std::uint8_t v) {
  switch (v) {
    case 0:
      return dnn::LayerKind::kConv;
    case 1:
      return dnn::LayerKind::kFullyConnected;
    case 2:
      return dnn::LayerKind::kPool;
    case 3:
      return dnn::LayerKind::kRecurrent;
  }
  throw Error("unknown layer kind tag: " + std::to_string(v));
}

void energy_encode(binio::Writer& w, const sim::EnergyBreakdown& e) {
  w.f64(e.compute_pj);
  w.f64(e.sram_pj);
  w.f64(e.dram_pj);
  w.f64(e.static_pj);
}

sim::EnergyBreakdown energy_decode(binio::Reader& r) {
  sim::EnergyBreakdown e;
  e.compute_pj = r.f64();
  e.sram_pj = r.f64();
  e.dram_pj = r.f64();
  e.static_pj = r.f64();
  return e;
}

void layer_encode(binio::Writer& w, const sim::LayerResult& l) {
  w.str(l.name);
  w.u8(kind_to_u8(l.kind));
  w.i64(l.x_bits);
  w.i64(l.w_bits);
  w.i64(l.macs);
  w.i64(l.compute_cycles);
  w.i64(l.memory_cycles);
  w.i64(l.total_cycles);
  w.f64(l.utilization);
  w.i64(l.dram_bytes);
  w.i64(l.sram_bytes);
  energy_encode(w, l.energy);
  w.u8(l.memory_bound ? 1 : 0);
  w.f64(l.runtime_s);
  w.f64(l.measured_wall_s);
  w.i64(l.measured_macs);
}

sim::LayerResult layer_decode(binio::Reader& r) {
  sim::LayerResult l;
  l.name = r.str();
  l.kind = kind_from_u8(r.u8());
  l.x_bits = static_cast<int>(r.i64());
  l.w_bits = static_cast<int>(r.i64());
  l.macs = r.i64();
  l.compute_cycles = r.i64();
  l.memory_cycles = r.i64();
  l.total_cycles = r.i64();
  l.utilization = r.f64();
  l.dram_bytes = r.i64();
  l.sram_bytes = r.i64();
  l.energy = energy_decode(r);
  l.memory_bound = r.u8() != 0;
  l.runtime_s = r.f64();
  l.measured_wall_s = r.f64();
  l.measured_macs = r.i64();
  return l;
}

// --------------------------------------------------------------------------
// Shard file layout.

constexpr char kShardMagic[4] = {'B', 'P', 'C', '3'};
constexpr std::size_t kShardHeaderSize = 8;  // magic + u32 version
// Per record: u32 payload_len before the payload, u64 checksum after.
constexpr std::size_t kRecordOverhead = 12;

std::string shard_file_name(std::uint64_t number) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "shard-%04llu.bpc",
                static_cast<unsigned long long>(number));
  return buf;
}

std::string shard_header() {
  binio::Writer w;
  for (char c : kShardMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u32(static_cast<std::uint32_t>(DiskCache::kFormatVersion));
  return w.take();
}

bool shard_header_ok(const std::string& bytes) {
  if (bytes.size() < kShardHeaderSize) return false;
  if (std::memcmp(bytes.data(), kShardMagic, sizeof kShardMagic) != 0) {
    return false;
  }
  binio::Reader r(bytes.data() + 4, 4);
  return r.u32() == static_cast<std::uint32_t>(DiskCache::kFormatVersion);
}

/// True when `name` looks like shard-<digits>.bpc; fills `number`.
bool parse_shard_name(const std::string& name, std::uint64_t& number) {
  constexpr const char* kPrefix = "shard-";
  constexpr const char* kSuffix = ".bpc";
  if (name.size() <= std::strlen(kPrefix) + std::strlen(kSuffix)) return false;
  if (name.rfind(kPrefix, 0) != 0) return false;
  if (name.size() < std::strlen(kSuffix) ||
      name.compare(name.size() - std::strlen(kSuffix), std::strlen(kSuffix),
                   kSuffix) != 0) {
    return false;
  }
  const std::string digits = name.substr(
      std::strlen(kPrefix),
      name.size() - std::strlen(kPrefix) - std::strlen(kSuffix));
  if (digits.empty()) return false;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
  }
  number = std::strtoull(digits.c_str(), nullptr, 10);
  return true;
}

/// Shard files in `dir`, sorted by shard number (scan order — later
/// shards win duplicate keys).
std::vector<std::pair<std::uint64_t, std::string>> list_shards(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> shards;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    std::uint64_t number = 0;
    if (entry.is_regular_file(ec) &&
        parse_shard_name(entry.path().filename().string(), number)) {
      shards.emplace_back(number, entry.path().string());
    }
  }
  std::sort(shards.begin(), shards.end());
  return shards;
}

struct RawRecord {
  std::uint64_t key = 0;
  std::uint64_t generation = 0;
  std::size_t payload_off = 0;
  std::uint32_t payload_len = 0;
};

/// Walks the records of an already-header-checked shard, calling `fn` for
/// each checksum-valid one. Returns the number of rejected records —
/// a torn tail or in-place corruption yields exactly one reject and stops
/// the walk (records past a bad length prefix cannot be re-synchronized).
template <typename Fn>
std::size_t walk_shard_records(const std::string& bytes, Fn&& fn) {
  std::size_t pos = kShardHeaderSize;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 4) return 1;
    binio::Reader len_r(bytes.data() + pos, 4);
    const std::uint32_t len = len_r.u32();
    if (bytes.size() - pos < kRecordOverhead + len || len < 16) return 1;
    const char* payload = bytes.data() + pos + 4;
    binio::Reader ck_r(payload + len, 8);
    if (ck_r.u64() != binio::checksum(payload, len)) return 1;
    RawRecord rec;
    binio::Reader head(payload, 16);
    rec.key = head.u64();
    rec.generation = head.u64();
    rec.payload_off = pos + 4;
    rec.payload_len = len;
    fn(rec);
    pos += kRecordOverhead + len;
  }
  return 0;
}

/// One serialized record (length prefix + payload + checksum).
std::string encode_record(std::uint64_t key, std::uint64_t generation,
                          const sim::RunResult& result) {
  binio::Writer payload;
  payload.u64(key);
  payload.u64(generation);
  run_result_encode(payload, result);
  binio::Writer rec;
  rec.u32(static_cast<std::uint32_t>(payload.size()));
  return rec.take() + payload.bytes() +
         [&] {
           binio::Writer ck;
           ck.u64(binio::checksum(payload.bytes()));
           return ck.take();
         }();
}

bool read_whole_fd(int fd, std::string& out) {
  struct stat st;
  if (::fstat(fd, &st) != 0) return false;
  out.resize(static_cast<std::size_t>(st.st_size));
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::read(fd, out.data() + got, out.size() - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) break;
    got += static_cast<std::size_t>(n);
  }
  out.resize(got);
  return true;
}

bool read_whole_file(const std::string& path, std::string& out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = read_whole_fd(fd, out);
  ::close(fd);
  return ok;
}

bool pread_exact(int fd, char* buf, std::size_t len, std::uint64_t offset) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::pread(fd, buf + got, len - got,
                              static_cast<off_t>(offset + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    got += static_cast<std::size_t>(n);
  }
  return true;
}

/// Seals `bytes` as a new shard: written to a unique temp file in `dir`,
/// then published with link(2) at the first free shard number ≥
/// `next_number` (link fails with EEXIST instead of clobbering a shard a
/// concurrent process published first). Returns the published path ("" on
/// failure) and advances `next_number` past the claimed slot.
std::string publish_shard(const std::string& dir, const std::string& bytes,
                          std::uint64_t& next_number) {
  static std::atomic<std::uint64_t> tmp_seq{0};
  const std::string tmp =
      (fs::path(dir) / ("tmp-" + std::to_string(::getpid()) + "-" +
                        std::to_string(tmp_seq.fetch_add(1)) + ".bpc"))
          .string();
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return {};
    }
  }
  for (std::uint64_t n = next_number;; ++n) {
    const std::string path = (fs::path(dir) / shard_file_name(n)).string();
    if (::link(tmp.c_str(), path.c_str()) == 0) {
      ::unlink(tmp.c_str());
      next_number = n + 1;
      return path;
    }
    if (errno != EEXIST) {
      ::unlink(tmp.c_str());
      return {};
    }
  }
}

/// Binary shards hold every double bit-exactly, but results that price to
/// inf/nan signal a broken scenario, and replaying them from cache would
/// hide the breakage behind a hit. Refuse them up front (counted
/// store_failures), matching the v2 JSON-era contract.
bool all_finite(const sim::RunResult& r) {
  const auto energy_finite = [](const sim::EnergyBreakdown& e) {
    return std::isfinite(e.compute_pj) && std::isfinite(e.sram_pj) &&
           std::isfinite(e.dram_pj) && std::isfinite(e.static_pj);
  };
  if (!std::isfinite(r.runtime_s) || !std::isfinite(r.energy_j) ||
      !std::isfinite(r.average_power_w) || !std::isfinite(r.gops_per_s) ||
      !std::isfinite(r.gops_per_w) || !std::isfinite(r.measured_wall_s) ||
      !energy_finite(r.energy)) {
    return false;
  }
  for (const sim::LayerResult& l : r.layers) {
    if (!std::isfinite(l.utilization) || !std::isfinite(l.runtime_s) ||
        !std::isfinite(l.measured_wall_s) || !energy_finite(l.energy)) {
      return false;
    }
  }
  return true;
}

std::string key_hex(std::uint64_t key) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

}  // namespace

Value run_result_to_json(const sim::RunResult& r) {
  Value v = Value::object();
  v.set("platform", r.platform);
  v.set("network", r.network);
  v.set("memory", r.memory);
  v.set("backend", r.backend);
  v.set("total_cycles", r.total_cycles);
  v.set("total_macs", r.total_macs);
  v.set("energy", energy_to_json(r.energy));
  v.set("runtime_s", r.runtime_s);
  v.set("energy_j", r.energy_j);
  v.set("average_power_w", r.average_power_w);
  v.set("gops_per_s", r.gops_per_s);
  v.set("gops_per_w", r.gops_per_w);
  v.set("measured_wall_s", r.measured_wall_s);
  v.set("measured_macs", r.measured_macs);
  Value layers = Value::array();
  for (const sim::LayerResult& l : r.layers) {
    layers.push_back(layer_to_json(l));
  }
  v.set("layers", std::move(layers));
  return v;
}

sim::RunResult run_result_from_json(const Value& v) {
  sim::RunResult r;
  r.platform = v.at("platform").as_string();
  r.network = v.at("network").as_string();
  r.memory = v.at("memory").as_string();
  r.backend = v.at("backend").as_string();
  r.total_cycles = v.at("total_cycles").as_int();
  r.total_macs = v.at("total_macs").as_int();
  r.energy = energy_from_json(v.at("energy"));
  r.runtime_s = v.at("runtime_s").as_double();
  r.energy_j = v.at("energy_j").as_double();
  r.average_power_w = v.at("average_power_w").as_double();
  r.gops_per_s = v.at("gops_per_s").as_double();
  r.gops_per_w = v.at("gops_per_w").as_double();
  r.measured_wall_s = v.at("measured_wall_s").as_double();
  r.measured_macs = v.at("measured_macs").as_int();
  for (const Value& l : v.at("layers").as_array()) {
    r.layers.push_back(layer_from_json(l));
  }
  return r;
}

void run_result_encode(binio::Writer& w, const sim::RunResult& r) {
  w.str(r.platform);
  w.str(r.network);
  w.str(r.memory);
  w.str(r.backend);
  w.i64(r.total_cycles);
  w.i64(r.total_macs);
  energy_encode(w, r.energy);
  w.f64(r.runtime_s);
  w.f64(r.energy_j);
  w.f64(r.average_power_w);
  w.f64(r.gops_per_s);
  w.f64(r.gops_per_w);
  w.f64(r.measured_wall_s);
  w.i64(r.measured_macs);
  w.u32(static_cast<std::uint32_t>(r.layers.size()));
  for (const sim::LayerResult& l : r.layers) layer_encode(w, l);
}

sim::RunResult run_result_decode(binio::Reader& r) {
  sim::RunResult out;
  out.platform = r.str();
  out.network = r.str();
  out.memory = r.str();
  out.backend = r.str();
  out.total_cycles = r.i64();
  out.total_macs = r.i64();
  out.energy = energy_decode(r);
  out.runtime_s = r.f64();
  out.energy_j = r.f64();
  out.average_power_w = r.f64();
  out.gops_per_s = r.f64();
  out.gops_per_w = r.f64();
  out.measured_wall_s = r.f64();
  out.measured_macs = r.i64();
  const std::uint32_t n_layers = r.u32();
  out.layers.reserve(n_layers);
  for (std::uint32_t i = 0; i < n_layers; ++i) {
    out.layers.push_back(layer_decode(r));
  }
  return out;
}

DiskCache::DiskCache(std::string dir) : dir_(std::move(dir)) {
  BPVEC_CHECK_MSG(!dir_.empty(), "disk cache directory must be non-empty");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_)) {
    throw Error("disk cache: cannot create directory " + dir_ + ": " +
                ec.message());
  }
  scan_dir();
}

DiskCache::~DiskCache() {
  for (const Shard& s : shards_) {
    if (s.fd >= 0) ::close(s.fd);
  }
}

void DiskCache::scan_dir() {
  // Single-threaded (constructor), but keep the lock discipline uniform.
  std::unique_lock lock(index_mu_);
  for (const auto& [number, path] : list_shards(dir_)) {
    next_shard_ = std::max(next_shard_, number + 1);
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    file_opens_.fetch_add(1, std::memory_order_relaxed);
    std::string bytes;
    if (!read_whole_fd(fd, bytes) || !shard_header_ok(bytes)) {
      // Foreign format version, garbage, or unreadable: skip the whole
      // file (one reject) and never serve from it. Its number stays
      // claimed so we never write over it.
      rejected_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    const auto shard_idx = static_cast<std::uint32_t>(shards_.size());
    shards_.push_back(Shard{path, fd});
    const std::size_t bad =
        walk_shard_records(bytes, [&](const RawRecord& rec) {
          index_[rec.key] =
              Loc{shard_idx, rec.payload_off, rec.payload_len};
        });
    rejected_.fetch_add(bad, std::memory_order_relaxed);
  }
}

std::shared_ptr<const sim::RunResult> DiskCache::load(
    std::uint64_t key, std::uint64_t generation) const {
  int fd = -1;
  Loc loc;
  {
    std::shared_lock lock(index_mu_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    loc = it->second;
    fd = shards_[loc.shard].fd;
  }
  // The fd stays open for the cache's lifetime, and records are never
  // rewritten in place, so the positional read needs no lock.
  std::string buf(loc.len + 8, '\0');
  if (!pread_exact(fd, buf.data(), buf.size(), loc.offset)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  try {
    binio::Reader ck(buf.data() + loc.len, 8);
    if (ck.u64() != binio::checksum(buf.data(), loc.len)) {
      throw Error("checksum mismatch");
    }
    binio::Reader r(buf.data(), loc.len);
    if (r.u64() != key || r.u64() != generation) {
      throw Error("stale record");
    }
    auto result = std::make_shared<sim::RunResult>(run_result_decode(r));
    if (!r.done()) throw Error("trailing bytes in record");
    hits_.fetch_add(1, std::memory_order_relaxed);
    return result;
  } catch (const std::exception&) {
    // Corrupted-on-disk-since-scan or generation-stale: a miss, never a
    // failure — the caller re-prices and a later batch re-stores it.
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
}

std::size_t DiskCache::store_batch(
    const std::vector<PendingStore>& pending) const {
  std::string bytes = shard_header();
  struct NewEntry {
    std::uint64_t key;
    Loc loc;
  };
  std::vector<NewEntry> entries;
  entries.reserve(pending.size());
  for (const PendingStore& p : pending) {
    if (p.result == nullptr || !all_finite(*p.result)) {
      store_failures_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const std::string rec = encode_record(p.key, p.generation, *p.result);
    entries.push_back(NewEntry{
        p.key, Loc{0, bytes.size() + 4,
                   static_cast<std::uint32_t>(rec.size() - kRecordOverhead)}});
    bytes += rec;
  }
  if (entries.empty()) return 0;

  std::unique_lock lock(index_mu_);
  const std::string path = publish_shard(dir_, bytes, next_shard_);
  if (path.empty()) {
    store_failures_.fetch_add(entries.size(), std::memory_order_relaxed);
    return 0;
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    // Published but unservable from this process; other processes (and
    // re-opens) will still see the records.
    store_failures_.fetch_add(entries.size(), std::memory_order_relaxed);
    return 0;
  }
  file_opens_.fetch_add(1, std::memory_order_relaxed);
  const auto shard_idx = static_cast<std::uint32_t>(shards_.size());
  shards_.push_back(Shard{path, fd});
  for (NewEntry& e : entries) {
    e.loc.shard = shard_idx;
    index_[e.key] = e.loc;
  }
  stores_.fetch_add(entries.size(), std::memory_order_relaxed);
  return entries.size();
}

bool DiskCache::store(std::uint64_t key, std::uint64_t generation,
                      const sim::RunResult& result) const {
  return store_batch({PendingStore{key, generation, &result}}) == 1;
}

DiskCacheStats DiskCache::stats() const {
  DiskCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.store_failures = store_failures_.load(std::memory_order_relaxed);
  s.file_opens = file_opens_.load(std::memory_order_relaxed);
  std::shared_lock lock(index_mu_);
  s.shards = shards_.size();
  s.records = index_.size();
  return s;
}

std::vector<std::string> DiskCache::shard_paths() const {
  std::shared_lock lock(index_mu_);
  std::vector<std::string> paths;
  paths.reserve(shards_.size());
  for (const Shard& s : shards_) paths.push_back(s.path);
  return paths;
}

// ---------------------------------------------------------------------------
// Maintenance.

CacheDirInfo inspect_cache_dir(const std::string& dir) {
  CacheDirInfo info;
  std::unordered_set<std::uint64_t> live;
  for (const auto& [number, path] : list_shards(dir)) {
    (void)number;
    CacheShardInfo si;
    si.path = path;
    std::string bytes;
    if (!read_whole_file(path, bytes)) {
      si.rejected = 1;
      info.shards.push_back(std::move(si));
      info.rejected_total += 1;
      continue;
    }
    si.bytes = bytes.size();
    info.bytes_total += bytes.size();
    if (!shard_header_ok(bytes)) {
      si.rejected = 1;
    } else {
      si.rejected = walk_shard_records(bytes, [&](const RawRecord& rec) {
        si.records += 1;
        live.insert(rec.key);
      });
    }
    info.records_total += si.records;
    info.rejected_total += si.rejected;
    info.shards.push_back(std::move(si));
  }
  info.live_records = live.size();
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file(ec) && entry.path().extension() == ".json") {
      info.v2_files += 1;
    }
  }
  return info;
}

Value to_json(const CacheDirInfo& info) {
  Value v = Value::object();
  Value shards = Value::array();
  for (const CacheShardInfo& s : info.shards) {
    Value sv = Value::object();
    sv.set("path", s.path);
    sv.set("records", static_cast<std::int64_t>(s.records));
    sv.set("rejected", static_cast<std::int64_t>(s.rejected));
    sv.set("bytes", static_cast<std::int64_t>(s.bytes));
    shards.push_back(std::move(sv));
  }
  v.set("shards", std::move(shards));
  v.set("records_total", static_cast<std::int64_t>(info.records_total));
  v.set("live_records", static_cast<std::int64_t>(info.live_records));
  v.set("rejected_total", static_cast<std::int64_t>(info.rejected_total));
  v.set("v2_files", static_cast<std::int64_t>(info.v2_files));
  v.set("bytes_total", static_cast<std::int64_t>(info.bytes_total));
  return v;
}

CompactResult compact_cache_dir(const std::string& dir) {
  CompactResult res;
  const auto shards = list_shards(dir);
  res.shards_before = shards.size();
  // Last writer wins: later shards overwrite earlier entries. std::map
  // keeps the output shard's record order deterministic.
  std::map<std::uint64_t, std::string> live;  // key -> raw record bytes
  std::uint64_t max_number = 0;
  std::size_t records_total = 0;
  for (const auto& [number, path] : shards) {
    max_number = std::max(max_number, number + 1);
    std::string bytes;
    if (!read_whole_file(path, bytes) || !shard_header_ok(bytes)) continue;
    walk_shard_records(bytes, [&](const RawRecord& rec) {
      records_total += 1;
      // Copy the whole record verbatim (length prefix + payload +
      // checksum): compaction moves records, it never re-encodes them.
      live[rec.key] = bytes.substr(rec.payload_off - 4,
                                   rec.payload_len + kRecordOverhead);
    });
  }
  res.records_kept = live.size();
  res.records_dropped = records_total - live.size();

  if (!live.empty()) {
    std::string out = shard_header();
    for (const auto& [key, rec] : live) {
      (void)key;
      out += rec;
    }
    std::uint64_t next = max_number;
    const std::string path = publish_shard(dir, out, next);
    if (path.empty()) {
      throw Error("compact: cannot publish compacted shard in " + dir);
    }
    res.shards_after = 1;
  }
  for (const auto& [number, path] : shards) {
    (void)number;
    std::error_code ec;
    fs::remove(path, ec);
  }
  return res;
}

MigrateResult migrate_v2_cache_dir(const std::string& dir) {
  MigrateResult res;
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file(ec) && entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  std::string bytes = shard_header();
  std::vector<std::string> migrated;
  for (const std::string& path : files) {
    try {
      const V2Entry entry = load_v2_entry(path);
      bytes += encode_record(entry.key, entry.generation, entry.result);
      migrated.push_back(path);
    } catch (const std::exception&) {
      res.failed += 1;  // left in place for inspection
    }
  }
  if (!migrated.empty()) {
    std::uint64_t next = 0;
    for (const auto& [number, path] : list_shards(dir)) {
      (void)path;
      next = std::max(next, number + 1);
    }
    const std::string path = publish_shard(dir, bytes, next);
    if (path.empty()) {
      throw Error("migrate-v2: cannot publish shard in " + dir);
    }
    for (const std::string& file : migrated) {
      std::error_code rec;
      fs::remove(file, rec);
    }
    res.migrated = migrated.size();
  }
  return res;
}

std::string write_v2_entry(const std::string& dir, std::uint64_t key,
                           std::uint64_t generation,
                           const sim::RunResult& result) {
  Value entry = Value::object();
  entry.set("format_version", DiskCache::kV2FormatVersion);
  entry.set("key", key_hex(key));
  entry.set("generation", static_cast<std::int64_t>(generation));
  entry.set("result", run_result_to_json(result));
  const std::string path = (fs::path(dir) / (key_hex(key) + ".json")).string();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << entry.dump(1);
  out.flush();
  if (!out.good()) throw Error("cannot write v2 entry " + path);
  return path;
}

V2Entry load_v2_entry(const std::string& path) {
  const Value entry = common::json::parse_file(path);
  if (entry.at("format_version").as_int() != DiskCache::kV2FormatVersion) {
    throw Error("not a v2 entry: " + path);
  }
  V2Entry out;
  const std::string hex = entry.at("key").as_string();
  if (hex.size() != 16) throw Error("bad v2 key: " + path);
  out.key = std::strtoull(hex.c_str(), nullptr, 16);
  out.generation =
      static_cast<std::uint64_t>(entry.at("generation").as_int());
  out.result = run_result_from_json(entry.at("result"));
  return out;
}

}  // namespace bpvec::engine
