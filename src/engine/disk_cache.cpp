#include "src/engine/disk_cache.h"

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

#include "src/common/error.h"

namespace bpvec::engine {

namespace fs = std::filesystem;
using common::json::Value;

namespace {

Value energy_to_json(const sim::EnergyBreakdown& e) {
  Value v = Value::object();
  v.set("compute_pj", e.compute_pj);
  v.set("sram_pj", e.sram_pj);
  v.set("dram_pj", e.dram_pj);
  v.set("static_pj", e.static_pj);
  return v;
}

sim::EnergyBreakdown energy_from_json(const Value& v) {
  sim::EnergyBreakdown e;
  e.compute_pj = v.at("compute_pj").as_double();
  e.sram_pj = v.at("sram_pj").as_double();
  e.dram_pj = v.at("dram_pj").as_double();
  e.static_pj = v.at("static_pj").as_double();
  return e;
}

dnn::LayerKind layer_kind_from_string(const std::string& s) {
  if (s == "conv") return dnn::LayerKind::kConv;
  if (s == "fc") return dnn::LayerKind::kFullyConnected;
  if (s == "pool") return dnn::LayerKind::kPool;
  if (s == "recurrent") return dnn::LayerKind::kRecurrent;
  throw Error("unknown layer kind: " + s);
}

Value layer_to_json(const sim::LayerResult& l) {
  Value v = Value::object();
  v.set("name", l.name);
  v.set("kind", dnn::to_string(l.kind));
  v.set("x_bits", l.x_bits);
  v.set("w_bits", l.w_bits);
  v.set("macs", l.macs);
  v.set("compute_cycles", l.compute_cycles);
  v.set("memory_cycles", l.memory_cycles);
  v.set("total_cycles", l.total_cycles);
  v.set("utilization", l.utilization);
  v.set("dram_bytes", l.dram_bytes);
  v.set("sram_bytes", l.sram_bytes);
  v.set("energy", energy_to_json(l.energy));
  v.set("memory_bound", l.memory_bound);
  v.set("runtime_s", l.runtime_s);
  v.set("measured_wall_s", l.measured_wall_s);
  v.set("measured_macs", l.measured_macs);
  return v;
}

sim::LayerResult layer_from_json(const Value& v) {
  sim::LayerResult l;
  l.name = v.at("name").as_string();
  l.kind = layer_kind_from_string(v.at("kind").as_string());
  l.x_bits = static_cast<int>(v.at("x_bits").as_int());
  l.w_bits = static_cast<int>(v.at("w_bits").as_int());
  l.macs = v.at("macs").as_int();
  l.compute_cycles = v.at("compute_cycles").as_int();
  l.memory_cycles = v.at("memory_cycles").as_int();
  l.total_cycles = v.at("total_cycles").as_int();
  l.utilization = v.at("utilization").as_double();
  l.dram_bytes = v.at("dram_bytes").as_int();
  l.sram_bytes = v.at("sram_bytes").as_int();
  l.energy = energy_from_json(v.at("energy"));
  l.memory_bound = v.at("memory_bound").as_bool();
  l.runtime_s = v.at("runtime_s").as_double();
  l.measured_wall_s = v.at("measured_wall_s").as_double();
  l.measured_macs = v.at("measured_macs").as_int();
  return l;
}

/// JSON has no inf/nan (they would serialize as null and poison the
/// entry: stored fine, rejected on every load, re-priced and re-stored
/// forever). Such results are refused up front instead.
bool all_finite(const sim::RunResult& r) {
  const auto energy_finite = [](const sim::EnergyBreakdown& e) {
    return std::isfinite(e.compute_pj) && std::isfinite(e.sram_pj) &&
           std::isfinite(e.dram_pj) && std::isfinite(e.static_pj);
  };
  if (!std::isfinite(r.runtime_s) || !std::isfinite(r.energy_j) ||
      !std::isfinite(r.average_power_w) || !std::isfinite(r.gops_per_s) ||
      !std::isfinite(r.gops_per_w) || !std::isfinite(r.measured_wall_s) ||
      !energy_finite(r.energy)) {
    return false;
  }
  for (const sim::LayerResult& l : r.layers) {
    if (!std::isfinite(l.utilization) || !std::isfinite(l.runtime_s) ||
        !std::isfinite(l.measured_wall_s) || !energy_finite(l.energy)) {
      return false;
    }
  }
  return true;
}

std::string key_hex(std::uint64_t key) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

}  // namespace

Value run_result_to_json(const sim::RunResult& r) {
  Value v = Value::object();
  v.set("platform", r.platform);
  v.set("network", r.network);
  v.set("memory", r.memory);
  v.set("backend", r.backend);
  v.set("total_cycles", r.total_cycles);
  v.set("total_macs", r.total_macs);
  v.set("energy", energy_to_json(r.energy));
  v.set("runtime_s", r.runtime_s);
  v.set("energy_j", r.energy_j);
  v.set("average_power_w", r.average_power_w);
  v.set("gops_per_s", r.gops_per_s);
  v.set("gops_per_w", r.gops_per_w);
  v.set("measured_wall_s", r.measured_wall_s);
  v.set("measured_macs", r.measured_macs);
  Value layers = Value::array();
  for (const sim::LayerResult& l : r.layers) {
    layers.push_back(layer_to_json(l));
  }
  v.set("layers", std::move(layers));
  return v;
}

sim::RunResult run_result_from_json(const Value& v) {
  sim::RunResult r;
  r.platform = v.at("platform").as_string();
  r.network = v.at("network").as_string();
  r.memory = v.at("memory").as_string();
  r.backend = v.at("backend").as_string();
  r.total_cycles = v.at("total_cycles").as_int();
  r.total_macs = v.at("total_macs").as_int();
  r.energy = energy_from_json(v.at("energy"));
  r.runtime_s = v.at("runtime_s").as_double();
  r.energy_j = v.at("energy_j").as_double();
  r.average_power_w = v.at("average_power_w").as_double();
  r.gops_per_s = v.at("gops_per_s").as_double();
  r.gops_per_w = v.at("gops_per_w").as_double();
  r.measured_wall_s = v.at("measured_wall_s").as_double();
  r.measured_macs = v.at("measured_macs").as_int();
  for (const Value& l : v.at("layers").as_array()) {
    r.layers.push_back(layer_from_json(l));
  }
  return r;
}

DiskCache::DiskCache(std::string dir) : dir_(std::move(dir)) {
  BPVEC_CHECK_MSG(!dir_.empty(), "disk cache directory must be non-empty");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_)) {
    throw Error("disk cache: cannot create directory " + dir_ + ": " +
                ec.message());
  }
}

std::string DiskCache::entry_path(std::uint64_t key) const {
  return (fs::path(dir_) / (key_hex(key) + ".json")).string();
}

std::shared_ptr<const sim::RunResult> DiskCache::load(
    std::uint64_t key, std::uint64_t generation) const {
  const std::string path = entry_path(key);
  {
    std::error_code ec;
    if (!fs::exists(path, ec) || ec) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
  }
  try {
    const Value entry = common::json::parse_file(path);
    if (entry.at("format_version").as_int() != kFormatVersion ||
        entry.at("key").as_string() != key_hex(key) ||
        entry.at("generation").as_int() !=
            static_cast<std::int64_t>(generation)) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    auto result = std::make_shared<sim::RunResult>(
        run_result_from_json(entry.at("result")));
    hits_.fetch_add(1, std::memory_order_relaxed);
    return result;
  } catch (const std::exception&) {
    // Truncated/corrupt/mistyped entry: a miss, never a failure — the
    // caller re-prices and overwrites it with a good one.
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
}

bool DiskCache::store(std::uint64_t key, std::uint64_t generation,
                      const sim::RunResult& result) const {
  if (!all_finite(result)) {
    // Not representable in JSON bit-exactly; caching it would turn this
    // key into a permanent reject-and-reprice loop. Skip it.
    store_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Value entry = Value::object();
  entry.set("format_version", kFormatVersion);
  entry.set("key", key_hex(key));
  entry.set("generation", static_cast<std::int64_t>(generation));
  entry.set("result", run_result_to_json(result));

  // Unique temp name per (process, store): concurrent writers — pool
  // threads in this process or other processes sharing the dir — never
  // collide on the temp file, and the final rename is atomic.
  const std::string tmp =
      entry_path(key) + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(tmp_seq_.fetch_add(1, std::memory_order_relaxed));
  try {
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      out << entry.dump(1);
      out.flush();
      if (!out.good()) throw Error("write failed");
    }
    fs::rename(tmp, entry_path(key));
    stores_.fetch_add(1, std::memory_order_relaxed);
    return true;
  } catch (const std::exception&) {
    std::error_code ec;
    fs::remove(tmp, ec);  // best effort
    store_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
}

DiskCacheStats DiskCache::stats() const {
  DiskCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.store_failures = store_failures_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace bpvec::engine
