#include "src/engine/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <limits>

#include "src/common/error.h"

namespace bpvec::engine {

ThreadPool::ThreadPool(int num_threads) {
  std::size_t n = num_threads > 0
                      ? static_cast<std::size_t>(num_threads)
                      : std::max(1u, std::thread::hardware_concurrency());
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<Worker>());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    shutdown_ = true;
  }
  wake_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> fn) {
  BPVEC_CHECK(fn != nullptr);
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    target = next_queue_++ % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(fn));
  }
  {
    // Order the push against a sleeper's empty-recheck (which runs under
    // wake_mu_): without this fence a worker can verify the queues are
    // empty, have the task land plus the notify fire before it reaches
    // wait(), and sleep with runnable work queued (lost wakeup).
    std::lock_guard<std::mutex> lock(wake_mu_);
  }
  wake_cv_.notify_one();
}

bool ThreadPool::try_acquire(std::size_t self, std::function<void()>& out) {
  // Own deque first, newest task (LIFO keeps the working set warm).
  {
    Worker& w = *queues_[self];
    std::lock_guard<std::mutex> lock(w.mu);
    if (!w.tasks.empty()) {
      out = std::move(w.tasks.back());
      w.tasks.pop_back();
      return true;
    }
  }
  // Steal oldest-first from the other deques.
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    Worker& victim = *queues_[(self + k) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

namespace {
// Tasks own their error handling (parallel_for's chunks catch per index);
// an exception escaping a detached submit() task is dropped here rather
// than terminating the worker or unwinding an unrelated caller-help loop.
void run_guarded(const std::function<void()>& task) {
  try {
    task();
  } catch (...) {
  }
}
}  // namespace

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    if (try_acquire(self, task)) {
      run_guarded(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    // Re-check under the wake lock: a submit between our scan and here
    // would otherwise be missed until the next notify. Checked before the
    // shutdown flag so destruction drains queued tasks instead of
    // dropping them.
    bool any = false;
    for (auto& q : queues_) {
      std::lock_guard<std::mutex> qlock(q->mu);
      if (!q->tasks.empty()) {
        any = true;
        break;
      }
    }
    if (any) continue;
    if (shutdown_) return;
    wake_cv_.wait(lock);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (n == 0) return;
  BPVEC_CHECK(fn != nullptr);
  if (grain == 0) grain = 1;
  const std::size_t num_tasks = (n + grain - 1) / grain;

  struct State {
    std::atomic<std::size_t> done{0};       // completed tasks
    std::atomic<std::size_t> error_index;   // lowest failing index
    std::exception_ptr error;               // exception at error_index
    std::mutex mu;                          // guards error + wakes the caller
    std::condition_variable all_done;
    std::size_t num_tasks = 0;
    State() : error_index(std::numeric_limits<std::size_t>::max()) {}
  };
  auto state = std::make_shared<State>();
  state->num_tasks = num_tasks;

  auto run_chunk = [state, &fn, n, grain](std::size_t t) {
    const std::size_t lo = t * grain;
    const std::size_t hi = std::min(n, lo + grain);
    for (std::size_t i = lo; i < hi; ++i) {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (i < state->error_index.load(std::memory_order_relaxed)) {
          state->error_index.store(i, std::memory_order_relaxed);
          state->error = std::current_exception();
        }
      }
    }
    if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        state->num_tasks) {
      std::lock_guard<std::mutex> lock(state->mu);  // pair with caller wait
      state->all_done.notify_all();
    }
  };

  for (std::size_t t = 0; t < num_tasks; ++t) {
    submit([run_chunk, t] { run_chunk(t); });
  }

  // The caller lends a hand while there are acquirable tasks, then sleeps
  // until the in-flight ones (possibly running on workers) finish.
  std::size_t self = 0;
  while (state->done.load(std::memory_order_acquire) < num_tasks) {
    std::function<void()> task;
    if (try_acquire(self, task)) {
      run_guarded(task);  // may be a foreign task; don't let it unwind us
      continue;
    }
    std::unique_lock<std::mutex> lock(state->mu);
    state->all_done.wait_for(lock, std::chrono::milliseconds(1), [&] {
      return state->done.load(std::memory_order_acquire) >= num_tasks;
    });
  }

  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace bpvec::engine
