#include "src/engine/scenario.h"

#include <utility>

#include "src/backend/cost_backend.h"
#include "src/common/hash.h"
#include "src/workload/schema.h"

namespace bpvec::engine {

const char* to_string(Platform platform) {
  switch (platform) {
    case Platform::kTpuLike: return "tpu_like";
    case Platform::kBitFusion: return "bitfusion";
    case Platform::kBpvec: return "bpvec";
  }
  return "?";
}

std::uint64_t Scenario::fingerprint() const {
  common::ConfigHash f;
  // Backend id first: two different cost models of the same platform ×
  // memory × network must never collide in the engine's result cache.
  f.str(backend);
  backend::hash_platform(f, platform);
  backend::hash_memory(f, memory);
  // Network: the structural fingerprint only — shapes and bitwidths
  // drive pricing, names merely label it. Structurally identical
  // workloads (a JSON copy of a zoo model, two registry entries for one
  // architecture) therefore share scenario/disk cache entries, and two
  // different networks that happen to share a name can never collide.
  // The engine restores per-scenario network/layer labels on cached
  // results, so reports still carry each scenario's own names.
  f.u64(workload::network_fingerprint(network, platform.time_chunk));
  return f.h;
}

namespace {
sim::AcceleratorConfig platform_config(Platform platform) {
  switch (platform) {
    case Platform::kTpuLike: return sim::tpu_like_baseline();
    case Platform::kBitFusion: return sim::bitfusion_accelerator();
    case Platform::kBpvec: return sim::bpvec_accelerator();
  }
  return sim::bpvec_accelerator();
}
}  // namespace

Scenario make_scenario(Platform platform, core::Memory memory,
                       dnn::Network net, std::string id) {
  return make_scenario(platform_config(platform), core::make_memory(memory),
                       std::move(net), std::move(id));
}

Scenario make_scenario(sim::AcceleratorConfig config, arch::DramModel memory,
                       dnn::Network net, std::string id) {
  return make_scenario("bpvec", std::move(config), std::move(memory),
                       std::move(net), std::move(id));
}

Scenario make_scenario(std::string backend, Platform platform,
                       core::Memory memory, dnn::Network net,
                       std::string id) {
  return make_scenario(std::move(backend), platform_config(platform),
                       core::make_memory(memory), std::move(net),
                       std::move(id));
}

Scenario make_scenario(std::string backend, sim::AcceleratorConfig config,
                       arch::DramModel memory, dnn::Network net,
                       std::string id) {
  Scenario s;
  s.backend = std::move(backend);
  s.platform = std::move(config);
  s.memory = std::move(memory);
  s.network = std::move(net);
  if (id.empty()) {
    s.id = s.backend;
    s.id += ':';
    s.id += s.platform.name;
    s.id += '/';
    s.id += s.network.name();
    s.id += '/';
    s.id += s.memory.name;
  } else {
    s.id = std::move(id);
  }
  return s;
}

Scenario make_gpu_scenario(dnn::Network net, std::string id) {
  if (id.empty()) {
    id = "gpu:RTX 2080 Ti/" + net.name() + "/GDDR6";
  }
  // Placeholder platform/memory: the gpu backend prices from its GpuSpec.
  return make_scenario("gpu", Platform::kBpvec, core::Memory::kDdr4,
                       std::move(net), std::move(id));
}

}  // namespace bpvec::engine
