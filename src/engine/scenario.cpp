#include "src/engine/scenario.h"

#include <cstring>

namespace bpvec::engine {

namespace {

// Word-at-a-time 64-bit mixer (murmur-style finalizer per word folded
// into an FNV-ish chain). Fingerprinting sits on the batch hot path —
// byte-at-a-time FNV costs as much as the simulation itself on the
// many-layer networks, word mixing is ~8x cheaper at equivalent quality.
struct ConfigHash {
  std::uint64_t h = 0xCBF29CE484222325ull;

  void u64(std::uint64_t v) {
    v *= 0xFF51AFD7ED558CCDull;
    v ^= v >> 33;
    h = (h ^ v) * 0x100000001B3ull;
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void i32(int v) { i64(v); }
  void f64(double v) {
    // Hash the bit pattern: results are bit-identical iff inputs are.
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    std::size_t i = 0;
    for (; i + 8 <= s.size(); i += 8) {
      std::uint64_t w;
      std::memcpy(&w, s.data() + i, 8);
      u64(w);
    }
    std::uint64_t tail = 0;
    if (i < s.size()) {
      std::memcpy(&tail, s.data() + i, s.size() - i);
      u64(tail);
    }
  }
};

void hash_layer(ConfigHash& f, const dnn::Layer& layer, int time_chunk) {
  f.str(layer.name);
  f.i32(static_cast<int>(layer.kind));
  f.i32(layer.x_bits);
  f.i32(layer.w_bits);
  f.i64(layer.macs());
  f.i64(layer.weights());
  f.i64(layer.input_elems());
  f.i64(layer.output_elems());
  if (layer.is_compute()) {
    const dnn::GemmShape g = layer.gemm(time_chunk);
    f.i64(g.m);
    f.i64(g.n);
    f.i64(g.k);
    f.i64(g.repeats);
    f.i32(g.weights_streamed_per_repeat ? 1 : 0);
  }
}

}  // namespace

const char* to_string(Platform platform) {
  switch (platform) {
    case Platform::kTpuLike: return "tpu_like";
    case Platform::kBitFusion: return "bitfusion";
    case Platform::kBpvec: return "bpvec";
  }
  return "?";
}

std::uint64_t Scenario::fingerprint() const {
  ConfigHash f;
  // Platform knobs — every field sim::Simulator reads.
  f.str(platform.name);
  f.i32(static_cast<int>(platform.pe_kind));
  f.i32(platform.rows);
  f.i32(platform.cols);
  f.i32(platform.cvu.slice_bits);
  f.i32(platform.cvu.max_bits);
  f.i32(platform.cvu.lanes);
  f.i64(platform.scratchpad_bytes);
  f.f64(platform.frequency_hz);
  f.i32(platform.time_chunk);
  f.i32(platform.batch_size);
  f.f64(platform.static_core_mw);
  // Memory knobs.
  f.str(memory.name);
  f.f64(memory.bandwidth_gbps);
  f.f64(memory.energy_pj_per_bit);
  f.f64(memory.startup_latency_ns);
  f.f64(memory.background_power_w);
  // Network.
  f.str(network.name());
  f.u64(network.layers().size());
  for (const dnn::Layer& layer : network.layers()) {
    hash_layer(f, layer, platform.time_chunk);
  }
  return f.h;
}

namespace {
sim::AcceleratorConfig platform_config(Platform platform) {
  switch (platform) {
    case Platform::kTpuLike: return sim::tpu_like_baseline();
    case Platform::kBitFusion: return sim::bitfusion_accelerator();
    case Platform::kBpvec: return sim::bpvec_accelerator();
  }
  return sim::bpvec_accelerator();
}
}  // namespace

Scenario make_scenario(Platform platform, core::Memory memory,
                       dnn::Network net, std::string id) {
  return make_scenario(platform_config(platform), core::make_memory(memory),
                       std::move(net), std::move(id));
}

Scenario make_scenario(sim::AcceleratorConfig config, arch::DramModel memory,
                       dnn::Network net, std::string id) {
  Scenario s;
  s.platform = std::move(config);
  s.memory = std::move(memory);
  s.network = std::move(net);
  if (id.empty()) {
    s.id = s.platform.name;
    s.id += '/';
    s.id += s.network.name();
    s.id += '/';
    s.id += s.memory.name;
  } else {
    s.id = std::move(id);
  }
  return s;
}

}  // namespace bpvec::engine
