#include "src/engine/sim_engine.h"

#include <algorithm>
#include <utility>

namespace bpvec::engine {

SimEngine::SimEngine(EngineOptions options)
    : pool_(options.num_threads), cache_enabled_(options.cache_enabled) {}

std::size_t SimEngine::batch_grain(std::size_t jobs) const {
  // Aim for ~4 stealable tasks per worker so micro-scale jobs amortize
  // queue overhead while load balancing still has slack.
  const std::size_t lanes = static_cast<std::size_t>(pool_.num_threads()) * 4;
  return std::max<std::size_t>(1, jobs / std::max<std::size_t>(1, lanes));
}

std::vector<sim::RunResult> SimEngine::run_batch(
    const std::vector<Scenario>& batch) {
  std::vector<sim::RunResult> results(batch.size());
  if (batch.empty()) return results;

  // Fingerprints are pure per-scenario work — hash them on the pool so
  // the cache feature doesn't serialize in front of the parallel region.
  std::vector<std::uint64_t> prints(batch.size());
  if (cache_enabled_) {
    pool_.parallel_for(
        batch.size(),
        [&](std::size_t i) { prints[i] = batch[i].fingerprint(); },
        batch_grain(batch.size()));
  }

  // Plan: resolve each scenario against the cache, keeping only the first
  // occurrence of each fingerprint as a real job; later occurrences alias
  // the job's slot.
  struct Slot {
    bool cached = false;
    std::size_t job = 0;  // index into `jobs` when !cached
  };
  std::vector<Slot> slots(batch.size());
  std::vector<std::size_t> jobs;  // batch indices that actually simulate
  std::vector<std::shared_ptr<const sim::RunResult>> hits(batch.size());

  {
    std::unordered_map<std::uint64_t, std::size_t> first_job;
    std::lock_guard<std::mutex> lock(mu_);
    stats_.scenarios_submitted += batch.size();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!cache_enabled_) {
        slots[i].job = jobs.size();
        jobs.push_back(i);
        continue;
      }
      if (auto it = cache_.find(prints[i]); it != cache_.end()) {
        slots[i].cached = true;
        hits[i] = it->second;
        ++stats_.cache_hits;
        continue;
      }
      if (auto it = first_job.find(prints[i]); it != first_job.end()) {
        slots[i].job = it->second;  // duplicate within this batch
        ++stats_.cache_hits;
        continue;
      }
      first_job.emplace(prints[i], jobs.size());
      slots[i].job = jobs.size();
      jobs.push_back(i);
    }
    stats_.simulations_run += jobs.size();
  }

  // Simulate the unique scenarios in parallel, writing each job's result
  // straight into its primary output slot; the cache's private copy is
  // made inside the same task so no extra serial pass touches the bulky
  // RunResults. Each job constructs its own Simulator — no state is
  // shared across tasks, so scheduling order cannot affect the numbers.
  std::vector<std::shared_ptr<const sim::RunResult>> fresh(
      cache_enabled_ ? jobs.size() : 0);
  pool_.parallel_for(
      jobs.size(),
      [&](std::size_t j) {
        const std::size_t i = jobs[j];
        const Scenario& s = batch[i];
        results[i] = sim::Simulator(s.platform, s.memory).run(s.network);
        if (cache_enabled_) {
          fresh[j] = std::make_shared<const sim::RunResult>(results[i]);
        }
      },
      batch_grain(jobs.size()));

  // Fan cached/duplicate slots out from the shared copies (usually few).
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (slots[i].cached) {
      results[i] = *hits[i];
    } else if (jobs[slots[i].job] != i) {
      results[i] = *fresh[slots[i].job];  // in-batch duplicate
    }
  }

  if (cache_enabled_) {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      cache_.emplace(prints[jobs[j]], std::move(fresh[j]));
    }
  }
  return results;
}

sim::RunResult SimEngine::run(const Scenario& scenario) {
  return run_batch({scenario}).front();
}

std::vector<core::DesignPoint> SimEngine::explore_design_space(
    const std::vector<int>& slice_widths, const std::vector<int>& lanes,
    int max_bits) {
  const auto grid = core::design_grid(slice_widths, lanes, max_bits);
  std::vector<core::DesignPoint> points(grid.size());
  pool_.parallel_for(
      grid.size(),
      [&](std::size_t i) { points[i] = core::price_design_point(grid[i]); },
      batch_grain(grid.size()));
  return points;
}

std::vector<core::DesignPoint> SimEngine::explore_design_space(
    const std::vector<int>& slice_widths, const std::vector<int>& lanes,
    int max_bits, const std::vector<core::BitwidthMixEntry>& mix) {
  const auto grid = core::design_grid(slice_widths, lanes, max_bits);
  std::vector<core::DesignPoint> points(grid.size());
  pool_.parallel_for(
      grid.size(),
      [&](std::size_t i) {
        points[i] = core::price_design_point(grid[i], mix);
      },
      batch_grain(grid.size()));
  return points;
}

EngineStats SimEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SimEngine::clear_cache() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
}

}  // namespace bpvec::engine
