#include "src/engine/sim_engine.h"

#include <algorithm>
#include <shared_mutex>
#include <string>
#include <utility>

#include "src/backend/backend_registry.h"
#include "src/common/error.h"
#include "src/common/hash.h"
#include "src/dse/search.h"

namespace bpvec::engine {

namespace {
constexpr std::size_t kNotDupe = static_cast<std::size_t>(-1);
}  // namespace

common::json::Value to_json(const EngineStats& stats) {
  common::json::Value v = common::json::Value::object();
  v.set("scenarios_submitted", stats.scenarios_submitted);
  v.set("simulations_run", stats.simulations_run);
  v.set("cache_hits", stats.cache_hits);
  v.set("layers_priced", stats.layers_priced);
  v.set("layer_cache_hits", stats.layer_cache_hits);
  v.set("disk_hits", stats.disk_hits);
  v.set("disk_misses", stats.disk_misses);
  v.set("disk_rejected", stats.disk_rejected);
  v.set("disk_stores", stats.disk_stores);
  return v;
}

SimEngine::SimEngine(EngineOptions options)
    : pool_(options.num_threads),
      cache_enabled_(options.cache_enabled),
      layer_cache_enabled_(options.layer_cache_enabled),
      disk_(options.disk_cache_dir.empty()
                ? nullptr
                : std::make_unique<DiskCache>(options.disk_cache_dir)) {}

std::size_t SimEngine::batch_grain(std::size_t jobs) const {
  // Aim for ~4 stealable tasks per worker so micro-scale jobs amortize
  // queue overhead while load balancing still has slack.
  const std::size_t lanes = static_cast<std::size_t>(pool_.num_threads()) * 4;
  return std::max<std::size_t>(1, jobs / std::max<std::size_t>(1, lanes));
}

sim::RunResult SimEngine::run_with_layer_cache(
    const backend::CostBackend& be, const dnn::Network& network) {
  const auto& net_layers = network.layers();
  if (!layer_cache_enabled_) {
    layers_priced_.fetch_add(net_layers.size(), std::memory_order_relaxed);
    return be.run(network);
  }

  const std::uint64_t be_print = be.fingerprint();
  std::vector<std::uint64_t> keys(net_layers.size());
  for (std::size_t i = 0; i < net_layers.size(); ++i) {
    keys[i] = be.layer_key(be_print, net_layers[i]);
  }

  // Probe every key under one reader lock (the warm path: many pool
  // threads probe concurrently), then price the misses outside it.
  // Misses sharing a key (ResNet's repeated blocks) price once: later
  // occurrences alias the first. Two threads pricing the same layer
  // concurrently both produce the identical result (price_layer is
  // pure), so the benign double work cannot change any output — the
  // last emplace is a no-op.
  std::vector<sim::LayerResult> layers(net_layers.size());
  std::vector<std::size_t> misses;      // first occurrence per missed key
  std::vector<std::size_t> dupe_of(net_layers.size(), kNotDupe);
  {
    std::unordered_map<std::uint64_t, std::size_t> first_miss;
    std::shared_lock<std::shared_mutex> lock(layer_mu_);
    for (std::size_t i = 0; i < net_layers.size(); ++i) {
      if (auto it = layer_cache_.find(keys[i]); it != layer_cache_.end()) {
        layers[i] = it->second;
        // The fingerprint deliberately ignores names so ResNet's repeated
        // blocks share an entry; restore this layer's own name.
        layers[i].name = net_layers[i].name;
        continue;
      }
      if (auto it = first_miss.find(keys[i]); it != first_miss.end()) {
        dupe_of[i] = it->second;  // duplicate within this network
        continue;
      }
      first_miss.emplace(keys[i], i);
      misses.push_back(i);
    }
  }
  layers_priced_.fetch_add(misses.size(), std::memory_order_relaxed);
  layer_cache_hits_.fetch_add(net_layers.size() - misses.size(),
                              std::memory_order_relaxed);

  for (std::size_t i : misses) {
    layers[i] = be.price_layer(net_layers[i]);
  }
  for (std::size_t i = 0; i < net_layers.size(); ++i) {
    if (dupe_of[i] != kNotDupe) {
      layers[i] = layers[dupe_of[i]];
      layers[i].name = net_layers[i].name;
    }
  }

  if (!misses.empty()) {
    std::unique_lock<std::shared_mutex> lock(layer_mu_);
    for (std::size_t i : misses) {
      layer_cache_.emplace(keys[i], layers[i]);
    }
  }
  return be.assemble(network, std::move(layers));
}

std::vector<sim::RunResult> SimEngine::run_batch(
    const std::vector<Scenario>& batch) {
  std::vector<sim::RunResult> results(batch.size());
  if (batch.empty()) return results;

  // Snapshot each backend key's (factory, generation) once per batch.
  // Cache keys fold the generation into the scenario hash (which
  // already covers the backend id + platform + memory + network), and
  // jobs construct from the snapshotted factory — so a re-registration,
  // even one racing this batch, can neither serve stale results nor
  // cache one registration's numbers under another's stamp. Scenarios
  // the cache serves never construct a backend at all. Unknown backend
  // keys fail loudly here, before any pricing.
  auto& registry = backend::BackendRegistry::instance();
  std::unordered_map<std::string, backend::BackendRegistry::Resolved>
      resolved;
  std::vector<std::uint64_t> generations(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    auto it = resolved.find(batch[i].backend);
    if (it == resolved.end()) {
      it = resolved.emplace(batch[i].backend,
                            registry.resolve(batch[i].backend)).first;
    }
    generations[i] = it->second.generation;
  }

  // Scenario fingerprints are pure per-scenario work — hash them on the
  // pool so the cache feature doesn't serialize the parallel region. The
  // disk cache keys off the raw fingerprint (registry generations are
  // process-local; the disk key instead folds the backend instance's own
  // fingerprint, see below), the memo cache folds the generation in.
  const bool need_prints = cache_enabled_ || disk_ != nullptr;
  std::vector<std::uint64_t> raw_prints(batch.size());
  std::vector<std::uint64_t> prints(batch.size());
  if (need_prints) {
    pool_.parallel_for(
        batch.size(),
        [&](std::size_t i) {
          raw_prints[i] = batch[i].fingerprint();
          prints[i] = common::hash_combine(raw_prints[i], generations[i]);
        },
        batch_grain(batch.size()));
  }

  // Plan: resolve each scenario against the cache, keeping only the first
  // occurrence of each fingerprint as a real job; later occurrences alias
  // the job's slot.
  struct Slot {
    bool cached = false;
    std::size_t job = 0;  // index into `jobs` when !cached
  };
  std::vector<Slot> slots(batch.size());
  std::vector<std::size_t> jobs;  // batch indices that actually price
  std::vector<std::shared_ptr<const sim::RunResult>> hits(batch.size());

  {
    std::unordered_map<std::uint64_t, std::size_t> first_job;
    std::lock_guard<std::mutex> lock(mu_);
    stats_.scenarios_submitted += batch.size();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!cache_enabled_) {
        slots[i].job = jobs.size();
        jobs.push_back(i);
        continue;
      }
      if (auto it = cache_.find(prints[i]); it != cache_.end()) {
        slots[i].cached = true;
        hits[i] = it->second;
        ++stats_.cache_hits;
        continue;
      }
      if (auto it = first_job.find(prints[i]); it != first_job.end()) {
        slots[i].job = it->second;  // duplicate within this batch
        ++stats_.cache_hits;
        continue;
      }
      first_job.emplace(prints[i], jobs.size());
      slots[i].job = jobs.size();
      jobs.push_back(i);
    }
  }

  // Price the unique scenarios in parallel, writing each job's result
  // straight into its primary output slot; the cache's private copy is
  // made inside the same task so no extra serial pass touches the bulky
  // RunResults. Each job constructs and owns its backend instance — no
  // state is shared across tasks, so scheduling order cannot affect the
  // numbers. The disk cache sits below the memo caches: only memo misses
  // probe it, a hit skips pricing entirely (the loaded result is
  // bit-identical by the DiskCache contract), and a miss prices then
  // persists. Disk-served jobs still feed the in-memory scenario cache.
  std::vector<std::shared_ptr<const sim::RunResult>> fresh(
      cache_enabled_ ? jobs.size() : 0);
  std::atomic<std::size_t> disk_served{0};
  pool_.parallel_for(
      jobs.size(),
      [&](std::size_t j) {
        const std::size_t i = jobs[j];
        const Scenario& s = batch[i];
        const auto be = resolved.at(s.backend).factory(s.platform, s.memory);
        BPVEC_CHECK_MSG(be != nullptr,
                        "backend factory returned null for: " + s.backend);
        if (disk_ != nullptr) {
          // Key: scenario fingerprint × this backend instance's own
          // fingerprint — both stable across processes, and the latter
          // covers every pricing knob, so two registrations of one key
          // with different models can never share an entry.
          const std::uint64_t disk_key =
              common::hash_combine(raw_prints[i], be->fingerprint());
          if (auto cached = disk_->load(disk_key, generations[i])) {
            results[i] = *cached;
            disk_served.fetch_add(1, std::memory_order_relaxed);
            // Reuse the loaded copy as the memo cache's shared entry —
            // no second deep copy of the layer vector per warm scenario.
            if (cache_enabled_) fresh[j] = std::move(cached);
            return;
          }
          results[i] = run_with_layer_cache(*be, s.network);
          disk_->store(disk_key, generations[i], results[i]);
        } else {
          results[i] = run_with_layer_cache(*be, s.network);
        }
        if (cache_enabled_) {
          fresh[j] = std::make_shared<const sim::RunResult>(results[i]);
        }
      },
      batch_grain(jobs.size()));

  // Fan cached/duplicate slots out from the shared copies (usually few).
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (slots[i].cached) {
      results[i] = *hits[i];
    } else if (jobs[slots[i].job] != i) {
      results[i] = *fresh[slots[i].job];  // in-batch duplicate
    }
  }

  // Scenario fingerprints are structural (workload::network_fingerprint
  // excludes names), so a cache or disk hit may carry the labels of a
  // structurally identical network priced earlier. Restore each
  // scenario's own network/layer names — for freshly priced scenarios
  // this rewrites the values the backend already set, so every result is
  // bit-identical to a direct run of its own scenario.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const dnn::Network& net = batch[i].network;
    results[i].network = net.name();
    if (results[i].layers.size() == net.layers().size()) {
      for (std::size_t k = 0; k < results[i].layers.size(); ++k) {
        results[i].layers[k].name = net.layers()[k].name;
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    // Accounted after the fact so disk-served jobs don't inflate
    // simulations_run; the mid-batch invariant simulations_run +
    // cache_hits <= scenarios_submitted still holds (counters lag work).
    stats_.simulations_run +=
        jobs.size() - disk_served.load(std::memory_order_relaxed);
    if (cache_enabled_) {
      for (std::size_t j = 0; j < jobs.size(); ++j) {
        cache_.emplace(prints[jobs[j]], std::move(fresh[j]));
      }
    }
  }
  return results;
}

sim::RunResult SimEngine::run(const Scenario& scenario) {
  return run_batch({scenario}).front();
}

std::vector<core::DesignPoint> SimEngine::explore_design_space(
    const std::vector<int>& slice_widths, const std::vector<int>& lanes,
    int max_bits) {
  return explore_design_space(slice_widths, lanes, max_bits, {});
}

std::vector<core::DesignPoint> SimEngine::explore_design_space(
    const std::vector<int>& slice_widths, const std::vector<int>& lanes,
    int max_bits, const std::vector<core::BitwidthMixEntry>& mix) {
  // Rebased onto the DSE subsystem: a GridStrategy over geometry_space
  // enumerates the identical α-outer L-inner grid, and GeometryEvaluator
  // prices each point with the identical core::price_design_point — so
  // the result is bit-identical to core::explore_design_space, just
  // fanned out on the pool.
  if (slice_widths.empty() || lanes.empty()) return {};
  const dse::ParamSpace space =
      dse::geometry_space(slice_widths, lanes, max_bits);
  dse::GridStrategy strategy(space);
  dse::GeometryEvaluator evaluator(
      *this, space,
      {dse::objective(dse::Metric::kMacPower),
       dse::objective(dse::Metric::kMacArea)},
      mix);
  return dse::design_points(dse::run_search(
      strategy, evaluator,
      {dse::objective(dse::Metric::kMacPower),
       dse::objective(dse::Metric::kMacArea)}));
}

EngineStats SimEngine::stats() const {
  EngineStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = stats_;
  }
  s.layers_priced = layers_priced_.load(std::memory_order_relaxed);
  s.layer_cache_hits = layer_cache_hits_.load(std::memory_order_relaxed);
  if (disk_ != nullptr) {
    const DiskCacheStats d = disk_->stats();
    s.disk_hits = d.hits;
    s.disk_misses = d.misses;
    s.disk_rejected = d.rejected;
    s.disk_stores = d.stores;
  }
  return s;
}

void SimEngine::clear_cache() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.clear();
  }
  std::unique_lock<std::shared_mutex> lock(layer_mu_);
  layer_cache_.clear();
}

}  // namespace bpvec::engine
