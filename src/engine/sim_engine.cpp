#include "src/engine/sim_engine.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <shared_mutex>
#include <string>
#include <utility>

#include "src/backend/backend_registry.h"
#include "src/common/error.h"
#include "src/common/hash.h"
#include "src/dse/search.h"
#include "src/kernels/weight_cache.h"

namespace bpvec::engine {

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

}  // namespace

common::json::Value to_json(const EngineStats& stats) {
  common::json::Value v = common::json::Value::object();
  v.set("scenarios_submitted", stats.scenarios_submitted);
  v.set("simulations_run", stats.simulations_run);
  v.set("cache_hits", stats.cache_hits);
  v.set("layers_priced", stats.layers_priced);
  v.set("layer_cache_hits", stats.layer_cache_hits);
  v.set("delta_scenarios", stats.delta_scenarios);
  v.set("disk_hits", stats.disk_hits);
  v.set("disk_misses", stats.disk_misses);
  v.set("disk_rejected", stats.disk_rejected);
  v.set("disk_stores", stats.disk_stores);
  v.set("disk_store_failures", stats.disk_store_failures);
  v.set("disk_file_opens", stats.disk_file_opens);
  v.set("weight_cache_hits", stats.weight_cache_hits);
  v.set("weight_cache_misses", stats.weight_cache_misses);
  v.set("construct_s", stats.construct_s);
  v.set("hash_s", stats.hash_s);
  v.set("plan_s", stats.plan_s);
  v.set("price_s", stats.price_s);
  v.set("assemble_s", stats.assemble_s);
  return v;
}

EngineStats operator-(const EngineStats& after, const EngineStats& before) {
  EngineStats d;
  d.scenarios_submitted = after.scenarios_submitted - before.scenarios_submitted;
  d.simulations_run = after.simulations_run - before.simulations_run;
  d.cache_hits = after.cache_hits - before.cache_hits;
  d.layers_priced = after.layers_priced - before.layers_priced;
  d.layer_cache_hits = after.layer_cache_hits - before.layer_cache_hits;
  d.delta_scenarios = after.delta_scenarios - before.delta_scenarios;
  d.disk_hits = after.disk_hits - before.disk_hits;
  d.disk_misses = after.disk_misses - before.disk_misses;
  d.disk_rejected = after.disk_rejected - before.disk_rejected;
  d.disk_stores = after.disk_stores - before.disk_stores;
  d.disk_store_failures = after.disk_store_failures - before.disk_store_failures;
  d.disk_file_opens = after.disk_file_opens - before.disk_file_opens;
  d.weight_cache_hits = after.weight_cache_hits - before.weight_cache_hits;
  d.weight_cache_misses = after.weight_cache_misses - before.weight_cache_misses;
  d.construct_s = after.construct_s - before.construct_s;
  d.hash_s = after.hash_s - before.hash_s;
  d.plan_s = after.plan_s - before.plan_s;
  d.price_s = after.price_s - before.price_s;
  d.assemble_s = after.assemble_s - before.assemble_s;
  return d;
}

SimEngine::SimEngine(EngineOptions options)
    : pool_(options.num_threads),
      cache_enabled_(options.cache_enabled),
      layer_cache_enabled_(options.layer_cache_enabled),
      grain_(options.grain),
      disk_(options.disk_cache_dir.empty()
                ? nullptr
                : std::make_unique<DiskCache>(options.disk_cache_dir)) {}

std::size_t SimEngine::batch_grain(std::size_t jobs) const {
  if (grain_ > 0) return grain_;
  // Auto: aim for ~4 stealable tasks per worker so micro-scale jobs
  // amortize queue overhead while load balancing still has slack (the
  // winning setting in bench/warm_path.cpp's grain micro-measurement).
  const std::size_t lanes = static_cast<std::size_t>(pool_.num_threads()) * 4;
  return std::max<std::size_t>(1, jobs / std::max<std::size_t>(1, lanes));
}

void SimEngine::for_each(std::size_t n,
                         const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    // run() and tiny batches skip the pool entirely: no task allocation,
    // no queue round-trip, no wake. Identical semantics (parallel_for
    // runs caller-side too and rethrows the same exceptions).
    fn(0);
    return;
  }
  pool_.parallel_for(n, fn, batch_grain(n));
}

void SimEngine::record_construct_seconds(double seconds) {
  std::lock_guard<std::mutex> lock(timer_mu_);
  timers_.construct_s += seconds;
}

std::vector<sim::RunResult> SimEngine::run_batch(
    const std::vector<Scenario>& batch) {
  std::vector<sim::RunResult> results(batch.size());
  if (batch.empty()) return results;

  // Snapshot each backend key's (factory, generation) once per batch.
  // Cache keys fold the generation into the scenario hash (which
  // already covers the backend id + platform + memory + network), and
  // jobs construct from the snapshotted factory — so a re-registration,
  // even one racing this batch, can neither serve stale results nor
  // cache one registration's numbers under another's stamp. Scenarios
  // the cache serves never construct a backend at all. Unknown backend
  // keys fail loudly here, before any pricing.
  auto t_phase = SteadyClock::now();
  auto& registry = backend::BackendRegistry::instance();
  std::unordered_map<std::string, backend::BackendRegistry::Resolved>
      resolved;
  std::vector<std::uint64_t> generations(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    auto it = resolved.find(batch[i].backend);
    if (it == resolved.end()) {
      it = resolved.emplace(batch[i].backend,
                            registry.resolve(batch[i].backend)).first;
    }
    generations[i] = it->second.generation;
  }
  double plan_s = seconds_since(t_phase);

  // Scenario fingerprints are pure per-scenario work — hash them on the
  // pool so the cache feature doesn't serialize the parallel region. The
  // disk cache keys off the raw fingerprint (registry generations are
  // process-local; the disk key instead folds the backend instance's own
  // fingerprint, see below), the memo cache folds the generation in.
  // Networks memoize their structural fingerprint, so a batch of
  // candidates copied off one base scenario hashes the workload once.
  t_phase = SteadyClock::now();
  const bool need_prints = cache_enabled_ || disk_ != nullptr;
  std::vector<std::uint64_t> raw_prints(batch.size());
  std::vector<std::uint64_t> prints(batch.size());
  if (need_prints) {
    for_each(batch.size(), [&](std::size_t i) {
      raw_prints[i] = batch[i].fingerprint();
      prints[i] = common::hash_combine(raw_prints[i], generations[i]);
    });
  }
  const double hash_s = seconds_since(t_phase);

  // Plan: resolve each scenario against the cache, keeping only the first
  // occurrence of each fingerprint as a real job; later occurrences alias
  // the job's slot.
  struct Slot {
    bool cached = false;
    std::size_t job = 0;  // index into `jobs` when !cached
  };
  std::vector<Slot> slots(batch.size());
  std::vector<std::size_t> jobs;  // batch indices that actually price
  std::vector<std::shared_ptr<const sim::RunResult>> hits(batch.size());

  t_phase = SteadyClock::now();
  if (!cache_enabled_) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      slots[i].job = jobs.size();
      jobs.push_back(i);
    }
    // No fingerprints to stripe on — all counter ticks land on shard 0
    // (cache_shards.h counter contract).
    auto& sh = scenario_cache_.shard(0);
    std::lock_guard<std::mutex> lock(sh.mu);
    sh.counters.scenarios_submitted += batch.size();
  } else {
    // Probe shard by shard: bucket the batch by fingerprint shard and
    // take each touched shard's lock exactly once, counting submissions
    // and hits under it (submitted before hits — the per-shard counter
    // invariant). Concurrent batches touching disjoint shards never
    // contend.
    std::array<std::vector<std::size_t>, kCacheShards> by_shard;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      by_shard[cache_shard_of(prints[i])].push_back(i);
    }
    std::vector<char> found(batch.size(), 0);
    for (std::size_t s = 0; s < kCacheShards; ++s) {
      if (by_shard[s].empty()) continue;
      auto& sh = scenario_cache_.shard(s);
      std::lock_guard<std::mutex> lock(sh.mu);
      sh.counters.scenarios_submitted += by_shard[s].size();
      for (const std::size_t i : by_shard[s]) {
        if (auto it = sh.map.find(prints[i]); it != sh.map.end()) {
          hits[i] = it->second;
          found[i] = 1;
          ++sh.counters.cache_hits;
        }
      }
    }
    // Serial in-input-order dedup of the misses; an in-batch duplicate
    // is a cache hit on its fingerprint's shard (applied in one more
    // locking round below so the dedup itself stays lock-free).
    std::array<std::size_t, kCacheShards> dup_hits{};
    std::unordered_map<std::uint64_t, std::size_t> first_job;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (found[i]) {
        slots[i].cached = true;
        continue;
      }
      if (auto it = first_job.find(prints[i]); it != first_job.end()) {
        slots[i].job = it->second;  // duplicate within this batch
        ++dup_hits[cache_shard_of(prints[i])];
        continue;
      }
      first_job.emplace(prints[i], jobs.size());
      slots[i].job = jobs.size();
      jobs.push_back(i);
    }
    for (std::size_t s = 0; s < kCacheShards; ++s) {
      if (dup_hits[s] == 0) continue;
      auto& sh = scenario_cache_.shard(s);
      std::lock_guard<std::mutex> lock(sh.mu);
      sh.counters.cache_hits += dup_hits[s];
    }
  }
  plan_s += seconds_since(t_phase);

  // Delta-pricing pipeline over the unique jobs, in four phases. Each
  // job constructs and owns its backend instance; cached layer results
  // are exact copies and assemble() is a pure fold, so every result is
  // bit-identical to a direct be.run(network) for any cache state, any
  // thread count, and any batch composition. The disk cache sits below
  // the memo caches: only memo misses probe it, a hit skips pricing
  // entirely (the loaded result is bit-identical by the DiskCache
  // contract), and a miss prices then persists.
  struct JobState {
    std::unique_ptr<backend::CostBackend> be;
    bool disk_served = false;
    bool delta = false;  // assembled with at least one cached layer
    std::uint64_t disk_key = 0;
    std::vector<std::uint64_t> keys;       // per-layer cache keys
    std::vector<sim::LayerResult> layers;  // assembled per-layer results
    /// (layer index, unique-miss index) pairs still needing a price.
    std::vector<std::pair<std::size_t, std::size_t>> need;
  };
  std::vector<JobState> state(jobs.size());
  std::vector<std::shared_ptr<const sim::RunResult>> fresh(
      cache_enabled_ ? jobs.size() : 0);
  std::atomic<std::size_t> probe_hits{0};

  // Phase 1 — per job: construct the backend, probe the disk cache, and
  // probe the layer cache for every layer key (one reader lock per job;
  // pool threads probe concurrently).
  t_phase = SteadyClock::now();
  for_each(jobs.size(), [&](std::size_t j) {
    const std::size_t i = jobs[j];
    const Scenario& s = batch[i];
    JobState& js = state[j];
    js.be = resolved.at(s.backend).factory(s.platform, s.memory);
    BPVEC_CHECK_MSG(js.be != nullptr,
                    "backend factory returned null for: " + s.backend);
    if (disk_ != nullptr) {
      // Key: scenario fingerprint × this backend instance's own
      // fingerprint — both stable across processes, and the latter
      // covers every pricing knob, so two registrations of one key
      // with different models can never share an entry.
      js.disk_key = common::hash_combine(raw_prints[i], js.be->fingerprint());
      if (auto cached = disk_->load(js.disk_key, generations[i])) {
        results[i] = *cached;
        js.disk_served = true;
        // Reuse the loaded copy as the memo cache's shared entry —
        // no second deep copy of the layer vector per warm scenario.
        if (cache_enabled_) fresh[j] = std::move(cached);
        return;
      }
    }
    if (!layer_cache_enabled_) return;  // phase 4 prices via be->run
    const auto& net_layers = s.network.layers();
    const std::uint64_t be_print = js.be->fingerprint();
    js.keys.resize(net_layers.size());
    js.layers.resize(net_layers.size());
    for (std::size_t k = 0; k < net_layers.size(); ++k) {
      js.keys[k] = js.be->layer_key(be_print, net_layers[k]);
    }
    for (std::size_t k = 0; k < net_layers.size(); ++k) {
      // One reader lock per key, on the key's own shard — concurrent
      // jobs probing different shards never serialize.
      auto& sh = layer_cache_.shard_for(js.keys[k]);
      std::shared_lock<std::shared_mutex> lock(sh.mu);
      if (auto it = sh.map.find(js.keys[k]); it != sh.map.end()) {
        js.layers[k] = it->second;
        // The fingerprint deliberately ignores names so ResNet's
        // repeated blocks share an entry; restore this layer's own.
        js.layers[k].name = net_layers[k].name;
        continue;
      }
      js.need.emplace_back(k, 0);
    }
    probe_hits.fetch_add(net_layers.size() - js.need.size(),
                         std::memory_order_relaxed);
  });
  double price_s = seconds_since(t_phase);

  // Phase 2 — serial dedup: collect the unique missing layer keys across
  // the whole batch. A key shared by several jobs (a net_depth sweep's
  // common prefix, repeated blocks across candidates) prices exactly
  // once — this is what makes a warm neighbor a *delta*: only the layers
  // its changed axis actually touched are re-priced.
  t_phase = SteadyClock::now();
  struct MissRef {
    std::size_t job;
    std::size_t layer;
  };
  std::vector<MissRef> unique;
  std::vector<std::uint64_t> unique_keys;
  std::size_t aliased = 0;
  if (layer_cache_enabled_) {
    std::unordered_map<std::uint64_t, std::size_t> owner;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      JobState& js = state[j];
      if (js.disk_served) continue;
      std::size_t owned = 0;
      for (auto& [layer, miss] : js.need) {
        const std::uint64_t key = js.keys[layer];
        auto it = owner.find(key);
        if (it == owner.end()) {
          it = owner.emplace(key, unique.size()).first;
          unique.push_back({j, layer});
          unique_keys.push_back(key);
          ++owned;
        } else {
          ++aliased;
        }
        miss = it->second;
      }
      // Fewer layers priced here than the network has = a delta
      // assembly (the rest came from the cache or a batch sibling).
      js.delta = owned < js.keys.size();
    }
  }
  plan_s += seconds_since(t_phase);

  // Phase 3 — price the unique misses in parallel at *layer*
  // granularity (balances uneven networks better than per-scenario
  // fan-out), then publish them to the layer cache under one writer
  // lock per batch. Which backend instance prices a shared key is
  // irrelevant: equal keys mean equal backend and layer fingerprints,
  // and fingerprints cover every pricing knob.
  t_phase = SteadyClock::now();
  std::vector<sim::LayerResult> priced(unique.size());
  if (!unique.empty()) {
    for_each(unique.size(), [&](std::size_t u) {
      const MissRef ref = unique[u];
      const Scenario& s = batch[jobs[ref.job]];
      priced[u] =
          state[ref.job].be->price_layer(s.network.layers()[ref.layer]);
    });
    layers_priced_.fetch_add(unique.size(), std::memory_order_relaxed);
    // Publish shard by shard: bucket the fresh keys and take each
    // touched shard's writer lock exactly once per batch.
    std::array<std::vector<std::size_t>, kCacheShards> publish;
    for (std::size_t u = 0; u < unique.size(); ++u) {
      publish[cache_shard_of(unique_keys[u])].push_back(u);
    }
    for (std::size_t s = 0; s < kCacheShards; ++s) {
      if (publish[s].empty()) continue;
      auto& sh = layer_cache_.shard(s);
      std::unique_lock<std::shared_mutex> lock(sh.mu);
      for (const std::size_t u : publish[s]) {
        sh.map.emplace(unique_keys[u], priced[u]);
      }
    }
  }
  layer_cache_hits_.fetch_add(
      probe_hits.load(std::memory_order_relaxed) + aliased,
      std::memory_order_relaxed);
  price_s += seconds_since(t_phase);

  // Phase 4 — assemble each job from its cached + freshly priced layers
  // (or fully price it when the layer cache is disabled) and make the
  // scenario cache's shared copy. Fresh results are persisted in one
  // store_batch afterwards: the whole batch seals a single new shard
  // file instead of writing one file per scenario.
  t_phase = SteadyClock::now();
  for_each(jobs.size(), [&](std::size_t j) {
    const std::size_t i = jobs[j];
    const Scenario& s = batch[i];
    JobState& js = state[j];
    if (js.disk_served) return;
    if (!layer_cache_enabled_) {
      layers_priced_.fetch_add(s.network.layers().size(),
                               std::memory_order_relaxed);
      results[i] = js.be->run(s.network);
    } else {
      const auto& net_layers = s.network.layers();
      for (const auto& [layer, miss] : js.need) {
        js.layers[layer] = priced[miss];
        js.layers[layer].name = net_layers[layer].name;
      }
      results[i] = js.be->assemble(s.network, std::move(js.layers));
    }
    if (cache_enabled_) {
      fresh[j] = std::make_shared<const sim::RunResult>(results[i]);
    }
  });
  if (disk_ != nullptr) {
    std::vector<DiskCache::PendingStore> pending;
    pending.reserve(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      if (state[j].disk_served) continue;
      // `results` is sized once up front, so the pointers stay stable
      // for the duration of the call.
      pending.push_back(DiskCache::PendingStore{
          state[j].disk_key, generations[jobs[j]], &results[jobs[j]]});
    }
    if (!pending.empty()) disk_->store_batch(pending);
  }

  // Fan cached/duplicate slots out from the shared copies (usually few).
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (slots[i].cached) {
      results[i] = *hits[i];
    } else if (jobs[slots[i].job] != i) {
      results[i] = *fresh[slots[i].job];  // in-batch duplicate
    }
  }

  // Scenario fingerprints are structural (workload::network_fingerprint
  // excludes names), so a cache or disk hit may carry the labels of a
  // structurally identical network priced earlier. Restore each
  // scenario's own network/layer names — for freshly priced scenarios
  // this rewrites the values the backend already set, so every result is
  // bit-identical to a direct run of its own scenario.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const dnn::Network& net = batch[i].network;
    results[i].network = net.name();
    if (results[i].layers.size() == net.layers().size()) {
      for (std::size_t k = 0; k < results[i].layers.size(); ++k) {
        results[i].layers[k].name = net.layers()[k].name;
      }
    }
  }
  const double assemble_s = seconds_since(t_phase);

  {
    // Accounted after the fact so disk-served jobs don't inflate
    // simulations_run; the mid-batch invariant simulations_run +
    // cache_hits <= scenarios_submitted still holds per shard (counters
    // lag work, and each job ticks the shard its fingerprint was
    // submitted on — shard 0 when the cache is disabled).
    std::array<std::vector<std::size_t>, kCacheShards> by_shard;
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      const std::size_t s =
          cache_enabled_ ? cache_shard_of(prints[jobs[j]]) : 0;
      by_shard[s].push_back(j);
    }
    for (std::size_t s = 0; s < kCacheShards; ++s) {
      if (by_shard[s].empty()) continue;
      auto& sh = scenario_cache_.shard(s);
      std::lock_guard<std::mutex> lock(sh.mu);
      for (const std::size_t j : by_shard[s]) {
        if (!state[j].disk_served) ++sh.counters.simulations_run;
        if (state[j].delta) ++sh.counters.delta_scenarios;
        if (cache_enabled_) {
          sh.map.emplace(prints[jobs[j]], std::move(fresh[j]));
        }
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    timers_.hash_s += hash_s;
    timers_.plan_s += plan_s;
    // With the layer cache off, phase 4 is full pricing, not reassembly
    // — attribute its wall time accordingly.
    if (layer_cache_enabled_) {
      timers_.price_s += price_s;
      timers_.assemble_s += assemble_s;
    } else {
      timers_.price_s += price_s + assemble_s;
    }
  }
  return results;
}

sim::RunResult SimEngine::run(const Scenario& scenario) {
  return run_batch({scenario}).front();
}

std::vector<core::DesignPoint> SimEngine::explore_design_space(
    const std::vector<int>& slice_widths, const std::vector<int>& lanes,
    int max_bits) {
  return explore_design_space(slice_widths, lanes, max_bits, {});
}

std::vector<core::DesignPoint> SimEngine::explore_design_space(
    const std::vector<int>& slice_widths, const std::vector<int>& lanes,
    int max_bits, const std::vector<core::BitwidthMixEntry>& mix) {
  // Rebased onto the DSE subsystem: a GridStrategy over geometry_space
  // enumerates the identical α-outer L-inner grid, and GeometryEvaluator
  // prices each point with the identical core::price_design_point — so
  // the result is bit-identical to core::explore_design_space, just
  // fanned out on the pool.
  if (slice_widths.empty() || lanes.empty()) return {};
  const dse::ParamSpace space =
      dse::geometry_space(slice_widths, lanes, max_bits);
  dse::GridStrategy strategy(space);
  dse::GeometryEvaluator evaluator(
      *this, space,
      {dse::objective(dse::Metric::kMacPower),
       dse::objective(dse::Metric::kMacArea)},
      mix);
  return dse::design_points(dse::run_search(
      strategy, evaluator,
      {dse::objective(dse::Metric::kMacPower),
       dse::objective(dse::Metric::kMacArea)}));
}

EngineStats SimEngine::stats() const {
  EngineStats s;
  // Disk counters read BEFORE the scenario tallies: a scenario's submit
  // tick precedes its disk probe, so any disk hit in this snapshot has
  // its submit included in the (later-read) shard totals — keeping the
  // mid-flight invariant scenarios_submitted >= cache_hits +
  // simulations_run + disk_hits. The reverse order could catch a probe
  // whose submit the totals missed.
  if (disk_ != nullptr) {
    const DiskCacheStats d = disk_->stats();
    s.disk_hits = d.hits;
    s.disk_misses = d.misses;
    s.disk_rejected = d.rejected;
    s.disk_stores = d.stores;
    s.disk_store_failures = d.store_failures;
    s.disk_file_opens = d.file_opens;
  }
  const ScenarioShardCounters t = scenario_cache_.totals();
  s.scenarios_submitted = t.scenarios_submitted;
  s.simulations_run = t.simulations_run;
  s.cache_hits = t.cache_hits;
  s.delta_scenarios = t.delta_scenarios;
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    s.construct_s = timers_.construct_s;
    s.hash_s = timers_.hash_s;
    s.plan_s = timers_.plan_s;
    s.price_s = timers_.price_s;
    s.assemble_s = timers_.assemble_s;
  }
  s.layers_priced = layers_priced_.load(std::memory_order_relaxed);
  s.layer_cache_hits = layer_cache_hits_.load(std::memory_order_relaxed);
  s.weight_cache_hits = kernels::WeightPlaneCache::instance().hits();
  s.weight_cache_misses = kernels::WeightPlaneCache::instance().misses();
  return s;
}

std::array<ScenarioShardCounters, kCacheShards>
SimEngine::scenario_shard_counters() const {
  return scenario_cache_.per_shard();
}

void SimEngine::clear_cache() {
  scenario_cache_.clear();
  layer_cache_.clear();
}

}  // namespace bpvec::engine
