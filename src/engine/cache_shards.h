// Lock-striped shard containers for SimEngine's in-memory memo caches.
//
// PR 8's serving layer put one warm engine behind concurrent sessions,
// which turned the engine's two global locks (one mutex in front of the
// scenario cache, one shared_mutex in front of the layer cache) into the
// warm path's only serialization point: every probe from every pool
// thread of every concurrent run_batch funneled through them. Striping
// splits each cache into kCacheShards independent shards addressed by
// fingerprint bits, so probes of different shards never touch the same
// lock.
//
// Counter contract: the scenario counters move into the shards too —
// every counter tick for a scenario lands on the shard its fingerprint
// addresses (shard 0 when the cache is disabled and no fingerprints are
// computed), and scenarios_submitted is incremented under the same shard
// lock before any hit/simulation tick for those scenarios. Each shard
// therefore independently satisfies
//
//   scenarios_submitted >= cache_hits + simulations_run
//
// at every instant, and because any single scenario's ticks all live on
// one shard, the inequality also holds for any sum of per-shard
// snapshots — stats() reads shards one lock at a time and still reports
// a sum that obeys the engine invariant (simulations_run + cache_hits +
// disk_hits == scenarios_submitted once all batches have returned).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "src/sim/simulator.h"

namespace bpvec::engine {

/// Shard count for both striped caches. A power of two (shard selection
/// is a mask); 16 keeps the footprint trivial while giving 4× headroom
/// over the largest pools we run in CI.
inline constexpr std::size_t kCacheShards = 16;
static_assert((kCacheShards & (kCacheShards - 1)) == 0,
              "shard selection masks fingerprint bits");

constexpr std::size_t cache_shard_of(std::uint64_t fingerprint) {
  return static_cast<std::size_t>(fingerprint) & (kCacheShards - 1);
}

/// Scenario-cache counters, tallied per shard and summed by
/// SimEngine::stats(). Invariant per shard (and any sum of shards):
/// scenarios_submitted >= cache_hits + simulations_run.
struct ScenarioShardCounters {
  std::size_t scenarios_submitted = 0;
  std::size_t cache_hits = 0;
  std::size_t simulations_run = 0;
  std::size_t delta_scenarios = 0;
};

/// The striped scenario cache: fingerprint → shared RunResult, plus the
/// per-shard counter tallies. Callers lock shard(i).mu themselves (the
/// engine batches a whole run_batch's probes per shard under one
/// acquisition).
class ScenarioCacheShards {
 public:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t,
                       std::shared_ptr<const sim::RunResult>>
        map;
    ScenarioShardCounters counters;
  };

  Shard& shard(std::size_t idx) { return shards_[idx]; }
  const Shard& shard(std::size_t idx) const { return shards_[idx]; }

  /// Per-shard counter snapshot (each shard read under its own lock).
  std::array<ScenarioShardCounters, kCacheShards> per_shard() const;

  /// Sum of per_shard() — the engine-level scenario counters.
  ScenarioShardCounters totals() const;

  /// Drops every shard's entries; counters are preserved (they describe
  /// work done, not cache contents).
  void clear();

 private:
  std::array<Shard, kCacheShards> shards_;
};

/// The striped layer cache: layer key → LayerResult by value (the hot
/// path is copy-on-hit under a reader lock). Hit/priced counters stay
/// relaxed atomics on the engine — they never participated in the
/// consistent-snapshot contract.
class LayerCacheShards {
 public:
  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<std::uint64_t, sim::LayerResult> map;
  };

  Shard& shard_for(std::uint64_t key) {
    return shards_[cache_shard_of(key)];
  }
  Shard& shard(std::size_t idx) { return shards_[idx]; }

  void clear();

 private:
  std::array<Shard, kCacheShards> shards_;
};

}  // namespace bpvec::engine
