#include "src/engine/cache_shards.h"

namespace bpvec::engine {

std::array<ScenarioShardCounters, kCacheShards>
ScenarioCacheShards::per_shard() const {
  std::array<ScenarioShardCounters, kCacheShards> out;
  for (std::size_t s = 0; s < kCacheShards; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    out[s] = shards_[s].counters;
  }
  return out;
}

ScenarioShardCounters ScenarioCacheShards::totals() const {
  ScenarioShardCounters t;
  for (const ScenarioShardCounters& c : per_shard()) {
    t.scenarios_submitted += c.scenarios_submitted;
    t.cache_hits += c.cache_hits;
    t.simulations_run += c.simulations_run;
    t.delta_scenarios += c.delta_scenarios;
  }
  return t;
}

void ScenarioCacheShards::clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.map.clear();
  }
}

void LayerCacheShards::clear() {
  for (Shard& s : shards_) {
    std::unique_lock<std::shared_mutex> lock(s.mu);
    s.map.clear();
  }
}

}  // namespace bpvec::engine
