// A Scenario is one cell of the paper's evaluation matrices: a platform
// (Table II accelerator config), a memory system, and a network at a
// bitwidth mode. SimEngine::run_batch prices many of them in parallel.
//
// Scenarios are plain data — fully resolved configs rather than enum
// handles — so sweeps can perturb any knob (bandwidth, scratchpad size,
// batch size…) and still ride the same batch path. `fingerprint()` hashes
// every field that can influence simulation results; the engine's result
// cache is keyed on it so repeated design points are priced once.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/arch/dram.h"
#include "src/core/accelerator.h"
#include "src/dnn/network.h"
#include "src/sim/config.h"

namespace bpvec::engine {

/// Table II platform selector for the factory helpers.
enum class Platform { kTpuLike, kBitFusion, kBpvec };

const char* to_string(Platform platform);

struct Scenario {
  std::string id;  // label for reports/JSON; defaults to
                   // <backend>:<platform>/<network>/<memory>
  /// BackendRegistry key of the cost model that prices this scenario.
  /// The engine resolves it per run; the fingerprint folds it in so two
  /// different cost models of the same scenario never share a cache
  /// entry.
  std::string backend = "bpvec";
  sim::AcceleratorConfig platform;
  arch::DramModel memory;
  dnn::Network network{"", dnn::NetworkType::kCnn};

  /// 64-bit hash over every simulation-relevant field (backend id,
  /// platform knobs, memory knobs, and the *structural* network
  /// fingerprint — layer shapes and bitwidths; network/layer names are
  /// excluded because they label results without changing pricing, so
  /// structurally identical workloads dedupe across every cache layer).
  /// Two scenarios with equal fingerprints produce bit-identical
  /// RunResults up to those labels, which SimEngine::run_batch restores
  /// per scenario (the engine additionally folds the resolved backend's
  /// own fingerprint into cache keys).
  std::uint64_t fingerprint() const;
};

/// One cell of the Figs. 5–9 grids: a Table II platform × paper memory
/// system × network, priced by the default "bpvec" cycle simulator.
/// `bitwidth_mode` is carried by `net` (model zoo).
Scenario make_scenario(Platform platform, core::Memory memory,
                       dnn::Network net, std::string id = "");

/// Custom-config variant for sweeps.
Scenario make_scenario(sim::AcceleratorConfig config, arch::DramModel memory,
                       dnn::Network net, std::string id = "");

/// Variant priced by an explicit BackendRegistry key (e.g. "bit_serial"
/// for the Stripes-like baseline on the same platform envelope).
Scenario make_scenario(std::string backend, Platform platform,
                       core::Memory memory, dnn::Network net,
                       std::string id = "");

/// Custom-config variant with an explicit backend key.
Scenario make_scenario(std::string backend, sim::AcceleratorConfig config,
                       arch::DramModel memory, dnn::Network net,
                       std::string id = "");

/// Fig. 9 GPU-baseline cell: priced by the "gpu" roofline backend (the
/// platform/memory fields are placeholders the backend ignores).
Scenario make_gpu_scenario(dnn::Network net, std::string id = "");

}  // namespace bpvec::engine
