#include "src/dse/pareto.h"

#include <algorithm>
#include <utility>

#include "src/common/error.h"
#include "src/common/token.h"

namespace bpvec::dse {

namespace {

struct MetricInfo {
  Metric metric;
  const char* token;
  bool maximize;
};

const MetricInfo kMetrics[] = {
    {Metric::kCycles, "cycles", false},
    {Metric::kEnergy, "energy", false},
    {Metric::kRuntime, "runtime", false},
    {Metric::kPower, "power", false},
    {Metric::kCoreArea, "core_area", false},
    {Metric::kMacPower, "mac_power", false},
    {Metric::kMacArea, "mac_area", false},
    {Metric::kUtilization, "utilization", true},
    {Metric::kGopsPerW, "gops_per_w", true},
    {Metric::kGopsPerS, "gops_per_s", true},
};

const MetricInfo& info(Metric metric) {
  for (const MetricInfo& m : kMetrics) {
    if (m.metric == metric) return m;
  }
  throw Error("unknown metric enum value");
}

}  // namespace

const char* to_string(Metric metric) { return info(metric).token; }

std::optional<Metric> metric_from_token(const std::string& token) {
  const std::string norm = common::normalize_token(token);
  for (const MetricInfo& m : kMetrics) {
    if (common::normalize_token(m.token) == norm) return m.metric;
  }
  return std::nullopt;
}

const std::vector<std::string>& metric_tokens() {
  static const std::vector<std::string> tokens = [] {
    std::vector<std::string> t;
    for (const MetricInfo& m : kMetrics) t.emplace_back(m.token);
    return t;
  }();
  return tokens;
}

bool default_maximize(Metric metric) { return info(metric).maximize; }

Objective objective(Metric metric) {
  return Objective{metric, default_maximize(metric)};
}

bool dominates(const std::vector<double>& a, const std::vector<double>& b,
               const std::vector<Objective>& objectives) {
  BPVEC_CHECK(a.size() == objectives.size() && b.size() == objectives.size());
  bool strictly_better = false;
  for (std::size_t i = 0; i < objectives.size(); ++i) {
    // Normalize to "smaller is better".
    const double av = objectives[i].maximize ? -a[i] : a[i];
    const double bv = objectives[i].maximize ? -b[i] : b[i];
    if (av > bv) return false;
    if (av < bv) strictly_better = true;
  }
  return strictly_better;
}

ParetoFrontier::ParetoFrontier(std::vector<Objective> objectives)
    : objectives_(std::move(objectives)) {
  BPVEC_CHECK_MSG(!objectives_.empty(),
                  "ParetoFrontier needs at least one objective");
}

ParetoFrontier::Insert ParetoFrontier::insert(const Evaluation& e) {
  if (!e.feasible) return Insert::kInfeasible;
  BPVEC_CHECK_MSG(e.objectives.size() == objectives_.size(),
                  "evaluation objective arity mismatch");
  if (!seen_keys_.insert(e.key).second) return Insert::kDuplicate;
  for (const Evaluation& kept : entries_) {
    if (dominates(kept.objectives, e.objectives, objectives_)) {
      return Insert::kDominated;
    }
  }
  // Evict everything the newcomer dominates.
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const Evaluation& kept) {
                                  return dominates(e.objectives,
                                                   kept.objectives,
                                                   objectives_);
                                }),
                 entries_.end());
  entries_.push_back(e);
  return Insert::kJoined;
}

std::vector<Evaluation> ParetoFrontier::sorted() const {
  std::vector<Evaluation> out = entries_;
  std::sort(out.begin(), out.end(),
            [&](const Evaluation& a, const Evaluation& b) {
              for (std::size_t i = 0; i < objectives_.size(); ++i) {
                const double av =
                    objectives_[i].maximize ? -a.objectives[i]
                                            : a.objectives[i];
                const double bv =
                    objectives_[i].maximize ? -b.objectives[i]
                                            : b.objectives[i];
                if (av != bv) return av < bv;
              }
              return a.key < b.key;
            });
  return out;
}

}  // namespace bpvec::dse
