// The search driver: strategy → evaluator → Pareto frontier.
//
// run_search loops { propose → evaluate → frontier.insert → observe }
// until the strategy is exhausted or the evaluation budget is spent.
// Two evaluators cover the two pricing paths:
//
//   GeometryEvaluator  the Fig. 4 path — core::price_design_point fanned
//                      out on the engine's thread pool. Pure per-MAC
//                      cost-model pricing; bit-identical to
//                      core::explore_design_space over the same grid
//                      (SimEngine::explore_design_space is exactly this
//                      evaluator under a GridStrategy).
//   ScenarioEvaluator  the full path — candidates materialize into
//                      engine::Scenarios and ride SimEngine::run_batch,
//                      so the scenario memo cache, layer cache, and
//                      persistent disk cache all apply. Repeat-heavy
//                      strategies (random, hill_climb) re-propose
//                      candidates freely: the engine prices each unique
//                      scenario once (EngineStats::simulations_run stays
//                      below the candidate count) and warm disk-cached
//                      searches price nothing at all.
//
// Determinism: strategies are deterministic (see strategy.h), evaluators
// are pure, and the frontier's canonical order is insertion-independent
// — a search outcome is a pure function of (space, strategy, seed,
// budget, objectives, constraints), at any thread count or cache state.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/dse/param_space.h"
#include "src/dse/pareto.h"
#include "src/dse/strategy.h"
#include "src/engine/sim_engine.h"

namespace bpvec::dse {

/// Feasibility constraints. Violating evaluations are still recorded in
/// the outcome (flagged infeasible) but never enter the frontier.
struct Constraints {
  std::optional<double> min_utilization;  // design.mix_utilization floor
  std::optional<double> max_power_w;      // RunResult::average_power_w cap
  std::optional<double> max_energy_j;
  std::optional<double> max_runtime_s;
  std::optional<std::int64_t> max_cycles;

  bool any() const;
};

class Evaluator {
 public:
  virtual ~Evaluator() = default;
  /// Prices a batch: one Evaluation per candidate, same order.
  virtual std::vector<Evaluation> evaluate(
      const std::vector<Candidate>& batch) = 0;
};

/// Fig. 4 cost-model pricing (per-MAC power/area + mix utilization).
/// Supports only the kMacPower / kMacArea / kUtilization metrics.
class GeometryEvaluator final : public Evaluator {
 public:
  /// `mix` may be empty: utilization is then left at its 1.0 default
  /// (exactly core::price_design_point's single-argument behavior).
  GeometryEvaluator(engine::SimEngine& engine, const ParamSpace& space,
                    std::vector<Objective> objectives,
                    std::vector<core::BitwidthMixEntry> mix = {});

  std::vector<Evaluation> evaluate(
      const std::vector<Candidate>& batch) override;

 private:
  engine::SimEngine& engine_;
  const ParamSpace& space_;
  std::vector<Objective> objectives_;
  std::vector<core::BitwidthMixEntry> mix_;
};

/// Full-pipeline pricing through SimEngine::run_batch. Supports every
/// metric.
class ScenarioEvaluator final : public Evaluator {
 public:
  /// `mix` drives the kUtilization metric and the min_utilization
  /// constraint. Empty derives it from the base network: one entry per
  /// compute layer, weighted by the layer's MAC count (so utilization
  /// means "MAC-weighted average NBVE utilization over the workload").
  /// `generator` is the workload family the space's
  /// net_depth/net_width/net_bits axes vary (required iff the space has
  /// such an axis); candidates regenerate the network through it.
  ScenarioEvaluator(engine::SimEngine& engine, const ParamSpace& space,
                    engine::Scenario base, std::vector<Objective> objectives,
                    std::vector<core::BitwidthMixEntry> mix = {},
                    Constraints constraints = {},
                    std::optional<workload::GeneratorSpec> generator = {});

  std::vector<Evaluation> evaluate(
      const std::vector<Candidate>& batch) override;

  /// The base mix (explicit, or derived from the base network). When a
  /// derived mix meets workload axes, evaluate() re-derives it per
  /// candidate from the regenerated network instead.
  const std::vector<core::BitwidthMixEntry>& mix() const { return mix_; }

 private:
  static std::vector<core::BitwidthMixEntry> derive_mix(
      const dnn::Network& network);

  engine::SimEngine& engine_;
  const ParamSpace& space_;
  engine::Scenario base_;
  std::vector<Objective> objectives_;
  std::vector<core::BitwidthMixEntry> mix_;
  bool mix_from_network_;
  Constraints constraints_;
  std::optional<workload::GeneratorSpec> generator_;
  /// Reused per-batch Scenario buffers (materialize_into keeps the
  /// previous candidate's heap capacities alive between batches).
  std::vector<engine::Scenario> scratch_;
};

struct SearchOptions {
  /// Max candidate evaluations; 0 = unlimited (the strategy decides).
  std::size_t budget = 0;
  /// Candidates per propose/evaluate round; 0 = 256 (one big parallel
  /// batch for grid/random; hill_climb rounds are naturally smaller).
  std::size_t batch_size = 0;
  /// Cooperative cancellation hook: checked before every
  /// propose/evaluate round. Returning true stops the search early; the
  /// outcome carries whatever was evaluated up to that point. Unset (the
  /// default) never stops, so existing searches are byte-identical. This
  /// is how a serving Session cancels an in-flight SearchRequest between
  /// engine batches without poisoning the shared engine's caches —
  /// everything already evaluated was priced normally and stays valid.
  std::function<bool()> should_stop;
};

struct SearchOutcome {
  std::vector<Objective> objectives;
  /// Every evaluation, in strategy proposal order.
  std::vector<Evaluation> evaluations;
  ParetoFrontier frontier;
  std::size_t candidates = 0;         // == evaluations.size()
  std::size_t unique_candidates = 0;  // distinct candidate keys
  std::size_t infeasible = 0;         // constraint-violating evaluations
};

SearchOutcome run_search(SearchStrategy& strategy, Evaluator& evaluator,
                         std::vector<Objective> objectives,
                         const SearchOptions& options = {});

/// Projects an outcome onto the legacy explore_design_space shape:
/// one core::DesignPoint per evaluation, proposal order.
std::vector<core::DesignPoint> design_points(const SearchOutcome& outcome);

}  // namespace bpvec::dse
