// Pluggable search strategies over a ParamSpace.
//
// A strategy is a proposal engine: the search driver repeatedly asks it
// for the next batch of candidates (propose), prices them, and hands the
// evaluations back (observe). All three built-ins are deterministic —
// random choices flow through Rng::fork keyed on stable indices, never
// on thread identity or wall clock — so a search is a pure function of
// (space, strategy, seed, budget).
//
//   grid        exhaustive enumeration in the space's canonical
//               (row-major, first-axis-outermost) order. Over
//               geometry_space this is bit-identical to
//               core::design_grid / core::explore_design_space.
//   random      `samples` independent draws; draw j picks each axis
//               uniformly from rng.fork(j). Batch size never changes
//               which candidates are drawn. Repeats are possible by
//               design — the engine's caches make them near-free and
//               the frontier dedupes them.
//   hill_climb  greedy local refinement with `restarts` lock-stepped
//               starts (drawn like random's first `restarts` samples).
//               Each round proposes every ±1-step axis neighbor of each
//               active climber; a climber moves to its best strictly
//               improving neighbor (scalarize() order, first-wins ties)
//               and stalls — permanently — when none improves.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/dse/param_space.h"
#include "src/dse/pareto.h"

namespace bpvec::dse {

/// Geometric scalarization of an evaluation: the product of all
/// minimized metric values divided by the product of all maximized ones
/// — the multi-objective generalization of core::best_design's
/// power·area/utilization² score. Infeasible evaluations score +inf.
/// Used by hill_climb to order neighbors (the frontier itself never
/// scalarizes).
double scalarize(const std::vector<Objective>& objectives,
                 const Evaluation& e);

class SearchStrategy {
 public:
  virtual ~SearchStrategy() = default;

  virtual const char* name() const = 0;

  /// Next candidates to price, at most `max_batch` (> 0). Empty means
  /// the strategy is exhausted and the search ends.
  virtual std::vector<Candidate> propose(std::size_t max_batch) = 0;

  /// Evaluations for exactly the candidates of the last propose(), in
  /// the same order. Called once per non-empty propose().
  virtual void observe(const std::vector<Evaluation>& batch) { (void)batch; }
};

class GridStrategy final : public SearchStrategy {
 public:
  explicit GridStrategy(const ParamSpace& space);

  const char* name() const override { return "grid"; }
  std::vector<Candidate> propose(std::size_t max_batch) override;

 private:
  const ParamSpace& space_;
  std::size_t cursor_ = 0;
};

class RandomStrategy final : public SearchStrategy {
 public:
  /// Draws exactly `samples` candidates from `seed`.
  RandomStrategy(const ParamSpace& space, std::size_t samples,
                 std::uint64_t seed);

  const char* name() const override { return "random"; }
  std::vector<Candidate> propose(std::size_t max_batch) override;

 private:
  const ParamSpace& space_;
  std::size_t samples_;
  std::size_t drawn_ = 0;
  Rng rng_;
};

class HillClimbStrategy final : public SearchStrategy {
 public:
  HillClimbStrategy(const ParamSpace& space, std::size_t restarts,
                    std::uint64_t seed, std::vector<Objective> objectives);

  const char* name() const override { return "hill_climb"; }
  std::vector<Candidate> propose(std::size_t max_batch) override;
  void observe(const std::vector<Evaluation>& batch) override;

 private:
  struct Climber {
    Candidate current;
    double score = 0.0;
    bool active = false;  // set once the start point is scored
    bool done = false;
  };

  /// Refills pending_ with the next round of proposals (starts, then
  /// neighbor rounds) once the previous round is fully observed.
  void plan_round();

  const ParamSpace& space_;
  std::size_t restarts_;
  Rng rng_;
  std::vector<Objective> objectives_;
  std::vector<Climber> climbers_;
  bool starts_planned_ = false;
  /// Candidates planned for the current round but not yet proposed.
  std::vector<Candidate> pending_;
  std::size_t pending_cursor_ = 0;
  /// Scores observed so far, by candidate key (scalarize()).
  std::unordered_map<std::uint64_t, double> score_by_key_;
};

/// Valid strategy tokens: {"grid", "random", "hill_climb"}.
const std::vector<std::string>& strategy_tokens();

/// Builds a strategy from its token. `budget` is the random strategy's
/// sample count (must be > 0 for "random"); `restarts` only applies to
/// "hill_climb". Throws bpvec::Error on an unknown token.
std::unique_ptr<SearchStrategy> make_strategy(
    const std::string& token, const ParamSpace& space, std::size_t budget,
    std::size_t restarts, std::uint64_t seed,
    std::vector<Objective> objectives);

}  // namespace bpvec::dse
