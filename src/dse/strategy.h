// Pluggable search strategies over a ParamSpace.
//
// A strategy is a proposal engine: the search driver repeatedly asks it
// for the next batch of candidates (propose), prices them, and hands the
// evaluations back (observe). All built-ins are deterministic — random
// choices flow through Rng::fork keyed on stable indices (draw index,
// chain × step, generation × slot), never on thread identity or wall
// clock — so a search is a pure function of (space, strategy, seed,
// budget). Batch size never changes which candidates a strategy
// proposes: rounds are planned whole and merely sliced to max_batch.
//
//   grid        exhaustive enumeration in the space's canonical
//               (row-major, first-axis-outermost) order. Over
//               geometry_space this is bit-identical to
//               core::design_grid / core::explore_design_space.
//   random      `samples` independent draws; draw j picks each axis
//               uniformly from rng.fork(j). Batch size never changes
//               which candidates are drawn. Repeats are possible by
//               design — the engine's caches make them near-free and
//               the frontier dedupes them.
//   hill_climb  greedy local refinement with `restarts` lock-stepped
//               starts (drawn like random's first `restarts` samples).
//               Each round proposes every ±1-step axis neighbor of each
//               active climber; a climber moves to its best strictly
//               improving neighbor (scalarize() order, first-wins ties)
//               and stalls — permanently — when none improves. Neighbor
//               candidate keys are cached per climber position, so
//               known-score skip checks are O(1) map lookups instead of
//               a re-enumeration + re-hash per round.
//   annealing   simulated annealing: `restarts` lock-stepped chains
//               started like hill_climb's, each proposing one random
//               ±1-step axis neighbor per round. Worse neighbors are
//               accepted with probability exp(-(s'/s - 1)/T) under a
//               geometric temperature schedule (1.0 → 1e-3 across the
//               budget), so chains escape the local optima hill_climb
//               stalls in. Requires a budget (> 0 total proposals).
//   genetic     generational GA: a population drawn like random's first
//               P samples, then per generation the top quarter survives
//               (elitism) and the rest are children of tournament-
//               selected parents via uniform crossover + per-axis
//               mutation (probability 1/num_axes). Requires a budget.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/dse/param_space.h"
#include "src/dse/pareto.h"

namespace bpvec::dse {

/// Geometric scalarization of an evaluation: the product of all
/// minimized metric values divided by the product of all maximized ones
/// — the multi-objective generalization of core::best_design's
/// power·area/utilization² score. Infeasible evaluations score +inf.
/// Used by hill_climb/annealing/genetic to order candidates (the
/// frontier itself never scalarizes).
double scalarize(const std::vector<Objective>& objectives,
                 const Evaluation& e);

class SearchStrategy {
 public:
  virtual ~SearchStrategy() = default;

  virtual const char* name() const = 0;

  /// Next candidates to price, at most `max_batch` (> 0). Empty means
  /// the strategy is exhausted and the search ends.
  virtual std::vector<Candidate> propose(std::size_t max_batch) = 0;

  /// Evaluations for exactly the candidates of the last propose(), in
  /// the same order. Called once per non-empty propose().
  virtual void observe(const std::vector<Evaluation>& batch) { (void)batch; }
};

class GridStrategy final : public SearchStrategy {
 public:
  explicit GridStrategy(const ParamSpace& space);

  const char* name() const override { return "grid"; }
  std::vector<Candidate> propose(std::size_t max_batch) override;

 private:
  const ParamSpace& space_;
  std::size_t cursor_ = 0;
};

class RandomStrategy final : public SearchStrategy {
 public:
  /// Draws exactly `samples` candidates from `seed`.
  RandomStrategy(const ParamSpace& space, std::size_t samples,
                 std::uint64_t seed);

  const char* name() const override { return "random"; }
  std::vector<Candidate> propose(std::size_t max_batch) override;

 private:
  const ParamSpace& space_;
  std::size_t samples_;
  std::size_t drawn_ = 0;
  Rng rng_;
};

class HillClimbStrategy final : public SearchStrategy {
 public:
  HillClimbStrategy(const ParamSpace& space, std::size_t restarts,
                    std::uint64_t seed, std::vector<Objective> objectives);

  const char* name() const override { return "hill_climb"; }
  std::vector<Candidate> propose(std::size_t max_batch) override;
  void observe(const std::vector<Evaluation>& batch) override;

 private:
  /// A ±1-step axis neighbor with its candidate_key computed once — the
  /// skip check ("score already known?") is then a hash-map lookup, not
  /// a fresh enumeration + key hash per round.
  struct Neighbor {
    Candidate candidate;
    std::uint64_t key = 0;
  };

  struct Climber {
    Candidate current;
    double score = 0.0;
    bool active = false;  // set once the start point is scored
    bool done = false;
    /// Neighbors of `current`, enumeration order (axis-major, -1 then
    /// +1). Valid while the climber sits at `current`.
    std::vector<Neighbor> neighbors;
    bool neighbors_cached = false;
  };

  /// Refills pending_ with the next round of proposals (starts, then
  /// neighbor rounds) once the previous round is fully observed.
  void plan_round();
  /// (Re)enumerates `c.current`'s neighbors with their keys.
  void cache_neighbors(Climber& c) const;

  const ParamSpace& space_;
  std::size_t restarts_;
  Rng rng_;
  std::vector<Objective> objectives_;
  std::vector<Climber> climbers_;
  bool starts_planned_ = false;
  /// Candidates planned for the current round but not yet proposed.
  std::vector<Candidate> pending_;
  std::size_t pending_cursor_ = 0;
  /// Scores observed so far, by candidate key (scalarize()).
  std::unordered_map<std::uint64_t, double> score_by_key_;
};

class SimulatedAnnealingStrategy final : public SearchStrategy {
 public:
  /// `chains` lock-stepped annealing chains (started like hill_climb's
  /// restarts), `budget` total proposals across all chains (> 0; sets
  /// the cooling schedule's length), seeded like every strategy.
  SimulatedAnnealingStrategy(const ParamSpace& space, std::size_t chains,
                             std::size_t budget, std::uint64_t seed,
                             std::vector<Objective> objectives);

  const char* name() const override { return "annealing"; }
  std::vector<Candidate> propose(std::size_t max_batch) override;
  void observe(const std::vector<Evaluation>& batch) override;

 private:
  struct Chain {
    Candidate current;
    double score = 0.0;
    bool active = false;  // set once the start point is scored
    Candidate proposal;
    bool has_proposal = false;
    /// Acceptance draw and temperature, fixed at proposal time so the
    /// verdict is a pure function of (chain, step) — not of batching.
    double accept_u = 0.0;
    double accept_temp = 1.0;
  };

  void plan_round();
  bool accept(const Chain& c, double proposal_score) const;

  const ParamSpace& space_;
  std::size_t budget_;
  Rng rng_;
  std::vector<Objective> objectives_;
  std::vector<Chain> chains_;
  /// Axes with >= 2 values (the only ones a neighbor step can move).
  std::vector<std::size_t> movable_axes_;
  double cooling_ = 1.0;   // geometric per-round factor
  std::size_t step_ = 0;   // neighbor rounds planned so far
  std::size_t proposed_ = 0;
  bool starts_planned_ = false;
  std::vector<Candidate> pending_;
  std::size_t pending_cursor_ = 0;
  std::unordered_map<std::uint64_t, double> score_by_key_;
};

class GeneticStrategy final : public SearchStrategy {
 public:
  /// `population` candidates per generation (>= 2), `budget` total
  /// proposals (> 0). Generation 0 is drawn exactly like random's first
  /// `population` samples.
  GeneticStrategy(const ParamSpace& space, std::size_t population,
                  std::size_t budget, std::uint64_t seed,
                  std::vector<Objective> objectives);

  const char* name() const override { return "genetic"; }
  std::vector<Candidate> propose(std::size_t max_batch) override;
  void observe(const std::vector<Evaluation>& batch) override;

 private:
  void plan_generation();

  const ParamSpace& space_;
  std::size_t population_;
  std::size_t budget_;
  Rng rng_;
  std::vector<Objective> objectives_;
  /// The previous generation, proposal order (the parent pool).
  std::vector<Candidate> parents_;
  std::size_t generation_ = 0;
  std::size_t proposed_ = 0;
  std::vector<Candidate> pending_;
  std::size_t pending_cursor_ = 0;
  std::unordered_map<std::uint64_t, double> score_by_key_;
};

/// Valid strategy tokens:
/// {"grid", "random", "hill_climb", "annealing", "genetic"}.
const std::vector<std::string>& strategy_tokens();

/// Everything make_strategy needs beyond the space. `budget` is the
/// random strategy's sample count and the annealing/genetic proposal
/// budget (those three require it > 0); `restarts` is hill_climb's
/// start count and annealing's chain count; `population` is genetic's
/// generation size; `objectives` rank candidates for every
/// score-driven strategy.
struct StrategyOptions {
  std::size_t budget = 0;
  std::size_t restarts = 4;
  std::size_t population = 16;
  std::uint64_t seed = 42;
  std::vector<Objective> objectives;
};

/// Builds a strategy from its token. Throws bpvec::Error on an unknown
/// token or an option the strategy rejects (e.g. a missing budget).
std::unique_ptr<SearchStrategy> make_strategy(const std::string& token,
                                              const ParamSpace& space,
                                              StrategyOptions options);

}  // namespace bpvec::dse
