// Multi-objective metrics and the streaming Pareto frontier.
//
// A search ranks candidates on several objectives at once (the paper's
// own conclusion is a two-objective trade: power·area vs utilization —
// §III-B). The frontier keeps every candidate not dominated by another:
// `a` dominates `b` when `a` is at least as good on every objective and
// strictly better on at least one (direction-aware; kUtilization and
// the GOps metrics default to maximize, everything else to minimize).
//
// Semantics, exactly:
//   * dominated-point eviction — inserting a point that dominates
//     existing entries removes them; inserting a dominated point is a
//     no-op (kDominated).
//   * ties — candidates with identical objective vectors are mutually
//     non-dominating and are all kept (kJoined).
//   * duplicates — a candidate whose 64-bit key was already inserted is
//     dropped (kDuplicate) whatever its values; re-proposing a point
//     must not grow the frontier.
//   * infeasible — constraint-violating evaluations never enter
//     (kInfeasible).
//   * entries() is insertion order of the survivors; sorted() is the
//     canonical report order — lexicographic by direction-normalized
//     objective vector, ties broken by candidate key — a pure function
//     of the surviving set, independent of insertion order.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/core/design_space.h"
#include "src/dse/param_space.h"
#include "src/sim/simulator.h"

namespace bpvec::dse {

/// Everything a search can rank on. Scenario searches (run_batch-priced)
/// support all of them; geometry sweeps (Fig. 4 cost model only) support
/// just the per-MAC and utilization metrics.
enum class Metric {
  kCycles,       // RunResult::total_cycles          (minimize)
  kEnergy,       // RunResult::energy_j              (minimize)
  kRuntime,      // RunResult::runtime_s             (minimize)
  kPower,        // RunResult::average_power_w       (minimize)
  kCoreArea,     // platform core area, µm²          (minimize)
  kMacPower,     // Fig. 4 normalized per-MAC power  (minimize)
  kMacArea,      // Fig. 4 normalized per-MAC area   (minimize)
  kUtilization,  // mix utilization over the search's bitwidth mix (maximize)
  kGopsPerW,     // RunResult::gops_per_w            (maximize)
  kGopsPerS,     // RunResult::gops_per_s            (maximize)
};

const char* to_string(Metric metric);
std::optional<Metric> metric_from_token(const std::string& token);
const std::vector<std::string>& metric_tokens();

/// The natural optimization direction (maximize for kUtilization and the
/// GOps metrics, minimize otherwise).
bool default_maximize(Metric metric);

struct Objective {
  Metric metric = Metric::kCycles;
  bool maximize = false;
};

/// Convenience: objective at the metric's natural direction.
Objective objective(Metric metric);

/// One evaluated candidate.
struct Evaluation {
  Candidate candidate;
  std::uint64_t key = 0;     // ParamSpace::candidate_key
  std::string id;            // scenario id, or the knob label
  core::DesignPoint design;  // Fig. 4 cost + mix utilization of the geometry
  double core_area_um2 = 0;  // platform core area (scenario searches only)
  /// Full run metrics; null for geometry-only sweeps.
  std::shared_ptr<const sim::RunResult> result;
  /// Raw metric values in the search's objective order.
  std::vector<double> objectives;
  bool feasible = true;
};

/// True when `a` dominates `b` under `objectives` (sizes must match).
bool dominates(const std::vector<double>& a, const std::vector<double>& b,
               const std::vector<Objective>& objectives);

class ParetoFrontier {
 public:
  explicit ParetoFrontier(std::vector<Objective> objectives);

  enum class Insert { kJoined, kDominated, kDuplicate, kInfeasible };

  /// Streaming insert with the semantics documented above.
  Insert insert(const Evaluation& e);

  const std::vector<Objective>& objectives() const { return objectives_; }
  /// Surviving entries, insertion order.
  const std::vector<Evaluation>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

  /// Canonical report order (see file comment).
  std::vector<Evaluation> sorted() const;

 private:
  std::vector<Objective> objectives_;
  std::vector<Evaluation> entries_;
  std::unordered_set<std::uint64_t> seen_keys_;  // every key ever inserted
};

}  // namespace bpvec::dse
