#include "src/dse/search.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>
#include <utility>

#include "src/arch/cvu_cost.h"
#include "src/common/error.h"
#include "src/workload/schema.h"

namespace bpvec::dse {

namespace {

constexpr std::size_t kDefaultBatch = 256;

std::size_t pool_grain(const engine::SimEngine& engine, std::size_t jobs) {
  const std::size_t lanes =
      static_cast<std::size_t>(engine.num_threads()) * 4;
  return std::max<std::size_t>(1, jobs / std::max<std::size_t>(1, lanes));
}

double geometry_metric(Metric metric, const core::DesignPoint& design) {
  switch (metric) {
    case Metric::kMacPower: return design.cost.power_total();
    case Metric::kMacArea: return design.cost.area_total();
    case Metric::kUtilization: return design.mix_utilization;
    default:
      throw Error(std::string("metric \"") + to_string(metric) +
                  "\" requires a scenario search (it is priced by "
                  "SimEngine::run_batch, not the Fig. 4 cost model)");
  }
}

}  // namespace

bool Constraints::any() const {
  return min_utilization || max_power_w || max_energy_j || max_runtime_s ||
         max_cycles;
}

// ----- GeometryEvaluator ---------------------------------------------

GeometryEvaluator::GeometryEvaluator(engine::SimEngine& engine,
                                     const ParamSpace& space,
                                     std::vector<Objective> objectives,
                                     std::vector<core::BitwidthMixEntry> mix)
    : engine_(engine),
      space_(space),
      objectives_(std::move(objectives)),
      mix_(std::move(mix)) {
  for (const Objective& o : objectives_) {
    (void)geometry_metric(o.metric, core::DesignPoint{});  // validate now
  }
}

std::vector<Evaluation> GeometryEvaluator::evaluate(
    const std::vector<Candidate>& batch) {
  std::vector<Evaluation> out(batch.size());
  engine_.pool().parallel_for(
      batch.size(),
      [&](std::size_t i) {
        Evaluation& e = out[i];
        e.candidate = batch[i];
        e.key = space_.candidate_key(batch[i]);
        const bitslice::CvuGeometry g =
            space_.geometry(batch[i], bitslice::CvuGeometry{});
        e.design = mix_.empty() ? core::price_design_point(g)
                                : core::price_design_point(g, mix_);
        e.id = g.to_string();
        e.objectives.reserve(objectives_.size());
        for (const Objective& o : objectives_) {
          e.objectives.push_back(geometry_metric(o.metric, e.design));
        }
      },
      pool_grain(engine_, batch.size()));
  return out;
}

// ----- ScenarioEvaluator ---------------------------------------------

ScenarioEvaluator::ScenarioEvaluator(
    engine::SimEngine& engine, const ParamSpace& space,
    engine::Scenario base, std::vector<Objective> objectives,
    std::vector<core::BitwidthMixEntry> mix, Constraints constraints,
    std::optional<workload::GeneratorSpec> generator)
    : engine_(engine),
      space_(space),
      base_(std::move(base)),
      objectives_(std::move(objectives)),
      mix_(std::move(mix)),
      mix_from_network_(mix_.empty()),
      constraints_(constraints),
      generator_(std::move(generator)) {
  if (mix_from_network_) {
    mix_ = derive_mix(base_.network);
  }
  // Prewarm the base network's structural fingerprint memo: every
  // candidate that keeps the base workload copies the memo along with
  // the network, so the engine's fingerprint pass hashes the workload
  // once per search instead of once per candidate.
  (void)workload::network_fingerprint(base_.network,
                                      base_.platform.time_chunk);
}

std::vector<core::BitwidthMixEntry> ScenarioEvaluator::derive_mix(
    const dnn::Network& network) {
  // MAC-weighted bitwidth mix of the workload itself.
  std::vector<core::BitwidthMixEntry> mix;
  for (const dnn::Layer& layer : network.layers()) {
    if (!layer.is_compute()) continue;
    mix.push_back({layer.x_bits, layer.w_bits,
                   static_cast<double>(layer.macs())});
  }
  if (mix.empty()) mix.push_back({8, 8, 1.0});
  return mix;
}

std::vector<Evaluation> ScenarioEvaluator::evaluate(
    const std::vector<Candidate>& batch) {
  // Materialize into reused buffers (capacities survive across batches)
  // and report the construction wall time to the engine's phase timers
  // — the "construct" share of the dispatch-cost split.
  const auto t0 = std::chrono::steady_clock::now();
  scratch_.resize(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    space_.materialize_into(batch[i], base_,
                            generator_ ? &*generator_ : nullptr,
                            scratch_[i]);
  }
  engine_.record_construct_seconds(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count());
  const std::vector<engine::Scenario>& scenarios = scratch_;
  std::vector<sim::RunResult> results = engine_.run_batch(scenarios);

  const arch::CvuCostModel cost;
  std::vector<Evaluation> out(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Evaluation& e = out[i];
    e.candidate = batch[i];
    e.key = space_.candidate_key(batch[i]);
    e.id = scenarios[i].id;
    // Workload axes regenerate the network per candidate, so a derived
    // mix must follow the candidate's actual layers (a frozen base mix
    // would score utilization/mac_power/mac_area — and the
    // min_utilization constraint — against the wrong bitwidths).
    const bool per_candidate = mix_from_network_ && generator_.has_value();
    std::vector<core::BitwidthMixEntry> regenerated;
    if (per_candidate) regenerated = derive_mix(scenarios[i].network);
    const std::vector<core::BitwidthMixEntry>& mix =
        per_candidate ? regenerated : mix_;
    e.design = core::price_design_point(scenarios[i].platform.cvu, mix);
    e.core_area_um2 = scenarios[i].platform.core_area_um2(cost);
    e.result = std::make_shared<const sim::RunResult>(std::move(results[i]));
    const sim::RunResult& r = *e.result;
    e.objectives.reserve(objectives_.size());
    for (const Objective& o : objectives_) {
      double v = 0;
      switch (o.metric) {
        case Metric::kCycles: v = static_cast<double>(r.total_cycles); break;
        case Metric::kEnergy: v = r.energy_j; break;
        case Metric::kRuntime: v = r.runtime_s; break;
        case Metric::kPower: v = r.average_power_w; break;
        case Metric::kCoreArea: v = e.core_area_um2; break;
        case Metric::kGopsPerW: v = r.gops_per_w; break;
        case Metric::kGopsPerS: v = r.gops_per_s; break;
        case Metric::kMacPower:
        case Metric::kMacArea:
        case Metric::kUtilization:
          v = geometry_metric(o.metric, e.design);
          break;
      }
      e.objectives.push_back(v);
    }
    e.feasible =
        (!constraints_.min_utilization ||
         e.design.mix_utilization + 1e-12 >= *constraints_.min_utilization) &&
        (!constraints_.max_power_w ||
         r.average_power_w <= *constraints_.max_power_w) &&
        (!constraints_.max_energy_j ||
         r.energy_j <= *constraints_.max_energy_j) &&
        (!constraints_.max_runtime_s ||
         r.runtime_s <= *constraints_.max_runtime_s) &&
        (!constraints_.max_cycles || r.total_cycles <= *constraints_.max_cycles);
  }
  return out;
}

// ----- driver --------------------------------------------------------

SearchOutcome run_search(SearchStrategy& strategy, Evaluator& evaluator,
                         std::vector<Objective> objectives,
                         const SearchOptions& options) {
  ParetoFrontier frontier(objectives);
  SearchOutcome outcome{std::move(objectives), {}, std::move(frontier),
                        0,                    0,  0};

  std::unordered_set<std::uint64_t> unique_keys;
  const std::size_t cap =
      options.batch_size > 0 ? options.batch_size : kDefaultBatch;
  while (options.budget == 0 || outcome.candidates < options.budget) {
    if (options.should_stop && options.should_stop()) break;
    std::size_t max_batch = cap;
    if (options.budget > 0) {
      max_batch = std::min(cap, options.budget - outcome.candidates);
    }
    const std::vector<Candidate> batch = strategy.propose(max_batch);
    if (batch.empty()) break;
    BPVEC_CHECK_MSG(batch.size() <= max_batch,
                    "strategy proposed more candidates than asked");

    std::vector<Evaluation> evals = evaluator.evaluate(batch);
    BPVEC_CHECK(evals.size() == batch.size());
    for (const Evaluation& e : evals) {
      unique_keys.insert(e.key);
      if (!e.feasible) ++outcome.infeasible;
      (void)outcome.frontier.insert(e);
    }
    strategy.observe(evals);
    outcome.candidates += evals.size();
    for (Evaluation& e : evals) {
      outcome.evaluations.push_back(std::move(e));
    }
  }
  outcome.unique_candidates = unique_keys.size();
  return outcome;
}

std::vector<core::DesignPoint> design_points(const SearchOutcome& outcome) {
  std::vector<core::DesignPoint> points;
  points.reserve(outcome.evaluations.size());
  for (const Evaluation& e : outcome.evaluations) {
    points.push_back(e.design);
  }
  return points;
}

}  // namespace bpvec::dse
