#include "src/dse/strategy.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/common/error.h"
#include "src/common/token.h"

namespace bpvec::dse {

double scalarize(const std::vector<Objective>& objectives,
                 const Evaluation& e) {
  if (!e.feasible) return std::numeric_limits<double>::infinity();
  BPVEC_CHECK(e.objectives.size() == objectives.size());
  double score = 1.0;
  for (std::size_t i = 0; i < objectives.size(); ++i) {
    if (objectives[i].maximize) {
      score /= e.objectives[i];
    } else {
      score *= e.objectives[i];
    }
  }
  return score;
}

// ----- grid ----------------------------------------------------------

GridStrategy::GridStrategy(const ParamSpace& space) : space_(space) {}

std::vector<Candidate> GridStrategy::propose(std::size_t max_batch) {
  BPVEC_CHECK(max_batch > 0);
  const std::size_t total = space_.size();
  std::vector<Candidate> out;
  while (cursor_ < total && out.size() < max_batch) {
    out.push_back(space_.at(cursor_++));
  }
  return out;
}

// ----- random --------------------------------------------------------

namespace {

/// Draw `j`: one independent stream per draw index, one uniform pick per
/// axis. Deterministic in (seed, j) — independent of batching.
Candidate draw(const ParamSpace& space, const Rng& rng, std::uint64_t j) {
  Rng stream = rng.fork(j);
  Candidate c;
  c.choice.reserve(space.num_axes());
  for (const Axis& axis : space.axes()) {
    c.choice.push_back(static_cast<std::size_t>(stream.uniform(
        0, static_cast<std::int64_t>(axis.values.size()) - 1)));
  }
  return c;
}

}  // namespace

RandomStrategy::RandomStrategy(const ParamSpace& space, std::size_t samples,
                               std::uint64_t seed)
    : space_(space), samples_(samples), rng_(seed) {
  BPVEC_CHECK_MSG(samples_ > 0, "random strategy needs samples > 0");
}

std::vector<Candidate> RandomStrategy::propose(std::size_t max_batch) {
  BPVEC_CHECK(max_batch > 0);
  std::vector<Candidate> out;
  while (drawn_ < samples_ && out.size() < max_batch) {
    out.push_back(draw(space_, rng_, drawn_++));
  }
  return out;
}

// ----- hill climb ----------------------------------------------------

HillClimbStrategy::HillClimbStrategy(const ParamSpace& space,
                                     std::size_t restarts,
                                     std::uint64_t seed,
                                     std::vector<Objective> objectives)
    : space_(space),
      restarts_(restarts),
      rng_(seed),
      objectives_(std::move(objectives)) {
  BPVEC_CHECK_MSG(restarts_ > 0, "hill_climb needs restarts > 0");
  BPVEC_CHECK_MSG(!objectives_.empty(),
                  "hill_climb needs objectives to rank neighbors");
  climbers_.resize(restarts_);
}

void HillClimbStrategy::plan_round() {
  pending_.clear();
  pending_cursor_ = 0;

  if (!starts_planned_) {
    // Round 0: the start points (drawn exactly like random's first
    // `restarts` samples).
    starts_planned_ = true;
    for (std::size_t r = 0; r < restarts_; ++r) {
      climbers_[r].current = draw(space_, rng_, r);
      pending_.push_back(climbers_[r].current);
    }
    return;
  }

  // Keep stepping climbers whose neighbor scores are all known already;
  // only unknown-score candidates are proposed. Every move strictly
  // improves the score, so this loop terminates.
  while (pending_.empty()) {
    bool any_active = false;
    for (Climber& c : climbers_) {
      if (c.done) continue;
      if (!c.active) {
        // Adopt the start point's score (observed in round 0).
        const auto it = score_by_key_.find(space_.candidate_key(c.current));
        BPVEC_CHECK(it != score_by_key_.end());
        c.score = it->second;
        c.active = true;
      }
      any_active = true;
    }
    if (!any_active) return;  // all climbers stalled — exhausted

    // Collect the neighbors whose scores we don't know yet.
    bool all_known = true;
    for (Climber& c : climbers_) {
      if (c.done) continue;
      for (std::size_t a = 0; a < space_.num_axes(); ++a) {
        for (int step : {-1, +1}) {
          const std::size_t n = space_.axes()[a].values.size();
          const std::size_t cur = c.current.choice[a];
          if (step < 0 && cur == 0) continue;
          if (step > 0 && cur + 1 >= n) continue;
          Candidate nb = c.current;
          nb.choice[a] = cur + step;
          if (score_by_key_.count(space_.candidate_key(nb))) continue;
          all_known = false;
          pending_.push_back(nb);
        }
      }
    }
    if (!all_known) return;  // propose the unknowns, resume after observe

    // All neighbor scores are known: apply one greedy step per climber.
    for (Climber& c : climbers_) {
      if (c.done) continue;
      double best_score = c.score;
      Candidate best = c.current;
      bool moved = false;
      for (std::size_t a = 0; a < space_.num_axes(); ++a) {
        for (int step : {-1, +1}) {
          const std::size_t n = space_.axes()[a].values.size();
          const std::size_t cur = c.current.choice[a];
          if (step < 0 && cur == 0) continue;
          if (step > 0 && cur + 1 >= n) continue;
          Candidate nb = c.current;
          nb.choice[a] = cur + step;
          const double s = score_by_key_.at(space_.candidate_key(nb));
          if (s < best_score) {  // strict improvement; first-wins ties
            best_score = s;
            best = nb;
            moved = true;
          }
        }
      }
      if (moved) {
        c.current = best;
        c.score = best_score;
      } else {
        c.done = true;
      }
    }
  }
}

std::vector<Candidate> HillClimbStrategy::propose(std::size_t max_batch) {
  BPVEC_CHECK(max_batch > 0);
  if (pending_cursor_ >= pending_.size()) plan_round();
  std::vector<Candidate> out;
  while (pending_cursor_ < pending_.size() && out.size() < max_batch) {
    out.push_back(pending_[pending_cursor_++]);
  }
  return out;
}

void HillClimbStrategy::observe(const std::vector<Evaluation>& batch) {
  for (const Evaluation& e : batch) {
    score_by_key_.emplace(e.key, scalarize(objectives_, e));
  }
}

// ----- factory -------------------------------------------------------

const std::vector<std::string>& strategy_tokens() {
  static const std::vector<std::string> tokens{"grid", "random",
                                               "hill_climb"};
  return tokens;
}

std::unique_ptr<SearchStrategy> make_strategy(
    const std::string& token, const ParamSpace& space, std::size_t budget,
    std::size_t restarts, std::uint64_t seed,
    std::vector<Objective> objectives) {
  if (token == "grid") return std::make_unique<GridStrategy>(space);
  if (token == "random") {
    if (budget == 0) {
      throw Error("random strategy requires a budget (its sample count)");
    }
    return std::make_unique<RandomStrategy>(space, budget, seed);
  }
  if (token == "hill_climb") {
    return std::make_unique<HillClimbStrategy>(space, restarts, seed,
                                               std::move(objectives));
  }
  throw Error("unknown search strategy \"" + token + "\"; expected one of " +
              common::quoted_token_list(strategy_tokens()));
}

}  // namespace bpvec::dse
