#include "src/dse/strategy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "src/common/error.h"
#include "src/common/token.h"

namespace bpvec::dse {

double scalarize(const std::vector<Objective>& objectives,
                 const Evaluation& e) {
  if (!e.feasible) return std::numeric_limits<double>::infinity();
  BPVEC_CHECK(e.objectives.size() == objectives.size());
  double score = 1.0;
  for (std::size_t i = 0; i < objectives.size(); ++i) {
    if (objectives[i].maximize) {
      score /= e.objectives[i];
    } else {
      score *= e.objectives[i];
    }
  }
  return score;
}

// ----- grid ----------------------------------------------------------

GridStrategy::GridStrategy(const ParamSpace& space) : space_(space) {}

std::vector<Candidate> GridStrategy::propose(std::size_t max_batch) {
  BPVEC_CHECK(max_batch > 0);
  const std::size_t total = space_.size();
  std::vector<Candidate> out;
  while (cursor_ < total && out.size() < max_batch) {
    out.push_back(space_.at(cursor_++));
  }
  return out;
}

// ----- random --------------------------------------------------------

namespace {

/// Draw `j`: one independent stream per draw index, one uniform pick per
/// axis. Deterministic in (seed, j) — independent of batching.
Candidate draw(const ParamSpace& space, const Rng& rng, std::uint64_t j) {
  Rng stream = rng.fork(j);
  Candidate c;
  c.choice.reserve(space.num_axes());
  for (const Axis& axis : space.axes()) {
    c.choice.push_back(static_cast<std::size_t>(stream.uniform(
        0, static_cast<std::int64_t>(axis.values.size()) - 1)));
  }
  return c;
}

// Stream salts keeping per-round fork indices clear of the start-point
// draw indices 0..N-1 (all forks of one parent must be distinct).
constexpr std::uint64_t kAnnealRoundSalt = 0x414e4e45414cull;   // "ANNEAL"
constexpr std::uint64_t kGeneticGenSalt = 0x47454e45ull;        // "GENE"

}  // namespace

RandomStrategy::RandomStrategy(const ParamSpace& space, std::size_t samples,
                               std::uint64_t seed)
    : space_(space), samples_(samples), rng_(seed) {
  BPVEC_CHECK_MSG(samples_ > 0, "random strategy needs samples > 0");
}

std::vector<Candidate> RandomStrategy::propose(std::size_t max_batch) {
  BPVEC_CHECK(max_batch > 0);
  std::vector<Candidate> out;
  while (drawn_ < samples_ && out.size() < max_batch) {
    out.push_back(draw(space_, rng_, drawn_++));
  }
  return out;
}

// ----- hill climb ----------------------------------------------------

HillClimbStrategy::HillClimbStrategy(const ParamSpace& space,
                                     std::size_t restarts,
                                     std::uint64_t seed,
                                     std::vector<Objective> objectives)
    : space_(space),
      restarts_(restarts),
      rng_(seed),
      objectives_(std::move(objectives)) {
  BPVEC_CHECK_MSG(restarts_ > 0, "hill_climb needs restarts > 0");
  BPVEC_CHECK_MSG(!objectives_.empty(),
                  "hill_climb needs objectives to rank neighbors");
  climbers_.resize(restarts_);
}

void HillClimbStrategy::cache_neighbors(Climber& c) const {
  // Enumeration order (axis-major, -1 before +1) is the proposal and
  // tie-break order — identical to enumerating inline, but the
  // candidate_key is hashed once per position instead of once per
  // neighbor per round.
  c.neighbors.clear();
  for (std::size_t a = 0; a < space_.num_axes(); ++a) {
    for (int step : {-1, +1}) {
      const std::size_t n = space_.axes()[a].values.size();
      const std::size_t cur = c.current.choice[a];
      if (step < 0 && cur == 0) continue;
      if (step > 0 && cur + 1 >= n) continue;
      Neighbor nb;
      nb.candidate = c.current;
      nb.candidate.choice[a] = cur + step;
      nb.key = space_.candidate_key(nb.candidate);
      c.neighbors.push_back(std::move(nb));
    }
  }
  c.neighbors_cached = true;
}

void HillClimbStrategy::plan_round() {
  pending_.clear();
  pending_cursor_ = 0;

  if (!starts_planned_) {
    // Round 0: the start points (drawn exactly like random's first
    // `restarts` samples).
    starts_planned_ = true;
    for (std::size_t r = 0; r < restarts_; ++r) {
      climbers_[r].current = draw(space_, rng_, r);
      pending_.push_back(climbers_[r].current);
    }
    return;
  }

  // Keep stepping climbers whose neighbor scores are all known already;
  // only unknown-score candidates are proposed. Every move strictly
  // improves the score, so this loop terminates.
  while (pending_.empty()) {
    bool any_active = false;
    for (Climber& c : climbers_) {
      if (c.done) continue;
      if (!c.active) {
        // Adopt the start point's score (observed in round 0).
        const auto it = score_by_key_.find(space_.candidate_key(c.current));
        BPVEC_CHECK(it != score_by_key_.end());
        c.score = it->second;
        c.active = true;
      }
      any_active = true;
    }
    if (!any_active) return;  // all climbers stalled — exhausted

    // Collect the neighbors whose scores we don't know yet — an O(1)
    // key lookup each, against the per-position neighbor cache.
    bool all_known = true;
    for (Climber& c : climbers_) {
      if (c.done) continue;
      if (!c.neighbors_cached) cache_neighbors(c);
      for (const Neighbor& nb : c.neighbors) {
        if (score_by_key_.count(nb.key)) continue;
        all_known = false;
        pending_.push_back(nb.candidate);
      }
    }
    if (!all_known) return;  // propose the unknowns, resume after observe

    // All neighbor scores are known: apply one greedy step per climber.
    for (Climber& c : climbers_) {
      if (c.done) continue;
      double best_score = c.score;
      const Neighbor* best = nullptr;
      for (const Neighbor& nb : c.neighbors) {
        const double s = score_by_key_.at(nb.key);
        if (s < best_score) {  // strict improvement; first-wins ties
          best_score = s;
          best = &nb;
        }
      }
      if (best != nullptr) {
        c.current = best->candidate;
        c.score = best_score;
        c.neighbors_cached = false;  // the position moved
      } else {
        c.done = true;
      }
    }
  }
}

std::vector<Candidate> HillClimbStrategy::propose(std::size_t max_batch) {
  BPVEC_CHECK(max_batch > 0);
  if (pending_cursor_ >= pending_.size()) plan_round();
  std::vector<Candidate> out;
  while (pending_cursor_ < pending_.size() && out.size() < max_batch) {
    out.push_back(pending_[pending_cursor_++]);
  }
  return out;
}

void HillClimbStrategy::observe(const std::vector<Evaluation>& batch) {
  for (const Evaluation& e : batch) {
    score_by_key_.emplace(e.key, scalarize(objectives_, e));
  }
}

// ----- simulated annealing -------------------------------------------

SimulatedAnnealingStrategy::SimulatedAnnealingStrategy(
    const ParamSpace& space, std::size_t chains, std::size_t budget,
    std::uint64_t seed, std::vector<Objective> objectives)
    : space_(space),
      budget_(budget),
      rng_(seed),
      objectives_(std::move(objectives)) {
  BPVEC_CHECK_MSG(chains > 0, "annealing needs chains (restarts) > 0");
  BPVEC_CHECK_MSG(budget_ > 0,
                  "annealing needs a budget (its proposal count)");
  BPVEC_CHECK_MSG(!objectives_.empty(),
                  "annealing needs objectives to score moves");
  // More chains than budget would start chains that can never move.
  chains_.resize(std::min(chains, budget_));
  for (std::size_t a = 0; a < space_.num_axes(); ++a) {
    if (space_.axes()[a].values.size() > 1) movable_axes_.push_back(a);
  }
  // Geometric schedule T: 1.0 → 1e-3 across the ~budget/chains neighbor
  // rounds the budget affords.
  const double rounds = std::max<double>(
      1.0, static_cast<double>(budget_) / static_cast<double>(chains_.size()));
  cooling_ = std::pow(1e-3, 1.0 / rounds);
}

bool SimulatedAnnealingStrategy::accept(const Chain& c,
                                        double proposal_score) const {
  // Downhill (or equal, including inf → inf and inf → finite) always
  // moves; after this test the current score is finite.
  if (!(proposal_score > c.score)) return true;
  // Degenerate current score (<= 0: an exactly-zero objective) — the
  // ratio test below is meaningless, move freely.
  if (!(c.score > 0.0)) return true;
  if (std::isinf(proposal_score)) return false;  // never go infeasible
  // Scale-free uphill acceptance: scalarize() is a positive product, so
  // the relative regression s'/s - 1 plays the role of ΔE.
  const double p =
      std::exp(-((proposal_score / c.score) - 1.0) / c.accept_temp);
  return c.accept_u < p;
}

void SimulatedAnnealingStrategy::plan_round() {
  pending_.clear();
  pending_cursor_ = 0;

  if (!starts_planned_) {
    // Round 0: starts, drawn exactly like random's / hill_climb's.
    starts_planned_ = true;
    for (std::size_t k = 0; k < chains_.size(); ++k) {
      chains_[k].current = draw(space_, rng_, k);
      pending_.push_back(chains_[k].current);
      ++proposed_;
    }
    return;
  }

  // Absorb the previous round: adopt start scores, then settle each
  // chain's pending proposal with the acceptance draw and temperature
  // fixed when it was proposed.
  for (Chain& c : chains_) {
    if (!c.active) {
      c.score = score_by_key_.at(space_.candidate_key(c.current));
      c.active = true;
    } else if (c.has_proposal) {
      const double s =
          score_by_key_.at(space_.candidate_key(c.proposal));
      if (accept(c, s)) {
        c.current = c.proposal;
        c.score = s;
      }
      c.has_proposal = false;
    }
  }

  if (proposed_ >= budget_ || movable_axes_.empty()) return;  // exhausted

  // Plan one neighbor per chain. Every random draw comes from a stream
  // keyed on (round, chain), so proposals — and the acceptance draws
  // settled next round — are batch-size invariant.
  const double temp = std::pow(cooling_, static_cast<double>(step_));
  for (std::size_t k = 0;
       k < chains_.size() && proposed_ < budget_; ++k) {
    Chain& c = chains_[k];
    Rng stream = rng_.fork(kAnnealRoundSalt + step_).fork(k);
    Candidate nb = c.current;
    const std::size_t a = movable_axes_[static_cast<std::size_t>(
        stream.uniform(0,
                       static_cast<std::int64_t>(movable_axes_.size()) - 1))];
    const std::size_t n = space_.axes()[a].values.size();
    const std::size_t cur = nb.choice[a];
    std::size_t next;
    if (cur == 0) {
      next = cur + 1;
    } else if (cur + 1 >= n) {
      next = cur - 1;
    } else {
      next = stream.uniform(0, 1) == 0 ? cur - 1 : cur + 1;
    }
    nb.choice[a] = next;
    c.proposal = std::move(nb);
    c.accept_u = stream.uniform01();
    c.accept_temp = temp;
    c.has_proposal = true;
    pending_.push_back(c.proposal);
    ++proposed_;
  }
  ++step_;
}

std::vector<Candidate> SimulatedAnnealingStrategy::propose(
    std::size_t max_batch) {
  BPVEC_CHECK(max_batch > 0);
  if (pending_cursor_ >= pending_.size()) plan_round();
  std::vector<Candidate> out;
  while (pending_cursor_ < pending_.size() && out.size() < max_batch) {
    out.push_back(pending_[pending_cursor_++]);
  }
  return out;
}

void SimulatedAnnealingStrategy::observe(
    const std::vector<Evaluation>& batch) {
  for (const Evaluation& e : batch) {
    score_by_key_.emplace(e.key, scalarize(objectives_, e));
  }
}

// ----- genetic -------------------------------------------------------

GeneticStrategy::GeneticStrategy(const ParamSpace& space,
                                 std::size_t population, std::size_t budget,
                                 std::uint64_t seed,
                                 std::vector<Objective> objectives)
    : space_(space),
      population_(population),
      budget_(budget),
      rng_(seed),
      objectives_(std::move(objectives)) {
  BPVEC_CHECK_MSG(population_ >= 2, "genetic needs a population >= 2");
  BPVEC_CHECK_MSG(budget_ > 0, "genetic needs a budget (its proposal count)");
  BPVEC_CHECK_MSG(!objectives_.empty(),
                  "genetic needs objectives to rank the population");
}

void GeneticStrategy::plan_generation() {
  pending_.clear();
  pending_cursor_ = 0;
  if (proposed_ >= budget_) return;  // exhausted

  if (generation_ == 0) {
    // Generation 0: drawn exactly like random's first P samples.
    const std::size_t n = std::min(population_, budget_);
    for (std::size_t j = 0; j < n; ++j) {
      pending_.push_back(draw(space_, rng_, j));
    }
    parents_ = pending_;
    proposed_ += n;
    ++generation_;
    return;
  }

  // Rank the previous generation by (scalarized score, candidate key):
  // the key tie-break keeps the order — and therefore selection — a
  // pure function of the scores, independent of map iteration order.
  struct Ranked {
    double score;
    std::uint64_t key;
    std::size_t idx;
  };
  std::vector<Ranked> ranked(parents_.size());
  for (std::size_t i = 0; i < parents_.size(); ++i) {
    const std::uint64_t key = space_.candidate_key(parents_[i]);
    ranked[i] = {score_by_key_.at(key), key, i};
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Ranked& a, const Ranked& b) {
                     if (a.score != b.score) return a.score < b.score;
                     return a.key < b.key;
                   });

  // Tournament of 2 over the ranked pool (rank order breaks ties).
  auto tournament = [&](Rng& stream) -> const Candidate& {
    const auto pick = [&] {
      return static_cast<std::size_t>(stream.uniform(
          0, static_cast<std::int64_t>(ranked.size()) - 1));
    };
    const std::size_t i = pick();
    const std::size_t j = pick();
    return parents_[ranked[std::min(i, j)].idx];
  };

  const std::size_t num_axes = space_.num_axes();
  const std::size_t elite = std::min(
      parents_.size(), std::max<std::size_t>(1, population_ / 4));
  std::vector<Candidate> next;
  for (std::size_t s = 0; s < population_ && proposed_ < budget_; ++s) {
    Candidate child;
    if (s < elite) {
      // Elites re-enter the pool unchanged (the engine's caches make
      // re-evaluating them nearly free, and it keeps every generation's
      // scores resident for the next ranking).
      child = parents_[ranked[s].idx];
    } else {
      Rng stream = rng_.fork(kGeneticGenSalt + generation_).fork(s);
      const Candidate& a = tournament(stream);
      const Candidate& b = tournament(stream);
      child.choice.resize(num_axes);
      for (std::size_t ax = 0; ax < num_axes; ++ax) {  // uniform crossover
        child.choice[ax] =
            stream.uniform(0, 1) == 0 ? a.choice[ax] : b.choice[ax];
      }
      for (std::size_t ax = 0; ax < num_axes; ++ax) {  // 1/num_axes mutation
        if (stream.uniform(0, static_cast<std::int64_t>(num_axes) - 1) != 0) {
          continue;
        }
        child.choice[ax] = static_cast<std::size_t>(stream.uniform(
            0,
            static_cast<std::int64_t>(space_.axes()[ax].values.size()) - 1));
      }
    }
    next.push_back(std::move(child));
    ++proposed_;
  }
  pending_ = next;
  parents_ = std::move(next);
  ++generation_;
}

std::vector<Candidate> GeneticStrategy::propose(std::size_t max_batch) {
  BPVEC_CHECK(max_batch > 0);
  if (pending_cursor_ >= pending_.size()) plan_generation();
  std::vector<Candidate> out;
  while (pending_cursor_ < pending_.size() && out.size() < max_batch) {
    out.push_back(pending_[pending_cursor_++]);
  }
  return out;
}

void GeneticStrategy::observe(const std::vector<Evaluation>& batch) {
  for (const Evaluation& e : batch) {
    score_by_key_.emplace(e.key, scalarize(objectives_, e));
  }
}

// ----- factory -------------------------------------------------------

const std::vector<std::string>& strategy_tokens() {
  static const std::vector<std::string> tokens{
      "grid", "random", "hill_climb", "annealing", "genetic"};
  return tokens;
}

std::unique_ptr<SearchStrategy> make_strategy(const std::string& token,
                                              const ParamSpace& space,
                                              StrategyOptions options) {
  if (token == "grid") return std::make_unique<GridStrategy>(space);
  if (token == "random") {
    if (options.budget == 0) {
      throw Error("random strategy requires a budget (its sample count)");
    }
    return std::make_unique<RandomStrategy>(space, options.budget,
                                            options.seed);
  }
  if (token == "hill_climb") {
    return std::make_unique<HillClimbStrategy>(
        space, options.restarts, options.seed, std::move(options.objectives));
  }
  if (token == "annealing") {
    if (options.budget == 0) {
      throw Error(
          "annealing strategy requires a budget (its proposal count)");
    }
    return std::make_unique<SimulatedAnnealingStrategy>(
        space, options.restarts, options.budget, options.seed,
        std::move(options.objectives));
  }
  if (token == "genetic") {
    if (options.budget == 0) {
      throw Error("genetic strategy requires a budget (its proposal count)");
    }
    return std::make_unique<GeneticStrategy>(
        space, options.population, options.budget, options.seed,
        std::move(options.objectives));
  }
  throw Error("unknown search strategy \"" + token + "\"; expected one of " +
              common::quoted_token_list(strategy_tokens()));
}

}  // namespace bpvec::dse
