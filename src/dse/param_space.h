// ParamSpace — the typed design space behind the DSE subsystem.
//
// The paper's Fig. 4 sweeps two knobs (CVU slice width α × vector length
// L); a real accelerator search also has platform knobs (array shape,
// scratchpad, batch size, frequency) and memory knobs (bandwidth, access
// energy). A ParamSpace unifies all of them as an ordered list of typed
// axes, each naming a knob and its candidate values. A Candidate picks
// one value per axis; materialize() applies those picks to a base
// engine::Scenario (so candidates ride SimEngine::run_batch and every
// cache layer below it), and geometry() projects the CVU axes onto a
// CvuGeometry (so the Fig. 4 cost model can price the same candidate).
//
// Enumeration order is canonical: flat index → candidate is row-major
// with the *first* axis outermost. geometry_space() orders its axes
// [slice_bits, lanes], which makes grid enumeration bit-identical to
// core::design_grid — the contract SimEngine::explore_design_space and
// the legacy Fig. 4 sweep rely on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/bitslice/composition.h"
#include "src/engine/scenario.h"
#include "src/workload/generators.h"

namespace bpvec::dse {

/// Every knob a ParamSpace axis can vary. The tokens (to_string /
/// knob_from_token) deliberately match the manifest override keys
/// ("cvu_slice_bits", "bandwidth_gbps", …) so a search manifest reads
/// like a grid manifest with values pluralized into axes.
enum class Knob {
  // CVU geometry (the Fig. 4 axes).
  kCvuSliceBits,
  kCvuMaxBits,
  kCvuLanes,
  // Platform knobs (sim::AcceleratorConfig).
  kRows,
  kCols,
  kScratchpadBytes,
  kFrequencyHz,
  kTimeChunk,
  kBatchSize,
  kStaticCoreMw,
  // Memory knobs (arch::DramModel).
  kMemBandwidthGbps,
  kMemEnergyPjPerBit,
  kMemStartupLatencyNs,
  kMemBackgroundPowerW,
  // Workload knobs (workload::GeneratorSpec — the generated-network
  // family axes). Materializing a candidate that picks one of these
  // regenerates the scenario's network from the search's generator, so
  // a search can sweep depth/width/bitwidth the same way it sweeps
  // rows or bandwidth.
  kNetDepth,
  kNetWidth,
  kNetBits,  // bitwidth_policy "uniform:<bits>"
};

const char* to_string(Knob knob);

/// True for knobs whose values must be integers (bits, lanes, rows, …).
bool knob_is_integer(Knob knob);

/// Resolves a manifest token (case-insensitive, '-'/'_' ignored) to a
/// knob; nullopt when unknown.
std::optional<Knob> knob_from_token(const std::string& token);

/// Every valid knob token, in declaration order (for error messages).
const std::vector<std::string>& knob_tokens();

/// One axis: a knob and its candidate values, in search order.
struct Axis {
  Knob knob = Knob::kCvuSliceBits;
  std::vector<double> values;
};

/// One point of the space: an index into each axis's value list.
struct Candidate {
  std::vector<std::size_t> choice;  // choice[a] indexes axes()[a].values
};

class ParamSpace {
 public:
  /// Appends an axis. Throws bpvec::Error on a duplicate knob, an empty
  /// value list, or non-integral values for an integer knob.
  void add_axis(Knob knob, std::vector<double> values);

  const std::vector<Axis>& axes() const { return axes_; }
  std::size_t num_axes() const { return axes_.size(); }

  /// Cross-product cardinality (0 only for a space with no axes... a
  /// space must have ≥1 axis to be searched; axes are never empty).
  std::size_t size() const;

  /// Canonical enumeration: flat index → candidate, row-major with the
  /// first axis outermost. at(flat_index(c)) == c.
  Candidate at(std::size_t flat) const;
  std::size_t flat_index(const Candidate& c) const;

  /// The chosen value on axis `axis`.
  double value(const Candidate& c, std::size_t axis) const;
  /// The chosen value for `knob`, or nullopt when no axis varies it.
  std::optional<double> value(const Candidate& c, Knob knob) const;

  /// Order-sensitive 64-bit key over the chosen (knob, value) pairs —
  /// stable across processes; used for duplicate detection and
  /// deterministic tie-breaking in frontier ordering.
  std::uint64_t candidate_key(const Candidate& c) const;

  /// "knob=value" pairs in axis order, e.g.
  /// "cvu_slice_bits=2 cvu_lanes=16 batch_size=4".
  std::string label(const Candidate& c) const;

  /// The candidate's CVU geometry: `base` with any cvu_* axes applied.
  bitslice::CvuGeometry geometry(const Candidate& c,
                                 bitslice::CvuGeometry base) const;

  /// Applies every chosen knob to a copy of `base`, re-validates the
  /// platform config, and appends " [label]" to the scenario id (ids
  /// must be unique per candidate for reports). Throws bpvec::Error when
  /// the picks produce an invalid platform or memory system.
  ///
  /// `generator` supplies the workload family when the space has
  /// net_depth/net_width/net_bits axes: the chosen values override the
  /// spec's knobs (net_bits becomes policy "uniform:<bits>") and the
  /// regenerated network replaces base.network. A space with workload
  /// axes but no generator throws.
  engine::Scenario materialize(
      const Candidate& c, const engine::Scenario& base,
      const workload::GeneratorSpec* generator = nullptr) const;

  /// Allocation-lean materialize: writes the candidate scenario into
  /// `out` (which must not alias `base`). Copy-assignment into a reused
  /// buffer keeps the string/vector capacities of the previous candidate
  /// alive, so a search's per-candidate construction cost stops paying
  /// for fresh heap churn (ScenarioEvaluator reuses one buffer per batch
  /// slot). Identical semantics and errors to materialize().
  void materialize_into(const Candidate& c, const engine::Scenario& base,
                        const workload::GeneratorSpec* generator,
                        engine::Scenario& out) const;

 private:
  std::vector<Axis> axes_;
};

/// Formats an axis value the way labels and reports print it (integer
/// knobs without a decimal point, doubles shortest-round-trip).
std::string knob_value_string(Knob knob, double value);

/// The Fig. 4 geometry space: axes [cvu_slice_bits, cvu_lanes] plus a
/// fixed cvu_max_bits axis, in core::design_grid enumeration order.
/// Every α×L×B combination is validated eagerly (same errors, same
/// timing as core::design_grid).
ParamSpace geometry_space(const std::vector<int>& slice_widths,
                          const std::vector<int>& lanes, int max_bits = 8);

}  // namespace bpvec::dse
