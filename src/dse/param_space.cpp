#include "src/dse/param_space.h"

#include <cmath>
#include <utility>

#include "src/common/error.h"
#include "src/common/hash.h"
#include "src/common/json.h"
#include "src/common/token.h"

namespace bpvec::dse {

namespace {

struct KnobInfo {
  Knob knob;
  const char* token;
  bool integer;
};

const KnobInfo kKnobs[] = {
    {Knob::kCvuSliceBits, "cvu_slice_bits", true},
    {Knob::kCvuMaxBits, "cvu_max_bits", true},
    {Knob::kCvuLanes, "cvu_lanes", true},
    {Knob::kRows, "rows", true},
    {Knob::kCols, "cols", true},
    {Knob::kScratchpadBytes, "scratchpad_bytes", true},
    {Knob::kFrequencyHz, "frequency_hz", false},
    {Knob::kTimeChunk, "time_chunk", true},
    {Knob::kBatchSize, "batch_size", true},
    {Knob::kStaticCoreMw, "static_core_mw", false},
    {Knob::kMemBandwidthGbps, "bandwidth_gbps", false},
    {Knob::kMemEnergyPjPerBit, "energy_pj_per_bit", false},
    {Knob::kMemStartupLatencyNs, "startup_latency_ns", false},
    {Knob::kMemBackgroundPowerW, "background_power_w", false},
    {Knob::kNetDepth, "net_depth", true},
    {Knob::kNetWidth, "net_width", true},
    {Knob::kNetBits, "net_bits", true},
};

bool is_workload_knob(Knob knob) {
  return knob == Knob::kNetDepth || knob == Knob::kNetWidth ||
         knob == Knob::kNetBits;
}

const KnobInfo& info(Knob knob) {
  for (const KnobInfo& k : kKnobs) {
    if (k.knob == knob) return k;
  }
  throw Error("unknown knob enum value");
}

bool is_integral(double v) {
  return std::isfinite(v) && v == std::floor(v);
}

}  // namespace

const char* to_string(Knob knob) { return info(knob).token; }

bool knob_is_integer(Knob knob) { return info(knob).integer; }

std::optional<Knob> knob_from_token(const std::string& token) {
  const std::string norm = common::normalize_token(token);
  for (const KnobInfo& k : kKnobs) {
    if (common::normalize_token(k.token) == norm) return k.knob;
  }
  return std::nullopt;
}

const std::vector<std::string>& knob_tokens() {
  static const std::vector<std::string> tokens = [] {
    std::vector<std::string> t;
    for (const KnobInfo& k : kKnobs) t.emplace_back(k.token);
    return t;
  }();
  return tokens;
}

std::string knob_value_string(Knob knob, double value) {
  if (knob_is_integer(knob)) {
    return std::to_string(static_cast<std::int64_t>(std::llround(value)));
  }
  return common::json::format_double(value);
}

void ParamSpace::add_axis(Knob knob, std::vector<double> values) {
  for (const Axis& a : axes_) {
    if (a.knob == knob) {
      throw Error(std::string("ParamSpace: duplicate axis \"") +
                  to_string(knob) + "\"");
    }
  }
  if (values.empty()) {
    throw Error(std::string("ParamSpace: axis \"") + to_string(knob) +
                "\" has no values");
  }
  for (double v : values) {
    if (!std::isfinite(v)) {
      throw Error(std::string("ParamSpace: axis \"") + to_string(knob) +
                  "\" has a non-finite value");
    }
    if (knob_is_integer(knob) && !is_integral(v)) {
      throw Error(std::string("ParamSpace: axis \"") + to_string(knob) +
                  "\" requires integer values, got " +
                  common::json::format_double(v));
    }
  }
  axes_.push_back(Axis{knob, std::move(values)});
}

std::size_t ParamSpace::size() const {
  if (axes_.empty()) return 0;
  std::size_t n = 1;
  for (const Axis& a : axes_) {
    BPVEC_CHECK_MSG(n <= SIZE_MAX / a.values.size(),
                    "ParamSpace: cross-product size overflows");
    n *= a.values.size();
  }
  return n;
}

Candidate ParamSpace::at(std::size_t flat) const {
  BPVEC_CHECK_MSG(flat < size(), "ParamSpace: flat index out of range");
  Candidate c;
  c.choice.resize(axes_.size());
  // Row-major, first axis outermost: peel from the innermost (last) axis.
  for (std::size_t a = axes_.size(); a-- > 0;) {
    const std::size_t n = axes_[a].values.size();
    c.choice[a] = flat % n;
    flat /= n;
  }
  return c;
}

std::size_t ParamSpace::flat_index(const Candidate& c) const {
  BPVEC_CHECK(c.choice.size() == axes_.size());
  std::size_t flat = 0;
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    BPVEC_CHECK(c.choice[a] < axes_[a].values.size());
    flat = flat * axes_[a].values.size() + c.choice[a];
  }
  return flat;
}

double ParamSpace::value(const Candidate& c, std::size_t axis) const {
  BPVEC_CHECK(axis < axes_.size());
  BPVEC_CHECK(c.choice.size() == axes_.size());
  BPVEC_CHECK(c.choice[axis] < axes_[axis].values.size());
  return axes_[axis].values[c.choice[axis]];
}

std::optional<double> ParamSpace::value(const Candidate& c, Knob knob) const {
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    if (axes_[a].knob == knob) return value(c, a);
  }
  return std::nullopt;
}

std::uint64_t ParamSpace::candidate_key(const Candidate& c) const {
  common::ConfigHash h;
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    h.u64(static_cast<std::uint64_t>(axes_[a].knob));
    h.f64(value(c, a));
  }
  return h.h;
}

std::string ParamSpace::label(const Candidate& c) const {
  std::string out;
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    if (a) out += ' ';
    out += to_string(axes_[a].knob);
    out += '=';
    out += knob_value_string(axes_[a].knob, value(c, a));
  }
  return out;
}

bitslice::CvuGeometry ParamSpace::geometry(const Candidate& c,
                                           bitslice::CvuGeometry base) const {
  if (auto v = value(c, Knob::kCvuSliceBits)) {
    base.slice_bits = static_cast<int>(std::llround(*v));
  }
  if (auto v = value(c, Knob::kCvuMaxBits)) {
    base.max_bits = static_cast<int>(std::llround(*v));
  }
  if (auto v = value(c, Knob::kCvuLanes)) {
    base.lanes = static_cast<int>(std::llround(*v));
  }
  return base;
}

engine::Scenario ParamSpace::materialize(
    const Candidate& c, const engine::Scenario& base,
    const workload::GeneratorSpec* generator) const {
  engine::Scenario s;
  materialize_into(c, base, generator, s);
  return s;
}

void ParamSpace::materialize_into(const Candidate& c,
                                  const engine::Scenario& base,
                                  const workload::GeneratorSpec* generator,
                                  engine::Scenario& out) const {
  engine::Scenario& s = out;
  s = base;
  // Workload axes first: the regenerated network replaces base.network
  // wholesale, so platform/memory knob application order is unaffected.
  bool regenerate = false;
  workload::GeneratorSpec spec;
  if (generator != nullptr) spec = *generator;
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    if (!is_workload_knob(axes_[a].knob)) continue;
    if (generator == nullptr) {
      throw Error(std::string("ParamSpace: axis \"") +
                  to_string(axes_[a].knob) +
                  "\" needs a workload generator (give the search a "
                  "\"workload\" block)");
    }
    regenerate = true;
    const int v = static_cast<int>(std::llround(value(c, a)));
    // 0 means "family default" inside GeneratorSpec — on an axis it
    // would silently duplicate the default candidate under a
    // misleading label, so axis values must be explicit.
    if (v < 1) {
      throw Error(std::string("ParamSpace: axis \"") +
                  to_string(axes_[a].knob) +
                  "\" values must be positive, got " + std::to_string(v));
    }
    switch (axes_[a].knob) {
      case Knob::kNetDepth: spec.depth = v; break;
      case Knob::kNetWidth: spec.width = v; break;
      case Knob::kNetBits:
        spec.bitwidth_policy = "uniform:" + std::to_string(v);
        break;
      default: break;
    }
  }
  if (regenerate) {
    spec.name.clear();  // the derived name must encode the chosen knobs
    try {
      s.network = workload::generate(spec);
    } catch (const Error& e) {
      throw Error("ParamSpace: candidate [" + label(c) +
                  "] produces an invalid workload: " + e.what());
    }
  }
  for (std::size_t a = 0; a < axes_.size(); ++a) {
    const double v = value(c, a);
    const auto i = [&] { return static_cast<int>(std::llround(v)); };
    switch (axes_[a].knob) {
      case Knob::kCvuSliceBits: s.platform.cvu.slice_bits = i(); break;
      case Knob::kCvuMaxBits: s.platform.cvu.max_bits = i(); break;
      case Knob::kCvuLanes: s.platform.cvu.lanes = i(); break;
      case Knob::kRows: s.platform.rows = i(); break;
      case Knob::kCols: s.platform.cols = i(); break;
      case Knob::kScratchpadBytes:
        s.platform.scratchpad_bytes = static_cast<std::int64_t>(std::llround(v));
        break;
      case Knob::kFrequencyHz: s.platform.frequency_hz = v; break;
      case Knob::kTimeChunk: s.platform.time_chunk = i(); break;
      case Knob::kBatchSize: s.platform.batch_size = i(); break;
      case Knob::kStaticCoreMw: s.platform.static_core_mw = v; break;
      case Knob::kMemBandwidthGbps: s.memory.bandwidth_gbps = v; break;
      case Knob::kMemEnergyPjPerBit: s.memory.energy_pj_per_bit = v; break;
      case Knob::kMemStartupLatencyNs: s.memory.startup_latency_ns = v; break;
      case Knob::kMemBackgroundPowerW: s.memory.background_power_w = v; break;
      case Knob::kNetDepth:
      case Knob::kNetWidth:
      case Knob::kNetBits:
        break;  // applied above (network regeneration)
    }
  }
  try {
    s.platform.validate();
  } catch (const Error& e) {
    throw Error("ParamSpace: candidate [" + label(c) +
                "] produces an invalid platform: " + e.what());
  }
  if (s.memory.bandwidth_gbps <= 0 || s.memory.energy_pj_per_bit < 0 ||
      s.memory.startup_latency_ns < 0 || s.memory.background_power_w < 0) {
    throw Error("ParamSpace: candidate [" + label(c) +
                "] produces an invalid memory system");
  }
  s.id = base.id;
  s.id += " [";
  s.id += label(c);
  s.id += ']';
}

ParamSpace geometry_space(const std::vector<int>& slice_widths,
                          const std::vector<int>& lanes, int max_bits) {
  // Validate the full cross product eagerly — same errors as
  // core::design_grid on an inconsistent axis.
  for (int alpha : slice_widths) {
    for (int l : lanes) {
      bitslice::CvuGeometry g{alpha, max_bits, l};
      g.validate();
    }
  }
  ParamSpace space;
  auto to_doubles = [](const std::vector<int>& v) {
    return std::vector<double>(v.begin(), v.end());
  };
  space.add_axis(Knob::kCvuSliceBits, to_doubles(slice_widths));
  space.add_axis(Knob::kCvuLanes, to_doubles(lanes));
  space.add_axis(Knob::kCvuMaxBits, {static_cast<double>(max_bits)});
  return space;
}

}  // namespace bpvec::dse
