#include "src/dnn/quantize.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/error.h"
#include "src/common/rng.h"

namespace bpvec::dnn {
namespace {

TEST(Quantize, ValuesStayInRange) {
  Rng rng(1);
  std::vector<double> reals;
  for (int i = 0; i < 1000; ++i) reals.push_back(rng.uniform01() * 2 - 1);
  for (int bits : {2, 4, 8}) {
    const auto q = quantize_symmetric(reals, bits);
    const std::int32_t qmax = (1 << (bits - 1)) - 1;
    for (auto v : q.values) {
      EXPECT_GE(v, -qmax - 1);
      EXPECT_LE(v, qmax);
    }
  }
}

TEST(Quantize, RoundTripErrorBoundedByHalfScale) {
  Rng rng(2);
  std::vector<double> reals;
  for (int i = 0; i < 500; ++i) reals.push_back(rng.uniform01() * 10 - 5);
  const auto q = quantize_symmetric(reals, 8);
  const auto back = dequantize(q);
  for (std::size_t i = 0; i < reals.size(); ++i) {
    EXPECT_LE(std::fabs(back[i] - reals[i]), q.scale * 0.5 + 1e-12);
  }
}

TEST(Quantize, MaxMagnitudeMapsToQmax) {
  const auto q = quantize_symmetric({-2.0, 1.0, 2.0}, 4);
  EXPECT_EQ(q.values[2], 7);   // +max → qmax
  EXPECT_EQ(q.values[0], -7);  // symmetric
}

TEST(Quantize, AllZerosUseUnitScale) {
  const auto q = quantize_symmetric({0.0, 0.0}, 8);
  EXPECT_DOUBLE_EQ(q.scale, 1.0);
  EXPECT_EQ(q.values[0], 0);
}

TEST(Quantize, RejectsBadBitwidths) {
  EXPECT_THROW(quantize_symmetric({1.0}, 1), Error);
  EXPECT_THROW(quantize_symmetric({1.0}, 32), Error);
}

TEST(Requantize, ShiftRoundsToNearest) {
  EXPECT_EQ(requantize(8, 2, 8), 2);    // 8/4
  EXPECT_EQ(requantize(10, 2, 8), 3);   // 2.5 → 3
  EXPECT_EQ(requantize(9, 2, 8), 2);    // 2.25 → 2
  EXPECT_EQ(requantize(-10, 2, 8), -2); // -2.5 → -2 (round half up)
}

TEST(Requantize, SaturatesToBitwidth) {
  EXPECT_EQ(requantize(1000, 0, 8), 127);
  EXPECT_EQ(requantize(-1000, 0, 8), -128);
  EXPECT_EQ(requantize(100, 0, 4), 7);
}

class RequantizeBits : public ::testing::TestWithParam<int> {};

TEST_P(RequantizeBits, OutputAlwaysRepresentable) {
  const int bits = GetParam();
  Rng rng(static_cast<std::uint64_t>(bits));
  const std::int64_t lo = -(std::int64_t{1} << (bits - 1));
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  for (int i = 0; i < 1000; ++i) {
    const auto acc = rng.uniform(-1'000'000, 1'000'000);
    const auto v = requantize(acc, static_cast<int>(rng.uniform(0, 12)), bits);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, RequantizeBits, ::testing::Values(2, 4, 8, 16));

}  // namespace
}  // namespace bpvec::dnn
