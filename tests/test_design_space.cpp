#include "src/core/design_space.h"

#include <gtest/gtest.h>

#include "src/common/error.h"

namespace bpvec::core {
namespace {

TEST(DesignSpace, ExploresFullGrid) {
  const auto points = explore_design_space({1, 2}, {1, 2, 4, 8, 16});
  EXPECT_EQ(points.size(), 10u);
  for (const auto& p : points) {
    EXPECT_GT(p.cost.power_total(), 0.0);
    EXPECT_GT(p.cost.area_total(), 0.0);
  }
}

TEST(MixUtilization, HomogeneousModesFullyUtilize) {
  const bitslice::CvuGeometry g{2, 8, 16};
  EXPECT_DOUBLE_EQ(mix_utilization(g, {{8, 8, 1.0}}), 1.0);
  EXPECT_DOUBLE_EQ(mix_utilization(g, {{4, 4, 1.0}}), 1.0);
  EXPECT_DOUBLE_EQ(mix_utilization(g, {{2, 2, 1.0}}), 1.0);
}

TEST(MixUtilization, FourBitSlicingWastesOnTwoBitLayers) {
  const bitslice::CvuGeometry g4{4, 8, 16};
  // A 2-bit layer on 4-bit slices pads to 4 bits: computes at quarter
  // efficiency though all NBVEs are "busy" — captured as full utilization
  // of engines but lost boost. The utilization metric sees idle engines
  // only for non-dividing pair counts; the padding waste shows up as a
  // lower boost. Verify the boost loss:
  const auto plan2 = bitslice::plan_composition(g4, 2, 2);
  const auto plan2_on2 =
      bitslice::plan_composition(bitslice::CvuGeometry{2, 8, 16}, 2, 2);
  EXPECT_EQ(plan2.clusters, 4);       // 4-bit slices: only 4× boost
  EXPECT_EQ(plan2_on2.clusters, 16);  // 2-bit slices: full 16×
}

TEST(MixUtilization, WeightedAverage) {
  const bitslice::CvuGeometry g{2, 8, 16};
  // 6-bit layers use 9/16 engines; an even mix with 8-bit gives the mean.
  const double u =
      mix_utilization(g, {{6, 6, 1.0}, {8, 8, 1.0}});
  EXPECT_NEAR(u, (9.0 / 16.0 + 1.0) / 2.0, 1e-12);
}

TEST(MixUtilization, RejectsEmptyMix) {
  EXPECT_THROW(mix_utilization({2, 8, 16}, {}), Error);
}

TEST(BestDesign, PicksTwoBitSixteenLanes) {
  // The paper's conclusion (§III-B): over the Table-I bitwidth mix, the
  // optimum is α = 2, L = 16.
  const auto points = explore_design_space({1, 2, 4}, {1, 2, 4, 8, 16});
  const std::vector<BitwidthMixEntry> mix{
      {8, 8, 0.2}, {4, 4, 0.7}, {8, 2, 0.1}};
  const auto best = best_design(points, mix);
  EXPECT_EQ(best.geometry.slice_bits, 2);
  EXPECT_EQ(best.geometry.lanes, 16);
}

TEST(BestDesign, UtilizationBarFiltersDesigns) {
  const auto points = explore_design_space({2, 4}, {16});
  // A mix of 6-bit layers wastes bit-work on 4-bit slicing (pads to 8)
  // *and* on 2-bit slicing (9 of 16 engines); with the bar at 1.0 nothing
  // survives.
  const std::vector<BitwidthMixEntry> mix{{6, 6, 1.0}};
  EXPECT_THROW(best_design(points, mix, 1.0), Error);
  // Relaxing the bar admits both (each at 36/64 bit-efficiency); at equal
  // efficiency the cheaper 4-bit slicing wins the score.
  const auto best = best_design(points, mix, 0.5);
  EXPECT_EQ(best.geometry.slice_bits, 4);
  EXPECT_NEAR(best.mix_utilization, 36.0 / 64.0, 1e-12);
}

TEST(BestDesign, TwoBitMixDisqualifiesFourBitSlicing) {
  // With 2-bit layers in the mix (the deep-quantized regime the paper
  // targets), 4-bit slicing pads 2→4 and wastes 3/4 of every product.
  const auto points = explore_design_space({2, 4}, {16});
  const std::vector<BitwidthMixEntry> mix{{2, 2, 1.0}};
  const auto best = best_design(points, mix, 0.9);
  EXPECT_EQ(best.geometry.slice_bits, 2);
}

TEST(BestDesign, RejectsEmptyPointSet) {
  EXPECT_THROW(best_design({}, {{8, 8, 1.0}}), Error);
}

TEST(BestDesign, EmptyPointSetErrorIsDocumented) {
  try {
    (void)best_design({}, {{8, 8, 1.0}});
    FAIL() << "expected bpvec::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("best_design: empty point set"),
              std::string::npos)
        << e.what();
  }
}

TEST(BestDesign, AllPointsBelowTheBarErrorNamesFloorAndBest) {
  // 6-bit operands on 2-bit slices use 9/16 engines — nothing reaches a
  // 0.99 floor, and the error must say how close the best point came.
  const auto points = explore_design_space({2}, {16});
  try {
    (void)best_design(points, {{6, 6, 1.0}}, 0.99);
    FAIL() << "expected bpvec::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no design point meets min_utilization"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("0.99"), std::string::npos) << what;
    EXPECT_NE(what.find("best utilization"), std::string::npos) << what;
  }
}

TEST(BestDesign, RejectsEmptyMix) {
  const auto points = explore_design_space({2}, {16});
  EXPECT_THROW(best_design(points, {}), Error);
}

TEST(BestDesign, NoPointMeetsTheUtilizationFloor) {
  // 6-bit operands on 2-bit slices use 9/16 engines; demanding a 0.99
  // floor over a single-point sweep leaves nothing.
  const auto points = explore_design_space({2}, {16});
  EXPECT_THROW(best_design(points, {{6, 6, 1.0}}, 0.99), Error);
}

TEST(DesignSpace, SinglePointSweep) {
  const auto points = explore_design_space({2}, {16});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].geometry.slice_bits, 2);
  EXPECT_EQ(points[0].geometry.lanes, 16);
  // best_design over one admissible point returns it.
  const auto best = best_design(points, {{8, 8, 1.0}});
  EXPECT_EQ(best.geometry.lanes, 16);
  EXPECT_DOUBLE_EQ(best.mix_utilization, 1.0);
}

TEST(DesignSpace, EmptyAxesGiveEmptyGrid) {
  EXPECT_TRUE(explore_design_space({}, {1, 2, 4}).empty());
  EXPECT_TRUE(explore_design_space({1, 2}, {}).empty());
  EXPECT_TRUE(design_grid({}, {}).empty());
}

TEST(DesignSpace, GridMatchesExploreOrder) {
  const std::vector<int> alphas{1, 2};
  const std::vector<int> lanes{1, 4, 16};
  const auto grid = design_grid(alphas, lanes);
  const auto points = explore_design_space(alphas, lanes);
  ASSERT_EQ(grid.size(), points.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid[i].slice_bits, points[i].geometry.slice_bits);
    EXPECT_EQ(grid[i].lanes, points[i].geometry.lanes);
  }
}

TEST(DesignSpace, PricePointMatchesExplore) {
  const auto points = explore_design_space({1, 2}, {1, 2, 4, 8, 16});
  for (const auto& p : points) {
    const auto repriced = price_design_point(p.geometry);
    EXPECT_EQ(repriced.cost.power_total(), p.cost.power_total());
    EXPECT_EQ(repriced.cost.area_total(), p.cost.area_total());
  }
}

TEST(DesignSpace, PricePointWithMixFillsUtilization) {
  const std::vector<BitwidthMixEntry> mix{{6, 6, 1.0}};
  const auto p = price_design_point(bitslice::CvuGeometry{2, 8, 16}, mix);
  EXPECT_NEAR(p.mix_utilization, 9.0 / 16.0, 1e-12);
}

TEST(DesignSpace, InvalidGeometryInGridThrows) {
  // 3 does not divide 8 — geometry validation must reject the axis.
  EXPECT_THROW(design_grid({3}, {16}), Error);
}

}  // namespace
}  // namespace bpvec::core
