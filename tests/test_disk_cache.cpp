// DiskCache tests: serialization round trips (JSON and packed binary),
// hit/miss accounting, corrupt-shard tolerance, format-version and
// registry-generation invalidation, one-shard-per-batch sealing,
// compaction/migration/inspection, concurrent writers, and — the
// contract everything else leans on — run_batch bit-identity with the
// disk cache off, cold, and warm.
#include "src/engine/disk_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "src/common/error.h"
#include "src/common/json.h"
#include "src/dnn/model_zoo.h"
#include "src/engine/scenario.h"
#include "src/engine/sim_engine.h"
#include "src/sim/simulator.h"
#include "tests/run_result_identical.h"

namespace bpvec::engine {
namespace {

namespace fs = std::filesystem;

/// Fresh cache directory per test, removed on teardown. Lives under the
/// working directory (the build tree), not /tmp, so parallel ctest
/// shards with different working directories cannot collide.
class DiskCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "disk_cache_test_" +
           std::string(::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// The shard files currently in the directory, sorted.
  std::vector<std::string> shard_files() const {
    std::vector<std::string> files;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("shard-", 0) == 0) files.push_back(name);
    }
    std::sort(files.begin(), files.end());
    return files;
  }

  std::string dir_;
};

sim::RunResult sample_result() {
  const auto config = sim::bpvec_accelerator();
  return sim::Simulator(config, arch::ddr4())
      .run(dnn::make_alexnet(dnn::BitwidthMode::kHeterogeneous));
}

/// A second result distinguishable from sample_result() bit-for-bit.
sim::RunResult other_result() {
  sim::RunResult r = sample_result();
  r.runtime_s += 1.0;
  return r;
}

TEST_F(DiskCacheTest, JsonSerializationIsTheIdentity) {
  const sim::RunResult original = sample_result();
  const sim::RunResult round_tripped = run_result_from_json(
      common::json::parse(run_result_to_json(original).dump(1)));
  expect_bit_identical(original, round_tripped);
}

TEST_F(DiskCacheTest, BinarySerializationIsTheIdentity) {
  const sim::RunResult original = sample_result();
  common::binio::Writer w;
  run_result_encode(w, original);
  common::binio::Reader r(w.bytes().data(), w.size());
  const sim::RunResult round_tripped = run_result_decode(r);
  EXPECT_TRUE(r.done());
  expect_bit_identical(original, round_tripped);
}

TEST_F(DiskCacheTest, StoreThenLoadIsBitIdentical) {
  DiskCache cache(dir_);
  const sim::RunResult original = sample_result();
  ASSERT_TRUE(cache.store(/*key=*/42, /*generation=*/7, original));
  const auto loaded = cache.load(42, 7);
  ASSERT_NE(loaded, nullptr);
  expect_bit_identical(original, *loaded);
  const DiskCacheStats s = cache.stats();
  EXPECT_EQ(s.stores, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_EQ(s.shards, 1u);
  EXPECT_EQ(s.records, 1u);
}

TEST_F(DiskCacheTest, AbsentKeyIsAMiss) {
  DiskCache cache(dir_);
  EXPECT_EQ(cache.load(1234, 1), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST_F(DiskCacheTest, EntriesSurviveTheCacheObject) {
  const sim::RunResult original = sample_result();
  {
    DiskCache cache(dir_);
    ASSERT_TRUE(cache.store(9, 3, original));
  }
  DiskCache reopened(dir_);  // fresh object, same directory
  const auto loaded = reopened.load(9, 3);
  ASSERT_NE(loaded, nullptr);
  expect_bit_identical(original, *loaded);
}

TEST_F(DiskCacheTest, StoreBatchSealsOneShard) {
  DiskCache cache(dir_);
  const sim::RunResult a = sample_result();
  const sim::RunResult b = other_result();
  const std::vector<DiskCache::PendingStore> pending{
      {1, 1, &a}, {2, 1, &b}, {3, 1, &a}};
  EXPECT_EQ(cache.store_batch(pending), 3u);
  EXPECT_EQ(shard_files().size(), 1u);  // one seal, not one file per entry
  const DiskCacheStats s = cache.stats();
  EXPECT_EQ(s.shards, 1u);
  EXPECT_EQ(s.records, 3u);
  EXPECT_EQ(s.file_opens, 1u);  // the seal; loads reuse the open fd
  for (const std::uint64_t key : {1u, 2u, 3u}) {
    ASSERT_NE(cache.load(key, 1), nullptr) << "key " << key;
  }
  EXPECT_EQ(cache.stats().file_opens, 1u);
}

TEST_F(DiskCacheTest, WarmReopenIsOneFileOpenPerShard) {
  {
    DiskCache cache(dir_);
    const sim::RunResult r = sample_result();
    std::vector<DiskCache::PendingStore> pending;
    for (std::uint64_t key = 0; key < 20; ++key) {
      pending.push_back({key, 1, &r});
    }
    ASSERT_EQ(cache.store_batch(pending), 20u);
  }
  DiskCache warm(dir_);
  EXPECT_EQ(warm.stats().file_opens, 1u);  // the scan; v2 paid one per key
  for (std::uint64_t key = 0; key < 20; ++key) {
    ASSERT_NE(warm.load(key, 1), nullptr);
  }
  EXPECT_EQ(warm.stats().file_opens, 1u);
}

TEST_F(DiskCacheTest, LastWriterWinsAcrossShards) {
  const sim::RunResult first = sample_result();
  const sim::RunResult second = other_result();
  DiskCache cache(dir_);
  ASSERT_TRUE(cache.store(5, 1, first));
  ASSERT_TRUE(cache.store(5, 1, second));  // a later shard, same key
  const auto live = cache.load(5, 1);
  ASSERT_NE(live, nullptr);
  expect_bit_identical(second, *live);
  // The reopened index resolves the duplicate the same way.
  DiskCache reopened(dir_);
  const auto reloaded = reopened.load(5, 1);
  ASSERT_NE(reloaded, nullptr);
  expect_bit_identical(second, *reloaded);
}

TEST_F(DiskCacheTest, ChecksumRejectsAFlippedByte) {
  DiskCache cache(dir_);
  const sim::RunResult original = sample_result();
  ASSERT_TRUE(cache.store(5, 1, original));
  const std::string shard = cache.shard_paths().at(0);

  // Flip one payload byte in place (header is 8 bytes, then the u32
  // record length; +6 lands inside the record's key field).
  {
    std::fstream f(shard, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(8 + 4 + 6);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(8 + 4 + 6);
    f.write(&byte, 1);
  }
  // The open cache catches it at load time (pread + checksum)...
  EXPECT_EQ(cache.load(5, 1), nullptr);
  EXPECT_GE(cache.stats().rejected, 1u);
  // ...and a store heals the key via a fresh shard.
  ASSERT_TRUE(cache.store(5, 1, original));
  const auto healed = cache.load(5, 1);
  ASSERT_NE(healed, nullptr);
  expect_bit_identical(original, *healed);

  // A fresh scan rejects the corrupt record and serves the healed shard.
  DiskCache reopened(dir_);
  EXPECT_GE(reopened.stats().rejected, 1u);
  const auto reloaded = reopened.load(5, 1);
  ASSERT_NE(reloaded, nullptr);
  expect_bit_identical(original, *reloaded);
}

TEST_F(DiskCacheTest, GarbageShardIsRejectedAndNeverOverwritten) {
  fs::create_directories(dir_);
  const std::string garbage_path = dir_ + "/shard-0007.bpc";
  {
    std::ofstream out(garbage_path, std::ios::binary);
    out << "this is not a shard";
  }
  DiskCache cache(dir_);
  EXPECT_EQ(cache.stats().rejected, 1u);
  EXPECT_EQ(cache.stats().shards, 0u);
  // A store publishes ABOVE the garbage file's claimed number.
  ASSERT_TRUE(cache.store(1, 1, sample_result()));
  EXPECT_NE(cache.load(1, 1), nullptr);
  const std::vector<std::string> files = shard_files();
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], "shard-0007.bpc");
  EXPECT_EQ(files[1], "shard-0008.bpc");
  std::string still_garbage;
  {
    std::ifstream in(garbage_path, std::ios::binary);
    std::getline(in, still_garbage);
  }
  EXPECT_EQ(still_garbage, "this is not a shard");
}

TEST_F(DiskCacheTest, TruncatedShardRejectsItsTail) {
  {
    DiskCache cache(dir_);
    ASSERT_TRUE(cache.store(5, 1, sample_result()));
  }
  const std::string shard = dir_ + "/" + shard_files().at(0);
  fs::resize_file(shard, fs::file_size(shard) - 4);  // torn final record
  DiskCache reopened(dir_);
  EXPECT_GE(reopened.stats().rejected, 1u);
  EXPECT_EQ(reopened.load(5, 1), nullptr);  // a miss, not a crash
}

TEST_F(DiskCacheTest, RefusesToStoreNonFiniteResults) {
  // A non-finite metric means the scenario itself is broken; persisting
  // it would serve the poison to every later run.
  DiskCache cache(dir_);
  sim::RunResult r = sample_result();
  r.gops_per_w = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(cache.store(8, 1, r));
  EXPECT_EQ(cache.stats().store_failures, 1u);
  EXPECT_TRUE(shard_files().empty());
  r.gops_per_w = 0.0;
  r.layers.front().utilization = std::nan("");
  EXPECT_FALSE(cache.store(8, 1, r));
  EXPECT_EQ(cache.stats().store_failures, 2u);
  EXPECT_EQ(cache.load(8, 1), nullptr);  // a miss, not a poisoned entry
}

TEST_F(DiskCacheTest, RejectsStaleGenerations) {
  DiskCache cache(dir_);
  ASSERT_TRUE(cache.store(6, /*generation=*/1, sample_result()));
  // Same key, different registration stamp — e.g. the backend was
  // re-registered with different knobs since the record was written.
  EXPECT_EQ(cache.load(6, /*generation=*/2), nullptr);
  EXPECT_EQ(cache.stats().rejected, 1u);
  EXPECT_NE(cache.load(6, 1), nullptr);
}

TEST_F(DiskCacheTest, ConcurrentWritersNeverTearARecord) {
  DiskCache cache(dir_);
  const sim::RunResult original = sample_result();
  constexpr int kWriters = 8;
  constexpr int kRounds = 8;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&cache, &original] {
      for (int r = 0; r < kRounds; ++r) {
        cache.store(77, 1, original);
        // Interleave loads: a reader must only ever see a complete
        // record (shards are sealed before link(2) publishes them) —
        // nullptr would count as rejected.
        const auto loaded = cache.load(77, 1);
        ASSERT_NE(loaded, nullptr);
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(cache.stats().rejected, 0u);
  EXPECT_EQ(cache.stats().stores,
            static_cast<std::size_t>(kWriters) * kRounds);
  const auto final_load = cache.load(77, 1);
  ASSERT_NE(final_load, nullptr);
  expect_bit_identical(original, *final_load);
}

// ----- maintenance ---------------------------------------------------

TEST_F(DiskCacheTest, CompactMergesShardsAndKeepsLiveRecords) {
  const sim::RunResult first = sample_result();
  const sim::RunResult second = other_result();
  {
    DiskCache cache(dir_);
    ASSERT_TRUE(cache.store(1, 1, first));
    ASSERT_TRUE(cache.store(2, 1, first));
    ASSERT_TRUE(cache.store(2, 1, second));  // supersedes the key-2 record
  }
  const CacheDirInfo before = inspect_cache_dir(dir_);
  EXPECT_EQ(before.shards.size(), 3u);
  EXPECT_EQ(before.records_total, 3u);
  EXPECT_EQ(before.live_records, 2u);

  const CompactResult r = compact_cache_dir(dir_);
  EXPECT_EQ(r.shards_before, 3u);
  EXPECT_EQ(r.shards_after, 1u);
  EXPECT_EQ(r.records_kept, 2u);
  EXPECT_EQ(r.records_dropped, 1u);
  EXPECT_EQ(shard_files().size(), 1u);

  // Compaction copies record payloads verbatim: loads are unchanged.
  DiskCache compacted(dir_);
  const auto one = compacted.load(1, 1);
  const auto two = compacted.load(2, 1);
  ASSERT_NE(one, nullptr);
  ASSERT_NE(two, nullptr);
  expect_bit_identical(first, *one);
  expect_bit_identical(second, *two);
}

TEST_F(DiskCacheTest, MigratesV2EntriesIntoAShard) {
  fs::create_directories(dir_);
  const sim::RunResult a = sample_result();
  const sim::RunResult b = other_result();
  (void)write_v2_entry(dir_, 11, 1, a);
  (void)write_v2_entry(dir_, 12, 1, b);
  {
    std::ofstream out(dir_ + "/not-an-entry.json");
    out << "{\"broken\": true}";
  }
  EXPECT_EQ(inspect_cache_dir(dir_).v2_files, 3u);

  const MigrateResult r = migrate_v2_cache_dir(dir_);
  EXPECT_EQ(r.migrated, 2u);
  EXPECT_EQ(r.failed, 1u);  // the broken file stays in place
  const CacheDirInfo after = inspect_cache_dir(dir_);
  EXPECT_EQ(after.v2_files, 1u);
  EXPECT_EQ(after.live_records, 2u);

  DiskCache cache(dir_);
  const auto eleven = cache.load(11, 1);
  const auto twelve = cache.load(12, 1);
  ASSERT_NE(eleven, nullptr);
  ASSERT_NE(twelve, nullptr);
  expect_bit_identical(a, *eleven);
  expect_bit_identical(b, *twelve);
}

TEST_F(DiskCacheTest, V2EntryRoundTrips) {
  fs::create_directories(dir_);
  const sim::RunResult original = sample_result();
  const std::string path = write_v2_entry(dir_, 99, 4, original);
  const V2Entry entry = load_v2_entry(path);
  EXPECT_EQ(entry.key, 99u);
  EXPECT_EQ(entry.generation, 4u);
  expect_bit_identical(original, entry.result);
}

// ----- engine integration --------------------------------------------

std::vector<Scenario> mixed_batch() {
  std::vector<Scenario> batch;
  for (const auto& net :
       {dnn::make_alexnet(dnn::BitwidthMode::kHeterogeneous),
        dnn::make_rnn(dnn::BitwidthMode::kHomogeneous8b)}) {
    batch.push_back(
        make_scenario(Platform::kTpuLike, core::Memory::kDdr4, net));
    batch.push_back(
        make_scenario(Platform::kBpvec, core::Memory::kHbm2, net));
    batch.push_back(make_scenario("bit_serial", Platform::kBpvec,
                                  core::Memory::kDdr4, net));
  }
  batch.push_back(
      make_gpu_scenario(dnn::make_resnet18(dnn::BitwidthMode::kHomogeneous8b)));
  return batch;
}

TEST_F(DiskCacheTest, RunBatchIsBitIdenticalColdWarmAndOff) {
  const auto batch = mixed_batch();

  EngineOptions off;
  off.num_threads = 2;
  const auto baseline = SimEngine(off).run_batch(batch);

  EngineOptions with_disk = off;
  with_disk.disk_cache_dir = dir_;

  // Cold: every scenario misses the disk, prices, and is persisted —
  // the whole batch sealed into ONE shard (one file open).
  SimEngine cold(with_disk);
  const auto cold_results = cold.run_batch(batch);
  const EngineStats cold_stats = cold.stats();
  EXPECT_EQ(cold_stats.disk_hits, 0u);
  EXPECT_EQ(cold_stats.disk_misses, batch.size());
  EXPECT_EQ(cold_stats.disk_stores, batch.size());
  EXPECT_EQ(cold_stats.disk_file_opens, 1u);
  EXPECT_EQ(cold_stats.simulations_run, batch.size());
  EXPECT_EQ(shard_files().size(), 1u);

  // Warm, new engine (fresh memo caches, same directory): every scenario
  // is served from disk off the one scanned shard, nothing simulates.
  SimEngine warm(with_disk);
  const auto warm_results = warm.run_batch(batch);
  const EngineStats warm_stats = warm.stats();
  EXPECT_EQ(warm_stats.disk_hits, batch.size());
  EXPECT_EQ(warm_stats.simulations_run, 0u);
  EXPECT_EQ(warm_stats.layers_priced, 0u);
  EXPECT_EQ(warm_stats.disk_file_opens, 1u);  // the scan — not one per key
  // The invariant the header promises.
  EXPECT_EQ(warm_stats.simulations_run + warm_stats.cache_hits +
                warm_stats.disk_hits,
            warm_stats.scenarios_submitted);

  ASSERT_EQ(cold_results.size(), baseline.size());
  ASSERT_EQ(warm_results.size(), baseline.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    expect_bit_identical(baseline[i], cold_results[i]);
    expect_bit_identical(baseline[i], warm_results[i]);
  }
}

TEST_F(DiskCacheTest, MemoCacheSitsAboveTheDiskCache) {
  const auto batch = mixed_batch();
  EngineOptions opts;
  opts.num_threads = 2;
  opts.disk_cache_dir = dir_;
  SimEngine eng(opts);
  (void)eng.run_batch(batch);
  // Second submission on the same engine: the in-memory scenario cache
  // answers; the disk is not even probed.
  (void)eng.run_batch(batch);
  const EngineStats s = eng.stats();
  EXPECT_EQ(s.cache_hits, batch.size());
  EXPECT_EQ(s.disk_hits, 0u);
  EXPECT_EQ(s.disk_misses, batch.size());  // from the first run only
}

TEST_F(DiskCacheTest, DiskHitsFeedTheMemoCache) {
  const auto batch = mixed_batch();
  EngineOptions opts;
  opts.num_threads = 2;
  opts.disk_cache_dir = dir_;
  (void)SimEngine(opts).run_batch(batch);  // populate the directory

  SimEngine warm(opts);
  (void)warm.run_batch(batch);  // all from disk
  (void)warm.run_batch(batch);  // all from the memo cache now
  const EngineStats s = warm.stats();
  EXPECT_EQ(s.disk_hits, batch.size());
  EXPECT_EQ(s.cache_hits, batch.size());
  EXPECT_EQ(s.simulations_run, 0u);
}

TEST_F(DiskCacheTest, CorruptedShardRepricesAndHeals) {
  const auto batch = mixed_batch();
  EngineOptions opts;
  opts.num_threads = 2;
  opts.disk_cache_dir = dir_;
  (void)SimEngine(opts).run_batch(batch);

  // Vandalize every shard in the directory.
  for (const std::string& name : shard_files()) {
    std::ofstream out(dir_ + "/" + name, std::ios::trunc);
    out << "{\"broken\": true}";
  }
  SimEngine healed(opts);
  const auto results = healed.run_batch(batch);
  const EngineStats s = healed.stats();
  EXPECT_GE(s.disk_rejected, 1u);  // one reject per vandalized shard
  EXPECT_EQ(s.simulations_run, batch.size());  // all repriced
  EXPECT_EQ(s.disk_stores, batch.size());      // and re-persisted

  // The healed records serve the next engine.
  SimEngine warm(opts);
  const auto warm_results = warm.run_batch(batch);
  EXPECT_EQ(warm.stats().disk_hits, batch.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    expect_bit_identical(results[i], warm_results[i]);
  }
}

TEST_F(DiskCacheTest, ClearCacheLeavesTheDiskAlone) {
  const auto batch = mixed_batch();
  EngineOptions opts;
  opts.num_threads = 2;
  opts.disk_cache_dir = dir_;
  SimEngine eng(opts);
  (void)eng.run_batch(batch);
  eng.clear_cache();  // drops memo caches only
  (void)eng.run_batch(batch);
  const EngineStats s = eng.stats();
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(s.disk_hits, batch.size());  // disk survived
  EXPECT_EQ(s.simulations_run, batch.size());
}

TEST_F(DiskCacheTest, ConcurrentEnginesShareADirectorySafely) {
  // Two engines (standing in for two processes — same code path, the
  // atomicity comes from sealed-then-link publication) hammer one
  // directory concurrently.
  const auto batch = mixed_batch();
  EngineOptions opts;
  opts.num_threads = 2;
  opts.disk_cache_dir = dir_;
  SimEngine a(opts), b(opts);
  std::vector<sim::RunResult> ra, rb;
  std::thread ta([&] { ra = a.run_batch(batch); });
  std::thread tb([&] { rb = b.run_batch(batch); });
  ta.join();
  tb.join();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    expect_bit_identical(ra[i], rb[i]);
  }
  // Nothing torn was ever observed.
  EXPECT_EQ(a.stats().disk_rejected + b.stats().disk_rejected, 0u);
}

TEST_F(DiskCacheTest, RejectsUnusableDirectory) {
  EXPECT_THROW(DiskCache(""), Error);
  // A path through a regular file cannot become a directory.
  {
    std::ofstream out(dir_, std::ios::trunc);
    out << "i am a file";
  }
  EXPECT_THROW(DiskCache(dir_ + "/sub"), Error);
  fs::remove(dir_);
}

}  // namespace
}  // namespace bpvec::engine
