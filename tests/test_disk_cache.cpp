// DiskCache tests: serialization round trips, hit/miss accounting,
// corrupted-entry tolerance, format-version and registry-generation
// invalidation, concurrent writers, and — the contract everything else
// leans on — run_batch bit-identity with the disk cache off, cold, and
// warm.
#include "src/engine/disk_cache.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "src/common/error.h"
#include "src/common/json.h"
#include "src/dnn/model_zoo.h"
#include "src/engine/scenario.h"
#include "src/engine/sim_engine.h"
#include "src/sim/simulator.h"
#include "tests/run_result_identical.h"

namespace bpvec::engine {
namespace {

namespace fs = std::filesystem;

/// Fresh cache directory per test, removed on teardown. Lives under the
/// working directory (the build tree), not /tmp, so parallel ctest
/// shards with different working directories cannot collide.
class DiskCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "disk_cache_test_" +
           std::string(::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

sim::RunResult sample_result() {
  const auto config = sim::bpvec_accelerator();
  return sim::Simulator(config, arch::ddr4())
      .run(dnn::make_alexnet(dnn::BitwidthMode::kHeterogeneous));
}

TEST_F(DiskCacheTest, JsonSerializationIsTheIdentity) {
  const sim::RunResult original = sample_result();
  const sim::RunResult round_tripped = run_result_from_json(
      common::json::parse(run_result_to_json(original).dump(1)));
  expect_bit_identical(original, round_tripped);
}

TEST_F(DiskCacheTest, StoreThenLoadIsBitIdentical) {
  DiskCache cache(dir_);
  const sim::RunResult original = sample_result();
  ASSERT_TRUE(cache.store(/*key=*/42, /*generation=*/7, original));
  const auto loaded = cache.load(42, 7);
  ASSERT_NE(loaded, nullptr);
  expect_bit_identical(original, *loaded);
  const DiskCacheStats s = cache.stats();
  EXPECT_EQ(s.stores, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.rejected, 0u);
}

TEST_F(DiskCacheTest, AbsentKeyIsAMiss) {
  DiskCache cache(dir_);
  EXPECT_EQ(cache.load(1234, 1), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST_F(DiskCacheTest, EntriesSurviveTheCacheObject) {
  const sim::RunResult original = sample_result();
  {
    DiskCache cache(dir_);
    ASSERT_TRUE(cache.store(9, 3, original));
  }
  DiskCache reopened(dir_);  // fresh object, same directory
  const auto loaded = reopened.load(9, 3);
  ASSERT_NE(loaded, nullptr);
  expect_bit_identical(original, *loaded);
}

TEST_F(DiskCacheTest, ToleratesCorruptedEntries) {
  DiskCache cache(dir_);
  const sim::RunResult original = sample_result();
  ASSERT_TRUE(cache.store(5, 1, original));

  const std::string corruptions[] = {
      "",                        // empty file
      "not json at all {{{",     // unparseable
      "{\"format_version\": 1}"  // parseable, fields missing
  };
  for (const std::string& garbage : corruptions) {
    {
      std::ofstream out(cache.entry_path(5), std::ios::trunc);
      out << garbage;
    }
    EXPECT_EQ(cache.load(5, 1), nullptr) << "garbage: " << garbage;
  }
  // Truncated valid entry (torn write without the atomic rename).
  {
    const std::string full =
        common::json::parse_file(cache.entry_path(5)).dump();
    std::ofstream out(cache.entry_path(5), std::ios::trunc);
    out << full.substr(0, full.size() / 2);
  }
  EXPECT_EQ(cache.load(5, 1), nullptr);
  EXPECT_EQ(cache.stats().rejected, 4u);
  // A store overwrites the corpse and the key works again.
  ASSERT_TRUE(cache.store(5, 1, original));
  EXPECT_NE(cache.load(5, 1), nullptr);
}

TEST_F(DiskCacheTest, RefusesToStoreNonFiniteResults) {
  // JSON cannot represent inf/nan bit-exactly; storing such a result
  // would make its key a permanent reject-and-reprice loop.
  DiskCache cache(dir_);
  sim::RunResult r = sample_result();
  r.gops_per_w = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(cache.store(8, 1, r));
  EXPECT_EQ(cache.stats().store_failures, 1u);
  EXPECT_FALSE(fs::exists(cache.entry_path(8)));
  r.gops_per_w = 0.0;
  r.layers.front().utilization = std::nan("");
  EXPECT_FALSE(cache.store(8, 1, r));
  EXPECT_EQ(cache.load(8, 1), nullptr);  // a miss, not a poisoned entry
}

TEST_F(DiskCacheTest, RejectsForeignFormatVersions) {
  DiskCache cache(dir_);
  ASSERT_TRUE(cache.store(6, 1, sample_result()));
  // Patch the recorded version: a file from a future (or ancient) build.
  auto entry = common::json::parse_file(cache.entry_path(6));
  entry.set("format_version", DiskCache::kFormatVersion + 1);
  {
    std::ofstream out(cache.entry_path(6), std::ios::trunc);
    out << entry.dump(1);
  }
  EXPECT_EQ(cache.load(6, 1), nullptr);
  EXPECT_EQ(cache.stats().rejected, 1u);
}

TEST_F(DiskCacheTest, RejectsStaleGenerations) {
  DiskCache cache(dir_);
  ASSERT_TRUE(cache.store(6, /*generation=*/1, sample_result()));
  // Same key, different registration stamp — e.g. the backend was
  // re-registered with different knobs since the entry was written.
  EXPECT_EQ(cache.load(6, /*generation=*/2), nullptr);
  EXPECT_EQ(cache.stats().rejected, 1u);
  EXPECT_NE(cache.load(6, 1), nullptr);
}

TEST_F(DiskCacheTest, ConcurrentWritersNeverTearAnEntry) {
  DiskCache cache(dir_);
  const sim::RunResult original = sample_result();
  constexpr int kWriters = 8;
  constexpr int kRounds = 16;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&cache, &original] {
      for (int r = 0; r < kRounds; ++r) {
        cache.store(77, 1, original);
        // Interleave loads: a reader must only ever see a complete
        // entry (rename is atomic) — nullptr would count as rejected.
        const auto loaded = cache.load(77, 1);
        ASSERT_NE(loaded, nullptr);
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(cache.stats().rejected, 0u);
  EXPECT_EQ(cache.stats().stores,
            static_cast<std::size_t>(kWriters) * kRounds);
  const auto final_load = cache.load(77, 1);
  ASSERT_NE(final_load, nullptr);
  expect_bit_identical(original, *final_load);
}

// ----- engine integration --------------------------------------------

std::vector<Scenario> mixed_batch() {
  std::vector<Scenario> batch;
  for (const auto& net :
       {dnn::make_alexnet(dnn::BitwidthMode::kHeterogeneous),
        dnn::make_rnn(dnn::BitwidthMode::kHomogeneous8b)}) {
    batch.push_back(
        make_scenario(Platform::kTpuLike, core::Memory::kDdr4, net));
    batch.push_back(
        make_scenario(Platform::kBpvec, core::Memory::kHbm2, net));
    batch.push_back(make_scenario("bit_serial", Platform::kBpvec,
                                  core::Memory::kDdr4, net));
  }
  batch.push_back(
      make_gpu_scenario(dnn::make_resnet18(dnn::BitwidthMode::kHomogeneous8b)));
  return batch;
}

TEST_F(DiskCacheTest, RunBatchIsBitIdenticalColdWarmAndOff) {
  const auto batch = mixed_batch();

  EngineOptions off;
  off.num_threads = 2;
  const auto baseline = SimEngine(off).run_batch(batch);

  EngineOptions with_disk = off;
  with_disk.disk_cache_dir = dir_;

  // Cold: every scenario misses the disk, prices, and is persisted.
  SimEngine cold(with_disk);
  const auto cold_results = cold.run_batch(batch);
  const EngineStats cold_stats = cold.stats();
  EXPECT_EQ(cold_stats.disk_hits, 0u);
  EXPECT_EQ(cold_stats.disk_misses, batch.size());
  EXPECT_EQ(cold_stats.disk_stores, batch.size());
  EXPECT_EQ(cold_stats.simulations_run, batch.size());

  // Warm, new engine (fresh memo caches, same directory): every scenario
  // is served from disk, nothing simulates.
  SimEngine warm(with_disk);
  const auto warm_results = warm.run_batch(batch);
  const EngineStats warm_stats = warm.stats();
  EXPECT_EQ(warm_stats.disk_hits, batch.size());
  EXPECT_EQ(warm_stats.simulations_run, 0u);
  EXPECT_EQ(warm_stats.layers_priced, 0u);
  // The invariant the header promises.
  EXPECT_EQ(warm_stats.simulations_run + warm_stats.cache_hits +
                warm_stats.disk_hits,
            warm_stats.scenarios_submitted);

  ASSERT_EQ(cold_results.size(), baseline.size());
  ASSERT_EQ(warm_results.size(), baseline.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    expect_bit_identical(baseline[i], cold_results[i]);
    expect_bit_identical(baseline[i], warm_results[i]);
  }
}

TEST_F(DiskCacheTest, MemoCacheSitsAboveTheDiskCache) {
  const auto batch = mixed_batch();
  EngineOptions opts;
  opts.num_threads = 2;
  opts.disk_cache_dir = dir_;
  SimEngine eng(opts);
  (void)eng.run_batch(batch);
  // Second submission on the same engine: the in-memory scenario cache
  // answers; the disk is not even probed.
  (void)eng.run_batch(batch);
  const EngineStats s = eng.stats();
  EXPECT_EQ(s.cache_hits, batch.size());
  EXPECT_EQ(s.disk_hits, 0u);
  EXPECT_EQ(s.disk_misses, batch.size());  // from the first run only
}

TEST_F(DiskCacheTest, DiskHitsFeedTheMemoCache) {
  const auto batch = mixed_batch();
  EngineOptions opts;
  opts.num_threads = 2;
  opts.disk_cache_dir = dir_;
  (void)SimEngine(opts).run_batch(batch);  // populate the directory

  SimEngine warm(opts);
  (void)warm.run_batch(batch);  // all from disk
  (void)warm.run_batch(batch);  // all from the memo cache now
  const EngineStats s = warm.stats();
  EXPECT_EQ(s.disk_hits, batch.size());
  EXPECT_EQ(s.cache_hits, batch.size());
  EXPECT_EQ(s.simulations_run, 0u);
}

TEST_F(DiskCacheTest, CorruptedEntryRepricesAndHeals) {
  const auto batch = mixed_batch();
  EngineOptions opts;
  opts.num_threads = 2;
  opts.disk_cache_dir = dir_;
  (void)SimEngine(opts).run_batch(batch);

  // Vandalize every entry in the directory.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    std::ofstream out(entry.path(), std::ios::trunc);
    out << "{\"broken\": true}";
  }
  SimEngine healed(opts);
  const auto results = healed.run_batch(batch);
  const EngineStats s = healed.stats();
  EXPECT_EQ(s.disk_rejected, batch.size());
  EXPECT_EQ(s.simulations_run, batch.size());  // all repriced
  EXPECT_EQ(s.disk_stores, batch.size());      // and re-persisted

  // The healed entries serve the next engine.
  SimEngine warm(opts);
  const auto warm_results = warm.run_batch(batch);
  EXPECT_EQ(warm.stats().disk_hits, batch.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    expect_bit_identical(results[i], warm_results[i]);
  }
}

TEST_F(DiskCacheTest, ClearCacheLeavesTheDiskAlone) {
  const auto batch = mixed_batch();
  EngineOptions opts;
  opts.num_threads = 2;
  opts.disk_cache_dir = dir_;
  SimEngine eng(opts);
  (void)eng.run_batch(batch);
  eng.clear_cache();  // drops memo caches only
  (void)eng.run_batch(batch);
  const EngineStats s = eng.stats();
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(s.disk_hits, batch.size());  // disk survived
  EXPECT_EQ(s.simulations_run, batch.size());
}

TEST_F(DiskCacheTest, ConcurrentEnginesShareADirectorySafely) {
  // Two engines (standing in for two processes — same code path, the
  // atomicity comes from rename) hammer one directory concurrently.
  const auto batch = mixed_batch();
  EngineOptions opts;
  opts.num_threads = 2;
  opts.disk_cache_dir = dir_;
  SimEngine a(opts), b(opts);
  std::vector<sim::RunResult> ra, rb;
  std::thread ta([&] { ra = a.run_batch(batch); });
  std::thread tb([&] { rb = b.run_batch(batch); });
  ta.join();
  tb.join();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    expect_bit_identical(ra[i], rb[i]);
  }
  // Nothing torn was ever observed.
  EXPECT_EQ(a.stats().disk_rejected + b.stats().disk_rejected, 0u);
}

TEST_F(DiskCacheTest, RejectsUnusableDirectory) {
  EXPECT_THROW(DiskCache(""), Error);
  // A path through a regular file cannot become a directory.
  {
    std::ofstream out(dir_, std::ios::trunc);
    out << "i am a file";
  }
  EXPECT_THROW(DiskCache(dir_ + "/sub"), Error);
  fs::remove(dir_);
}

}  // namespace
}  // namespace bpvec::engine
