#include "src/core/accelerator.h"

#include <gtest/gtest.h>

#include "src/common/error.h"
#include "src/common/rng.h"
#include "src/dnn/model_zoo.h"

namespace bpvec::core {
namespace {

TEST(Accelerator, FactoriesMatchTableTwo) {
  EXPECT_EQ(Accelerator::bpvec(Memory::kDdr4).config().equivalent_macs(),
            1024);
  EXPECT_EQ(Accelerator::tpu_like(Memory::kDdr4).config().equivalent_macs(),
            512);
  EXPECT_EQ(
      Accelerator::bitfusion(Memory::kDdr4).config().equivalent_macs(), 448);
}

TEST(Accelerator, MemorySelection) {
  EXPECT_EQ(make_memory(Memory::kDdr4).name, "DDR4");
  EXPECT_EQ(make_memory(Memory::kHbm2).name, "HBM2");
}

TEST(Accelerator, DotProductIsExact) {
  const auto acc = Accelerator::bpvec(Memory::kDdr4);
  Rng rng(42);
  for (int bits : {2, 4, 8}) {
    const auto x = rng.signed_vector(300, bits);
    const auto w = rng.signed_vector(300, bits);
    std::int64_t expected = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      expected += static_cast<std::int64_t>(x[i]) * w[i];
    }
    EXPECT_EQ(acc.dot_product(x, w, bits, bits).value, expected);
  }
}

TEST(Accelerator, BitFusionDotProductUsesScalarUnit) {
  const auto acc = Accelerator::bitfusion(Memory::kDdr4);
  Rng rng(7);
  const auto x = rng.signed_vector(10, 8);
  const auto w = rng.signed_vector(10, 8);
  const auto r = acc.dot_product(x, w, 8, 8);
  std::int64_t expected = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    expected += static_cast<std::int64_t>(x[i]) * w[i];
  }
  EXPECT_EQ(r.value, expected);
  // L = 1: one vector element per cycle in 8×8 mode.
  EXPECT_EQ(r.cycles, 10);
}

TEST(Accelerator, ConventionalPlatformHasNoCvu) {
  const auto acc = Accelerator::tpu_like(Memory::kDdr4);
  EXPECT_THROW(acc.dot_product({1}, {1}, 8, 8), Error);
}

TEST(Accelerator, PlanExposesComposition) {
  const auto acc = Accelerator::bpvec(Memory::kDdr4);
  EXPECT_EQ(acc.plan(8, 8).clusters, 1);
  EXPECT_EQ(acc.plan(4, 4).clusters, 4);
  EXPECT_EQ(acc.plan(2, 2).clusters, 16);
}

TEST(Accelerator, ConventionalCostIsUnity) {
  const auto p = Accelerator::tpu_like(Memory::kDdr4).pe_cost_per_mac();
  EXPECT_NEAR(p.area_total(), 1.0, 1e-9);
  EXPECT_NEAR(p.power_total(), 1.0, 1e-9);
}

TEST(Accelerator, BpvecCostBeatsConventional) {
  const auto p = Accelerator::bpvec(Memory::kDdr4).pe_cost_per_mac();
  EXPECT_LT(p.power_total(), 0.7);
  EXPECT_LT(p.area_total(), 0.8);
}

TEST(Accelerator, BitFusionCostCarriesOverhead) {
  const auto p = Accelerator::bitfusion(Memory::kDdr4).pe_cost_per_mac();
  EXPECT_GT(p.area_total(), 1.1);
}

TEST(Accelerator, CorePowerWithinBudget) {
  for (auto acc : {Accelerator::bpvec(Memory::kDdr4),
                   Accelerator::tpu_like(Memory::kDdr4),
                   Accelerator::bitfusion(Memory::kDdr4)}) {
    EXPECT_GT(acc.core_power_mw(), 100.0);
    EXPECT_LT(acc.core_power_mw(), 300.0);
  }
}

TEST(Accelerator, SimulateProducesConsistentRun) {
  const auto acc = Accelerator::bpvec(Memory::kHbm2);
  const auto r =
      acc.simulate(dnn::make_lstm(dnn::BitwidthMode::kHeterogeneous));
  EXPECT_EQ(r.platform, "BPVeC");
  EXPECT_EQ(r.memory, "HBM2");
  EXPECT_GT(r.total_cycles, 0);
  EXPECT_GT(r.gops_per_w, 0.0);
}

}  // namespace
}  // namespace bpvec::core
