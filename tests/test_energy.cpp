#include "src/sim/energy.h"

#include <gtest/gtest.h>

#include "src/common/error.h"

namespace bpvec::sim {
namespace {

class EnergyTest : public ::testing::Test {
 protected:
  AcceleratorConfig config_ = bpvec_accelerator();
  arch::DramModel ddr4_ = arch::ddr4();
  arch::CvuCostModel cost_;
};

TEST_F(EnergyTest, AllComponentsNonNegative) {
  EnergyModel m(config_, ddr4_, cost_);
  const auto e = m.layer_energy(1000, 0.5, 2000, 1 << 20, 1 << 20);
  EXPECT_GE(e.compute_pj, 0.0);
  EXPECT_GE(e.sram_pj, 0.0);
  EXPECT_GE(e.dram_pj, 0.0);
  EXPECT_GT(e.static_pj, 0.0);
  EXPECT_DOUBLE_EQ(e.total_pj(),
                   e.compute_pj + e.sram_pj + e.dram_pj + e.static_pj);
}

TEST_F(EnergyTest, ZeroWorkCostsOnlyStatic) {
  EnergyModel m(config_, ddr4_, cost_);
  const auto e = m.layer_energy(0, 0.0, 100, 0, 0);
  EXPECT_DOUBLE_EQ(e.compute_pj, 0.0);
  EXPECT_DOUBLE_EQ(e.sram_pj, 0.0);
  EXPECT_DOUBLE_EQ(e.dram_pj, 0.0);
  EXPECT_GT(e.static_pj, 0.0);
}

TEST_F(EnergyTest, ComputeScalesWithUtilization) {
  EnergyModel m(config_, ddr4_, cost_);
  const auto lo = m.layer_energy(1000, 0.1, 1000, 0, 0);
  const auto hi = m.layer_energy(1000, 1.0, 1000, 0, 0);
  EXPECT_GT(hi.compute_pj, lo.compute_pj);
  // Idle clocking keeps a floor: low utilization is not free.
  EXPECT_GT(lo.compute_pj, 0.1 * hi.compute_pj);
}

TEST_F(EnergyTest, DramEnergyMatchesModel) {
  EnergyModel m(config_, ddr4_, cost_);
  const std::int64_t bytes = 1'000'000;
  const auto e = m.layer_energy(0, 0.0, 1, 0, bytes);
  EXPECT_DOUBLE_EQ(e.dram_pj, ddr4_.transfer_energy_pj(bytes));
}

TEST_F(EnergyTest, StaticIncludesDramBackground) {
  arch::DramModel no_bg = ddr4_;
  no_bg.background_power_w = 0.0;
  EnergyModel with_bg(config_, ddr4_, cost_);
  EnergyModel without_bg(config_, no_bg, cost_);
  const std::int64_t cycles = 500'000'000;  // 1 s at 500 MHz
  const double delta = with_bg.layer_energy(0, 0, cycles, 0, 0).static_pj -
                       without_bg.layer_energy(0, 0, cycles, 0, 0).static_pj;
  // 0.75 W for 1 s = 0.75 J = 0.75e12 pJ.
  EXPECT_NEAR(delta, 0.75e12, 1e9);
}

TEST_F(EnergyTest, MonotoneInEveryInput) {
  EnergyModel m(config_, ddr4_, cost_);
  const auto base = m.layer_energy(1000, 0.5, 2000, 1000, 1000);
  EXPECT_GT(m.layer_energy(2000, 0.5, 2000, 1000, 1000).total_pj(),
            base.total_pj());
  EXPECT_GT(m.layer_energy(1000, 0.5, 4000, 1000, 1000).total_pj(),
            base.total_pj());
  EXPECT_GT(m.layer_energy(1000, 0.5, 2000, 9000, 1000).total_pj(),
            base.total_pj());
  EXPECT_GT(m.layer_energy(1000, 0.5, 2000, 1000, 9000).total_pj(),
            base.total_pj());
}

TEST_F(EnergyTest, RejectsNegativeInputs) {
  EnergyModel m(config_, ddr4_, cost_);
  EXPECT_THROW(m.layer_energy(-1, 0.5, 0, 0, 0), Error);
  EXPECT_THROW(m.layer_energy(0, 1.5, 0, 0, 0), Error);
}

TEST_F(EnergyTest, BreakdownAccumulates) {
  EnergyBreakdown a{1, 2, 3, 4}, b{10, 20, 30, 40};
  a += b;
  EXPECT_DOUBLE_EQ(a.compute_pj, 11);
  EXPECT_DOUBLE_EQ(a.sram_pj, 22);
  EXPECT_DOUBLE_EQ(a.dram_pj, 33);
  EXPECT_DOUBLE_EQ(a.static_pj, 44);
}

TEST_F(EnergyTest, BpvecComputeBeatsBaselinePerMac) {
  // At equal MAC throughput the CVU array burns less compute energy than
  // the conventional array — the Fig. 4 result carried into the simulator.
  const auto baseline = tpu_like_baseline();
  EnergyModel mb(baseline, ddr4_, cost_);
  EnergyModel mv(config_, ddr4_, cost_);
  // Same MAC count: baseline 512 MACs/cycle for N cycles == BPVeC 1024
  // MACs/cycle for N/2 cycles.
  const auto eb = mb.layer_energy(1000, 1.0, 1000, 0, 0);
  const auto ev = mv.layer_energy(500, 1.0, 500, 0, 0);
  EXPECT_LT(ev.compute_pj, eb.compute_pj);
}

}  // namespace
}  // namespace bpvec::sim
