// Randomized invariant checks ("fuzz") across the whole stack: random
// geometries, random GEMM shapes, random bitwidths — assert the structural
// properties that must hold for *every* input, not just the crafted cases.
#include <gtest/gtest.h>

#include "src/arch/cvu_cost.h"
#include "src/bitslice/cvu.h"
#include "src/common/rng.h"
#include "src/sim/cycle_sim.h"
#include "src/sim/memory_system.h"
#include "src/sim/simulator.h"
#include "src/sim/systolic.h"

namespace bpvec {
namespace {

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, CvuExactOnRandomModesAndLengths) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const int alpha = std::vector<int>{1, 2, 4}[static_cast<std::size_t>(
        rng.uniform(0, 2))];
    const int lanes = static_cast<int>(rng.uniform(1, 24));
    const int xb = static_cast<int>(rng.uniform(1, 8));
    const int wb = static_cast<int>(rng.uniform(1, 8));
    const std::size_t n = static_cast<std::size_t>(rng.uniform(0, 300));

    bitslice::Cvu cvu({alpha, 8, lanes});
    const auto x = rng.signed_vector(n, xb);
    const auto w = rng.signed_vector(n, wb);
    std::int64_t expected = 0;
    for (std::size_t i = 0; i < n; ++i) {
      expected += static_cast<std::int64_t>(x[i]) * w[i];
    }
    const auto r = cvu.dot_product(x, w, xb, wb);
    ASSERT_EQ(r.value, expected)
        << "alpha=" << alpha << " L=" << lanes << " xb=" << xb
        << " wb=" << wb << " n=" << n;
  }
}

TEST_P(FuzzSeeds, CostModelPositiveAndLaneMonotone) {
  Rng rng(GetParam() ^ 0x5555);
  const arch::CvuCostModel model;
  for (int trial = 0; trial < 20; ++trial) {
    const int alpha = std::vector<int>{1, 2, 4}[static_cast<std::size_t>(
        rng.uniform(0, 2))];
    const int lanes = static_cast<int>(rng.uniform(1, 64));
    const bitslice::CvuGeometry g{alpha, 8, lanes};
    const auto p = model.normalized_per_mac(g);
    ASSERT_GT(p.power_total(), 0.0);
    ASSERT_GT(p.area_total(), 0.0);
    // Doubling the lanes never increases per-MAC cost.
    const auto p2 = model.normalized_per_mac({alpha, 8, 2 * lanes});
    ASSERT_LE(p2.power_total(), p.power_total() * (1 + 1e-9));
    ASSERT_LE(p2.area_total(), p.area_total() * (1 + 1e-9));
  }
}

TEST_P(FuzzSeeds, TrafficNeverBelowCompulsoryAndMapperSane) {
  Rng rng(GetParam() ^ 0xAAAA);
  const auto cfg = sim::tpu_like_baseline();
  for (int trial = 0; trial < 40; ++trial) {
    dnn::GemmShape g;
    g.m = rng.uniform(1, 4000);
    g.n = rng.uniform(1, 4000);
    g.k = rng.uniform(1, 4000);
    const int xb = static_cast<int>(rng.uniform(1, 8));
    const int wb = static_cast<int>(rng.uniform(1, 8));
    const auto t = sim::estimate_traffic(cfg, g, xb, wb, xb, 4);
    // Compulsory traffic: every operand and output crosses DRAM once.
    const std::int64_t compulsory = (g.n * g.k * wb + 7) / 8 +
                                    (g.m * g.k * xb + 7) / 8 +
                                    (g.m * g.n * xb + 7) / 8;
    ASSERT_GE(t.dram_bytes(), compulsory);
    ASSERT_GE(t.sram_bytes, t.dram_bytes());
    ASSERT_GE(t.k_groups, 1);
  }
}

TEST_P(FuzzSeeds, ComputeEstimateInvariants) {
  Rng rng(GetParam() ^ 0x1234);
  for (int trial = 0; trial < 40; ++trial) {
    auto cfg = sim::bpvec_accelerator();
    cfg.rows = static_cast<int>(rng.uniform(1, 32));
    cfg.cols = static_cast<int>(rng.uniform(1, 32));
    dnn::GemmShape g;
    g.m = rng.uniform(1, 2000);
    g.n = rng.uniform(1, 2000);
    g.k = rng.uniform(1, 2000);
    const int xb = static_cast<int>(rng.uniform(1, 8));
    const int wb = static_cast<int>(rng.uniform(1, 8));
    const auto e = sim::estimate_compute(cfg, g, xb, wb);
    ASSERT_GT(e.cycles, 0);
    ASSERT_GT(e.utilization, 0.0);
    ASSERT_LE(e.utilization, 1.0);
    ASSERT_EQ(e.macs, g.m * g.n * g.k);
    // Cycles never beat the ideal bound.
    const double peak = static_cast<double>(cfg.num_pes()) *
                        static_cast<double>(cfg.k_per_pe(xb, wb));
    ASSERT_GE(static_cast<double>(e.cycles) * peak,
              static_cast<double>(e.macs) * (1 - 1e-9));
  }
}

TEST_P(FuzzSeeds, CycleSimMatchesReferenceOnRandomShapes) {
  Rng rng(GetParam() ^ 0x9999);
  for (int trial = 0; trial < 6; ++trial) {
    const int rows = static_cast<int>(rng.uniform(1, 6));
    const int cols = static_cast<int>(rng.uniform(1, 6));
    const std::int64_t kpp = rng.uniform(1, 8);
    dnn::Matrix a{rng.uniform(1, 12), rng.uniform(1, 40), {}};
    dnn::Matrix b{rng.uniform(1, 12), a.cols, {}};
    a.data = rng.signed_vector(static_cast<std::size_t>(a.rows * a.cols), 8);
    b.data = rng.signed_vector(static_cast<std::size_t>(b.rows * b.cols), 8);
    sim::SystolicArraySim sim({rows, cols, kpp});
    const auto r = sim.run_gemm(a, b);
    ASSERT_EQ(r.out, dnn::gemm_reference(a, b))
        << rows << "x" << cols << " kpp=" << kpp << " MNK=" << a.rows << ","
        << b.rows << "," << a.cols;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(0xA1, 0xB2, 0xC3, 0xD4, 0xE5,
                                           0xF6));

}  // namespace
}  // namespace bpvec
