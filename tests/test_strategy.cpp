// Search strategies in isolation: batch-size invariance and seed
// determinism for every stochastic strategy, hill-climb's cached
// neighbor enumeration, annealing/genetic proposal mechanics, and the
// StrategyOptions factory's validation.
#include "src/dse/strategy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/error.h"
#include "src/common/hash.h"

namespace bpvec::dse {
namespace {

ParamSpace small_space() {
  ParamSpace space;
  space.add_axis(Knob::kCvuSliceBits, {1, 2, 4});
  space.add_axis(Knob::kCvuLanes, {4, 8, 16});
  space.add_axis(Knob::kBatchSize, {1, 4});
  return space;
}

const std::vector<Objective> kObjectives{objective(Metric::kCycles)};

/// Drives `strategy` to exhaustion (or `cap` proposals), scoring every
/// candidate with a pure hash of its choices — deterministic across
/// runs, batch sizes, and processes — and returns the full proposal
/// sequence.
std::vector<std::vector<std::size_t>> drive(const ParamSpace& space,
                                            SearchStrategy& strategy,
                                            std::size_t batch,
                                            std::size_t cap = 10000) {
  std::vector<std::vector<std::size_t>> proposed;
  while (proposed.size() < cap) {
    const std::vector<Candidate> round = strategy.propose(batch);
    if (round.empty()) break;
    std::vector<Evaluation> evals;
    for (const Candidate& c : round) {
      proposed.push_back(c.choice);
      Evaluation e;
      e.candidate = c;
      e.key = space.candidate_key(c);
      std::uint64_t h = 0x9e3779b97f4a7c15ull;
      for (std::size_t v : c.choice) h = common::hash_combine(h, v);
      e.objectives = {1.0 + static_cast<double>(h % 1000)};
      evals.push_back(std::move(e));
    }
    strategy.observe(evals);
  }
  return proposed;
}

StrategyOptions options(std::size_t budget, std::size_t restarts = 4,
                        std::size_t population = 8,
                        std::uint64_t seed = 42) {
  StrategyOptions o;
  o.budget = budget;
  o.restarts = restarts;
  o.population = population;
  o.seed = seed;
  o.objectives = kObjectives;
  return o;
}

void expect_batch_size_invariant(const std::string& token,
                                 std::size_t budget) {
  const ParamSpace space = small_space();
  std::vector<std::vector<std::size_t>> reference;
  for (std::size_t batch : {1u, 3u, 7u, 256u}) {
    auto strategy = make_strategy(token, space, options(budget));
    const auto proposed = drive(space, *strategy, batch);
    if (reference.empty()) {
      reference = proposed;
      EXPECT_FALSE(reference.empty()) << token;
    } else {
      EXPECT_EQ(proposed, reference)
          << token << " diverged at batch size " << batch;
    }
  }
}

TEST(Strategies, BatchSizeInvariance) {
  expect_batch_size_invariant("random", 40);
  expect_batch_size_invariant("hill_climb", 0);
  expect_batch_size_invariant("annealing", 40);
  expect_batch_size_invariant("genetic", 40);
}

TEST(Strategies, SeedChangesStochasticProposals) {
  const ParamSpace space = small_space();
  for (const char* token : {"annealing", "genetic"}) {
    auto a = make_strategy(token, space, options(40, 4, 8, 1));
    auto b = make_strategy(token, space, options(40, 4, 8, 2));
    EXPECT_NE(drive(space, *a, 16), drive(space, *b, 16)) << token;
  }
}

TEST(Strategies, BudgetCapsProposals) {
  const ParamSpace space = small_space();
  for (const char* token : {"random", "annealing", "genetic"}) {
    auto strategy = make_strategy(token, space, options(13));
    EXPECT_EQ(drive(space, *strategy, 5).size(), 13u) << token;
  }
}

TEST(Strategies, ProposalsStayInsideTheSpace) {
  const ParamSpace space = small_space();
  for (const char* token : {"random", "hill_climb", "annealing", "genetic"}) {
    auto strategy = make_strategy(token, space, options(60));
    for (const auto& choice : drive(space, *strategy, 16)) {
      ASSERT_EQ(choice.size(), space.num_axes()) << token;
      for (std::size_t a = 0; a < choice.size(); ++a) {
        ASSERT_LT(choice[a], space.axes()[a].values.size()) << token;
      }
    }
  }
}

TEST(Strategies, AnnealingNeighborsAreSingleAxisSteps) {
  // Every post-start proposal of a single chain differs from some
  // earlier accepted point by exactly one ±1 axis step; with one chain
  // the reference point is simply the chain's current — which we can't
  // see, but each proposal must differ from *some* previously proposed
  // candidate by one step (the chain only moves through proposals).
  const ParamSpace space = small_space();
  auto strategy = make_strategy("annealing", space, options(30, 1));
  const auto proposed = drive(space, *strategy, 1);
  ASSERT_GT(proposed.size(), 1u);
  for (std::size_t i = 1; i < proposed.size(); ++i) {
    bool near = false;
    for (std::size_t j = 0; j < i && !near; ++j) {
      std::size_t diff_axes = 0, step = 0;
      for (std::size_t a = 0; a < space.num_axes(); ++a) {
        if (proposed[i][a] == proposed[j][a]) continue;
        ++diff_axes;
        step = proposed[i][a] > proposed[j][a]
                   ? proposed[i][a] - proposed[j][a]
                   : proposed[j][a] - proposed[i][a];
      }
      near = diff_axes == 1 && step == 1;
    }
    EXPECT_TRUE(near) << "proposal " << i
                      << " is not a unit step from any predecessor";
  }
}

TEST(Strategies, GeneticFirstGenerationMatchesRandom) {
  // Generation 0 must be drawn exactly like random's first P samples
  // (same seed → same candidates) so the two strategies are comparable.
  const ParamSpace space = small_space();
  auto genetic = make_strategy("genetic", space, options(8, 4, 8));
  auto random = make_strategy("random", space, options(8));
  EXPECT_EQ(drive(space, *genetic, 8), drive(space, *random, 8));
}

TEST(Strategies, GeneticCarriesElitesForward) {
  const ParamSpace space = small_space();
  auto strategy = make_strategy("genetic", space, options(24, 4, 8));
  const auto proposed = drive(space, *strategy, 8);
  ASSERT_EQ(proposed.size(), 24u);  // three 8-slot generations
  // The best gen-0 candidate under the synthetic score must reappear in
  // generation 1 (elitism keeps max(1, P/4) = 2 top candidates).
  std::vector<std::pair<double, std::vector<std::size_t>>> gen0;
  for (std::size_t i = 0; i < 8; ++i) {
    Candidate c;
    c.choice = proposed[i];
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (std::size_t v : c.choice) h = common::hash_combine(h, v);
    gen0.push_back({1.0 + static_cast<double>(h % 1000), proposed[i]});
  }
  std::sort(gen0.begin(), gen0.end());
  const std::vector<std::vector<std::size_t>> gen1(proposed.begin() + 8,
                                                   proposed.begin() + 16);
  EXPECT_NE(std::find(gen1.begin(), gen1.end(), gen0.front().second),
            gen1.end());
}

TEST(Strategies, HillClimbMatchesPreviousEnumeration) {
  // The cached-neighbor implementation must propose exactly the same
  // sequence as re-enumerating each round would: starts first, then
  // unknown-score neighbors in axis-major (-1 before +1) order.
  const ParamSpace space = small_space();
  auto strategy = make_strategy("hill_climb", space, options(0, 2));
  const auto proposed = drive(space, *strategy, 256);
  ASSERT_GE(proposed.size(), 2u);
  // Starts are random draws 0 and 1.
  auto random = make_strategy("random", space, options(2));
  const auto starts = drive(space, *random, 2);
  EXPECT_EQ(std::vector<std::vector<std::size_t>>(proposed.begin(),
                                                  proposed.begin() + 2),
            starts);
  // And the whole sequence reproduces exactly — the neighbor cache is
  // an implementation detail, not a behavior change.
  auto replay = make_strategy("hill_climb", space, options(0, 2));
  EXPECT_EQ(drive(space, *replay, 256), proposed);
}

TEST(Strategies, FactoryValidatesOptions) {
  const ParamSpace space = small_space();
  EXPECT_THROW((void)make_strategy("warp_drive", space, options(8)), Error);
  EXPECT_THROW((void)make_strategy("random", space, options(0)), Error);
  EXPECT_THROW((void)make_strategy("annealing", space, options(0)), Error);
  EXPECT_THROW((void)make_strategy("genetic", space, options(0)), Error);
  StrategyOptions tiny = options(8);
  tiny.population = 1;
  EXPECT_THROW((void)make_strategy("genetic", space, std::move(tiny)),
               Error);
  for (const std::string& token : strategy_tokens()) {
    EXPECT_NO_THROW((void)make_strategy(token, space, options(8)));
  }
}

TEST(Strategies, TokensListAllStrategies) {
  const std::vector<std::string> expected{"grid", "random", "hill_climb",
                                          "annealing", "genetic"};
  EXPECT_EQ(strategy_tokens(), expected);
}

}  // namespace
}  // namespace bpvec::dse
