#include <gtest/gtest.h>

#include "src/arch/dram.h"
#include "src/arch/scratchpad.h"
#include "src/common/error.h"

namespace bpvec::arch {
namespace {

TEST(Scratchpad, PaperCapacityEnergyInCactiRange) {
  const ScratchpadModel spad(112 * 1024);
  // CACTI-P-class 45 nm SRAMs of this size: ~0.5–3 pJ/byte.
  EXPECT_GT(spad.energy_per_byte_pj(), 0.5);
  EXPECT_LT(spad.energy_per_byte_pj(), 3.0);
}

TEST(Scratchpad, EnergyGrowsSublinearlyWithCapacity) {
  const double e1 = ScratchpadModel(16 * 1024).energy_per_byte_pj();
  const double e2 = ScratchpadModel(64 * 1024).energy_per_byte_pj();
  const double e3 = ScratchpadModel(256 * 1024).energy_per_byte_pj();
  EXPECT_LT(e1, e2);
  EXPECT_LT(e2, e3);
  EXPECT_LT(e3 / e1, 4.0);  // sqrt-like, not linear
}

TEST(Scratchpad, LeakageAndAreaScaleWithCapacity) {
  const ScratchpadModel small(64 * 1024), big(256 * 1024);
  EXPECT_NEAR(big.leakage_mw() / small.leakage_mw(), 4.0, 1e-9);
  EXPECT_NEAR(big.area_mm2() / small.area_mm2(), 4.0, 1e-9);
}

TEST(Scratchpad, RejectsNonPositiveCapacity) {
  EXPECT_THROW(ScratchpadModel(0), Error);
}

TEST(Dram, PaperParameters) {
  const DramModel d = ddr4();
  EXPECT_DOUBLE_EQ(d.bandwidth_gbps, 16.0);
  EXPECT_DOUBLE_EQ(d.energy_pj_per_bit, 15.0);
  const DramModel h = hbm2();
  EXPECT_DOUBLE_EQ(h.bandwidth_gbps, 256.0);
  EXPECT_DOUBLE_EQ(h.energy_pj_per_bit, 1.2);
  EXPECT_DOUBLE_EQ(h.bandwidth_gbps / d.bandwidth_gbps, 16.0);
}

TEST(Dram, BytesPerCycleAt500Mhz) {
  // 16 GB/s at 500 MHz = 32 B per cycle.
  EXPECT_DOUBLE_EQ(ddr4().bytes_per_cycle(500e6), 32.0);
  EXPECT_DOUBLE_EQ(hbm2().bytes_per_cycle(500e6), 512.0);
}

TEST(Dram, TransferMath) {
  const DramModel d = ddr4();
  EXPECT_DOUBLE_EQ(d.transfer_cycles(3200, 500e6), 100.0);
  EXPECT_DOUBLE_EQ(d.transfer_energy_pj(1), 8.0 * 15.0);
  EXPECT_DOUBLE_EQ(d.transfer_energy_pj(0), 0.0);
  EXPECT_THROW(d.transfer_cycles(-1, 500e6), Error);
}

TEST(Dram, Hbm2AccessEnergyFarBelowDdr4) {
  // The 12.5× access-energy gap drives the paper's Fig. 6/8 energy story.
  EXPECT_NEAR(ddr4().transfer_energy_pj(1000) / hbm2().transfer_energy_pj(1000),
              12.5, 1e-9);
}

}  // namespace
}  // namespace bpvec::arch
