// Compile-time guarantee that the umbrella header exposes the whole public
// surface, plus a smoke test touching one symbol from each area.
#include "src/core/bpvec.h"

#include <gtest/gtest.h>

namespace bpvec {
namespace {

TEST(UmbrellaHeader, ExposesEveryPublicArea) {
  // core
  const auto acc = core::Accelerator::bpvec(core::Memory::kDdr4);
  EXPECT_EQ(acc.config().equivalent_macs(), 1024);
  // bitslice
  EXPECT_EQ(bitslice::plan_composition({2, 8, 16}, 4, 4).clusters, 4);
  // arch
  EXPECT_GT(arch::CvuCostModel{}.conventional_mac_energy_pj(), 0.0);
  EXPECT_EQ(arch::hbm2().bandwidth_gbps, 256.0);
  // dnn
  EXPECT_EQ(dnn::make_lstm(dnn::BitwidthMode::kHeterogeneous)
                .stats()
                .compute_layers,
            1);
  // sim
  EXPECT_EQ(sim::bpvec_accelerator().num_pes(), 64);
  // baselines
  EXPECT_EQ(baselines::GpuSpec{}.tensor_cores, 544);
  EXPECT_EQ(baselines::BitSerialConfig{}.lanes, 16);
}

}  // namespace
}  // namespace bpvec
