#include "src/bitslice/bit_slicing.h"

#include <gtest/gtest.h>

#include <tuple>

#include "src/common/error.h"
#include "src/common/rng.h"

namespace bpvec::bitslice {
namespace {

TEST(NumSlices, CountsAndPadding) {
  EXPECT_EQ(num_slices(8, 2), 4);
  EXPECT_EQ(num_slices(8, 1), 8);
  EXPECT_EQ(num_slices(8, 4), 2);
  EXPECT_EQ(num_slices(3, 2), 2);  // padded
  EXPECT_EQ(padded_bits(3, 2), 4);
  EXPECT_EQ(padded_bits(8, 2), 8);
}

TEST(Fits, SignedRanges) {
  EXPECT_TRUE(fits_signed(127, 8));
  EXPECT_TRUE(fits_signed(-128, 8));
  EXPECT_FALSE(fits_signed(128, 8));
  EXPECT_FALSE(fits_signed(-129, 8));
  EXPECT_TRUE(fits_signed(0, 1));
  EXPECT_TRUE(fits_signed(-1, 1));
  EXPECT_FALSE(fits_signed(1, 1));
}

TEST(Fits, UnsignedRanges) {
  EXPECT_TRUE(fits_unsigned(255, 8));
  EXPECT_FALSE(fits_unsigned(256, 8));
  EXPECT_FALSE(fits_unsigned(-1, 8));
}

TEST(SliceSigned, KnownPattern) {
  // -93 = 0b10100011 in 8-bit two's complement. 2-bit slices LSB-first:
  // 11, 00, 10, 10(top, signed) = 3, 0, 2, -2.
  const auto s = slice_signed(-93, 8, 2);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0], 3);
  EXPECT_EQ(s[1], 0);
  EXPECT_EQ(s[2], 2);
  EXPECT_EQ(s[3], -2);
  EXPECT_EQ(recompose(s, 2), -93);
}

TEST(SliceSigned, TopSliceCarriesSign) {
  const auto s = slice_signed(-1, 8, 2);
  EXPECT_EQ(s[0], 3);
  EXPECT_EQ(s[1], 3);
  EXPECT_EQ(s[2], 3);
  EXPECT_EQ(s[3], -1);  // sign-extended
}

TEST(SliceSigned, RejectsOutOfRange) {
  EXPECT_THROW(slice_signed(128, 8, 2), Error);
  EXPECT_THROW(slice_signed(-129, 8, 2), Error);
}

TEST(SliceUnsigned, KnownPattern) {
  const auto s = slice_unsigned(0xA3, 8, 4);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], 0x3);
  EXPECT_EQ(s[1], 0xA);  // zero-extended, not signed
  EXPECT_EQ(recompose(s, 4), 0xA3);
}

TEST(SliceVector, LayoutIsSliceMajor) {
  const auto sv = slice_vector_signed({1, -2, 3}, 4, 2);
  EXPECT_EQ(sv.slices(), 2);
  EXPECT_EQ(sv.length(), 3u);
  EXPECT_EQ(sv.sub[0].size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(recompose_element(sv, i), std::vector<int>({1, -2, 3})[i]);
  }
}

TEST(SliceSigned, SingleSliceOperandIsTheValueItself) {
  // operand_bits == slice_bits: exactly one slice, and it IS the value —
  // signed interpretation applies because the only slice is the top one.
  for (const int bits : {1, 2, 4, 8, 16}) {
    const std::int32_t lo = -(std::int32_t{1} << (bits - 1));
    const std::int32_t hi = (std::int32_t{1} << (bits - 1)) - 1;
    for (const std::int32_t v : {lo, std::int32_t{0}, hi}) {
      const auto s = slice_signed(v, bits, bits);
      ASSERT_EQ(s.size(), 1u) << "bits=" << bits;
      EXPECT_EQ(s[0], v) << "bits=" << bits;
      EXPECT_EQ(recompose(s, bits), v) << "bits=" << bits;
    }
  }
}

TEST(SliceSigned, SignedRangeBoundariesSliceExactly) {
  // The extreme values of each width are where a sign-handling bug shows
  // first: -2^(n-1) has only the sign bit set, 2^(n-1)-1 everything else.
  for (const int bits : {2, 4, 6, 8, 12, 16}) {
    const std::int32_t min_v = -(std::int32_t{1} << (bits - 1));
    const std::int32_t max_v = (std::int32_t{1} << (bits - 1)) - 1;
    for (const int alpha : {1, 2, 4}) {
      const auto s_min = slice_signed(min_v, bits, alpha);
      const auto s_max = slice_signed(max_v, bits, alpha);
      EXPECT_EQ(recompose(s_min, alpha), min_v)
          << "bits=" << bits << " a=" << alpha;
      EXPECT_EQ(recompose(s_max, alpha), max_v)
          << "bits=" << bits << " a=" << alpha;
      // min = 100…0: every lower slice zero, top slice = -2^(α-1) when
      // the width divides evenly (the sign bit tops its slice).
      if (bits % alpha == 0) {
        for (std::size_t j = 0; j + 1 < s_min.size(); ++j) {
          EXPECT_EQ(s_min[j], 0);
        }
        EXPECT_EQ(s_min.back(), -(std::int32_t{1} << (alpha - 1)));
      }
    }
  }
}

TEST(SliceUnsigned, TopSliceStaysUnsignedWhereSignedWouldGoNegative) {
  // 0xF in the top slice: signed slicing reads it as -1, unsigned must
  // keep +15. This is the unsigned-activation path of Eq. 3.
  const auto u = slice_unsigned(0xF3u, 8, 4);
  ASSERT_EQ(u.size(), 2u);
  EXPECT_EQ(u[1], 0xF);
  EXPECT_EQ(recompose(u, 4), 0xF3);
  const auto s = slice_signed(-13, 8, 4);  // same bit pattern 0xF3
  EXPECT_EQ(s[1], -1);
  EXPECT_EQ(recompose(s, 4), -13);

  // Full-range unsigned max: every slice saturated at 2^α - 1.
  const auto m = slice_unsigned(0xFFFFu, 16, 4);
  for (const auto slice : m) EXPECT_EQ(slice, 0xF);
  EXPECT_EQ(recompose(m, 4), 0xFFFF);

  // Single-slice unsigned operand: the value itself, never sign-read.
  const auto one = slice_unsigned(255u, 8, 8);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 255);
  EXPECT_EQ(recompose(one, 8), 255);
}

// ---- Property: slice → recompose is the identity over full sweeps ----

class SliceRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SliceRoundTrip, SignedIdentityExhaustiveOrSampled) {
  const auto [bits, alpha] = GetParam();
  const std::int64_t lo = -(std::int64_t{1} << (bits - 1));
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  if (bits <= 10) {
    for (std::int64_t v = lo; v <= hi; ++v) {
      const auto s =
          slice_signed(static_cast<std::int32_t>(v), bits, alpha);
      EXPECT_EQ(static_cast<int>(s.size()), num_slices(bits, alpha));
      EXPECT_EQ(recompose(s, alpha), v) << "bits=" << bits << " a=" << alpha;
    }
  } else {
    Rng rng(static_cast<std::uint64_t>(bits * 131 + alpha));
    for (int i = 0; i < 2000; ++i) {
      const std::int32_t v = rng.signed_value(bits);
      EXPECT_EQ(recompose(slice_signed(v, bits, alpha), alpha), v);
    }
  }
}

TEST_P(SliceRoundTrip, UnsignedIdentity) {
  const auto [bits, alpha] = GetParam();
  Rng rng(static_cast<std::uint64_t>(bits * 977 + alpha));
  for (int i = 0; i < 2000; ++i) {
    const std::uint32_t v = rng.unsigned_value(bits);
    EXPECT_EQ(recompose(slice_unsigned(v, bits, alpha), alpha),
              static_cast<std::int64_t>(v));
  }
}

TEST_P(SliceRoundTrip, SliceRangeInvariant) {
  const auto [bits, alpha] = GetParam();
  Rng rng(static_cast<std::uint64_t>(bits * 31 + alpha));
  const std::int32_t lo_top = -(std::int32_t{1} << (alpha - 1));
  const std::int32_t hi_any = (std::int32_t{1} << alpha) - 1;
  for (int i = 0; i < 500; ++i) {
    const auto s = slice_signed(rng.signed_value(bits), bits, alpha);
    for (std::size_t j = 0; j < s.size(); ++j) {
      if (j + 1 == s.size()) {
        EXPECT_GE(s[j], lo_top);
        EXPECT_LT(s[j], std::int32_t{1} << (alpha - 1));
      } else {
        EXPECT_GE(s[j], 0);
        EXPECT_LE(s[j], hi_any);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    BitsByAlpha, SliceRoundTrip,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 6, 7, 8, 12, 16),
                       ::testing::Values(1, 2, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "bits" + std::to_string(std::get<0>(info.param)) + "_alpha" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace bpvec::bitslice
