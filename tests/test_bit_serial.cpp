#include "src/baselines/bit_serial.h"

#include <gtest/gtest.h>

#include "src/arch/cvu_cost.h"
#include "src/common/error.h"

namespace bpvec::baselines {
namespace {

TEST(BitSerial, CyclesPerMacStripes) {
  const BitSerialConfig c{SerialMode::kActivationSerial, 16, 8};
  EXPECT_EQ(c.cycles_per_mac(8, 8), 8);
  EXPECT_EQ(c.cycles_per_mac(4, 8), 4);
  EXPECT_EQ(c.cycles_per_mac(1, 8), 1);
  // Stripes is insensitive to weight bitwidth.
  EXPECT_EQ(c.cycles_per_mac(8, 2), 8);
}

TEST(BitSerial, CyclesPerMacLoom) {
  const BitSerialConfig c{SerialMode::kFullySerial, 16, 8};
  EXPECT_EQ(c.cycles_per_mac(8, 8), 64);
  EXPECT_EQ(c.cycles_per_mac(4, 4), 16);
  EXPECT_EQ(c.cycles_per_mac(2, 2), 4);
}

TEST(BitSerial, MacsPerCycleScalesWithLanes) {
  const BitSerialConfig c16{SerialMode::kActivationSerial, 16, 8};
  const BitSerialConfig c64{SerialMode::kActivationSerial, 64, 8};
  EXPECT_DOUBLE_EQ(c64.macs_per_cycle(8, 8), 4.0 * c16.macs_per_cycle(8, 8));
  EXPECT_DOUBLE_EQ(c16.macs_per_cycle(8, 8), 2.0);
}

TEST(BitSerial, BitwidthProportionality) {
  // The defining property of temporal designs: throughput scales exactly
  // linearly (Stripes) or quadratically (Loom) with quantization.
  const BitSerialConfig stripes{SerialMode::kActivationSerial, 16, 8};
  EXPECT_DOUBLE_EQ(stripes.macs_per_cycle(2, 8) / stripes.macs_per_cycle(8, 8),
                   4.0);
  const BitSerialConfig loom{SerialMode::kFullySerial, 16, 8};
  EXPECT_DOUBLE_EQ(loom.macs_per_cycle(2, 2) / loom.macs_per_cycle(8, 8),
                   16.0);
}

TEST(BitSerial, RejectsOutOfRangeBitwidths) {
  const BitSerialConfig c{SerialMode::kActivationSerial, 16, 8};
  EXPECT_THROW(c.cycles_per_mac(9, 8), Error);
  EXPECT_THROW(c.cycles_per_mac(8, 0), Error);
}

TEST(BitSerialCost, SerialLatencyErasesTheLaneCheapness) {
  // A serial lane is tiny, but the area-time product per MAC ends up in
  // the same league as (or worse than) a parallel MAC — why Stripes/Loom
  // lean on massive lane counts.
  const auto c = bit_serial_cost(arch::tech_45nm(),
                                 {SerialMode::kActivationSerial, 16, 8});
  EXPECT_GT(c.power_per_mac, 0.3);
  EXPECT_GT(c.area_per_mac, 0.5);
}

TEST(BitSerialCost, SpatialVectorComposabilityWinsAtEightBit) {
  // The paper's positioning (§V): at full 8-bit precision the CVU's
  // single-cycle MACs beat the temporal designs' 8-cycle serial MACs in
  // energy per MAC.
  const arch::CvuCostModel model;
  const double cvu_power =
      model.normalized_per_mac({2, 8, 16}).power_total();
  const auto stripes = bit_serial_cost(
      arch::tech_45nm(), {SerialMode::kActivationSerial, 16, 8});
  EXPECT_LT(cvu_power, stripes.power_per_mac);
}

TEST(BitSerialCost, PerMacCostRoughlyFlatInLanes) {
  // Unlike the CVU (whose fixed global aggregation amortizes across L,
  // Fig. 4), a bit-serial engine is lane-dominated: adding lanes adds
  // proportional hardware, so per-MAC cost stays roughly flat (the tree
  // deepens slightly). No amortization cliff exists to exploit.
  const auto narrow = bit_serial_cost(
      arch::tech_45nm(), {SerialMode::kActivationSerial, 4, 8});
  const auto wide = bit_serial_cost(
      arch::tech_45nm(), {SerialMode::kActivationSerial, 64, 8});
  EXPECT_NEAR(wide.power_per_mac / narrow.power_per_mac, 1.0, 0.25);
  EXPECT_NEAR(wide.area_per_mac / narrow.area_per_mac, 1.0, 0.25);
}

}  // namespace
}  // namespace bpvec::baselines
