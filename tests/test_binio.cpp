// binio tests: the fixed-width little-endian codec under the v3 disk
// cache. The load-bearing properties: every write reads back exactly
// (doubles as raw IEEE-754 bit patterns, including the values text
// formats mangle), truncation throws instead of misreading, and the
// checksum notices single-bit damage.
#include "src/common/binio.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "src/common/error.h"

namespace bpvec::common::binio {
namespace {

std::uint64_t bits_of(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof u);
  return u;
}

double double_of(std::uint64_t u) {
  double d = 0;
  std::memcpy(&d, &u, sizeof d);
  return d;
}

TEST(BinioTest, IntegersRoundTrip) {
  Writer w;
  w.u8(0);
  w.u8(0xFF);
  w.u32(0);
  w.u32(0xDEADBEEFu);
  w.u64(0);
  w.u64(0xFFFFFFFFFFFFFFFFull);
  w.i64(0);
  w.i64(-1);
  w.i64(std::numeric_limits<std::int64_t>::min());
  w.i64(std::numeric_limits<std::int64_t>::max());

  Reader r(w.bytes().data(), w.size());
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_EQ(r.u8(), 0xFFu);
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_EQ(r.u64(), 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(r.i64(), 0);
  EXPECT_EQ(r.i64(), -1);
  EXPECT_EQ(r.i64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(r.i64(), std::numeric_limits<std::int64_t>::max());
  EXPECT_TRUE(r.done());
}

TEST(BinioTest, EncodingIsLittleEndianByteForByte) {
  Writer w;
  w.u32(0x01020304u);
  w.u64(0x0102030405060708ull);
  const char* b = w.bytes().data();
  EXPECT_EQ(static_cast<unsigned char>(b[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(b[1]), 0x03);
  EXPECT_EQ(static_cast<unsigned char>(b[2]), 0x02);
  EXPECT_EQ(static_cast<unsigned char>(b[3]), 0x01);
  EXPECT_EQ(static_cast<unsigned char>(b[4]), 0x08);
  EXPECT_EQ(static_cast<unsigned char>(b[11]), 0x01);
}

TEST(BinioTest, DoublesRoundTripBitExactly) {
  // The values JSON/printf round-tripping mangles or cannot represent:
  // negative zero, infinities, quiet/signaling NaN payloads, denormals,
  // and a full-precision irrational.
  const std::uint64_t patterns[] = {
      bits_of(0.0),
      bits_of(-0.0),
      bits_of(1.0 / 3.0),
      bits_of(std::numeric_limits<double>::infinity()),
      bits_of(-std::numeric_limits<double>::infinity()),
      bits_of(std::numeric_limits<double>::denorm_min()),
      bits_of(std::numeric_limits<double>::max()),
      0x7FF8000000000001ull,  // quiet NaN, nonzero payload
      0x7FF0DEADBEEF0001ull,  // signaling-NaN-shaped payload
  };
  Writer w;
  for (const std::uint64_t p : patterns) w.f64(double_of(p));
  Reader r(w.bytes().data(), w.size());
  for (const std::uint64_t p : patterns) {
    EXPECT_EQ(bits_of(r.f64()), p);
  }
  EXPECT_TRUE(r.done());
}

TEST(BinioTest, StringsRoundTripIncludingEmbeddedNuls) {
  Writer w;
  w.str("");
  w.str("conv1_7x7");
  w.str(std::string("nul\0inside", 10));
  Reader r(w.bytes().data(), w.size());
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "conv1_7x7");
  EXPECT_EQ(r.str(), std::string("nul\0inside", 10));
  EXPECT_TRUE(r.done());
}

TEST(BinioTest, ReaderThrowsOnUnderflowWithoutAdvancing) {
  Writer w;
  w.u32(7);
  Reader r(w.bytes().data(), w.size());
  EXPECT_THROW(r.u64(), Error);  // 4 bytes left, 8 wanted
  EXPECT_EQ(r.u32(), 7u);        // the failed read consumed nothing
  EXPECT_TRUE(r.done());
  EXPECT_THROW(r.u8(), Error);
}

TEST(BinioTest, TruncatedStringThrows) {
  Writer w;
  w.str("hello");
  // Length prefix says 5 but only 3 payload bytes survive.
  Reader r(w.bytes().data(), 4 + 3);
  EXPECT_THROW(r.str(), Error);
}

TEST(BinioTest, RemainingTracksConsumption) {
  Writer w;
  w.u64(1);
  w.u8(2);
  Reader r(w.bytes().data(), w.size());
  EXPECT_EQ(r.remaining(), 9u);
  (void)r.u64();
  EXPECT_EQ(r.remaining(), 1u);
  (void)r.u8();
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(r.done());
}

TEST(BinioTest, ChecksumIsStableAndSensitive) {
  const std::string payload = "the quick brown fox jumps over the lazy dog";
  const std::uint64_t base = checksum(payload.data(), payload.size());
  // Deterministic across calls (and across processes — the disk cache
  // verifies checksums written by earlier runs).
  EXPECT_EQ(checksum(payload.data(), payload.size()), base);

  // Any single-bit flip at any position changes the sum.
  for (std::size_t i = 0; i < payload.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = payload;
      damaged[i] = static_cast<char>(damaged[i] ^ (1 << bit));
      EXPECT_NE(checksum(damaged.data(), damaged.size()), base)
          << "flip at byte " << i << " bit " << bit;
    }
  }
  // Length is mixed in: a truncation that keeps a prefix intact changes
  // the sum, and the empty payload has a well-defined one.
  EXPECT_NE(checksum(payload.data(), payload.size() - 1), base);
  EXPECT_EQ(checksum(payload.data(), 0), checksum(nullptr, 0));
}

TEST(BinioTest, ChecksumDiffersAcrossPermutations) {
  // Word-order sensitivity: swapping two 8-byte words must change the
  // sum (a plain XOR/add of words would not notice).
  std::string a(16, '\0');
  for (int i = 0; i < 16; ++i) a[static_cast<std::size_t>(i)] = char('a' + i);
  std::string b = a.substr(8, 8) + a.substr(0, 8);
  EXPECT_NE(checksum(a.data(), a.size()), checksum(b.data(), b.size()));
}

}  // namespace
}  // namespace bpvec::common::binio
