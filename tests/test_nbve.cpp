#include "src/bitslice/nbve.h"

#include <gtest/gtest.h>

#include <array>

#include "src/common/error.h"

namespace bpvec::bitslice {
namespace {

TEST(Nbve, DotOfKnownVectors) {
  Nbve e(4, 2);
  const std::array<std::int32_t, 4> x{1, 2, 3, 0};
  const std::array<std::int32_t, 4> w{3, -2, 1, 2};
  EXPECT_EQ(e.dot_cycle(x, w), 3 - 4 + 3 + 0);
}

TEST(Nbve, PartialVectorGatesLanes) {
  Nbve e(8, 2);
  const std::array<std::int32_t, 2> x{2, 2};
  const std::array<std::int32_t, 2> w{3, 3};
  EXPECT_EQ(e.dot_cycle(x, w), 12);
  EXPECT_EQ(e.mult_ops(), 2);  // only active lanes counted
  EXPECT_EQ(e.cycles(), 1);
}

TEST(Nbve, AccumulatesStatsAcrossCycles) {
  Nbve e(4, 2);
  const std::array<std::int32_t, 4> x{1, 1, 1, 1};
  for (int i = 0; i < 5; ++i) e.dot_cycle(x, x);
  EXPECT_EQ(e.cycles(), 5);
  EXPECT_EQ(e.mult_ops(), 20);
  e.reset_stats();
  EXPECT_EQ(e.cycles(), 0);
  EXPECT_EQ(e.mult_ops(), 0);
}

TEST(Nbve, EmptyInputIsZero) {
  Nbve e(4, 2);
  EXPECT_EQ(e.dot_cycle({}, {}), 0);
}

TEST(Nbve, RejectsMismatchedOperands) {
  Nbve e(4, 2);
  const std::array<std::int32_t, 2> x{1, 1};
  const std::array<std::int32_t, 3> w{1, 1, 1};
  EXPECT_THROW(e.dot_cycle(x, w), Error);
}

TEST(Nbve, RejectsOverlongVector) {
  Nbve e(2, 2);
  const std::array<std::int32_t, 3> x{1, 1, 1};
  EXPECT_THROW(e.dot_cycle(x, x), Error);
}

TEST(Nbve, EnforcesDatapathWidth) {
  // A 2-bit engine accepts slice values in [-2, 3] (signed top slice or
  // unsigned lower slice) and nothing wider.
  Nbve e(1, 2);
  const std::array<std::int32_t, 1> ok_hi{3}, ok_lo{-2}, bad_hi{4},
      bad_lo{-3};
  EXPECT_NO_THROW(e.dot_cycle(ok_hi, ok_lo));
  EXPECT_THROW(e.dot_cycle(bad_hi, ok_lo), Error);
  EXPECT_THROW(e.dot_cycle(ok_hi, bad_lo), Error);
}

TEST(Nbve, RejectsBadConstruction) {
  EXPECT_THROW(Nbve(0, 2), Error);
  EXPECT_THROW(Nbve(4, 0), Error);
  EXPECT_THROW(Nbve(4, 9), Error);
}

class NbveWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(NbveWidthSweep, MaxMagnitudeProductsAccumulate) {
  const int alpha = GetParam();
  const int lanes = 16;
  Nbve e(lanes, alpha);
  const std::int32_t top = (std::int32_t{1} << alpha) - 1;
  std::vector<std::int32_t> x(lanes, top), w(lanes, top);
  EXPECT_EQ(e.dot_cycle(x, w),
            static_cast<std::int64_t>(lanes) * top * top);
}

INSTANTIATE_TEST_SUITE_P(Alpha, NbveWidthSweep, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace bpvec::bitslice
