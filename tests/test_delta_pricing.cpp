// Delta pricing: the layer-cache engine must be a pure optimization —
// bit-identical results to full pricing, at any thread count, while
// provably pricing fewer layers (EngineStats) whenever scenarios share
// layers in-network, across the batch, or with a warm cache.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/dnn/model_zoo.h"
#include "src/engine/scenario.h"
#include "src/engine/sim_engine.h"
#include "src/workload/generators.h"
#include "tests/run_result_identical.h"

namespace bpvec::engine {
namespace {

Scenario bpvec_scenario(dnn::Network net) {
  return make_scenario(Platform::kBpvec, core::Memory::kDdr4,
                       std::move(net));
}

/// Runs `batch` with the layer cache on and off and demands byte-equal
/// results at the given thread count.
void expect_delta_matches_full(const std::vector<Scenario>& batch,
                               int threads) {
  SimEngine delta({threads, /*cache_enabled=*/false,
                   /*layer_cache_enabled=*/true});
  SimEngine full({threads, /*cache_enabled=*/false,
                  /*layer_cache_enabled=*/false});
  const std::vector<sim::RunResult> a = delta.run_batch(batch);
  const std::vector<sim::RunResult> b = full.run_batch(batch);
  ASSERT_EQ(a.size(), batch.size());
  ASSERT_EQ(b.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE(batch[i].id + " @ " + std::to_string(threads) +
                 " threads");
    expect_bit_identical(a[i], b[i]);
  }
  // Same arithmetic, fewer invocations: the delta engine never prices
  // more layers than the full engine.
  EXPECT_LE(delta.stats().layers_priced, full.stats().layers_priced);
  EXPECT_EQ(full.stats().layer_cache_hits, 0u);
}

std::vector<Scenario> zoo_batch(dnn::BitwidthMode mode) {
  std::vector<Scenario> batch;
  for (dnn::Network& net : dnn::all_models(mode)) {
    batch.push_back(bpvec_scenario(std::move(net)));
  }
  return batch;
}

workload::GeneratorSpec family_spec(const std::string& family, int depth,
                                    int width, int bits) {
  workload::GeneratorSpec spec;
  spec.family = family;
  spec.depth = depth;
  spec.width = width;
  spec.bitwidth_policy = "uniform:" + std::to_string(bits);
  return spec;
}

/// A bits sweep over one generated family — candidates share every
/// layer shape, differing only in bitwidths.
std::vector<Scenario> family_sweep(const std::string& family, int depth,
                                   int width) {
  std::vector<Scenario> batch;
  for (int bits : {2, 4, 8}) {
    batch.push_back(bpvec_scenario(
        workload::generate(family_spec(family, depth, width, bits))));
  }
  return batch;
}

std::size_t total_layers(const std::vector<Scenario>& batch) {
  std::size_t n = 0;
  for (const Scenario& s : batch) n += s.network.layers().size();
  return n;
}

TEST(DeltaPricing, BitIdenticalOnAllZooNets) {
  for (auto mode : {dnn::BitwidthMode::kHomogeneous8b,
                    dnn::BitwidthMode::kHeterogeneous}) {
    const std::vector<Scenario> batch = zoo_batch(mode);
    ASSERT_EQ(batch.size(), 6u);  // the six Table I models
    expect_delta_matches_full(batch, 1);
    expect_delta_matches_full(batch, 4);
  }
}

TEST(DeltaPricing, BitIdenticalOnGeneratedFamilySweeps) {
  for (const char* family : {"cnn_family", "mlp_family"}) {
    const std::vector<Scenario> batch = family_sweep(family, 5, 64);
    expect_delta_matches_full(batch, 1);
    expect_delta_matches_full(batch, 4);
  }
}

TEST(DeltaPricing, InNetworkDuplicatesPriceOnce) {
  // mlp_family d6 repeats its width→width hidden FC four times; the
  // names differ but the priced structure is identical, so the delta
  // engine prices 3 unique layers per candidate instead of 6.
  const std::vector<Scenario> batch = family_sweep("mlp_family", 6, 256);
  for (int threads : {1, 4}) {
    SimEngine eng({threads, /*cache_enabled=*/true,
                   /*layer_cache_enabled=*/true});
    (void)eng.run_batch(batch);
    const EngineStats stats = eng.stats();
    EXPECT_LT(stats.layers_priced, total_layers(batch));
    EXPECT_EQ(stats.layers_priced + stats.layer_cache_hits,
              total_layers(batch));
    EXPECT_GT(stats.delta_scenarios, 0u);
    EXPECT_LE(stats.delta_scenarios, stats.simulations_run);
  }
}

TEST(DeltaPricing, WarmNeighborPricesOnlyNewLayers) {
  // Warm the cache with the depth-6 MLP, then price its depth-5
  // neighbor: every layer of the neighbor is already cached (fc0, the
  // hidden block, the classifier head), so the delta run prices zero
  // layers — and still matches a cold full engine byte for byte.
  const Scenario deep = bpvec_scenario(
      workload::generate(family_spec("mlp_family", 6, 256, 8)));
  const Scenario neighbor = bpvec_scenario(
      workload::generate(family_spec("mlp_family", 5, 256, 8)));

  for (int threads : {1, 4}) {
    SimEngine eng({threads, /*cache_enabled=*/true,
                   /*layer_cache_enabled=*/true});
    (void)eng.run_batch({deep});
    const std::size_t priced_cold = eng.stats().layers_priced;
    const std::vector<sim::RunResult> warm = eng.run_batch({neighbor});
    const EngineStats stats = eng.stats();
    EXPECT_EQ(stats.layers_priced, priced_cold);  // nothing new priced
    EXPECT_LT(stats.layers_priced,
              deep.network.layers().size() +
                  neighbor.network.layers().size());
    EXPECT_GT(stats.delta_scenarios, 0u);

    SimEngine cold_full({threads, /*cache_enabled=*/false,
                         /*layer_cache_enabled=*/false});
    const std::vector<sim::RunResult> full = cold_full.run_batch({neighbor});
    ASSERT_EQ(warm.size(), 1u);
    ASSERT_EQ(full.size(), 1u);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_bit_identical(warm[0], full[0]);
  }
}

TEST(DeltaPricing, MixedZooAndGeneratedBatchStaysIdentical) {
  // The union batch exercises cross-scenario sharing: zoo nets repeat
  // blocks (ResNet stages), the sweep repeats shapes across candidates.
  std::vector<Scenario> batch = zoo_batch(dnn::BitwidthMode::kHeterogeneous);
  for (Scenario& s : family_sweep("cnn_family", 4, 32)) {
    batch.push_back(std::move(s));
  }
  expect_delta_matches_full(batch, 1);
  expect_delta_matches_full(batch, 4);
}

}  // namespace
}  // namespace bpvec::engine
