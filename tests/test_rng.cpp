#include "src/common/rng.h"

#include <gtest/gtest.h>

#include "src/common/error.h"

namespace bpvec {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform(3, 3), 3);
  EXPECT_THROW(rng.uniform(4, 3), Error);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

class SignedValueBits : public ::testing::TestWithParam<int> {};

TEST_P(SignedValueBits, StaysInTwosComplementRange) {
  const int bits = GetParam();
  Rng rng(1234 + static_cast<std::uint64_t>(bits));
  const std::int64_t lo = -(std::int64_t{1} << (bits - 1));
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  bool saw_negative = false;
  for (int i = 0; i < 500; ++i) {
    const std::int32_t v = rng.signed_value(bits);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
    saw_negative |= (v < 0);
  }
  EXPECT_TRUE(saw_negative) << "range never produced a negative value";
}

INSTANTIATE_TEST_SUITE_P(Bits, SignedValueBits,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 16, 24, 32));

class UnsignedValueBits : public ::testing::TestWithParam<int> {};

TEST_P(UnsignedValueBits, StaysInRange) {
  const int bits = GetParam();
  Rng rng(99 + static_cast<std::uint64_t>(bits));
  const std::int64_t hi = (std::int64_t{1} << bits) - 1;
  for (int i = 0; i < 500; ++i) {
    const std::uint32_t v = rng.unsigned_value(bits);
    EXPECT_LE(static_cast<std::int64_t>(v), hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, UnsignedValueBits,
                         ::testing::Values(1, 2, 4, 8, 16, 31, 32));

TEST(Rng, SignedVectorShapeAndRange) {
  Rng rng(5);
  const auto v = rng.signed_vector(257, 4);
  EXPECT_EQ(v.size(), 257u);
  for (auto x : v) {
    EXPECT_GE(x, -8);
    EXPECT_LE(x, 7);
  }
}

TEST(Rng, RejectsBadBitCounts) {
  Rng rng(5);
  EXPECT_THROW(rng.signed_value(0), Error);
  EXPECT_THROW(rng.signed_value(33), Error);
  EXPECT_THROW(rng.unsigned_value(0), Error);
}

}  // namespace
}  // namespace bpvec
