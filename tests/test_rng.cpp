#include "src/common/rng.h"

#include <gtest/gtest.h>

#include "src/common/error.h"

namespace bpvec {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform(3, 3), 3);
  EXPECT_THROW(rng.uniform(4, 3), Error);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

class SignedValueBits : public ::testing::TestWithParam<int> {};

TEST_P(SignedValueBits, StaysInTwosComplementRange) {
  const int bits = GetParam();
  Rng rng(1234 + static_cast<std::uint64_t>(bits));
  const std::int64_t lo = -(std::int64_t{1} << (bits - 1));
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  bool saw_negative = false;
  for (int i = 0; i < 500; ++i) {
    const std::int32_t v = rng.signed_value(bits);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
    saw_negative |= (v < 0);
  }
  EXPECT_TRUE(saw_negative) << "range never produced a negative value";
}

INSTANTIATE_TEST_SUITE_P(Bits, SignedValueBits,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 16, 24, 32));

class UnsignedValueBits : public ::testing::TestWithParam<int> {};

TEST_P(UnsignedValueBits, StaysInRange) {
  const int bits = GetParam();
  Rng rng(99 + static_cast<std::uint64_t>(bits));
  const std::int64_t hi = (std::int64_t{1} << bits) - 1;
  for (int i = 0; i < 500; ++i) {
    const std::uint32_t v = rng.unsigned_value(bits);
    EXPECT_LE(static_cast<std::int64_t>(v), hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, UnsignedValueBits,
                         ::testing::Values(1, 2, 4, 8, 16, 31, 32));

TEST(Rng, SignedVectorShapeAndRange) {
  Rng rng(5);
  const auto v = rng.signed_vector(257, 4);
  EXPECT_EQ(v.size(), 257u);
  for (auto x : v) {
    EXPECT_GE(x, -8);
    EXPECT_LE(x, 7);
  }
}

TEST(Rng, RejectsBadBitCounts) {
  Rng rng(5);
  EXPECT_THROW(rng.signed_value(0), Error);
  EXPECT_THROW(rng.signed_value(33), Error);
  EXPECT_THROW(rng.unsigned_value(0), Error);
}

TEST(RngFork, DeterministicInParentAndStream) {
  Rng parent_a(42), parent_b(42);
  Rng child_a = parent_a.fork(3);
  Rng child_b = parent_b.fork(3);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(child_a.next_u64(), child_b.next_u64());
  }
}

TEST(RngFork, StreamsDiverge) {
  Rng parent(42);
  Rng a = parent.fork(0);
  Rng b = parent.fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngFork, ChildDivergesFromParentStream) {
  Rng parent(7);
  Rng child = parent.fork(0);
  Rng parent_copy(7);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == parent_copy.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngFork, DoesNotAdvanceParent) {
  Rng a(9), b(9);
  (void)a.fork(1);
  (void)a.fork(2);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngFork, OrderOfConsumptionIrrelevant) {
  // Fork n streams up front, consume them in any order: values per stream
  // depend only on (parent state, stream index) — the property parallel
  // batch execution relies on.
  Rng parent(1234);
  std::vector<std::uint64_t> forward, backward;
  {
    Rng p = parent;
    std::vector<Rng> streams;
    for (std::uint64_t s = 0; s < 8; ++s) streams.push_back(p.fork(s));
    for (auto& r : streams) forward.push_back(r.next_u64());
  }
  {
    Rng p = parent;
    std::vector<Rng> streams;
    for (std::uint64_t s = 0; s < 8; ++s) streams.push_back(p.fork(s));
    for (std::size_t i = streams.size(); i-- > 0;) {
      backward.push_back(streams[i].next_u64());
    }
  }
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(forward[i], backward[7 - i]);
  }
}

}  // namespace
}  // namespace bpvec
