#include "src/bitslice/cvu.h"

#include <gtest/gtest.h>

#include <tuple>

#include "src/common/error.h"
#include "src/common/mathutil.h"
#include "src/common/rng.h"

namespace bpvec::bitslice {
namespace {

std::int64_t reference_dot(const std::vector<std::int32_t>& x,
                           const std::vector<std::int32_t>& w) {
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += static_cast<std::int64_t>(x[i]) * w[i];
  }
  return acc;
}

TEST(Cvu, PaperExampleFigure2a) {
  // Fig. 2a: two vectors of two 4-bit elements, 2-bit slicing.
  Cvu cvu({2, 4, 2});
  const std::vector<std::int32_t> x{5, -3}, w{7, 6};
  const auto r = cvu.dot_product(x, w, 4, 4);
  EXPECT_EQ(r.value, 35 - 18);
  EXPECT_EQ(r.cycles, 1);
}

TEST(Cvu, EmptyVectorsAreZeroWork) {
  Cvu cvu({2, 8, 16});
  const auto r = cvu.dot_product({}, {}, 8, 8);
  EXPECT_EQ(r.value, 0);
  EXPECT_EQ(r.cycles, 0);
  EXPECT_EQ(r.mult_ops, 0);
}

TEST(Cvu, RejectsLengthMismatch) {
  Cvu cvu({2, 8, 16});
  EXPECT_THROW(cvu.dot_product({1, 2}, {1}, 8, 8), Error);
}

TEST(Cvu, CycleCountFollowsCompositionBoost) {
  Cvu cvu({2, 8, 16});
  Rng rng(3);
  const auto x8 = rng.signed_vector(256, 8);
  const auto w8 = rng.signed_vector(256, 8);
  // Homogeneous 8-bit: 16 elements per cycle → 16 cycles for 256.
  EXPECT_EQ(cvu.dot_product(x8, w8, 8, 8).cycles, 16);

  const auto x4 = rng.signed_vector(256, 4);
  const auto w4 = rng.signed_vector(256, 4);
  // 4-bit: 4 clusters → 64 elements per cycle → 4 cycles.
  EXPECT_EQ(cvu.dot_product(x4, w4, 4, 4).cycles, 4);

  const auto w2 = rng.signed_vector(256, 2);
  // 8-bit × 2-bit (Fig. 3c): 4 clusters.
  EXPECT_EQ(cvu.dot_product(x8, w2, 8, 2).cycles, 4);

  const auto x2 = rng.signed_vector(256, 2);
  // 2×2: all 16 NBVEs independent → 1 cycle for 256 elements.
  EXPECT_EQ(cvu.dot_product(x2, w2, 2, 2).cycles, 1);
}

TEST(Cvu, UnsignedOperandsSupported) {
  Cvu cvu({2, 8, 16});
  Rng rng(17);
  std::vector<std::int32_t> x, w;
  for (int i = 0; i < 100; ++i) {
    x.push_back(static_cast<std::int32_t>(rng.unsigned_value(8)));
    w.push_back(rng.signed_value(8));
  }
  const auto r = cvu.dot_product(x, w, 8, 8, /*x_signed=*/false,
                                 /*w_signed=*/true);
  EXPECT_EQ(r.value, reference_dot(x, w));
}

TEST(Cvu, MaxMagnitudeOperandsExact) {
  Cvu cvu({2, 8, 16});
  const std::vector<std::int32_t> x(1000, -128), w(1000, -128);
  EXPECT_EQ(cvu.dot_product(x, w, 8, 8).value, 1000LL * 16384);
  const std::vector<std::int32_t> y(1000, -128), v(1000, 127);
  EXPECT_EQ(cvu.dot_product(y, v, 8, 8).value, 1000LL * -16256);
}

// ---- The central property of the paper: bit-parallel vector
// composability computes *exact* dot products for every bitwidth mode,
// vector length, slice width, and lane count. ----

struct CvuCase {
  int alpha, lanes, x_bits, w_bits;
};

class CvuExactness : public ::testing::TestWithParam<CvuCase> {};

TEST_P(CvuExactness, MatchesInt64Reference) {
  const auto p = GetParam();
  Cvu cvu({p.alpha, 8, p.lanes});
  Rng rng(static_cast<std::uint64_t>(p.alpha * 7919 + p.lanes * 131 +
                                     p.x_bits * 17 + p.w_bits));
  for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{16},
                        std::size_t{63}, std::size_t{64}, std::size_t{200}}) {
    const auto x = rng.signed_vector(n, p.x_bits);
    const auto w = rng.signed_vector(n, p.w_bits);
    const auto r = cvu.dot_product(x, w, p.x_bits, p.w_bits);
    EXPECT_EQ(r.value, reference_dot(x, w))
        << "alpha=" << p.alpha << " L=" << p.lanes << " xb=" << p.x_bits
        << " wb=" << p.w_bits << " n=" << n;

    // Cycle accounting: ceil(n / elements_per_cycle).
    const auto plan = cvu.plan_for(p.x_bits, p.w_bits);
    EXPECT_EQ(r.cycles,
              ceil_div(static_cast<std::int64_t>(n),
                       plan.elements_per_cycle()));
    EXPECT_GT(r.utilization, 0.0);
    EXPECT_LE(r.utilization, 1.0);
  }
}

std::vector<CvuCase> exactness_cases() {
  std::vector<CvuCase> cases;
  for (int alpha : {1, 2, 4}) {
    for (int lanes : {1, 2, 4, 16}) {
      for (int xb : {1, 2, 3, 4, 5, 8}) {
        for (int wb : {1, 2, 4, 7, 8}) {
          cases.push_back({alpha, lanes, xb, wb});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    FullSweep, CvuExactness, ::testing::ValuesIn(exactness_cases()),
    [](const ::testing::TestParamInfo<CvuCase>& info) {
      const auto& p = info.param;
      return "a" + std::to_string(p.alpha) + "_L" + std::to_string(p.lanes) +
             "_x" + std::to_string(p.x_bits) + "_w" +
             std::to_string(p.w_bits);
    });

}  // namespace
}  // namespace bpvec::bitslice
