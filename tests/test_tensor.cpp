#include "src/dnn/tensor.h"

#include <gtest/gtest.h>

#include "src/common/error.h"

namespace bpvec::dnn {
namespace {

TEST(Tensor, ConstructsZeroInitialized) {
  Tensor t(3, 4, 5);
  EXPECT_EQ(t.channels(), 3);
  EXPECT_EQ(t.height(), 4);
  EXPECT_EQ(t.width(), 5);
  EXPECT_EQ(t.size(), 60);
  for (auto v : t.data()) EXPECT_EQ(v, 0);
}

TEST(Tensor, AtReadsAndWrites) {
  Tensor t(2, 3, 3);
  t.at(1, 2, 0) = 42;
  EXPECT_EQ(t.at(1, 2, 0), 42);
  EXPECT_EQ(t.at(0, 2, 0), 0);
}

TEST(Tensor, AtRejectsOutOfBounds) {
  Tensor t(1, 2, 2);
  EXPECT_THROW(t.at(1, 0, 0), Error);
  EXPECT_THROW(t.at(0, 2, 0), Error);
  EXPECT_THROW(t.at(0, 0, -1), Error);
}

TEST(Tensor, PaddedAccessIsZeroOutside) {
  Tensor t(1, 2, 2);
  t.at(0, 0, 0) = 7;
  EXPECT_EQ(t.at_padded(0, 0, 0), 7);
  EXPECT_EQ(t.at_padded(0, -1, 0), 0);
  EXPECT_EQ(t.at_padded(0, 0, 5), 0);
  EXPECT_THROW(t.at_padded(2, 0, 0), Error);  // channel is never padded
}

TEST(Tensor, ShapeString) {
  EXPECT_EQ(Tensor(3, 224, 224).shape_string(), "3x224x224");
}

TEST(Tensor, RejectsDegenerateShapes) {
  EXPECT_THROW(Tensor(0, 1, 1), Error);
  EXPECT_THROW(Tensor(1, 0, 1), Error);
}

}  // namespace
}  // namespace bpvec::dnn
