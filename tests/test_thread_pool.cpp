#include "src/engine/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "src/common/error.h"

namespace bpvec::engine {
namespace {

TEST(ThreadPool, ReportsThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
  ThreadPool auto_pool(0);
  EXPECT_GE(auto_pool.num_threads(), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, SingleThreadPoolCompletes) {
  // The caller lends a hand, so even a 1-thread pool drains a large batch.
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.parallel_for(100, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, PropagatesLowestIndexException) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(64, [&](std::size_t i) {
      if (i == 7 || i == 40) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 7");
  }
}

TEST(ThreadPool, AllTasksRunEvenWhenSomeThrow) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(50,
                                 [&](std::size_t i) {
                                   ran.fetch_add(1);
                                   if (i % 2 == 0) throw Error("even");
                                 }),
               Error);
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, SubmitExecutesDetachedWork) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (done.load() < 16 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  // Queued detached tasks run to completion before the pool dies — the
  // destructor drains, it does not drop.
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }  // ~ThreadPool
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, WorkIsStolenAcrossQueues) {
  // Submit round-robins over worker deques, so with 4 workers a batch of
  // serial-dependency-free tasks lands everywhere; completing all of them
  // from a parallel_for requires cross-queue stealing when one worker's
  // queue drains first. This is a liveness test: it must simply finish.
  ThreadPool pool(4);
  std::atomic<int> slow{0}, fast{0};
  pool.parallel_for(128, [&](std::size_t i) {
    if (i == 0) {
      // One long task pins a worker; the rest must be stolen/shared.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      slow.fetch_add(1);
    } else {
      fast.fetch_add(1);
    }
  });
  EXPECT_EQ(slow.load(), 1);
  EXPECT_EQ(fast.load(), 127);
}

TEST(ThreadPool, NestedSequentialParallelForsReuseThePool) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> n{0};
    pool.parallel_for(37, [&](std::size_t) { n.fetch_add(1); });
    ASSERT_EQ(n.load(), 37);
  }
}

}  // namespace
}  // namespace bpvec::engine
