#include "src/sim/memory_system.h"

#include <gtest/gtest.h>

#include "src/common/error.h"
#include "src/common/mathutil.h"

namespace bpvec::sim {
namespace {

dnn::GemmShape gemm(std::int64_t m, std::int64_t n, std::int64_t k) {
  dnn::GemmShape g;
  g.m = m;
  g.n = n;
  g.k = k;
  return g;
}

TEST(Traffic, EverythingStreamsOnceWhenInputsFit) {
  const auto c = tpu_like_baseline();  // 112 KB scratchpad
  // Inputs 10 KB, weights 10 MB: inputs resident, weights stream once.
  const auto t = estimate_traffic(c, gemm(1, 1024, 10240), 8, 8, 8, 32);
  EXPECT_EQ(t.weight_bytes, 1024LL * 10240);
  EXPECT_EQ(t.input_bytes, 10240);
  EXPECT_EQ(t.output_bytes, 1024);
  EXPECT_EQ(t.psum_bytes, 0);
  EXPECT_EQ(t.k_groups, 1);
}

TEST(Traffic, BitwidthScalesBytes) {
  const auto c = tpu_like_baseline();
  const auto t8 = estimate_traffic(c, gemm(4, 256, 1024), 8, 8, 8, 8);
  const auto t4 = estimate_traffic(c, gemm(4, 256, 1024), 4, 4, 4, 8);
  EXPECT_EQ(t8.weight_bytes, 2 * t4.weight_bytes);
  EXPECT_EQ(t8.input_bytes, 2 * t4.input_bytes);
  EXPECT_EQ(t8.output_bytes, 2 * t4.output_bytes);
}

TEST(Traffic, SubByteBitwidthRoundsUp) {
  const auto c = tpu_like_baseline();
  const auto t = estimate_traffic(c, gemm(1, 1, 3), 4, 4, 4, 1);
  EXPECT_EQ(t.weight_bytes, 2);  // ceil(3·4/8)
  EXPECT_EQ(t.input_bytes, 2);
  EXPECT_EQ(t.output_bytes, 1);
}

TEST(Traffic, KSplitChosenForRecurrentShapes) {
  const auto c = tpu_like_baseline();
  // RNN-like: M=16, K=5760, N=2880 at 8-bit — inputs 92 KB (> 56 KB half),
  // weights 16.6 MB (> half). K-split with psum spills must win over
  // re-streaming 16.6 MB weights or 92 KB × hundreds of groups.
  const auto t = estimate_traffic(c, gemm(16, 2880, 5760), 8, 8, 8, 90);
  EXPECT_GT(t.k_groups, 1);
  EXPECT_EQ(t.weight_bytes, 2880LL * 5760);
  EXPECT_EQ(t.input_bytes, 16LL * 5760);
  EXPECT_EQ(t.psum_bytes,
            2 * (t.k_groups - 1) * 16 * 2880 * 4);
  // Total stays within ~10% of the compulsory weight traffic.
  EXPECT_LT(static_cast<double>(t.dram_bytes()),
            1.10 * static_cast<double>(t.weight_bytes));
}

TEST(Traffic, InputRefetchChosenForConvShapes) {
  const auto c = tpu_like_baseline();
  // Conv-like: big M, moderate K — inputs 200 KB, weights 110 KB. K-split
  // psums (M·N sized) would be catastrophic; input re-streaming wins.
  const auto t = estimate_traffic(c, gemm(3136, 192, 576), 8, 8, 8, 6);
  EXPECT_EQ(t.k_groups, 1);
  EXPECT_EQ(t.psum_bytes, 0);
  const std::int64_t i_total = 3136LL * 576;
  EXPECT_EQ(t.input_bytes, i_total * ceil_div(192LL * 576, 56 * 1024));
}

TEST(Traffic, MapperPicksTheCheapestOption) {
  const auto c = tpu_like_baseline();
  for (auto g : {gemm(16, 2880, 5760), gemm(3136, 192, 576),
                 gemm(200, 4096, 4096), gemm(1, 1000, 2048)}) {
    const auto t = estimate_traffic(c, g, 8, 8, 8, 1);
    const std::int64_t w = g.n * g.k, i = g.m * g.k;
    const std::int64_t buf = c.scratchpad_bytes / 2;
    // Whatever was chosen must not exceed either naive alternative.
    const std::int64_t naive_a = w + i * ceil_div(w, buf);
    const std::int64_t naive_b = i + w * ceil_div(i, buf);
    EXPECT_LE(t.dram_bytes() - t.output_bytes,
              std::max(naive_a, naive_b));
    EXPECT_LE(t.weight_bytes + t.input_bytes + t.psum_bytes,
              std::min(naive_a, naive_b) +
                  2 * ceil_div(i, buf) * g.m * g.n * 4);
  }
}

TEST(Traffic, SramIncludesReuseReads) {
  const auto c = tpu_like_baseline();
  const auto t1 = estimate_traffic(c, gemm(100, 64, 100), 8, 8, 8, 1);
  const auto t4 = estimate_traffic(c, gemm(100, 64, 100), 8, 8, 8, 4);
  EXPECT_GT(t4.sram_bytes, t1.sram_bytes);  // more N passes → more reads
}

TEST(Traffic, MemoryCyclesScaleWithBandwidth) {
  const auto c = tpu_like_baseline();
  const auto t = estimate_traffic(c, gemm(100, 256, 512), 8, 8, 8, 8);
  const double d = t.memory_cycles(arch::ddr4(), 500e6);
  const double h = t.memory_cycles(arch::hbm2(), 500e6);
  EXPECT_NEAR(d / h, 16.0, 1e-9);
}

TEST(Traffic, RejectsBadArguments) {
  const auto c = tpu_like_baseline();
  EXPECT_THROW(estimate_traffic(c, gemm(1, 1, 1), 0, 8, 8, 1), Error);
  EXPECT_THROW(estimate_traffic(c, gemm(1, 1, 1), 8, 8, 8, 0), Error);
}

}  // namespace
}  // namespace bpvec::sim
