// im2col lowering correctness: GEMM over lowered matrices must equal the
// direct convolution for arbitrary shapes — the property that lets the
// systolic array (and the CVU functional path) execute convolutions.
#include "src/dnn/gemm_lowering.h"

#include <gtest/gtest.h>

#include <tuple>

#include "src/common/error.h"
#include "src/common/rng.h"
#include "src/dnn/reference_ops.h"

namespace bpvec::dnn {
namespace {

TEST(Im2col, ShapeAndContent) {
  Tensor in(1, 3, 3);
  int v = 1;
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) in.at(0, y, x) = v++;
  }
  const ConvParams p{1, 3, 3, 1, 2, 2, 1, 0};
  const Matrix m = im2col(in, p);
  EXPECT_EQ(m.rows, 4);
  EXPECT_EQ(m.cols, 4);
  // First patch is the top-left 2×2 window.
  EXPECT_EQ(m.at(0, 0), 1);
  EXPECT_EQ(m.at(0, 1), 2);
  EXPECT_EQ(m.at(0, 2), 4);
  EXPECT_EQ(m.at(0, 3), 5);
}

TEST(WeightsAsMatrix, ShapeChecked) {
  const ConvParams p{2, 4, 4, 3, 2, 2, 1, 0};
  EXPECT_NO_THROW(
      weights_as_matrix(std::vector<std::int32_t>(3 * 2 * 2 * 2, 1), p));
  EXPECT_THROW(weights_as_matrix({1, 2, 3}, p), Error);
}

TEST(GemmReference, SmallKnownProduct) {
  Matrix a{2, 2, {1, 2, 3, 4}};
  Matrix b{2, 2, {5, 6, 7, 8}};
  // out[m][n] = Σ a[m][k]·b[n][k]
  const auto out = gemm_reference(a, b);
  EXPECT_EQ(out[0], 1 * 5 + 2 * 6);
  EXPECT_EQ(out[1], 1 * 7 + 2 * 8);
  EXPECT_EQ(out[2], 3 * 5 + 4 * 6);
  EXPECT_EQ(out[3], 3 * 7 + 4 * 8);
}

TEST(GemmReference, RejectsInnerMismatch) {
  Matrix a{1, 3, {1, 2, 3}};
  Matrix b{1, 2, {1, 2}};
  EXPECT_THROW(gemm_reference(a, b), Error);
}

struct LoweringCase {
  int in_c, in_hw, out_c, k, stride, pad;
};

class LoweringEquivalence : public ::testing::TestWithParam<LoweringCase> {};

TEST_P(LoweringEquivalence, GemmOverIm2colEqualsDirectConv) {
  const auto c = GetParam();
  const ConvParams p{c.in_c, c.in_hw, c.in_hw, c.out_c,
                     c.k,    c.k,     c.stride, c.pad};
  Rng rng(static_cast<std::uint64_t>(c.in_c * 1009 + c.in_hw * 31 + c.k));

  Tensor in(p.in_c, p.in_h, p.in_w);
  for (auto& v : in.data()) v = rng.signed_value(8);
  const auto weights = rng.signed_vector(
      static_cast<std::size_t>(p.out_c * p.in_c * p.kh * p.kw), 8);

  const auto direct = conv2d_reference(in, weights, p);
  const auto lowered =
      gemm_reference(im2col(in, p), weights_as_matrix(weights, p));

  // direct is [out_c][oh][ow]; lowered is [oh·ow][out_c].
  const int oh = p.out_h(), ow = p.out_w();
  ASSERT_EQ(direct.size(), lowered.size());
  for (int oc = 0; oc < p.out_c; ++oc) {
    for (int m = 0; m < oh * ow; ++m) {
      EXPECT_EQ(direct[static_cast<std::size_t>(oc) * oh * ow + m],
                lowered[static_cast<std::size_t>(m) * p.out_c + oc])
          << "oc=" << oc << " m=" << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LoweringEquivalence,
    ::testing::Values(LoweringCase{1, 5, 1, 3, 1, 0},
                      LoweringCase{1, 5, 1, 3, 1, 1},
                      LoweringCase{3, 8, 4, 3, 1, 1},
                      LoweringCase{3, 9, 2, 5, 2, 2},
                      LoweringCase{2, 7, 3, 1, 1, 0},
                      LoweringCase{4, 6, 8, 3, 2, 1},
                      LoweringCase{8, 4, 16, 4, 4, 0}));

}  // namespace
}  // namespace bpvec::dnn
