#include "src/dnn/layer.h"

#include <gtest/gtest.h>

#include "src/common/error.h"

namespace bpvec::dnn {
namespace {

TEST(ConvParams, OutputShape) {
  // AlexNet conv1: 227 input, k=11, s=4, p=0 → 55.
  const ConvParams p{3, 227, 227, 96, 11, 11, 4, 0};
  EXPECT_EQ(p.out_h(), 55);
  EXPECT_EQ(p.out_w(), 55);
  // Same-padded 3×3.
  const ConvParams q{64, 56, 56, 64, 3, 3, 1, 1};
  EXPECT_EQ(q.out_h(), 56);
  // Strided 7×7, pad 3 on 224 → 112.
  const ConvParams r{3, 224, 224, 64, 7, 7, 2, 3};
  EXPECT_EQ(r.out_h(), 112);
}

TEST(ConvLayer, MacAndWeightCounts) {
  const Layer l = make_conv("c", {3, 227, 227, 96, 11, 11, 4, 0});
  EXPECT_EQ(l.macs(), 55LL * 55 * 96 * 3 * 11 * 11);
  EXPECT_EQ(l.weights(), 96LL * 3 * 11 * 11);
  EXPECT_EQ(l.input_elems(), 3LL * 227 * 227);
  EXPECT_EQ(l.output_elems(), 96LL * 55 * 55);
  EXPECT_TRUE(l.is_compute());
}

TEST(ConvLayer, GemmView) {
  const Layer l = make_conv("c", {64, 56, 56, 128, 3, 3, 1, 1});
  const GemmShape g = l.gemm();
  EXPECT_EQ(g.m, 56LL * 56);
  EXPECT_EQ(g.n, 128);
  EXPECT_EQ(g.k, 64LL * 9);
  EXPECT_EQ(g.repeats, 1);
  EXPECT_FALSE(g.weights_streamed_per_repeat);
  EXPECT_EQ(g.macs(), l.macs());
}

TEST(FcLayer, CountsAndGemm) {
  const Layer l = make_fc("fc", {9216, 4096});
  EXPECT_EQ(l.macs(), 9216LL * 4096);
  EXPECT_EQ(l.weights(), l.macs());
  const GemmShape g = l.gemm();
  EXPECT_EQ(g.m, 1);
  EXPECT_EQ(g.n, 4096);
  EXPECT_EQ(g.k, 9216);
}

TEST(PoolLayer, NoComputeNoWeights) {
  const Layer l = make_pool("p", {96, 55, 55, 3, 2});
  EXPECT_EQ(l.macs(), 0);
  EXPECT_EQ(l.weights(), 0);
  EXPECT_FALSE(l.is_compute());
  EXPECT_EQ(l.pool().out_h(), 27);
  EXPECT_EQ(l.gemm().m, 0);
}

TEST(RecurrentLayer, VanillaCounts) {
  const Layer l = make_recurrent(
      "rnn", {RecurrentCellKind::kVanillaRnn, 2880, 2880, 512});
  EXPECT_EQ(l.weights(), 2880LL * (2880 + 2880));
  EXPECT_EQ(l.macs(), l.weights() * 512);
  EXPECT_EQ(l.recurrent().gates(), 1);
}

TEST(RecurrentLayer, LstmHasFourGates) {
  const Layer l =
      make_recurrent("lstm", {RecurrentCellKind::kLstm, 2048, 1024, 512});
  EXPECT_EQ(l.recurrent().gates(), 4);
  EXPECT_EQ(l.weights(), 4LL * 1024 * (2048 + 1024));
}

TEST(RecurrentLayer, GemmTimeChunking) {
  const Layer l = make_recurrent(
      "rnn", {RecurrentCellKind::kVanillaRnn, 256, 256, 100});
  const GemmShape g = l.gemm(/*time_chunk=*/16);
  EXPECT_EQ(g.m, 16);
  EXPECT_EQ(g.n, 256);
  EXPECT_EQ(g.k, 512);
  EXPECT_EQ(g.repeats, 7);  // ceil(100/16)
  EXPECT_TRUE(g.weights_streamed_per_repeat);

  // Chunk larger than the sequence degrades gracefully.
  const GemmShape g2 = l.gemm(/*time_chunk=*/500);
  EXPECT_EQ(g2.m, 100);
  EXPECT_EQ(g2.repeats, 1);
}

TEST(Layer, VariantAccessorsAreChecked) {
  const Layer conv = make_conv("c", {1, 8, 8, 1, 3, 3, 1, 1});
  EXPECT_THROW(conv.fc(), Error);
  EXPECT_THROW(conv.pool(), Error);
  EXPECT_THROW(conv.recurrent(), Error);
  EXPECT_NO_THROW(conv.conv());
}

TEST(Layer, CollapsedShapesRejected) {
  EXPECT_THROW(make_conv("bad", {3, 4, 4, 8, 7, 7, 1, 0}), Error);
}

TEST(Layer, KindNames) {
  EXPECT_STREQ(to_string(LayerKind::kConv), "conv");
  EXPECT_STREQ(to_string(LayerKind::kRecurrent), "recurrent");
}

class GemmMacsConsistency : public ::testing::TestWithParam<int> {};

TEST_P(GemmMacsConsistency, RecurrentGemmMacsMatchLayerMacs) {
  const int chunk = GetParam();
  const Layer l = make_recurrent(
      "rnn", {RecurrentCellKind::kVanillaRnn, 128, 96, 64});
  const GemmShape g = l.gemm(chunk);
  // Chunking may pad the last chunk; total GEMM MACs are within one chunk
  // of the exact count and never below it.
  EXPECT_GE(g.macs(), l.macs());
  EXPECT_LE(g.macs(), l.macs() + g.m * g.n * g.k);
}

INSTANTIATE_TEST_SUITE_P(Chunks, GemmMacsConsistency,
                         ::testing::Values(1, 3, 16, 64, 100));

}  // namespace
}  // namespace bpvec::dnn
