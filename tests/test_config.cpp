// Platform configuration tests against Table II.
#include "src/sim/config.h"

#include <gtest/gtest.h>

#include <tuple>

#include "src/common/error.h"

namespace bpvec::sim {
namespace {

TEST(TableTwo, BaselineHas512Macs) {
  const auto c = tpu_like_baseline();
  EXPECT_EQ(c.equivalent_macs(), 512);
  EXPECT_EQ(c.pe_kind, PeKind::kConventional);
  EXPECT_EQ(c.scratchpad_bytes, 112 * 1024);
  EXPECT_DOUBLE_EQ(c.frequency_hz, 500e6);
}

TEST(TableTwo, BitFusionHas448Units) {
  const auto c = bitfusion_accelerator();
  EXPECT_EQ(c.equivalent_macs(), 448);
  EXPECT_EQ(c.pe_kind, PeKind::kBitFusion);
}

TEST(TableTwo, BpvecHas1024MacEquivalents) {
  const auto c = bpvec_accelerator();
  EXPECT_EQ(c.equivalent_macs(), 1024);
  EXPECT_EQ(c.num_pes(), 64);  // 64 CVUs × 16 lanes
  EXPECT_EQ(c.cvu.slice_bits, 2);
  EXPECT_EQ(c.cvu.lanes, 16);
}

TEST(TableTwo, CorePowersStayNearBudget) {
  // All three platforms are sized against the same 250 mW core budget.
  const arch::CvuCostModel cost;
  for (const auto& c : {tpu_like_baseline(), bitfusion_accelerator(),
                        bpvec_accelerator()}) {
    const double power_mw =
        c.pe_energy_per_cycle_pj(cost) * c.num_pes() * c.frequency_hz * 1e-9;
    EXPECT_GT(power_mw, 120.0) << c.name;
    EXPECT_LT(power_mw, 300.0) << c.name;
  }
}

TEST(Boost, ConventionalNeverBoosts) {
  const auto c = tpu_like_baseline();
  for (int xb : {2, 4, 8}) {
    for (int wb : {2, 4, 8}) {
      EXPECT_DOUBLE_EQ(c.composability_boost(xb, wb), 1.0);
      EXPECT_EQ(c.k_per_pe(xb, wb), 1);
    }
  }
}

TEST(Boost, BitFusionPadsToPowersOfTwo) {
  const auto c = bitfusion_accelerator();
  EXPECT_DOUBLE_EQ(c.composability_boost(8, 8), 1.0);
  EXPECT_DOUBLE_EQ(c.composability_boost(4, 4), 4.0);
  EXPECT_DOUBLE_EQ(c.composability_boost(8, 2), 4.0);
  EXPECT_DOUBLE_EQ(c.composability_boost(2, 2), 16.0);
  EXPECT_DOUBLE_EQ(c.composability_boost(3, 3), 4.0);  // padded to 4
}

TEST(Boost, BpvecFollowsCompositionPlan) {
  const auto c = bpvec_accelerator();
  EXPECT_DOUBLE_EQ(c.composability_boost(8, 8), 1.0);
  EXPECT_DOUBLE_EQ(c.composability_boost(4, 4), 4.0);
  EXPECT_DOUBLE_EQ(c.composability_boost(8, 2), 4.0);
  EXPECT_DOUBLE_EQ(c.composability_boost(2, 2), 16.0);
  // 6-bit: 3×3 slice pairs = 9 NBVEs → 1 cluster only (16/9).
  EXPECT_DOUBLE_EQ(c.composability_boost(6, 6), 1.0);
}

TEST(Boost, KPerPeIncludesVectorLanes) {
  const auto c = bpvec_accelerator();
  EXPECT_EQ(c.k_per_pe(8, 8), 16);
  EXPECT_EQ(c.k_per_pe(4, 4), 64);
  EXPECT_EQ(c.k_per_pe(2, 2), 256);
  const auto bf = bitfusion_accelerator();
  EXPECT_EQ(bf.k_per_pe(8, 8), 1);
  EXPECT_EQ(bf.k_per_pe(4, 4), 4);
}

TEST(Config, ValidationCatchesBadShapes) {
  auto c = bpvec_accelerator();
  c.rows = 0;
  EXPECT_THROW(c.validate(), Error);
  c = bpvec_accelerator();
  c.cvu.slice_bits = 3;
  EXPECT_THROW(c.validate(), Error);
  c = bpvec_accelerator();
  c.time_chunk = 0;
  EXPECT_THROW(c.validate(), Error);
}

TEST(Config, BoostRejectsOverwideBitwidths) {
  const auto c = bpvec_accelerator();
  EXPECT_THROW(c.composability_boost(9, 8), Error);
  EXPECT_THROW(c.composability_boost(8, 0), Error);
}

class BoostSymmetry
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BoostSymmetry, BoostIsSymmetricInOperands) {
  const auto [xb, wb] = GetParam();
  for (const auto& c : {bitfusion_accelerator(), bpvec_accelerator()}) {
    EXPECT_DOUBLE_EQ(c.composability_boost(xb, wb),
                     c.composability_boost(wb, xb))
        << c.name << " xb=" << xb << " wb=" << wb;
  }
}

INSTANTIATE_TEST_SUITE_P(Pairs, BoostSymmetry,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 5,
                                                              6, 7, 8),
                                            ::testing::Values(1, 2, 3, 4, 5,
                                                              6, 7, 8)));

TEST(PeKindNames, Strings) {
  EXPECT_STREQ(to_string(PeKind::kConventional), "conventional");
  EXPECT_STREQ(to_string(PeKind::kBitFusion), "bitfusion");
  EXPECT_STREQ(to_string(PeKind::kBpvec), "bpvec");
}

}  // namespace
}  // namespace bpvec::sim
