// Verifies the model zoo against the paper's Table I (model size, op
// count, bitwidth assignment). Sizes/ops match the canonical architectures;
// tolerances cover counting-convention differences.
#include "src/dnn/model_zoo.h"

#include <gtest/gtest.h>

namespace bpvec::dnn {
namespace {

TEST(Network, StatsAccumulate) {
  Network net("tiny", NetworkType::kCnn);
  net.add(make_conv("c", {1, 8, 8, 2, 3, 3, 1, 1}));
  net.add(make_fc("f", {128, 10}));
  const auto s = net.stats();
  EXPECT_EQ(s.total_macs, 8LL * 8 * 2 * 9 + 1280);
  EXPECT_EQ(s.compute_layers, 2);
  EXPECT_DOUBLE_EQ(s.multiply_add_gops,
                   2.0 * static_cast<double>(s.total_macs) / 1e9);
}

struct ZooCase {
  const char* name;
  Network (*make)(BitwidthMode);
  double min_size_mb, max_size_mb;  // Table I: INT8 model size
  double min_gops, max_gops;        // multiply-adds
  bool all_4bit;                    // heterogeneous regime
};

class ModelZooTest : public ::testing::TestWithParam<ZooCase> {};

TEST_P(ModelZooTest, TableOneStatistics) {
  const auto& c = GetParam();
  const Network net = c.make(BitwidthMode::kHomogeneous8b);
  const auto s = net.stats();
  EXPECT_GE(s.model_size_mb_int8, c.min_size_mb) << net.name();
  EXPECT_LE(s.model_size_mb_int8, c.max_size_mb) << net.name();
  EXPECT_GE(s.multiply_add_gops, c.min_gops) << net.name();
  EXPECT_LE(s.multiply_add_gops, c.max_gops) << net.name();
}

TEST_P(ModelZooTest, HomogeneousModeIsAll8Bit) {
  const Network net = GetParam().make(BitwidthMode::kHomogeneous8b);
  for (const auto& l : net.layers()) {
    EXPECT_EQ(l.x_bits, 8);
    EXPECT_EQ(l.w_bits, 8);
  }
}

TEST_P(ModelZooTest, HeterogeneousModeFollowsTableOne) {
  const auto& c = GetParam();
  const Network net = c.make(BitwidthMode::kHeterogeneous);
  int first = -1, last = -1;
  const auto& layers = net.layers();
  for (int i = 0; i < static_cast<int>(layers.size()); ++i) {
    if (!layers[i].is_compute()) continue;
    if (first < 0) first = i;
    last = i;
  }
  ASSERT_GE(first, 0);
  for (int i = 0; i < static_cast<int>(layers.size()); ++i) {
    if (!layers[i].is_compute()) continue;
    const bool boundary = (i == first || i == last);
    const int expected = (!c.all_4bit && boundary) ? 8 : 4;
    EXPECT_EQ(layers[i].x_bits, expected) << layers[i].name;
    EXPECT_EQ(layers[i].w_bits, expected) << layers[i].name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TableOne, ModelZooTest,
    ::testing::Values(
        // name, factory, size range (MB), gops range, all-4bit?
        ZooCase{"AlexNet", make_alexnet, 50, 65, 2.0, 3.0, false},
        ZooCase{"Inception-v1", make_inception_v1, 5.5, 9.5, 2.5, 4.0,
                false},
        ZooCase{"ResNet-18", make_resnet18, 10, 12.5, 3.3, 4.5, false},
        ZooCase{"ResNet-50", make_resnet50, 23, 27, 7.5, 8.6, true},
        ZooCase{"RNN", make_rnn, 14, 17, 16, 18, true},
        ZooCase{"LSTM", make_lstm, 11, 13, 12, 14, true}),
    [](const ::testing::TestParamInfo<ZooCase>& info) {
      std::string n = info.param.name;
      for (auto& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

TEST(ModelZoo, AllModelsReturnsSixInPaperOrder) {
  const auto models = all_models(BitwidthMode::kHomogeneous8b);
  ASSERT_EQ(models.size(), 6u);
  EXPECT_EQ(models[0].name(), "AlexNet");
  EXPECT_EQ(models[1].name(), "Inception-v1");
  EXPECT_EQ(models[2].name(), "ResNet-18");
  EXPECT_EQ(models[3].name(), "ResNet-50");
  EXPECT_EQ(models[4].name(), "RNN");
  EXPECT_EQ(models[5].name(), "LSTM");
}

TEST(ModelZoo, CnnRnnTypesMatchTableOne) {
  EXPECT_EQ(make_alexnet(BitwidthMode::kHomogeneous8b).type(),
            NetworkType::kCnn);
  EXPECT_EQ(make_rnn(BitwidthMode::kHomogeneous8b).type(),
            NetworkType::kRnn);
  EXPECT_EQ(make_lstm(BitwidthMode::kHomogeneous8b).type(),
            NetworkType::kRnn);
}

TEST(ModelZoo, ResNet18LayerStructure) {
  const Network net = make_resnet18(BitwidthMode::kHomogeneous8b);
  // conv1 + 8 basic blocks (2 convs each) + 3 downsamples + fc = 21
  // compute layers.
  EXPECT_EQ(net.stats().compute_layers, 21);
}

TEST(ModelZoo, ResNet50LayerStructure) {
  const Network net = make_resnet50(BitwidthMode::kHomogeneous8b);
  // conv1 + 16 bottlenecks × 3 + 4 downsamples + fc = 54 compute layers.
  EXPECT_EQ(net.stats().compute_layers, 54);
}

TEST(ModelZoo, InceptionModulesCount) {
  const Network net = make_inception_v1(BitwidthMode::kHomogeneous8b);
  // conv1 + conv2(2) + 9 modules × 6 + classifier = 58 compute layers.
  EXPECT_EQ(net.stats().compute_layers, 58);
}

TEST(ModelZoo, BitwidthNotesMatchTableOne) {
  EXPECT_EQ(make_alexnet(BitwidthMode::kHeterogeneous).bitwidth_note(),
            "First and last layer 8-bit, the rest 4-bit");
  EXPECT_EQ(make_resnet50(BitwidthMode::kHeterogeneous).bitwidth_note(),
            "All layers with 4-bit");
  EXPECT_EQ(make_lstm(BitwidthMode::kHomogeneous8b).bitwidth_note(),
            "All layers 8-bit");
}

}  // namespace
}  // namespace bpvec::dnn
