#include "src/common/mathutil.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/error.h"

namespace bpvec {
namespace {

TEST(CeilDiv, ExactDivision) {
  EXPECT_EQ(ceil_div(12, 4), 3);
  EXPECT_EQ(ceil_div(0, 5), 0);
}

TEST(CeilDiv, RoundsUp) {
  EXPECT_EQ(ceil_div(13, 4), 4);
  EXPECT_EQ(ceil_div(1, 100), 1);
}

TEST(CeilDiv, RejectsNonPositiveDivisor) {
  EXPECT_THROW(ceil_div(1, 0), Error);
  EXPECT_THROW(ceil_div(-1, 2), Error);
}

TEST(IsPow2, Basics) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(-4));
  EXPECT_FALSE(is_pow2(6));
}

TEST(Ilog2, Values) {
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(2), 1);
  EXPECT_EQ(ilog2(3), 1);
  EXPECT_EQ(ilog2(16), 4);
  EXPECT_THROW(ilog2(0), Error);
}

TEST(Geomean, SingleValue) { EXPECT_DOUBLE_EQ(geomean({3.0}), 3.0); }

TEST(Geomean, TwoValues) {
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(Geomean, RejectsEmptyAndNonPositive) {
  EXPECT_THROW(geomean({}), Error);
  EXPECT_THROW(geomean({1.0, 0.0}), Error);
  EXPECT_THROW(geomean({1.0, -2.0}), Error);
}

TEST(RoundUp, Values) {
  EXPECT_EQ(round_up(0, 8), 0);
  EXPECT_EQ(round_up(1, 8), 8);
  EXPECT_EQ(round_up(8, 8), 8);
  EXPECT_EQ(round_up(9, 8), 16);
}

class CeilDivProperty : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(CeilDivProperty, MatchesFloatCeil) {
  const std::int64_t a = GetParam();
  for (std::int64_t b : {1, 2, 3, 7, 16, 100}) {
    EXPECT_EQ(ceil_div(a, b),
              static_cast<std::int64_t>(
                  std::ceil(static_cast<double>(a) / static_cast<double>(b))))
        << "a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CeilDivProperty,
                         ::testing::Values(0, 1, 2, 5, 15, 16, 17, 999, 1024,
                                           123456789));

}  // namespace
}  // namespace bpvec
