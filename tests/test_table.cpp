#include "src/common/table.h"

#include <gtest/gtest.h>

#include "src/common/error.h"

namespace bpvec {
namespace {

TEST(Table, FormatsAlignedColumns) {
  Table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "2.5"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("name"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t;
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, RejectsArityMismatch) {
  Table t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, RejectsHeaderAfterRows) {
  Table t;
  t.set_header({"a"});
  t.add_row({"1"});
  EXPECT_THROW(t.set_header({"b"}), Error);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(1.2345, 2), "1.23");
  EXPECT_EQ(Table::num(1.0, 0), "1");
  EXPECT_EQ(Table::ratio(2.5), "2.50x");
  EXPECT_EQ(Table::ratio(33.74, 1), "33.7x");
}

}  // namespace
}  // namespace bpvec
