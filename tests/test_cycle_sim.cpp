// The register-accurate array must (a) compute exact GEMMs and (b) agree
// with the analytical cycle model of src/sim/systolic.h.
#include "src/sim/cycle_sim.h"

#include <gtest/gtest.h>

#include <tuple>

#include "src/common/error.h"
#include "src/common/rng.h"
#include "src/dnn/gemm_lowering.h"
#include "src/sim/systolic.h"

namespace bpvec::sim {
namespace {

dnn::Matrix random_matrix(Rng& rng, std::int64_t rows, std::int64_t cols,
                          int bits) {
  dnn::Matrix m{rows, cols, {}};
  m.data = rng.signed_vector(static_cast<std::size_t>(rows * cols), bits);
  return m;
}

TEST(CycleSim, SinglePeSingleElement) {
  SystolicArraySim sim({1, 1, 1});
  dnn::Matrix a{1, 1, {3}};
  dnn::Matrix b{1, 1, {-4}};
  const auto r = sim.run_gemm(a, b);
  EXPECT_EQ(r.out[0], -12);
  EXPECT_EQ(r.macs, 1);
}

TEST(CycleSim, KnownSmallGemm) {
  SystolicArraySim sim({2, 2, 1});
  dnn::Matrix a{2, 2, {1, 2, 3, 4}};
  dnn::Matrix b{2, 2, {5, 6, 7, 8}};
  const auto r = sim.run_gemm(a, b);
  EXPECT_EQ(r.out, dnn::gemm_reference(a, b));
}

TEST(CycleSim, RejectsMismatchedInnerDims) {
  SystolicArraySim sim({2, 2, 1});
  dnn::Matrix a{1, 3, {1, 2, 3}};
  dnn::Matrix b{1, 2, {1, 2}};
  EXPECT_THROW(sim.run_gemm(a, b), Error);
}

TEST(CycleSim, PipelineLatencyMatchesSkewFormula) {
  // One tile, perfectly fitting: last output of column (cols-1) for row
  // M-1 emerges after M + rows + cols - 2 cycles (±1 for edge conventions).
  const int rows = 4, cols = 4;
  SystolicArraySim sim({rows, cols, 2});
  Rng rng(3);
  const auto a = random_matrix(rng, 10, rows * 2, 8);
  const auto b = random_matrix(rng, cols, rows * 2, 8);
  const auto r = sim.run_gemm(a, b);
  EXPECT_EQ(r.out, dnn::gemm_reference(a, b));
  EXPECT_NEAR(static_cast<double>(r.cycles),
              static_cast<double>(10 + rows + cols), 2.0);
}

TEST(CycleSim, ActiveCyclesMatchWork) {
  // Every PE visit with a valid input counts one active cycle; with a
  // perfectly fitting tile that is rows·cols·M.
  const int rows = 3, cols = 5;
  SystolicArraySim sim({rows, cols, 4});
  Rng rng(7);
  const auto a = random_matrix(rng, 8, rows * 4, 8);
  const auto b = random_matrix(rng, cols, rows * 4, 8);
  const auto r = sim.run_gemm(a, b);
  EXPECT_EQ(r.pe_active_cycles, static_cast<std::int64_t>(rows) * cols * 8);
  EXPECT_EQ(r.macs, 8LL * cols * rows * 4);
}

struct CycleCase {
  int rows, cols;
  std::int64_t kpp;
  std::int64_t m, n, k;
};

class CycleSimProperty : public ::testing::TestWithParam<CycleCase> {};

TEST_P(CycleSimProperty, ExactAcrossTilings) {
  const auto p = GetParam();
  SystolicArraySim sim({p.rows, p.cols, p.kpp});
  Rng rng(static_cast<std::uint64_t>(p.rows * 131 + p.cols * 17 + p.k));
  const auto a = random_matrix(rng, p.m, p.k, 8);
  const auto b = random_matrix(rng, p.n, p.k, 8);
  const auto r = sim.run_gemm(a, b);
  EXPECT_EQ(r.out, dnn::gemm_reference(a, b))
      << "rows=" << p.rows << " cols=" << p.cols << " kpp=" << p.kpp
      << " MNK=" << p.m << "," << p.n << "," << p.k;
  EXPECT_EQ(r.macs, p.m * p.n * p.k);
}

TEST_P(CycleSimProperty, AgreesWithAnalyticalModelWithinFivePercent) {
  const auto p = GetParam();
  SystolicArraySim sim({p.rows, p.cols, p.kpp});
  Rng rng(99);
  const auto a = random_matrix(rng, p.m, p.k, 8);
  const auto b = random_matrix(rng, p.n, p.k, 8);
  const auto measured = sim.run_gemm(a, b);

  AcceleratorConfig cfg = bpvec_accelerator();
  cfg.rows = p.rows;
  cfg.cols = p.cols;
  cfg.cvu.lanes = static_cast<int>(p.kpp);  // 8-bit mode: k_per_pe = lanes
  dnn::GemmShape g;
  g.m = p.m;
  g.n = p.n;
  g.k = p.k;
  const auto analytical = estimate_compute(cfg, g, 8, 8);

  // Agreement within 5% or one pipeline skew (whichever is larger — tiny
  // arrays differ by edge conventions of the fill/drain constant).
  const double diff =
      std::abs(static_cast<double>(measured.cycles) -
               static_cast<double>(analytical.cycles));
  const double bound = std::max(0.05 * static_cast<double>(analytical.cycles),
                                static_cast<double>(p.rows + p.cols));
  EXPECT_LE(diff, bound) << "measured " << measured.cycles
                         << " vs analytical " << analytical.cycles;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CycleSimProperty,
    ::testing::Values(CycleCase{2, 2, 1, 5, 3, 7},     // ragged everything
                      CycleCase{4, 4, 2, 16, 8, 16},   // exact fit
                      CycleCase{4, 4, 2, 16, 9, 17},   // ragged K and N
                      CycleCase{8, 8, 16, 32, 16, 256},  // BPVeC-like
                      CycleCase{3, 5, 4, 20, 11, 30},  // odd geometry
                      CycleCase{1, 8, 2, 12, 20, 9},   // single row
                      CycleCase{8, 1, 2, 12, 1, 64})); // single column

}  // namespace
}  // namespace bpvec::sim
